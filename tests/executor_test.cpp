//===- tests/executor_test.cpp - per-opcode functional semantics ---------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// Table-driven semantic tests of the functional executor: every opcode
/// family the kernel generators emit is checked against hand-computed
/// expectations, on both the oracle and the timed machine (whose results
/// must agree when control codes are conservative).
///
//===----------------------------------------------------------------------===//

#include "gpusim/Fp16.h"
#include "gpusim/Gpu.h"
#include "sass/Parser.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

using namespace cuasmrl;
using namespace cuasmrl::gpusim;

namespace {

/// Runs a single-warp kernel whose body is `Body` (conservative S06
/// stalls added around it); the result register R15 is stored to the
/// output word. Checks oracle/timed agreement and returns the value.
uint32_t runBody(const std::string &Body, uint32_t R4 = 9, uint32_t R5 = 7,
                 uint32_t R6 = 3) {
  std::string Text;
  Text += "  [B------:R-:W-:-:S04] MOV R2, c[0x0][0x160] ;\n";
  Text += "  [B------:R-:W-:-:S04] MOV R3, c[0x0][0x164] ;\n";
  Text += "  [B------:R-:W-:-:S06] MOV R4, " + std::to_string(R4) + " ;\n";
  Text += "  [B------:R-:W-:-:S06] MOV R5, " + std::to_string(R5) + " ;\n";
  Text += "  [B------:R-:W-:-:S06] MOV R6, " + std::to_string(R6) + " ;\n";
  Text += Body;
  Text += "  [B------:R-:W-:-:S01] STG.E [R2.64], R15 ;\n";
  Text += "  [B------:R-:W-:-:S01] EXIT ;\n";

  Expected<sass::Program> P = sass::Parser::parseProgram(Text, "sem");
  EXPECT_TRUE(P.hasValue()) << (P.hasValue() ? "" : P.error().str())
                            << "\n" << Text;
  if (!P)
    return 0xdead;

  uint32_t Results[2];
  for (int Mode = 0; Mode < 2; ++Mode) {
    Gpu Device;
    uint64_t Out = Device.globalMemory().allocate(8);
    KernelLaunch L;
    L.WarpsPerBlock = 1;
    L.addParam64(Out);
    RunResult R = Device.run(*P, L,
                             Mode ? RunMode::Timed : RunMode::Oracle);
    EXPECT_TRUE(R.Valid) << R.FaultReason;
    Results[Mode] = Device.globalMemory().readValue<uint32_t>(Out);
  }
  EXPECT_EQ(Results[0], Results[1]) << "oracle/timed divergence";
  return Results[0];
}

uint32_t bits(float F) {
  uint32_t B;
  std::memcpy(&B, &F, sizeof(B));
  return B;
}
float asFloat(uint32_t B) {
  float F;
  std::memcpy(&F, &B, sizeof(F));
  return F;
}

/// Body line with conservative stall.
std::string ins(const std::string &Line) {
  return "  [B------:R-:W-:-:S08] " + Line + " ;\n";
}
/// Variable-latency line setting W5 followed by a waiting consumer.
std::string insVar(const std::string &Line) {
  return "  [B------:R-:W5:-:S02] " + Line + " ;\n" +
         "  [B-----5:R-:W-:-:S08] MOV R15, R15 ;\n";
}

} // namespace

//===----------------------------------------------------------------------===//
// Integer ALU
//===----------------------------------------------------------------------===//

TEST(ExecInt, Iadd3ThreeInputs) {
  EXPECT_EQ(runBody(ins("IADD3 R15, R4, R5, R6")), 19u);
}

TEST(ExecInt, Iadd3NegatedOperand) {
  EXPECT_EQ(runBody(ins("IADD3 R15, R4, -R5, RZ")), 2u);
}

TEST(ExecInt, Iadd3CarryOutSetAndClear) {
  // 0xffffffff + 9 overflows: carry-out P0 = 1 -> SEL picks R4.
  std::string Body = ins("MOV R7, 0xffffffff") +
                     ins("IADD3 R8, P0, R7, R4, RZ") +
                     ins("SEL R15, R4, R5, P0");
  EXPECT_EQ(runBody(Body), 9u);
  // 1 + 9 does not: P0 = 0 -> picks R5.
  Body = ins("MOV R7, 0x1") + ins("IADD3 R8, P0, R7, R4, RZ") +
         ins("SEL R15, R4, R5, P0");
  EXPECT_EQ(runBody(Body), 7u);
}

TEST(ExecInt, Iadd3CarryInChain) {
  // 64-bit increment idiom: low overflows, X adds the carry into high.
  std::string Body = ins("MOV R8, 0xffffffff") + ins("MOV R9, 0x5") +
                     ins("IADD3 R8, P1, R8, 0x1, RZ") +
                     ins("IADD3.X R15, R9, RZ, RZ, P1, !PT");
  EXPECT_EQ(runBody(Body), 6u);
}

TEST(ExecInt, ImadAndWide) {
  EXPECT_EQ(runBody(ins("IMAD R15, R4, R5, R6")), 66u);
  // WIDE: 64-bit product into a pair; low word stored.
  std::string Body = ins("IMAD.WIDE R14, R4, R5, RZ") +
                     ins("MOV R15, R14");
  EXPECT_EQ(runBody(Body), 63u);
}

TEST(ExecInt, ImadWideSignedHighWord) {
  // -2 * 7 = -14: the pair's high word is the sign extension, and it
  // lands in R15 (= R14|1) directly.
  EXPECT_EQ(runBody(ins("MOV R7, 0xfffffffe") +
                    ins("IMAD.WIDE R14, R7, R5, RZ")),
            0xffffffffu);
}

TEST(ExecInt, ImadWideUnsigned) {
  // U32: 0xfffffffe * 7 high word = 6 (not sign-extended).
  EXPECT_EQ(runBody(ins("MOV R7, 0xfffffffe") +
                    ins("IMAD.WIDE.U32 R14, R7, R5, RZ")),
            6u);
}

TEST(ExecInt, LeaShiftAdd) {
  // (9 << 2) + 7 = 43.
  EXPECT_EQ(runBody(ins("LEA R15, R4, R5, 0x2")), 43u);
}

TEST(ExecInt, Lop3CommonLuts) {
  EXPECT_EQ(runBody(ins("LOP3.LUT R15, R4, R5, RZ, 0xc0, !PT")),
            9u & 7u); // AND.
  EXPECT_EQ(runBody(ins("LOP3.LUT R15, R4, R5, RZ, 0xfc, !PT")),
            9u | 7u); // OR.
  EXPECT_EQ(runBody(ins("LOP3.LUT R15, R4, R5, RZ, 0x3c, !PT")),
            9u ^ 7u); // XOR.
}

TEST(ExecInt, ShfFunnelBothDirections) {
  // Right: (hi:lo) >> 4 with lo=0x00000090, hi=0x7 -> 0x70000009.
  std::string Body = ins("MOV R7, 0x90") + ins("MOV R8, 0x7") +
                     ins("SHF.R R15, R7, 0x4, R8");
  EXPECT_EQ(runBody(Body), 0x70000009u);
  // Left (returns high word of the 64-bit shift).
  Body = ins("MOV R7, 0x90000000") + ins("MOV R8, 0x1") +
         ins("SHF.L R15, R7, 0x4, R8");
  EXPECT_EQ(runBody(Body), 0x19u);
}

TEST(ExecInt, IabsNegative) {
  EXPECT_EQ(runBody(ins("MOV R7, 0xfffffff7") + ins("IABS R15, R7")), 9u);
}

TEST(ExecInt, ImnmxSignedVsUnsigned) {
  // Signed: min(-1, 7) = -1.
  std::string Body = ins("MOV R7, 0xffffffff") +
                     ins("IMNMX R15, R7, R5, PT");
  EXPECT_EQ(runBody(Body), 0xffffffffu);
  // Unsigned: min(0xffffffff, 7) = 7.
  Body = ins("MOV R7, 0xffffffff") + ins("IMNMX.U32 R15, R7, R5, PT");
  EXPECT_EQ(runBody(Body), 7u);
  // !PT selects max.
  EXPECT_EQ(runBody(ins("IMNMX R15, R4, R5, !PT")), 9u);
}

TEST(ExecInt, IsetpComparisonsAndCombine) {
  // GE true -> SEL picks first.
  std::string Body = ins("ISETP.GE.AND P0, PT, R4, R5, PT") +
                     ins("SEL R15, R4, R5, P0");
  EXPECT_EQ(runBody(Body), 9u);
  Body = ins("ISETP.LT.AND P0, PT, R4, R5, PT") +
         ins("SEL R15, R4, R5, P0");
  EXPECT_EQ(runBody(Body), 7u);
  // OR-combine with a false comparison but true accumulator.
  Body = ins("ISETP.LT.OR P0, PT, R4, R5, PT") +
         ins("SEL R15, R4, R5, P0");
  EXPECT_EQ(runBody(Body), 9u);
  // U32 comparison: 0xffffffff > 7 unsigned.
  Body = ins("MOV R7, 0xffffffff") +
         ins("ISETP.GT.U32.AND P0, PT, R7, R5, PT") +
         ins("SEL R15, R4, R5, P0");
  EXPECT_EQ(runBody(Body), 9u);
}

TEST(ExecInt, IsetpEveryCompareModifier) {
  // Regression for the dangling-string_view bug: the compare modifier
  // used to be read through a view into a temporary std::string (freed
  // stack memory under ASan), so any of these could flip nondeterm-
  // inistically. Pin all six against hand-computed results, both ways.
  struct Case {
    const char *Cmp;
    uint32_t WhenNineVsSeven; // R4=9, R5=7.
    uint32_t WhenEqual;       // R4=R5=9.
  } Cases[] = {
      {"LT", 7u, 7u}, {"LE", 7u, 9u}, {"GT", 9u, 7u},
      {"GE", 9u, 9u}, {"EQ", 7u, 9u}, {"NE", 9u, 7u},
  };
  for (const Case &C : Cases) {
    std::string Body =
        ins(std::string("ISETP.") + C.Cmp + ".AND P0, PT, R4, R5, PT") +
        ins("SEL R15, R4, R5, P0");
    EXPECT_EQ(runBody(Body), C.WhenNineVsSeven) << C.Cmp;
    // Equal operands (R7 vs R7) with distinguishable SEL arms (9 vs 7).
    std::string Body2 =
        ins("MOV R7, 0x9") +
        ins(std::string("ISETP.") + C.Cmp + ".AND P0, PT, R7, R7, PT") +
        ins("SEL R15, R4, R5, P0");
    EXPECT_EQ(runBody(Body2), C.WhenEqual) << C.Cmp << " (equal)";
  }
}

TEST(ExecInt, IsetpEmptyModifierListComparesFalse) {
  // A bare ISETP carries no compare modifier at all — exactly the branch
  // where the old code bound a string_view to a temporary "" string. The
  // comparison must deterministically evaluate to false (SEL picks R5).
  std::string Body = ins("ISETP P0, PT, R4, R5, PT") +
                     ins("SEL R15, R4, R5, P0");
  EXPECT_EQ(runBody(Body), 7u);
}

TEST(ExecInt, Popc) {
  EXPECT_EQ(runBody(ins("MOV R7, 0xf0f0") + ins("POPC R15, R7")), 8u);
}

//===----------------------------------------------------------------------===//
// FP32
//===----------------------------------------------------------------------===//

TEST(ExecFloat, AddMulFma) {
  uint32_t A = bits(2.5f), B = bits(1.5f), C = bits(-0.5f);
  EXPECT_EQ(runBody(ins("FADD R15, R4, R5"), A, B), bits(4.0f));
  EXPECT_EQ(runBody(ins("FMUL R15, R4, R5"), A, B), bits(3.75f));
  EXPECT_EQ(runBody(ins("FFMA R15, R4, R5, R6"), A, B, C), bits(3.25f));
}

TEST(ExecFloat, NegAbsModifiers) {
  uint32_t A = bits(-2.0f), B = bits(3.0f);
  EXPECT_EQ(runBody(ins("FADD R15, -R4, R5"), A, B), bits(5.0f));
  EXPECT_EQ(runBody(ins("FADD R15, |R4|, R5"), A, B), bits(5.0f));
}

TEST(ExecFloat, MinMaxSelSetp) {
  uint32_t A = bits(2.0f), B = bits(5.0f);
  EXPECT_EQ(runBody(ins("FMNMX R15, R4, R5, PT"), A, B), bits(2.0f));
  EXPECT_EQ(runBody(ins("FMNMX R15, R4, R5, !PT"), A, B), bits(5.0f));
  std::string Body = ins("FSETP.GT.AND P0, PT, R4, R5, PT") +
                     ins("FSEL R15, R4, R5, P0");
  EXPECT_EQ(runBody(Body, A, B), bits(5.0f)); // 2 > 5 false.
}

TEST(ExecFloat, FsetpEveryCompareModifier) {
  // Mirror of IsetpEveryCompareModifier for the FSETP copy of the
  // dangling-view bug: pin all six compare modifiers on 2.0 vs 5.0 and
  // on equal operands.
  uint32_t A = bits(2.0f), B = bits(5.0f);
  struct Case {
    const char *Cmp;
    uint32_t TwoVsFive; // FSEL picks R4 (2.0) when true, R5 (5.0) when false.
    uint32_t WhenEqual; // R4 = R5 = 2.0.
  } Cases[] = {
      {"LT", bits(2.0f), bits(5.0f)}, {"LE", bits(2.0f), bits(2.0f)},
      {"GT", bits(5.0f), bits(5.0f)}, {"GE", bits(5.0f), bits(2.0f)},
      {"EQ", bits(5.0f), bits(2.0f)}, {"NE", bits(2.0f), bits(5.0f)},
  };
  for (const Case &C : Cases) {
    std::string Body =
        ins(std::string("FSETP.") + C.Cmp + ".AND P0, PT, R4, R5, PT") +
        ins("FSEL R15, R4, R5, P0");
    EXPECT_EQ(runBody(Body, A, B), C.TwoVsFive) << C.Cmp;
    // Equal operands (R7 = 2.0 vs itself), FSEL arms stay 2.0 vs 5.0.
    std::string Body2 =
        ins("MOV R7, 0x40000000") +
        ins(std::string("FSETP.") + C.Cmp + ".AND P0, PT, R7, R7, PT") +
        ins("FSEL R15, R4, R5, P0");
    EXPECT_EQ(runBody(Body2, A, B), C.WhenEqual) << C.Cmp << " (equal)";
  }
}

TEST(ExecFloat, FsetpEmptyModifierListComparesFalse) {
  // Bare FSETP: no compare modifier — the dangling-view branch. Must be
  // deterministically false (FSEL picks R5).
  uint32_t A = bits(2.0f), B = bits(5.0f);
  std::string Body = ins("FSETP P0, PT, R4, R5, PT") +
                     ins("FSEL R15, R4, R5, P0");
  EXPECT_EQ(runBody(Body, A, B), bits(5.0f));
}

TEST(ExecFloat, MufuFunctions) {
  EXPECT_EQ(runBody(insVar("MUFU.RCP R15, R4"), bits(4.0f)),
            bits(0.25f));
  EXPECT_EQ(runBody(insVar("MUFU.EX2 R15, R4"), bits(3.0f)), bits(8.0f));
  EXPECT_EQ(runBody(insVar("MUFU.LG2 R15, R4"), bits(8.0f)), bits(3.0f));
  EXPECT_EQ(runBody(insVar("MUFU.SQRT R15, R4"), bits(9.0f)),
            bits(3.0f));
  EXPECT_EQ(runBody(insVar("MUFU.RSQ R15, R4"), bits(4.0f)), bits(0.5f));
}

//===----------------------------------------------------------------------===//
// Packed FP16 / tensor core
//===----------------------------------------------------------------------===//

TEST(ExecHalf, PackedAddMulFma) {
  uint32_t A = packHalf2(1.0f, 2.0f), B = packHalf2(0.5f, -1.0f);
  uint32_t Sum = runBody(ins("HADD2 R15, R4, R5"), A, B);
  EXPECT_EQ(unpackLo(Sum), 1.5f);
  EXPECT_EQ(unpackHi(Sum), 1.0f);
  uint32_t Prod = runBody(ins("HMUL2 R15, R4, R5"), A, B);
  EXPECT_EQ(unpackLo(Prod), 0.5f);
  EXPECT_EQ(unpackHi(Prod), -2.0f);
  uint32_t C = packHalf2(1.0f, 1.0f);
  uint32_t Fma = runBody(ins("HFMA2 R15, R4, R5, R6"), A, B, C);
  EXPECT_EQ(unpackLo(Fma), 1.5f);
  EXPECT_EQ(unpackHi(Fma), -1.0f);
}

TEST(ExecHalf, HmmaDot2Accumulate) {
  // acc(f32) += lo(a)*lo(b) + hi(a)*hi(b).
  uint32_t A = packHalf2(2.0f, 3.0f), B = packHalf2(4.0f, 5.0f);
  uint32_t C = bits(1.0f);
  uint32_t R = runBody(ins("HMMA.16816.F32 R15, R4, R5, R6"), A, B, C);
  EXPECT_EQ(asFloat(R), 1.0f + 8.0f + 15.0f);
}

TEST(ExecHalf, ImmaDot4SignedBytes) {
  // Bytes of A: {1, -2, 3, 4}; of B: {10, 20, 30, 40}; acc 5.
  uint32_t A = 0x0403fe01u, B = 0x281e140au;
  uint32_t R = runBody(ins("IMMA R15, R4, R5, R6"), A, B, 5);
  EXPECT_EQ(static_cast<int32_t>(R), 5 + 10 - 40 + 90 + 160);
}

//===----------------------------------------------------------------------===//
// Conversions / moves / misc
//===----------------------------------------------------------------------===//

TEST(ExecConv, IntFloatRoundTrips) {
  EXPECT_EQ(runBody(insVar("I2F R15, R4"), 9), bits(9.0f));
  EXPECT_EQ(runBody(insVar("I2F R15, R4"), 0xfffffff7u), bits(-9.0f));
  EXPECT_EQ(runBody(insVar("I2F.U32 R15, R4"), 0xfffffff7u),
            bits(4294967287.0f));
  EXPECT_EQ(runBody(insVar("F2I R15, R4"), bits(-3.7f)),
            static_cast<uint32_t>(-3));
  EXPECT_EQ(runBody(insVar("F2I.U32 R15, R4"), bits(-3.7f)), 0u);
}

TEST(ExecConv, HalfWidening) {
  uint32_t Packed = packHalf2(1.5f, 99.0f);
  EXPECT_EQ(runBody(insVar("F2F R15, R4"), Packed), bits(1.5f));
}

TEST(ExecMisc, PrmtByteSelect) {
  // Selector 0x5410: bytes {0,1,4,5} of (R5:R4).
  uint32_t R = runBody(ins("PRMT R15, R4, 0x5410, R5"), 0x44332211,
                       0x88776655);
  EXPECT_EQ(R, 0x66552211u);
  // MSB-replicate mode (selector nibble 8 | idx).
  R = runBody(ins("PRMT R15, R4, 0xba98, R5"), 0x44332211, 0x88776655);
  EXPECT_EQ(R, 0u); // All chosen bytes have MSB clear except... 0x88?
}

TEST(ExecMisc, Plop3PredicateLogic) {
  // AND of two true predicates through the 0x80 LUT.
  std::string Body = ins("ISETP.GE.AND P0, PT, R4, R5, PT") +
                     ins("ISETP.GE.AND P1, PT, R4, RZ, PT") +
                     ins("PLOP3.LUT P2, PT, P0, P1, PT, 0x80, 0x0") +
                     ins("SEL R15, R4, R5, P2");
  EXPECT_EQ(runBody(Body), 9u);
}

TEST(ExecMisc, Cs2rClockMonotonic) {
  std::string Body = ins("CS2R R7, SR_CLOCKLO") +
                     ins("CS2R R8, SR_CLOCKLO") +
                     ins("ISETP.GT.U32.AND P0, PT, R8, R7, PT") +
                     ins("SEL R15, R4, R5, P0");
  // Timed mode: clock advances; oracle counts instructions — both GT.
  EXPECT_EQ(runBody(Body), 9u);
}

TEST(ExecMisc, VoteAllBallot) {
  std::string Body = ins("VOTE.ALL R15, PT, PT");
  EXPECT_EQ(runBody(Body), 0xffffffffu);
}

//===----------------------------------------------------------------------===//
// Memory / atomics / predication
//===----------------------------------------------------------------------===//

TEST(ExecMem, SharedRoundTrip64) {
  std::string Body = ins("MOV R8, 0x11") + ins("MOV R9, 0x22") +
                     ins("STS.64 [RZ+0x10], R8") +
                     insVar("LDS R15, [RZ+0x14]");
  // Needs shared memory: use a custom runner.
  Expected<sass::Program> P = sass::Parser::parseProgram(
      "  [B------:R-:W-:-:S04] MOV R2, c[0x0][0x160] ;\n"
      "  [B------:R-:W-:-:S04] MOV R3, c[0x0][0x164] ;\n" +
          Body +
          "  [B------:R-:W-:-:S01] STG.E [R2.64], R15 ;\n"
          "  [B------:R-:W-:-:S01] EXIT ;\n",
      "shared");
  ASSERT_TRUE(P.hasValue());
  Gpu Device;
  uint64_t Out = Device.globalMemory().allocate(4);
  KernelLaunch L;
  L.WarpsPerBlock = 1;
  L.SharedBytes = 64;
  L.addParam64(Out);
  RunResult R = Device.run(*P, L, RunMode::Timed);
  ASSERT_TRUE(R.Valid) << R.FaultReason;
  EXPECT_EQ(Device.globalMemory().readValue<uint32_t>(Out), 0x22u);
}

TEST(ExecMem, AtomReturnsOldRedAccumulates) {
  const char *Text = R"(
  [B------:R-:W-:-:S04] MOV R2, c[0x0][0x160] ;
  [B------:R-:W-:-:S04] MOV R3, c[0x0][0x164] ;
  [B------:R-:W-:-:S06] MOV R8, 0x5 ;
  [B------:R-:W0:-:S02] ATOM.ADD R15, [R2.64+0x8], R8 ;
  [B0-----:R-:W1:-:S02] RED.ADD [R2.64+0x8], R8 ;
  [B01----:R-:W-:-:S01] STG.E [R2.64], R15 ;
  [B------:R-:W-:-:S01] EXIT ;
)";
  Expected<sass::Program> P = sass::Parser::parseProgram(Text, "atom");
  ASSERT_TRUE(P.hasValue()) << P.error().str();
  Gpu Device;
  uint64_t Buf = Device.globalMemory().allocate(16);
  Device.globalMemory().writeValue<uint32_t>(Buf + 8, 100);
  KernelLaunch L;
  L.WarpsPerBlock = 1;
  L.addParam64(Buf);
  RunResult R = Device.run(*P, L, RunMode::Timed);
  ASSERT_TRUE(R.Valid) << R.FaultReason;
  EXPECT_EQ(Device.globalMemory().readValue<uint32_t>(Buf), 100u);
  EXPECT_EQ(Device.globalMemory().readValue<uint32_t>(Buf + 8), 110u);
}

TEST(ExecPred, GuardSuppressesAndPasses) {
  std::string Body = ins("MOV R15, 0x1") +
                     ins("ISETP.GE.AND P0, PT, R4, R5, PT") +
                     ins("@P0 MOV R15, 0x2") + ins("@!P0 MOV R15, 0x3");
  EXPECT_EQ(runBody(Body), 2u); // 9 >= 7.
}

TEST(ExecPred, GuardedBranchFallsThroughWhenFalse) {
  const char *Text = R"(
  [B------:R-:W-:-:S04] MOV R2, c[0x0][0x160] ;
  [B------:R-:W-:-:S04] MOV R3, c[0x0][0x164] ;
  [B------:R-:W-:-:S08] ISETP.GT.AND P0, PT, RZ, RZ, PT ;
  [B------:R-:W-:-:S01] @P0 BRA `(.L_SKIP) ;
  [B------:R-:W-:-:S08] MOV R15, 0x7 ;
.L_SKIP:
  [B------:R-:W-:-:S01] STG.E [R2.64], R15 ;
  [B------:R-:W-:-:S01] EXIT ;
)";
  Expected<sass::Program> P = sass::Parser::parseProgram(Text, "bra");
  ASSERT_TRUE(P.hasValue());
  Gpu Device;
  uint64_t Out = Device.globalMemory().allocate(4);
  KernelLaunch L;
  L.WarpsPerBlock = 1;
  L.addParam64(Out);
  RunResult R = Device.run(*P, L, RunMode::Timed);
  ASSERT_TRUE(R.Valid);
  EXPECT_EQ(Device.globalMemory().readValue<uint32_t>(Out), 7u);
}

TEST(ExecPred, ShflIdentityAndPredicate) {
  // SHFL is variable latency: like on real hardware, its result needs a
  // scoreboard barrier before consumption.
  EXPECT_EQ(runBody(insVar("SHFL.IDX R15, P0, R4, RZ, RZ")), 9u);
}

//===- tests/support_test.cpp - support library unit tests -------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/AtomicFile.h"
#include "support/Error.h"
#include "support/FileLock.h"
#include "support/Rng.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

using namespace cuasmrl;

TEST(Rng, DeterministicForSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_LT(Same, 2);
}

TEST(Rng, UniformIntInBounds) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.uniformInt(17), 17u);
}

TEST(Rng, UniformIntCoversSupport) {
  Rng R(7);
  std::vector<int> Counts(8, 0);
  for (int I = 0; I < 8000; ++I)
    ++Counts[R.uniformInt(8)];
  for (int C : Counts)
    EXPECT_GT(C, 700); // ~1000 expected each.
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng R(3);
  for (int I = 0; I < 1000; ++I) {
    double X = R.uniformReal();
    EXPECT_GE(X, 0.0);
    EXPECT_LT(X, 1.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng R(11);
  double Sum = 0, SumSq = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I) {
    double X = R.normal();
    Sum += X;
    SumSq += X * X;
  }
  double Mean = Sum / N;
  double Var = SumSq / N - Mean * Mean;
  EXPECT_NEAR(Mean, 0.0, 0.05);
  EXPECT_NEAR(Var, 1.0, 0.05);
}

TEST(Rng, UniformRangeInclusive) {
  Rng R(5);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    int64_t X = R.uniformRange(-3, 3);
    EXPECT_GE(X, -3);
    EXPECT_LE(X, 3);
    SawLo |= X == -3;
    SawHi |= X == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng R(13);
  std::vector<double> W = {0.0, 1.0, 3.0};
  std::vector<int> Counts(3, 0);
  for (int I = 0; I < 8000; ++I)
    ++Counts[R.categorical(W)];
  EXPECT_EQ(Counts[0], 0);
  EXPECT_GT(Counts[2], Counts[1] * 2);
}

TEST(Rng, ShufflePermutes) {
  Rng R(17);
  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Orig = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Orig);
}

TEST(Rng, ForkIndependent) {
  Rng A(21);
  Rng B = A.fork();
  EXPECT_NE(A.next(), B.next());
}

TEST(StringUtils, SplitKeepsEmptyFields) {
  auto Parts = split("a::b:", ':');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[1], "");
  EXPECT_EQ(Parts[2], "b");
  EXPECT_EQ(Parts[3], "");
}

TEST(StringUtils, SplitWhitespaceDropsEmpty) {
  auto Parts = splitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0], "foo");
  EXPECT_EQ(Parts[2], "baz");
}

TEST(StringUtils, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
}

TEST(StringUtils, ParseIntDecimalAndHex) {
  EXPECT_EQ(parseInt("42").value(), 42);
  EXPECT_EQ(parseInt("-7").value(), -7);
  EXPECT_EQ(parseInt("0x1f").value(), 31);
  EXPECT_EQ(parseInt("-0x10").value(), -16);
  EXPECT_FALSE(parseInt("zebra").has_value());
  EXPECT_FALSE(parseInt("12x").has_value());
  EXPECT_FALSE(parseInt("").has_value());
}

TEST(StringUtils, ParseDouble) {
  EXPECT_DOUBLE_EQ(parseDouble("1.5").value(), 1.5);
  EXPECT_DOUBLE_EQ(parseDouble("-2e3").value(), -2000.0);
  EXPECT_FALSE(parseDouble("abc").has_value());
}

TEST(StringUtils, JoinAndUpper) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(toUpper("ldg.e"), "LDG.E");
}

TEST(StringUtils, StartsEndsWith) {
  EXPECT_TRUE(startsWith("IMAD.WIDE", "IMAD"));
  EXPECT_FALSE(startsWith("IMAD", "IMAD.WIDE"));
  EXPECT_TRUE(endsWith("R12.reuse", ".reuse"));
}

TEST(Table, AlignedOutputHasHeaderAndRows) {
  Table T({"kernel", "speedup"});
  T.addRow({"softmax", "1.05"});
  T.addRow("rmsnorm", {1.10}, 2);
  std::ostringstream OS;
  T.print(OS);
  std::string S = OS.str();
  EXPECT_NE(S.find("kernel"), std::string::npos);
  EXPECT_NE(S.find("softmax"), std::string::npos);
  EXPECT_NE(S.find("1.10"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table T({"a", "b"});
  T.addRow({"1", "2"});
  std::ostringstream OS;
  T.printCsv(OS);
  EXPECT_EQ(OS.str(), "a,b\n1,2\n");
}

TEST(ErrorTy, ExpectedValueAndError) {
  Expected<int> Ok(5);
  ASSERT_TRUE(Ok.hasValue());
  EXPECT_EQ(*Ok, 5);

  Expected<int> Bad(Error("bad things", 3, 7));
  ASSERT_FALSE(Bad.hasValue());
  EXPECT_EQ(Bad.error().message(), "bad things");
  EXPECT_NE(Bad.error().str().find("line 3"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  support::ThreadPool Pool(4);
  std::vector<std::atomic<int>> Counts(257);
  for (std::atomic<int> &C : Counts)
    C = 0;
  Pool.parallelFor(Counts.size(),
                   [&](size_t I) { Counts[I].fetch_add(1); });
  for (const std::atomic<int> &C : Counts)
    EXPECT_EQ(C.load(), 1);
}

TEST(ThreadPool, SubmitAndWaitDrains) {
  support::ThreadPool Pool(3);
  std::atomic<int> Done{0};
  for (int I = 0; I < 64; ++I)
    Pool.submit([&Done] { Done.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Done.load(), 64);
  // The pool is reusable after a drain.
  Pool.submit([&Done] { Done.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Done.load(), 65);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  support::ThreadPool Pool(2);
  std::atomic<int> Ran{0};
  EXPECT_THROW(Pool.parallelFor(16,
                                [&](size_t I) {
                                  Ran.fetch_add(1);
                                  if (I == 7)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // Every index still ran: one failure does not cancel the batch.
  EXPECT_EQ(Ran.load(), 16);
}

TEST(ThreadPool, DestructorJoinsOutstandingWork) {
  std::atomic<int> Done{0};
  {
    support::ThreadPool Pool(2);
    for (int I = 0; I < 32; ++I)
      Pool.submit([&Done] { Done.fetch_add(1); });
  } // Destructor must drain, then join.
  EXPECT_EQ(Done.load(), 32);
}

TEST(ThreadPool, ZeroThreadRequestClampsToOne) {
  support::ThreadPool Pool(0);
  EXPECT_EQ(Pool.threadCount(), 1u);
  std::atomic<int> Done{0};
  Pool.parallelFor(5, [&](size_t) { Done.fetch_add(1); });
  EXPECT_EQ(Done.load(), 5);
}

//===----------------------------------------------------------------------===//
// AtomicFile: write-sibling-then-rename persistence
//===----------------------------------------------------------------------===//

namespace {

std::string freshTmpDir(const std::string &Name) {
  std::string Dir =
      (std::filesystem::temp_directory_path() / Name).string();
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

std::string slurp(const std::string &Path) {
  std::ifstream IS(Path, std::ios::binary);
  std::ostringstream SS;
  SS << IS.rdbuf();
  return SS.str();
}

} // namespace

TEST(AtomicFile, WritesAndOverwritesAtomically) {
  std::string Dir = freshTmpDir("cuasmrl_atomicfile_test");
  std::string Path = Dir + "/blob.bin";
  ASSERT_TRUE(support::atomicWriteFile(Path, std::string("first")));
  EXPECT_EQ(slurp(Path), "first");
  // Last writer wins; no .tmp. sibling survives a completed write.
  ASSERT_TRUE(support::atomicWriteFile(Path, std::string("second")));
  EXPECT_EQ(slurp(Path), "second");
  unsigned NonTmp = 0;
  for (const auto &E : std::filesystem::directory_iterator(Dir)) {
    EXPECT_EQ(E.path().filename().string().find(".tmp."),
              std::string::npos);
    ++NonTmp;
  }
  EXPECT_EQ(NonTmp, 1u);
  std::filesystem::remove_all(Dir);
}

TEST(AtomicFile, FailsCleanlyOnMissingDirectory) {
  std::string Dir = freshTmpDir("cuasmrl_atomicfile_missing_test");
  std::filesystem::remove_all(Dir);
  // Nonexistent parent: the write must fail without creating anything.
  EXPECT_FALSE(support::atomicWriteFile(Dir + "/x.bin", std::string("v")));
  EXPECT_FALSE(std::filesystem::exists(Dir));
}

TEST(AtomicFile, SweepRemovesOnlyTmpOrphans) {
  std::string Dir = freshTmpDir("cuasmrl_atomicfile_sweep_test");
  ASSERT_TRUE(support::atomicWriteFile(Dir + "/keep.bin",
                                       std::string("keep")));
  { std::ofstream(Dir + "/keep.bin.tmp.123.4") << "torn"; }
  { std::ofstream(Dir + "/other.tmp.9.9") << "torn"; }
  EXPECT_EQ(support::sweepOrphanTmpFiles(Dir), 2u);
  EXPECT_TRUE(std::filesystem::exists(Dir + "/keep.bin"));
  EXPECT_EQ(slurp(Dir + "/keep.bin"), "keep");
  EXPECT_EQ(support::sweepOrphanTmpFiles(Dir), 0u); // Idempotent.
  // A directory that never existed sweeps as zero, not an error.
  EXPECT_EQ(support::sweepOrphanTmpFiles(Dir + "/nope"), 0u);
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// FileLock: cross-process claim files
//===----------------------------------------------------------------------===//

TEST(FileLock, ClaimIsExclusiveUntilReleased) {
  std::string Dir = freshTmpDir("cuasmrl_filelock_test");
  std::string Path = Dir + "/claims/key.lock";
  std::string A = support::FileLock::makeToken();
  std::string B = support::FileLock::makeToken();
  EXPECT_NE(A, B); // Same process, distinct claimants.

  // A wins the race; B cannot claim or release what A owns.
  EXPECT_TRUE(support::FileLock::tryClaim(Path, A));
  EXPECT_FALSE(support::FileLock::tryClaim(Path, B));
  EXPECT_EQ(support::FileLock::owner(Path).value_or(""), A);
  EXPECT_FALSE(support::FileLock::release(Path, B));
  EXPECT_TRUE(std::filesystem::exists(Path));

  EXPECT_TRUE(support::FileLock::release(Path, A));
  EXPECT_FALSE(std::filesystem::exists(Path));
  EXPECT_FALSE(support::FileLock::owner(Path).has_value());
  EXPECT_FALSE(support::FileLock::release(Path, A)); // Already gone.

  // Released path is claimable again.
  EXPECT_TRUE(support::FileLock::tryClaim(Path, B));
  EXPECT_TRUE(support::FileLock::release(Path, B));
  std::filesystem::remove_all(Dir);
}

TEST(FileLock, RefreshIsOwnershipChecked) {
  std::string Dir = freshTmpDir("cuasmrl_filelock_refresh_test");
  std::string Path = Dir + "/key.lock";
  std::string A = support::FileLock::makeToken();
  std::string B = support::FileLock::makeToken();
  EXPECT_FALSE(support::FileLock::refresh(Path, A)); // No claim yet.
  ASSERT_TRUE(support::FileLock::tryClaim(Path, A));
  EXPECT_TRUE(support::FileLock::refresh(Path, A));
  EXPECT_FALSE(support::FileLock::refresh(Path, B)); // Not the owner.
  auto Age = support::FileLock::age(Path);
  ASSERT_TRUE(Age.has_value());
  EXPECT_GE(Age->count(), 0); // Clamped against clock skew.
  std::filesystem::remove_all(Dir);
}

TEST(FileLock, BreakStaleRemovesOnlyOldClaims) {
  std::string Dir = freshTmpDir("cuasmrl_filelock_stale_test");
  std::string Path = Dir + "/key.lock";
  std::string A = support::FileLock::makeToken();
  ASSERT_TRUE(support::FileLock::tryClaim(Path, A));

  // A fresh heartbeat survives a generous staleness budget.
  EXPECT_FALSE(support::FileLock::breakStale(
      Path, std::chrono::milliseconds(60000)));
  EXPECT_TRUE(std::filesystem::exists(Path));

  // Backdate the heartbeat past the budget: the claim is breakable,
  // and the late original owner can no longer refresh or release a
  // path someone else re-claimed.
  std::filesystem::last_write_time(
      Path, std::filesystem::file_time_type::clock::now() -
                std::chrono::seconds(120));
  ASSERT_TRUE(support::FileLock::age(Path).has_value());
  EXPECT_GE(support::FileLock::age(Path)->count(), 100000);
  EXPECT_TRUE(support::FileLock::breakStale(
      Path, std::chrono::milliseconds(60000)));
  EXPECT_FALSE(std::filesystem::exists(Path));
  EXPECT_FALSE(support::FileLock::breakStale(
      Path, std::chrono::milliseconds(60000))); // Nothing left to break.

  std::string B = support::FileLock::makeToken();
  ASSERT_TRUE(support::FileLock::tryClaim(Path, B));
  EXPECT_FALSE(support::FileLock::refresh(Path, A));
  EXPECT_FALSE(support::FileLock::release(Path, A));
  EXPECT_EQ(support::FileLock::owner(Path).value_or(""), B);
  std::filesystem::remove_all(Dir);
}

TEST(FileLock, ConcurrentClaimantsExactlyOneWins) {
  std::string Dir = freshTmpDir("cuasmrl_filelock_race_test");
  std::string Path = Dir + "/key.lock";
  constexpr unsigned N = 8;
  std::vector<std::string> Tokens;
  for (unsigned I = 0; I < N; ++I)
    Tokens.push_back(support::FileLock::makeToken());
  std::atomic<unsigned> Wins{0};
  {
    support::ThreadPool Pool(N);
    Pool.parallelFor(N, [&](size_t I) {
      if (support::FileLock::tryClaim(Path, Tokens[I]))
        Wins.fetch_add(1);
    });
  }
  EXPECT_EQ(Wins.load(), 1u);
  auto Owner = support::FileLock::owner(Path);
  ASSERT_TRUE(Owner.has_value());
  EXPECT_TRUE(support::FileLock::release(Path, *Owner));
  std::filesystem::remove_all(Dir);
}

//===- tests/env_test.cpp - assembly game environment tests --------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "env/AssemblyGame.h"
#include "env/Embedding.h"
#include "sass/Parser.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

using namespace cuasmrl;
using namespace cuasmrl::env;
using kernels::BuiltKernel;
using kernels::ScheduleStyle;
using kernels::TileConfig;
using kernels::WorkloadKind;

namespace {

struct GameFixture {
  gpusim::Gpu Device;
  Rng DataRng{7};
  BuiltKernel Kernel;
  GameConfig Config;

  explicit GameFixture(WorkloadKind Kind = WorkloadKind::MmLeakyRelu,
                       unsigned EpisodeLength = 32) {
    Kernel = kernels::buildKernel(Device, Kind, kernels::testShape(Kind),
                                  kernels::candidateConfigs(Kind).front(),
                                  ScheduleStyle::TritonO3, DataRng);
    Config.EpisodeLength = EpisodeLength;
    Config.Measure.WarmupIters = 1;
    Config.Measure.RepeatIters = 1;
    Config.Measure.NoiseStddev = 0.0;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Embedding (§3.4)
//===----------------------------------------------------------------------===//

TEST(EmbeddingTest, ShapeMatchesProgram) {
  GameFixture F;
  Embedding E(F.Kernel.Prog);
  EXPECT_EQ(E.rows(), F.Kernel.Prog.instrCount());
  EXPECT_GE(E.features(), 11u + 1u);
  std::vector<float> Obs = E.embed(F.Kernel.Prog);
  EXPECT_EQ(Obs.size(), E.rows() * E.features());
}

TEST(EmbeddingTest, PaddingIsMinusOne) {
  Expected<sass::Program> P = sass::Parser::parseProgram(
      "  [B------:R-:W-:-:S01] MOV R0, 0x1 ;\n"
      "  [B------:R-:W-:-:S01] FFMA R2, R3, R4, R5 ;\n");
  ASSERT_TRUE(P.hasValue());
  Embedding E(*P);
  std::vector<float> Obs = E.embed(*P);
  // MOV has 2 operands, FFMA 4: MOV's trailing slots must be -1.
  size_t Feat = E.features();
  EXPECT_FLOAT_EQ(Obs[Feat - 1], -1.0f); // MOV row, last operand slot.
  EXPECT_NE(Obs[2 * Feat - 1], -1.0f);   // FFMA row uses all 4 slots.
}

TEST(EmbeddingTest, MemoryFlagDistinguishesOpcodes) {
  Expected<sass::Program> P = sass::Parser::parseProgram(
      "  [B------:R-:W0:-:S01] LDG.E R0, [R2.64] ;\n"
      "  [B------:R-:W-:-:S04] IADD3 R4, R4, 0x1, RZ ;\n");
  ASSERT_TRUE(P.hasValue());
  Embedding E(*P);
  std::vector<float> Obs = E.embed(*P);
  size_t MemFlag = 10; // After 6 wait bits, R, W, yield, stall.
  EXPECT_FLOAT_EQ(Obs[MemFlag], 1.0f);
  EXPECT_FLOAT_EQ(Obs[E.features() + MemFlag], -1.0f);
}

TEST(EmbeddingTest, SwapChangesObservation) {
  GameFixture F;
  AssemblyGame Game(F.Device, F.Kernel, F.Config);
  std::vector<float> Before = Game.reset();
  std::vector<uint8_t> Mask = Game.actionMask();
  unsigned Action = 0;
  while (Action < Mask.size() && !Mask[Action])
    ++Action;
  ASSERT_LT(Action, Mask.size());
  AssemblyGame::StepResult R = Game.step(Action);
  EXPECT_NE(Before, R.Observation);
}

//===----------------------------------------------------------------------===//
// Action space and masking (§3.5)
//===----------------------------------------------------------------------===//

TEST(GameTest, ActionSpaceCoversMemoryInstructions) {
  GameFixture F;
  AssemblyGame Game(F.Device, F.Kernel, F.Config);
  EXPECT_GT(Game.actionCount(), 0u);
  EXPECT_EQ(Game.actionCount() % 2, 0u);
}

TEST(GameTest, MaskHasLegalAndIllegalActions) {
  GameFixture F;
  AssemblyGame Game(F.Device, F.Kernel, F.Config);
  std::vector<uint8_t> Mask = Game.actionMask();
  unsigned Legal = 0;
  for (uint8_t M : Mask)
    Legal += M;
  EXPECT_GT(Legal, 0u);
  EXPECT_LT(Legal, Mask.size()); // Some swaps must be forbidden.
}

/// Property: *any* sequence of masked actions keeps the schedule
/// semantically equivalent to the original (timed run still matches the
/// architectural oracle bit-for-bit). This is the §3.5 guarantee.
TEST(GameTest, RandomMaskedWalksPreserveSemantics) {
  for (uint64_t Seed : {1ull, 2ull, 3ull}) {
    GameFixture F;
    AssemblyGame Game(F.Device, F.Kernel, F.Config);
    Rng Walk(Seed);
    Game.reset();
    for (int Step = 0; Step < 24; ++Step) {
      std::vector<uint8_t> Mask = Game.actionMask();
      std::vector<unsigned> LegalActions;
      for (unsigned A = 0; A < Mask.size(); ++A)
        if (Mask[A])
          LegalActions.push_back(A);
      if (LegalActions.empty())
        break;
      unsigned Action =
          LegalActions[Walk.uniformInt(LegalActions.size())];
      AssemblyGame::StepResult R = Game.step(Action);
      ASSERT_FALSE(R.Invalid) << "masked action produced invalid schedule";
      if (R.Done)
        break;
    }
    // Final check: mutated schedule still matches the oracle.
    F.Kernel.randomizeInputs(F.Device, F.DataRng);
    gpusim::RunResult Timed = F.Device.run(Game.current(), F.Kernel.Launch,
                                           gpusim::RunMode::Timed);
    ASSERT_TRUE(Timed.Valid) << Timed.FaultReason;
    std::vector<uint32_t> TimedOut = F.Kernel.readOutput(F.Device);
    gpusim::RunResult Ref = F.Device.run(Game.current(), F.Kernel.Launch,
                                         gpusim::RunMode::Oracle);
    ASSERT_TRUE(Ref.Valid);
    EXPECT_EQ(TimedOut, F.Kernel.readOutput(F.Device))
        << "seed " << Seed << ": masked walk corrupted the kernel";
  }
}

TEST(GameTest, InstructionCountInvariant) {
  GameFixture F;
  AssemblyGame Game(F.Device, F.Kernel, F.Config);
  size_t Before = Game.current().instrCount();
  Game.reset();
  Rng Walk(11);
  for (int Step = 0; Step < 10; ++Step) {
    std::vector<uint8_t> Mask = Game.actionMask();
    std::vector<unsigned> Legal;
    for (unsigned A = 0; A < Mask.size(); ++A)
      if (Mask[A])
        Legal.push_back(A);
    if (Legal.empty())
      break;
    Game.step(Legal[Walk.uniformInt(Legal.size())]);
  }
  EXPECT_EQ(Game.current().instrCount(), Before);
}

TEST(GameTest, UpThenDownReturnsToStart) {
  GameFixture F;
  AssemblyGame Game(F.Device, F.Kernel, F.Config);
  Game.reset();
  std::string Start = Game.current().str();
  std::vector<uint8_t> Mask = Game.actionMask();
  // Find a movable instruction whose 'up' is legal; its 'down'
  // afterwards restores the schedule (lingering behaviour, §5.7.2).
  for (unsigned A = 0; A + 1 < Mask.size(); A += 2) {
    if (!Mask[A])
      continue;
    Game.step(A);
    Game.step(A + 1);
    EXPECT_EQ(Game.current().str(), Start);
    return;
  }
  GTEST_SKIP() << "no legal up action";
}

//===----------------------------------------------------------------------===//
// Reward (§3.6, Eq. 3)
//===----------------------------------------------------------------------===//

TEST(GameTest, RewardMatchesEquation3) {
  GameFixture F;
  AssemblyGame Game(F.Device, F.Kernel, F.Config);
  Game.reset();
  double T0 = Game.initialTimeUs();
  double TBefore = Game.currentTimeUs();
  std::vector<uint8_t> Mask = Game.actionMask();
  unsigned Action = 0;
  while (!Mask[Action])
    ++Action;
  AssemblyGame::StepResult R = Game.step(Action);
  double TAfter = Game.currentTimeUs();
  EXPECT_NEAR(R.Reward, (TBefore - TAfter) / T0 * 100.0, 1e-9);
}

TEST(GameTest, BestScheduleTracked) {
  GameFixture F;
  AssemblyGame Game(F.Device, F.Kernel, F.Config);
  Game.reset();
  Rng Walk(5);
  for (int Step = 0; Step < 20; ++Step) {
    std::vector<uint8_t> Mask = Game.actionMask();
    std::vector<unsigned> Legal;
    for (unsigned A = 0; A < Mask.size(); ++A)
      if (Mask[A])
        Legal.push_back(A);
    if (Legal.empty())
      break;
    Game.step(Legal[Walk.uniformInt(Legal.size())]);
  }
  EXPECT_LE(Game.bestTimeUs(), Game.initialTimeUs() * 1.001);
}

TEST(GameTest, EpisodeEndsAtConfiguredLength) {
  GameFixture F(WorkloadKind::MmLeakyRelu, /*EpisodeLength=*/4);
  AssemblyGame Game(F.Device, F.Kernel, F.Config);
  Game.reset();
  int Steps = 0;
  for (;; ++Steps) {
    std::vector<uint8_t> Mask = Game.actionMask();
    unsigned Action = 0;
    while (Action < Mask.size() && !Mask[Action])
      ++Action;
    ASSERT_LT(Action, Mask.size());
    if (Game.step(Action).Done)
      break;
  }
  EXPECT_LT(Steps, 4);
}

TEST(GameTest, ResetRestoresOriginal) {
  GameFixture F;
  AssemblyGame Game(F.Device, F.Kernel, F.Config);
  std::string Original = Game.current().str();
  Game.reset();
  std::vector<uint8_t> Mask = Game.actionMask();
  unsigned Action = 0;
  while (!Mask[Action])
    ++Action;
  Game.step(Action);
  EXPECT_NE(Game.current().str(), Original);
  Game.reset();
  EXPECT_EQ(Game.current().str(), Original);
}

TEST(GameTest, TraceRecordsMoves) {
  GameFixture F;
  AssemblyGame Game(F.Device, F.Kernel, F.Config);
  Game.reset();
  std::vector<uint8_t> Mask = Game.actionMask();
  unsigned Action = 0;
  while (!Mask[Action])
    ++Action;
  Game.step(Action);
  ASSERT_EQ(Game.trace().size(), 1u);
  EXPECT_FALSE(Game.trace()[0].MovedText.empty());
}

/// §5.7.1 / Figure 9: moving the yield-flagged LDGSTS out of the HMMA
/// reuse pair must be a legal action and improve the runtime.
TEST(GameTest, Figure9MoveIsAvailableAndProfitable) {
  GameFixture F;
  F.Config.CacheMeasurements = false;
  AssemblyGame Game(F.Device, F.Kernel, F.Config);
  Game.reset();

  // Locate the breaker: a yield-flagged LDGSTS directly below an HMMA.
  const sass::Program &P = Game.current();
  size_t BreakerIdx = sass::Program::npos;
  for (size_t I = 1; I < P.size(); ++I) {
    if (!P.stmt(I).isInstr() || !P.stmt(I - 1).isInstr())
      continue;
    if (P.stmt(I).instr().opcode() == sass::Opcode::LDGSTS &&
        P.stmt(I).instr().ctrl().yield() &&
        P.stmt(I - 1).instr().opcode() == sass::Opcode::HMMA) {
      BreakerIdx = I;
      break;
    }
  }
  ASSERT_NE(BreakerIdx, sass::Program::npos)
      << "TritonO3 schedule must contain the Figure 9 artifact";
  // Swapping it below the next HMMA must be legal.
  EXPECT_TRUE(Game.swapLegal(BreakerIdx));
}

//===----------------------------------------------------------------------===//
// Masking ablation
//===----------------------------------------------------------------------===//

TEST(GameTest, UnmaskedWalkEventuallyFails) {
  GameFixture F;
  F.Config.UseActionMasking = false;
  AssemblyGame Game(F.Device, F.Kernel, F.Config);
  Rng Walk(3);
  bool SawInvalid = false;
  for (int Episode = 0; Episode < 4 && !SawInvalid; ++Episode) {
    Game.reset();
    for (int Step = 0; Step < 32; ++Step) {
      unsigned Action =
          static_cast<unsigned>(Walk.uniformInt(Game.actionCount()));
      AssemblyGame::StepResult R = Game.step(Action);
      if (R.Invalid) {
        SawInvalid = true;
        EXPECT_LT(R.Reward, 0.0);
        break;
      }
      if (R.Done)
        break;
    }
  }
  EXPECT_TRUE(SawInvalid)
      << "random unmasked reordering should corrupt the kernel";
}

TEST(GameTest, MeasurementCacheReducesWork) {
  GameFixture F;
  AssemblyGame Game(F.Device, F.Kernel, F.Config);
  Game.reset();
  std::vector<uint8_t> Mask = Game.actionMask();
  unsigned A = 0;
  while (!Mask[A])
    ++A;
  unsigned Before = Game.measurementsTaken();
  Game.step(A);     // New schedule: measured.
  Game.step(A ^ 1); // Back to original: cached.
  unsigned After = Game.measurementsTaken();
  EXPECT_EQ(After - Before,
            F.Config.Measure.WarmupIters + F.Config.Measure.RepeatIters);
}

//===----------------------------------------------------------------------===//
// Stall check after swap (Algorithm 1)
//===----------------------------------------------------------------------===//

namespace {

/// Builds a hand-crafted kernel around a fixed-latency producer A
/// (IMAD, stall `ProducerStall`), the movable LDG directly below it (B,
/// stall 6), and a consumer of A's result directly below B. Swapping A
/// and B removes B's 6-cycle stall from the producer-to-consumer path.
kernels::BuiltKernel craftedStallKernel(gpusim::Gpu &Device,
                                        unsigned ProducerStall) {
  char StallDigit = static_cast<char>('0' + ProducerStall);
  std::string Text;
  Text += "  [B------:R-:W-:-:S04] MOV R2, c[0x0][0x160] ;\n";
  Text += "  [B------:R-:W-:-:S04] MOV R3, c[0x0][0x164] ;\n";
  Text += "  [B------:R-:W-:-:S06] MOV R4, 0x9 ;\n";
  Text += "  [B------:R-:W-:-:S06] MOV R5, 0x7 ;\n";
  Text += "  [B------:R-:W-:-:S06] MOV R6, 0x3 ;\n";
  Text += std::string("  [B------:R-:W-:-:S0") + StallDigit +
          "] IMAD R8, R4, R5, R6 ;\n";                       // A (index 5)
  Text += "  [B------:R-:W0:-:S06] LDG.E R10, [R2.64] ;\n";  // B (index 6)
  Text += "  [B------:R-:W-:-:S04] IADD3 R12, R8, 0x1, RZ ;\n"; // uses R8
  Text += "  [B0-----:R-:W-:-:S04] IADD3 R13, R10, RZ, RZ ;\n";
  Text += "  [B------:R-:W-:-:S01] STG.E [R2.64], R12 ;\n";
  Text += "  [B------:R-:W-:-:S01] EXIT ;\n";

  Expected<sass::Program> P = sass::Parser::parseProgram(Text, "crafted");
  if (!P.hasValue()) // gtest reports the throw as a (fatal) test failure.
    throw std::runtime_error("crafted kernel failed to parse: " +
                             P.error().str());

  kernels::BuiltKernel K;
  K.Name = "crafted_stall";
  K.Prog = *P;
  uint64_t Out = Device.globalMemory().allocate(16);
  K.OutAddr = Out;
  K.OutBytes = 8;
  K.Launch.WarpsPerBlock = 1;
  K.Launch.addParam64(Out);
  return K;
}

GameConfig craftedConfig() {
  GameConfig Config;
  // The builtin table makes the required IMAD stall deterministic (5).
  Config.Table = analysis::StallTable::builtin();
  Config.Measure.WarmupIters = 1;
  Config.Measure.RepeatIters = 1;
  Config.Measure.NoiseStddev = 0.0;
  return Config;
}

} // namespace

TEST(GameTest, SwapRejectedWhenOnlyBsStallCoveredTheProducer) {
  // Pre-swap, the IMAD->IADD3 distance is stall(A) + stall(B) = 2 + 6,
  // comfortably over IMAD's required 5. Post-swap, A sits directly above
  // its consumer with only its own stall of 2 — the violation exists
  // *only* because B's stall contribution left the path, which is
  // exactly what Check 1 of stallCheckAfterSwap must detect.
  gpusim::Gpu Device;
  kernels::BuiltKernel K = craftedStallKernel(Device, /*ProducerStall=*/2);
  AssemblyGame Game(Device, K, craftedConfig());
  EXPECT_FALSE(Game.swapLegal(5));
}

TEST(GameTest, SwapAllowedWhenProducerStallAloneSuffices) {
  // Identical schedule except A's own stall already covers the required
  // 5 cycles: removing B's contribution no longer matters, so the same
  // swap must be legal. Together with the test above this pins the
  // post-swap distance computation to "exclude B, keep A".
  gpusim::Gpu Device;
  kernels::BuiltKernel K = craftedStallKernel(Device, /*ProducerStall=*/5);
  AssemblyGame Game(Device, K, craftedConfig());
  EXPECT_TRUE(Game.swapLegal(5));
}

//===----------------------------------------------------------------------===//
// Shared measurement cache across sibling games
//===----------------------------------------------------------------------===//

TEST(GameTest, SharedCacheSkipsSiblingInitialMeasurement) {
  GameFixture F;
  auto Cache = std::make_shared<gpusim::MeasurementCache>(1);
  F.Config.SharedCache = Cache;
  AssemblyGame First(F.Device, F.Kernel, F.Config);
  EXPECT_GT(First.measurementsTaken(), 0u);
  EXPECT_EQ(Cache->misses(), 1u);

  // The sibling plays the same kernel: its initial schedule is already
  // cached, so construction simulates nothing.
  AssemblyGame Second(F.Device, F.Kernel, F.Config);
  EXPECT_EQ(Second.measurementsTaken(), 0u);
  EXPECT_EQ(Cache->misses(), 1u);
  EXPECT_GE(Cache->hits(), 1u);
  EXPECT_EQ(First.initialTimeUs(), Second.initialTimeUs());
}

TEST(GameTest, CachedLatencyInvariantToWhichGameMeasuresFirst) {
  // The noise seed derives from the schedule key, never from arrival
  // order: a schedule's latency is identical whether a game measured
  // it via its private cache or inherited it from a sibling.
  GameFixture F;
  F.Config.Measure.NoiseStddev = 0.003; // Noise on: the hard case.

  AssemblyGame Private(F.Device, F.Kernel, F.Config); // Own cache.
  auto Cache = std::make_shared<gpusim::MeasurementCache>(1);
  F.Config.SharedCache = Cache;
  AssemblyGame SharedA(F.Device, F.Kernel, F.Config);
  AssemblyGame SharedB(F.Device, F.Kernel, F.Config);

  Private.reset();
  SharedA.reset();
  SharedB.reset();
  std::vector<uint8_t> Mask = Private.actionMask();
  unsigned Action = 0;
  while (!Mask[Action])
    ++Action;
  double RPrivate = Private.step(Action).Reward;
  double RSharedA = SharedA.step(Action).Reward;  // Simulates.
  double RSharedB = SharedB.step(Action).Reward;  // Pure cache hit.
  EXPECT_EQ(RPrivate, RSharedA);
  EXPECT_EQ(RSharedA, RSharedB);
}

TEST(GameTest, ConcurrentSiblingGamesMatchSerialRewards) {
  // Two games with private devices and a shared cache, stepped from
  // two threads, must reproduce the serial single-game reward sequence
  // exactly (the engine's worker-count determinism at the env level).
  GameFixture F;
  auto StepGreedyFirstLegal = [](AssemblyGame &Game, unsigned Steps) {
    std::vector<double> Rewards;
    Game.reset();
    for (unsigned I = 0; I < Steps; ++I) {
      std::vector<uint8_t> Mask = Game.actionMask();
      unsigned Action = 0;
      while (Action < Mask.size() && !Mask[Action])
        ++Action;
      if (Action == Mask.size())
        break;
      Rewards.push_back(Game.step(Action).Reward);
    }
    return Rewards;
  };

  AssemblyGame Serial(F.Device, F.Kernel, F.Config);
  std::vector<double> Expected = StepGreedyFirstLegal(Serial, 6);

  auto Cache = std::make_shared<gpusim::MeasurementCache>(1);
  F.Config.SharedCache = Cache;
  F.Config.PrivateDevice = true;
  AssemblyGame GameA(F.Device, F.Kernel, F.Config);
  AssemblyGame GameB(F.Device, F.Kernel, F.Config);

  std::vector<double> RewardsA, RewardsB;
  support::ThreadPool Pool(2);
  Pool.parallelFor(2, [&](size_t I) {
    if (I == 0)
      RewardsA = StepGreedyFirstLegal(GameA, 6);
    else
      RewardsB = StepGreedyFirstLegal(GameB, 6);
  });

  EXPECT_EQ(RewardsA, Expected);
  EXPECT_EQ(RewardsB, Expected);
}

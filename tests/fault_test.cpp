//===- tests/fault_test.cpp - robustness: deadlines, faults, degradation -----===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hardening contract of the serving stack: fake-clock deadlines
/// (expire-in-queue vs expire-mid-job), cooperative cancellation with a
/// bounded checkpoint latency, seeded retry/backoff sequences,
/// deterministic fault injection (a thrown job fails its response, not
/// the worker pool; attached waiters get the error too), orphan-tmp
/// sweeping, and near-miss graceful degradation with background cache
/// upgrade. The capstone scenario replays one injected fault schedule
/// at 1, 2, and 4 workers and requires identical statuses and counters
/// (modulo wall time and the in-queue/mid-job expiry split).
///
//===----------------------------------------------------------------------===//

#include "core/Optimizer.h"
#include "serve/DeployIndex.h"
#include "serve/OptimizationService.h"
#include "support/Cancellation.h"
#include "support/Clock.h"
#include "support/FaultInjector.h"
#include "support/Retry.h"
#include "triton/DeployCache.h"
#include "triton/Pipeline.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>

using namespace cuasmrl;
using namespace cuasmrl::kernels;
using namespace cuasmrl::serve;

namespace {

/// Fresh scratch directory, removed again on destruction.
struct TempDir {
  std::string Path;
  explicit TempDir(const std::string &Name)
      : Path((std::filesystem::temp_directory_path() / Name).string()) {
    std::filesystem::remove_all(Path);
  }
  ~TempDir() { std::filesystem::remove_all(Path); }
};

/// The serve_test tiny configuration: real training, sub-second jobs.
core::OptimizeConfig tinyConfig() {
  core::OptimizeConfig C;
  C.Ppo.TotalSteps = 32;
  C.Ppo.RolloutLen = 16;
  C.Ppo.MiniBatches = 2;
  C.Ppo.Epochs = 2;
  C.Ppo.Channels = 4;
  C.Ppo.Hidden = 16;
  C.Game.EpisodeLength = 8;
  C.Game.Measure.WarmupIters = 1;
  C.Game.Measure.RepeatIters = 1;
  C.Game.Measure.NoiseStddev = 0.001;
  C.AutotuneMeasure.WarmupIters = 1;
  C.AutotuneMeasure.RepeatIters = 1;
  C.AutotuneMeasure.NoiseStddev = 0.0;
  C.ProbTestRounds = 1;
  return C;
}

OptimizeRequest softmaxRequest(unsigned Rows) {
  OptimizeRequest R;
  R.Kind = WorkloadKind::Softmax;
  R.Shape = testShape(WorkloadKind::Softmax);
  R.Shape.Rows = Rows;
  return R;
}

cubin::CubinFile smallCubin() {
  gpusim::Gpu Device;
  Rng DataRng(3);
  triton::CompiledKernel K = triton::compileKernel(
      Device, WorkloadKind::Softmax, testShape(WorkloadKind::Softmax),
      candidateConfigs(WorkloadKind::Softmax).front(), DataRng);
  return K.Binary;
}

} // namespace

//===----------------------------------------------------------------------===//
// FakeClock
//===----------------------------------------------------------------------===//

TEST(FakeClockTest, AdvancesOnlyExplicitly) {
  support::FakeClock Clock;
  support::Clock::TimePoint T0 = Clock.now();
  EXPECT_EQ(Clock.now(), T0);
  Clock.advance(std::chrono::milliseconds(250));
  EXPECT_EQ(Clock.now() - T0, std::chrono::milliseconds(250));
}

TEST(FakeClockTest, SleepForAdvancesSharedTime) {
  support::FakeClock Clock;
  support::Clock::TimePoint T0 = Clock.now();
  Clock.sleepFor(std::chrono::milliseconds(75));
  EXPECT_EQ(Clock.now() - T0, std::chrono::milliseconds(75));
}

TEST(FakeClockTest, RealClockIsMonotonic) {
  support::Clock &C = support::Clock::real();
  support::Clock::TimePoint A = C.now();
  support::Clock::TimePoint B = C.now();
  EXPECT_LE(A, B);
}

//===----------------------------------------------------------------------===//
// CancelToken
//===----------------------------------------------------------------------===//

TEST(CancelTokenTest, ManualCancelTripsCheckpoint) {
  support::CancelToken Token;
  EXPECT_FALSE(Token.cancelled());
  EXPECT_NO_THROW(Token.checkpoint());
  Token.cancel();
  EXPECT_TRUE(Token.cancelled());
  EXPECT_THROW(Token.checkpoint(), support::CancelledError);
  EXPECT_EQ(Token.checkpointsPassed(), 2u);
}

TEST(CancelTokenTest, DeadlineAgainstFakeClockTrips) {
  support::FakeClock Clock;
  support::CancelToken Token;
  Token.setDeadline(Clock, Clock.now() + std::chrono::milliseconds(50));
  EXPECT_FALSE(Token.cancelled());
  Clock.advance(std::chrono::milliseconds(49));
  EXPECT_FALSE(Token.cancelled());
  Clock.advance(std::chrono::milliseconds(1));
  EXPECT_TRUE(Token.cancelled());
  EXPECT_THROW(Token.checkpoint(), support::CancelledError);
}

TEST(CancelTokenTest, PreCancelledOptimizeStopsAtFirstCheckpoint) {
  gpusim::Gpu Device;
  Rng DataRng(3);
  const core::Optimizer Opt(tinyConfig());
  support::CancelToken Token;
  Token.cancel();
  EXPECT_THROW(Opt.optimize(Device, WorkloadKind::Softmax,
                            testShape(WorkloadKind::Softmax), DataRng,
                            &Token),
               support::CancelledError);
  // Cancellation latency is bounded in checkpoints, not wall time: a
  // pre-cancelled token must stop the run at the very first poll (the
  // first autotune candidate), before any training happens.
  EXPECT_EQ(Token.checkpointsPassed(), 1u);
}

//===----------------------------------------------------------------------===//
// Retry policy
//===----------------------------------------------------------------------===//

TEST(RetryPolicyTest, ExponentialWithoutJitter) {
  support::RetryPolicy P;
  P.BaseDelay = std::chrono::milliseconds(10);
  P.Multiplier = 2.0;
  P.Jitter = 0.0;
  P.MaxDelay = std::chrono::milliseconds(2000);
  EXPECT_EQ(support::backoffDelay(P, 1, 7, 1).count(), 10);
  EXPECT_EQ(support::backoffDelay(P, 2, 7, 1).count(), 20);
  EXPECT_EQ(support::backoffDelay(P, 3, 7, 1).count(), 40);
}

TEST(RetryPolicyTest, ClampsToMaxDelay) {
  support::RetryPolicy P;
  P.BaseDelay = std::chrono::milliseconds(100);
  P.Multiplier = 10.0;
  P.Jitter = 0.0;
  P.MaxDelay = std::chrono::milliseconds(500);
  EXPECT_EQ(support::backoffDelay(P, 4, 7, 1).count(), 500);
}

TEST(RetryPolicyTest, JitterIsSeededAndBounded) {
  support::RetryPolicy P; // Jitter = 0.5 by default.
  for (unsigned Attempt = 1; Attempt <= 5; ++Attempt) {
    auto A = support::backoffDelay(P, Attempt, 7, 42);
    auto B = support::backoffDelay(P, Attempt, 7, 42);
    EXPECT_EQ(A.count(), B.count()); // Bit-reproducible.
    double Exp = 10.0;
    for (unsigned I = 1; I < Attempt; ++I)
      Exp *= 2.0;
    EXPECT_GE(A.count(), static_cast<int64_t>(Exp * 0.5) - 1);
    EXPECT_LE(A.count(), static_cast<int64_t>(Exp * 1.5) + 1);
  }
  // Distinct keys de-correlate (not all attempts collide).
  bool Differs = false;
  for (unsigned Attempt = 1; Attempt <= 5 && !Differs; ++Attempt)
    Differs = support::backoffDelay(P, Attempt, 7, 1) !=
              support::backoffDelay(P, Attempt, 7, 2);
  EXPECT_TRUE(Differs);
}

//===----------------------------------------------------------------------===//
// FaultInjector
//===----------------------------------------------------------------------===//

TEST(FaultInjectorTest, PlannedScheduleIsExactThenSucceeds) {
  support::FaultInjector F;
  F.plan("site:a", {1, 0, 1});
  EXPECT_TRUE(F.shouldFail("site:a"));
  EXPECT_FALSE(F.shouldFail("site:a"));
  EXPECT_TRUE(F.shouldFail("site:a"));
  EXPECT_FALSE(F.shouldFail("site:a")); // Beyond the schedule: succeed.
  EXPECT_EQ(F.checks("site:a"), 4u);
  EXPECT_EQ(F.fired("site:a"), 2u);
  EXPECT_EQ(F.totalFired(), 2u);
  EXPECT_FALSE(F.shouldFail("site:other")); // Unplanned sites succeed.
}

TEST(FaultInjectorTest, RateIsDeterministicInSeed) {
  auto Sequence = [](uint64_t Seed) {
    support::FaultInjector F(Seed);
    F.setRate("cache-", 0.5);
    std::vector<bool> Out;
    for (int I = 0; I < 32; ++I)
      Out.push_back(F.shouldFail("cache-store-fail:k"));
    return Out;
  };
  EXPECT_EQ(Sequence(7), Sequence(7));
  EXPECT_NE(Sequence(7), Sequence(8));
  // Prefix match: an unrelated site never fails.
  support::FaultInjector F(7);
  F.setRate("cache-", 1.0);
  EXPECT_TRUE(F.shouldFail("cache-store-fail:k"));
  EXPECT_FALSE(F.shouldFail("job-throw:k"));
}

TEST(FaultInjectorTest, PlannedDelaysPopInOrder) {
  support::FaultInjector F;
  F.planDelay("job-slow:k", {100, 50});
  EXPECT_EQ(F.delayMs("job-slow:k"), 100u);
  EXPECT_EQ(F.delayMs("job-slow:k"), 50u);
  EXPECT_EQ(F.delayMs("job-slow:k"), 0u); // Exhausted.
  EXPECT_EQ(F.delayMs("job-slow:other"), 0u);
  EXPECT_EQ(F.totalFired(), 0u); // Delays are not failures.
}

//===----------------------------------------------------------------------===//
// DeployCache fault sites + orphan sweep
//===----------------------------------------------------------------------===//

TEST(DeployCacheFaultTest, StoreFailSiteFailsWithoutPartialState) {
  TempDir Dir("cuasmrl_fault_cache_store");
  triton::DeployCache Cache(Dir.Path);
  support::FaultInjector F;
  Cache.setFaultInjector(&F);
  F.plan("cache-store-fail:k", {1});

  cubin::CubinFile Bin = smallCubin();
  EXPECT_FALSE(Cache.store("k", Bin));
  EXPECT_FALSE(Cache.contains("k")); // No file, no tmp debris.
  EXPECT_TRUE(!std::filesystem::exists(Dir.Path) ||
              std::filesystem::is_empty(Dir.Path));
  EXPECT_TRUE(Cache.store("k", Bin)); // Schedule exhausted: succeeds.
  EXPECT_TRUE(Cache.contains("k"));
}

TEST(DeployCacheFaultTest, LoadCorruptSiteLooksLikeDeserializeFailure) {
  TempDir Dir("cuasmrl_fault_cache_load");
  triton::DeployCache Cache(Dir.Path);
  support::FaultInjector F;
  Cache.setFaultInjector(&F);
  ASSERT_TRUE(Cache.store("k", smallCubin()));

  F.plan("cache-load-corrupt:k", {1});
  // The shape the service's load-retry path keys on: the key is
  // present (contains() true) but the read comes back unusable.
  EXPECT_FALSE(Cache.load("k").has_value());
  EXPECT_TRUE(Cache.contains("k"));
  EXPECT_TRUE(Cache.load("k").has_value()); // Next read is clean.
}

TEST(DeployCacheOrphanTest, ConstructionSweepsStaleTmpSiblings) {
  TempDir Dir("cuasmrl_fault_cache_orphans");
  {
    triton::DeployCache Cache(Dir.Path);
    ASSERT_TRUE(Cache.store("keep", smallCubin()));
  }
  // Plant the debris a crashed writer would leave: tmp siblings that
  // never reached their rename.
  std::ofstream(Dir.Path + "/keep.cubin.tmp.1234.7") << "torn write";
  std::ofstream(Dir.Path + "/gone.cubin.tmp.99.1") << "torn write";

  triton::DeployCache Cache(Dir.Path); // The ctor sweep runs here.
  std::vector<std::string> Names;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir.Path))
    Names.push_back(Entry.path().filename().string());
  ASSERT_EQ(Names.size(), 1u);
  EXPECT_EQ(Names[0], "keep.cubin");
  EXPECT_TRUE(Cache.load("keep").has_value()); // The real file survived.
}

//===----------------------------------------------------------------------===//
// DeployIndex (near-miss metadata)
//===----------------------------------------------------------------------===//

TEST(DeployIndexTest, MetaSidecarRoundTrips) {
  DeployedEntry E;
  E.GpuType = "A100-SIM";
  E.Kind = WorkloadKind::FlashAttention;
  E.Shape = testShape(WorkloadKind::FlashAttention);
  E.Key = "some-key";
  std::optional<DeployedEntry> Back =
      parseDeployMeta(encodeDeployMeta(E), "some-key");
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->GpuType, E.GpuType);
  EXPECT_EQ(Back->Kind, E.Kind);
  EXPECT_EQ(Back->Shape.SeqLen, E.Shape.SeqLen);
  EXPECT_EQ(Back->Key, "some-key");
  EXPECT_FALSE(parseDeployMeta("not a sidecar", "k").has_value());
}

TEST(DeployIndexTest, NearestIsScaleRelativeAndExcludesSelf) {
  auto Entry = [](unsigned Rows, const std::string &Key) {
    DeployedEntry E;
    E.GpuType = "A100-SIM";
    E.Kind = WorkloadKind::Softmax;
    E.Shape = testShape(WorkloadKind::Softmax);
    E.Shape.Rows = Rows;
    E.Key = Key;
    return E;
  };
  DeployIndex Index;
  Index.add(Entry(512, "k512"));
  Index.add(Entry(4096, "k4096"));

  WorkloadShape Probe = testShape(WorkloadKind::Softmax);
  Probe.Rows = 600;
  const DeployedEntry *Near =
      Index.nearest("A100-SIM", WorkloadKind::Softmax, Probe, "");
  ASSERT_NE(Near, nullptr);
  EXPECT_EQ(Near->Key, "k512");
  Probe.Rows = 3000;
  Near = Index.nearest("A100-SIM", WorkloadKind::Softmax, Probe, "");
  ASSERT_NE(Near, nullptr);
  EXPECT_EQ(Near->Key, "k4096");
  // Exclusion: the exact key that missed never serves itself.
  Near = Index.nearest("A100-SIM", WorkloadKind::Softmax, Probe, "k4096");
  ASSERT_NE(Near, nullptr);
  EXPECT_EQ(Near->Key, "k512");
  // Kind and GPU gates.
  EXPECT_EQ(Index.nearest("A100-SIM", WorkloadKind::Bmm, Probe, ""),
            nullptr);
  EXPECT_EQ(Index.nearest("H100-SIM", WorkloadKind::Softmax, Probe, ""),
            nullptr);
}

//===----------------------------------------------------------------------===//
// Service: deadlines
//===----------------------------------------------------------------------===//

TEST(ServiceDeadlineTest, ExpiresInQueueBeforeStart) {
  support::FakeClock Clock;
  gpusim::Gpu Device;
  ServiceConfig SC;
  SC.Workers = 1;
  SC.Defaults = tinyConfig();
  SC.StartPaused = true;
  SC.ClockSrc = &Clock;
  OptimizationService Service(Device, SC);

  OptimizeRequest R = softmaxRequest(512);
  R.Timeout = std::chrono::milliseconds(50);
  Ticket T = Service.submit(R);
  ASSERT_EQ(T.How, Admission::Enqueued);
  Clock.advance(std::chrono::milliseconds(100)); // Past the deadline.
  Service.start();

  ResponsePtr Resp = T.Response.get();
  EXPECT_EQ(Resp->St, OptimizeResponse::Status::DeadlineExceeded);
  ServiceStats S = Service.stats();
  EXPECT_EQ(S.DeadlineExceeded, 1u);
  EXPECT_EQ(S.ExpiredInQueue, 1u);
  EXPECT_EQ(S.ExpiredMidJob, 0u);
  EXPECT_EQ(S.OptimizeRuns, 0u); // Shed: the job never ran.
  Service.shutdown();
}

TEST(ServiceDeadlineTest, ExpiresMidJobAtNextCheckpoint) {
  support::FakeClock Clock;
  support::FaultInjector Faults;
  gpusim::Gpu Device;
  ServiceConfig SC;
  SC.Workers = 1;
  SC.Defaults = tinyConfig();
  SC.ClockSrc = &Clock;
  SC.Faults = &Faults;
  OptimizationService Service(Device, SC);

  OptimizeRequest R = softmaxRequest(512);
  R.Timeout = std::chrono::milliseconds(50);
  std::string Key = OptimizationService::requestKey(R, SC.Defaults);
  // The job's own injected slowness moves the fake clock past its own
  // deadline — at any worker count — and the next checkpoint trips.
  Faults.planDelay("job-slow:" + Key, {100});

  ResponsePtr Resp = Service.submit(R).Response.get();
  EXPECT_EQ(Resp->St, OptimizeResponse::Status::DeadlineExceeded);
  ServiceStats S = Service.stats();
  EXPECT_EQ(S.DeadlineExceeded, 1u);
  EXPECT_EQ(S.ExpiredMidJob, 1u);
  EXPECT_EQ(S.ExpiredInQueue, 0u);
  EXPECT_EQ(S.OptimizeRuns, 1u); // It started, then was cancelled.
  EXPECT_EQ(S.Completed, 0u);
  Service.shutdown();
}

TEST(ServiceDeadlineTest, PastDeadlineIsShedOnFirstPop) {
  support::FakeClock Clock;
  gpusim::Gpu Device;
  ServiceConfig SC;
  SC.Workers = 1;
  SC.Defaults = tinyConfig();
  SC.ClockSrc = &Clock;
  OptimizationService Service(Device, SC);

  OptimizeRequest R = softmaxRequest(512);
  R.Timeout = std::chrono::milliseconds(-1); // Already in the past.
  ResponsePtr Resp = Service.submit(R).Response.get();
  EXPECT_EQ(Resp->St, OptimizeResponse::Status::DeadlineExceeded);
  ServiceStats S = Service.stats();
  EXPECT_EQ(S.ExpiredInQueue, 1u);
  EXPECT_EQ(S.OptimizeRuns, 0u);
  Service.shutdown();
}

//===----------------------------------------------------------------------===//
// Service: retry/backoff
//===----------------------------------------------------------------------===//

namespace {

/// One service over a fake clock and injector, one worker.
struct FaultHarness {
  TempDir Dir;
  support::FakeClock Clock;
  support::FaultInjector Faults;
  gpusim::Gpu Device;
  ServiceConfig SC;
  std::unique_ptr<OptimizationService> Service;

  explicit FaultHarness(const std::string &Name, bool WithCache = true)
      : Dir("cuasmrl_fault_" + Name) {
    SC.Workers = 1;
    SC.Defaults = tinyConfig();
    SC.ClockSrc = &Clock;
    SC.Faults = &Faults;
    SC.Retry.BaseDelay = std::chrono::milliseconds(1);
    if (WithCache)
      SC.DeployDir = Dir.Path;
    Service = std::make_unique<OptimizationService>(Device, SC);
  }
  std::string key(const OptimizeRequest &R) const {
    return OptimizationService::requestKey(R, SC.Defaults);
  }
};

} // namespace

TEST(ServiceRetryTest, StoreRetriesThenPersists) {
  FaultHarness H("store_retry");
  OptimizeRequest R = softmaxRequest(512);
  H.Faults.plan("cache-store-fail:" + H.key(R), {1, 1});

  ResponsePtr Resp = H.Service->submit(R).Response.get();
  EXPECT_EQ(Resp->St, OptimizeResponse::Status::Optimized);
  EXPECT_TRUE(Resp->Persisted); // Third attempt landed.
  ServiceStats S = H.Service->stats();
  EXPECT_EQ(S.StoreRetries, 2u);
  EXPECT_EQ(S.PersistStores, 1u);
  EXPECT_EQ(S.PersistFailures, 0u);
  EXPECT_EQ(S.RetryExhausted, 0u);
  EXPECT_EQ(S.FaultsInjected, 2u);
  H.Service->shutdown();
}

TEST(ServiceRetryTest, StoreRetriesExhaustSurfaceAsPersistFailure) {
  FaultHarness H("store_exhaust");
  OptimizeRequest R = softmaxRequest(512);
  H.Faults.plan("cache-store-fail:" + H.key(R), {1, 1, 1});

  ResponsePtr Resp = H.Service->submit(R).Response.get();
  EXPECT_EQ(Resp->St, OptimizeResponse::Status::Optimized);
  EXPECT_FALSE(Resp->Persisted);
  ServiceStats S = H.Service->stats();
  EXPECT_EQ(S.StoreRetries, 2u); // MaxAttempts = 3: two backoffs.
  EXPECT_EQ(S.PersistStores, 0u);
  EXPECT_EQ(S.PersistFailures, 1u);
  EXPECT_EQ(S.RetryExhausted, 1u);
  H.Service->shutdown();
}

TEST(ServiceRetryTest, TransientJobErrorRetriesThenSucceeds) {
  FaultHarness H("job_transient");
  OptimizeRequest R = softmaxRequest(512);
  H.Faults.plan("job-transient:" + H.key(R), {1, 0});

  ResponsePtr Resp = H.Service->submit(R).Response.get();
  EXPECT_EQ(Resp->St, OptimizeResponse::Status::Optimized);
  ServiceStats S = H.Service->stats();
  EXPECT_EQ(S.JobRetries, 1u);
  EXPECT_EQ(S.Completed, 1u);
  EXPECT_EQ(S.Failed, 0u);
  H.Service->shutdown();
}

TEST(ServiceRetryTest, TransientJobErrorExhaustsToFailed) {
  FaultHarness H("job_exhaust");
  OptimizeRequest R = softmaxRequest(512);
  H.Faults.plan("job-transient:" + H.key(R), {1, 1, 1});

  ResponsePtr Resp = H.Service->submit(R).Response.get();
  EXPECT_EQ(Resp->St, OptimizeResponse::Status::Failed);
  EXPECT_NE(Resp->Error.find("retries exhausted"), std::string::npos);
  ServiceStats S = H.Service->stats();
  EXPECT_EQ(S.JobRetries, 2u);
  EXPECT_EQ(S.RetryExhausted, 1u);
  EXPECT_EQ(S.Failed, 1u);
  H.Service->shutdown();
}

TEST(ServiceRetryTest, CorruptLoadRetriesThenServesHit) {
  FaultHarness H("load_retry");
  OptimizeRequest R = softmaxRequest(512);
  ResponsePtr First = H.Service->submit(R).Response.get();
  ASSERT_TRUE(First->Persisted);

  H.Faults.plan("cache-load-corrupt:" + H.key(R), {1});
  Ticket T = H.Service->submit(R);
  EXPECT_EQ(T.How, Admission::LookupHit); // The retry rescued the hit.
  EXPECT_EQ(T.Response.get()->St, OptimizeResponse::Status::LookupHit);
  ServiceStats S = H.Service->stats();
  EXPECT_EQ(S.LoadRetries, 1u);
  EXPECT_EQ(S.LookupHits, 1u);
  EXPECT_EQ(S.OptimizeRuns, 1u); // Only the first submit trained.
  H.Service->shutdown();
}

//===----------------------------------------------------------------------===//
// Service: fault containment
//===----------------------------------------------------------------------===//

TEST(ServiceFaultTest, ThrownJobFailsAllWaitersAndFreesTheKey) {
  support::FakeClock Clock;
  support::FaultInjector Faults;
  gpusim::Gpu Device;
  ServiceConfig SC;
  SC.Workers = 1;
  SC.Defaults = tinyConfig();
  SC.StartPaused = true; // Admit both requests before any job runs.
  SC.ClockSrc = &Clock;
  SC.Faults = &Faults;
  OptimizationService Service(Device, SC);

  OptimizeRequest R = softmaxRequest(512);
  std::string Key = OptimizationService::requestKey(R, SC.Defaults);
  Faults.plan("job-throw:" + Key, {1});

  std::vector<OptimizeResponse::Status> Seen;
  std::mutex SeenMutex;
  auto Record = [&](const OptimizeResponse &Resp) {
    std::lock_guard<std::mutex> Lock(SeenMutex);
    Seen.push_back(Resp.St);
  };
  Ticket T1 = Service.submit(R, Record);
  Ticket T2 = Service.submit(R, Record); // Attaches to T1's job.
  ASSERT_EQ(T2.How, Admission::Attached);
  Service.start();

  // The submitter AND the attached waiter both get the error.
  EXPECT_EQ(T1.Response.get()->St, OptimizeResponse::Status::Failed);
  EXPECT_EQ(T2.Response.get()->St, OptimizeResponse::Status::Failed);
  Service.drain();
  {
    std::lock_guard<std::mutex> Lock(SeenMutex);
    ASSERT_EQ(Seen.size(), 2u);
    EXPECT_EQ(Seen[0], OptimizeResponse::Status::Failed);
    EXPECT_EQ(Seen[1], OptimizeResponse::Status::Failed);
  }

  // The key is not poisoned and the worker survived: a resubmit runs a
  // fresh job (the fault schedule is exhausted) and completes.
  Ticket T3 = Service.submit(R);
  EXPECT_EQ(T3.How, Admission::Enqueued);
  EXPECT_EQ(T3.Response.get()->St, OptimizeResponse::Status::Optimized);
  ServiceStats S = Service.stats();
  EXPECT_EQ(S.Failed, 1u);
  EXPECT_EQ(S.Completed, 1u);
  EXPECT_EQ(S.Merged, 1u);
  Service.shutdown();
}

//===----------------------------------------------------------------------===//
// Service: graceful degradation
//===----------------------------------------------------------------------===//

TEST(ServiceDegradedTest, NearMissServesNearestThenUpgrades) {
  FaultHarness H("degraded");
  // Deploy the near-miss source shape.
  OptimizeRequest Seed = softmaxRequest(512);
  ASSERT_TRUE(H.Service->submit(Seed).Response.get()->Persisted);

  OptimizeRequest R = softmaxRequest(1024);
  Ticket T = H.Service->submit(R);
  EXPECT_EQ(T.How, Admission::NearMiss);
  ResponsePtr Resp = T.Response.get(); // Resolved immediately.
  EXPECT_EQ(Resp->St, OptimizeResponse::Status::Degraded);
  EXPECT_EQ(Resp->Key, H.key(R));
  EXPECT_EQ(Resp->DegradedFrom, H.key(Seed));
  EXPECT_FALSE(Resp->Persisted);

  // The background exact-shape job upgrades the cache: the same
  // request is a plain lookup hit afterwards.
  H.Service->drain();
  Ticket Again = H.Service->submit(R);
  EXPECT_EQ(Again.How, Admission::LookupHit);
  ServiceStats S = H.Service->stats();
  EXPECT_EQ(S.DegradedHits, 1u);
  EXPECT_EQ(S.NearMissUpgrades, 1u);
  EXPECT_EQ(S.Completed, 2u); // The seed job and the background job.
  EXPECT_EQ(S.LookupHits, 1u);
  H.Service->shutdown();
}

TEST(ServiceDegradedTest, RequestFlagOptsOut) {
  FaultHarness H("degraded_optout");
  OptimizeRequest Seed = softmaxRequest(512);
  ASSERT_TRUE(H.Service->submit(Seed).Response.get()->Persisted);

  OptimizeRequest R = softmaxRequest(1024);
  R.AllowDegraded = false;
  Ticket T = H.Service->submit(R);
  EXPECT_EQ(T.How, Admission::Enqueued);
  EXPECT_EQ(T.Response.get()->St, OptimizeResponse::Status::Optimized);
  EXPECT_EQ(H.Service->stats().DegradedHits, 0u);
  H.Service->shutdown();
}

TEST(ServiceDegradedTest, IndexRebuildsFromSidecarsAcrossRestart) {
  TempDir Dir("cuasmrl_fault_restart");
  gpusim::Gpu Device;
  ServiceConfig SC;
  SC.Workers = 1;
  SC.Defaults = tinyConfig();
  SC.DeployDir = Dir.Path;
  OptimizeRequest Seed = softmaxRequest(512);
  {
    OptimizationService Service(Device, SC);
    ASSERT_TRUE(Service.submit(Seed).Response.get()->Persisted);
    Service.shutdown();
  }
  // A fresh service instance over the same directory reloads the meta
  // sidecars — near-miss serving survives restarts.
  OptimizationService Service(Device, SC);
  OptimizeRequest R = softmaxRequest(1024);
  Ticket T = Service.submit(R);
  EXPECT_EQ(T.How, Admission::NearMiss);
  EXPECT_EQ(T.Response.get()->DegradedFrom,
            OptimizationService::requestKey(Seed, SC.Defaults));
  Service.shutdown();
}

//===----------------------------------------------------------------------===//
// The acceptance scenario: one fault schedule, every worker count
//===----------------------------------------------------------------------===//

namespace {

struct ScenarioOutcome {
  std::map<std::string, double> Stats;
  OptimizeResponse::Status NearSt, StoreSt, ThrowSt, SlowSt;
  bool StorePersisted = false;
  std::string DegradedFrom;
  Admission ExactAfter = Admission::Rejected;
  uint64_t ExpiredInQueue = 0, ExpiredMidJob = 0, DeadlineExceeded = 0;
  double TotalJobWallMs = 0.0;
};

ScenarioOutcome runFaultSchedule(unsigned Workers) {
  TempDir Dir("cuasmrl_fault_sched_w" + std::to_string(Workers));
  support::FakeClock Clock;
  support::FaultInjector Faults(/*Seed=*/42);
  gpusim::Gpu Device;
  ServiceConfig SC;
  SC.Workers = Workers;
  SC.Defaults = tinyConfig();
  SC.DeployDir = Dir.Path;
  SC.ClockSrc = &Clock;
  SC.Faults = &Faults;
  SC.Retry.BaseDelay = std::chrono::milliseconds(1);
  OptimizationService Service(Device, SC);
  auto Key = [&](const OptimizeRequest &R) {
    return OptimizationService::requestKey(R, SC.Defaults);
  };

  // Phase 0: deploy the shape the near-miss request degrades onto.
  OptimizeRequest Seed = softmaxRequest(512);
  Service.submit(Seed);
  Service.drain();

  // Phase 1: the faulty mixed stream. The near-miss request goes first
  // so its index consultation sees exactly one deployed shape at any
  // worker count.
  OptimizeRequest NearR = softmaxRequest(768);
  OptimizeRequest StoreR = softmaxRequest(1024);
  StoreR.AllowDegraded = false;
  OptimizeRequest ThrowR;
  ThrowR.Kind = WorkloadKind::RmsNorm;
  ThrowR.Shape = testShape(WorkloadKind::RmsNorm);
  ThrowR.AllowDegraded = false;
  OptimizeRequest SlowR = softmaxRequest(2048);
  SlowR.AllowDegraded = false;
  SlowR.Timeout = std::chrono::milliseconds(50);

  Faults.plan("cache-store-fail:" + Key(StoreR), {1, 1});
  Faults.plan("job-throw:" + Key(ThrowR), {1});
  Faults.planDelay("job-slow:" + Key(SlowR), {100});

  Ticket TN = Service.submit(NearR);
  Ticket TS = Service.submit(StoreR);
  Ticket TT = Service.submit(ThrowR);
  Ticket TL = Service.submit(SlowR);
  Service.drain();

  ScenarioOutcome Out;
  Out.NearSt = TN.Response.get()->St;
  Out.DegradedFrom = TN.Response.get()->DegradedFrom;
  Out.StoreSt = TS.Response.get()->St;
  Out.StorePersisted = TS.Response.get()->Persisted;
  Out.ThrowSt = TT.Response.get()->St;
  Out.SlowSt = TL.Response.get()->St;
  Out.ExactAfter = Service.submit(softmaxRequest(768)).How;
  Service.drain();

  ServiceStats S = Service.stats();
  Out.ExpiredInQueue = S.ExpiredInQueue;
  Out.ExpiredMidJob = S.ExpiredMidJob;
  Out.DeadlineExceeded = S.DeadlineExceeded;
  Out.TotalJobWallMs = S.TotalJobWallMs;
  visitServiceCounters(S, [&](const char *Name, const auto &Value) {
    Out.Stats[Name] = static_cast<double>(Value);
  });
  // Wall time and the two sides of the expiry split are the only
  // legitimately worker-count-dependent numbers: which side a given
  // expiry lands on is pop timing. Their SUM is checked instead.
  Out.Stats.erase("TotalJobWallMs");
  Out.Stats.erase("ExpiredInQueue");
  Out.Stats.erase("ExpiredMidJob");
  Service.shutdown();
  return Out;
}

} // namespace

TEST(ServiceFaultScheduleTest, DeterministicAcrossWorkerCounts) {
  ScenarioOutcome W1 = runFaultSchedule(1);

  // Every request resolved with exactly the status its fault schedule
  // dictates — no hang, no lost worker, no stuck key.
  EXPECT_EQ(W1.NearSt, OptimizeResponse::Status::Degraded);
  EXPECT_FALSE(W1.DegradedFrom.empty());
  EXPECT_EQ(W1.StoreSt, OptimizeResponse::Status::Optimized);
  EXPECT_TRUE(W1.StorePersisted); // Two failures, third store landed.
  EXPECT_EQ(W1.ThrowSt, OptimizeResponse::Status::Failed);
  EXPECT_EQ(W1.SlowSt, OptimizeResponse::Status::DeadlineExceeded);
  EXPECT_EQ(W1.ExactAfter, Admission::LookupHit); // Upgrade landed.

  // Counters match the schedule exactly.
  EXPECT_EQ(W1.Stats.at("StoreRetries"), 2.0);
  EXPECT_EQ(W1.Stats.at("DegradedHits"), 1.0);
  EXPECT_EQ(W1.Stats.at("NearMissUpgrades"), 1.0);
  EXPECT_EQ(W1.Stats.at("Failed"), 1.0);
  EXPECT_EQ(W1.Stats.at("DeadlineExceeded"), 1.0);
  EXPECT_EQ(W1.Stats.at("FaultsInjected"), 3.0); // 2 store + 1 throw.
  EXPECT_EQ(W1.Stats.at("Completed"), 3.0); // Seed, store-retry, upgrade.
  EXPECT_EQ(W1.Stats.at("RetryExhausted"), 0.0);
  EXPECT_EQ(W1.ExpiredInQueue + W1.ExpiredMidJob, W1.DeadlineExceeded);

  for (unsigned Workers : {2u, 4u}) {
    ScenarioOutcome W = runFaultSchedule(Workers);
    EXPECT_EQ(W.NearSt, W1.NearSt) << Workers;
    EXPECT_EQ(W.DegradedFrom, W1.DegradedFrom) << Workers;
    EXPECT_EQ(W.StoreSt, W1.StoreSt) << Workers;
    EXPECT_EQ(W.ThrowSt, W1.ThrowSt) << Workers;
    EXPECT_EQ(W.SlowSt, W1.SlowSt) << Workers;
    EXPECT_EQ(W.ExactAfter, W1.ExactAfter) << Workers;
    EXPECT_EQ(W.ExpiredInQueue + W.ExpiredMidJob, W.DeadlineExceeded)
        << Workers;
    // Bit-identical counters at every worker count.
    EXPECT_EQ(W.Stats, W1.Stats) << "workers=" << Workers;
  }
}

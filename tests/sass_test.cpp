//===- tests/sass_test.cpp - SASS ISA model unit tests ------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "sass/ControlCode.h"
#include "sass/Instruction.h"
#include "sass/Opcode.h"
#include "sass/Parser.h"
#include "sass/Program.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace cuasmrl;
using namespace cuasmrl::sass;

namespace {

bool containsReg(const std::vector<Register> &Regs, Register R) {
  return std::find(Regs.begin(), Regs.end(), R) != Regs.end();
}

Instruction parse(const std::string &Line) {
  Expected<Instruction> I = Parser::parseInstruction(Line);
  EXPECT_TRUE(I.hasValue()) << (I.hasValue() ? "" : I.error().str());
  return I.hasValue() ? I.takeValue() : Instruction();
}

} // namespace

//===----------------------------------------------------------------------===//
// Register / Eq. 2
//===----------------------------------------------------------------------===//

TEST(Register, Spelling) {
  EXPECT_EQ(Register::general(12).str(), "R12");
  EXPECT_EQ(Register::rz().str(), "RZ");
  EXPECT_EQ(Register::uniform(4).str(), "UR4");
  EXPECT_EQ(Register::urz().str(), "URZ");
  EXPECT_EQ(Register::predicate(0).str(), "P0");
  EXPECT_EQ(Register::pt().str(), "PT");
}

TEST(Register, ZeroRegistersCarryNoDependencies) {
  EXPECT_TRUE(Register::rz().isZero());
  EXPECT_TRUE(Register::urz().isZero());
  EXPECT_TRUE(Register::pt().isZero());
  EXPECT_FALSE(Register::general(0).isZero());
}

/// Paper Eq. 2: base = r/2, mod = r%2, flip = 1-mod, adj = base*2+flip.
TEST(Register, AdjacentMatchesEquation2) {
  for (unsigned R = 0; R < 64; ++R) {
    unsigned Base = R / 2, Mod = R % 2, Flip = 1 - Mod;
    unsigned Expected = Base * 2 + Flip;
    EXPECT_EQ(Register::general(R).adjacent().index(), Expected);
    // The closed form is r xor 1.
    EXPECT_EQ(Expected, R ^ 1u);
  }
}

TEST(Register, AdjacentIsInvolution) {
  for (unsigned R = 0; R < 32; ++R)
    EXPECT_EQ(Register::general(R).adjacent().adjacent().index(), R);
}

//===----------------------------------------------------------------------===//
// Control codes
//===----------------------------------------------------------------------===//

TEST(ControlCode, ParsePaperExample) {
  // From paper §2.3: [B------:R-:W2:Y:S02] — with the yield flag set the
  // fourth field is 'Y'.
  Expected<ControlCode> CC = ControlCode::parse("[B------:R-:W2:Y:S02]");
  ASSERT_TRUE(CC.hasValue()) << CC.error().str();
  EXPECT_EQ(CC->waitMask(), 0);
  EXPECT_FALSE(CC->hasReadBarrier());
  EXPECT_EQ(CC->writeBarrier(), 2);
  EXPECT_TRUE(CC->yield());
  EXPECT_EQ(CC->stall(), 2u);
}

TEST(ControlCode, ParseWaitMask) {
  Expected<ControlCode> CC = ControlCode::parse("[B0-2--5:R1:W-:-:S11]");
  ASSERT_TRUE(CC.hasValue()) << CC.error().str();
  EXPECT_TRUE(CC->waitsOn(0));
  EXPECT_FALSE(CC->waitsOn(1));
  EXPECT_TRUE(CC->waitsOn(2));
  EXPECT_TRUE(CC->waitsOn(5));
  EXPECT_EQ(CC->readBarrier(), 1);
  EXPECT_EQ(CC->stall(), 11u);
}

TEST(ControlCode, RoundTripAllFields) {
  ControlCode CC;
  CC.setWait(1);
  CC.setWait(4);
  CC.setReadBarrier(3);
  CC.setWriteBarrier(0);
  CC.setYield(true);
  CC.setStall(13);
  Expected<ControlCode> Again = ControlCode::parse(CC.str());
  ASSERT_TRUE(Again.hasValue());
  EXPECT_EQ(*Again, CC);
}

TEST(ControlCode, EncodeDecodeRoundTrip) {
  for (unsigned Wait = 0; Wait < 64; Wait += 7) {
    for (int RB : {-1, 0, 3, 5}) {
      for (int WB : {-1, 2, 5}) {
        ControlCode CC;
        CC.setWaitMask(static_cast<uint8_t>(Wait));
        CC.setReadBarrier(RB);
        CC.setWriteBarrier(WB);
        CC.setYield(Wait % 2);
        CC.setStall(Wait % 16);
        EXPECT_EQ(ControlCode::decode(CC.encode()), CC);
      }
    }
  }
}

TEST(ControlCode, RejectsMalformed) {
  EXPECT_FALSE(ControlCode::parse("B------:R-:W-:-:S01").hasValue());
  EXPECT_FALSE(ControlCode::parse("[B-----:R-:W-:-:S01]").hasValue());
  EXPECT_FALSE(ControlCode::parse("[B------:R-:W-:-:S99]").hasValue());
  EXPECT_FALSE(ControlCode::parse("[B------:R-:W9:-:S01]").hasValue());
  EXPECT_FALSE(ControlCode::parse("[B------:R-:W-:-]").hasValue());
}

//===----------------------------------------------------------------------===//
// Opcode properties
//===----------------------------------------------------------------------===//

TEST(Opcode, MemoryClassification) {
  EXPECT_TRUE(getOpcodeInfo(Opcode::LDG).IsLoad);
  EXPECT_TRUE(getOpcodeInfo(Opcode::STG).IsStore);
  EXPECT_EQ(getOpcodeInfo(Opcode::LDGSTS).Space, MemSpace::GlobalToShared);
  EXPECT_EQ(getOpcodeInfo(Opcode::LDS).Space, MemSpace::Shared);
  EXPECT_EQ(getOpcodeInfo(Opcode::IADD3).Space, MemSpace::None);
}

TEST(Opcode, ReorderableSetMatchesPaper) {
  // §3.5: the agent picks memory load/store instructions such as LDG,
  // LDGSTS and STG.
  for (Opcode Op : {Opcode::LDG, Opcode::STG, Opcode::LDS, Opcode::STS,
                    Opcode::LDGSTS, Opcode::LDSM})
    EXPECT_TRUE(getOpcodeInfo(Op).IsReorderable);
  for (Opcode Op : {Opcode::IADD3, Opcode::HMMA, Opcode::BAR, Opcode::BRA,
                    Opcode::LDC})
    EXPECT_FALSE(getOpcodeInfo(Op).IsReorderable);
}

TEST(Opcode, BarrierAndControlFlow) {
  EXPECT_TRUE(getOpcodeInfo(Opcode::BAR).IsBarrierOrSync);
  EXPECT_TRUE(getOpcodeInfo(Opcode::LDGDEPBAR).IsBarrierOrSync);
  EXPECT_TRUE(getOpcodeInfo(Opcode::BRA).IsControlFlow);
  EXPECT_TRUE(getOpcodeInfo(Opcode::EXIT).IsControlFlow);
}

TEST(Opcode, ParseByName) {
  EXPECT_EQ(parseOpcode("LDGSTS").value(), Opcode::LDGSTS);
  EXPECT_EQ(parseOpcode("IMAD").value(), Opcode::IMAD);
  EXPECT_FALSE(parseOpcode("FROBNICATE").has_value());
}

/// Ground-truth latencies must match the paper's Table 1.
TEST(Opcode, Table1GroundTruth) {
  EXPECT_EQ(groundTruthLatency("IADD3").value(), 4u);
  EXPECT_EQ(groundTruthLatency("IADD3.X").value(), 4u);
  EXPECT_EQ(groundTruthLatency("IMAD.IADD").value(), 4u);
  EXPECT_EQ(groundTruthLatency("MOV").value(), 4u);
  EXPECT_EQ(groundTruthLatency("IABS").value(), 4u);
  EXPECT_EQ(groundTruthLatency("IMAD").value(), 5u);
  EXPECT_EQ(groundTruthLatency("FADD").value(), 5u);
  EXPECT_EQ(groundTruthLatency("HADD2").value(), 5u);
  EXPECT_EQ(groundTruthLatency("IMNMX").value(), 5u);
  EXPECT_EQ(groundTruthLatency("SEL").value(), 5u);
  EXPECT_EQ(groundTruthLatency("LEA").value(), 5u);
  EXPECT_EQ(groundTruthLatency("IMAD.WIDE").value(), 5u);
  EXPECT_EQ(groundTruthLatency("IMAD.WIDE.U32").value(), 5u);
}

TEST(Opcode, LatencyKeySelectsModifierForms) {
  Instruction I = parse("IMAD.WIDE R4, R2, R3, R6 ;");
  EXPECT_EQ(I.latencyKey().value(), "IMAD.WIDE");
  I = parse("IMAD.WIDE.U32 R4, R2, R3, R6 ;");
  EXPECT_EQ(I.latencyKey().value(), "IMAD.WIDE.U32");
  I = parse("IMAD.IADD R4, R2, 0x1, R6 ;");
  EXPECT_EQ(I.latencyKey().value(), "IMAD.IADD");
  I = parse("IADD3.X R4, R2, R3, RZ, P0, !PT ;");
  EXPECT_EQ(I.latencyKey().value(), "IADD3.X");
  I = parse("LDG.E R0, [R2.64] ;");
  EXPECT_FALSE(I.latencyKey().has_value());
}

//===----------------------------------------------------------------------===//
// Operand parsing
//===----------------------------------------------------------------------===//

TEST(Operand, ParseBasicRegister) {
  Expected<Operand> Op = Parser::parseOperand("R12");
  ASSERT_TRUE(Op.hasValue());
  EXPECT_TRUE(Op->isReg());
  EXPECT_EQ(Op->baseReg(), Register::general(12));
}

TEST(Operand, ParseModifiers) {
  Expected<Operand> Op = Parser::parseOperand("-R4");
  ASSERT_TRUE(Op.hasValue());
  EXPECT_TRUE(Op->isNegated());

  Op = Parser::parseOperand("|R7|");
  ASSERT_TRUE(Op.hasValue());
  EXPECT_TRUE(Op->isAbs());

  Op = Parser::parseOperand("!P3");
  ASSERT_TRUE(Op.hasValue());
  EXPECT_TRUE(Op->isNot());
  EXPECT_TRUE(Op->baseReg().isPredicate());

  Op = Parser::parseOperand("R8.reuse");
  ASSERT_TRUE(Op.hasValue());
  EXPECT_TRUE(Op->hasReuse());

  Op = Parser::parseOperand("R2.64");
  ASSERT_TRUE(Op.hasValue());
  EXPECT_TRUE(Op->isWide());
}

TEST(Operand, ParseImmediates) {
  EXPECT_EQ(Parser::parseOperand("0x10")->immValue(), 16);
  EXPECT_EQ(Parser::parseOperand("-3")->immValue(), -3);
  EXPECT_DOUBLE_EQ(Parser::parseOperand("1.5")->floatValue(), 1.5);
}

TEST(Operand, ParseConstMem) {
  Expected<Operand> Op = Parser::parseOperand("c[0x0][0x160]");
  ASSERT_TRUE(Op.hasValue());
  EXPECT_TRUE(Op->isConstMem());
  EXPECT_EQ(Op->constBank(), 0u);
  EXPECT_EQ(Op->constOffset(), 0x160);
}

TEST(Operand, ParseMemoryForms) {
  Expected<Operand> Op = Parser::parseOperand("[R2.64]");
  ASSERT_TRUE(Op.hasValue());
  EXPECT_TRUE(Op->isMem());
  EXPECT_TRUE(Op->isWide());
  EXPECT_EQ(Op->memOffset(), 0);

  Op = Parser::parseOperand("[R219+0x4000]");
  ASSERT_TRUE(Op.hasValue());
  EXPECT_EQ(Op->baseReg(), Register::general(219));
  EXPECT_EQ(Op->memOffset(), 0x4000);

  Op = Parser::parseOperand("desc[UR16][R10.64]");
  ASSERT_TRUE(Op.hasValue());
  EXPECT_TRUE(Op->hasDesc());
  EXPECT_EQ(Op->descReg(), Register::uniform(16));
  EXPECT_TRUE(Op->isWide());
}

TEST(Operand, ParseSpecialAndLabel) {
  EXPECT_TRUE(Parser::parseOperand("SR_CLOCKLO")->isSpecial());
  Expected<Operand> L = Parser::parseOperand("`(.L_12)");
  ASSERT_TRUE(L.hasValue());
  EXPECT_TRUE(L->isLabel());
  EXPECT_EQ(L->name(), ".L_12");
}

TEST(Operand, RejectsGarbage) {
  EXPECT_FALSE(Parser::parseOperand("R999").hasValue());
  EXPECT_FALSE(Parser::parseOperand("[R2").hasValue());
  EXPECT_FALSE(Parser::parseOperand("%%").hasValue());
  EXPECT_FALSE(Parser::parseOperand("R4.flibber").hasValue());
}

/// `.64` operands expand to the Eq. 2 adjacent register.
TEST(Operand, ExpandRegistersWide) {
  Operand Op = *Parser::parseOperand("[R18.64]");
  std::vector<Register> Regs = Op.expandRegisters();
  EXPECT_TRUE(containsReg(Regs, Register::general(18)));
  EXPECT_TRUE(containsReg(Regs, Register::general(19)));
}

TEST(Operand, ExpandIncludesDescriptor) {
  Operand Op = *Parser::parseOperand("desc[UR16][R10.64]");
  std::vector<Register> Regs = Op.expandRegisters();
  EXPECT_TRUE(containsReg(Regs, Register::general(10)));
  EXPECT_TRUE(containsReg(Regs, Register::general(11)));
  EXPECT_TRUE(containsReg(Regs, Register::uniform(16)));
}

TEST(Operand, ZeroRegisterExpandsEmpty) {
  Operand Op = *Parser::parseOperand("RZ");
  EXPECT_TRUE(Op.expandRegisters().empty());
}

//===----------------------------------------------------------------------===//
// Instruction parsing, printing and def/use extraction
//===----------------------------------------------------------------------===//

TEST(Instruction, ParsePaperLdg) {
  Expected<Instruction> I = Parser::parseInstruction(
      "[B------:R-:W2:Y:S02] LDG.E R0, [R2.64] ;");
  ASSERT_TRUE(I.hasValue()) << I.error().str();
  EXPECT_EQ(I->opcode(), Opcode::LDG);
  EXPECT_TRUE(I->hasModifier("E"));
  EXPECT_EQ(I->ctrl().writeBarrier(), 2);
  ASSERT_EQ(I->operands().size(), 2u);
}

TEST(Instruction, ParseGuard) {
  Instruction I = parse("@!P0 BRA `(.L_EXIT) ;");
  EXPECT_TRUE(I.hasGuard());
  EXPECT_TRUE(I.guardNegated());
  EXPECT_EQ(I.guardReg(), Register::predicate(0));

  I = parse("@P2 EXIT ;");
  EXPECT_TRUE(I.hasGuard());
  EXPECT_FALSE(I.guardNegated());
}

TEST(Instruction, AlwaysFalseGuardDetected) {
  Instruction I = parse("@!PT LDS.128 R24, [R72] ;");
  EXPECT_TRUE(I.isAlwaysFalseGuard());
  I = parse("@!P0 LDS.128 R24, [R72] ;");
  EXPECT_FALSE(I.isAlwaysFalseGuard());
}

TEST(Instruction, PrintParseRoundTrip) {
  const char *Lines[] = {
      "LDG.E.128 R4, desc[UR16][R2.64+0x40] ;",
      "STG.E [R6.64], R18 ;",
      "IADD3 R9, R9, 0x1, RZ ;",
      "IMAD.WIDE R10, R9, 0x4, R2 ;",
      "ISETP.GE.AND P0, PT, R9, R8, PT ;",
      "FFMA R18, R12, R13, R14 ;",
      "LDGSTS.E.BYPASS.128 [R74], desc[UR18][R18.64], P4 ;",
      "HMMA.16816.F32 R24, R4.reuse, R8, R24 ;",
      "BAR.SYNC 0x0 ;",
      "@!PT LDS.128 R24, [R72] ;",
  };
  for (const char *Line : Lines) {
    Instruction I = parse(Line);
    Instruction J = parse(I.str());
    EXPECT_EQ(I.str(), J.str()) << "unstable round trip for " << Line;
  }
}

TEST(Instruction, DefsSimple) {
  Instruction I = parse("IADD3 R9, R9, 0x1, RZ ;");
  std::vector<Register> Defs = I.regDefs();
  ASSERT_EQ(Defs.size(), 1u);
  EXPECT_EQ(Defs[0], Register::general(9));
}

TEST(Instruction, DefsCarryOutPredicate) {
  Instruction I = parse("IADD3 R6, P0, -R2, R6, RZ ;");
  std::vector<Register> Defs = I.regDefs();
  EXPECT_TRUE(containsReg(Defs, Register::general(6)));
  EXPECT_TRUE(containsReg(Defs, Register::predicate(0)));
}

TEST(Instruction, DefsWidePair) {
  Instruction I = parse("IMAD.WIDE R10, R9, 0x4, R2 ;");
  std::vector<Register> Defs = I.regDefs();
  EXPECT_TRUE(containsReg(Defs, Register::general(10)));
  EXPECT_TRUE(containsReg(Defs, Register::general(11)));
}

TEST(Instruction, DefsVectorLoad) {
  Instruction I = parse("LDG.E.128 R4, [R2.64] ;");
  std::vector<Register> Defs = I.regDefs();
  for (unsigned R = 4; R < 8; ++R)
    EXPECT_TRUE(containsReg(Defs, Register::general(R)));
  EXPECT_FALSE(containsReg(Defs, Register::general(8)));
}

TEST(Instruction, DefsIsetpBothPredicates) {
  Instruction I = parse("ISETP.GE.AND P0, P1, R9, R8, PT ;");
  std::vector<Register> Defs = I.regDefs();
  EXPECT_TRUE(containsReg(Defs, Register::predicate(0)));
  EXPECT_TRUE(containsReg(Defs, Register::predicate(1)));
}

TEST(Instruction, StoreHasNoRegDefs) {
  Instruction I = parse("STG.E [R6.64], R18 ;");
  EXPECT_TRUE(I.regDefs().empty());
}

TEST(Instruction, UsesIncludeAddressAndData) {
  Instruction I = parse("STG.E.64 [R6.64], R18 ;");
  std::vector<Register> Uses = I.regUses();
  EXPECT_TRUE(containsReg(Uses, Register::general(6)));
  EXPECT_TRUE(containsReg(Uses, Register::general(7)));
  EXPECT_TRUE(containsReg(Uses, Register::general(18)));
  EXPECT_TRUE(containsReg(Uses, Register::general(19))); // .64 data pair.
}

TEST(Instruction, UsesIncludeGuard) {
  Instruction I = parse("@!P3 LDG.E R0, [R2.64] ;");
  EXPECT_TRUE(containsReg(I.regUses(), Register::predicate(3)));
}

TEST(Instruction, UsesSkipDest) {
  Instruction I = parse("FFMA R18, R12, R13, R14 ;");
  std::vector<Register> Uses = I.regUses();
  EXPECT_FALSE(containsReg(Uses, Register::general(18)));
  EXPECT_TRUE(containsReg(Uses, Register::general(12)));
  EXPECT_TRUE(containsReg(Uses, Register::general(13)));
  EXPECT_TRUE(containsReg(Uses, Register::general(14)));
}

TEST(Instruction, UsesLdgstsAllAddressRegs) {
  Instruction I =
      parse("LDGSTS.E.BYPASS.128 [R74], desc[UR18][R18.64], P4 ;");
  std::vector<Register> Uses = I.regUses();
  EXPECT_TRUE(containsReg(Uses, Register::general(74)));
  EXPECT_TRUE(containsReg(Uses, Register::general(18)));
  EXPECT_TRUE(containsReg(Uses, Register::general(19)));
  EXPECT_TRUE(containsReg(Uses, Register::uniform(18)));
  EXPECT_TRUE(containsReg(Uses, Register::predicate(4)));
  EXPECT_TRUE(I.regDefs().empty());
}

//===----------------------------------------------------------------------===//
// Program parsing
//===----------------------------------------------------------------------===//

TEST(Program, ParseLabelsAndInstrs) {
  const char *Text = R"(
// a tiny loop
  [B------:R-:W-:-:S04] MOV R0, 0x0 ;
.L_LOOP:
  [B------:R-:W-:-:S04] IADD3 R0, R0, 0x1, RZ ;
  [B------:R-:W-:-:S01] BRA `(.L_LOOP) ;
  [B------:R-:W-:-:S01] EXIT ;
)";
  Expected<Program> P = Parser::parseProgram(Text, "tiny");
  ASSERT_TRUE(P.hasValue()) << P.error().str();
  EXPECT_EQ(P->instrCount(), 4u);
  EXPECT_NE(P->findLabel(".L_LOOP"), Program::npos);
  EXPECT_EQ(P->findLabel(".L_MISSING"), Program::npos);
}

TEST(Program, PrintParseRoundTrip) {
  const char *Text = R"(
  [B------:R-:W0:-:S01] LDG.E R12, desc[UR4][R10.64] ;
.L_X:
  [B0-----:R-:W-:-:S05] FADD R18, R12, R13 ;
  [B------:R-:W-:-:S01] EXIT ;
)";
  Expected<Program> P = Parser::parseProgram(Text, "rt");
  ASSERT_TRUE(P.hasValue());
  Expected<Program> Q = Parser::parseProgram(P->str(), "rt");
  ASSERT_TRUE(Q.hasValue()) << Q.error().str();
  EXPECT_EQ(P->str(), Q->str());
}

TEST(Program, SwapInstructions) {
  Expected<Program> P = Parser::parseProgram(
      "  [B------:R-:W-:-:S01] MOV R0, 0x1 ;\n"
      "  [B------:R-:W-:-:S01] MOV R1, 0x2 ;\n");
  ASSERT_TRUE(P.hasValue());
  P->swap(0, 1);
  EXPECT_EQ(P->stmt(0).instr().operands()[0].baseReg(),
            Register::general(1));
}

TEST(Program, ParseDiagnosticsCarryLineInfo) {
  Expected<Program> P =
      Parser::parseProgram("  [B------:R-:W-:-:S01] WIBBLE R0 ;\n");
  ASSERT_FALSE(P.hasValue());
  EXPECT_NE(P.error().message().find("line 1"), std::string::npos);
}

//===- tests/pipeline_test.cpp - autotuner/pipeline/search/core tests ----------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "core/Optimizer.h"
#include "sass/Parser.h"
#include "search/Search.h"
#include "triton/Autotuner.h"
#include "triton/DeployCache.h"
#include "triton/Pipeline.h"
#include "kernels/Generators.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

using namespace cuasmrl;
using namespace cuasmrl::kernels;

namespace {

/// Small, fast measurement protocol for tests.
gpusim::MeasureConfig quickMeasure() {
  gpusim::MeasureConfig M;
  M.WarmupIters = 1;
  M.RepeatIters = 1;
  M.NoiseStddev = 0.0;
  return M;
}

} // namespace

//===----------------------------------------------------------------------===//
// Autotuner (§3.1)
//===----------------------------------------------------------------------===//

TEST(AutotunerTest, PicksFastestConfig) {
  gpusim::Gpu Device;
  Rng DataRng(3);
  triton::Autotuner Tuner(quickMeasure());
  WorkloadShape Shape = paperShape(WorkloadKind::MmLeakyRelu);
  triton::AutotuneResult R =
      Tuner.tune(Device, WorkloadKind::MmLeakyRelu, Shape, DataRng);
  ASSERT_FALSE(R.Sweep.empty());
  for (const triton::TunedConfig &T : R.Sweep) {
    if (T.Valid) {
      EXPECT_LE(R.BestUs, T.MeanUs + 1e-9);
    }
  }
}

TEST(AutotunerTest, CachesResults) {
  gpusim::Gpu Device;
  Rng DataRng(3);
  triton::Autotuner Tuner(quickMeasure());
  WorkloadShape Shape = testShape(WorkloadKind::Softmax);
  EXPECT_EQ(Tuner.cached(WorkloadKind::Softmax, Shape), nullptr);
  triton::AutotuneResult First =
      Tuner.tune(Device, WorkloadKind::Softmax, Shape, DataRng);
  const triton::AutotuneResult *Hit =
      Tuner.cached(WorkloadKind::Softmax, Shape);
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->Best.str(), First.Best.str());
}

TEST(AutotunerTest, SkipsNonFittingConfigs) {
  gpusim::Gpu Device;
  Rng DataRng(3);
  triton::Autotuner Tuner(quickMeasure());
  // Tiny shape: the BM=128 candidate cannot fit and must be skipped.
  WorkloadShape Shape = testShape(WorkloadKind::MmLeakyRelu);
  triton::AutotuneResult R =
      Tuner.tune(Device, WorkloadKind::MmLeakyRelu, Shape, DataRng);
  for (const triton::TunedConfig &T : R.Sweep)
    EXPECT_TRUE(configFits(WorkloadKind::MmLeakyRelu, Shape, T.Config));
}

//===----------------------------------------------------------------------===//
// Parallel deterministic sweep engine
//===----------------------------------------------------------------------===//

namespace {

/// A shape no GEMM candidate configuration can tile (BlockM >= 32 for
/// every grid entry, but M == 1).
WorkloadShape impossibleGemmShape() {
  WorkloadShape S;
  S.M = 1;
  return S;
}

/// Runs one sweep with \p Workers on a fresh Autotuner and returns the
/// result (quick protocol, fixed base seed).
triton::AutotuneResult sweepWith(unsigned Workers, uint64_t BaseSeed = 7) {
  gpusim::Gpu Device;
  triton::AutotuneOptions O;
  O.Measure = quickMeasure();
  O.Measure.NoiseStddev = 0.003; // Noise on: seeding must still pin it.
  O.Workers = Workers;
  O.BaseSeed = BaseSeed;
  triton::Autotuner Tuner(O);
  return Tuner.tune(Device, WorkloadKind::MmLeakyRelu,
                    testShape(WorkloadKind::MmLeakyRelu));
}

/// Bit-exact sweep equality (winner, timing, every candidate).
void expectSweepIdentical(const triton::AutotuneResult &A,
                          const triton::AutotuneResult &B) {
  EXPECT_EQ(A.Valid, B.Valid);
  EXPECT_TRUE(A.Best == B.Best);
  EXPECT_EQ(A.BestUs, B.BestUs); // Exact: identical bits, not "close".
  ASSERT_EQ(A.Sweep.size(), B.Sweep.size());
  for (size_t I = 0; I < A.Sweep.size(); ++I) {
    EXPECT_TRUE(A.Sweep[I].Config == B.Sweep[I].Config);
    EXPECT_EQ(A.Sweep[I].Valid, B.Sweep[I].Valid);
    EXPECT_EQ(A.Sweep[I].MeanUs, B.Sweep[I].MeanUs);
  }
}

} // namespace

TEST(AutotunerSweepTest, DeterministicAcrossWorkerCounts) {
  triton::AutotuneResult Serial = sweepWith(1);
  ASSERT_TRUE(Serial.Valid);
  ASSERT_FALSE(Serial.Sweep.empty());
  // Mirrors rl_test's RolloutTest worker-count invariance: the sweep is
  // a pure function of (BaseSeed, request), never of thread scheduling.
  expectSweepIdentical(Serial, sweepWith(2));
  expectSweepIdentical(Serial, sweepWith(4));
}

TEST(AutotunerSweepTest, RepeatedRunsWithSameSeedAreIdentical) {
  expectSweepIdentical(sweepWith(2), sweepWith(2));
  // A different base seed must actually reseed the noise streams.
  triton::AutotuneResult Reseeded = sweepWith(2, /*BaseSeed=*/99);
  EXPECT_NE(sweepWith(2).BestUs, Reseeded.BestUs);
}

TEST(AutotunerSweepTest, LegacyRngOverloadIsOrderIndependent) {
  // The pre-engine API threaded one DataRng through the sweep, so the
  // cached result depended on every draw the caller made before tune().
  // Pin the fix: two differently-advanced Rngs produce identical sweeps.
  gpusim::Gpu DeviceA, DeviceB;
  Rng FreshRng(3), AdvancedRng(3);
  for (int I = 0; I < 1000; ++I)
    (void)AdvancedRng.next();
  triton::Autotuner TunerA(quickMeasure()), TunerB(quickMeasure());
  WorkloadShape Shape = testShape(WorkloadKind::Softmax);
  triton::AutotuneResult A =
      TunerA.tune(DeviceA, WorkloadKind::Softmax, Shape, FreshRng);
  triton::AutotuneResult B =
      TunerB.tune(DeviceB, WorkloadKind::Softmax, Shape, AdvancedRng);
  expectSweepIdentical(A, B);
}

TEST(AutotunerSweepTest, InvalidSweepIsFlaggedAndCachedAsInvalid) {
  gpusim::Gpu Device;
  triton::Autotuner Tuner(quickMeasure());
  triton::AutotuneResult R =
      Tuner.tune(Device, WorkloadKind::MmLeakyRelu, impossibleGemmShape());
  EXPECT_FALSE(R.Valid);
  EXPECT_TRUE(R.Sweep.empty());
  EXPECT_GE(R.BestUs, 1e29); // Sentinel, not a garbage "winner" time.
  // The cached entry must carry the same failure flag.
  const triton::AutotuneResult *Hit =
      Tuner.cached(WorkloadKind::MmLeakyRelu, impossibleGemmShape());
  ASSERT_NE(Hit, nullptr);
  EXPECT_FALSE(Hit->Valid);
}

TEST(AutotunerSweepTest, SweepAllMatchesIndividualTunes) {
  gpusim::Gpu Device;
  std::vector<triton::SweepRequest> Requests = {
      {WorkloadKind::MmLeakyRelu, testShape(WorkloadKind::MmLeakyRelu)},
      {WorkloadKind::Softmax, testShape(WorkloadKind::Softmax)},
      {WorkloadKind::FlashAttention, testShape(WorkloadKind::FlashAttention)},
  };
  triton::AutotuneOptions O;
  O.Measure = quickMeasure();
  O.Workers = 4;
  triton::Autotuner Batch(O);
  std::vector<triton::AutotuneResult> All = Batch.sweepAll(Device, Requests);
  ASSERT_EQ(All.size(), Requests.size());
  EXPECT_EQ(Batch.sweepsPerformed(), Requests.size());
  for (size_t I = 0; I < Requests.size(); ++I) {
    triton::Autotuner Single(O);
    triton::AutotuneResult Individual =
        Single.tune(Device, Requests[I].Kind, Requests[I].Shape);
    expectSweepIdentical(All[I], Individual);
  }
}

TEST(AutotunerSweepTest, SweepAllDeduplicatesRepeatedRequests) {
  gpusim::Gpu Device;
  triton::SweepRequest R{WorkloadKind::Softmax,
                         testShape(WorkloadKind::Softmax)};
  triton::Autotuner Tuner(quickMeasure());
  std::vector<triton::AutotuneResult> All =
      Tuner.sweepAll(Device, {R, R, R});
  ASSERT_EQ(All.size(), 3u);
  EXPECT_EQ(Tuner.sweepsPerformed(), 1u);
  expectSweepIdentical(All[0], All[1]);
  expectSweepIdentical(All[0], All[2]);
}

TEST(AutotunerSweepTest, ConcurrentTunesShareOneSweep) {
  // Single-sweep-per-key guarantee (mirrors MeasurementCache): threads
  // racing on one (kind, shape) run the grid once and all observe the
  // published result.
  gpusim::Gpu Device;
  triton::Autotuner Tuner(quickMeasure());
  WorkloadShape Shape = testShape(WorkloadKind::MmLeakyRelu);
  std::vector<triton::AutotuneResult> Results(4);
  std::vector<std::thread> Threads;
  for (size_t T = 0; T < Results.size(); ++T)
    Threads.emplace_back([&, T] {
      Results[T] = Tuner.tune(Device, WorkloadKind::MmLeakyRelu, Shape);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Tuner.sweepsPerformed(), 1u);
  for (size_t T = 1; T < Results.size(); ++T)
    expectSweepIdentical(Results[0], Results[T]);
}

//===----------------------------------------------------------------------===//
// Pipeline (§4.1)
//===----------------------------------------------------------------------===//

TEST(PipelineTest, CompileInterceptRoundTrip) {
  gpusim::Gpu Device;
  Rng DataRng(3);
  triton::CompiledKernel K = triton::compileKernel(
      Device, WorkloadKind::MmLeakyRelu,
      testShape(WorkloadKind::MmLeakyRelu),
      candidateConfigs(WorkloadKind::MmLeakyRelu).front(), DataRng);
  Expected<sass::Program> P = triton::interceptCubin(K);
  ASSERT_TRUE(P.hasValue()) << P.error().str();
  EXPECT_EQ(P->str(), K.Runtime.Prog.str());
}

TEST(PipelineTest, SubstituteScheduleUpdatesBinaryAndRuntime) {
  gpusim::Gpu Device;
  Rng DataRng(3);
  triton::CompiledKernel K = triton::compileKernel(
      Device, WorkloadKind::Softmax, testShape(WorkloadKind::Softmax),
      candidateConfigs(WorkloadKind::Softmax).front(), DataRng);
  sass::Program Optimized = K.Runtime.Prog;
  // Find two swappable adjacent instructions.
  env::AssemblyGame Game(Device, K.Runtime, [] {
    env::GameConfig G;
    G.Measure.WarmupIters = 1;
    G.Measure.RepeatIters = 1;
    return G;
  }());
  std::vector<uint8_t> Mask = Game.actionMask();
  unsigned A = 0;
  while (A < Mask.size() && !Mask[A])
    ++A;
  ASSERT_LT(A, Mask.size());
  Game.step(A);
  Optimized = Game.current();

  triton::substituteSchedule(K, Optimized);
  Expected<sass::Program> Back = triton::interceptCubin(K);
  ASSERT_TRUE(Back.hasValue());
  EXPECT_EQ(Back->str(), Optimized.str());
  EXPECT_EQ(K.Runtime.Prog.str(), Optimized.str());
}

TEST(PipelineTest, ProbabilisticTestAcceptsValidSchedule) {
  gpusim::Gpu Device;
  Rng DataRng(3);
  triton::CompiledKernel K = triton::compileKernel(
      Device, WorkloadKind::RmsNorm, testShape(WorkloadKind::RmsNorm),
      candidateConfigs(WorkloadKind::RmsNorm).front(), DataRng);
  EXPECT_TRUE(triton::probabilisticTest(Device, K.Runtime, K.Runtime.Prog,
                                        K.Runtime.Prog, 2, DataRng));
}

TEST(PipelineTest, ProbabilisticTestRejectsCorruptSchedule) {
  gpusim::Gpu Device;
  Rng DataRng(3);
  triton::CompiledKernel K = triton::compileKernel(
      Device, WorkloadKind::MmLeakyRelu,
      testShape(WorkloadKind::MmLeakyRelu),
      candidateConfigs(WorkloadKind::MmLeakyRelu).front(), DataRng);
  // Violate stall counts deliberately: drop every fixed-latency
  // instruction to a 1-cycle stall (back-to-back dependent IMAD/IADD3
  // chains then read stale registers).
  sass::Program Bad = K.Runtime.Prog;
  for (size_t I = 0; I < Bad.size(); ++I)
    if (Bad.stmt(I).isInstr() && Bad.stmt(I).instr().isFixedLatency())
      Bad.stmt(I).instr().ctrl().setStall(1);
  EXPECT_FALSE(triton::probabilisticTest(Device, K.Runtime, K.Runtime.Prog,
                                         Bad, 2, DataRng));
}

//===----------------------------------------------------------------------===//
// Deploy cache (§4.2)
//===----------------------------------------------------------------------===//

TEST(DeployCacheTest, StoreAndLookup) {
  std::string Dir =
      (std::filesystem::temp_directory_path() / "cuasmrl_cache_test")
          .string();
  std::filesystem::remove_all(Dir);
  triton::DeployCache Cache(Dir);

  gpusim::Gpu Device;
  Rng DataRng(3);
  triton::CompiledKernel K = triton::compileKernel(
      Device, WorkloadKind::Softmax, testShape(WorkloadKind::Softmax),
      candidateConfigs(WorkloadKind::Softmax).front(), DataRng);

  std::string Key = triton::DeployCache::makeKey(
      "A100-SIM", "softmax",
      candidateConfigs(WorkloadKind::Softmax).front().str());
  EXPECT_FALSE(Cache.contains(Key));
  ASSERT_TRUE(Cache.store(Key, K.Binary));
  EXPECT_TRUE(Cache.contains(Key));

  std::optional<cubin::CubinFile> Loaded = Cache.load(Key);
  ASSERT_TRUE(Loaded.has_value());
  Expected<sass::Program> P = cubin::disassemble(*Loaded);
  ASSERT_TRUE(P.hasValue());
  EXPECT_EQ(P->str(), K.Runtime.Prog.str());
  std::filesystem::remove_all(Dir);
}

TEST(DeployCacheTest, MissingKeyReturnsNothing) {
  triton::DeployCache Cache("/tmp/cuasmrl_cache_missing");
  EXPECT_FALSE(Cache.load("no-such-key").has_value());
}

TEST(DeployCacheTest, LoadRejectsCorruptFile) {
  std::string Dir =
      (std::filesystem::temp_directory_path() / "cuasmrl_cache_corrupt")
          .string();
  std::filesystem::remove_all(Dir);
  triton::DeployCache Cache(Dir);

  gpusim::Gpu Device;
  Rng DataRng(3);
  triton::CompiledKernel K = triton::compileKernel(
      Device, WorkloadKind::Softmax, testShape(WorkloadKind::Softmax),
      candidateConfigs(WorkloadKind::Softmax).front(), DataRng);
  ASSERT_TRUE(Cache.store("victim", K.Binary));

  // Truncate the stored cubin to half: the exact shape a torn write
  // would have left before store() became write-then-rename.
  std::string Path = Dir + "/victim.cubin";
  std::vector<uint8_t> Bytes = K.Binary.serialize();
  {
    std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
    OS.write(reinterpret_cast<const char *>(Bytes.data()),
             static_cast<std::streamsize>(Bytes.size() / 2));
  }
  EXPECT_TRUE(Cache.contains("victim")); // The file exists...
  EXPECT_FALSE(Cache.load("victim").has_value()); // ...but never half-loads.
  std::filesystem::remove_all(Dir);
}

TEST(DeployCacheTest, StoreLeavesOnlyTheFinalFile) {
  std::string Dir =
      (std::filesystem::temp_directory_path() / "cuasmrl_cache_atomic")
          .string();
  std::filesystem::remove_all(Dir);
  triton::DeployCache Cache(Dir);

  gpusim::Gpu Device;
  Rng DataRng(3);
  triton::CompiledKernel K = triton::compileKernel(
      Device, WorkloadKind::RmsNorm, testShape(WorkloadKind::RmsNorm),
      candidateConfigs(WorkloadKind::RmsNorm).front(), DataRng);
  ASSERT_TRUE(Cache.store("atomic", K.Binary));
  ASSERT_TRUE(Cache.store("atomic", K.Binary)); // Overwrite in place.

  // The rename must consume the temporary: exactly one file remains.
  std::vector<std::string> Names;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir))
    Names.push_back(Entry.path().filename().string());
  ASSERT_EQ(Names.size(), 1u);
  EXPECT_EQ(Names[0], "atomic.cubin");
  std::filesystem::remove_all(Dir);
}

TEST(DeployCacheTest, ConcurrentStoresOfOneKeyStayComplete) {
  std::string Dir =
      (std::filesystem::temp_directory_path() / "cuasmrl_cache_race")
          .string();
  std::filesystem::remove_all(Dir);
  triton::DeployCache Cache(Dir);

  gpusim::Gpu Device;
  Rng DataRng(3);
  triton::CompiledKernel K = triton::compileKernel(
      Device, WorkloadKind::Softmax, testShape(WorkloadKind::Softmax),
      candidateConfigs(WorkloadKind::Softmax).front(), DataRng);

  std::vector<std::thread> Writers;
  for (int T = 0; T < 4; ++T)
    Writers.emplace_back([&] {
      for (int I = 0; I < 8; ++I)
        EXPECT_TRUE(Cache.store("contended", K.Binary));
    });
  for (std::thread &T : Writers)
    T.join();
  // Whatever store "won", the visible file is a complete cubin.
  std::optional<cubin::CubinFile> Loaded = Cache.load("contended");
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_TRUE(cubin::disassemble(*Loaded).hasValue());
  std::filesystem::remove_all(Dir);
}

TEST(DeployCacheTest, MakeKeySeparatorCannotCollide) {
  // The flattening used to be "<a>-<b>-<c>" with no escaping, so a
  // component containing the separator shifted the boundaries:
  // ("a-b","c") and ("a","b-c") collided. The digest over the
  // length-delimited raw components pins each triple to its own key.
  EXPECT_NE(triton::DeployCache::makeKey("a-b", "c", "x"),
            triton::DeployCache::makeKey("a", "b-c", "x"));
  EXPECT_NE(triton::DeployCache::makeKey("a", "b", ""),
            triton::DeployCache::makeKey("a", "", "b"));
  // Sanitization is lossy ('/' and ' ' both map to '_') — the digest
  // must still separate the raw strings.
  EXPECT_NE(triton::DeployCache::makeKey("g", "w/x", "c"),
            triton::DeployCache::makeKey("g", "w x", "c"));
  // Identical triples agree, of course.
  EXPECT_EQ(triton::DeployCache::makeKey("g", "w", "c"),
            triton::DeployCache::makeKey("g", "w", "c"));
}

TEST(DeployCacheTest, MakeKeySanitizesHostileComponents) {
  std::string Key = triton::DeployCache::makeKey(
      "A100/PCIe 80GB", "../../etc/passwd", "bm=64 bn=64*\\\n");
  // Filesystem-hostile characters never reach the file name...
  for (char C : {'/', '\\', ' ', '*', '\n'})
    EXPECT_EQ(Key.find(C), std::string::npos) << "char: " << C;
  // ...and the dot-dot components are neutralized by the '/'
  // replacement (no path separator survives to resurrect them).
  std::string Dir =
      (std::filesystem::temp_directory_path() / "cuasmrl_cache_hostile")
          .string();
  std::filesystem::remove_all(Dir);
  triton::DeployCache Cache(Dir);
  gpusim::Gpu Device;
  Rng DataRng(3);
  triton::CompiledKernel K = triton::compileKernel(
      Device, WorkloadKind::Softmax, testShape(WorkloadKind::Softmax),
      candidateConfigs(WorkloadKind::Softmax).front(), DataRng);
  ASSERT_TRUE(Cache.store(Key, K.Binary));
  EXPECT_TRUE(Cache.contains(Key));
  EXPECT_TRUE(Cache.load(Key).has_value());
  // The store landed inside the cache directory, not up the tree.
  size_t Entries = 0;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir)) {
    (void)Entry;
    ++Entries;
  }
  EXPECT_EQ(Entries, 1u);
  std::filesystem::remove_all(Dir);
}

TEST(DeployCacheTest, KeysEnumeratesStoredKeysSorted) {
  std::string Dir =
      (std::filesystem::temp_directory_path() / "cuasmrl_cache_keys")
          .string();
  std::filesystem::remove_all(Dir);
  triton::DeployCache Cache(Dir);
  EXPECT_TRUE(Cache.keys().empty()); // Missing directory: empty, no throw.

  gpusim::Gpu Device;
  Rng DataRng(3);
  triton::CompiledKernel K = triton::compileKernel(
      Device, WorkloadKind::Softmax, testShape(WorkloadKind::Softmax),
      candidateConfigs(WorkloadKind::Softmax).front(), DataRng);
  ASSERT_TRUE(Cache.store("beta", K.Binary));
  ASSERT_TRUE(Cache.store("alpha", K.Binary));
  EXPECT_EQ(Cache.keys(), (std::vector<std::string>{"alpha", "beta"}));
  std::filesystem::remove_all(Dir);
}

TEST(DeployCacheTest, StoreFailsCleanlyOnUnwritableDirectory) {
  // A regular file where the directory should be: create_directories
  // fails even when running as root (chmod-based fixtures do not).
  std::string Blocker =
      (std::filesystem::temp_directory_path() / "cuasmrl_cache_blocker")
          .string();
  std::filesystem::remove_all(Blocker);
  {
    std::ofstream OS(Blocker);
    OS << "file, not dir";
  }
  triton::DeployCache Cache(Blocker + "/deploy");
  gpusim::Gpu Device;
  Rng DataRng(3);
  triton::CompiledKernel K = triton::compileKernel(
      Device, WorkloadKind::Softmax, testShape(WorkloadKind::Softmax),
      candidateConfigs(WorkloadKind::Softmax).front(), DataRng);
  EXPECT_FALSE(Cache.store("key", K.Binary));
  EXPECT_TRUE(Cache.keys().empty());
  std::filesystem::remove_all(Blocker);
}

//===----------------------------------------------------------------------===//
// Search baselines (§7)
//===----------------------------------------------------------------------===//

namespace {

env::GameConfig searchGameConfig() {
  env::GameConfig G;
  G.Measure.WarmupIters = 1;
  G.Measure.RepeatIters = 1;
  G.Measure.NoiseStddev = 0.0;
  G.EpisodeLength = 64;
  return G;
}

} // namespace

TEST(SearchTest, GreedyNeverWorsens) {
  gpusim::Gpu Device;
  Rng DataRng(3);
  BuiltKernel K = buildKernel(Device, WorkloadKind::MmLeakyRelu,
                              testShape(WorkloadKind::MmLeakyRelu),
                              candidateConfigs(WorkloadKind::MmLeakyRelu)
                                  .front(),
                              ScheduleStyle::TritonO3, DataRng);
  env::AssemblyGame Game(Device, K, searchGameConfig());
  Rng SR(1);
  search::SearchResult R = search::greedySearch(Game, 400, SR);
  EXPECT_LE(R.BestTimeUs, R.InitialTimeUs + 1e-9);
  EXPECT_GT(R.StepsUsed, 0u);
}

TEST(SearchTest, RandomTracksBestSchedule) {
  gpusim::Gpu Device;
  Rng DataRng(3);
  BuiltKernel K = buildKernel(Device, WorkloadKind::Softmax,
                              testShape(WorkloadKind::Softmax),
                              candidateConfigs(WorkloadKind::Softmax)
                                  .front(),
                              ScheduleStyle::TritonO3, DataRng);
  env::AssemblyGame Game(Device, K, searchGameConfig());
  Rng SR(2);
  search::SearchResult R = search::randomSearch(Game, 150, SR);
  EXPECT_LE(R.BestTimeUs, R.InitialTimeUs + 1e-9);
  ASSERT_FALSE(R.BestCurve.empty());
  // Best-so-far curves are monotone non-increasing.
  for (size_t I = 1; I < R.BestCurve.size(); ++I)
    EXPECT_LE(R.BestCurve[I], R.BestCurve[I - 1] + 1e-9);
}

namespace {

/// A hand-crafted kernel whose single reorderable pair is pinned from
/// both sides: the movable LDG sits between a low-stall IMAD producer
/// and that producer's consumer, so moving it either way strips the
/// LDG's 6-cycle stall from the producer-to-consumer path (required
/// stall: 5 under the builtin table). The trailing STG is fenced by
/// labels. With masking ON every action is masked at reset; with
/// masking OFF both structural LDG moves execute an invalid schedule.
kernels::BuiltKernel craftedPinnedKernel(gpusim::Gpu &Device) {
  std::string Text;
  Text += "  [B------:R-:W-:-:S04] MOV R2, c[0x0][0x160] ;\n"; // In ptr.
  Text += "  [B------:R-:W-:-:S04] MOV R3, c[0x0][0x164] ;\n";
  Text += "  [B------:R-:W-:-:S04] MOV R6, c[0x0][0x168] ;\n"; // Out ptr.
  Text += "  [B------:R-:W-:-:S04] MOV R7, c[0x0][0x16c] ;\n";
  Text += "  [B------:R-:W-:-:S06] MOV R4, 0x9 ;\n";
  Text += "  [B------:R-:W-:-:S06] MOV R5, 0x7 ;\n";
  Text += "  [B------:R-:W-:-:S02] IMAD R8, R4, R5, RZ ;\n";     // Producer.
  Text += "  [B------:R-:W0:-:S06] LDG.E R10, [R2.64] ;\n";      // Movable.
  // The producer's consumer takes no barrier wait: only the LDG's
  // issue stall separates it from the 5-cycle IMAD latency, so moving
  // the LDG either way makes this read stale on the timed machine.
  Text += "  [B------:R-:W-:-:S04] IADD3 R12, R8, 0x1, RZ ;\n";
  Text += "  [B0-----:R-:W-:-:S04] IADD3 R13, R10, RZ, RZ ;\n";  // Load use.
  Text += ".L_STORE:\n";
  Text += "  [B------:R-:W-:-:S01] STG.E [R6.64], R12 ;\n";
  Text += ".L_END:\n";
  Text += "  [B------:R-:W-:-:S01] EXIT ;\n";

  Expected<sass::Program> P = sass::Parser::parseProgram(Text, "pinned");
  if (!P.hasValue())
    throw std::runtime_error("crafted kernel failed to parse: " +
                             P.error().str());
  kernels::BuiltKernel K;
  K.Name = "crafted_pinned";
  K.Prog = *P;
  // Distinct input and output buffers: unmasked mode re-runs the
  // schedule on the oracle, so the load must not alias the store.
  uint64_t In = Device.globalMemory().allocate(16);
  uint64_t Out = Device.globalMemory().allocate(16);
  K.Inputs.push_back({In, 16});
  K.OutAddr = Out;
  K.OutBytes = 8;
  K.Launch.WarpsPerBlock = 1;
  K.Launch.addParam64(In);
  K.Launch.addParam64(Out);
  return K;
}

env::GameConfig craftedSearchConfig() {
  env::GameConfig G;
  G.Table = analysis::StallTable::builtin(); // Deterministic IMAD stall (5).
  G.Measure.WarmupIters = 1;
  G.Measure.RepeatIters = 1;
  G.Measure.NoiseStddev = 0.0;
  G.EpisodeLength = 64;
  return G;
}

} // namespace

TEST(SearchTest, EvolutionaryBailsOutWhenEveryActionIsMasked) {
  // Regression: with every genome truncating to zero applied actions,
  // `while (StepsUsed < TotalSteps)` used to spin forever because no
  // generation could ever advance StepsUsed.
  gpusim::Gpu Device;
  kernels::BuiltKernel K = craftedPinnedKernel(Device);
  env::AssemblyGame Game(Device, K, craftedSearchConfig());
  ASSERT_TRUE(Game.allMasked()) << "crafted kernel must start fully masked";
  Rng SR(11);
  search::SearchResult R = search::evolutionarySearch(Game, 200, SR);
  EXPECT_EQ(R.StepsUsed, 0u);
  EXPECT_EQ(R.BestTimeUs, R.InitialTimeUs);
}

TEST(SearchTest, GreedyCountsInvalidStepsAsStuck) {
  // Regression: an Invalid step (the env rejects and reverts the move)
  // used to reset the stuck counter, so a schedule whose remaining
  // actions all execute invalid schedules never tripped the local-
  // minimum termination and burned the whole step budget.
  gpusim::Gpu Device;
  kernels::BuiltKernel K = craftedPinnedKernel(Device);
  env::GameConfig G = craftedSearchConfig();
  G.UseActionMasking = false; // Structural mask only: invalid moves sample.
  env::AssemblyGame Game(Device, K, G);
  Rng SR(5);
  const unsigned TotalSteps = 2000;
  search::SearchResult R = search::greedySearch(Game, TotalSteps, SR);
  // Stuck > 64 must terminate the search after ~65 invalid attempts.
  EXPECT_LT(R.StepsUsed, 200u);
  EXPECT_EQ(R.BestTimeUs, R.InitialTimeUs);
}

TEST(SearchTest, EvolutionaryImprovesOrMatches) {
  gpusim::Gpu Device;
  Rng DataRng(3);
  BuiltKernel K = buildKernel(Device, WorkloadKind::MmLeakyRelu,
                              testShape(WorkloadKind::MmLeakyRelu),
                              candidateConfigs(WorkloadKind::MmLeakyRelu)
                                  .front(),
                              ScheduleStyle::TritonO3, DataRng);
  env::AssemblyGame Game(Device, K, searchGameConfig());
  Rng SR(3);
  search::SearchResult R = search::evolutionarySearch(Game, 300, SR);
  EXPECT_LE(R.BestTimeUs, R.InitialTimeUs + 1e-9);
}

//===----------------------------------------------------------------------===//
// End-to-end optimizer (Figure 2)
//===----------------------------------------------------------------------===//

TEST(OptimizerTest, EndToEndImprovesOrMatchesAndVerifies) {
  gpusim::Gpu Device;
  Rng DataRng(5);
  core::OptimizeConfig C;
  C.Ppo.TotalSteps = 256;
  C.Ppo.RolloutLen = 32;
  C.Ppo.Lr = 1e-3;
  C.Ppo.Channels = 8;
  C.Ppo.Hidden = 32;
  C.Game.Measure.WarmupIters = 1;
  C.Game.Measure.RepeatIters = 1;
  C.Game.Measure.NoiseStddev = 0.001;
  C.AutotuneMeasure = quickMeasure();
  C.ProbTestRounds = 1;
  core::Optimizer Opt(C);

  core::OptimizeResult R =
      Opt.optimize(Device, WorkloadKind::MmLeakyRelu,
                   testShape(WorkloadKind::MmLeakyRelu), DataRng);
  EXPECT_GT(R.TritonUs, 0.0);
  EXPECT_LE(R.OptimizedUs, R.TritonUs * 1.001);
  EXPECT_TRUE(R.Verified);
  EXPECT_FALSE(R.Training.empty());
  EXPECT_GT(R.KernelExecutions, 0u);
  // The optimized binary must disassemble to the optimized schedule.
  Expected<sass::Program> P = triton::interceptCubin(R.Kernel);
  ASSERT_TRUE(P.hasValue());
  EXPECT_EQ(P->str(), R.OptimizedProg.str());
}

TEST(OptimizerTest, SurfacesAutotuneFailureInsteadOfTrainingOnGarbage) {
  gpusim::Gpu Device;
  Rng DataRng(5);
  core::OptimizeConfig C;
  C.AutotuneMeasure = quickMeasure();
  core::Optimizer Opt(C);
  core::OptimizeResult R = Opt.optimize(Device, WorkloadKind::MmLeakyRelu,
                                        impossibleGemmShape(), DataRng);
  EXPECT_FALSE(R.AutotuneValid);
  EXPECT_FALSE(R.Verified);
  EXPECT_TRUE(R.Training.empty()); // The run stopped at level 1.
  EXPECT_EQ(R.TritonUs, 0.0);
}

TEST(OptimizerTest, AutotuneAllPersistsWinnersThroughDeployCache) {
  std::string Dir =
      (std::filesystem::temp_directory_path() / "cuasmrl_sweep_deploy")
          .string();
  std::filesystem::remove_all(Dir);
  triton::DeployCache Deploy(Dir);

  gpusim::Gpu Device;
  core::OptimizeConfig C;
  C.AutotuneMeasure = quickMeasure();
  C.AutotuneWorkers = 2;
  core::Optimizer Opt(C);

  std::vector<triton::SweepRequest> Requests = {
      {WorkloadKind::Softmax, testShape(WorkloadKind::Softmax)},
      {WorkloadKind::MmLeakyRelu, impossibleGemmShape()}, // Never persisted.
      {WorkloadKind::RmsNorm, testShape(WorkloadKind::RmsNorm)},
  };
  core::DeployStats Stats;
  std::vector<triton::AutotuneResult> Results =
      Opt.autotuneAll(Device, Requests, &Deploy, "A100-SIM", &Stats);
  ASSERT_EQ(Results.size(), 3u);
  EXPECT_TRUE(Results[0].Valid);
  EXPECT_FALSE(Results[1].Valid);
  EXPECT_TRUE(Results[2].Valid);
  EXPECT_EQ(Stats.Attempted, 2u); // The invalid sweep never persists.
  EXPECT_EQ(Stats.Stored, 2u);
  EXPECT_EQ(Stats.Failures, 0u);

  unsigned Stored = 0;
  for (size_t I = 0; I < Requests.size(); ++I) {
    std::string Key = triton::DeployCache::makeKey(
        "A100-SIM",
        triton::Autotuner::requestKey(Requests[I].Kind, Requests[I].Shape),
        Results[I].Best.str());
    if (!Results[I].Valid) {
      EXPECT_FALSE(Deploy.contains(Key));
      continue;
    }
    ASSERT_TRUE(Deploy.contains(Key)) << Key;
    std::optional<cubin::CubinFile> Loaded = Deploy.load(Key);
    ASSERT_TRUE(Loaded.has_value());
    EXPECT_TRUE(cubin::disassemble(*Loaded).hasValue());
    ++Stored;
  }
  EXPECT_EQ(Stored, 2u);
  std::filesystem::remove_all(Dir);
}

TEST(OptimizerTest, AutotuneAllSurfacesPersistFailures) {
  // A regular file blocks the deploy directory: every store must fail
  // and be counted — winners are never dropped silently.
  std::string Blocker =
      (std::filesystem::temp_directory_path() / "cuasmrl_sweep_blocker")
          .string();
  std::filesystem::remove_all(Blocker);
  {
    std::ofstream OS(Blocker);
    OS << "file, not dir";
  }
  triton::DeployCache Deploy(Blocker + "/deploy");

  gpusim::Gpu Device;
  core::OptimizeConfig C;
  C.AutotuneMeasure = quickMeasure();
  core::Optimizer Opt(C);

  std::vector<triton::SweepRequest> Requests = {
      {WorkloadKind::Softmax, testShape(WorkloadKind::Softmax)},
      {WorkloadKind::RmsNorm, testShape(WorkloadKind::RmsNorm)},
  };
  core::DeployStats Stats;
  std::vector<triton::AutotuneResult> Results =
      Opt.autotuneAll(Device, Requests, &Deploy, "A100-SIM", &Stats);
  ASSERT_EQ(Results.size(), 2u);
  EXPECT_TRUE(Results[0].Valid); // The sweep itself still succeeds...
  EXPECT_TRUE(Results[1].Valid);
  EXPECT_EQ(Stats.Attempted, 2u); // ...but persistence reports honestly.
  EXPECT_EQ(Stats.Stored, 0u);
  EXPECT_EQ(Stats.Failures, 2u);
  std::filesystem::remove_all(Blocker);
}

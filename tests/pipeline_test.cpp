//===- tests/pipeline_test.cpp - autotuner/pipeline/search/core tests ----------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "core/Optimizer.h"
#include "search/Search.h"
#include "triton/Autotuner.h"
#include "triton/DeployCache.h"
#include "triton/Pipeline.h"
#include "kernels/Generators.h"

#include <gtest/gtest.h>

#include <filesystem>

using namespace cuasmrl;
using namespace cuasmrl::kernels;

namespace {

/// Small, fast measurement protocol for tests.
gpusim::MeasureConfig quickMeasure() {
  gpusim::MeasureConfig M;
  M.WarmupIters = 1;
  M.RepeatIters = 1;
  M.NoiseStddev = 0.0;
  return M;
}

} // namespace

//===----------------------------------------------------------------------===//
// Autotuner (§3.1)
//===----------------------------------------------------------------------===//

TEST(AutotunerTest, PicksFastestConfig) {
  gpusim::Gpu Device;
  Rng DataRng(3);
  triton::Autotuner Tuner(quickMeasure());
  WorkloadShape Shape = paperShape(WorkloadKind::MmLeakyRelu);
  triton::AutotuneResult R =
      Tuner.tune(Device, WorkloadKind::MmLeakyRelu, Shape, DataRng);
  ASSERT_FALSE(R.Sweep.empty());
  for (const triton::TunedConfig &T : R.Sweep) {
    if (T.Valid) {
      EXPECT_LE(R.BestUs, T.MeanUs + 1e-9);
    }
  }
}

TEST(AutotunerTest, CachesResults) {
  gpusim::Gpu Device;
  Rng DataRng(3);
  triton::Autotuner Tuner(quickMeasure());
  WorkloadShape Shape = testShape(WorkloadKind::Softmax);
  EXPECT_EQ(Tuner.cached(WorkloadKind::Softmax, Shape), nullptr);
  triton::AutotuneResult First =
      Tuner.tune(Device, WorkloadKind::Softmax, Shape, DataRng);
  const triton::AutotuneResult *Hit =
      Tuner.cached(WorkloadKind::Softmax, Shape);
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->Best.str(), First.Best.str());
}

TEST(AutotunerTest, SkipsNonFittingConfigs) {
  gpusim::Gpu Device;
  Rng DataRng(3);
  triton::Autotuner Tuner(quickMeasure());
  // Tiny shape: the BM=128 candidate cannot fit and must be skipped.
  WorkloadShape Shape = testShape(WorkloadKind::MmLeakyRelu);
  triton::AutotuneResult R =
      Tuner.tune(Device, WorkloadKind::MmLeakyRelu, Shape, DataRng);
  for (const triton::TunedConfig &T : R.Sweep)
    EXPECT_TRUE(configFits(WorkloadKind::MmLeakyRelu, Shape, T.Config));
}

//===----------------------------------------------------------------------===//
// Pipeline (§4.1)
//===----------------------------------------------------------------------===//

TEST(PipelineTest, CompileInterceptRoundTrip) {
  gpusim::Gpu Device;
  Rng DataRng(3);
  triton::CompiledKernel K = triton::compileKernel(
      Device, WorkloadKind::MmLeakyRelu,
      testShape(WorkloadKind::MmLeakyRelu),
      candidateConfigs(WorkloadKind::MmLeakyRelu).front(), DataRng);
  Expected<sass::Program> P = triton::interceptCubin(K);
  ASSERT_TRUE(P.hasValue()) << P.error().str();
  EXPECT_EQ(P->str(), K.Runtime.Prog.str());
}

TEST(PipelineTest, SubstituteScheduleUpdatesBinaryAndRuntime) {
  gpusim::Gpu Device;
  Rng DataRng(3);
  triton::CompiledKernel K = triton::compileKernel(
      Device, WorkloadKind::Softmax, testShape(WorkloadKind::Softmax),
      candidateConfigs(WorkloadKind::Softmax).front(), DataRng);
  sass::Program Optimized = K.Runtime.Prog;
  // Find two swappable adjacent instructions.
  env::AssemblyGame Game(Device, K.Runtime, [] {
    env::GameConfig G;
    G.Measure.WarmupIters = 1;
    G.Measure.RepeatIters = 1;
    return G;
  }());
  std::vector<uint8_t> Mask = Game.actionMask();
  unsigned A = 0;
  while (A < Mask.size() && !Mask[A])
    ++A;
  ASSERT_LT(A, Mask.size());
  Game.step(A);
  Optimized = Game.current();

  triton::substituteSchedule(K, Optimized);
  Expected<sass::Program> Back = triton::interceptCubin(K);
  ASSERT_TRUE(Back.hasValue());
  EXPECT_EQ(Back->str(), Optimized.str());
  EXPECT_EQ(K.Runtime.Prog.str(), Optimized.str());
}

TEST(PipelineTest, ProbabilisticTestAcceptsValidSchedule) {
  gpusim::Gpu Device;
  Rng DataRng(3);
  triton::CompiledKernel K = triton::compileKernel(
      Device, WorkloadKind::RmsNorm, testShape(WorkloadKind::RmsNorm),
      candidateConfigs(WorkloadKind::RmsNorm).front(), DataRng);
  EXPECT_TRUE(triton::probabilisticTest(Device, K.Runtime, K.Runtime.Prog,
                                        K.Runtime.Prog, 2, DataRng));
}

TEST(PipelineTest, ProbabilisticTestRejectsCorruptSchedule) {
  gpusim::Gpu Device;
  Rng DataRng(3);
  triton::CompiledKernel K = triton::compileKernel(
      Device, WorkloadKind::MmLeakyRelu,
      testShape(WorkloadKind::MmLeakyRelu),
      candidateConfigs(WorkloadKind::MmLeakyRelu).front(), DataRng);
  // Violate stall counts deliberately: drop every fixed-latency
  // instruction to a 1-cycle stall (back-to-back dependent IMAD/IADD3
  // chains then read stale registers).
  sass::Program Bad = K.Runtime.Prog;
  for (size_t I = 0; I < Bad.size(); ++I)
    if (Bad.stmt(I).isInstr() && Bad.stmt(I).instr().isFixedLatency())
      Bad.stmt(I).instr().ctrl().setStall(1);
  EXPECT_FALSE(triton::probabilisticTest(Device, K.Runtime, K.Runtime.Prog,
                                         Bad, 2, DataRng));
}

//===----------------------------------------------------------------------===//
// Deploy cache (§4.2)
//===----------------------------------------------------------------------===//

TEST(DeployCacheTest, StoreAndLookup) {
  std::string Dir =
      (std::filesystem::temp_directory_path() / "cuasmrl_cache_test")
          .string();
  std::filesystem::remove_all(Dir);
  triton::DeployCache Cache(Dir);

  gpusim::Gpu Device;
  Rng DataRng(3);
  triton::CompiledKernel K = triton::compileKernel(
      Device, WorkloadKind::Softmax, testShape(WorkloadKind::Softmax),
      candidateConfigs(WorkloadKind::Softmax).front(), DataRng);

  std::string Key = triton::DeployCache::makeKey(
      "A100-SIM", "softmax",
      candidateConfigs(WorkloadKind::Softmax).front().str());
  EXPECT_FALSE(Cache.contains(Key));
  ASSERT_TRUE(Cache.store(Key, K.Binary));
  EXPECT_TRUE(Cache.contains(Key));

  std::optional<cubin::CubinFile> Loaded = Cache.load(Key);
  ASSERT_TRUE(Loaded.has_value());
  Expected<sass::Program> P = cubin::disassemble(*Loaded);
  ASSERT_TRUE(P.hasValue());
  EXPECT_EQ(P->str(), K.Runtime.Prog.str());
  std::filesystem::remove_all(Dir);
}

TEST(DeployCacheTest, MissingKeyReturnsNothing) {
  triton::DeployCache Cache("/tmp/cuasmrl_cache_missing");
  EXPECT_FALSE(Cache.load("no-such-key").has_value());
}

//===----------------------------------------------------------------------===//
// Search baselines (§7)
//===----------------------------------------------------------------------===//

namespace {

env::GameConfig searchGameConfig() {
  env::GameConfig G;
  G.Measure.WarmupIters = 1;
  G.Measure.RepeatIters = 1;
  G.Measure.NoiseStddev = 0.0;
  G.EpisodeLength = 64;
  return G;
}

} // namespace

TEST(SearchTest, GreedyNeverWorsens) {
  gpusim::Gpu Device;
  Rng DataRng(3);
  BuiltKernel K = buildKernel(Device, WorkloadKind::MmLeakyRelu,
                              testShape(WorkloadKind::MmLeakyRelu),
                              candidateConfigs(WorkloadKind::MmLeakyRelu)
                                  .front(),
                              ScheduleStyle::TritonO3, DataRng);
  env::AssemblyGame Game(Device, K, searchGameConfig());
  Rng SR(1);
  search::SearchResult R = search::greedySearch(Game, 400, SR);
  EXPECT_LE(R.BestTimeUs, R.InitialTimeUs + 1e-9);
  EXPECT_GT(R.StepsUsed, 0u);
}

TEST(SearchTest, RandomTracksBestSchedule) {
  gpusim::Gpu Device;
  Rng DataRng(3);
  BuiltKernel K = buildKernel(Device, WorkloadKind::Softmax,
                              testShape(WorkloadKind::Softmax),
                              candidateConfigs(WorkloadKind::Softmax)
                                  .front(),
                              ScheduleStyle::TritonO3, DataRng);
  env::AssemblyGame Game(Device, K, searchGameConfig());
  Rng SR(2);
  search::SearchResult R = search::randomSearch(Game, 150, SR);
  EXPECT_LE(R.BestTimeUs, R.InitialTimeUs + 1e-9);
  ASSERT_FALSE(R.BestCurve.empty());
  // Best-so-far curves are monotone non-increasing.
  for (size_t I = 1; I < R.BestCurve.size(); ++I)
    EXPECT_LE(R.BestCurve[I], R.BestCurve[I - 1] + 1e-9);
}

TEST(SearchTest, EvolutionaryImprovesOrMatches) {
  gpusim::Gpu Device;
  Rng DataRng(3);
  BuiltKernel K = buildKernel(Device, WorkloadKind::MmLeakyRelu,
                              testShape(WorkloadKind::MmLeakyRelu),
                              candidateConfigs(WorkloadKind::MmLeakyRelu)
                                  .front(),
                              ScheduleStyle::TritonO3, DataRng);
  env::AssemblyGame Game(Device, K, searchGameConfig());
  Rng SR(3);
  search::SearchResult R = search::evolutionarySearch(Game, 300, SR);
  EXPECT_LE(R.BestTimeUs, R.InitialTimeUs + 1e-9);
}

//===----------------------------------------------------------------------===//
// End-to-end optimizer (Figure 2)
//===----------------------------------------------------------------------===//

TEST(OptimizerTest, EndToEndImprovesOrMatchesAndVerifies) {
  gpusim::Gpu Device;
  Rng DataRng(5);
  core::OptimizeConfig C;
  C.Ppo.TotalSteps = 256;
  C.Ppo.RolloutLen = 32;
  C.Ppo.Lr = 1e-3;
  C.Ppo.Channels = 8;
  C.Ppo.Hidden = 32;
  C.Game.Measure.WarmupIters = 1;
  C.Game.Measure.RepeatIters = 1;
  C.Game.Measure.NoiseStddev = 0.001;
  C.AutotuneMeasure = quickMeasure();
  C.ProbTestRounds = 1;
  core::Optimizer Opt(C);

  core::OptimizeResult R =
      Opt.optimize(Device, WorkloadKind::MmLeakyRelu,
                   testShape(WorkloadKind::MmLeakyRelu), DataRng);
  EXPECT_GT(R.TritonUs, 0.0);
  EXPECT_LE(R.OptimizedUs, R.TritonUs * 1.001);
  EXPECT_TRUE(R.Verified);
  EXPECT_FALSE(R.Training.empty());
  EXPECT_GT(R.KernelExecutions, 0u);
  // The optimized binary must disassemble to the optimized schedule.
  Expected<sass::Program> P = triton::interceptCubin(R.Kernel);
  ASSERT_TRUE(P.hasValue());
  EXPECT_EQ(P->str(), R.OptimizedProg.str());
}

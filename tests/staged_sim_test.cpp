//===- tests/staged_sim_test.cpp - Staged simulator core tests ---------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// Tests pinned to the staged-pipeline refactor:
///
///  - golden rows captured from the pre-staged machine: the staged
///    core must reproduce them bit-for-bit, including invalid (hazard
///    violating) schedules;
///  - stage unit tests on hand-built latch/warp state (warp select,
///    operand fetch, the event queue) — the latch contracts make each
///    stage testable without a machine;
///  - lockstep-batch differentials: Gpu::runBatch, measureKernelBatch
///    and the step-major rollout path must be bit-identical to their
///    serial one-at-a-time equivalents.
///
//===----------------------------------------------------------------------===//

#include "core/GameEnvAdapter.h"
#include "gpusim/DecodedProgram.h"
#include "gpusim/Gpu.h"
#include "gpusim/Measurement.h"
#include "gpusim/pipeline/OperandFetch.h"
#include "gpusim/pipeline/WarpSelect.h"
#include "gpusim/pipeline/Writeback.h"
#include "kernels/Builder.h"
#include "kernels/Workload.h"
#include "rl/RolloutRunner.h"
#include "sass/Parser.h"
#include "sass/Program.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

using namespace cuasmrl;
using namespace cuasmrl::gpusim;

namespace {

sass::Program parseOrDie(const std::string &Text,
                         const std::string &Name = "k") {
  Expected<sass::Program> P = sass::Parser::parseProgram(Text, Name);
  EXPECT_TRUE(P.hasValue()) << (P.hasValue() ? "" : P.error().str());
  return P.hasValue() ? P.takeValue() : sass::Program();
}

/// Statement indices I where both I and I+1 are instructions (the
/// positions an adjacent swap may target).
std::vector<size_t> instrPairs(const sass::Program &P) {
  std::vector<size_t> Pairs;
  for (size_t I = 0; I + 1 < P.size(); ++I)
    if (P.stmt(I).isInstr() && P.stmt(I + 1).isInstr())
      Pairs.push_back(I);
  return Pairs;
}

/// Applies variant \p V's three deterministic adjacent swaps in place.
/// Variants accumulate: looping V = 1..k leaves the program in the
/// golden capture's variant-k schedule (legal and hazard-violating
/// swaps alike).
void applySwapVariant(sass::Program &Prog, const std::vector<size_t> &Pairs,
                      unsigned V) {
  for (unsigned S = 0; S < 3; ++S) {
    size_t Idx =
        (1103515245u * (3 * (V - 1) + S) + 12345u * V) % Pairs.size();
    Prog.swap(Pairs[Idx], Pairs[Idx] + 1);
  }
}

struct KernelUnderTest {
  kernels::WorkloadKind Kind;
  const char *Name;
};

const KernelUnderTest TestKernels[] = {
    {kernels::WorkloadKind::MmLeakyRelu, "mm_leaky_relu"},
    {kernels::WorkloadKind::FlashAttention, "flash_attention"},
    {kernels::WorkloadKind::Softmax, "softmax"},
};

kernels::BuiltKernel buildTestKernel(Gpu &Device,
                                     kernels::WorkloadKind Kind) {
  Rng DataRng(7);
  return kernels::buildKernel(Device, Kind, kernels::testShape(Kind),
                              kernels::candidateConfigs(Kind).front(),
                              kernels::ScheduleStyle::TritonO3, DataRng);
}

//===----------------------------------------------------------------------===//
// Golden rows (captured from the pre-staged machine)
//===----------------------------------------------------------------------===//

struct GoldenRow {
  const char *Kernel;
  unsigned Variant;
  int TimedValid;
  uint64_t Cycles, Issued, StallWait, StallFixed, BankConflict, L2Misses,
      DramBytes, ReuseHits;
  int OracleValid;
};

// Captured on the seed implementation (pre-staged machine), MaxBlocks=2
// timed / 1 oracle, via the applySwapVariant recipe above. The staged
// core must reproduce every row exactly — the invalid softmax rows pin
// the hazard-violation surface (stale reads, LDGSTS corruption), not
// just the happy path.
const GoldenRow Goldens[] = {
    {"mm_leaky_relu", 0, 1, 3882ull, 988ull, 1264ull, 1304ull, 448ull, 140ull, 17920ull, 112ull, 1},
    {"mm_leaky_relu", 1, 1, 3882ull, 988ull, 1264ull, 1304ull, 448ull, 140ull, 17920ull, 112ull, 1},
    {"mm_leaky_relu", 2, 1, 3877ull, 992ull, 1224ull, 1316ull, 448ull, 140ull, 17920ull, 112ull, 1},
    {"mm_leaky_relu", 3, 1, 3880ull, 992ull, 1200ull, 1316ull, 448ull, 140ull, 17920ull, 112ull, 1},
    {"mm_leaky_relu", 4, 1, 3879ull, 992ull, 1200ull, 1316ull, 480ull, 140ull, 17920ull, 96ull, 1},
    {"mm_leaky_relu", 5, 1, 3605ull, 992ull, 1194ull, 1316ull, 480ull, 110ull, 14080ull, 96ull, 1},
    {"flash_attention", 0, 1, 1629ull, 1480ull, 1460ull, 2280ull, 400ull, 85ull, 5440ull, 48ull, 1},
    {"flash_attention", 1, 1, 1906ull, 1960ull, 1796ull, 2992ull, 544ull, 85ull, 5440ull, 72ull, 1},
    {"flash_attention", 2, 1, 1902ull, 1960ull, 1844ull, 2992ull, 544ull, 85ull, 5440ull, 72ull, 1},
    {"flash_attention", 3, 1, 1906ull, 1960ull, 1796ull, 2992ull, 544ull, 85ull, 5440ull, 72ull, 1},
    {"flash_attention", 4, 1, 1902ull, 1960ull, 1796ull, 2992ull, 544ull, 85ull, 5440ull, 72ull, 1},
    {"flash_attention", 5, 1, 1902ull, 1960ull, 1796ull, 2992ull, 544ull, 85ull, 5440ull, 72ull, 1},
    {"softmax", 0, 1, 4439ull, 5472ull, 21452ull, 7560ull, 784ull, 38ull, 4864ull, 0ull, 1},
    {"softmax", 1, 1, 4439ull, 5472ull, 21480ull, 7560ull, 784ull, 38ull, 4864ull, 0ull, 1},
    {"softmax", 2, 1, 4439ull, 5472ull, 21406ull, 7560ull, 784ull, 38ull, 4864ull, 0ull, 1},
    {"softmax", 3, 1, 4440ull, 5472ull, 21152ull, 7560ull, 784ull, 38ull, 4864ull, 0ull, 1},
    {"softmax", 4, 0, 4389ull, 2736ull, 10922ull, 3780ull, 392ull, 26ull, 3328ull, 0ull, 0},
    {"softmax", 5, 0, 4365ull, 2736ull, 10900ull, 3780ull, 392ull, 26ull, 3328ull, 0ull, 0},
};

TEST(StagedGoldenTest, SeedGoldenRows) {
  size_t Row = 0;
  for (const KernelUnderTest &It : TestKernels) {
    Gpu Device;
    kernels::BuiltKernel K = buildTestKernel(Device, It.Kind);
    sass::Program Prog = K.Prog;
    std::vector<size_t> Pairs = instrPairs(Prog);

    for (unsigned V = 0; V < 6; ++V, ++Row) {
      if (V)
        applySwapVariant(Prog, Pairs, V);
      DecodedProgram Decoded(Prog);
      Device.clearCaches();
      RunResult T = Device.run(Prog, Decoded, K.Launch, RunMode::Timed, 2);
      RunResult O = Device.run(Prog, Decoded, K.Launch, RunMode::Oracle, 1);

      ASSERT_LT(Row, std::size(Goldens));
      const GoldenRow &G = Goldens[Row];
      ASSERT_STREQ(G.Kernel, It.Name);
      ASSERT_EQ(G.Variant, V);
      SCOPED_TRACE(testing::Message() << It.Name << " variant " << V);
      EXPECT_EQ(T.Valid, G.TimedValid != 0);
      EXPECT_EQ(T.Cycles, G.Cycles);
      EXPECT_EQ(T.Counters.IssuedInstrs, G.Issued);
      EXPECT_EQ(T.Counters.StallWaitCycles, G.StallWait);
      EXPECT_EQ(T.Counters.StallFixedCycles, G.StallFixed);
      EXPECT_EQ(T.Counters.BankConflictCycles, G.BankConflict);
      EXPECT_EQ(T.Counters.L2Misses, G.L2Misses);
      EXPECT_EQ(T.Counters.DramBytes, G.DramBytes);
      EXPECT_EQ(T.Counters.ReuseHits, G.ReuseHits);
      EXPECT_EQ(O.Valid, G.OracleValid != 0);

      // Per-stage counter invariants (this PR's counters are not part
      // of the golden capture, but their structure is pinned here).
      EXPECT_GT(T.Counters.SelectProbes, 0u);
      EXPECT_GE(T.Counters.SelectProbes, T.Counters.SelectIneligible);
      EXPECT_EQ(T.Counters.ExecFixedLatOps + T.Counters.ExecVarLatOps,
                T.Counters.IssuedInstrs);
      EXPECT_GT(T.Counters.ExecVarLatOps, 0u); // Loads always present.
      EXPECT_GT(T.Counters.WbEventsFired, 0u);
    }
  }
  EXPECT_EQ(Row, std::size(Goldens));
}

//===----------------------------------------------------------------------===//
// Warp-select stage
//===----------------------------------------------------------------------===//

// Statement layout: 0 = LDG setting write barrier 0; 1, 2 = labels;
// 3 = FADD waiting on barrier 0; 4 = EXIT.
const char *SelectProgText = R"(
  [B------:R-:W0:-:S01] LDG.E R2, [R4.64] ;
.L_A:
.L_B:
  [B0-----:R-:W-:-:S01] FADD R3, R2, R2 ;
  [B------:R-:W-:-:S01] EXIT ;
)";

TEST(WarpSelectTest, LabelSkipPersistsAndEndsLdgstsGroup) {
  sass::Program Prog = parseOrDie(SelectProgText);
  DecodedProgram D(Prog);
  ASSERT_TRUE(D.isLabel(1));
  ASSERT_TRUE(D.isLabel(2));

  WarpSimState W;
  W.Pc = 1;
  W.LdgstsBase = 5; // A live LDGSTS group that the labels must end.
  PerfCounters C;
  uint64_t MinReady = ~0ull;

  // Warp is eligible at statement 3 (no scoreboard wait pending).
  EXPECT_TRUE(WarpSelect::probe(W, D, /*Now=*/0, C, MinReady));
  EXPECT_EQ(W.Pc, 3u);          // Labels skipped persistently.
  EXPECT_EQ(W.LdgstsBase, -1);  // Crossing a label ends the group.
  EXPECT_EQ(C.FetchLabelSkips, 2u);
  EXPECT_EQ(C.SelectProbes, 1u);
  EXPECT_EQ(C.SelectIneligible, 0u);

  // A second probe must not re-skip (the advance persisted).
  EXPECT_TRUE(WarpSelect::probe(W, D, 0, C, MinReady));
  EXPECT_EQ(C.FetchLabelSkips, 2u);
}

TEST(WarpSelectTest, WaitStallCountsOncePerProbe) {
  sass::Program Prog = parseOrDie(SelectProgText);
  DecodedProgram D(Prog);

  WarpSimState W;
  W.Pc = 1; // Labels, then the waiting FADD.
  scoreboardAcquire(W, 0);
  PerfCounters C;
  uint64_t MinReady = ~0ull;

  // Each probe of a wait-stalled warp contributes one StallWaitCycle —
  // the counter surface is per probe, not per stalled cycle.
  EXPECT_FALSE(WarpSelect::probe(W, D, 0, C, MinReady));
  EXPECT_FALSE(WarpSelect::probe(W, D, 1, C, MinReady));
  EXPECT_FALSE(WarpSelect::probe(W, D, 2, C, MinReady));
  EXPECT_EQ(C.StallWaitCycles, 3u);
  EXPECT_EQ(C.SelectIneligible, 3u);
  EXPECT_EQ(W.Pc, 3u); // Label skip still happened on the first probe.

  scoreboardRelease(W, 0);
  EXPECT_TRUE(WarpSelect::probe(W, D, 3, C, MinReady));
  EXPECT_EQ(C.StallWaitCycles, 3u);
}

TEST(WarpSelectTest, MinReadyAccumulatesOverStallRejects) {
  sass::Program Prog = parseOrDie(SelectProgText);
  DecodedProgram D(Prog);
  PerfCounters C;
  uint64_t MinReady = ~0ull;

  WarpSimState Stalled;
  Stalled.NextIssue = 17;
  EXPECT_FALSE(WarpSelect::probe(Stalled, D, /*Now=*/4, C, MinReady));
  EXPECT_EQ(MinReady, 17u);

  WarpSimState Sooner;
  Sooner.NextIssue = 9;
  EXPECT_FALSE(WarpSelect::probe(Sooner, D, 4, C, MinReady));
  EXPECT_EQ(MinReady, 9u);

  // Done and at-barrier warps never become ready by waiting — they must
  // not pull MinReady down.
  WarpSimState Finished;
  Finished.Done = true;
  Finished.NextIssue = 1;
  EXPECT_FALSE(WarpSelect::probe(Finished, D, 4, C, MinReady));
  WarpSimState Barriered;
  Barriered.AtBarrier = true;
  Barriered.NextIssue = 1;
  EXPECT_FALSE(WarpSelect::probe(Barriered, D, 4, C, MinReady));
  EXPECT_EQ(MinReady, 9u);
}

TEST(WarpSelectTest, StickyWarpWinsOverScanOrder) {
  sass::Program Prog = parseOrDie(SelectProgText);
  DecodedProgram D(Prog);
  PerfCounters C;
  uint64_t MinReady = ~0ull;

  std::vector<WarpSimState> Warps(4);
  for (WarpSimState &W : Warps)
    W.Pc = 3; // Eligible at the FADD, no wait pending.

  Scheduler S;
  S.StickyWarp = 2;
  // Scheduler 0 of 2 owns warps {0, 2}; greedy keeps warp 2 although
  // warp 0 scans first.
  SelectLatch L = WarpSelect::pick(S, Warps, /*SchedIdx=*/0, /*Stride=*/2,
                                   D, 0, C, MinReady);
  EXPECT_EQ(L.Warp, 2);
  EXPECT_EQ(C.SelectProbes, 1u); // Sticky hit short-circuits the scan.

  // Sticky warp stalled: fall back to ownership-order scan.
  scoreboardAcquire(Warps[2], 0);
  L = WarpSelect::pick(S, Warps, 0, 2, D, 0, C, MinReady);
  EXPECT_EQ(L.Warp, 0);

  // Nobody eligible: idle slot counted, latch empty.
  scoreboardAcquire(Warps[0], 0);
  uint64_t IdleBefore = C.SelectIdleCycles;
  L = WarpSelect::pick(S, Warps, 0, 2, D, 0, C, MinReady);
  EXPECT_EQ(L.Warp, -1);
  EXPECT_EQ(C.SelectIdleCycles, IdleBefore + 1);
}

//===----------------------------------------------------------------------===//
// Operand-fetch stage
//===----------------------------------------------------------------------===//

TEST(OperandFetchTest, TabulatedMatchesRunOnRandomStates) {
  const unsigned Banks = 4, Penalty = 2;
  Rng R(1234);

  for (int Trial = 0; Trial < 2000; ++Trial) {
    // Random instruction record: up to 7 populated source slots, each
    // maybe reuse-flagged.
    DecodedInstr D;
    for (unsigned Slot = 1; Slot < 8; ++Slot) {
      if (R.uniformInt(3) == 0)
        continue;
      D.SlotReg[Slot] = static_cast<int16_t>(R.uniformInt(32));
      D.HasSlotRegs = true;
      if (R.uniformInt(2))
        D.ReuseMask |= static_cast<uint8_t>(1u << Slot);
    }

    // Random scheduler reuse state (possibly aimed at another warp).
    Scheduler S;
    S.ReuseValid = R.uniformInt(2) != 0;
    S.ReuseWarp = static_cast<int>(R.uniformInt(3));
    for (int &Reg : S.ReuseRegs)
      Reg = R.uniformInt(4) ? static_cast<int>(R.uniformInt(32)) : -1;
    unsigned WarpIdx = static_cast<unsigned>(R.uniformInt(3));

    Scheduler S1 = S, S2 = S;
    PerfCounters C1, C2;
    uint16_t TableEntry = static_cast<uint16_t>(
        OperandFetch::noReusePenalty(D, Banks, Penalty));
    OperandLatch L1 = OperandFetch::run(S1, WarpIdx, D, Banks, Penalty, C1);
    OperandLatch L2 = OperandFetch::runTabulated(S2, WarpIdx, D, TableEntry,
                                                 Banks, Penalty, C2);

    SCOPED_TRACE(testing::Message() << "trial " << Trial);
    EXPECT_EQ(L1.BankPenalty, L2.BankPenalty);
    EXPECT_EQ(C1.BankConflictCycles, C2.BankConflictCycles);
    EXPECT_EQ(C1.ReuseHits, C2.ReuseHits);
    EXPECT_EQ(C1.ReuseMisses, C2.ReuseMisses);
  }
}

TEST(OperandFetchTest, PenaltyTableMatchesPerStatementScan) {
  Gpu Device;
  kernels::BuiltKernel K =
      buildTestKernel(Device, kernels::WorkloadKind::MmLeakyRelu);
  DecodedProgram D(K.Prog);

  std::vector<uint16_t> Table;
  OperandFetch::buildPenaltyTable(D, 4, 2, Table);
  ASSERT_EQ(Table.size(), D.size());
  for (size_t I = 0; I < D.size(); ++I) {
    if (D.isLabel(I)) {
      EXPECT_EQ(Table[I], 0u);
      continue;
    }
    EXPECT_EQ(Table[I], OperandFetch::noReusePenalty(D[I], 4, 2))
        << "statement " << I;
  }
}

//===----------------------------------------------------------------------===//
// Event queue (writeback stage)
//===----------------------------------------------------------------------===//

TEST(EventQueueTest, PopsInCycleOrderWithFifoPairTies) {
  EventQueue Q;
  Q.push(Event{30, 1, -1, -1, {}});
  Q.push(Event{10, 2, -1, -1, {}});
  Q.push(Event{20, 3, -1, -1, {}});
  Q.push(Event{10, 4, -1, -1, {}}); // Same cycle as warp 2, pushed later.

  EXPECT_EQ(Q.pop().Warp, 2); // Cycle 10, first pushed.
  EXPECT_EQ(Q.pop().Warp, 4); // Cycle 10, second pushed.
  EXPECT_EQ(Q.pop().Warp, 3);
  EXPECT_EQ(Q.pop().Warp, 1);
  EXPECT_TRUE(Q.empty());
}

TEST(EventQueueTest, WriteBufPoolRecyclesCapacity) {
  EventQueue Q;
  EXPECT_TRUE(Q.takeWriteBuf().empty()); // Empty pool: fresh vector.

  std::vector<DeferredWrite> Buf;
  Buf.reserve(64);
  Buf.push_back(DeferredWrite{DeferredWrite::File::R, 3, 7});
  Q.recycleWriteBuf(std::move(Buf));

  std::vector<DeferredWrite> Back = Q.takeWriteBuf();
  EXPECT_TRUE(Back.empty());          // Values never survive the pool.
  EXPECT_GE(Back.capacity(), 64u);    // Capacity does.

  // Capacity-0 buffers are not worth pooling.
  Q.recycleWriteBuf(std::vector<DeferredWrite>());
  EXPECT_EQ(Q.takeWriteBuf().capacity(), 0u);

  // Donation round-trip (the batch-lane rotation surface).
  Q.recycleWriteBuf(std::move(Back));
  std::vector<std::vector<DeferredWrite>> Pool = Q.releaseWriteBufPool();
  ASSERT_EQ(Pool.size(), 1u);
  EXPECT_TRUE(Q.takeWriteBuf().capacity() == 0); // Pool left the queue.
  EventQueue Q2;
  Q2.adoptWriteBufPool(std::move(Pool));
  EXPECT_GE(Q2.takeWriteBuf().capacity(), 64u);
}

//===----------------------------------------------------------------------===//
// Lockstep batch simulation
//===----------------------------------------------------------------------===//

void expectSameRunResult(const RunResult &A, const RunResult &B,
                         const char *Tag) {
  SCOPED_TRACE(Tag);
  EXPECT_EQ(A.Valid, B.Valid);
  EXPECT_EQ(A.FaultReason, B.FaultReason);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.TimeUs, B.TimeUs);
  // Every counter field, via the authoritative list — a counter added
  // to PerfCounters is automatically part of the bit-identity contract.
  visitCounterFields(A.Counters, B.Counters,
                     [](const char *Name, const uint64_t &X,
                        const uint64_t &Y) { EXPECT_EQ(X, Y) << Name; });
}

TEST(BatchSimTest, RunBatchMatchesSingleLaneRuns) {
  for (const KernelUnderTest &It : TestKernels) {
    Gpu Device;
    kernels::BuiltKernel K = buildTestKernel(Device, It.Kind);
    std::vector<size_t> Pairs = instrPairs(K.Prog);

    // Six schedule variants, including the hazard-violating softmax
    // ones (golden rows 16/17) — invalid lanes must fail identically.
    std::vector<sass::Program> Progs;
    std::vector<DecodedProgram> Images;
    Progs.reserve(6);
    Images.reserve(6);
    sass::Program Work = K.Prog;
    for (unsigned V = 0; V < 6; ++V) {
      if (V)
        applySwapVariant(Work, Pairs, V);
      Progs.push_back(Work);
    }
    for (const sass::Program &P : Progs)
      Images.emplace_back(P);

    for (RunMode Mode : {RunMode::Timed, RunMode::Oracle}) {
      std::vector<Gpu::BatchCandidate> Cands(Progs.size());
      for (size_t I = 0; I < Progs.size(); ++I)
        Cands[I] = Gpu::BatchCandidate{&Progs[I], &Images[I]};
      std::vector<RunResult> Batch =
          Device.runBatch(Cands, K.Launch, Mode, 2);

      ASSERT_EQ(Batch.size(), Progs.size());
      for (size_t I = 0; I < Progs.size(); ++I) {
        // Serial reference: the documented lane semantics — a private
        // snapshot of the shared device, one plain run.
        Gpu Ref(Device);
        RunResult Single = Ref.run(Progs[I], Images[I], K.Launch, Mode, 2);
        std::string Tag = std::string(It.Name) + " variant " +
                          std::to_string(I) +
                          (Mode == RunMode::Timed ? " timed" : " oracle");
        expectSameRunResult(Batch[I], Single, Tag.c_str());
      }
    }
  }
}

TEST(BatchSimTest, RandomizedDifferentialSweep) {
  // Differential sweep: for every workload and batch sizes {1, 2, 7,
  // 16}, lockstep runBatch over randomized schedule variants must be
  // bit-identical — full counter set included — to N independent
  // private-snapshot Gpu runs of the same variants, in both run modes.
  // Variants are seeded random adjacent-swap walks, so lanes include
  // legal reorderings and hazard-violating schedules alike.
  const unsigned BatchSizes[] = {1, 2, 7, 16};
  for (kernels::WorkloadKind Kind : kernels::allWorkloads()) {
    Gpu Device;
    kernels::BuiltKernel K = buildTestKernel(Device, Kind);
    // Random swaps may legally produce hazard-violating schedules (the
    // sweep wants those), but reordering control flow can unbound the
    // loop structure and run a lane to the 200M-cycle runaway limit —
    // seconds of wall time that test nothing new. Swap only pairs
    // where neither side ends a basic block.
    std::vector<size_t> Pairs;
    for (size_t I : instrPairs(K.Prog))
      if (!K.Prog.stmt(I).instr().isControlFlow() &&
          !K.Prog.stmt(I + 1).instr().isControlFlow())
        Pairs.push_back(I);
    ASSERT_FALSE(Pairs.empty());
    Rng SwapRng(0xD1FFu ^ static_cast<uint64_t>(Kind));

    for (unsigned BatchSize : BatchSizes) {
      std::vector<sass::Program> Progs;
      std::vector<DecodedProgram> Images;
      Progs.reserve(BatchSize);
      Images.reserve(BatchSize);
      for (unsigned L = 0; L < BatchSize; ++L) {
        sass::Program P = K.Prog;
        unsigned Swaps = static_cast<unsigned>(SwapRng.uniformInt(7));
        for (unsigned S = 0; S < Swaps; ++S) {
          size_t Idx = SwapRng.uniformInt(Pairs.size());
          P.swap(Pairs[Idx], Pairs[Idx] + 1);
        }
        Progs.push_back(std::move(P));
      }
      for (const sass::Program &P : Progs)
        Images.emplace_back(P);

      for (RunMode Mode : {RunMode::Timed, RunMode::Oracle}) {
        std::vector<Gpu::BatchCandidate> Cands(Progs.size());
        for (size_t I = 0; I < Progs.size(); ++I)
          Cands[I] = Gpu::BatchCandidate{&Progs[I], &Images[I]};
        std::vector<RunResult> Batch =
            Device.runBatch(Cands, K.Launch, Mode, 2);
        ASSERT_EQ(Batch.size(), Progs.size());

        for (size_t I = 0; I < Progs.size(); ++I) {
          Gpu Ref(Device);
          RunResult Single =
              Ref.run(Progs[I], Images[I], K.Launch, Mode, 2);
          std::string Tag =
              kernels::workloadName(Kind) + " batch " +
              std::to_string(BatchSize) + " lane " + std::to_string(I) +
              (Mode == RunMode::Timed ? " timed" : " oracle");
          expectSameRunResult(Batch[I], Single, Tag.c_str());
        }
      }
    }
  }
}

TEST(BatchMeasureTest, BatchMatchesSerialMeasurements) {
  // Heterogeneous lanes: different kernels, different protocols, one
  // faulting schedule (softmax variant 4 is hazard-violating). Lane i
  // must be bit-identical to measureKernel on an identically seeded
  // device.
  struct LaneSpec {
    kernels::WorkloadKind Kind;
    unsigned SwapVariants; // applySwapVariant 1..SwapVariants.
    MeasureConfig MC;
  };
  std::vector<LaneSpec> Specs(4);
  Specs[0] = {kernels::WorkloadKind::MmLeakyRelu, 0, {}};
  Specs[1] = {kernels::WorkloadKind::FlashAttention, 2, {}};
  Specs[1].MC.WarmupIters = 1;
  Specs[1].MC.RepeatIters = 4;
  Specs[1].MC.Seed = 99;
  Specs[2] = {kernels::WorkloadKind::Softmax, 4, {}}; // Invalid schedule.
  Specs[2].MC.RepeatIters = 2;
  Specs[3] = {kernels::WorkloadKind::Softmax, 1, {}};
  Specs[3].MC.ClearL2BetweenReps = false;
  Specs[3].MC.NoiseStddev = 0.01;
  Specs[3].MC.MaxBlocks = 2;

  struct LaneKit {
    Gpu Device;
    kernels::BuiltKernel K;
    sass::Program Prog;
    std::unique_ptr<DecodedProgram> Decoded;
  };
  auto makeKit = [](const LaneSpec &Spec) {
    auto Kit = std::make_unique<LaneKit>();
    Kit->K = buildTestKernel(Kit->Device, Spec.Kind);
    Kit->Prog = Kit->K.Prog;
    std::vector<size_t> Pairs = instrPairs(Kit->Prog);
    for (unsigned V = 1; V <= Spec.SwapVariants; ++V)
      applySwapVariant(Kit->Prog, Pairs, V);
    Kit->Decoded = std::make_unique<DecodedProgram>(Kit->Prog);
    return Kit;
  };

  // Two identically constructed kits per lane: one measured in the
  // batch, one serially. (Kernel building is deterministic per seed.)
  std::vector<std::unique_ptr<LaneKit>> BatchKits, SerialKits;
  for (const LaneSpec &Spec : Specs) {
    BatchKits.push_back(makeKit(Spec));
    SerialKits.push_back(makeKit(Spec));
  }

  std::vector<BatchMeasureLane> Lanes(Specs.size());
  for (size_t I = 0; I < Specs.size(); ++I) {
    LaneKit &Kit = *BatchKits[I];
    // Odd lanes exercise the decode-on-entry path (null image).
    Lanes[I] = BatchMeasureLane{&Kit.Device, &Kit.Prog,
                                (I % 2) ? nullptr : Kit.Decoded.get(),
                                &Kit.K.Launch, Specs[I].MC};
  }
  std::vector<Measurement> Batch = measureKernelBatch(Lanes);
  ASSERT_EQ(Batch.size(), Specs.size());

  for (size_t I = 0; I < Specs.size(); ++I) {
    LaneKit &Kit = *SerialKits[I];
    Measurement Single = measureKernel(Kit.Device, Kit.Prog, *Kit.Decoded,
                                       Kit.K.Launch, Specs[I].MC);
    SCOPED_TRACE(testing::Message() << "lane " << I);
    EXPECT_EQ(Batch[I].Valid, Single.Valid);
    EXPECT_EQ(Batch[I].FaultReason, Single.FaultReason);
    EXPECT_EQ(Batch[I].MeanUs, Single.MeanUs);
    EXPECT_EQ(Batch[I].StddevUs, Single.StddevUs);
    EXPECT_EQ(Batch[I].Cycles, Single.Cycles);
    EXPECT_EQ(Batch[I].Counters.IssuedInstrs, Single.Counters.IssuedInstrs);
    EXPECT_EQ(Batch[I].Counters.DramBytes, Single.Counters.DramBytes);
  }
  EXPECT_FALSE(Batch[2].Valid); // The hazard-violating lane faulted.
  EXPECT_TRUE(Batch[0].Valid);
  EXPECT_TRUE(Batch[1].Valid);
  EXPECT_TRUE(Batch[3].Valid);
}

//===----------------------------------------------------------------------===//
// Oracle-vs-timed divergence (hazard-faithful stale reads)
//===----------------------------------------------------------------------===//

// A load whose consumer drops the scoreboard wait: the oracle (program
// order) always sees the loaded 0x77, while the timed machine reads
// the stale register — silently, with Valid = true. These cases pin
// that divergence surface, the very signal the RL reward depends on
// to penalize wait-dropping schedules via the probabilistic test.
const char *StaleReadText = R"(
  [B------:R-:W-:-:S04] MOV R2, c[0x0][0x160] ;
  [B------:R-:W-:-:S04] MOV R3, c[0x0][0x164] ;
  [B------:R-:W0:-:S01] LDG.E R10, [R2.64] ;
  [B------:R-:W-:-:S04] MOV R11, R10 ;
  [B------:R-:W-:-:S01] STG.E [R2.64+0x4], R11 ;
  [B------:R-:W-:-:S01] EXIT ;
)";

// The repaired schedule: identical but for the B0 wait on the consumer.
const char *WaitedReadText = R"(
  [B------:R-:W-:-:S04] MOV R2, c[0x0][0x160] ;
  [B------:R-:W-:-:S04] MOV R3, c[0x0][0x164] ;
  [B------:R-:W0:-:S01] LDG.E R10, [R2.64] ;
  [B0-----:R-:W-:-:S04] MOV R11, R10 ;
  [B------:R-:W-:-:S01] STG.E [R2.64+0x4], R11 ;
  [B------:R-:W-:-:S01] EXIT ;
)";

struct StaleReadSetup {
  Gpu Device;
  KernelLaunch Launch;
  uint64_t Buf = 0;

  StaleReadSetup() {
    Buf = Device.globalMemory().allocate(8);
    Device.globalMemory().writeValue<uint32_t>(Buf, 0x77);
    Launch.WarpsPerBlock = 1;
    Launch.addParam64(Buf);
  }
  uint32_t stored() const {
    return Device.globalMemory().readValue<uint32_t>(Buf + 4);
  }
};

TEST(OracleTimedDivergenceTest, MissingWaitStaleOnlyInTimed) {
  sass::Program P = parseOrDie(StaleReadText, "stale");
  for (RunMode Mode : {RunMode::Timed, RunMode::Oracle}) {
    StaleReadSetup S;
    RunResult R = S.Device.run(P, S.Launch, Mode);
    SCOPED_TRACE(Mode == RunMode::Timed ? "timed" : "oracle");
    // The hazard is silent: no fault, no Valid=false — only wrong data.
    ASSERT_TRUE(R.Valid) << R.FaultReason;
    if (Mode == RunMode::Oracle)
      EXPECT_EQ(S.stored(), 0x77u);
    else
      EXPECT_NE(S.stored(), 0x77u);
  }
}

TEST(OracleTimedDivergenceTest, WaitedScheduleAgreesInBothModes) {
  sass::Program P = parseOrDie(WaitedReadText, "waited");
  for (RunMode Mode : {RunMode::Timed, RunMode::Oracle}) {
    StaleReadSetup S;
    RunResult R = S.Device.run(P, S.Launch, Mode);
    SCOPED_TRACE(Mode == RunMode::Timed ? "timed" : "oracle");
    ASSERT_TRUE(R.Valid) << R.FaultReason;
    EXPECT_EQ(S.stored(), 0x77u);
  }
}

TEST(OracleTimedDivergenceTest, StaleValueFlipsControlFlow) {
  // The stale read feeds a compare-and-branch: the fresh 0x77 clears
  // the 0x50 bar and takes the skip, the stale register does not, so
  // the hazard changes the executed path — timed IssuedInstrs must
  // differ between the waited and unwaited schedules by exactly the
  // two filler instructions the branch skips.
  auto BranchText = [](bool Wait) {
    std::string Consumer = Wait ? "  [B0-----:R-:W-:-:S04] MOV R11, R10 ;\n"
                                : "  [B------:R-:W-:-:S04] MOV R11, R10 ;\n";
    return std::string(R"(
  [B------:R-:W-:-:S04] MOV R2, c[0x0][0x160] ;
  [B------:R-:W-:-:S04] MOV R3, c[0x0][0x164] ;
  [B------:R-:W0:-:S01] LDG.E R10, [R2.64] ;
)") + Consumer +
           R"(  [B------:R-:W-:-:S04] MOV R12, 0x50 ;
  [B------:R-:W-:-:S05] ISETP.GE.AND P0, PT, R11, R12, PT ;
  [B------:R-:W-:-:S01] @P0 BRA `(.L_SKIP) ;
  [B------:R-:W-:-:S04] MOV R13, 0x1 ;
  [B------:R-:W-:-:S04] MOV R14, 0x2 ;
.L_SKIP:
  [B------:R-:W-:-:S01] STG.E [R2.64+0x4], R11 ;
  [B------:R-:W-:-:S01] EXIT ;
)";
  };

  uint64_t Issued[2] = {0, 0};
  for (bool Wait : {true, false}) {
    sass::Program P = parseOrDie(BranchText(Wait).c_str(), "branch");
    StaleReadSetup S;
    RunResult R = S.Device.run(P, S.Launch, RunMode::Timed);
    ASSERT_TRUE(R.Valid) << R.FaultReason;
    Issued[Wait ? 0 : 1] = R.Counters.IssuedInstrs;
    if (Wait)
      EXPECT_EQ(S.stored(), 0x77u); // Fresh value survives the skip.
    else
      EXPECT_NE(S.stored(), 0x77u);
  }
  // Unwaited: compare sees the stale register, branch falls through,
  // two extra instructions issue (per thread of the warp, but the
  // counter is per-warp-issue so the delta is exactly 2).
  EXPECT_EQ(Issued[1], Issued[0] + 2);

  // The oracle never takes the stale path: both schedules agree there.
  for (bool Wait : {true, false}) {
    sass::Program P = parseOrDie(BranchText(Wait).c_str(), "branch");
    StaleReadSetup S;
    RunResult R = S.Device.run(P, S.Launch, RunMode::Oracle);
    ASSERT_TRUE(R.Valid) << R.FaultReason;
    EXPECT_EQ(S.stored(), 0x77u);
  }
}

TEST(OracleTimedDivergenceTest, DivergencePreservedThroughBatchLanes) {
  // The stale-read divergence must survive the lockstep batch path
  // unchanged: every runBatch lane of the hazardous schedule must be
  // bit-identical to its serial private-snapshot run in both modes —
  // batching must neither mask nor invent the hazard.
  sass::Program Stale = parseOrDie(StaleReadText, "stale");
  sass::Program Waited = parseOrDie(WaitedReadText, "waited");
  std::vector<sass::Program> Progs = {Stale, Waited, Stale};
  std::vector<DecodedProgram> Images;
  for (const sass::Program &P : Progs)
    Images.emplace_back(P);

  StaleReadSetup S;
  for (RunMode Mode : {RunMode::Timed, RunMode::Oracle}) {
    std::vector<Gpu::BatchCandidate> Cands(Progs.size());
    for (size_t I = 0; I < Progs.size(); ++I)
      Cands[I] = Gpu::BatchCandidate{&Progs[I], &Images[I]};
    std::vector<RunResult> Batch =
        S.Device.runBatch(Cands, S.Launch, Mode, 1);
    ASSERT_EQ(Batch.size(), Progs.size());
    for (size_t I = 0; I < Progs.size(); ++I) {
      Gpu Ref(S.Device);
      RunResult Single = Ref.run(Progs[I], Images[I], S.Launch, Mode, 1);
      std::string Tag = std::string("lane ") + std::to_string(I) +
                        (Mode == RunMode::Timed ? " timed" : " oracle");
      expectSameRunResult(Batch[I], Single, Tag.c_str());
      ASSERT_TRUE(Batch[I].Valid);
    }
  }
}

//===----------------------------------------------------------------------===//
// Lockstep rollout collection
//===----------------------------------------------------------------------===//

/// Hides the lockstep surface so the runner falls back to slot-major.
struct PlainProxy : rl::Env {
  rl::Env &Inner;
  explicit PlainProxy(rl::Env &E) : Inner(E) {}
  std::vector<float> reset() override { return Inner.reset(); }
  rl::EnvStep step(unsigned A) override { return Inner.step(A); }
  std::vector<uint8_t> actionMask() override { return Inner.actionMask(); }
  unsigned actionCount() const override { return Inner.actionCount(); }
  size_t obsRows() const override { return Inner.obsRows(); }
  size_t obsFeatures() const override { return Inner.obsFeatures(); }
};

rl::TrajectoryBatch collectGameRollout(bool Lockstep, bool Masking,
                                       rl::TrajectoryBatch &Second) {
  Gpu Device;
  kernels::BuiltKernel K =
      buildTestKernel(Device, kernels::WorkloadKind::MmLeakyRelu);

  env::GameConfig GC;
  GC.Measure.WarmupIters = 1;
  GC.Measure.RepeatIters = 1;
  GC.Measure.NoiseStddev = 0.001;
  GC.RecordTrace = false;
  GC.PrivateDevice = true;
  GC.UseActionMasking = Masking;
  GC.SharedCache = std::make_shared<MeasurementCache>(GC.Measure.Seed);

  std::vector<std::unique_ptr<env::AssemblyGame>> Games;
  std::vector<std::unique_ptr<core::GameEnvAdapter>> Adapters;
  std::vector<std::unique_ptr<PlainProxy>> Proxies;
  std::vector<rl::Env *> Envs;
  for (int I = 0; I < 3; ++I) {
    Games.push_back(std::make_unique<env::AssemblyGame>(Device, K, GC));
    Adapters.push_back(std::make_unique<core::GameEnvAdapter>(*Games.back()));
    if (Lockstep) {
      Envs.push_back(Adapters.back().get());
    } else {
      Proxies.push_back(std::make_unique<PlainProxy>(*Adapters.back()));
      Envs.push_back(Proxies.back().get());
    }
  }

  rl::RolloutConfig RC;
  RC.Workers = 1;
  RC.Seed = 33;
  rl::RolloutRunner Runner(Envs, RC);

  rl::NetConfig NC;
  NC.Features = Envs[0]->obsFeatures();
  NC.Length = Envs[0]->obsRows();
  NC.Actions = Envs[0]->actionCount();
  NC.Channels = 4;
  NC.Hidden = 16;
  Rng NetRng(5);
  rl::ActorCritic Net(NC, NetRng);

  rl::TrajectoryBatch First = Runner.collect(Net, 8);
  Second = Runner.collect(Net, 8); // Slot state persists across calls.
  return First;
}

void expectSameBatch(const rl::TrajectoryBatch &A,
                     const rl::TrajectoryBatch &B, const char *Tag) {
  SCOPED_TRACE(Tag);
  ASSERT_EQ(A.Trajectories.size(), B.Trajectories.size());
  for (size_t S = 0; S < A.Trajectories.size(); ++S) {
    const rl::Trajectory &X = A.Trajectories[S];
    const rl::Trajectory &Y = B.Trajectories[S];
    SCOPED_TRACE(testing::Message() << "slot " << S);
    ASSERT_EQ(X.Steps.size(), Y.Steps.size());
    EXPECT_EQ(X.CompletedReturns, Y.CompletedReturns);
    EXPECT_EQ(X.BootstrapObs, Y.BootstrapObs);
    EXPECT_EQ(X.BootstrapMask, Y.BootstrapMask);
    for (size_t I = 0; I < X.Steps.size(); ++I) {
      const rl::Transition &T1 = X.Steps[I];
      const rl::Transition &T2 = Y.Steps[I];
      SCOPED_TRACE(testing::Message() << "step " << I);
      EXPECT_EQ(T1.Obs, T2.Obs);
      EXPECT_EQ(T1.Mask, T2.Mask);
      EXPECT_EQ(T1.Action, T2.Action);
      EXPECT_EQ(T1.LogProb, T2.LogProb);
      EXPECT_EQ(T1.Value, T2.Value);
      EXPECT_EQ(T1.Reward, T2.Reward);
      EXPECT_EQ(T1.Done, T2.Done);
    }
  }
}

TEST(LockstepRolloutTest, GameAccumulatesStageCounters) {
  // The per-stage counter families must reach the stats surface the
  // optimizer/service aggregate (AssemblyGame::simCounters feeds
  // OptimizeResult::RolloutCounters feeds ServiceStats::Counters).
  Gpu Device;
  kernels::BuiltKernel K =
      buildTestKernel(Device, kernels::WorkloadKind::MmLeakyRelu);
  env::GameConfig GC;
  GC.Measure.WarmupIters = 1;
  GC.Measure.RepeatIters = 1;
  GC.RecordTrace = false;
  env::AssemblyGame Game(Device, K, GC);
  Game.reset();
  Game.step(0);

  const PerfCounters &C = Game.simCounters();
  EXPECT_GT(C.SelectProbes, 0u);
  EXPECT_GT(C.ExecFixedLatOps + C.ExecVarLatOps, 0u);
  EXPECT_GT(C.WbEventsFired, 0u);
  EXPECT_GT(C.selectHitRate(), 0.0);
  EXPECT_LE(C.selectHitRate(), 1.0);
}

TEST(LockstepRolloutTest, MatchesSlotMajorCollection) {
  for (bool Masking : {true, false}) {
    rl::TrajectoryBatch L2, P2;
    rl::TrajectoryBatch L1 = collectGameRollout(/*Lockstep=*/true, Masking, L2);
    rl::TrajectoryBatch P1 =
        collectGameRollout(/*Lockstep=*/false, Masking, P2);
    expectSameBatch(L1, P1, Masking ? "masked round 1" : "unmasked round 1");
    expectSameBatch(L2, P2, Masking ? "masked round 2" : "unmasked round 2");
  }
}

} // namespace

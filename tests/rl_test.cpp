//===- tests/rl_test.cpp - autograd + PPO tests --------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "rl/ActorCritic.h"
#include "rl/Adam.h"
#include "rl/Ppo.h"
#include "rl/RolloutRunner.h"
#include "rl/Tensor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>

using namespace cuasmrl;
using namespace cuasmrl::rl;

//===----------------------------------------------------------------------===//
// Autograd: analytic gradients vs finite differences
//===----------------------------------------------------------------------===//

namespace {

/// Numerically checks d(loss)/d(param[idx]) for a scalar-loss builder.
template <typename BuilderT>
void checkGradient(Tensor &Param, size_t Idx, BuilderT Build,
                   float Tol = 2e-2) {
  Tensor Loss = Build();
  Param.zeroGrad();
  // Clear all grads by rebuilding; backward accumulates into Param.
  Loss.backward();
  float Analytic = Param.grad()[Idx];

  float Eps = 1e-3f;
  float Orig = Param.data()[Idx];
  Param.data()[Idx] = Orig + Eps;
  float Up = Build().item();
  Param.data()[Idx] = Orig - Eps;
  float Down = Build().item();
  Param.data()[Idx] = Orig;
  float Numeric = (Up - Down) / (2 * Eps);
  EXPECT_NEAR(Analytic, Numeric, Tol * std::max(1.0f, std::fabs(Numeric)))
      << "index " << Idx;
}

} // namespace

TEST(Autograd, AddSubMul) {
  Tensor A = Tensor::fromVector({1, 2, 3}, {3}, true);
  Tensor B = Tensor::fromVector({4, -5, 6}, {3}, true);
  Tensor L = sumT(mul(add(A, B), sub(A, B)));
  L.backward();
  // d/dA sum(A^2 - B^2) = 2A; d/dB = -2B.
  for (int I = 0; I < 3; ++I) {
    EXPECT_FLOAT_EQ(A.grad()[I], 2 * A.data()[I]);
    EXPECT_FLOAT_EQ(B.grad()[I], -2 * B.data()[I]);
  }
}

TEST(Autograd, ExpLogSoftmaxFiniteDiff) {
  Tensor X = Tensor::fromVector({0.3f, -1.2f, 2.0f, 0.0f}, {4}, true);
  for (size_t I = 0; I < 4; ++I)
    checkGradient(X, I, [&] { return gather(logSoftmax(X), 2); });
}

TEST(Autograd, ReluTanhClamp) {
  Tensor X = Tensor::fromVector({-1.0f, 0.5f, 2.0f}, {3}, true);
  for (size_t I = 0; I < 3; ++I) {
    checkGradient(X, I, [&] { return sumT(relu(X)); });
    checkGradient(X, I, [&] { return sumT(tanhT(X)); });
    checkGradient(X, I, [&] { return sumT(clampRange(X, -0.7f, 1.5f)); });
    checkGradient(X, I, [&] { return sumT(expT(X)); });
  }
}

TEST(Autograd, MinElemPicksBranch) {
  Tensor A = Tensor::fromVector({1.0f, 5.0f}, {2}, true);
  Tensor B = Tensor::fromVector({3.0f, 2.0f}, {2}, true);
  Tensor L = sumT(minElem(A, B));
  L.backward();
  EXPECT_FLOAT_EQ(A.grad()[0], 1.0f);
  EXPECT_FLOAT_EQ(A.grad()[1], 0.0f);
  EXPECT_FLOAT_EQ(B.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(B.grad()[1], 1.0f);
}

TEST(Autograd, LinearFiniteDiff) {
  Rng R(3);
  Tensor W = Tensor::fromVector({0.1f, -0.2f, 0.3f, 0.4f, 0.5f, -0.6f},
                                {2, 3}, true);
  Tensor X = Tensor::fromVector({1.0f, -1.0f, 0.5f}, {3}, true);
  Tensor B = Tensor::fromVector({0.1f, 0.2f}, {2}, true);
  auto Build = [&] { return sumT(tanhT(linear(W, X, B))); };
  for (size_t I = 0; I < W.size(); ++I)
    checkGradient(W, I, Build);
  for (size_t I = 0; I < X.size(); ++I)
    checkGradient(X, I, Build);
  for (size_t I = 0; I < B.size(); ++I)
    checkGradient(B, I, Build);
}

TEST(Autograd, Conv1dFiniteDiff) {
  Tensor X = Tensor::fromVector(
      {0.5f, -0.3f, 0.8f, 0.1f, -0.7f, 0.2f, 0.4f, -0.1f}, {2, 4}, true);
  Tensor W = Tensor::fromVector(
      {0.2f, -0.1f, 0.3f, 0.4f, 0.1f, -0.2f}, {1, 2, 3}, true);
  Tensor B = Tensor::fromVector({0.05f}, {1}, true);
  auto Build = [&] { return sumT(relu(conv1d(X, W, B))); };
  for (size_t I = 0; I < W.size(); ++I)
    checkGradient(W, I, Build);
  for (size_t I = 0; I < X.size(); ++I)
    checkGradient(X, I, Build);
}

TEST(Autograd, PoolingFiniteDiff) {
  Tensor X = Tensor::fromVector({1.0f, 3.0f, 2.0f, -1.0f, 0.0f, 4.0f},
                                {2, 3}, true);
  for (size_t I = 0; I < X.size(); ++I) {
    checkGradient(X, I, [&] { return sumT(meanPool(X)); });
    checkGradient(X, I, [&] { return sumT(maxPool(X)); });
  }
}

TEST(Autograd, MaskedFillBlocksGradient) {
  Tensor X = Tensor::fromVector({1.0f, 2.0f, 3.0f}, {3}, true);
  std::vector<uint8_t> Mask = {1, 0, 1};
  Tensor L = sumT(expT(logSoftmax(maskedFill(X, Mask))));
  L.backward();
  EXPECT_FLOAT_EQ(X.grad()[1], 0.0f);
}

TEST(Autograd, MaskedSoftmaxZeroesProbability) {
  Tensor X = Tensor::fromVector({1.0f, 10.0f, 1.0f}, {3}, true);
  std::vector<uint8_t> Mask = {1, 0, 1};
  Tensor P = expT(logSoftmax(maskedFill(X, Mask)));
  EXPECT_NEAR(P.data()[1], 0.0f, 1e-12);
  EXPECT_NEAR(P.data()[0] + P.data()[2], 1.0f, 1e-5);
}

TEST(Autograd, ReusedNodeAccumulatesOnce) {
  // Diamond graph: L = sum(X*X + X*X); dL/dX = 4X.
  Tensor X = Tensor::fromVector({2.0f}, {1}, true);
  Tensor Sq = mul(X, X);
  Tensor L = sumT(add(Sq, Sq));
  L.backward();
  EXPECT_FLOAT_EQ(X.grad()[0], 8.0f);
}

//===----------------------------------------------------------------------===//
// Optimizer
//===----------------------------------------------------------------------===//

TEST(AdamTest, MinimizesQuadratic) {
  Tensor X = Tensor::fromVector({5.0f, -3.0f}, {2}, true);
  Adam Opt({X}, 0.1);
  for (int Iter = 0; Iter < 300; ++Iter) {
    Opt.zeroGrad();
    Tensor L = sumT(mul(X, X));
    L.backward();
    Opt.step();
  }
  EXPECT_NEAR(X.data()[0], 0.0f, 0.05f);
  EXPECT_NEAR(X.data()[1], 0.0f, 0.05f);
}

TEST(AdamTest, GradClipBoundsNorm) {
  Tensor X = Tensor::fromVector({30.0f, 40.0f}, {2}, true);
  X.grad()[0] = 30.0f;
  X.grad()[1] = 40.0f;
  double Norm = clipGradNorm({X}, 0.5);
  EXPECT_NEAR(Norm, 50.0, 1e-6);
  double After = std::hypot(X.grad()[0], X.grad()[1]);
  EXPECT_NEAR(After, 0.5, 1e-5);
}

//===----------------------------------------------------------------------===//
// Network
//===----------------------------------------------------------------------===//

TEST(ActorCriticTest, ForwardShapes) {
  Rng R(1);
  NetConfig C;
  C.Features = 7;
  C.Length = 12;
  C.Actions = 6;
  ActorCritic Net(C, R);
  std::vector<float> Obs(7 * 12, 0.5f);
  std::vector<uint8_t> Mask(6, 1);
  Mask[3] = 0;
  ActorCritic::Output Out = Net.forward(Obs, Mask);
  EXPECT_EQ(Out.MaskedLogits.size(), 6u);
  EXPECT_EQ(Out.Value.size(), 1u);
  EXPECT_LT(Out.MaskedLogits.data()[3], -1e8f);
}

TEST(ActorCriticTest, OrthogonalInitScales) {
  Rng R(2);
  NetConfig C;
  C.Features = 5;
  C.Length = 8;
  C.Actions = 4;
  ActorCritic Net(C, R);
  // Policy head uses gain 0.01: logits start tiny (near-uniform policy).
  std::vector<float> Obs(5 * 8, 0.3f);
  std::vector<uint8_t> Mask(4, 1);
  ActorCritic::Output Out = Net.forward(Obs, Mask);
  for (float L : Out.MaskedLogits.data())
    EXPECT_LT(std::fabs(L), 0.5f);
}

TEST(ActorCriticTest, CheckpointRoundTrip) {
  Rng R(3);
  NetConfig C;
  C.Features = 5;
  C.Length = 8;
  C.Actions = 4;
  ActorCritic Net(C, R);
  std::ostringstream OS;
  Net.save(OS);

  Rng R2(99);
  ActorCritic Other(C, R2);
  std::istringstream IS(OS.str());
  ASSERT_TRUE(Other.load(IS));

  std::vector<float> Obs(5 * 8, 0.3f);
  std::vector<uint8_t> Mask(4, 1);
  EXPECT_EQ(Net.forward(Obs, Mask).MaskedLogits.data(),
            Other.forward(Obs, Mask).MaskedLogits.data());
}

TEST(ActorCriticTest, LoadRejectsGarbage) {
  Rng R(3);
  NetConfig C;
  C.Features = 5;
  C.Length = 8;
  C.Actions = 4;
  ActorCritic Net(C, R);
  std::istringstream IS("not a checkpoint");
  EXPECT_FALSE(Net.load(IS));
}

//===----------------------------------------------------------------------===//
// PPO on toy environments
//===----------------------------------------------------------------------===//

namespace {

/// Contextual bandit chain: action `Best` yields +1, others 0; the
/// episode lasts 4 steps; one action is permanently masked.
class BanditEnv : public Env {
public:
  explicit BanditEnv(unsigned Best = 2) : Best(Best) {}

  std::vector<float> reset() override {
    Steps = 0;
    return std::vector<float>(obsRows() * obsFeatures(), 0.25f);
  }
  EnvStep step(unsigned Action) override {
    EnvStep R;
    R.Reward = Action == Best ? 1.0 : 0.0;
    ++Steps;
    R.Done = Steps >= 4;
    R.Obs = std::vector<float>(obsRows() * obsFeatures(), 0.25f);
    return R;
  }
  std::vector<uint8_t> actionMask() override {
    std::vector<uint8_t> M(actionCount(), 1);
    M[0] = 0; // Permanently illegal.
    return M;
  }
  unsigned actionCount() const override { return 5; }
  size_t obsRows() const override { return 6; }
  size_t obsFeatures() const override { return 4; }

private:
  unsigned Best;
  unsigned Steps = 0;
};

} // namespace

TEST(PpoTest, LearnsBanditOptimum) {
  BanditEnv E1, E2;
  PpoConfig C;
  C.TotalSteps = 2048;
  C.RolloutLen = 32;
  C.Seed = 7;
  C.Channels = 4;
  C.Hidden = 16;
  // The paper's default lr (2.5e-4) is sized for ~15k-step runs; the
  // toy test budget warrants a faster rate.
  C.Lr = 1e-3;
  PpoTrainer Trainer({&E1, &E2}, C);
  std::vector<UpdateStats> Series = Trainer.train();
  ASSERT_FALSE(Series.empty());
  // Optimal return is 4.0 (reward 1 for 4 steps).
  EXPECT_GT(Series.back().MeanEpisodicReturn, 3.0);
  // The policy must never pick the masked action in greedy play.
  BanditEnv Probe;
  std::vector<unsigned> Actions = Trainer.playGreedy(Probe, 4);
  for (unsigned A : Actions)
    EXPECT_NE(A, 0u);
}

TEST(PpoTest, EntropyDecreasesAsPolicyConverges) {
  BanditEnv E1;
  PpoConfig C;
  C.TotalSteps = 1024;
  C.RolloutLen = 32;
  C.Seed = 3;
  C.Channels = 4;
  C.Hidden = 16;
  C.Lr = 1e-3;
  PpoTrainer Trainer({&E1}, C);
  std::vector<UpdateStats> Series = Trainer.train();
  ASSERT_GE(Series.size(), 4u);
  // Figure 12: policy entropy decreases over training.
  EXPECT_LT(Series.back().Entropy, Series.front().Entropy);
}

TEST(PpoTest, ApproxKlStaysFinite) {
  BanditEnv E1;
  PpoConfig C;
  C.TotalSteps = 256;
  C.RolloutLen = 32;
  C.Seed = 5;
  C.Channels = 4;
  C.Hidden = 16;
  PpoTrainer Trainer({&E1}, C);
  for (UpdateStats S : Trainer.train()) {
    EXPECT_TRUE(std::isfinite(S.ApproxKl));
    EXPECT_TRUE(std::isfinite(S.PolicyLoss));
    EXPECT_TRUE(std::isfinite(S.ValueLoss));
    EXPECT_GE(S.ClipFraction, 0.0);
    EXPECT_LE(S.ClipFraction, 1.0);
  }
}

TEST(PpoTest, DeterministicForSeed) {
  auto Run = [](uint64_t Seed) {
    BanditEnv E;
    PpoConfig C;
    C.TotalSteps = 128;
    C.RolloutLen = 32;
    C.Seed = Seed;
    C.Channels = 4;
    C.Hidden = 16;
    PpoTrainer T({&E}, C);
    return T.train().back().PolicyLoss;
  };
  EXPECT_EQ(Run(11), Run(11));
  EXPECT_NE(Run(11), Run(12));
}

TEST(PpoTest, CriticLearnsOptimalReturn) {
  // Once the policy converges on the bandit, the critic's prediction at
  // the initial state must approach the discounted optimal return
  // (1 + g + g^2 + g^3 with g = 0.99: ~3.94).
  BanditEnv E(1);
  PpoConfig C;
  C.TotalSteps = 3072;
  C.RolloutLen = 32;
  C.Seed = 9;
  C.Channels = 4;
  C.Hidden = 16;
  C.Lr = 1e-3;
  PpoTrainer Trainer({&E}, C);
  Trainer.train();
  BanditEnv Probe;
  std::vector<float> Obs = Probe.reset();
  std::vector<uint8_t> Mask = Probe.actionMask();
  float V = Trainer.net().forward(Obs, Mask).Value.item();
  EXPECT_GT(V, 2.0f);
  EXPECT_LT(V, 5.5f);
}

//===----------------------------------------------------------------------===//
// RolloutRunner: parallel collection determinism
//===----------------------------------------------------------------------===//

namespace {

PpoConfig rolloutTestConfig(unsigned Workers) {
  PpoConfig C;
  C.TotalSteps = 256;
  C.RolloutLen = 32;
  C.Seed = 21;
  C.Channels = 4;
  C.Hidden = 16;
  C.Workers = Workers;
  return C;
}

} // namespace

TEST(RolloutTest, WorkerCountDoesNotChangeTrainingStats) {
  // The worker pool is a wall-clock knob only: per-slot Rng streams
  // make collection embarrassingly deterministic, so every statistic
  // of a full training run must be bit-identical at any worker count.
  auto Run = [](unsigned Workers) {
    BanditEnv E1, E2, E3, E4;
    PpoTrainer T({&E1, &E2, &E3, &E4}, rolloutTestConfig(Workers));
    return T.train();
  };
  std::vector<UpdateStats> Serial = Run(1);
  std::vector<UpdateStats> Threaded = Run(4);
  ASSERT_EQ(Serial.size(), Threaded.size());
  for (size_t I = 0; I < Serial.size(); ++I) {
    EXPECT_EQ(Serial[I].StepsDone, Threaded[I].StepsDone);
    EXPECT_EQ(Serial[I].MeanEpisodicReturn, Threaded[I].MeanEpisodicReturn);
    EXPECT_EQ(Serial[I].PolicyLoss, Threaded[I].PolicyLoss);
    EXPECT_EQ(Serial[I].ValueLoss, Threaded[I].ValueLoss);
    EXPECT_EQ(Serial[I].Entropy, Threaded[I].Entropy);
    EXPECT_EQ(Serial[I].ApproxKl, Threaded[I].ApproxKl);
    EXPECT_EQ(Serial[I].ClipFraction, Threaded[I].ClipFraction);
  }
}

TEST(RolloutTest, SlotTrajectoryInvariantToEnvCount) {
  // Slot i's action-sampling stream depends only on (seed, i), so the
  // trajectory slot 0 produces in a 1-env run equals slot 0 of a 4-env
  // run under the same frozen policy: per-slot reductions (reward sums,
  // action sequences) are batching-invariant.
  NetConfig NC;
  BanditEnv Probe;
  NC.Features = Probe.obsFeatures();
  NC.Length = Probe.obsRows();
  NC.Actions = Probe.actionCount();
  NC.Channels = 4;
  NC.Hidden = 16;

  auto Collect = [&NC](size_t NumEnvs, unsigned Workers) {
    std::vector<std::unique_ptr<Env>> Envs;
    for (size_t I = 0; I < NumEnvs; ++I)
      Envs.push_back(std::make_unique<BanditEnv>());
    RolloutConfig RC;
    RC.Workers = Workers;
    RC.Seed = 33;
    RolloutRunner Runner(std::move(Envs), RC);
    Rng NetRng(5);
    ActorCritic Net(NC, NetRng);
    return Runner.collect(Net, 32);
  };

  TrajectoryBatch One = Collect(1, 1);
  TrajectoryBatch Four = Collect(4, 4);
  ASSERT_EQ(One.Trajectories.size(), 1u);
  ASSERT_EQ(Four.Trajectories.size(), 4u);

  const Trajectory &A = One.Trajectories[0];
  const Trajectory &B = Four.Trajectories[0];
  ASSERT_EQ(A.Steps.size(), B.Steps.size());
  for (size_t I = 0; I < A.Steps.size(); ++I) {
    EXPECT_EQ(A.Steps[I].Action, B.Steps[I].Action);
    EXPECT_EQ(A.Steps[I].Reward, B.Steps[I].Reward);
    EXPECT_EQ(A.Steps[I].LogProb, B.Steps[I].LogProb);
  }
  EXPECT_EQ(A.rewardSum(), B.rewardSum());
  EXPECT_EQ(A.CompletedReturns, B.CompletedReturns);
  // Sibling slots draw from distinct streams (they must explore
  // independently, not mirror slot 0).
  bool AnySlotDiffers = false;
  for (size_t S = 1; S < 4 && !AnySlotDiffers; ++S)
    for (size_t I = 0; I < Four.Trajectories[S].Steps.size(); ++I)
      if (Four.Trajectories[S].Steps[I].Action != A.Steps[I].Action) {
        AnySlotDiffers = true;
        break;
      }
  EXPECT_TRUE(AnySlotDiffers);
}

TEST(RolloutTest, EpisodeStatePersistsAcrossCollectCalls) {
  // BanditEnv episodes last 4 steps; a 32-step segment completes 8.
  std::vector<std::unique_ptr<Env>> Envs;
  Envs.push_back(std::make_unique<BanditEnv>());
  RolloutConfig RC;
  RC.Seed = 3;
  RolloutRunner Runner(std::move(Envs), RC);
  NetConfig NC;
  BanditEnv Probe;
  NC.Features = Probe.obsFeatures();
  NC.Length = Probe.obsRows();
  NC.Actions = Probe.actionCount();
  NC.Channels = 4;
  NC.Hidden = 16;
  Rng NetRng(5);
  ActorCritic Net(NC, NetRng);

  TrajectoryBatch First = Runner.collect(Net, 30);
  TrajectoryBatch Second = Runner.collect(Net, 30);
  // 60 steps = 15 full episodes; the 8th episode straddles the calls.
  EXPECT_EQ(First.Trajectories[0].CompletedReturns.size(), 7u);
  EXPECT_EQ(Second.Trajectories[0].CompletedReturns.size(), 8u);
  EXPECT_EQ(First.totalSteps(), 30u);
}

//===- tests/net_test.cpp - wire format / RPC server / claims tests ------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The network front door's contracts:
///
///   - Wire: exact round-trips (IEEE-754 doubles included) and strict
///     rejection of every malformed-frame shape — truncation, bad
///     magic, version skew, oversized lengths, trailing garbage.
///   - Server: loopback responses bit-identical to in-process
///     submission, per-connection quotas and rate limits answered as
///     ResourceExhausted, malformed traffic dropping the connection
///     (never the server), and clean Rejected answers while draining.
///   - Cross-process claims: two services over one DeployCache
///     directory run exactly one optimize job per key.
///
//===----------------------------------------------------------------------===//

#include "net/Client.h"
#include "net/Server.h"
#include "net/Wire.h"
#include "serve/OptimizationService.h"
#include "support/Clock.h"
#include "support/FileLock.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace cuasmrl;
using namespace cuasmrl::kernels;
using namespace cuasmrl::net;
using namespace cuasmrl::serve;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

core::OptimizeConfig tinyConfig() {
  core::OptimizeConfig C;
  C.Ppo.TotalSteps = 32;
  C.Ppo.RolloutLen = 16;
  C.Ppo.MiniBatches = 2;
  C.Ppo.Epochs = 2;
  C.Ppo.Channels = 4;
  C.Ppo.Hidden = 16;
  C.Game.EpisodeLength = 8;
  C.Game.Measure.WarmupIters = 1;
  C.Game.Measure.RepeatIters = 1;
  C.Game.Measure.NoiseStddev = 0.001;
  C.AutotuneMeasure.WarmupIters = 1;
  C.AutotuneMeasure.RepeatIters = 1;
  C.AutotuneMeasure.NoiseStddev = 0.0;
  C.ProbTestRounds = 1;
  return C;
}

ServiceConfig tinyService(unsigned Workers, std::string DeployDir = "") {
  ServiceConfig C;
  C.Workers = Workers;
  C.Seed = 11;
  C.DeployDir = std::move(DeployDir);
  C.Defaults = tinyConfig();
  return C;
}

OptimizeRequest request(WorkloadKind Kind, unsigned Rows = 0) {
  OptimizeRequest R;
  R.Kind = Kind;
  R.Shape = testShape(Kind);
  if (Rows != 0)
    R.Shape.Rows = Rows;
  return R;
}

std::string freshDir(const std::string &Name) {
  std::string Dir =
      (std::filesystem::temp_directory_path() / Name).string();
  std::filesystem::remove_all(Dir);
  return Dir;
}

/// Bit-identity of everything deterministic on a response. WallMs is
/// deliberately excluded: it measures the server's wall clock.
void expectWireIdentical(const WireResponse &A, const WireResponse &B) {
  EXPECT_EQ(A.St, B.St) << statusName(A.St) << " vs " << statusName(B.St);
  EXPECT_EQ(A.Key, B.Key);
  EXPECT_EQ(A.HasBinary, B.HasBinary);
  EXPECT_EQ(A.Binary.serialize(), B.Binary.serialize());
  EXPECT_EQ(A.Persisted, B.Persisted);
  EXPECT_EQ(A.DegradedFrom, B.DegradedFrom);
  EXPECT_EQ(A.WarmStartedFrom, B.WarmStartedFrom);
  EXPECT_EQ(A.Error, B.Error);
  EXPECT_EQ(A.AutotuneValid, B.AutotuneValid);
  EXPECT_EQ(A.Verified, B.Verified);
  EXPECT_EQ(A.TritonUs, B.TritonUs);       // Exact double bits.
  EXPECT_EQ(A.OptimizedUs, B.OptimizedUs); // Exact double bits.
  EXPECT_EQ(A.TrainingUpdates, B.TrainingUpdates);
  EXPECT_EQ(A.WarmStartTensors, B.WarmStartTensors);
}

/// A raw loopback TCP connection for byte-level server poking.
class RawConn {
public:
  explicit RawConn(uint16_t Port) {
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(Port);
    ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                  sizeof(Addr)) != 0) {
      ::close(Fd);
      Fd = -1;
      return;
    }
    timeval Tv{5, 0};
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
  }
  ~RawConn() { close(); }
  void close() {
    if (Fd >= 0) {
      ::close(Fd);
      Fd = -1;
    }
  }
  bool ok() const { return Fd >= 0; }

  bool sendBytes(const std::vector<uint8_t> &Data) {
    size_t Off = 0;
    while (Off < Data.size()) {
      ssize_t N =
          ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
      if (N <= 0)
        return false;
      Off += static_cast<size_t>(N);
    }
    return true;
  }

  /// True when the peer closed the stream (recv sees EOF) within the
  /// socket timeout.
  bool peerClosed() {
    uint8_t B;
    while (true) {
      ssize_t N = ::recv(Fd, &B, 1, 0);
      if (N == 0)
        return true;
      if (N < 0)
        return false; // Timeout: the server kept the connection.
    }
  }

  /// Reads one complete response frame.
  bool recvResponse(uint64_t &Id, WireResponse &R) {
    uint8_t Header[kHeaderSize];
    if (!recvExact(Header, sizeof(Header)))
      return false;
    Expected<FrameHeader> H = decodeHeader(Header, sizeof(Header));
    if (!H || H->Type != FrameType::Response)
      return false;
    std::vector<uint8_t> Payload(H->PayloadLen);
    if (H->PayloadLen > 0 && !recvExact(Payload.data(), Payload.size()))
      return false;
    Expected<WireResponse> Resp =
        decodeResponsePayload(Payload.data(), Payload.size());
    if (!Resp)
      return false;
    Id = H->RequestId;
    R = Resp.takeValue();
    return true;
  }

private:
  bool recvExact(uint8_t *Out, size_t Size) {
    size_t Off = 0;
    while (Off < Size) {
      ssize_t N = ::recv(Fd, Out + Off, Size - Off, 0);
      if (N <= 0)
        return false;
      Off += static_cast<size_t>(N);
    }
    return true;
  }

  int Fd = -1;
};

/// Polls \p Pred for up to \p Budget; the IO thread needs real time to
/// observe closes.
bool eventually(const std::function<bool()> &Pred,
                std::chrono::milliseconds Budget =
                    std::chrono::milliseconds(5000)) {
  const auto Deadline = std::chrono::steady_clock::now() + Budget;
  while (std::chrono::steady_clock::now() < Deadline) {
    if (Pred())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return Pred();
}

} // namespace

//===----------------------------------------------------------------------===//
// Wire: headers
//===----------------------------------------------------------------------===//

TEST(WireTest, HeaderRoundTripAndRejections) {
  FrameHeader H;
  H.Type = FrameType::Response;
  H.RequestId = 0x1122334455667788ULL;
  H.PayloadLen = 4096;
  std::vector<uint8_t> Buf;
  encodeHeader(Buf, H);
  ASSERT_EQ(Buf.size(), kHeaderSize);

  Expected<FrameHeader> D = decodeHeader(Buf.data(), Buf.size());
  ASSERT_TRUE(static_cast<bool>(D));
  EXPECT_EQ(D->Version, kVersion);
  EXPECT_EQ(D->Type, FrameType::Response);
  EXPECT_EQ(D->RequestId, H.RequestId);
  EXPECT_EQ(D->PayloadLen, H.PayloadLen);

  // Truncated header.
  EXPECT_FALSE(static_cast<bool>(decodeHeader(Buf.data(), kHeaderSize - 1)));
  // Bad magic.
  std::vector<uint8_t> Bad = Buf;
  Bad[0] ^= 0xFF;
  EXPECT_FALSE(static_cast<bool>(decodeHeader(Bad.data(), Bad.size())));
  // Version skew.
  Bad = Buf;
  Bad[4] = 99;
  EXPECT_FALSE(static_cast<bool>(decodeHeader(Bad.data(), Bad.size())));
  // Unknown frame type.
  Bad = Buf;
  Bad[6] = 7;
  EXPECT_FALSE(static_cast<bool>(decodeHeader(Bad.data(), Bad.size())));
  // Oversized length prefix: a hostile 4GiB claim must not survive the
  // decoder (it would otherwise drive the allocation).
  Bad = Buf;
  Bad[16] = Bad[17] = Bad[18] = Bad[19] = 0xFF;
  EXPECT_FALSE(static_cast<bool>(decodeHeader(Bad.data(), Bad.size())));
  // A tighter per-server cap applies too.
  EXPECT_FALSE(
      static_cast<bool>(decodeHeader(Buf.data(), Buf.size(), 1024)));
}

//===----------------------------------------------------------------------===//
// Wire: request payloads
//===----------------------------------------------------------------------===//

TEST(WireTest, RequestRoundTripsExactly) {
  OptimizeRequest R;
  R.Kind = WorkloadKind::RmsNorm;
  R.Shape = testShape(WorkloadKind::RmsNorm);
  R.Shape.Rows = 4096;
  R.GpuType = "H100-SIM";
  R.Priority = -3; // Negative priorities survive the u32 transit.
  R.Timeout = std::chrono::milliseconds(2500);
  R.AllowDegraded = false;
  core::OptimizeConfig Cfg = tinyConfig();
  Cfg.Ppo.Lr = 0.1; // Not exactly representable: bit-pattern transit.
  Cfg.Ppo.Gamma = 1e-300;
  Cfg.Game.InvalidPenalty = -0.3333333333333333;
  Cfg.Game.Table = analysis::StallTable::empty();
  Cfg.Game.Table.record("LDG.E", 24);
  Cfg.Game.Table.record("FMUL", 4);
  R.Config = Cfg;

  std::vector<uint8_t> Frame = encodeRequestFrame(R, 42);
  Expected<FrameHeader> H = decodeHeader(Frame.data(), Frame.size());
  ASSERT_TRUE(static_cast<bool>(H));
  EXPECT_EQ(H->Type, FrameType::Request);
  EXPECT_EQ(H->RequestId, 42u);
  ASSERT_EQ(Frame.size(), kHeaderSize + H->PayloadLen);

  Expected<OptimizeRequest> D =
      decodeRequestPayload(Frame.data() + kHeaderSize, H->PayloadLen);
  ASSERT_TRUE(static_cast<bool>(D)) << D.error().message();
  EXPECT_EQ(D->Kind, R.Kind);
  EXPECT_EQ(D->Shape.Rows, 4096u);
  EXPECT_EQ(D->GpuType, "H100-SIM");
  EXPECT_EQ(D->Priority, -3);
  EXPECT_EQ(D->Timeout.count(), 2500);
  EXPECT_FALSE(D->AllowDegraded);
  ASSERT_TRUE(D->Config.has_value());
  EXPECT_EQ(D->Config->Ppo.Lr, 0.1);
  EXPECT_EQ(D->Config->Ppo.Gamma, 1e-300);
  EXPECT_EQ(D->Config->Game.InvalidPenalty, -0.3333333333333333);
  EXPECT_EQ(D->Config->Game.Table.entries().size(), 2u);
  EXPECT_EQ(D->Config->Game.Table.entries().at("LDG.E"), 24u);

  // Encoding is a pure function of the value: re-encoding the decode
  // reproduces the exact bytes (the cross-process determinism anchor).
  EXPECT_EQ(encodeRequestFrame(*D, 42), Frame);

  // A config-less request round-trips too.
  R.Config.reset();
  Frame = encodeRequestFrame(R, 7);
  H = decodeHeader(Frame.data(), Frame.size());
  ASSERT_TRUE(static_cast<bool>(H));
  D = decodeRequestPayload(Frame.data() + kHeaderSize, H->PayloadLen);
  ASSERT_TRUE(static_cast<bool>(D));
  EXPECT_FALSE(D->Config.has_value());
  EXPECT_EQ(encodeRequestFrame(*D, 7), Frame);
}

TEST(WireTest, ResponseRoundTripsExactly) {
  WireResponse R;
  R.St = WireStatus::Optimized;
  R.Key = "A100-SIM/softmax/r64c64";
  R.HasBinary = true;
  cubin::Section &S = R.Binary.addSection(".text");
  S.Data = {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x42};
  R.Binary.addSection(".info").Data = {1, 2, 3};
  R.Persisted = true;
  R.WarmStartedFrom = "A100-SIM/softmax/r32c64";
  R.WallMs = 123.456;
  R.AutotuneValid = true;
  R.Verified = true;
  R.TritonUs = 17.25;
  R.OptimizedUs = 13.125;
  R.TrainingUpdates = 9;
  R.WarmStartTensors = 4;

  std::vector<uint8_t> Frame = encodeResponseFrame(R, 99);
  Expected<FrameHeader> H = decodeHeader(Frame.data(), Frame.size());
  ASSERT_TRUE(static_cast<bool>(H));
  EXPECT_EQ(H->Type, FrameType::Response);
  Expected<WireResponse> D =
      decodeResponsePayload(Frame.data() + kHeaderSize, H->PayloadLen);
  ASSERT_TRUE(static_cast<bool>(D)) << D.error().message();
  expectWireIdentical(*D, R);
  EXPECT_EQ(D->WallMs, 123.456);
  EXPECT_EQ(encodeResponseFrame(*D, 99), Frame);

  // Binary-less (a rejection) round-trips.
  WireResponse E;
  E.St = WireStatus::ResourceExhausted;
  E.Error = "rate limit exceeded";
  Frame = encodeResponseFrame(E, 1);
  H = decodeHeader(Frame.data(), Frame.size());
  ASSERT_TRUE(static_cast<bool>(H));
  D = decodeResponsePayload(Frame.data() + kHeaderSize, H->PayloadLen);
  ASSERT_TRUE(static_cast<bool>(D));
  expectWireIdentical(*D, E);
}

//===----------------------------------------------------------------------===//
// Wire: fuzz robustness
//===----------------------------------------------------------------------===//

TEST(WireTest, EveryTruncationOfAValidPayloadIsRejected) {
  OptimizeRequest R = request(WorkloadKind::Softmax);
  R.Config = tinyConfig();
  std::vector<uint8_t> Frame = encodeRequestFrame(R, 1);
  const uint8_t *Payload = Frame.data() + kHeaderSize;
  const size_t Len = Frame.size() - kHeaderSize;
  // Strict decoding means no prefix of the payload parses: every field
  // is consumed in order and atEnd() demands exact consumption.
  for (size_t Cut = 0; Cut < Len; ++Cut)
    EXPECT_FALSE(static_cast<bool>(decodeRequestPayload(Payload, Cut)))
        << "prefix of " << Cut << " bytes parsed";
  ASSERT_TRUE(static_cast<bool>(decodeRequestPayload(Payload, Len)));

  WireResponse W;
  W.St = WireStatus::Optimized;
  W.Key = "k";
  W.HasBinary = true;
  W.Binary.addSection(".text").Data = {1, 2, 3, 4};
  std::vector<uint8_t> RFrame = encodeResponseFrame(W, 2);
  const uint8_t *RPayload = RFrame.data() + kHeaderSize;
  const size_t RLen = RFrame.size() - kHeaderSize;
  for (size_t Cut = 0; Cut < RLen; ++Cut)
    EXPECT_FALSE(static_cast<bool>(decodeResponsePayload(RPayload, Cut)));
  ASSERT_TRUE(static_cast<bool>(decodeResponsePayload(RPayload, RLen)));
}

TEST(WireTest, CorruptPayloadBytesAreRejectedNotCrashes) {
  OptimizeRequest R = request(WorkloadKind::Softmax);
  std::vector<uint8_t> Frame = encodeRequestFrame(R, 1);
  std::vector<uint8_t> Payload(Frame.begin() + kHeaderSize, Frame.end());

  // Trailing garbage.
  std::vector<uint8_t> Long = Payload;
  Long.push_back(0);
  EXPECT_FALSE(
      static_cast<bool>(decodeRequestPayload(Long.data(), Long.size())));

  // Out-of-range workload kind.
  std::vector<uint8_t> BadKind = Payload;
  BadKind[0] = 0xFF;
  EXPECT_FALSE(static_cast<bool>(
      decodeRequestPayload(BadKind.data(), BadKind.size())));

  // A non-0/1 boolean byte (AllowDegraded is the last-but-one field).
  std::vector<uint8_t> BadBool = Payload;
  BadBool[BadBool.size() - 2] = 2;
  EXPECT_FALSE(static_cast<bool>(
      decodeRequestPayload(BadBool.data(), BadBool.size())));

  // Out-of-range response status.
  WireResponse W;
  W.St = WireStatus::Failed;
  std::vector<uint8_t> RFrame = encodeResponseFrame(W, 1);
  std::vector<uint8_t> RPayload(RFrame.begin() + kHeaderSize, RFrame.end());
  RPayload[0] = 0x77;
  EXPECT_FALSE(static_cast<bool>(
      decodeResponsePayload(RPayload.data(), RPayload.size())));

  // An embedded cubin that does not deserialize.
  WireResponse B;
  B.St = WireStatus::Optimized;
  B.HasBinary = true;
  B.Binary.addSection(".text").Data = {9, 9, 9, 9};
  std::vector<uint8_t> BFrame = encodeResponseFrame(B, 1);
  std::vector<uint8_t> BPayload(BFrame.begin() + kHeaderSize, BFrame.end());
  // The cubin blob starts after status(4) + key-len(4) + has-binary(1)
  // + blob-len(4); smash its magic.
  BPayload[13] ^= 0xFF;
  EXPECT_FALSE(static_cast<bool>(
      decodeResponsePayload(BPayload.data(), BPayload.size())));

  // Deterministic pseudo-random garbage: decoding must fail cleanly
  // (no crash, no throw) for any byte soup.
  uint64_t X = 0x9E3779B97F4A7C15ULL;
  for (int Round = 0; Round < 200; ++Round) {
    std::vector<uint8_t> Junk((X % 256) + 1);
    for (uint8_t &ByteV : Junk) {
      X ^= X << 13;
      X ^= X >> 7;
      X ^= X << 17;
      ByteV = static_cast<uint8_t>(X);
    }
    (void)decodeRequestPayload(Junk.data(), Junk.size());
    (void)decodeResponsePayload(Junk.data(), Junk.size());
  }
}

//===----------------------------------------------------------------------===//
// Server: loopback vs in-process determinism
//===----------------------------------------------------------------------===//

TEST(NetServerTest, LoopbackStreamMatchesInProcessSubmission) {
  // >= 64 mixed requests over loopback must resolve bit-identically to
  // the same stream submitted in-process — for any worker count.
  gpusim::Gpu Device;
  std::vector<OptimizeRequest> Stream;
  for (unsigned I = 0; I < 64; ++I) {
    // Four distinct keys, cycled: cold optimizations up front, then
    // deterministic deploy-cache hits.
    switch (I % 4) {
    case 0:
      Stream.push_back(request(WorkloadKind::Softmax, 64));
      break;
    case 1:
      Stream.push_back(request(WorkloadKind::Softmax, 96));
      break;
    case 2:
      Stream.push_back(request(WorkloadKind::RmsNorm, 64));
      break;
    default:
      Stream.push_back(request(WorkloadKind::RmsNorm, 128));
      break;
    }
  }

  for (unsigned Workers : {1u, 2u}) {
    // In-process baseline.
    std::string DirA = freshDir("cuasmrl_net_inproc_" +
                                std::to_string(Workers));
    std::vector<WireResponse> InProc;
    {
      OptimizationService Service(Device, tinyService(Workers, DirA));
      for (const OptimizeRequest &R : Stream) {
        Ticket T = Service.submit(R);
        ASSERT_TRUE(T.valid());
        InProc.push_back(summarizeResponse(*T.Response.get()));
      }
      Service.shutdown();
    }

    // The same stream through the network front door.
    std::string DirB =
        freshDir("cuasmrl_net_loopback_" + std::to_string(Workers));
    std::vector<WireResponse> OverNet;
    {
      OptimizationService Service(Device, tinyService(Workers, DirB));
      Server Srv(Service, ServerConfig{});
      Expected<uint16_t> Port = Srv.start();
      ASSERT_TRUE(static_cast<bool>(Port)) << Port.error().message();
      ClientConfig CC;
      CC.Port = *Port;
      Client Cli(CC);
      for (const OptimizeRequest &R : Stream) {
        Expected<WireResponse> Resp = Cli.call(R);
        ASSERT_TRUE(static_cast<bool>(Resp)) << Resp.error().message();
        OverNet.push_back(Resp.takeValue());
      }
      NetStats NS = Srv.stats();
      EXPECT_EQ(NS.FramesReceived, 64u);
      EXPECT_EQ(NS.ResponsesSent, 64u);
      EXPECT_EQ(NS.RequestsSubmitted, 64u);
      EXPECT_EQ(NS.DecodeErrors, 0u);
      Srv.stop();
      Service.shutdown();
    }

    ASSERT_EQ(InProc.size(), OverNet.size());
    for (size_t I = 0; I < InProc.size(); ++I)
      expectWireIdentical(OverNet[I], InProc[I]);
    // The stream really exercised both paths.
    EXPECT_EQ(InProc[0].St, WireStatus::Optimized);
    EXPECT_EQ(InProc[4].St, WireStatus::LookupHit);
    std::filesystem::remove_all(DirA);
    std::filesystem::remove_all(DirB);
  }
}

TEST(NetServerTest, PipelinedResponsesMatchByRequestId) {
  gpusim::Gpu Device;
  OptimizationService Service(Device, tinyService(/*Workers=*/2));
  Server Srv(Service, ServerConfig{});
  Expected<uint16_t> Port = Srv.start();
  ASSERT_TRUE(static_cast<bool>(Port));

  ClientConfig CC;
  CC.Port = *Port;
  Client Cli(CC);
  // Two distinct keys, interleaved in flight; responses may complete
  // in any order and must match back by id.
  std::vector<uint64_t> Ids;
  std::vector<std::string> WantKey;
  for (unsigned I = 0; I < 8; ++I) {
    OptimizeRequest R = request(WorkloadKind::Softmax, I % 2 ? 64 : 96);
    Expected<uint64_t> Id = Cli.send(R);
    ASSERT_TRUE(static_cast<bool>(Id));
    Ids.push_back(*Id);
  }
  std::map<uint64_t, WireResponse> ById;
  for (unsigned I = 0; I < 8; ++I) {
    Expected<std::pair<uint64_t, WireResponse>> Next = Cli.receive();
    ASSERT_TRUE(static_cast<bool>(Next)) << Next.error().message();
    ById.emplace(Next->first, std::move(Next->second));
  }
  ASSERT_EQ(ById.size(), 8u);
  // Same-key responses are identical wherever they landed in the
  // pipeline (duplicates attach to the in-flight job).
  for (unsigned I = 2; I < 8; ++I) {
    const WireResponse &First = ById.at(Ids[I % 2]);
    const WireResponse &Later = ById.at(Ids[I]);
    EXPECT_EQ(First.Key, Later.Key);
    EXPECT_EQ(First.Binary.serialize(), Later.Binary.serialize());
  }
  Srv.stop();
  Service.shutdown();
}

//===----------------------------------------------------------------------===//
// Server: malformed traffic
//===----------------------------------------------------------------------===//

TEST(NetServerTest, MalformedTrafficDropsTheConnectionNotTheServer) {
  gpusim::Gpu Device;
  ServiceConfig SC = tinyService(/*Workers=*/1);
  SC.StartPaused = true; // No jobs needed: framing dies before admission.
  OptimizationService Service(Device, SC);
  Server Srv(Service, ServerConfig{});
  Expected<uint16_t> Port = Srv.start();
  ASSERT_TRUE(static_cast<bool>(Port));

  // Garbage bytes: the stream is unframeable, the connection drops.
  {
    RawConn C(*Port);
    ASSERT_TRUE(C.ok());
    ASSERT_TRUE(C.sendBytes(std::vector<uint8_t>(64, 0xAB)));
    EXPECT_TRUE(C.peerClosed());
  }
  // Version skew.
  {
    RawConn C(*Port);
    ASSERT_TRUE(C.ok());
    std::vector<uint8_t> Frame =
        encodeRequestFrame(request(WorkloadKind::Softmax), 1);
    Frame[4] = 9; // Unknown version.
    ASSERT_TRUE(C.sendBytes(Frame));
    EXPECT_TRUE(C.peerClosed());
  }
  // Hostile length prefix (4GiB claim).
  {
    RawConn C(*Port);
    ASSERT_TRUE(C.ok());
    std::vector<uint8_t> Header;
    FrameHeader H;
    H.Type = FrameType::Request;
    encodeHeader(Header, H);
    Header[16] = Header[17] = Header[18] = Header[19] = 0xFF;
    ASSERT_TRUE(C.sendBytes(Header));
    EXPECT_TRUE(C.peerClosed());
  }
  // A truncated frame followed by EOF leaks nothing.
  {
    RawConn C(*Port);
    ASSERT_TRUE(C.ok());
    std::vector<uint8_t> Frame =
        encodeRequestFrame(request(WorkloadKind::Softmax), 1);
    Frame.resize(kHeaderSize + 3); // Claims a payload it never sends.
    ASSERT_TRUE(C.sendBytes(Frame));
  } // Client closes; the server must reap the slot.

  // A well-framed but undecodable payload answers InvalidRequest and
  // keeps the connection open.
  {
    RawConn C(*Port);
    ASSERT_TRUE(C.ok());
    std::vector<uint8_t> Frame;
    FrameHeader H;
    H.Type = FrameType::Request;
    H.RequestId = 77;
    H.PayloadLen = 4;
    encodeHeader(Frame, H);
    Frame.insert(Frame.end(), {0xFF, 0xFF, 0xFF, 0xFF}); // Bad kind.
    ASSERT_TRUE(C.sendBytes(Frame));
    uint64_t Id = 0;
    WireResponse R;
    ASSERT_TRUE(C.recvResponse(Id, R));
    EXPECT_EQ(Id, 77u);
    EXPECT_EQ(R.St, WireStatus::InvalidRequest);
    EXPECT_FALSE(R.Error.empty());
    // The connection survived: a valid request on the same socket gets
    // a real answer (Rejected-by-quota shapes aside, the service is
    // paused so it enqueues; just assert more bytes flow by sending a
    // response-typed frame, which is answered InvalidRequest too).
    std::vector<uint8_t> Odd = encodeResponseFrame(WireResponse{}, 78);
    ASSERT_TRUE(C.sendBytes(Odd));
    ASSERT_TRUE(C.recvResponse(Id, R));
    EXPECT_EQ(Id, 78u);
    EXPECT_EQ(R.St, WireStatus::InvalidRequest);
  }

  // Every poked connection was reaped; the server itself never died.
  EXPECT_TRUE(eventually([&] {
    NetStats S = Srv.stats();
    return S.ConnectionsClosed == S.ConnectionsAccepted;
  }));
  NetStats S = Srv.stats();
  EXPECT_EQ(S.ConnectionsAccepted, 5u);
  EXPECT_GE(S.DecodeErrors, 5u);
  EXPECT_EQ(S.ActiveConnections, 0u);

  // And it still serves: a fresh, healthy client talks to it.
  {
    RawConn C(*Port);
    ASSERT_TRUE(C.ok());
    std::vector<uint8_t> Odd = encodeResponseFrame(WireResponse{}, 5);
    ASSERT_TRUE(C.sendBytes(Odd));
    uint64_t Id = 0;
    WireResponse R;
    ASSERT_TRUE(C.recvResponse(Id, R));
    EXPECT_EQ(R.St, WireStatus::InvalidRequest);
  }
  Srv.stop();
  Service.shutdown();
}

//===----------------------------------------------------------------------===//
// Server: admission quotas
//===----------------------------------------------------------------------===//

TEST(NetServerTest, InFlightQuotaAnswersResourceExhausted) {
  gpusim::Gpu Device;
  ServiceConfig SC = tinyService(/*Workers=*/1);
  SC.StartPaused = true; // Jobs stay queued: in-flight never drains.
  OptimizationService Service(Device, SC);
  ServerConfig NC;
  NC.MaxInFlightPerConn = 2;
  Server Srv(Service, NC);
  Expected<uint16_t> Port = Srv.start();
  ASSERT_TRUE(static_cast<bool>(Port));

  ClientConfig CC;
  CC.Port = *Port;
  Client Cli(CC);
  std::vector<uint64_t> Ids;
  for (unsigned Rows : {64u, 96u, 128u, 160u}) {
    Expected<uint64_t> Id = Cli.send(request(WorkloadKind::Softmax, Rows));
    ASSERT_TRUE(static_cast<bool>(Id));
    Ids.push_back(*Id);
  }
  // Requests 3 and 4 bounce off the per-connection cap immediately;
  // 1 and 2 stay parked in the paused service.
  std::map<uint64_t, WireResponse> ById;
  for (int I = 0; I < 2; ++I) {
    Expected<std::pair<uint64_t, WireResponse>> Next = Cli.receive();
    ASSERT_TRUE(static_cast<bool>(Next)) << Next.error().message();
    ById.emplace(Next->first, std::move(Next->second));
  }
  ASSERT_TRUE(ById.count(Ids[2]));
  ASSERT_TRUE(ById.count(Ids[3]));
  EXPECT_EQ(ById.at(Ids[2]).St, WireStatus::ResourceExhausted);
  EXPECT_NE(ById.at(Ids[2]).Error.find("in-flight"), std::string::npos);
  EXPECT_EQ(Srv.stats().QuotaRejections, 2u);

  // Shutting the service down cancels the parked jobs; their callbacks
  // still stream Cancelled frames back out.
  Service.shutdown();
  for (int I = 0; I < 2; ++I) {
    Expected<std::pair<uint64_t, WireResponse>> Next = Cli.receive();
    ASSERT_TRUE(static_cast<bool>(Next)) << Next.error().message();
    ById.emplace(Next->first, std::move(Next->second));
  }
  EXPECT_EQ(ById.at(Ids[0]).St, WireStatus::Cancelled);
  EXPECT_EQ(ById.at(Ids[1]).St, WireStatus::Cancelled);
  Srv.stop();
}

TEST(NetServerTest, TokenBucketRateLimitsArrivals) {
  gpusim::Gpu Device;
  OptimizationService Service(Device, tinyService(/*Workers=*/1));
  support::FakeClock Clock; // Frozen: the bucket never refills.
  ServerConfig NC;
  NC.RatePerSec = 10.0;
  NC.RateBurst = 2.0;
  NC.ClockSrc = &Clock;
  Server Srv(Service, NC);
  Expected<uint16_t> Port = Srv.start();
  ASSERT_TRUE(static_cast<bool>(Port));

  ClientConfig CC;
  CC.Port = *Port;
  Client Cli(CC);
  // Same key three times: the first two spend the burst (one runs, one
  // attaches), the third arrives with an empty bucket.
  std::vector<uint64_t> Ids;
  for (int I = 0; I < 3; ++I) {
    Expected<uint64_t> Id = Cli.send(request(WorkloadKind::Softmax, 64));
    ASSERT_TRUE(static_cast<bool>(Id));
    Ids.push_back(*Id);
  }
  std::map<uint64_t, WireResponse> ById;
  for (int I = 0; I < 3; ++I) {
    Expected<std::pair<uint64_t, WireResponse>> Next = Cli.receive();
    ASSERT_TRUE(static_cast<bool>(Next)) << Next.error().message();
    ById.emplace(Next->first, std::move(Next->second));
  }
  EXPECT_EQ(ById.at(Ids[2]).St, WireStatus::ResourceExhausted);
  EXPECT_NE(ById.at(Ids[2]).Error.find("rate limit"), std::string::npos);
  EXPECT_EQ(ById.at(Ids[0]).St, WireStatus::Optimized);
  EXPECT_EQ(ById.at(Ids[1]).St, WireStatus::Optimized);
  expectWireIdentical(ById.at(Ids[0]), ById.at(Ids[1]));
  EXPECT_EQ(Srv.stats().RateLimited, 1u);

  // Advancing the clock refills the bucket: the next arrival passes.
  Clock.advance(std::chrono::milliseconds(200)); // 2 tokens at 10/s.
  Expected<WireResponse> Again = Cli.call(request(WorkloadKind::Softmax, 64));
  ASSERT_TRUE(static_cast<bool>(Again));
  // No deploy dir here, so the repeat re-optimizes — the point is that
  // it was admitted at all.
  EXPECT_EQ(Again->St, WireStatus::Optimized);
  EXPECT_EQ(Srv.stats().RateLimited, 1u); // No new rejections.
  Srv.stop();
  Service.shutdown();
}

//===----------------------------------------------------------------------===//
// Server: draining service
//===----------------------------------------------------------------------===//

TEST(NetServerTest, ShutdownMidConnectionRejectsCleanly) {
  gpusim::Gpu Device;
  OptimizationService Service(Device, tinyService(/*Workers=*/1));
  Server Srv(Service, ServerConfig{});
  Expected<uint16_t> Port = Srv.start();
  ASSERT_TRUE(static_cast<bool>(Port));

  // The client connects while the service is healthy...
  ClientConfig CC;
  CC.Port = *Port;
  Client Cli(CC);
  ASSERT_TRUE(static_cast<bool>(Cli.connect()));

  // ...and the service shuts down mid-connection. The submission must
  // resolve as a clean wire-level Rejected — never a hang, never a
  // dropped connection.
  Service.shutdown();
  Expected<WireResponse> R = Cli.call(request(WorkloadKind::Softmax));
  ASSERT_TRUE(static_cast<bool>(R)) << R.error().message();
  EXPECT_EQ(R->St, WireStatus::Rejected);
  EXPECT_NE(R->Error.find("draining or shut down"), std::string::npos);

  // A fresh connection sees the same clean rejection (the server stays
  // up even though its service is gone).
  Client Cli2(CC);
  Expected<WireResponse> R2 = Cli2.call(request(WorkloadKind::RmsNorm));
  ASSERT_TRUE(static_cast<bool>(R2));
  EXPECT_EQ(R2->St, WireStatus::Rejected);
  Srv.stop();
}

//===----------------------------------------------------------------------===//
// Server: unix-domain transport
//===----------------------------------------------------------------------===//

TEST(NetServerTest, UnixDomainTransportServes) {
  gpusim::Gpu Device;
  std::string Dir = freshDir("cuasmrl_net_unix");
  std::filesystem::create_directories(Dir);
  std::string Sock = Dir + "/serve.sock";

  OptimizationService Service(Device, tinyService(/*Workers=*/1));
  ServerConfig NC;
  NC.EnableTcp = false;
  NC.UnixPath = Sock;
  Server Srv(Service, NC);
  Expected<uint16_t> Port = Srv.start();
  ASSERT_TRUE(static_cast<bool>(Port)) << Port.error().message();
  EXPECT_EQ(*Port, 0u); // No TCP listener.

  ClientConfig CC;
  CC.UnixPath = Sock;
  Client Cli(CC);
  Expected<WireResponse> R = Cli.call(request(WorkloadKind::Softmax));
  ASSERT_TRUE(static_cast<bool>(R)) << R.error().message();
  EXPECT_EQ(R->St, WireStatus::Optimized);
  EXPECT_TRUE(R->HasBinary);
  Srv.stop();
  EXPECT_FALSE(std::filesystem::exists(Sock)); // stop() unlinks it.
  Service.shutdown();
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Cross-process claims over one DeployCache directory
//===----------------------------------------------------------------------===//

TEST(NetClaimTest, TwoServicesRunExactlyOneJobPerKey) {
  gpusim::Gpu Device;
  std::string Dir = freshDir("cuasmrl_claim_shared");

  auto claimedService = [&] {
    ServiceConfig SC = tinyService(/*Workers=*/1, Dir);
    SC.CrossProcessClaims = true;
    SC.ClaimPollInterval = std::chrono::milliseconds(5);
    SC.StartPaused = true; // Admit to both before either runs.
    return SC;
  };
  OptimizationService A(Device, claimedService());
  OptimizationService B(Device, claimedService());

  OptimizeRequest R = request(WorkloadKind::Softmax);
  Ticket TA = A.submit(R);
  Ticket TB = B.submit(R);
  ASSERT_EQ(TA.How, Admission::Enqueued);
  ASSERT_EQ(TB.How, Admission::Enqueued);
  A.start();
  B.start();
  ResponsePtr RA = TA.Response.get();
  ResponsePtr RB = TB.Response.get();
  A.drain();
  B.drain();

  // Exactly one optimize job ran across both services; the other side
  // adopted the winner's persisted result.
  ServiceStats SA = A.stats();
  ServiceStats SB = B.stats();
  EXPECT_EQ(SA.OptimizeRuns + SB.OptimizeRuns, 1u);
  EXPECT_EQ(SA.ClaimHits + SB.ClaimHits, 1u);
  const ResponsePtr &Winner = SA.OptimizeRuns == 1 ? RA : RB;
  const ResponsePtr &Loser = SA.OptimizeRuns == 1 ? RB : RA;
  EXPECT_EQ(Winner->St, OptimizeResponse::Status::Optimized);
  EXPECT_EQ(Loser->St, OptimizeResponse::Status::LookupHit);
  EXPECT_TRUE(Loser->Persisted);
  EXPECT_EQ(Winner->Binary.serialize(), Loser->Binary.serialize());
  EXPECT_EQ(Winner->Key, Loser->Key);

  A.shutdown();
  B.shutdown();
  std::filesystem::remove_all(Dir);
}

TEST(NetClaimTest, WaiterPollsUntilTheClaimReleases) {
  gpusim::Gpu Device;
  std::string Dir = freshDir("cuasmrl_claim_wait");
  ServiceConfig SC = tinyService(/*Workers=*/1, Dir);
  SC.CrossProcessClaims = true;
  SC.ClaimPollInterval = std::chrono::milliseconds(5);
  SC.StartPaused = true;
  OptimizationService Service(Device, SC);

  // A foreign "process" (a plain FileLock holder) claims the key
  // before the worker starts; the service must wait, not run.
  Ticket T = Service.submit(request(WorkloadKind::Softmax));
  ASSERT_EQ(T.How, Admission::Enqueued);
  std::string ClaimPath = Dir + "/.claims/" + T.Key + ".lock";
  std::string Foreign = support::FileLock::makeToken();
  ASSERT_TRUE(support::FileLock::tryClaim(ClaimPath, Foreign));

  Service.start();
  // The job is stuck polling; the deploy dir never gains the key.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(T.Response.wait_for(std::chrono::seconds(0)),
            std::future_status::timeout);
  EXPECT_EQ(Service.stats().OptimizeRuns, 0u);
  EXPECT_EQ(Service.stats().ClaimWaits, 1u);

  // Releasing the foreign claim un-sticks it: the service claims and
  // optimizes normally.
  ASSERT_TRUE(support::FileLock::release(ClaimPath, Foreign));
  ResponsePtr R = T.Response.get();
  EXPECT_EQ(R->St, OptimizeResponse::Status::Optimized);
  ServiceStats S = Service.stats();
  EXPECT_EQ(S.OptimizeRuns, 1u);
  EXPECT_EQ(S.ClaimWaits, 1u);
  EXPECT_EQ(S.ClaimBreaks, 0u);
  Service.shutdown();
  // Its own claim was released after persisting.
  EXPECT_FALSE(std::filesystem::exists(ClaimPath));
  std::filesystem::remove_all(Dir);
}

TEST(NetClaimTest, StaleClaimsAreBrokenNotWaitedOn) {
  gpusim::Gpu Device;
  std::string Dir = freshDir("cuasmrl_claim_stale");
  ServiceConfig SC = tinyService(/*Workers=*/1, Dir);
  SC.CrossProcessClaims = true;
  SC.ClaimPollInterval = std::chrono::milliseconds(5);
  SC.ClaimStaleAfter = std::chrono::milliseconds(500);
  SC.StartPaused = true;
  OptimizationService Service(Device, SC);

  // A claim whose owner crashed long ago: its heartbeat is ancient.
  Ticket T = Service.submit(request(WorkloadKind::Softmax));
  ASSERT_EQ(T.How, Admission::Enqueued);
  std::string ClaimPath = Dir + "/.claims/" + T.Key + ".lock";
  ASSERT_TRUE(support::FileLock::tryClaim(
      ClaimPath, support::FileLock::makeToken()));
  std::filesystem::last_write_time(
      ClaimPath, std::filesystem::file_time_type::clock::now() -
                     std::chrono::seconds(60));

  Service.start();
  ResponsePtr R = T.Response.get();
  EXPECT_EQ(R->St, OptimizeResponse::Status::Optimized);
  ServiceStats S = Service.stats();
  EXPECT_EQ(S.OptimizeRuns, 1u);
  EXPECT_GE(S.ClaimBreaks, 1u);
  Service.shutdown();
  std::filesystem::remove_all(Dir);
}

//===- tests/cubin_test.cpp - binary container tests ---------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "cubin/Cubin.h"
#include "sass/Parser.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace cuasmrl;
using namespace cuasmrl::cubin;

namespace {

sass::Program parseOrDie(const std::string &Text,
                         const std::string &Name = "k") {
  Expected<sass::Program> P = sass::Parser::parseProgram(Text, Name);
  EXPECT_TRUE(P.hasValue()) << (P.hasValue() ? "" : P.error().str());
  return P.hasValue() ? P.takeValue() : sass::Program();
}

const char *SampleText = R"(
  [B------:R-:W-:-:S04] MOV R2, c[0x0][0x160] ;
.L_LOOP:
  [B------:R-:W0:-:S01] LDG.E.128 R4, desc[UR16][R2.64+0x40] ;
  [B0-----:R-:W-:-:S05] FFMA R8, R4.reuse, R5, R6 ;
  [B------:R-:W-:-:S01] @!P0 BRA `(.L_LOOP) ;
  [B------:R-:W-:-:S01] STG.E [R2.64], R8 ;
  [B------:R-:W-:-:S01] EXIT ;
)";

/// Generates a random (syntactically coherent) instruction for
/// round-trip property testing.
sass::Instruction randomInstruction(Rng &R) {
  // Placeholders: first two %d are register numbers, the third (when
  // present) is an offset/immediate constant.
  static const char *Lines[] = {
      "IADD3 R%d, R%d, 0x%x, RZ ;",
      "IMAD.WIDE R%d, R%d, 0x%x, R6 ;",
      "LDG.E.128 R%d, desc[UR16][R%d.64+0x%x] ;",
      "STG.E.64 [R%d.64+0x40], R%d ;",
      "HMMA.16816.F32 R%d, R%d.reuse, R8, R12 ;",
      "FFMA R%d, R%d, |R10|, -R9 ;",
      "ISETP.GE.AND P0, PT, R%d, 0x%x, PT ;",
      "LDGSTS.E.BYPASS.128 [R%d+0x40], desc[UR16][R%d.64+0x%x], P3 ;",
      "MUFU.RCP R%d, R%d ;",
      "@!PT LDS.128 R%d, [R%d+0x%x] ;",
  };
  char Buffer[128];
  const char *Template = Lines[R.uniformInt(std::size(Lines))];
  // Registers kept even and small so pair/vector forms stay coherent.
  unsigned A = 2 * (1 + R.uniformInt(40));
  unsigned B = 2 * (1 + R.uniformInt(40));
  unsigned C = 16 * R.uniformInt(32);
  std::snprintf(Buffer, sizeof(Buffer), Template, A, B, C);
  Expected<sass::Instruction> I = sass::Parser::parseInstruction(Buffer);
  EXPECT_TRUE(I.hasValue()) << Buffer;
  sass::Instruction Instr = I.takeValue();
  // Random control code.
  Instr.ctrl().setWaitMask(static_cast<uint8_t>(R.uniformInt(64)));
  if (R.bernoulli(0.3))
    Instr.ctrl().setReadBarrier(static_cast<int>(R.uniformInt(6)));
  if (R.bernoulli(0.5))
    Instr.ctrl().setWriteBarrier(static_cast<int>(R.uniformInt(6)));
  Instr.ctrl().setYield(R.bernoulli(0.2));
  Instr.ctrl().setStall(static_cast<unsigned>(R.uniformInt(16)));
  return Instr;
}

} // namespace

TEST(Cubin, AssembleDisassembleRoundTrip) {
  // The container's KernelInfo name becomes the program name on
  // disassembly, so parse under the same name.
  sass::Program P = parseOrDie(SampleText, "sample");
  KernelInfo Info;
  Info.Name = "sample";
  Info.GridX = 8;
  Info.WarpsPerBlock = 4;
  Info.SharedBytes = 1024;
  CubinFile File = assemble(P, Info);
  Expected<sass::Program> Q = disassemble(File);
  ASSERT_TRUE(Q.hasValue()) << Q.error().str();
  EXPECT_EQ(P.str(), Q->str());
}

TEST(Cubin, SerializeDeserializeBytes) {
  sass::Program P = parseOrDie(SampleText, "sample");
  KernelInfo Info;
  Info.Name = "sample";
  Info.GridY = 3;
  CubinFile File = assemble(P, Info);
  std::vector<uint8_t> Bytes = File.serialize();
  Expected<CubinFile> Back = CubinFile::deserialize(Bytes);
  ASSERT_TRUE(Back.hasValue()) << Back.error().str();
  EXPECT_EQ(Back->info().Name, "sample");
  EXPECT_EQ(Back->info().GridY, 3u);
  Expected<sass::Program> Q = disassemble(*Back);
  ASSERT_TRUE(Q.hasValue());
  EXPECT_EQ(P.str(), Q->str());
}

TEST(Cubin, ByteExactReassembly) {
  sass::Program P = parseOrDie(SampleText);
  CubinFile A = assemble(P, {});
  Expected<sass::Program> Q = disassemble(A);
  ASSERT_TRUE(Q.hasValue());
  CubinFile B = assemble(*Q, A.info());
  EXPECT_EQ(A.serialize(), B.serialize());
}

TEST(Cubin, DeserializeRejectsGarbage) {
  std::vector<uint8_t> Junk = {1, 2, 3, 4, 5};
  EXPECT_FALSE(CubinFile::deserialize(Junk).hasValue());
  std::vector<uint8_t> Truncated = assemble(parseOrDie(SampleText), {})
                                       .serialize();
  Truncated.resize(Truncated.size() / 2);
  EXPECT_FALSE(CubinFile::deserialize(Truncated).hasValue());
}

TEST(Cubin, ReplaceKernelSectionPreservesOthers) {
  sass::Program P = parseOrDie(SampleText);
  CubinFile File = assemble(P, {});
  Section &Extra = File.addSection(".nv.custom");
  Extra.Data = {0xde, 0xad, 0xbe, 0xef};

  sass::Program Q = P;
  Q.swap(4, 5); // STG and EXIT? Indices: label at 1; pick instr pair.
  // Ensure we swapped two instructions (stmt 4 and 5 are FFMA / BRA? be
  // safe: swap the two stores at the end if instructions).
  CubinFile Before = File;
  replaceKernelSection(File, Q);
  Expected<sass::Program> Back = disassemble(File);
  ASSERT_TRUE(Back.hasValue());
  EXPECT_EQ(Back->str(), Q.str());
  const Section *Custom = File.findSection(".nv.custom");
  ASSERT_NE(Custom, nullptr);
  EXPECT_EQ(Custom->Data, (std::vector<uint8_t>{0xde, 0xad, 0xbe, 0xef}));
}

/// Property: assemble/disassemble is the identity over randomized
/// instruction streams (500 instructions across 10 seeds).
class CubinRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CubinRoundTrip, RandomProgramsSurvive) {
  Rng R(GetParam());
  sass::Program P("fuzz");
  for (int I = 0; I < 50; ++I) {
    if (R.bernoulli(0.1))
      P.appendLabel(".L_" + std::to_string(I));
    P.appendInstr(randomInstruction(R));
  }
  CubinFile File = assemble(P, {});
  Expected<sass::Program> Q = disassemble(File);
  ASSERT_TRUE(Q.hasValue()) << Q.error().str();
  EXPECT_EQ(P.str(), Q->str());
  // And the byte stream survives a serialize cycle too.
  Expected<CubinFile> Back = CubinFile::deserialize(File.serialize());
  ASSERT_TRUE(Back.hasValue());
  Expected<sass::Program> Q2 = disassemble(*Back);
  ASSERT_TRUE(Q2.hasValue());
  EXPECT_EQ(P.str(), Q2->str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CubinRoundTrip,
                         ::testing::Range(1, 11));

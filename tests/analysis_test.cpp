//===- tests/analysis_test.cpp - static analysis + microbench tests -----------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "analysis/ControlFlow.h"
#include "analysis/MicroBench.h"
#include "analysis/OperandTable.h"
#include "analysis/StallAnalysis.h"
#include "analysis/StallTable.h"
#include "sass/Parser.h"

#include <gtest/gtest.h>

using namespace cuasmrl;
using namespace cuasmrl::analysis;

namespace {

sass::Program parseOrDie(const std::string &Text) {
  Expected<sass::Program> P = sass::Parser::parseProgram(Text, "t");
  EXPECT_TRUE(P.hasValue()) << (P.hasValue() ? "" : P.error().str());
  return P.hasValue() ? P.takeValue() : sass::Program();
}

} // namespace

//===----------------------------------------------------------------------===//
// Regions
//===----------------------------------------------------------------------===//

TEST(Regions, LabelsSplit) {
  sass::Program P = parseOrDie(R"(
  [B------:R-:W-:-:S01] MOV R0, 0x1 ;
  [B------:R-:W-:-:S01] MOV R1, 0x2 ;
.L_A:
  [B------:R-:W-:-:S01] MOV R2, 0x3 ;
)");
  RegionInfo R = computeRegions(P, BoundaryKind::Labels);
  EXPECT_TRUE(R.sameRegion(0, 1));
  EXPECT_FALSE(R.sameRegion(1, 3));
  EXPECT_EQ(R.RegionOf[2], RegionInfo::kBoundary);
  EXPECT_EQ(R.NumRegions, 2);
}

TEST(Regions, SyncSplitsOnlyReorderRegions) {
  sass::Program P = parseOrDie(R"(
  [B------:R-:W-:-:S01] MOV R0, 0x1 ;
  [B------:R-:W-:-:S01] BAR.SYNC 0x0 ;
  [B------:R-:W-:-:S01] MOV R1, 0x2 ;
)");
  RegionInfo Reorder = computeRegions(P, BoundaryKind::LabelsAndSync);
  EXPECT_FALSE(Reorder.sameRegion(0, 2));
  RegionInfo Blocks = computeRegions(P, BoundaryKind::Labels);
  EXPECT_TRUE(Blocks.sameRegion(0, 2));
}

TEST(Regions, ControlFlowSplitsBoth) {
  sass::Program P = parseOrDie(R"(
  [B------:R-:W-:-:S01] MOV R0, 0x1 ;
  [B------:R-:W-:-:S01] BRA `(.L_A) ;
.L_A:
  [B------:R-:W-:-:S01] MOV R1, 0x2 ;
)");
  for (BoundaryKind K : {BoundaryKind::Labels, BoundaryKind::LabelsAndSync}) {
    RegionInfo R = computeRegions(P, K);
    EXPECT_FALSE(R.sameRegion(0, 3));
  }
}

//===----------------------------------------------------------------------===//
// Stall table
//===----------------------------------------------------------------------===//

TEST(StallTableTest, BuiltinMatchesPaperTable1) {
  StallTable T = StallTable::builtin();
  EXPECT_EQ(T.lookup("IADD3").value(), 4u);
  EXPECT_EQ(T.lookup("IMAD.IADD").value(), 4u);
  EXPECT_EQ(T.lookup("IADD3.X").value(), 4u);
  EXPECT_EQ(T.lookup("MOV").value(), 4u);
  EXPECT_EQ(T.lookup("IABS").value(), 4u);
  EXPECT_EQ(T.lookup("IMAD").value(), 5u);
  EXPECT_EQ(T.lookup("IMAD.WIDE").value(), 5u);
  EXPECT_FALSE(T.lookup("FFMA").has_value()); // Not in Table 1.
}

TEST(StallTableTest, RecordKeepsMinimum) {
  StallTable T;
  T.record("X", 7);
  T.record("X", 5);
  T.record("X", 9);
  EXPECT_EQ(T.lookup("X").value(), 5u);
}

//===----------------------------------------------------------------------===//
// Stall-count inference (§3.2)
//===----------------------------------------------------------------------===//

TEST(StallInference, TableResolvesKnownProducer) {
  sass::Program P = parseOrDie(R"(
  [B------:R-:W-:-:S05] IMAD.WIDE R10, R9, 0x4, R2 ;
  [B------:R-:W0:-:S01] LDG.E R12, [R10.64] ;
  [B------:R-:W-:-:S01] EXIT ;
)");
  StallAnalysis A = analyzeStallCounts(P, StallTable::builtin());
  EXPECT_GE(A.ResolvedByTable, 1u);
  EXPECT_TRUE(A.Denylist.empty());
}

TEST(StallInference, UnknownProducerInferred) {
  // FFMA is not in Table 1: its stall count must be inferred from the
  // observed def-use distance (5 here).
  sass::Program P = parseOrDie(R"(
  [B------:R-:W-:-:S04] MOV R6, 0x0 ;
  [B------:R-:W-:-:S05] FFMA R18, R12, R13, R14 ;
  [B------:R-:W-:-:S01] STG.E [R6.64], R18 ;
  [B------:R-:W-:-:S01] EXIT ;
)");
  StallAnalysis A = analyzeStallCounts(P, StallTable::builtin());
  EXPECT_GE(A.ResolvedByInference, 1u);
  EXPECT_EQ(A.Inferred.lookup("FFMA").value(), 5u);
}

TEST(StallInference, InferenceOverestimatesSafely) {
  // §3.2's example: the inferred stall can exceed the microbenchmarked
  // value when the schedule leaves slack; overestimates are safe.
  sass::Program P = parseOrDie(R"(
  [B------:R-:W-:-:S06] FFMA R18, R12, R13, R14 ;
  [B------:R-:W-:-:S04] MOV R6, 0x0 ;
  [B------:R-:W-:-:S01] STG.E [R6.64], R18 ;
  [B------:R-:W-:-:S01] EXIT ;
)");
  StallAnalysis A = analyzeStallCounts(P, StallTable::builtin());
  // Accumulated distance: 6 (FFMA) + 4 (MOV) = 10 >= true 5.
  EXPECT_EQ(A.Inferred.lookup("FFMA").value(), 10u);
}

TEST(StallInference, MinimumOverObservations) {
  sass::Program P = parseOrDie(R"(
  [B------:R-:W-:-:S08] FFMA R18, R12, R13, R14 ;
  [B------:R-:W-:-:S01] STG.E [R6.64], R18 ;
  [B------:R-:W-:-:S05] FFMA R19, R12, R13, R14 ;
  [B------:R-:W-:-:S01] STG.E [R6.64+0x4], R19 ;
  [B------:R-:W-:-:S01] EXIT ;
)");
  StallAnalysis A = analyzeStallCounts(P, StallTable::builtin());
  EXPECT_EQ(A.Inferred.lookup("FFMA").value(), 5u);
}

TEST(StallInference, LabelCrossingDenylists) {
  // R10's definition lives before the label: the LDG joins the denylist.
  sass::Program P = parseOrDie(R"(
  [B------:R-:W-:-:S05] IMAD.WIDE R10, R9, 0x4, R2 ;
.L_LOOP:
  [B------:R-:W0:-:S01] LDG.E R12, [R10.64] ;
  [B------:R-:W-:-:S01] EXIT ;
)");
  StallAnalysis A = analyzeStallCounts(P, StallTable::builtin());
  EXPECT_EQ(A.Denylist.size(), 1u);
  EXPECT_GE(A.DenylistedDeps, 1u);
}

TEST(StallInference, BarSyncDoesNotDenylist) {
  // BAR.SYNC is not a basic-block boundary for the scan (§3.2).
  sass::Program P = parseOrDie(R"(
  [B------:R-:W-:-:S05] IMAD.WIDE R10, R9, 0x4, R2 ;
  [B------:R-:W-:-:S01] BAR.SYNC 0x0 ;
  [B------:R-:W0:-:S01] LDG.E R12, [R10.64] ;
  [B------:R-:W-:-:S01] EXIT ;
)");
  StallAnalysis A = analyzeStallCounts(P, StallTable::builtin());
  EXPECT_TRUE(A.Denylist.empty());
}

TEST(StallInference, VariableLatencyProducerNotCounted) {
  // A load feeding a store is protected by the scoreboard, not stalls.
  sass::Program P = parseOrDie(R"(
  [B------:R-:W0:-:S01] LDG.E R12, [R10.64] ;
  [B0-----:R-:W-:-:S01] STG.E [R14.64], R12 ;
  [B------:R-:W-:-:S01] EXIT ;
)");
  StallAnalysis A = analyzeStallCounts(P, StallTable::builtin());
  EXPECT_EQ(A.ResolvedByTable, 0u);
  EXPECT_EQ(A.ResolvedByInference, 0u);
}

TEST(StallInference, ResolvePrefersTable) {
  StallAnalysis A;
  A.Inferred.record("MOV", 9);
  StallTable T = StallTable::builtin();
  EXPECT_EQ(A.resolve(T, "MOV").value(), 4u);
  A.Inferred.record("ZZZ", 7);
  EXPECT_EQ(A.resolve(T, "ZZZ").value(), 7u);
  EXPECT_FALSE(A.resolve(T, "QQQ").has_value());
}

TEST(StallInference, Figure7PercentagesSumTo100) {
  sass::Program P = parseOrDie(R"(
  [B------:R-:W-:-:S05] IMAD.WIDE R10, R9, 0x4, R2 ;
  [B------:R-:W0:-:S01] LDG.E R12, [R10.64] ;
  [B------:R-:W-:-:S05] FFMA R18, R12, R13, R14 ;
  [B------:R-:W-:-:S01] STG.E [R6.64], R18 ;
.L_X:
  [B------:R-:W0:-:S01] LDG.E R20, [R22.64] ;
  [B------:R-:W-:-:S01] EXIT ;
)");
  StallAnalysis A = analyzeStallCounts(P, StallTable::builtin());
  EXPECT_GT(A.totalDeps(), 0.0);
  EXPECT_NEAR(A.pctTable() + A.pctInferred() + A.pctDenylisted(), 100.0,
              1e-9);
}

//===----------------------------------------------------------------------===//
// Operand table
//===----------------------------------------------------------------------===//

TEST(OperandTableTest, IndicesStableAndComplete) {
  sass::Program P = parseOrDie(R"(
  [B------:R-:W-:-:S05] IMAD.WIDE R10, R9, 0x4, R2 ;
  [B------:R-:W0:-:S01] LDG.E R12, [R10.64] ;
  [B------:R-:W-:-:S01] STG.E [R10.64+0x8], R12 ;
  [B------:R-:W-:-:S01] EXIT ;
)");
  OperandTable T = OperandTable::build(P);
  EXPECT_GE(T.numRegs(), 4u);
  EXPECT_EQ(T.numMems(), 2u); // [R10.64] and [R10.64+0x8] are distinct.
  EXPECT_EQ(T.maxOperands(), 4u);
  EXPECT_GE(T.regIndex(sass::Register::general(10)), 0);
  EXPECT_EQ(T.regIndex(sass::Register::general(99)), -1);
}

//===----------------------------------------------------------------------===//
// Microbenchmarks (§4.3)
//===----------------------------------------------------------------------===//

/// The flagship validation: the dependency-based methodology recovers
/// the paper's Table 1 exactly from the simulated hardware.
TEST(MicroBench, DependencyRecoversTable1) {
  const std::pair<const char *, unsigned> Expected[] = {
      {"IADD3", 4},     {"IMAD.IADD", 4}, {"IADD3.X", 4},
      {"MOV", 4},       {"IABS", 4},      {"IMAD", 5},
      {"FADD", 5},      {"HADD2", 5},     {"IMNMX", 5},
      {"SEL", 5},       {"LEA", 5},       {"IMAD.WIDE", 5},
      {"IMAD.WIDE.U32", 5},
  };
  for (auto [Key, Cycles] : Expected) {
    std::optional<unsigned> Got = dependencyStallCount(Key);
    ASSERT_TRUE(Got.has_value()) << Key;
    EXPECT_EQ(*Got, Cycles) << Key;
  }
}

TEST(MicroBench, TableBuilderCoversAllKeys) {
  std::vector<std::string> Keys = microbenchableKeys();
  StallTable T = microbenchmarkTable(Keys);
  EXPECT_EQ(T.size(), Keys.size());
  for (const auto &[Key, Cycles] : T.entries()) {
    std::optional<unsigned> Truth = sass::groundTruthLatency(Key);
    ASSERT_TRUE(Truth.has_value()) << Key;
    EXPECT_EQ(Cycles, *Truth) << Key;
  }
}

TEST(MicroBench, UnknownKeyRejected) {
  EXPECT_FALSE(dependencyStallCount("FROBNICATE").has_value());
}

/// §4.3's critique: clock-based measurement underestimates because the
/// sequence need not have completed at the second clock read.
TEST(MicroBench, ClockBasedUnderestimates) {
  std::optional<double> Clock = clockBasedStall("IADD3");
  ASSERT_TRUE(Clock.has_value());
  std::optional<unsigned> Dep = dependencyStallCount("IADD3");
  ASSERT_TRUE(Dep.has_value());
  EXPECT_LT(*Clock, static_cast<double>(*Dep));
  EXPECT_GT(*Clock, 0.5);
}

//===- tests/generalist_test.cpp - generalist policy / warm-start tests ------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generalist-policy contracts: the conditioned embedding's legacy
/// prefix is bit-identical to the unconditioned path (randomized
/// differential), mixed-kernel rollout batches are bit-identical for
/// any worker count, Optimizer::optimizeMany trains one shared policy
/// deterministically, the PolicyStore round-trips and rebuilds from
/// disk, and warm-started serving transfers tensors from the nearest
/// stored policy.
///
//===----------------------------------------------------------------------===//

#include "core/GameEnvAdapter.h"
#include "core/Optimizer.h"
#include "env/AssemblyGame.h"
#include "env/Embedding.h"
#include "serve/OptimizationService.h"
#include "serve/PolicyStore.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace cuasmrl;
using namespace cuasmrl::env;
using kernels::BuiltKernel;
using kernels::ScheduleStyle;
using kernels::WorkloadKind;
using kernels::WorkloadShape;

namespace {

BuiltKernel buildTestKernel(gpusim::Gpu &Device, WorkloadKind Kind,
                            Rng &DataRng) {
  return kernels::buildKernel(Device, Kind, kernels::testShape(Kind),
                              kernels::candidateConfigs(Kind).front(),
                              ScheduleStyle::TritonO3, DataRng);
}

WorkloadContext contextFor(WorkloadKind Kind, size_t OperandSlots = 0) {
  WorkloadContext Ctx;
  Ctx.Kind = Kind;
  Ctx.Shape = kernels::testShape(Kind);
  Ctx.OperandSlots = OperandSlots;
  return Ctx;
}

/// The serve-test tiny config: real training, sub-second jobs.
core::OptimizeConfig tinyConfig() {
  core::OptimizeConfig C;
  C.Ppo.TotalSteps = 32;
  C.Ppo.RolloutLen = 16;
  C.Ppo.MiniBatches = 2;
  C.Ppo.Epochs = 2;
  C.Ppo.Channels = 4;
  C.Ppo.Hidden = 16;
  C.Game.EpisodeLength = 8;
  C.Game.Measure.WarmupIters = 1;
  C.Game.Measure.RepeatIters = 1;
  C.Game.Measure.NoiseStddev = 0.001;
  C.AutotuneMeasure.WarmupIters = 1;
  C.AutotuneMeasure.RepeatIters = 1;
  C.AutotuneMeasure.NoiseStddev = 0.0;
  C.ProbTestRounds = 1;
  return C;
}

std::string freshDir(const std::string &Name) {
  std::string Dir =
      (std::filesystem::temp_directory_path() / Name).string();
  std::filesystem::remove_all(Dir);
  return Dir;
}

} // namespace

//===----------------------------------------------------------------------===//
// Conditioned embedding (env layer)
//===----------------------------------------------------------------------===//

TEST(GeneralistTest, ConditionedEmbeddingAppendsContextAfterLegacyColumns) {
  gpusim::Gpu Device;
  Rng DataRng(7);
  BuiltKernel K = buildTestKernel(Device, WorkloadKind::MmLeakyRelu, DataRng);

  Embedding Legacy(K.Prog);
  Embedding Cond(K.Prog, contextFor(WorkloadKind::MmLeakyRelu));
  ASSERT_EQ(Cond.rows(), Legacy.rows());
  ASSERT_EQ(Cond.features(),
            Legacy.features() + Embedding::contextFeatures());
  ASSERT_EQ(Cond.contextBlock().size(), Embedding::contextFeatures());
  EXPECT_TRUE(Legacy.contextBlock().empty());

  // The one-hot singles out this workload's kind slot.
  const std::vector<kernels::WorkloadKind> Kinds = kernels::allWorkloads();
  for (size_t I = 0; I < Kinds.size(); ++I)
    EXPECT_EQ(Cond.contextBlock()[I],
              Kinds[I] == WorkloadKind::MmLeakyRelu ? 1.0f : 0.0f);
}

TEST(GeneralistTest, ConditionedEmbeddingLegacyPrefixBitIdentical) {
  // Randomized differential: after any sequence of adjacent swaps, the
  // conditioned embedding's leading legacy columns stay bit-identical
  // to the unconditioned embedding, every row's suffix IS the context
  // block, and swapAdjacentRows matches a full re-embed.
  gpusim::Gpu Device;
  Rng DataRng(7);
  for (WorkloadKind Kind :
       {WorkloadKind::Softmax, WorkloadKind::MmLeakyRelu}) {
    BuiltKernel K = buildTestKernel(Device, Kind, DataRng);
    Embedding Legacy(K.Prog);
    Embedding Cond(K.Prog, contextFor(Kind));

    sass::Program Prog = K.Prog;
    std::vector<float> CondObs = Cond.embed(Prog);
    Rng Shuffle(123);
    for (int Trial = 0; Trial < 50; ++Trial) {
      std::vector<float> LegacyObs = Legacy.embed(Prog);
      std::vector<float> CondFresh = Cond.embed(Prog);
      ASSERT_EQ(CondObs, CondFresh) << "swap-aware update diverged";
      const size_t LF = Legacy.features();
      const size_t CF = Cond.features();
      for (size_t Row = 0; Row < Legacy.rows(); ++Row) {
        for (size_t F = 0; F < LF; ++F)
          ASSERT_EQ(CondObs[Row * CF + F], LegacyObs[Row * LF + F])
              << "row " << Row << " feature " << F;
        for (size_t F = LF; F < CF; ++F)
          ASSERT_EQ(CondObs[Row * CF + F], Cond.contextBlock()[F - LF]);
      }
      // Random adjacent swap of instruction statements, mirrored into
      // the incremental observation update.
      std::vector<size_t> Instrs =
          Prog.findInstrs([](const sass::Instruction &) { return true; });
      if (Instrs.size() < 2)
        break;
      size_t Pick = Shuffle.uniformInt(Instrs.size() - 1);
      Prog.swap(Instrs[Pick], Instrs[Pick + 1]);
      Cond.swapAdjacentRows(CondObs, Pick);
    }
  }
}

TEST(GeneralistTest, ConditionedEmbeddingPadsOperandSlots) {
  gpusim::Gpu Device;
  Rng DataRng(7);
  BuiltKernel K = buildTestKernel(Device, WorkloadKind::Softmax, DataRng);

  Embedding Natural(K.Prog, contextFor(WorkloadKind::Softmax));
  const size_t NaturalSlots = Natural.table().maxOperands();
  WorkloadContext Wide = contextFor(WorkloadKind::Softmax, NaturalSlots + 3);
  Embedding Padded(K.Prog, Wide);
  EXPECT_EQ(Padded.features(), Natural.features() + 3);

  // The extra slots embed as the dummy -1 padding, before the context
  // block — and a smaller-than-natural request keeps the natural width.
  std::vector<float> Obs = Padded.embed(K.Prog);
  const size_t CF = Padded.features();
  const size_t CtxF = Embedding::contextFeatures();
  for (size_t Row = 0; Row < Padded.rows(); ++Row)
    for (size_t F = CF - CtxF - 3; F < CF - CtxF; ++F)
      ASSERT_EQ(Obs[Row * CF + F], -1.0f);
  WorkloadContext Narrow = contextFor(WorkloadKind::Softmax, 1);
  EXPECT_EQ(Embedding(K.Prog, Narrow).features(), Natural.features());
}

//===----------------------------------------------------------------------===//
// Mixed-kernel rollouts (rl layer)
//===----------------------------------------------------------------------===//

TEST(GeneralistTest, PadMaskToNetKeepsPaddingMasked) {
  std::vector<uint8_t> Mask = {0, 1, 0};
  rl::RolloutRunner::padMaskToNet(Mask, 5);
  EXPECT_EQ(Mask, (std::vector<uint8_t>{0, 1, 0, 0, 0}));

  // The all-masked fallback opens the env's REAL actions only: the
  // padded entries stay 0 so an out-of-range action cannot be sampled.
  std::vector<uint8_t> AllZero = {0, 0, 0};
  rl::RolloutRunner::padMaskToNet(AllZero, 5);
  EXPECT_EQ(AllZero, (std::vector<uint8_t>{1, 1, 1, 0, 0}));
}

TEST(GeneralistTest, MixedKernelBatchBitIdenticalForAnyWorkerCount) {
  // One conditioned game per workload, one shared net sized for the
  // pool maxima: the collected batch must be bit-identical for worker
  // counts {1, 2, 4}.
  gpusim::Gpu Device;
  Rng DataRng(7);
  BuiltKernel K1 = buildTestKernel(Device, WorkloadKind::Softmax, DataRng);
  BuiltKernel K2 =
      buildTestKernel(Device, WorkloadKind::MmLeakyRelu, DataRng);

  const size_t Slots =
      std::max(analysis::OperandTable::build(K1.Prog).maxOperands(),
               analysis::OperandTable::build(K2.Prog).maxOperands());

  auto Collect = [&](unsigned Workers) {
    std::vector<std::unique_ptr<rl::Env>> Envs;
    const std::vector<std::pair<const BuiltKernel *, WorkloadKind>> Pool = {
        {&K1, WorkloadKind::Softmax}, {&K2, WorkloadKind::MmLeakyRelu}};
    for (const auto &[Kernel, Kind] : Pool) {
      GameConfig GC;
      GC.EpisodeLength = 8;
      GC.Measure.WarmupIters = 1;
      GC.Measure.RepeatIters = 1;
      GC.Measure.NoiseStddev = 0.0;
      GC.PrivateDevice = true; // Siblings must not share device state.
      GC.Context = contextFor(Kind, Slots);
      Envs.push_back(std::make_unique<core::GameEnvAdapter>(
          std::make_unique<AssemblyGame>(Device, *Kernel, GC)));
    }
    rl::NetConfig NC;
    NC.Features = Envs[0]->obsFeatures();
    NC.Channels = 4;
    NC.Hidden = 16;
    for (const std::unique_ptr<rl::Env> &E : Envs) {
      EXPECT_EQ(E->obsFeatures(), NC.Features);
      NC.Length = std::max(NC.Length, E->obsRows());
      NC.Actions = std::max(NC.Actions, size_t(E->actionCount()));
    }
    rl::RolloutConfig RC;
    RC.Workers = Workers;
    RC.Seed = 33;
    rl::RolloutRunner Runner(std::move(Envs), RC);
    Rng NetRng(5);
    rl::ActorCritic Net(NC, NetRng);
    return Runner.collect(Net, 12);
  };

  rl::TrajectoryBatch Base = Collect(1);
  for (unsigned Workers : {2u, 4u}) {
    rl::TrajectoryBatch Other = Collect(Workers);
    ASSERT_EQ(Base.Trajectories.size(), Other.Trajectories.size());
    for (size_t S = 0; S < Base.Trajectories.size(); ++S) {
      const rl::Trajectory &A = Base.Trajectories[S];
      const rl::Trajectory &B = Other.Trajectories[S];
      ASSERT_EQ(A.Steps.size(), B.Steps.size());
      for (size_t I = 0; I < A.Steps.size(); ++I) {
        EXPECT_EQ(A.Steps[I].Obs, B.Steps[I].Obs);
        EXPECT_EQ(A.Steps[I].Mask, B.Steps[I].Mask);
        EXPECT_EQ(A.Steps[I].Action, B.Steps[I].Action);
        EXPECT_EQ(A.Steps[I].LogProb, B.Steps[I].LogProb);
        EXPECT_EQ(A.Steps[I].Value, B.Steps[I].Value);
        EXPECT_EQ(A.Steps[I].Reward, B.Steps[I].Reward);
      }
      EXPECT_EQ(A.BootstrapObs, B.BootstrapObs);
      EXPECT_EQ(A.BootstrapMask, B.BootstrapMask);
      EXPECT_EQ(A.CompletedReturns, B.CompletedReturns);
    }
  }
}

TEST(GeneralistTest, OptimizeManySharedPolicyDeterministic) {
  core::OptimizeConfig C = tinyConfig();
  std::vector<core::WorkloadRequest> Requests;
  for (WorkloadKind Kind :
       {WorkloadKind::Softmax, WorkloadKind::MmLeakyRelu})
    Requests.push_back({Kind, kernels::testShape(Kind)});

  auto Run = [&](unsigned Workers) {
    core::OptimizeConfig Cfg = C;
    Cfg.RolloutWorkers = Workers;
    core::Optimizer Opt(Cfg);
    gpusim::Gpu Device;
    Rng DataRng(11);
    return Opt.optimizeMany(Device, Requests, DataRng);
  };

  core::MultiOptimizeResult Serial = Run(1);
  ASSERT_EQ(Serial.Results.size(), 2u);
  EXPECT_FALSE(Serial.PolicyBlob.empty());
  EXPECT_FALSE(Serial.Training.empty());
  // Curriculum is a permutation of the valid request indices.
  ASSERT_EQ(Serial.Curriculum.size(), 2u);
  EXPECT_NE(Serial.Curriculum[0], Serial.Curriculum[1]);
  for (const core::OptimizeResult &R : Serial.Results) {
    ASSERT_TRUE(R.AutotuneValid);
    EXPECT_GT(R.TritonUs, 0.0);
    EXPECT_LE(R.OptimizedUs, R.TritonUs);
    EXPECT_EQ(R.PolicyBlob, Serial.PolicyBlob); // One shared policy.
  }

  core::MultiOptimizeResult Threaded = Run(2);
  ASSERT_EQ(Threaded.Results.size(), Serial.Results.size());
  EXPECT_EQ(Threaded.PolicyBlob, Serial.PolicyBlob);
  EXPECT_EQ(Threaded.Curriculum, Serial.Curriculum);
  ASSERT_EQ(Threaded.Training.size(), Serial.Training.size());
  for (size_t I = 0; I < Serial.Training.size(); ++I) {
    EXPECT_EQ(Threaded.Training[I].PolicyLoss, Serial.Training[I].PolicyLoss);
    EXPECT_EQ(Threaded.Training[I].Entropy, Serial.Training[I].Entropy);
  }
  for (size_t I = 0; I < Serial.Results.size(); ++I) {
    EXPECT_EQ(Threaded.Results[I].OptimizedUs, Serial.Results[I].OptimizedUs);
    EXPECT_EQ(Threaded.Results[I].OptimizedProg.str(),
              Serial.Results[I].OptimizedProg.str());
    EXPECT_EQ(Threaded.Results[I].Verified, Serial.Results[I].Verified);
  }
}

//===----------------------------------------------------------------------===//
// PolicyStore (serve layer)
//===----------------------------------------------------------------------===//

namespace {

serve::DeployedEntry policyMeta(WorkloadKind Kind, unsigned Rows,
                                const std::string &Key) {
  serve::DeployedEntry E;
  E.GpuType = "A100-SIM";
  E.Kind = Kind;
  E.Shape = kernels::testShape(Kind);
  E.Shape.Rows = Rows;
  E.Key = Key;
  return E;
}

} // namespace

TEST(PolicyStoreTest, StoreLoadAndNearestShape) {
  std::string Dir = freshDir("cuasmrl_policy_store_test");
  serve::PolicyStore Store(Dir);
  EXPECT_EQ(Store.size(), 0u);
  EXPECT_FALSE(Store.load("missing").has_value());

  ASSERT_TRUE(Store.store("small", "blob-small",
                          policyMeta(WorkloadKind::Softmax, 64, "small")));
  ASSERT_TRUE(Store.store("large", "blob-large",
                          policyMeta(WorkloadKind::Softmax, 4096, "large")));
  EXPECT_EQ(Store.size(), 2u);
  EXPECT_EQ(Store.load("small").value_or(""), "blob-small");

  kernels::WorkloadShape Query = kernels::testShape(WorkloadKind::Softmax);
  Query.Rows = 96; // Log-space nearest: 64, not 4096.
  std::string From;
  std::optional<std::string> Near = Store.nearest(
      "A100-SIM", WorkloadKind::Softmax, Query, /*ExcludeKey=*/"", &From);
  ASSERT_TRUE(Near.has_value());
  EXPECT_EQ(*Near, "blob-small");
  EXPECT_EQ(From, "small");

  // Excluding the winner falls back to the next-nearest; a different
  // kind or GPU type never matches.
  EXPECT_EQ(Store.nearest("A100-SIM", WorkloadKind::Softmax, Query, "small")
                .value_or(""),
            "blob-large");
  EXPECT_FALSE(Store.nearest("H100-SIM", WorkloadKind::Softmax, Query, "")
                   .has_value());
  EXPECT_FALSE(Store.nearest("A100-SIM", WorkloadKind::MmLeakyRelu, Query, "")
                   .has_value());
  std::filesystem::remove_all(Dir);
}

TEST(PolicyStoreTest, RebuildsFromDirectoryAndSweepsOrphans) {
  std::string Dir = freshDir("cuasmrl_policy_rebuild_test");
  {
    serve::PolicyStore Store(Dir);
    ASSERT_TRUE(Store.store("k1", "blob-1",
                            policyMeta(WorkloadKind::Softmax, 64, "k1")));
  }
  // A crashed writer's orphan sits next to the real files.
  std::string Orphan = Dir + "/k1.policy.tmp.999.1";
  { std::ofstream(Orphan) << "torn"; }
  ASSERT_TRUE(std::filesystem::exists(Orphan));

  serve::PolicyStore Reopened(Dir);
  EXPECT_FALSE(std::filesystem::exists(Orphan)) << "orphan not swept";
  EXPECT_EQ(Reopened.size(), 1u);
  EXPECT_EQ(Reopened.keys(), std::vector<std::string>{"k1"});
  kernels::WorkloadShape Query = kernels::testShape(WorkloadKind::Softmax);
  EXPECT_EQ(Reopened.nearest("A100-SIM", WorkloadKind::Softmax, Query, "")
                .value_or(""),
            "blob-1");
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Warm starts (rl checkpoint + core + serve layers)
//===----------------------------------------------------------------------===//

TEST(WarmStartTest, TransactionalLoadRejectsCorruptCheckpoint) {
  rl::NetConfig NC;
  NC.Features = 8;
  NC.Length = 4;
  NC.Actions = 3;
  NC.Channels = 4;
  NC.Hidden = 8;
  Rng R1(1), R2(2);
  rl::ActorCritic Net(NC, R1);
  rl::ActorCritic Other(NC, R2);

  std::ostringstream OS;
  Other.save(OS);
  const std::string Blob = OS.str();

  auto Snapshot = [](const rl::ActorCritic &N) {
    std::vector<std::vector<float>> Params;
    for (const rl::Tensor &P : N.parameters())
      Params.push_back(P.data());
    return Params;
  };
  const std::vector<std::vector<float>> Before = Snapshot(Net);

  // Truncated mid-tensor: load() must refuse and leave EVERY tensor
  // untouched (no partial mutation — the transactional contract).
  std::istringstream Truncated(Blob.substr(0, Blob.size() / 2));
  EXPECT_FALSE(Net.load(Truncated));
  EXPECT_EQ(Snapshot(Net), Before);

  std::istringstream BadMagic("XXXXXXXX" + Blob.substr(8));
  EXPECT_FALSE(Net.load(BadMagic));
  EXPECT_EQ(Snapshot(Net), Before);

  std::istringstream Good(Blob);
  EXPECT_TRUE(Net.load(Good));
  EXPECT_EQ(Snapshot(Net), Snapshot(Other));
}

TEST(WarmStartTest, LoadCompatibleTransfersMatchingTensors) {
  rl::NetConfig Small;
  Small.Features = 8;
  Small.Length = 4;
  Small.Actions = 3;
  Small.Channels = 4;
  Small.Hidden = 8;
  rl::NetConfig Wider = Small;
  Wider.Actions = 5; // Different policy head; trunk geometry matches.

  Rng R1(1), R2(2);
  rl::ActorCritic Donor(Small, R1);
  rl::ActorCritic Net(Wider, R2);
  std::ostringstream OS;
  Donor.save(OS);

  std::istringstream IS(OS.str());
  const size_t Matched = Net.loadCompatible(IS);
  // All 10 tensors except the policy head pair (Wp, Bp) transfer.
  EXPECT_EQ(Matched, 8u);
  EXPECT_EQ(Net.parameters()[0].data(), Donor.parameters()[0].data());

  std::istringstream Garbage("not a checkpoint");
  EXPECT_EQ(Net.loadCompatible(Garbage), 0u);
}

TEST(WarmStartTest, OptimizeWarmStartTransfersFromBlob) {
  core::OptimizeConfig C = tinyConfig();
  core::Optimizer Opt(C);
  gpusim::Gpu Device;
  Rng DataRng(11);
  core::OptimizeResult Cold = Opt.optimize(
      Device, WorkloadKind::Softmax, kernels::testShape(WorkloadKind::Softmax),
      DataRng);
  ASSERT_TRUE(Cold.AutotuneValid);
  ASSERT_FALSE(Cold.PolicyBlob.empty());
  EXPECT_EQ(Cold.WarmStartTensors, 0u);

  // Same kind and shape: every tensor is geometry-compatible.
  Rng DataRng2(11);
  core::OptimizeResult Warm = Opt.optimize(
      Device, WorkloadKind::Softmax, kernels::testShape(WorkloadKind::Softmax),
      DataRng2, nullptr, &Cold.PolicyBlob);
  ASSERT_TRUE(Warm.AutotuneValid);
  EXPECT_EQ(Warm.WarmStartTensors, 10u);
}

TEST(WarmStartTest, ServiceWarmStartsFromNearestStoredPolicy) {
  // Pre-populate a policy shelf with one trained Softmax policy, then
  // serve a near-shape request from a fixed store (PersistPolicies
  // off): the job must warm-start from it, and — the determinism
  // contract with a fixed store — respond bit-identically for any
  // worker count.
  std::string Dir = freshDir("cuasmrl_warm_serve_test");
  core::OptimizeConfig C = tinyConfig();
  {
    core::Optimizer Opt(C);
    gpusim::Gpu Device;
    Rng DataRng(11);
    core::OptimizeResult Seed = Opt.optimize(
        Device, WorkloadKind::Softmax,
        kernels::testShape(WorkloadKind::Softmax), DataRng);
    ASSERT_TRUE(Seed.AutotuneValid);
    serve::PolicyStore Shelf(Dir);
    serve::DeployedEntry Meta;
    Meta.GpuType = "A100-SIM";
    Meta.Kind = WorkloadKind::Softmax;
    Meta.Shape = kernels::testShape(WorkloadKind::Softmax);
    Meta.Key = "seed-policy";
    ASSERT_TRUE(Shelf.store("seed-policy", Seed.PolicyBlob, Meta));
  }

  serve::OptimizeRequest R;
  R.Kind = WorkloadKind::Softmax;
  R.Shape = kernels::testShape(WorkloadKind::Softmax);
  R.Shape.Rows *= 2; // A near shape, not the stored one.

  auto Serve = [&](unsigned Workers) {
    serve::ServiceConfig SC;
    SC.Workers = Workers;
    SC.Seed = 11;
    SC.Defaults = C;
    SC.PolicyDir = Dir;
    SC.PersistPolicies = false; // Fixed shelf: deterministic inputs.
    serve::OptimizationService Service(gpusim::Gpu(), SC);
    serve::Ticket Tk = Service.submit(R);
    serve::ResponsePtr Resp = Tk.Response.get();
    serve::ServiceStats Stats = Service.stats();
    EXPECT_EQ(Stats.WarmStarts, 1u);
    EXPECT_GT(Stats.WarmStartTensors, 0u);
    EXPECT_EQ(Stats.PolicyStores, 0u);
    return Resp;
  };

  serve::ResponsePtr One = Serve(1);
  ASSERT_EQ(One->St, serve::OptimizeResponse::Status::Optimized);
  EXPECT_EQ(One->WarmStartedFrom, "seed-policy");
  EXPECT_GT(One->Result.WarmStartTensors, 0u);

  serve::ResponsePtr Two = Serve(2);
  EXPECT_EQ(Two->St, One->St);
  EXPECT_EQ(Two->WarmStartedFrom, One->WarmStartedFrom);
  EXPECT_EQ(Two->Result.WarmStartTensors, One->Result.WarmStartTensors);
  EXPECT_EQ(Two->Result.OptimizedUs, One->Result.OptimizedUs);
  EXPECT_EQ(Two->Result.OptimizedProg.str(), One->Result.OptimizedProg.str());
  std::filesystem::remove_all(Dir);
}

TEST(WarmStartTest, ServicePersistsPoliciesForLaterInstances) {
  // A first service instance trains cold and shelves its policy; a
  // second instance on the same directory warm-starts a near-shape
  // job from it (the restart-survival path).
  std::string Dir = freshDir("cuasmrl_policy_persist_test");
  core::OptimizeConfig C = tinyConfig();

  serve::OptimizeRequest First;
  First.Kind = WorkloadKind::Softmax;
  First.Shape = kernels::testShape(WorkloadKind::Softmax);
  {
    serve::ServiceConfig SC;
    SC.Workers = 1;
    SC.Seed = 11;
    SC.Defaults = C;
    SC.PolicyDir = Dir;
    serve::OptimizationService Service(gpusim::Gpu(), SC);
    serve::ResponsePtr Resp = Service.submit(First).Response.get();
    ASSERT_EQ(Resp->St, serve::OptimizeResponse::Status::Optimized);
    EXPECT_TRUE(Resp->WarmStartedFrom.empty()); // Nothing shelved yet.
    serve::ServiceStats Stats = Service.stats();
    EXPECT_EQ(Stats.PolicyStores, 1u);
    EXPECT_EQ(Stats.WarmStarts, 0u);
  }
  {
    serve::ServiceConfig SC;
    SC.Workers = 1;
    SC.Seed = 11;
    SC.Defaults = C;
    SC.PolicyDir = Dir;
    serve::OptimizationService Service(gpusim::Gpu(), SC);
    serve::OptimizeRequest Near = First;
    Near.Shape.Rows *= 2;
    serve::ResponsePtr Resp = Service.submit(Near).Response.get();
    ASSERT_EQ(Resp->St, serve::OptimizeResponse::Status::Optimized);
    EXPECT_FALSE(Resp->WarmStartedFrom.empty());
    EXPECT_GT(Resp->Result.WarmStartTensors, 0u);
  }
  std::filesystem::remove_all(Dir);
}

//===- tests/kernels_test.cpp - workload generator tests -----------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// Validates the six generated workloads (paper Table 2): the emitted
/// SASS parses, runs to completion without faults or deadlocks under the
/// timed machine, produces bit-identical results to the architectural
/// oracle (i.e. every control code is sufficient), and the Expert
/// schedule is at least as fast as the TritonO3 schedule — the headroom
/// the RL agent is supposed to claim.
///
//===----------------------------------------------------------------------===//

#include "gpusim/Measurement.h"
#include "kernels/Builder.h"
#include "kernels/Generators.h"
#include "kernels/Workload.h"

#include <gtest/gtest.h>

using namespace cuasmrl;
using namespace cuasmrl::kernels;

namespace {

struct StyledRun {
  bool Valid = false;
  std::string Fault;
  uint64_t Cycles = 0;
  std::vector<uint32_t> Output;
};

StyledRun runOnce(WorkloadKind Kind, ScheduleStyle Style,
                  gpusim::RunMode Mode, const TileConfig *CfgOverride =
                      nullptr) {
  gpusim::Gpu Device;
  Rng DataRng(7);
  TileConfig Cfg = CfgOverride ? *CfgOverride
                               : candidateConfigs(Kind).front();
  WorkloadShape Shape = testShape(Kind);
  BuiltKernel K = buildKernel(Device, Kind, Shape, Cfg, Style, DataRng);
  gpusim::RunResult R = Device.run(K.Prog, K.Launch, Mode);
  StyledRun Out;
  Out.Valid = R.Valid;
  Out.Fault = R.FaultReason;
  Out.Cycles = R.Cycles;
  Out.Output = K.readOutput(Device);
  return Out;
}

class WorkloadTest : public ::testing::TestWithParam<WorkloadKind> {};

} // namespace

TEST_P(WorkloadTest, TritonScheduleRunsValid) {
  StyledRun R = runOnce(GetParam(), ScheduleStyle::TritonO3,
                        gpusim::RunMode::Timed);
  EXPECT_TRUE(R.Valid) << R.Fault;
  EXPECT_GT(R.Cycles, 0u);
}

TEST_P(WorkloadTest, ExpertScheduleRunsValid) {
  StyledRun R = runOnce(GetParam(), ScheduleStyle::Expert,
                        gpusim::RunMode::Timed);
  EXPECT_TRUE(R.Valid) << R.Fault;
}

/// Timed execution must agree bit-for-bit with the oracle: the emitted
/// control codes leave no hazard unprotected.
TEST_P(WorkloadTest, TimedMatchesOracle) {
  for (ScheduleStyle Style :
       {ScheduleStyle::TritonO3, ScheduleStyle::Expert}) {
    StyledRun Timed = runOnce(GetParam(), Style, gpusim::RunMode::Timed);
    StyledRun Ref = runOnce(GetParam(), Style, gpusim::RunMode::Oracle);
    ASSERT_TRUE(Timed.Valid) << Timed.Fault;
    ASSERT_TRUE(Ref.Valid) << Ref.Fault;
    ASSERT_EQ(Timed.Output.size(), Ref.Output.size());
    size_t Mismatches = 0;
    for (size_t I = 0; I < Timed.Output.size(); ++I)
      if (Timed.Output[I] != Ref.Output[I])
        ++Mismatches;
    EXPECT_EQ(Mismatches, 0u)
        << "style " << (Style == ScheduleStyle::Expert ? "expert" : "triton")
        << ": " << Mismatches << "/" << Timed.Output.size()
        << " words differ";
  }
}

/// Output must actually depend on the inputs (no dead stores).
TEST_P(WorkloadTest, OutputDependsOnInputs) {
  gpusim::Gpu Device;
  Rng DataRng(7);
  WorkloadKind Kind = GetParam();
  TileConfig Cfg = candidateConfigs(Kind).front();
  WorkloadShape Shape = testShape(Kind);
  BuiltKernel K = buildKernel(Device, Kind, Shape, Cfg,
                              ScheduleStyle::TritonO3, DataRng);
  gpusim::RunResult R1 = Device.run(K.Prog, K.Launch, gpusim::RunMode::Oracle);
  ASSERT_TRUE(R1.Valid) << R1.FaultReason;
  std::vector<uint32_t> Out1 = K.readOutput(Device);

  Rng Other(99);
  K.randomizeInputs(Device, Other);
  gpusim::RunResult R2 = Device.run(K.Prog, K.Launch, gpusim::RunMode::Oracle);
  ASSERT_TRUE(R2.Valid);
  std::vector<uint32_t> Out2 = K.readOutput(Device);
  EXPECT_NE(Out1, Out2);
}

/// The Expert placement of the same instruction multiset must be faster:
/// this is the headroom the RL agent mines (paper §5.3: 2%..26%).
TEST_P(WorkloadTest, ExpertFasterThanTriton) {
  StyledRun Triton = runOnce(GetParam(), ScheduleStyle::TritonO3,
                             gpusim::RunMode::Timed);
  StyledRun Expert = runOnce(GetParam(), ScheduleStyle::Expert,
                             gpusim::RunMode::Timed);
  ASSERT_TRUE(Triton.Valid && Expert.Valid);
  EXPECT_LT(Expert.Cycles, Triton.Cycles)
      << "expert=" << Expert.Cycles << " triton=" << Triton.Cycles;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadTest, ::testing::ValuesIn(allWorkloads()),
    [](const ::testing::TestParamInfo<WorkloadKind> &Info) {
      std::string Name = workloadName(Info.param);
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

//===----------------------------------------------------------------------===//
// Configurations
//===----------------------------------------------------------------------===//

TEST(Configs, AllCandidatesRunValid) {
  // Every advertised configuration must produce a working kernel on the
  // paper shape (the autotuner measures them all).
  for (WorkloadKind Kind :
       {WorkloadKind::MmLeakyRelu, WorkloadKind::Softmax}) {
    WorkloadShape Shape = paperShape(Kind);
    for (const TileConfig &Cfg : candidateConfigs(Kind)) {
      if (!configFits(Kind, Shape, Cfg))
        continue;
      gpusim::Gpu Device;
      Rng DataRng(3);
      BuiltKernel K = buildKernel(Device, Kind, Shape, Cfg,
                                  ScheduleStyle::TritonO3, DataRng);
      gpusim::RunResult R =
          Device.run(K.Prog, K.Launch, gpusim::RunMode::Timed,
                     /*MaxBlocks=*/Device.residentBlocks(K.Launch));
      EXPECT_TRUE(R.Valid) << workloadName(Kind) << " " << Cfg.str() << ": "
                           << R.FaultReason;
    }
  }
}

TEST(Configs, ConfigChoiceMattersForThroughput) {
  // §3.1: kernel configurations can be worth up to ~2x.
  WorkloadShape Shape = paperShape(WorkloadKind::MmLeakyRelu);
  uint64_t Best = ~0ull, Worst = 0;
  for (const TileConfig &Cfg : candidateConfigs(WorkloadKind::MmLeakyRelu)) {
    if (!configFits(WorkloadKind::MmLeakyRelu, Shape, Cfg))
      continue;
    gpusim::Gpu Device;
    Rng DataRng(3);
    BuiltKernel K = buildKernel(Device, WorkloadKind::MmLeakyRelu, Shape,
                                Cfg, ScheduleStyle::TritonO3, DataRng);
    gpusim::RunResult R =
        Device.run(K.Prog, K.Launch, gpusim::RunMode::Timed,
                   Device.residentBlocks(K.Launch));
    ASSERT_TRUE(R.Valid) << Cfg.str() << ": " << R.FaultReason;
    Best = std::min(Best, R.Cycles);
    Worst = std::max(Worst, R.Cycles);
  }
  EXPECT_GT(static_cast<double>(Worst) / Best, 1.3);
}

TEST(Configs, FitRejectsOversizedTiles) {
  WorkloadShape Small = testShape(WorkloadKind::MmLeakyRelu); // M=N=64.
  TileConfig Big{128, 64, 32, 4, 2};
  EXPECT_FALSE(configFits(WorkloadKind::MmLeakyRelu, Small, Big));
  TileConfig Fits{64, 64, 32, 4, 2};
  EXPECT_TRUE(configFits(WorkloadKind::MmLeakyRelu, Small, Fits));
}

//===----------------------------------------------------------------------===//
// Baselines
//===----------------------------------------------------------------------===//

TEST(Baselines, TorchCompositionsRunValid) {
  for (WorkloadKind Kind : allWorkloads()) {
    gpusim::Gpu Device;
    Rng DataRng(5);
    WorkloadShape Shape = testShape(Kind);
    std::vector<BuiltKernel> Seq =
        buildTorchComposition(Device, Kind, Shape, DataRng);
    ASSERT_FALSE(Seq.empty()) << workloadName(Kind);
    for (const BuiltKernel &K : Seq) {
      gpusim::RunResult R =
          Device.run(K.Prog, K.Launch, gpusim::RunMode::Timed,
                     Device.residentBlocks(K.Launch));
      EXPECT_TRUE(R.Valid) << K.Name << ": " << R.FaultReason;
    }
  }
}

TEST(Baselines, TorchUnfusedHasMoreKernels) {
  gpusim::Gpu Device;
  Rng DataRng(5);
  EXPECT_EQ(buildTorchComposition(Device, WorkloadKind::Bmm,
                                  testShape(WorkloadKind::Bmm), DataRng)
                .size(),
            1u);
  EXPECT_GE(buildTorchComposition(Device, WorkloadKind::Softmax,
                                  testShape(WorkloadKind::Softmax), DataRng)
                .size(),
            3u);
  EXPECT_GE(buildTorchComposition(Device, WorkloadKind::RmsNorm,
                                  testShape(WorkloadKind::RmsNorm), DataRng)
                .size(),
            4u);
}

TEST(Baselines, CutlassDefaultMuchSlower) {
  // §5.3 reports ~10x on hardware; our latency-compressed simulator
  // shows the same direction at a smaller magnitude (see EXPERIMENTS.md).
  WorkloadShape Shape = paperShape(WorkloadKind::MmLeakyRelu);
  gpusim::Gpu D1, D2;
  Rng R1(3), R2(3);
  BuiltKernel Triton =
      buildKernel(D1, WorkloadKind::MmLeakyRelu, Shape,
                  candidateConfigs(WorkloadKind::MmLeakyRelu).front(),
                  ScheduleStyle::TritonO3, R1);
  BuiltKernel Cutlass =
      buildCutlassDefault(D2, WorkloadKind::MmLeakyRelu, Shape, R2);
  gpusim::RunResult Rt =
      D1.run(Triton.Prog, Triton.Launch, gpusim::RunMode::Timed,
             D1.residentBlocks(Triton.Launch));
  gpusim::RunResult Rc =
      D2.run(Cutlass.Prog, Cutlass.Launch, gpusim::RunMode::Timed,
             D2.residentBlocks(Cutlass.Launch));
  ASSERT_TRUE(Rt.Valid) << Rt.FaultReason;
  ASSERT_TRUE(Rc.Valid) << Rc.FaultReason;
  EXPECT_GT(static_cast<double>(Rc.Cycles) / Rt.Cycles, 1.5);
}

//===----------------------------------------------------------------------===//
// Structural properties of the generated SASS
//===----------------------------------------------------------------------===//

TEST(Structure, TritonContainsPaperArtifacts) {
  WorkloadShape Shape = testShape(WorkloadKind::MmLeakyRelu);
  GenResult Gen =
      genGemm(Shape, candidateConfigs(WorkloadKind::MmLeakyRelu).front(),
              ScheduleStyle::TritonO3, GemmEpilogue::LeakyRelu);
  // Figure 13 artifact: a dead predicated LDS.
  EXPECT_NE(Gen.Text.find("@!PT LDS"), std::string::npos);
  // Figure 9 artifact: a yield-flagged LDGSTS (the reuse breaker).
  EXPECT_NE(Gen.Text.find(":Y:S02] @P3 LDGSTS"), std::string::npos);
  // Reuse hints on tensor-core operands.
  EXPECT_NE(Gen.Text.find(".reuse"), std::string::npos);
}

TEST(Structure, KernelsAreRealisticallySized) {
  // Paper §2.6: kernels consist of hundreds-to-thousands of SASS lines.
  WorkloadShape Shape = paperShape(WorkloadKind::MmLeakyRelu);
  gpusim::Gpu Device;
  Rng DataRng(3);
  BuiltKernel K = buildKernel(Device, WorkloadKind::MmLeakyRelu, Shape,
                              candidateConfigs(WorkloadKind::MmLeakyRelu)
                                  .front(),
                              ScheduleStyle::TritonO3, DataRng);
  EXPECT_GT(K.Prog.instrCount(), 80u);
}

TEST(Structure, RandomizeInputsChangesBuffers) {
  gpusim::Gpu Device;
  Rng DataRng(3);
  BuiltKernel K = buildKernel(Device, WorkloadKind::Softmax,
                              testShape(WorkloadKind::Softmax),
                              candidateConfigs(WorkloadKind::Softmax)
                                  .front(),
                              ScheduleStyle::TritonO3, DataRng);
  uint32_t Before = Device.globalMemory().readValue<uint32_t>(
      K.Inputs[0].first);
  Rng Other(1234);
  K.randomizeInputs(Device, Other);
  uint32_t After = Device.globalMemory().readValue<uint32_t>(
      K.Inputs[0].first);
  EXPECT_NE(Before, After);
}

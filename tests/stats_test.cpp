//===- tests/stats_test.cpp - stats subsystem unit tests ------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability contract: BenchReport documents round-trip
/// byte-stably through the JSON layer, tolerate unknown fields (the
/// forward-compatibility rule) while rejecting foreign schema
/// versions, counter captures are bit-exact through the visitor-driven
/// serializers, and the StatsSnapshotLogger survives concurrent
/// start/log/stop traffic (the test the TSan CI job leans on).
///
//===----------------------------------------------------------------------===//

#include "serve/OptimizationService.h"
#include "stats/BenchReport.h"
#include "stats/Json.h"
#include "stats/SnapshotLogger.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

using namespace cuasmrl;
using namespace cuasmrl::stats;

namespace {

//===----------------------------------------------------------------------===//
// JSON layer
//===----------------------------------------------------------------------===//

TEST(JsonTest, RoundTripIsByteStable) {
  const char *Text = "{\"b\": 1, \"a\": [true, null, \"x\\n\"], "
                     "\"n\": -2.5, \"big\": 123456789012345}";
  Expected<JsonValue> First = JsonValue::parse(Text);
  ASSERT_TRUE(First.hasValue()) << First.error().str();
  std::string Once = First->dump(2);
  Expected<JsonValue> Second = JsonValue::parse(Once);
  ASSERT_TRUE(Second.hasValue()) << Second.error().str();
  EXPECT_EQ(Once, Second->dump(2));
  // Key order is insertion order, not sorted: "b" stays first.
  ASSERT_GE(Second->members().size(), 1u);
  EXPECT_EQ(Second->members()[0].first, "b");
}

TEST(JsonTest, IntegerCountersKeepExactValues) {
  // Counters must compare exactly after a serialize/parse cycle — no
  // decimal point, no exponent drift.
  JsonValue Doc = JsonValue::object();
  Doc.set("counter", JsonValue(static_cast<uint64_t>(987654321098ull)));
  std::string Line = Doc.dump(0);
  EXPECT_EQ(Line, "{\"counter\": 987654321098}");
  Expected<JsonValue> Back = JsonValue::parse(Line);
  ASSERT_TRUE(Back.hasValue());
  const JsonValue *C = Back->find("counter");
  ASSERT_NE(C, nullptr);
  EXPECT_TRUE(C->intLike());
  EXPECT_EQ(static_cast<uint64_t>(C->number()), 987654321098ull);
}

TEST(JsonTest, MalformedInputIsRejected) {
  for (const char *Bad : {"{", "{\"a\":}", "[1,]", "tru", "\"unterminated",
                          "{\"a\":1} trailing"}) {
    Expected<JsonValue> R = JsonValue::parse(Bad);
    EXPECT_FALSE(R.hasValue()) << "accepted: " << Bad;
  }
}

//===----------------------------------------------------------------------===//
// BenchReport schema
//===----------------------------------------------------------------------===//

/// Distinct nonzero value per counter field so a swapped or dropped
/// field cannot cancel out in the round-trip comparison.
gpusim::PerfCounters distinctCounters(uint64_t Base) {
  gpusim::PerfCounters C;
  uint64_t Next = Base;
  gpusim::visitCounters(C, [&](const char *, uint64_t &V) { V = Next++; });
  return C;
}

serve::ServiceStats distinctStats() {
  serve::ServiceStats S;
  double Next = 100.0;
  serve::visitServiceCounters(S, [&](const char *, auto &V) {
    V = static_cast<std::decay_t<decltype(V)>>(Next);
    Next += 1.0;
  });
  S.TotalJobWallMs = 12.625; // Exactly representable double.
  S.Counters = distinctCounters(1000);
  return S;
}

RunMeta testMeta() {
  RunMeta M;
  M.GitSha = "deadbeef";
  M.Build = "Release";
  M.Timestamp = "2026-08-08T00:00:00Z";
  M.HardwareThreads = 8;
  M.FastMode = true;
  return M;
}

BenchReport fullReport() {
  BenchReport Rep("unit_test_bench", testMeta());
  Rep.addMetric("throughput", 1234.5, "ops/s");
  Rep.addMetric("latency", 10.25, "ms", /*HigherIsBetter=*/false);
  Rep.setSimCounters(distinctCounters(1));
  Rep.setServiceStats(distinctStats());
  JsonValue Extra = JsonValue::object();
  Extra.set("note", JsonValue("free-form"));
  Rep.setExtra(std::move(Extra));
  return Rep;
}

void expectSameCounters(const gpusim::PerfCounters &A,
                        const gpusim::PerfCounters &B) {
  gpusim::visitCounterFields(
      const_cast<gpusim::PerfCounters &>(A),
      const_cast<gpusim::PerfCounters &>(B),
      [](const char *Name, const uint64_t &X, const uint64_t &Y) {
        EXPECT_EQ(X, Y) << Name;
      });
}

TEST(BenchReportTest, SerializeParseRoundTrip) {
  BenchReport Rep = fullReport();
  std::string Text = Rep.serialize();
  Expected<BenchReport> Back = BenchReport::parse(Text);
  ASSERT_TRUE(Back.hasValue()) << Back.error().str();

  EXPECT_EQ(Back->bench(), "unit_test_bench");
  EXPECT_EQ(Back->meta().GitSha, "deadbeef");
  EXPECT_EQ(Back->meta().Build, "Release");
  EXPECT_EQ(Back->meta().Timestamp, "2026-08-08T00:00:00Z");
  EXPECT_EQ(Back->meta().HardwareThreads, 8u);
  EXPECT_TRUE(Back->meta().FastMode);

  ASSERT_EQ(Back->metrics().size(), 2u);
  const Metric *T = Back->findMetric("throughput");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->Value, 1234.5);
  EXPECT_EQ(T->Unit, "ops/s");
  EXPECT_TRUE(T->HigherIsBetter);
  const Metric *L = Back->findMetric("latency");
  ASSERT_NE(L, nullptr);
  EXPECT_EQ(L->Value, 10.25);
  EXPECT_FALSE(L->HigherIsBetter);

  ASSERT_TRUE(Back->simCounters().has_value());
  expectSameCounters(*Back->simCounters(), distinctCounters(1));

  ASSERT_TRUE(Back->serviceStats().has_value());
  serve::ServiceStats Want = distinctStats();
  serve::visitServiceCounters(
      *Back->serviceStats(), [&](const char *Name, const auto &V) {
        serve::visitServiceCounters(Want, [&](const char *N2, const auto &W) {
          if (std::string(Name) == N2) {
            EXPECT_EQ(static_cast<double>(V), static_cast<double>(W)) << Name;
          }
        });
      });
  expectSameCounters(Back->serviceStats()->Counters, Want.Counters);

  ASSERT_TRUE(Back->extra().has_value());
  const JsonValue *Note = Back->extra()->find("note");
  ASSERT_NE(Note, nullptr);
  EXPECT_EQ(Note->str(), "free-form");

  // The full cycle is byte-stable: re-serializing the parsed report
  // reproduces the original document exactly.
  EXPECT_EQ(Back->serialize(), Text);
}

TEST(BenchReportTest, SerializeIsDeterministic) {
  // Two structurally identical reports produce identical bytes —
  // the property bench_compare.py and artifact diffing rely on.
  EXPECT_EQ(fullReport().serialize(), fullReport().serialize());
}

TEST(BenchReportTest, UnknownFieldsAreTolerated) {
  BenchReport Rep = fullReport();
  JsonValue Doc = Rep.toJson();
  // Additions at every level must not break an older parser.
  Doc.set("future_top_level", JsonValue("ignored"));
  JsonValue *MetaObj = const_cast<JsonValue *>(Doc.find("meta"));
  ASSERT_NE(MetaObj, nullptr);
  MetaObj->set("future_meta_field", JsonValue(42));
  JsonValue *Metrics = const_cast<JsonValue *>(Doc.find("metrics"));
  ASSERT_NE(Metrics, nullptr);
  JsonValue *First = const_cast<JsonValue *>(Metrics->find("throughput"));
  ASSERT_NE(First, nullptr);
  First->set("future_metric_field", JsonValue(true));
  JsonValue *Sim = const_cast<JsonValue *>(Doc.find("sim_counters"));
  ASSERT_NE(Sim, nullptr);
  Sim->set("FutureCounter", JsonValue(static_cast<uint64_t>(7)));

  Expected<BenchReport> Back = BenchReport::fromJson(Doc);
  ASSERT_TRUE(Back.hasValue()) << Back.error().str();
  EXPECT_EQ(Back->bench(), "unit_test_bench");
  ASSERT_NE(Back->findMetric("throughput"), nullptr);
  EXPECT_EQ(Back->findMetric("throughput")->Value, 1234.5);
  expectSameCounters(*Back->simCounters(), distinctCounters(1));
}

TEST(BenchReportTest, WrongSchemaVersionIsRejected) {
  JsonValue Doc = fullReport().toJson();
  Doc.set("schema_version",
          JsonValue(static_cast<int64_t>(BenchReport::kSchemaVersion + 1)));
  Expected<BenchReport> Bumped = BenchReport::fromJson(Doc);
  EXPECT_FALSE(Bumped.hasValue());

  // A missing version is just as foreign as a wrong one.
  JsonValue Full = fullReport().toJson();
  JsonValue NoVersion = JsonValue::object();
  for (const auto &M : Full.members())
    if (M.first != "schema_version")
      NoVersion.set(M.first, M.second);
  EXPECT_FALSE(BenchReport::fromJson(NoVersion).hasValue());

  Expected<BenchReport> Garbage = BenchReport::parse("{not json");
  EXPECT_FALSE(Garbage.hasValue());
}

TEST(BenchReportTest, AddMetricOverwritesByName) {
  BenchReport Rep("b", RunMeta());
  Rep.addMetric("m", 1.0, "x");
  Rep.addMetric("m", 2.0, "ms", /*HigherIsBetter=*/false);
  ASSERT_EQ(Rep.metrics().size(), 1u);
  EXPECT_EQ(Rep.metrics()[0].Value, 2.0);
  EXPECT_EQ(Rep.metrics()[0].Unit, "ms");
  EXPECT_FALSE(Rep.metrics()[0].HigherIsBetter);
}

TEST(BenchReportTest, CounterCaptureIsVisitorComplete) {
  // Every field visitCounters enumerates survives the JSON cycle; a
  // field added to PerfCounters (and the visitor) round-trips with no
  // serializer change, by construction.
  gpusim::PerfCounters C = distinctCounters(17);
  gpusim::PerfCounters Back = countersFromJson(countersToJson(C));
  expectSameCounters(Back, C);

  serve::ServiceStats S = distinctStats();
  serve::ServiceStats SBack = serviceStatsFromJson(serviceStatsToJson(S));
  EXPECT_EQ(SBack.TotalJobWallMs, S.TotalJobWallMs);
  EXPECT_EQ(SBack.Submitted, S.Submitted);
  EXPECT_EQ(SBack.DeployedKeys, S.DeployedKeys);
  expectSameCounters(SBack.Counters, S.Counters);

  // NetStats rides the same visitor machinery.
  net::NetStats N;
  uint64_t Seed = 101;
  net::visitNetCounters(N, [&](const char *, uint64_t &V) { V = Seed++; });
  net::NetStats NBack = netStatsFromJson(netStatsToJson(N));
  net::visitNetCounters(
      NBack, [&, I = uint64_t(101)](const char *Name, uint64_t &V) mutable {
        EXPECT_EQ(V, I++) << Name;
      });
}

TEST(BenchReportTest, NetStatsSectionRoundTrips) {
  BenchReport Rep("net_bench", testMeta());
  Rep.addMetric("rtt", 0.5, "ms", /*HigherIsBetter=*/false);
  net::NetStats N;
  N.ConnectionsAccepted = 3;
  N.FramesReceived = 64;
  N.DecodeErrors = 2;
  N.ResponsesSent = 64;
  Rep.setNetStats(N);

  Expected<BenchReport> Back = BenchReport::parse(Rep.serialize());
  ASSERT_TRUE(static_cast<bool>(Back)) << Back.error().message();
  ASSERT_TRUE(Back->netStats().has_value());
  EXPECT_EQ(Back->netStats()->ConnectionsAccepted, 3u);
  EXPECT_EQ(Back->netStats()->FramesReceived, 64u);
  EXPECT_EQ(Back->netStats()->DecodeErrors, 2u);
  EXPECT_EQ(Back->netStats()->ResponsesSent, 64u);
  // A report without the section parses to nullopt, not zeroes.
  BenchReport Bare("bare", testMeta());
  Bare.addMetric("m", 1.0, "x");
  Expected<BenchReport> BareBack = BenchReport::parse(Bare.serialize());
  ASSERT_TRUE(static_cast<bool>(BareBack));
  EXPECT_FALSE(BareBack->netStats().has_value());
}

//===----------------------------------------------------------------------===//
// StatsSnapshotLogger
//===----------------------------------------------------------------------===//

JsonValue tickingProvider(std::atomic<uint64_t> &Ticks) {
  JsonValue V = JsonValue::object();
  V.set("tick", JsonValue(Ticks.fetch_add(1) + 1));
  return V;
}

/// Parses every line of a JSONL capture, asserting each is a valid
/// snapshot document, and returns the "seq" values in file order.
std::vector<uint64_t> parseSnapshotSeqs(const std::string &Capture) {
  std::vector<uint64_t> Seqs;
  std::istringstream In(Capture);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    Expected<JsonValue> Doc = JsonValue::parse(Line);
    EXPECT_TRUE(Doc.hasValue()) << Line;
    if (!Doc.hasValue())
      continue;
    const JsonValue *Seq = Doc->find("seq");
    const JsonValue *Elapsed = Doc->find("elapsed_ms");
    const JsonValue *Stats = Doc->find("stats");
    EXPECT_NE(Seq, nullptr) << Line;
    EXPECT_NE(Elapsed, nullptr) << Line;
    EXPECT_NE(Stats, nullptr) << Line;
    if (Stats) {
      EXPECT_TRUE(Stats->isObject());
    }
    if (Seq)
      Seqs.push_back(static_cast<uint64_t>(Seq->number()));
  }
  return Seqs;
}

TEST(SnapshotLoggerTest, StopWritesTerminalSnapshot) {
  std::atomic<uint64_t> Ticks{0};
  StatsSnapshotLogger::Config C;
  C.Interval = std::chrono::hours(1); // Never fires periodically.
  StatsSnapshotLogger Logger([&] { return tickingProvider(Ticks); }, C);
  std::ostringstream Out;
  Logger.setSink(&Out);

  ASSERT_TRUE(Logger.start());
  EXPECT_TRUE(Logger.running());
  Logger.stop();
  EXPECT_FALSE(Logger.running());

  // Even with no periodic sample, the log ends with the final state.
  std::vector<uint64_t> Seqs = parseSnapshotSeqs(Out.str());
  ASSERT_EQ(Seqs.size(), 1u);
  EXPECT_EQ(Seqs[0], 0u);
  EXPECT_EQ(Logger.snapshotsWritten(), 1u);
}

TEST(SnapshotLoggerTest, PeriodicSamplesHaveMonotonicSeq) {
  std::atomic<uint64_t> Ticks{0};
  StatsSnapshotLogger::Config C;
  C.Interval = std::chrono::milliseconds(5);
  StatsSnapshotLogger Logger([&] { return tickingProvider(Ticks); }, C);
  std::ostringstream Out;
  Logger.setSink(&Out);

  ASSERT_TRUE(Logger.start());
  // Generous wait: even a heavily loaded runner lands a few periods.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  Logger.stop();

  std::vector<uint64_t> Seqs = parseSnapshotSeqs(Out.str());
  ASSERT_GE(Seqs.size(), 2u); // At least one periodic + the terminal.
  for (size_t I = 0; I < Seqs.size(); ++I)
    EXPECT_EQ(Seqs[I], I); // Strictly increasing from zero, no gaps.
  EXPECT_EQ(Logger.snapshotsWritten(), Seqs.size());
}

TEST(SnapshotLoggerTest, LogNowIsIndependentOfSchedule) {
  std::atomic<uint64_t> Ticks{0};
  StatsSnapshotLogger::Config C;
  C.Interval = std::chrono::hours(1);
  StatsSnapshotLogger Logger([&] { return tickingProvider(Ticks); }, C);
  std::ostringstream Out;
  Logger.setSink(&Out);

  ASSERT_TRUE(Logger.start());
  Logger.logNow();
  Logger.logNow();
  Logger.logNow();
  Logger.stop(); // +1 terminal snapshot.
  EXPECT_EQ(parseSnapshotSeqs(Out.str()).size(), 4u);
}

TEST(SnapshotLoggerTest, StartAndStopAreIdempotent) {
  std::atomic<uint64_t> Ticks{0};
  StatsSnapshotLogger::Config C;
  C.Interval = std::chrono::hours(1);
  StatsSnapshotLogger Logger([&] { return tickingProvider(Ticks); }, C);
  std::ostringstream Out;
  Logger.setSink(&Out);

  ASSERT_TRUE(Logger.start());
  EXPECT_FALSE(Logger.start()); // Second start is refused, not fatal.
  Logger.stop();
  Logger.stop(); // Second stop is a no-op.
  EXPECT_EQ(Logger.snapshotsWritten(), 1u);

  // The logger is restartable after a full stop.
  ASSERT_TRUE(Logger.start());
  Logger.stop();
  EXPECT_EQ(Logger.snapshotsWritten(), 2u);
}

// The TSan target: hammer one logger from several threads mixing
// start / stop / logNow / running / snapshotsWritten while the
// periodic worker also runs. Correctness bar: no data race, no crash,
// and the captured stream is still valid line-delimited JSON with
// unique seq values.
TEST(SnapshotLoggerTest, ConcurrentStartLogStopIsSafe) {
  std::atomic<uint64_t> Ticks{0};
  StatsSnapshotLogger::Config C;
  C.Interval = std::chrono::milliseconds(1);
  StatsSnapshotLogger Logger([&] { return tickingProvider(Ticks); }, C);
  std::ostringstream Out;
  Logger.setSink(&Out);

  constexpr unsigned Threads = 4;
  constexpr unsigned Rounds = 25;
  std::atomic<bool> Go{false};
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T) {
    Pool.emplace_back([&, T] {
      while (!Go.load())
        std::this_thread::yield();
      for (unsigned R = 0; R < Rounds; ++R) {
        switch ((T + R) % 4) {
        case 0:
          Logger.start();
          break;
        case 1:
          if (Logger.running())
            Logger.logNow();
          break;
        case 2:
          Logger.stop();
          break;
        case 3:
          (void)Logger.snapshotsWritten();
          break;
        }
      }
    });
  }
  Go.store(true);
  for (std::thread &T : Pool)
    T.join();
  Logger.stop();
  EXPECT_FALSE(Logger.running());

  std::vector<uint64_t> Seqs = parseSnapshotSeqs(Out.str());
  EXPECT_EQ(Seqs.size(), Logger.snapshotsWritten());
  for (size_t I = 0; I < Seqs.size(); ++I)
    EXPECT_EQ(Seqs[I], I);
}

//===----------------------------------------------------------------------===//
// Live service integration
//===----------------------------------------------------------------------===//

core::OptimizeConfig tinyConfig() {
  core::OptimizeConfig C;
  C.Ppo.TotalSteps = 32;
  C.Ppo.RolloutLen = 16;
  C.Ppo.MiniBatches = 2;
  C.Ppo.Epochs = 2;
  C.Ppo.Channels = 4;
  C.Ppo.Hidden = 16;
  C.Game.EpisodeLength = 8;
  C.Game.Measure.WarmupIters = 1;
  C.Game.Measure.RepeatIters = 1;
  C.Game.Measure.NoiseStddev = 0.001;
  C.AutotuneMeasure.WarmupIters = 1;
  C.AutotuneMeasure.RepeatIters = 1;
  C.AutotuneMeasure.NoiseStddev = 0.0;
  C.ProbTestRounds = 1;
  return C;
}

TEST(SnapshotLoggerTest, CapturesLiveServiceTrajectory) {
  gpusim::Gpu Device;
  serve::ServiceConfig SC;
  SC.Workers = 2;
  SC.Seed = 11;
  SC.Defaults = tinyConfig();
  serve::OptimizationService Service(Device, SC);

  StatsSnapshotLogger::Config C;
  C.Interval = std::chrono::milliseconds(2);
  StatsSnapshotLogger Logger(
      [&Service] { return serviceStatsToJson(Service.stats()); }, C);
  std::ostringstream Out;
  Logger.setSink(&Out);
  ASSERT_TRUE(Logger.start());

  serve::OptimizeRequest R;
  R.Kind = kernels::WorkloadKind::Softmax;
  R.Shape = kernels::testShape(kernels::WorkloadKind::Softmax);
  Service.submit(R);
  Service.drain();
  Logger.stop();
  Service.shutdown();

  // The terminal snapshot is the drained service: the real counters
  // parse back through the schema and show the completed job.
  std::istringstream In(Out.str());
  std::string Line, Last;
  while (std::getline(In, Line))
    if (!Line.empty())
      Last = Line;
  ASSERT_FALSE(Last.empty());
  Expected<JsonValue> Doc = JsonValue::parse(Last);
  ASSERT_TRUE(Doc.hasValue()) << Last;
  const JsonValue *Stats = Doc->find("stats");
  ASSERT_NE(Stats, nullptr);
  serve::ServiceStats Final = serviceStatsFromJson(*Stats);
  EXPECT_EQ(Final.Submitted, 1u);
  EXPECT_EQ(Final.Completed, 1u);
  EXPECT_EQ(Final.QueuedNow, 0u);
  EXPECT_EQ(Final.RunningNow, 0u);
  EXPECT_GT(Final.Counters.ElapsedCycles, 0u);
}

} // namespace

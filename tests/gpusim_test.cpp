//===- tests/gpusim_test.cpp - GPU simulator tests -----------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// End-to-end checks of the simulated device: functional correctness of
/// hand-written SASS kernels against CPU references, hazard-faithful
/// stale reads (the mechanism behind the paper's §4.3 dependency-based
/// microbenchmarks), scoreboard waits, block barriers, the LDGSTS
/// ordering idiosyncrasy (§3.5) and the operand reuse cache (§5.7.1).
///
//===----------------------------------------------------------------------===//

#include "gpusim/Fp16.h"
#include "gpusim/Gpu.h"
#include "gpusim/Measurement.h"
#include "sass/Parser.h"
#include "sass/Program.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>

using namespace cuasmrl;
using namespace cuasmrl::gpusim;

namespace {

sass::Program parseOrDie(const std::string &Text,
                         const std::string &Name = "k") {
  Expected<sass::Program> P = sass::Parser::parseProgram(Text, Name);
  EXPECT_TRUE(P.hasValue()) << (P.hasValue() ? "" : P.error().str());
  return P.hasValue() ? P.takeValue() : sass::Program();
}

/// Single-warp vector add over N elements: out[i] = x[i] + y[i].
const char *VecAddText = R"(
  [B------:R-:W-:-:S01] MOV R2, c[0x0][0x160] ;
  [B------:R-:W-:-:S01] MOV R3, c[0x0][0x164] ;
  [B------:R-:W-:-:S01] MOV R4, c[0x0][0x168] ;
  [B------:R-:W-:-:S01] MOV R5, c[0x0][0x16c] ;
  [B------:R-:W-:-:S01] MOV R6, c[0x0][0x170] ;
  [B------:R-:W-:-:S04] MOV R7, c[0x0][0x174] ;
  [B------:R-:W-:-:S04] MOV R8, c[0x0][0x178] ;
  [B------:R-:W-:-:S04] MOV R9, 0x0 ;
.L_LOOP:
  [B------:R-:W-:-:S05] ISETP.GE.AND P0, PT, R9, R8, PT ;
  [B------:R-:W-:-:S01] @P0 BRA `(.L_EXIT) ;
  [B------:R-:W-:-:S05] IMAD.WIDE R10, R9, 0x4, R2 ;
  [B------:R-:W0:-:S01] LDG.E R12, [R10.64] ;
  [B------:R-:W-:-:S05] IMAD.WIDE R14, R9, 0x4, R4 ;
  [B------:R-:W1:-:S01] LDG.E R13, [R14.64] ;
  [B------:R-:W-:-:S05] IMAD.WIDE R16, R9, 0x4, R6 ;
  [B01----:R-:W-:-:S05] FADD R18, R12, R13 ;
  [B------:R-:W-:-:S01] STG.E [R16.64], R18 ;
  [B------:R-:W-:-:S04] IADD3 R9, R9, 0x1, RZ ;
  [B------:R-:W-:-:S01] BRA `(.L_LOOP) ;
.L_EXIT:
  [B------:R-:W-:-:S01] EXIT ;
)";

struct VecAddSetup {
  Gpu Device;
  KernelLaunch Launch;
  uint64_t XAddr, YAddr, OutAddr;
  unsigned N;

  explicit VecAddSetup(unsigned N) : N(N) {
    XAddr = Device.globalMemory().allocate(4 * N);
    YAddr = Device.globalMemory().allocate(4 * N);
    OutAddr = Device.globalMemory().allocate(4 * N);
    for (unsigned I = 0; I < N; ++I) {
      Device.globalMemory().writeValue<float>(XAddr + 4 * I, 1.0f * I);
      Device.globalMemory().writeValue<float>(YAddr + 4 * I, 0.5f * I);
    }
    Launch.GridX = 1;
    Launch.WarpsPerBlock = 1;
    Launch.addParam64(XAddr);
    Launch.addParam64(YAddr);
    Launch.addParam64(OutAddr);
    Launch.addParam32(N);
  }

  bool outputCorrect() const {
    for (unsigned I = 0; I < N; ++I) {
      float Got = Device.globalMemory().readValue<float>(OutAddr + 4 * I);
      if (Got != 1.5f * I)
        return false;
    }
    return true;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Fp16 helpers
//===----------------------------------------------------------------------===//

TEST(Fp16, RoundTripExactValues) {
  for (float F : {0.0f, 1.0f, -2.0f, 0.5f, 1024.0f, -0.25f})
    EXPECT_EQ(fp16ToFloat(floatToFp16(F)), F);
}

TEST(Fp16, PackUnpack) {
  uint32_t Packed = packHalf2(1.5f, -3.0f);
  EXPECT_EQ(unpackLo(Packed), 1.5f);
  EXPECT_EQ(unpackHi(Packed), -3.0f);
}

TEST(Fp16, OverflowToInf) {
  EXPECT_TRUE(std::isinf(fp16ToFloat(floatToFp16(1e10f))));
}

TEST(Fp16, SubnormalsSurvive) {
  float Tiny = fp16ToFloat(1); // Smallest positive subnormal.
  EXPECT_GT(Tiny, 0.0f);
  EXPECT_EQ(floatToFp16(Tiny), 1);
}

//===----------------------------------------------------------------------===//
// Functional memory
//===----------------------------------------------------------------------===//

TEST(GlobalMemory, AllocateReadWrite) {
  GlobalMemory M;
  uint64_t A = M.allocate(64);
  uint64_t B = M.allocate(64);
  EXPECT_NE(A, B);
  M.writeValue<uint32_t>(A, 0x12345678);
  EXPECT_EQ(M.readValue<uint32_t>(A), 0x12345678u);
}

TEST(GlobalMemory, OutOfBoundsFaultsAndPoisons) {
  GlobalMemory M;
  M.allocate(64);
  EXPECT_EQ(M.loadWord(0x42), PoisonWord);
  EXPECT_TRUE(M.faulted());
}

TEST(SharedMemoryTest, BoundsChecked) {
  SharedMemory S(16);
  S.storeWord(0, 7);
  EXPECT_EQ(S.loadWord(0), 7u);
  EXPECT_FALSE(S.faulted());
  S.loadWord(20);
  EXPECT_TRUE(S.faulted());
}

//===----------------------------------------------------------------------===//
// Whole-kernel execution
//===----------------------------------------------------------------------===//

TEST(Oracle, VecAddComputesReference) {
  VecAddSetup S(64);
  sass::Program P = parseOrDie(VecAddText, "vecadd");
  RunResult R = S.Device.run(P, S.Launch, RunMode::Oracle);
  ASSERT_TRUE(R.Valid) << R.FaultReason;
  EXPECT_TRUE(S.outputCorrect());
}

TEST(Timed, VecAddMatchesOracleAndTimes) {
  VecAddSetup S(64);
  sass::Program P = parseOrDie(VecAddText, "vecadd");
  RunResult R = S.Device.run(P, S.Launch, RunMode::Timed);
  ASSERT_TRUE(R.Valid) << R.FaultReason;
  EXPECT_TRUE(S.outputCorrect());
  // 64 iterations x ~12 instructions with memory latencies: the kernel
  // must take a sane, nonzero number of cycles.
  EXPECT_GT(R.Cycles, 500u);
  EXPECT_LT(R.Cycles, 2'000'000u);
  EXPECT_GT(R.Counters.IssuedInstrs, 64u * 10);
}

TEST(Timed, DeterministicCycles) {
  VecAddSetup S1(32), S2(32);
  sass::Program P = parseOrDie(VecAddText, "vecadd");
  RunResult A = S1.Device.run(P, S1.Launch, RunMode::Timed);
  RunResult B = S2.Device.run(P, S2.Launch, RunMode::Timed);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.Counters.IssuedInstrs, B.Counters.IssuedInstrs);
}

/// The §4.3 microbenchmark mechanism: a consumer issued before the
/// producer's write-back reads the *stale* register value.
TEST(Timed, StallCountHazardFaithful) {
  auto Build = [](unsigned Stall) {
    std::string S = std::to_string(Stall);
    if (S.size() < 2)
      S = "0" + S;
    return std::string(R"(
  [B------:R-:W-:-:S04] MOV R2, c[0x0][0x160] ;
  [B------:R-:W-:-:S04] MOV R3, c[0x0][0x164] ;
)") + "  [B------:R-:W-:-:S" +
           S + R"(] MOV R15, 0x2a ;
  [B------:R-:W-:-:S01] STG.E [R2.64], R15 ;
  [B------:R-:W-:-:S01] EXIT ;
)";
  };

  // MOV's ground-truth latency is 4 (Table 1): stall 4 is exact, stall 3
  // violates the hazard distance and the store must see the old value.
  for (unsigned Stall : {4u, 5u}) {
    Gpu Device;
    uint64_t Out = Device.globalMemory().allocate(4);
    KernelLaunch L;
    L.WarpsPerBlock = 1;
    L.addParam64(Out);
    sass::Program P = parseOrDie(Build(Stall), "mov_bench");
    RunResult R = Device.run(P, L, RunMode::Timed);
    ASSERT_TRUE(R.Valid);
    EXPECT_EQ(Device.globalMemory().readValue<uint32_t>(Out), 0x2au)
        << "stall " << Stall << " should be sufficient";
  }
  for (unsigned Stall : {1u, 2u, 3u}) {
    Gpu Device;
    uint64_t Out = Device.globalMemory().allocate(4);
    KernelLaunch L;
    L.WarpsPerBlock = 1;
    L.addParam64(Out);
    sass::Program P = parseOrDie(Build(Stall), "mov_bench");
    RunResult R = Device.run(P, L, RunMode::Timed);
    ASSERT_TRUE(R.Valid);
    EXPECT_NE(Device.globalMemory().readValue<uint32_t>(Out), 0x2au)
        << "stall " << Stall << " must expose the hazard";
  }
}

/// Dropping a scoreboard wait on a load produces a stale read.
TEST(Timed, MissingWaitBarrierReadsStale) {
  const char *WithWait = R"(
  [B------:R-:W-:-:S04] MOV R2, c[0x0][0x160] ;
  [B------:R-:W-:-:S04] MOV R3, c[0x0][0x164] ;
  [B------:R-:W0:-:S01] LDG.E R10, [R2.64] ;
  [B0-----:R-:W-:-:S04] MOV R11, R10 ;
  [B------:R-:W-:-:S01] STG.E [R2.64+0x4], R11 ;
  [B------:R-:W-:-:S01] EXIT ;
)";
  const char *NoWait = R"(
  [B------:R-:W-:-:S04] MOV R2, c[0x0][0x160] ;
  [B------:R-:W-:-:S04] MOV R3, c[0x0][0x164] ;
  [B------:R-:W0:-:S01] LDG.E R10, [R2.64] ;
  [B------:R-:W-:-:S04] MOV R11, R10 ;
  [B------:R-:W-:-:S01] STG.E [R2.64+0x4], R11 ;
  [B------:R-:W-:-:S01] EXIT ;
)";
  for (bool Wait : {true, false}) {
    Gpu Device;
    uint64_t Buf = Device.globalMemory().allocate(8);
    Device.globalMemory().writeValue<uint32_t>(Buf, 0x77);
    KernelLaunch L;
    L.WarpsPerBlock = 1;
    L.addParam64(Buf);
    sass::Program P = parseOrDie(Wait ? WithWait : NoWait, "wait");
    RunResult R = Device.run(P, L, RunMode::Timed);
    ASSERT_TRUE(R.Valid) << R.FaultReason;
    uint32_t Got = Device.globalMemory().readValue<uint32_t>(Buf + 4);
    if (Wait)
      EXPECT_EQ(Got, 0x77u);
    else
      EXPECT_NE(Got, 0x77u);
  }
}

/// Two warps exchange values through shared memory across BAR.SYNC.
TEST(Timed, BlockBarrierOrdersSharedMemory) {
  const char *Text = R"(
  [B------:R-:W0:-:S01] S2R R0, SR_TID.X ;
  [B0-----:R-:W-:-:S04] SHF.R.U32 R1, R0, 0x5, RZ ;
  [B------:R-:W-:-:S05] IMAD R2, R1, 0x4, RZ ;
  [B------:R-:W-:-:S01] STS [R2], R1 ;
  [B------:R-:W-:-:S01] BAR.SYNC 0x0 ;
  [B------:R-:W-:-:S05] IADD3 R3, RZ, 0x1, -R1 ;
  [B------:R-:W-:-:S05] IMAD R4, R3, 0x4, RZ ;
  [B------:R-:W1:-:S01] LDS R5, [R4] ;
  [B------:R-:W-:-:S04] MOV R6, c[0x0][0x160] ;
  [B------:R-:W-:-:S04] MOV R7, c[0x0][0x164] ;
  [B-1----:R-:W-:-:S05] IMAD.WIDE R8, R1, 0x4, R6 ;
  [B------:R-:W-:-:S01] STG.E [R8.64], R5 ;
  [B------:R-:W-:-:S01] EXIT ;
)";
  Gpu Device;
  uint64_t Out = Device.globalMemory().allocate(8);
  KernelLaunch L;
  L.WarpsPerBlock = 2;
  L.SharedBytes = 64;
  L.addParam64(Out);
  sass::Program P = parseOrDie(Text, "barrier");
  RunResult R = Device.run(P, L, RunMode::Timed);
  ASSERT_TRUE(R.Valid) << R.FaultReason;
  // Warp 0 reads warp 1's value and vice versa.
  EXPECT_EQ(Device.globalMemory().readValue<uint32_t>(Out), 1u);
  EXPECT_EQ(Device.globalMemory().readValue<uint32_t>(Out + 4), 0u);
}

/// LDGSTS groups must issue in ascending-offset order; a violation both
/// faults the run and corrupts the copied data (§3.5).
TEST(Timed, LdgstsOutOfOrderCorrupts) {
  const char *InOrder = R"(
  [B------:R-:W-:-:S04] MOV R2, c[0x0][0x160] ;
  [B------:R-:W-:-:S04] MOV R3, c[0x0][0x164] ;
  [B------:R-:W-:-:S04] MOV R10, 0x0 ;
  [B------:R-:W0:-:S01] LDGSTS.E [R10], desc[UR4][R2.64] ;
  [B------:R-:W0:-:S01] LDGSTS.E [R10+0x4], desc[UR4][R2.64+0x4] ;
  [B0-----:R-:W1:-:S01] LDS R12, [R10] ;
  [B-1----:R-:W-:-:S04] MOV R13, R12 ;
  [B------:R-:W-:-:S01] STG.E [R2.64+0x8], R13 ;
  [B------:R-:W-:-:S01] EXIT ;
)";
  const char *OutOfOrder = R"(
  [B------:R-:W-:-:S04] MOV R2, c[0x0][0x160] ;
  [B------:R-:W-:-:S04] MOV R3, c[0x0][0x164] ;
  [B------:R-:W-:-:S04] MOV R10, 0x0 ;
  [B------:R-:W0:-:S01] LDGSTS.E [R10+0x4], desc[UR4][R2.64+0x4] ;
  [B------:R-:W0:-:S01] LDGSTS.E [R10], desc[UR4][R2.64] ;
  [B0-----:R-:W1:-:S01] LDS R12, [R10] ;
  [B-1----:R-:W-:-:S04] MOV R13, R12 ;
  [B------:R-:W-:-:S01] STG.E [R2.64+0x8], R13 ;
  [B------:R-:W-:-:S01] EXIT ;
)";
  for (bool Ordered : {true, false}) {
    Gpu Device;
    uint64_t Buf = Device.globalMemory().allocate(16);
    Device.globalMemory().writeValue<uint32_t>(Buf, 0xabcd);
    Device.globalMemory().writeValue<uint32_t>(Buf + 4, 0x1234);
    KernelLaunch L;
    L.WarpsPerBlock = 1;
    L.SharedBytes = 64;
    L.addParam64(Buf);
    sass::Program P = parseOrDie(Ordered ? InOrder : OutOfOrder, "ldgsts");
    RunResult R = Device.run(P, L, RunMode::Timed);
    uint32_t Got = Device.globalMemory().readValue<uint32_t>(Buf + 8);
    if (Ordered) {
      EXPECT_TRUE(R.Valid) << R.FaultReason;
      EXPECT_EQ(Got, 0xabcdu);
    } else {
      EXPECT_FALSE(R.Valid);
      EXPECT_NE(Got, 0xabcdu);
    }
  }
}

/// The operand reuse cache saves register-bank conflicts when flagged
/// operands are consumed back-to-back (§5.7.1); cycles must drop.
TEST(Timed, ReuseFlagSavesBankConflicts) {
  auto Build = [](bool Reuse) {
    std::string ReuseSuffix = Reuse ? ".reuse" : "";
    std::string Body;
    Body += "  [B------:R-:W-:-:S04] MOV R9, 0x0 ;\n";
    Body += ".L_LOOP:\n";
    Body += "  [B------:R-:W-:-:S05] ISETP.GE.AND P0, PT, R9, 0x80, PT ;\n";
    Body += "  [B------:R-:W-:-:S01] @P0 BRA `(.L_EXIT) ;\n";
    // R4 and R8 share bank 0: without reuse, each FFMA pays a conflict.
    Body += "  [B------:R-:W-:-:S01] FFMA R13, R4" + ReuseSuffix +
            ", R8, R13 ;\n";
    Body += "  [B------:R-:W-:-:S01] FFMA R14, R4" + ReuseSuffix +
            ", R8, R14 ;\n";
    Body += "  [B------:R-:W-:-:S05] FFMA R15, R4, R12, R15 ;\n";
    Body += "  [B------:R-:W-:-:S04] IADD3 R9, R9, 0x1, RZ ;\n";
    Body += "  [B------:R-:W-:-:S01] BRA `(.L_LOOP) ;\n";
    Body += ".L_EXIT:\n";
    Body += "  [B------:R-:W-:-:S01] EXIT ;\n";
    return Body;
  };
  uint64_t CyclesWith = 0, CyclesWithout = 0;
  for (bool Reuse : {true, false}) {
    Gpu Device;
    KernelLaunch L;
    L.WarpsPerBlock = 1;
    sass::Program P = parseOrDie(Build(Reuse), "reuse");
    RunResult R = Device.run(P, L, RunMode::Timed);
    ASSERT_TRUE(R.Valid) << R.FaultReason;
    if (Reuse) {
      CyclesWith = R.Cycles;
      EXPECT_GT(R.Counters.ReuseHits, 100u);
    } else {
      CyclesWithout = R.Cycles;
    }
  }
  EXPECT_LT(CyclesWith, CyclesWithout);
}

/// Predicated-off instructions consume their issue slot but have no
/// architectural effect (§5.7.2).
TEST(Timed, PredicatedOffHasNoEffect) {
  const char *Text = R"(
  [B------:R-:W-:-:S04] MOV R2, c[0x0][0x160] ;
  [B------:R-:W-:-:S04] MOV R3, c[0x0][0x164] ;
  [B------:R-:W-:-:S04] MOV R15, 0x7 ;
  [B------:R-:W-:-:S04] @!PT MOV R15, 0x63 ;
  [B------:R-:W-:-:S01] STG.E [R2.64], R15 ;
  [B------:R-:W-:-:S01] EXIT ;
)";
  Gpu Device;
  uint64_t Out = Device.globalMemory().allocate(4);
  KernelLaunch L;
  L.WarpsPerBlock = 1;
  L.addParam64(Out);
  sass::Program P = parseOrDie(Text, "pred");
  RunResult R = Device.run(P, L, RunMode::Timed);
  ASSERT_TRUE(R.Valid);
  EXPECT_EQ(Device.globalMemory().readValue<uint32_t>(Out), 0x7u);
}

TEST(Timed, CountersPopulated) {
  VecAddSetup S(128);
  sass::Program P = parseOrDie(VecAddText, "vecadd");
  RunResult R = S.Device.run(P, S.Launch, RunMode::Timed);
  ASSERT_TRUE(R.Valid);
  const PerfCounters &C = R.Counters;
  EXPECT_GT(C.ElapsedCycles, 0u);
  EXPECT_GT(C.ActiveCycles, 0u);
  EXPECT_LE(C.ActiveCycles, C.ElapsedCycles);
  EXPECT_GT(C.DramBytes, 0u);
  EXPECT_GT(C.LsuIssues, 0u);
  EXPECT_GT(C.ipcActive(), 0.0);
  EXPECT_GE(C.ipcActive(), C.ipcElapsed());
  EXPECT_GT(C.smBusyPct(), 0.0);
  EXPECT_LE(C.smBusyPct(), 100.0);
}

TEST(Timed, MultiWarpFasterThanSerial) {
  // Two independent warps should overlap latency (TLP): the two-warp run
  // must be cheaper than twice the one-warp run.
  auto RunWarps = [](unsigned Warps) {
    Gpu Device;
    uint64_t Buf = Device.globalMemory().allocate(4096);
    KernelLaunch L;
    L.WarpsPerBlock = Warps;
    L.addParam64(Buf);
    const char *Text = R"(
  [B------:R-:W0:-:S01] S2R R0, SR_TID.X ;
  [B------:R-:W-:-:S04] MOV R2, c[0x0][0x160] ;
  [B0-----:R-:W-:-:S04] MOV R3, c[0x0][0x164] ;
  [B------:R-:W-:-:S04] MOV R9, 0x0 ;
.L_LOOP:
  [B------:R-:W-:-:S05] ISETP.GE.AND P0, PT, R9, 0x20, PT ;
  [B------:R-:W-:-:S01] @P0 BRA `(.L_EXIT) ;
  [B------:R-:W-:-:S05] IMAD.WIDE R10, R9, 0x8, R2 ;
  [B------:R-:W0:-:S01] LDG.E R12, [R10.64] ;
  [B0-----:R-:W-:-:S05] FADD R13, R12, 1 ;
  [B------:R-:W-:-:S01] STG.E [R10.64+0x4], R13 ;
  [B------:R-:W-:-:S04] IADD3 R9, R9, 0x1, RZ ;
  [B------:R-:W-:-:S01] BRA `(.L_LOOP) ;
.L_EXIT:
  [B------:R-:W-:-:S01] EXIT ;
)";
    sass::Program P = parseOrDie(Text, "tlp");
    RunResult R = Device.run(P, L, RunMode::Timed);
    EXPECT_TRUE(R.Valid) << R.FaultReason;
    return R.Cycles;
  };
  uint64_t One = RunWarps(1);
  uint64_t Two = RunWarps(2);
  EXPECT_LT(Two, 2 * One);
}

//===----------------------------------------------------------------------===//
// Measurement harness
//===----------------------------------------------------------------------===//

TEST(Measure, MeanCloseToDeterministicAndNoiseSmall) {
  VecAddSetup S(64);
  sass::Program P = parseOrDie(VecAddText, "vecadd");
  RunResult Exact = S.Device.run(P, S.Launch, RunMode::Timed);
  MeasureConfig C;
  C.RepeatIters = 5;
  Measurement M = measureKernel(S.Device, P, S.Launch, C);
  ASSERT_TRUE(M.Valid) << M.FaultReason;
  EXPECT_NEAR(M.MeanUs, Exact.TimeUs, Exact.TimeUs * 0.02);
  // Paper §3.6: individual measurements within ~1% of each other.
  EXPECT_LT(M.StddevUs / M.MeanUs, 0.015);
}

TEST(Measure, SeededReproducible) {
  VecAddSetup S1(32), S2(32);
  sass::Program P = parseOrDie(VecAddText, "vecadd");
  MeasureConfig C;
  C.Seed = 99;
  Measurement A = measureKernel(S1.Device, P, S1.Launch, C);
  Measurement B = measureKernel(S2.Device, P, S2.Launch, C);
  EXPECT_DOUBLE_EQ(A.MeanUs, B.MeanUs);
}

TEST(Measure, InvalidScheduleReported) {
  // Branch to a missing label faults.
  Gpu Device;
  KernelLaunch L;
  L.WarpsPerBlock = 1;
  sass::Program P = parseOrDie(
      "  [B------:R-:W-:-:S01] BRA `(.L_NOWHERE) ;\n"
      "  [B------:R-:W-:-:S01] EXIT ;\n",
      "bad");
  Measurement M = measureKernel(Device, P, L);
  EXPECT_FALSE(M.Valid);
  EXPECT_FALSE(M.FaultReason.empty());
}

//===----------------------------------------------------------------------===//
// MeasurementCache (shared, thread-safe schedule->latency memoization)
//===----------------------------------------------------------------------===//

TEST(MeasurementCacheTest, MissComputesThenHitReturnsCachedValue) {
  MeasurementCache Cache(7);
  int Simulations = 0;
  auto Simulate = [&Simulations](uint64_t) {
    ++Simulations;
    return 42.5;
  };
  MeasurementCache::ScheduleKey Key{0xabc, 0x111};
  EXPECT_EQ(Cache.measureOrCompute(Key, Simulate), 42.5);
  EXPECT_EQ(Cache.measureOrCompute(Key, Simulate), 42.5);
  EXPECT_EQ(Simulations, 1);
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_EQ(Cache.misses(), 1u);
  EXPECT_EQ(Cache.size(), 1u);

  double Value = 0;
  EXPECT_TRUE(Cache.lookup(Key, Value));
  EXPECT_EQ(Value, 42.5);
  EXPECT_FALSE(Cache.lookup({0xdef, 0x111}, Value));
  // Collision guard: same primary, different schedule -> not found.
  EXPECT_FALSE(Cache.lookup({0xabc, 0x222}, Value));
}

TEST(MeasurementCacheTest, NoiseSeedDependsOnKeyNotOrder) {
  // Cached values must be interleaving-invariant: the seed handed to
  // the simulation is a pure function of (base seed, key).
  uint64_t S1 = MeasurementCache::deriveSeed(1, 100);
  EXPECT_EQ(S1, MeasurementCache::deriveSeed(1, 100));
  EXPECT_NE(S1, MeasurementCache::deriveSeed(1, 101));
  EXPECT_NE(S1, MeasurementCache::deriveSeed(2, 100));

  MeasurementCache A(9), B(9);
  auto Echo = [](uint64_t Seed) { return static_cast<double>(Seed % 997); };
  // Different insertion orders, same values per key.
  double A1 = A.measureOrCompute({11, 1}, Echo),
         A2 = A.measureOrCompute({22, 2}, Echo);
  double B2 = B.measureOrCompute({22, 2}, Echo),
         B1 = B.measureOrCompute({11, 1}, Echo);
  EXPECT_EQ(A1, B1);
  EXPECT_EQ(A2, B2);
}

TEST(MeasurementCacheTest, SingleSimulationPerKeyUnderContention) {
  MeasurementCache Cache(3);
  constexpr int Threads = 8;
  std::atomic<int> Simulations{0};
  std::vector<double> Results(Threads, 0.0);

  support::ThreadPool Pool(Threads);
  Pool.parallelFor(Threads, [&](size_t I) {
    Results[I] = Cache.measureOrCompute({0x5eed, 0xc0de}, [&](uint64_t Seed) {
      Simulations.fetch_add(1);
      // Slow simulation: keep the key in flight long enough that the
      // other threads arrive while it is being computed.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      return static_cast<double>(Seed & 0xffff) + 0.25;
    });
  });

  EXPECT_EQ(Simulations.load(), 1) << "exactly one thread simulates";
  for (double R : Results)
    EXPECT_EQ(R, Results[0]) << "every waiter sees the published value";
  EXPECT_EQ(Cache.misses(), 1u);
  EXPECT_EQ(Cache.hits(), static_cast<uint64_t>(Threads - 1));
}

TEST(MeasurementCacheTest, ConcurrentDistinctKeysAllPublished) {
  MeasurementCache Cache(5);
  constexpr int Threads = 6;
  constexpr uint64_t Keys = 40;
  std::atomic<int> Simulations{0};

  support::ThreadPool Pool(Threads);
  // Every thread walks every key in a different order.
  Pool.parallelFor(Threads, [&](size_t T) {
    for (uint64_t I = 0; I < Keys; ++I) {
      uint64_t Key = (I * 7919 + T * T) % Keys;
      double V = Cache.measureOrCompute({Key, ~Key}, [&](uint64_t Seed) {
        Simulations.fetch_add(1);
        return static_cast<double>(Seed % 1000);
      });
      EXPECT_EQ(V, static_cast<double>(
                       MeasurementCache::deriveSeed(5, ~Key) % 1000));
    }
  });

  EXPECT_EQ(static_cast<uint64_t>(Simulations.load()), Keys)
      << "each key simulated exactly once across all threads";
  EXPECT_EQ(Cache.size(), Keys);
  EXPECT_EQ(Cache.misses(), Keys);
  EXPECT_EQ(Cache.hits() + Cache.misses(),
            static_cast<uint64_t>(Threads) * Keys);
}

TEST(MeasurementCacheTest, AccumulateSurfacesCountersThroughPerfCounters) {
  MeasurementCache Cache(1);
  auto One = [](uint64_t) { return 1.0; };
  Cache.measureOrCompute({1, 1}, One);
  Cache.measureOrCompute({1, 1}, One);
  Cache.measureOrCompute({2, 2}, One);
  PerfCounters PC;
  Cache.accumulate(PC);
  EXPECT_EQ(PC.MeasureCacheHits, 1u);
  EXPECT_EQ(PC.MeasureCacheMisses, 2u);
  // Counters fold through the existing aggregation operator.
  PerfCounters Sum;
  Sum += PC;
  Sum += PC;
  EXPECT_EQ(Sum.MeasureCacheHits, 2u);
  EXPECT_EQ(Sum.MeasureCacheMisses, 4u);
}

TEST(MeasurementCacheTest, HashScheduleDistinguishesPrograms) {
  Expected<sass::Program> P1 = sass::Parser::parseProgram(
      "  [B------:R-:W-:-:S01] MOV R0, 0x1 ;\n"
      "  [B------:R-:W-:-:S01] MOV R1, 0x2 ;\n");
  Expected<sass::Program> P2 = sass::Parser::parseProgram(
      "  [B------:R-:W-:-:S01] MOV R1, 0x2 ;\n"
      "  [B------:R-:W-:-:S01] MOV R0, 0x1 ;\n");
  ASSERT_TRUE(P1.hasValue());
  ASSERT_TRUE(P2.hasValue());
  EXPECT_EQ(MeasurementCache::hashSchedule(*P1),
            MeasurementCache::hashSchedule(*P1));
  EXPECT_NE(MeasurementCache::hashSchedule(*P1),
            MeasurementCache::hashSchedule(*P2));
}

TEST(MeasurementCacheTest, PrimaryCollisionFallsBackUncached) {
  MeasurementCache Cache(1);
  int Simulations = 0;
  auto Count = [&Simulations](uint64_t Seed) {
    ++Simulations;
    return static_cast<double>(Seed % 97);
  };
  // Two distinct schedules colliding on the primary hash: the second
  // must not inherit the first one's latency.
  double First = Cache.measureOrCompute({0x77, 0xaaa}, Count);
  double Second = Cache.measureOrCompute({0x77, 0xbbb}, Count);
  EXPECT_EQ(Simulations, 2);
  EXPECT_EQ(Cache.collisions(), 1u);
  EXPECT_EQ(First, static_cast<double>(
                       MeasurementCache::deriveSeed(1, 0xaaa) % 97));
  EXPECT_EQ(Second, static_cast<double>(
                        MeasurementCache::deriveSeed(1, 0xbbb) % 97));
  // The collision path is itself order-invariant: repeating the
  // colliding lookup simulates again with the same seed.
  EXPECT_EQ(Cache.measureOrCompute({0x77, 0xbbb}, Count), Second);
  EXPECT_EQ(Cache.collisions(), 2u);
}

TEST(MeasurementCacheTest, KeyForProducesIndependentHashes) {
  Expected<sass::Program> P = sass::Parser::parseProgram(
      "  [B------:R-:W-:-:S01] MOV R0, 0x1 ;\n");
  ASSERT_TRUE(P.hasValue());
  MeasurementCache::ScheduleKey K = MeasurementCache::keyFor(*P);
  EXPECT_EQ(K.Primary, MeasurementCache::hashSchedule(*P));
  EXPECT_NE(K.Primary, K.Check);
}

TEST(MeasurementCacheTest, FailedSimulationLeavesKeyReclaimable) {
  MeasurementCache Cache(1);
  MeasurementCache::ScheduleKey Key{5, 6};
  EXPECT_THROW(Cache.measureOrCompute(
                   Key,
                   [](uint64_t) -> double {
                     throw std::runtime_error("transient");
                   }),
               std::runtime_error);
  double Probe = 0;
  EXPECT_FALSE(Cache.lookup(Key, Probe)) << "failed keys are not published";
  // A retry recomputes instead of inheriting a poisoned value.
  EXPECT_EQ(Cache.measureOrCompute(Key, [](uint64_t) { return 3.5; }), 3.5);
  EXPECT_TRUE(Cache.lookup(Key, Probe));
  EXPECT_EQ(Probe, 3.5);
}

//===- tests/incremental_test.cpp - incremental env-step state tests -----------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Differential property tests for the incremental per-step state: along
// long random legal swap sequences, the swap-maintained action mask,
// schedule hash, decoded kernel image and observation must stay
// bit-identical to their from-scratch recomputation at every step.
//
//===----------------------------------------------------------------------===//

#include "env/AssemblyGame.h"
#include "env/Embedding.h"
#include "gpusim/DecodedProgram.h"
#include "gpusim/Measurement.h"
#include "kernels/Builder.h"
#include "sass/Parser.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace cuasmrl;
using namespace cuasmrl::env;
using kernels::BuiltKernel;
using kernels::ScheduleStyle;
using kernels::WorkloadKind;

namespace {

struct GameFixture {
  gpusim::Gpu Device;
  Rng DataRng{7};
  BuiltKernel Kernel;
  GameConfig Config;

  explicit GameFixture(WorkloadKind Kind = WorkloadKind::MmLeakyRelu) {
    Kernel = kernels::buildKernel(Device, Kind, kernels::testShape(Kind),
                                  kernels::candidateConfigs(Kind).front(),
                                  ScheduleStyle::TritonO3, DataRng);
    Config.Measure.WarmupIters = 1;
    Config.Measure.RepeatIters = 1;
    Config.Measure.NoiseStddev = 0.0;
  }
};

/// Asserts every piece of incrementally-maintained state against its
/// from-scratch recomputation.
void expectIncrementalStateFresh(AssemblyGame &Game,
                                 const Embedding &FreshEmbed,
                                 const std::vector<float> &Observation) {
  // Action mask: cached == full O(program) sweep.
  EXPECT_EQ(Game.actionMask(), Game.actionMaskFresh());

  // Schedule hash: O(1)-maintained key == from-scratch key.
  gpusim::MeasurementCache::ScheduleKey Inc = Game.scheduleKey();
  gpusim::MeasurementCache::ScheduleKey Fresh =
      gpusim::MeasurementCache::keyFor(Game.current());
  EXPECT_EQ(Inc.Primary, Fresh.Primary);
  EXPECT_EQ(Inc.Check, Fresh.Check);

  // Decoded image: record-swapped == full redecode.
  EXPECT_TRUE(Game.decoded() == gpusim::DecodedProgram(Game.current()));

  // Observation: row-swapped matrix == full re-embedding.
  EXPECT_EQ(Observation, FreshEmbed.embed(Game.current()));
}

} // namespace

//===----------------------------------------------------------------------===//
// Randomized differential walks
//===----------------------------------------------------------------------===//

TEST(IncrementalStepTest, MaskedRandomWalkMatchesFreshRecomputation) {
  for (uint64_t Seed : {11ull, 12ull}) {
    GameFixture F;
    F.Config.EpisodeLength = 1000; // Let the walk run, not the episode cap.
    AssemblyGame Game(F.Device, F.Kernel, F.Config);
    Embedding FreshEmbed(F.Kernel.Prog);
    Rng Walk(Seed);

    std::vector<float> Obs = Game.reset();
    expectIncrementalStateFresh(Game, FreshEmbed, Obs);
    for (int Step = 0; Step < 48; ++Step) {
      std::vector<uint8_t> Mask = Game.actionMask();
      std::vector<unsigned> Legal;
      for (unsigned A = 0; A < Mask.size(); ++A)
        if (Mask[A])
          Legal.push_back(A);
      if (Legal.empty())
        break;
      unsigned Action = Legal[Walk.uniformInt(Legal.size())];
      AssemblyGame::StepResult R = Game.step(Action);
      ASSERT_FALSE(R.Invalid);
      expectIncrementalStateFresh(Game, FreshEmbed, R.Observation);
    }
  }
}

TEST(IncrementalStepTest, UnmaskedWalkMatchesFreshRecomputationIncludingReverts) {
  // Without masking the structural mask admits semantically invalid
  // swaps; those episodes terminate with a revert, which must restore
  // every incremental structure exactly.
  for (uint64_t Seed : {21ull, 22ull, 23ull}) {
    GameFixture F;
    F.Config.UseActionMasking = false;
    F.Config.EpisodeLength = 1000;
    AssemblyGame Game(F.Device, F.Kernel, F.Config);
    Embedding FreshEmbed(F.Kernel.Prog);
    Rng Walk(Seed);

    std::vector<float> Obs = Game.reset();
    expectIncrementalStateFresh(Game, FreshEmbed, Obs);
    for (int Step = 0; Step < 16; ++Step) {
      std::vector<uint8_t> Mask = Game.actionMask();
      std::vector<unsigned> Legal;
      for (unsigned A = 0; A < Mask.size(); ++A)
        if (Mask[A])
          Legal.push_back(A);
      if (Legal.empty())
        break;
      unsigned Action = Legal[Walk.uniformInt(Legal.size())];
      AssemblyGame::StepResult R = Game.step(Action);
      expectIncrementalStateFresh(Game, FreshEmbed, R.Observation);
      if (R.Done)
        break;
    }
  }
}

TEST(IncrementalStepTest, ResetRestoresInitialState) {
  GameFixture F;
  AssemblyGame Game(F.Device, F.Kernel, F.Config);
  std::vector<float> Initial = Game.reset();
  std::vector<uint8_t> InitialMask = Game.actionMask();
  gpusim::MeasurementCache::ScheduleKey InitialKey = Game.scheduleKey();

  Rng Walk(3);
  for (int Step = 0; Step < 8; ++Step) {
    std::vector<uint8_t> Mask = Game.actionMask();
    std::vector<unsigned> Legal;
    for (unsigned A = 0; A < Mask.size(); ++A)
      if (Mask[A])
        Legal.push_back(A);
    if (Legal.empty())
      break;
    Game.step(Legal[Walk.uniformInt(Legal.size())]);
  }

  std::vector<float> AfterReset = Game.reset();
  EXPECT_EQ(Initial, AfterReset);
  EXPECT_EQ(InitialMask, Game.actionMask());
  EXPECT_EQ(InitialKey.Primary, Game.scheduleKey().Primary);
  EXPECT_EQ(InitialKey.Check, Game.scheduleKey().Check);
}

//===----------------------------------------------------------------------===//
// ScheduleHash unit behavior
//===----------------------------------------------------------------------===//

namespace {

sass::Program parseOrDie(const char *Text) {
  Expected<sass::Program> P = sass::Parser::parseProgram(Text, "test");
  EXPECT_TRUE(P.hasValue());
  return *P;
}

} // namespace

TEST(ScheduleHashTest, SwapMatchesFromScratchKey) {
  sass::Program P = parseOrDie(
      "  [B------:R-:W-:-:S01] MOV R0, 0x1 ;\n"
      "  [B------:R-:W-:-:S02] MOV R1, 0x2 ;\n"
      "  [B------:R-:W-:-:S04] IADD3 R2, R0, R1, RZ ;\n"
      "  [B------:R-:W-:-:S01] MOV R3, 0x4 ;\n");
  gpusim::ScheduleHash H(P);
  EXPECT_EQ(H.key().Primary, gpusim::MeasurementCache::keyFor(P).Primary);

  P.swap(0, 1);
  H.swap(0);
  gpusim::MeasurementCache::ScheduleKey Fresh =
      gpusim::MeasurementCache::keyFor(P);
  EXPECT_EQ(H.key().Primary, Fresh.Primary);
  EXPECT_EQ(H.key().Check, Fresh.Check);

  P.swap(2, 3);
  H.swap(2);
  Fresh = gpusim::MeasurementCache::keyFor(P);
  EXPECT_EQ(H.key().Primary, Fresh.Primary);
  EXPECT_EQ(H.key().Check, Fresh.Check);
}

TEST(ScheduleHashTest, SwapIsInvolution) {
  sass::Program P = parseOrDie(
      "  [B------:R-:W-:-:S01] MOV R0, 0x1 ;\n"
      "  [B------:R-:W-:-:S02] MOV R1, 0x2 ;\n");
  gpusim::ScheduleHash H(P);
  gpusim::MeasurementCache::ScheduleKey Before = H.key();
  H.swap(0);
  EXPECT_NE(H.key().Primary, Before.Primary); // Order-sensitive.
  H.swap(0);
  EXPECT_EQ(H.key().Primary, Before.Primary);
  EXPECT_EQ(H.key().Check, Before.Check);
}

TEST(ScheduleHashTest, DistinctSchedulesAndNamesGetDistinctKeys) {
  sass::Program P1 = parseOrDie(
      "  [B------:R-:W-:-:S01] MOV R0, 0x1 ;\n"
      "  [B------:R-:W-:-:S02] MOV R1, 0x2 ;\n");
  sass::Program P2 = P1;
  P2.swap(0, 1);
  EXPECT_NE(gpusim::MeasurementCache::keyFor(P1).Primary,
            gpusim::MeasurementCache::keyFor(P2).Primary);
  EXPECT_NE(gpusim::MeasurementCache::keyFor(P1).Check,
            gpusim::MeasurementCache::keyFor(P2).Check);

  sass::Program P3 = P1;
  P3.setName("other_kernel");
  EXPECT_NE(gpusim::MeasurementCache::keyFor(P1).Primary,
            gpusim::MeasurementCache::keyFor(P3).Primary);
}

//===----------------------------------------------------------------------===//
// DecodedProgram unit behavior
//===----------------------------------------------------------------------===//

TEST(DecodedProgramTest, RecordsCarryLatencyAndSemanticFlags) {
  sass::Program P = parseOrDie(
      "  [B------:R-:W0:-:S01] LDG.E.128 R4, [R2.64] ;\n"
      "  [B------:R-:W-:-:S04] IMAD.WIDE.U32 R8, R0, R1, R2 ;\n"
      "  [B------:R-:W-:-:S05] ISETP.GE.U32.AND P0, PT, R0, 0x4, PT ;\n");
  gpusim::DecodedProgram D(P);
  ASSERT_EQ(D.size(), 3u);

  EXPECT_TRUE(D[0].VarLat);
  EXPECT_EQ(D[0].DataRegs, 4u);
  EXPECT_FALSE(D[0].IsLabel);

  EXPECT_FALSE(D[1].VarLat);
  EXPECT_TRUE(D[1].has(gpusim::DecodedInstr::ModWide));
  EXPECT_TRUE(D[1].has(gpusim::DecodedInstr::ModU32));
  EXPECT_EQ(D[1].FixedLat, *sass::groundTruthLatency("IMAD.WIDE.U32"));

  EXPECT_EQ(D[2].Cmp, gpusim::CmpKind::GE);
  EXPECT_TRUE(D[2].has(gpusim::DecodedInstr::ModU32));
  EXPECT_EQ(D[2].FixedLat, *sass::groundTruthLatency("ISETP"));
}

TEST(DecodedProgramTest, BranchTargetsResolveToStatementIndices) {
  sass::Program P = parseOrDie(
      ".L_0:\n"
      "  [B------:R-:W-:-:S01] MOV R0, 0x1 ;\n"
      "  [B------:R-:W-:-:S05] BRA `(.L_0) ;\n"
      "  [B------:R-:W-:-:S05] BRA `(.L_missing) ;\n"
      "  [B------:R-:W-:-:S05] EXIT ;\n");
  gpusim::DecodedProgram D(P);
  ASSERT_EQ(D.size(), 5u);
  EXPECT_TRUE(D[0].IsLabel);
  EXPECT_EQ(D[2].BranchTarget, 0);
  EXPECT_EQ(D[3].BranchTarget, -1); // Unknown label stays unresolved.
}

TEST(DecodedProgramTest, SwapEqualsFullRedecode) {
  sass::Program P = parseOrDie(
      ".L_0:\n"
      "  [B------:R-:W-:-:S01] MOV R0, 0x1 ;\n"
      "  [B------:R-:W0:-:S01] LDG.E R4, [R2.64] ;\n"
      "  [B0-----:R-:W-:-:S04] IADD3 R6, R4, R0, RZ ;\n"
      "  [B------:R-:W-:-:S05] BRA `(.L_0) ;\n");
  gpusim::DecodedProgram D(P);
  P.swap(1, 2);
  D.swap(1);
  EXPECT_TRUE(D == gpusim::DecodedProgram(P));
  P.swap(1, 2);
  D.swap(1);
  EXPECT_TRUE(D == gpusim::DecodedProgram(P));
}

TEST(DecodedProgramTest, TimedRunMatchesInternallyDecodedRun) {
  // Two identical devices (the Gpu carries cache/memory state, so one
  // device's second run would start warm): one runs through the
  // internally-decoding overload, the other through an explicit image.
  GameFixture F1, F2;
  gpusim::DecodedProgram Decoded(F2.Kernel.Prog);
  unsigned Resident = F1.Device.residentBlocks(F1.Kernel.Launch);
  gpusim::RunResult A = F1.Device.run(F1.Kernel.Prog, F1.Kernel.Launch,
                                      gpusim::RunMode::Timed, Resident);
  gpusim::RunResult B =
      F2.Device.run(F2.Kernel.Prog, Decoded, F2.Kernel.Launch,
                    gpusim::RunMode::Timed, Resident);
  ASSERT_TRUE(A.Valid);
  ASSERT_TRUE(B.Valid);
  EXPECT_EQ(A.Cycles, B.Cycles);
}

//===----------------------------------------------------------------------===//
// Embedding row swaps
//===----------------------------------------------------------------------===//

TEST(EmbeddingIncrementalTest, RowSwapEqualsReembedding) {
  GameFixture F;
  Embedding E(F.Kernel.Prog);
  sass::Program P = F.Kernel.Prog;

  // Find two adjacent instruction statements and their row index.
  size_t Upper = P.size();
  size_t Row = 0;
  for (size_t I = 0; I + 1 < P.size(); ++I) {
    if (P.stmt(I).isInstr() && P.stmt(I + 1).isInstr()) {
      Upper = I;
      break;
    }
    if (P.stmt(I).isInstr())
      ++Row;
  }
  ASSERT_LT(Upper, P.size());

  std::vector<float> Obs = E.embed(P);
  P.swap(Upper, Upper + 1);
  E.swapAdjacentRows(Obs, Row);
  EXPECT_EQ(Obs, E.embed(P));
}

//===----------------------------------------------------------------------===//
// Trace gating
//===----------------------------------------------------------------------===//

TEST(TraceGateTest, DisabledTraceRecordsNothingAndTogglesBack) {
  GameFixture F;
  F.Config.RecordTrace = false;
  AssemblyGame Game(F.Device, F.Kernel, F.Config);
  Rng Walk(5);
  Game.reset();

  auto StepOnce = [&] {
    std::vector<uint8_t> Mask = Game.actionMask();
    std::vector<unsigned> Legal;
    for (unsigned A = 0; A < Mask.size(); ++A)
      if (Mask[A])
        Legal.push_back(A);
    ASSERT_FALSE(Legal.empty());
    Game.step(Legal[Walk.uniformInt(Legal.size())]);
  };

  StepOnce();
  EXPECT_TRUE(Game.trace().empty());

  Game.setTraceRecording(true);
  StepOnce();
  ASSERT_EQ(Game.trace().size(), 1u);
  EXPECT_FALSE(Game.trace()[0].MovedText.empty());
}

//===- tests/serve_test.cpp - optimization service / job queue tests ---------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service contract (§4.2 as a server): bit-identical responses
/// for any worker count, single-flight deduplication, lookup hits that
/// short-circuit training, priority ordering, bounded-queue
/// backpressure, persist-failure surfacing, and clean drain/shutdown.
///
//===----------------------------------------------------------------------===//

#include "serve/JobQueue.h"
#include "serve/OptimizationService.h"
#include "support/Clock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

using namespace cuasmrl;
using namespace cuasmrl::kernels;
using namespace cuasmrl::serve;

//===----------------------------------------------------------------------===//
// JobQueue
//===----------------------------------------------------------------------===//

namespace {

/// A task that appends \p Id to \p Order when run (not cancelled/shed).
JobQueue::Task recorder(std::vector<int> &Order, int Id) {
  return [&Order, Id](TaskFate Fate) {
    if (Fate == TaskFate::Run)
      Order.push_back(Id);
  };
}

} // namespace

TEST(JobQueueTest, PopsByPriorityThenFifo) {
  JobQueue Q;
  std::vector<int> Order;
  ASSERT_TRUE(Q.push(recorder(Order, 0), /*Priority=*/0));
  ASSERT_TRUE(Q.push(recorder(Order, 1), /*Priority=*/5));
  ASSERT_TRUE(Q.push(recorder(Order, 2), /*Priority=*/5));
  ASSERT_TRUE(Q.push(recorder(Order, 3), /*Priority=*/1));
  EXPECT_EQ(Q.size(), 4u);
  for (int I = 0; I < 4; ++I) {
    std::optional<JobQueue::Popped> T = Q.pop();
    ASSERT_TRUE(T.has_value());
    EXPECT_EQ(T->Fate, TaskFate::Run);
    T->Fn(T->Fate);
  }
  // Priority 5 first (FIFO within: 1 before 2), then 1, then 0.
  EXPECT_EQ(Order, (std::vector<int>{1, 2, 3, 0}));
}

TEST(JobQueueTest, TryPushRejectsWhenFull) {
  JobQueue Q(/*Bound=*/2);
  std::vector<int> Order;
  EXPECT_TRUE(Q.tryPush(recorder(Order, 0), 0));
  EXPECT_TRUE(Q.tryPush(recorder(Order, 1), 0));
  EXPECT_FALSE(Q.tryPush(recorder(Order, 2), 0));
  EXPECT_EQ(Q.size(), 2u);
}

TEST(JobQueueTest, BlockingPushWaitsForSpace) {
  JobQueue Q(/*Bound=*/1);
  std::vector<int> Order;
  ASSERT_TRUE(Q.push(recorder(Order, 0), 0));
  std::atomic<bool> Pushed{false};
  std::thread Producer([&] {
    EXPECT_TRUE(Q.push([&Pushed](TaskFate) { Pushed = true; }, 0));
  });
  // The consumer frees the slot; both tasks must come through.
  std::optional<JobQueue::Popped> A = Q.pop();
  ASSERT_TRUE(A.has_value());
  std::optional<JobQueue::Popped> B = Q.pop();
  ASSERT_TRUE(B.has_value());
  Producer.join();
  A->Fn(A->Fate);
  B->Fn(B->Fate);
  EXPECT_TRUE(Pushed.load());
}

TEST(JobQueueTest, CloseReturnsUnstartedTasksAndWakesEveryone) {
  JobQueue Q(/*Bound=*/2);
  std::vector<int> Order;
  ASSERT_TRUE(Q.push(recorder(Order, 0), 0));
  ASSERT_TRUE(Q.push(recorder(Order, 1), 7));
  // A producer blocked on the bound and a consumer blocked later must
  // both wake when the queue closes.
  std::thread Producer([&] { EXPECT_FALSE(Q.push(recorder(Order, 2), 0)); });
  std::vector<JobQueue::Task> Remaining = Q.close();
  Producer.join();
  EXPECT_TRUE(Q.closed());
  // Pop order: the priority-7 task first. Cancellation skips the body.
  ASSERT_GE(Remaining.size(), 2u);
  std::atomic<int> Cancelled{0};
  for (JobQueue::Task &T : Remaining) {
    T(TaskFate::Cancelled);
    ++Cancelled;
  }
  EXPECT_TRUE(Order.empty());
  EXPECT_EQ(Q.pop(), std::nullopt);
  EXPECT_FALSE(Q.push(recorder(Order, 9), 0));
  EXPECT_TRUE(Q.close().empty()); // Idempotent.
}

//===----------------------------------------------------------------------===//
// OptimizationService
//===----------------------------------------------------------------------===//

namespace {

/// A small, fast optimize configuration: enough PPO to produce real
/// training series, small enough that a job takes well under a second.
core::OptimizeConfig tinyConfig() {
  core::OptimizeConfig C;
  C.Ppo.TotalSteps = 32;
  C.Ppo.RolloutLen = 16;
  C.Ppo.MiniBatches = 2;
  C.Ppo.Epochs = 2;
  C.Ppo.Channels = 4;
  C.Ppo.Hidden = 16;
  C.Game.EpisodeLength = 8;
  C.Game.Measure.WarmupIters = 1;
  C.Game.Measure.RepeatIters = 1;
  C.Game.Measure.NoiseStddev = 0.001;
  C.AutotuneMeasure.WarmupIters = 1;
  C.AutotuneMeasure.RepeatIters = 1;
  C.AutotuneMeasure.NoiseStddev = 0.0;
  C.ProbTestRounds = 1;
  return C;
}

ServiceConfig tinyService(unsigned Workers, std::string DeployDir = "") {
  ServiceConfig C;
  C.Workers = Workers;
  C.Seed = 11;
  C.DeployDir = std::move(DeployDir);
  C.Defaults = tinyConfig();
  return C;
}

OptimizeRequest request(WorkloadKind Kind, int Priority = 0) {
  OptimizeRequest R;
  R.Kind = Kind;
  R.Shape = testShape(Kind);
  R.Priority = Priority;
  return R;
}

std::string freshDir(const std::string &Name) {
  std::string Dir =
      (std::filesystem::temp_directory_path() / Name).string();
  std::filesystem::remove_all(Dir);
  return Dir;
}

/// Everything response equality means for the determinism contract.
void expectResponsesIdentical(const OptimizeResponse &A,
                              const OptimizeResponse &B) {
  EXPECT_EQ(A.St, B.St);
  EXPECT_EQ(A.Key, B.Key);
  EXPECT_EQ(A.Result.TritonUs, B.Result.TritonUs);
  EXPECT_EQ(A.Result.OptimizedUs, B.Result.OptimizedUs);
  EXPECT_EQ(A.Result.Verified, B.Result.Verified);
  EXPECT_EQ(A.Result.OptimizedProg.str(), B.Result.OptimizedProg.str());
  EXPECT_EQ(A.Result.EpisodeReturns, B.Result.EpisodeReturns);
  ASSERT_EQ(A.Result.Training.size(), B.Result.Training.size());
  for (size_t I = 0; I < A.Result.Training.size(); ++I) {
    EXPECT_EQ(A.Result.Training[I].PolicyLoss, B.Result.Training[I].PolicyLoss);
    EXPECT_EQ(A.Result.Training[I].ValueLoss, B.Result.Training[I].ValueLoss);
    EXPECT_EQ(A.Result.Training[I].Entropy, B.Result.Training[I].Entropy);
  }
  EXPECT_EQ(A.Binary.serialize(), B.Binary.serialize());
}

} // namespace

TEST(ServeTest, ResponsesBitIdenticalAcrossWorkerCounts) {
  gpusim::Gpu Device;
  std::vector<OptimizeRequest> Requests = {
      request(WorkloadKind::Softmax), request(WorkloadKind::RmsNorm)};

  std::vector<std::vector<ResponsePtr>> PerWorkerCount;
  for (unsigned Workers : {1u, 2u, 4u}) {
    OptimizationService Service(Device, tinyService(Workers));
    std::vector<Ticket> Tickets;
    for (const OptimizeRequest &R : Requests)
      Tickets.push_back(Service.submit(R));
    std::vector<ResponsePtr> Responses;
    for (Ticket &T : Tickets) {
      ASSERT_TRUE(T.valid());
      Responses.push_back(T.Response.get());
    }
    Service.shutdown();
    PerWorkerCount.push_back(std::move(Responses));
  }

  for (size_t W = 1; W < PerWorkerCount.size(); ++W) {
    ASSERT_EQ(PerWorkerCount[W].size(), PerWorkerCount[0].size());
    for (size_t R = 0; R < PerWorkerCount[0].size(); ++R)
      expectResponsesIdentical(*PerWorkerCount[0][R], *PerWorkerCount[W][R]);
  }
  // And the jobs really ran (no degenerate empty runs "matching").
  EXPECT_EQ(PerWorkerCount[0][0]->St, OptimizeResponse::Status::Optimized);
  EXPECT_GT(PerWorkerCount[0][0]->Result.TritonUs, 0.0);
  EXPECT_FALSE(PerWorkerCount[0][0]->Result.Training.empty());
}

TEST(ServeTest, SingleFlightMergesConcurrentDuplicates) {
  gpusim::Gpu Device;
  ServiceConfig SC = tinyService(/*Workers=*/2);
  SC.StartPaused = true; // Duplicates admitted before any job runs.
  OptimizationService Service(Device, SC);

  const unsigned Dupes = 4;
  std::atomic<unsigned> CallbacksFired{0};
  std::vector<Ticket> Tickets;
  for (unsigned I = 0; I < Dupes; ++I)
    Tickets.push_back(
        Service.submit(request(WorkloadKind::Softmax),
                       [&](const OptimizeResponse &) { ++CallbacksFired; }));

  EXPECT_EQ(Tickets[0].How, Admission::Enqueued);
  for (unsigned I = 1; I < Dupes; ++I) {
    EXPECT_EQ(Tickets[I].How, Admission::Attached);
    EXPECT_EQ(Tickets[I].Key, Tickets[0].Key);
  }

  Service.start();
  std::vector<ResponsePtr> Responses;
  for (Ticket &T : Tickets)
    Responses.push_back(T.Response.get());
  // One optimize job served every duplicate: all requesters share the
  // identical response object.
  for (unsigned I = 1; I < Dupes; ++I)
    EXPECT_EQ(Responses[I].get(), Responses[0].get());
  EXPECT_EQ(Responses[0]->St, OptimizeResponse::Status::Optimized);

  Service.drain();
  ServiceStats S = Service.stats();
  EXPECT_EQ(S.OptimizeRuns, 1u);
  EXPECT_EQ(S.Enqueued, 1u);
  EXPECT_EQ(S.Merged, Dupes - 1);
  EXPECT_EQ(S.Submitted, uint64_t(Dupes));
  EXPECT_EQ(CallbacksFired.load(), Dupes);
}

TEST(ServeTest, LookupHitShortCircuitsTraining) {
  gpusim::Gpu Device;
  std::string Dir = freshDir("cuasmrl_serve_lookup");

  std::vector<uint8_t> DeployedBytes;
  {
    // Offline pass: optimize once, winner persisted under the key.
    OptimizationService Producer(Device, tinyService(1, Dir));
    Ticket T = Producer.submit(request(WorkloadKind::Softmax));
    ResponsePtr R = T.Response.get();
    ASSERT_EQ(R->St, OptimizeResponse::Status::Optimized);
    ASSERT_TRUE(R->Persisted);
    DeployedBytes = R->Binary.serialize();
    ServiceStats S = Producer.stats();
    EXPECT_EQ(S.PersistStores, 1u);
    EXPECT_EQ(S.DeployedKeys, 1u);
  }

  // Online pass (fresh service, same cache): deployment is a lookup,
  // not training (§4.2).
  OptimizationService Consumer(Device, tinyService(4, Dir));
  bool CallbackSawHit = false;
  Ticket T = Consumer.submit(request(WorkloadKind::Softmax),
                             [&](const OptimizeResponse &R) {
                               CallbackSawHit =
                                   R.St == OptimizeResponse::Status::LookupHit;
                             });
  EXPECT_EQ(T.How, Admission::LookupHit);
  ResponsePtr R = T.Response.get();
  EXPECT_EQ(R->St, OptimizeResponse::Status::LookupHit);
  EXPECT_EQ(R->Binary.serialize(), DeployedBytes);
  EXPECT_TRUE(CallbackSawHit);
  EXPECT_TRUE(R->Result.Training.empty()); // Zero training updates.

  ServiceStats S = Consumer.stats();
  EXPECT_EQ(S.LookupHits, 1u);
  EXPECT_EQ(S.OptimizeRuns, 0u);
  EXPECT_EQ(S.TrainingUpdates, 0u);
  EXPECT_EQ(S.Enqueued, 0u);
  std::filesystem::remove_all(Dir);
}

TEST(ServeTest, PriorityOrdersJobsUnderSingleWorker) {
  gpusim::Gpu Device;
  ServiceConfig SC = tinyService(/*Workers=*/1);
  SC.StartPaused = true; // Admission fixed before the worker starts.
  OptimizationService Service(Device, SC);

  // Three distinct keys at three priorities, admitted low-first.
  std::mutex OrderMutex;
  std::vector<int> Completed;
  auto Submit = [&](WorkloadKind Kind, unsigned Rows, int Priority) {
    OptimizeRequest R = request(Kind, Priority);
    R.Shape.Rows = Rows;
    return Service.submit(R, [&, Priority](const OptimizeResponse &) {
      std::lock_guard<std::mutex> Lock(OrderMutex);
      Completed.push_back(Priority);
    });
  };
  std::vector<Ticket> Tickets;
  Tickets.push_back(Submit(WorkloadKind::Softmax, 64, 0));
  Tickets.push_back(Submit(WorkloadKind::Softmax, 96, 1));
  Tickets.push_back(Submit(WorkloadKind::Softmax, 128, 5));
  for (const Ticket &T : Tickets)
    ASSERT_EQ(T.How, Admission::Enqueued);

  Service.start();
  Service.drain();
  EXPECT_EQ(Completed, (std::vector<int>{5, 1, 0}));
}

TEST(ServeTest, TrySubmitRejectsWhenQueueFull) {
  gpusim::Gpu Device;
  ServiceConfig SC = tinyService(/*Workers=*/1);
  SC.StartPaused = true;
  SC.MaxQueued = 2;
  OptimizationService Service(Device, SC);

  auto Distinct = [&](unsigned Rows) {
    OptimizeRequest R = request(WorkloadKind::Softmax);
    R.Shape.Rows = Rows;
    return R;
  };
  std::atomic<unsigned> RejectedCallbacks{0};
  Ticket A = Service.trySubmit(Distinct(64));
  Ticket B = Service.trySubmit(Distinct(96));
  Ticket C = Service.trySubmit(
      Distinct(128),
      [&](const OptimizeResponse &) { ++RejectedCallbacks; });
  EXPECT_EQ(A.How, Admission::Enqueued);
  EXPECT_EQ(B.How, Admission::Enqueued);
  EXPECT_EQ(C.How, Admission::Rejected);
  EXPECT_FALSE(C.valid());
  // Attaching to a queued key consumes no queue space, so it still
  // succeeds while the queue is full.
  Ticket D = Service.trySubmit(Distinct(64));
  EXPECT_EQ(D.How, Admission::Attached);

  ServiceStats S = Service.stats();
  EXPECT_EQ(S.Rejected, 1u);
  EXPECT_EQ(S.QueuedNow, 2u);
  Service.shutdown();
  // A rejected admission never fires the submitter's callback — the
  // Rejected ticket is the outcome.
  EXPECT_EQ(RejectedCallbacks.load(), 0u);
}

TEST(ServeTest, BlockingSubmitWaitsForQueueSpace) {
  gpusim::Gpu Device;
  ServiceConfig SC = tinyService(/*Workers=*/1);
  SC.StartPaused = true;
  SC.MaxQueued = 1;
  OptimizationService Service(Device, SC);

  OptimizeRequest First = request(WorkloadKind::Softmax);
  First.Shape.Rows = 64;
  ASSERT_EQ(Service.submit(First).How, Admission::Enqueued);

  // The second submit must park on backpressure until the worker
  // starts popping, then be admitted and eventually optimized.
  Ticket Second;
  std::thread Submitter([&] {
    OptimizeRequest R = request(WorkloadKind::Softmax);
    R.Shape.Rows = 96;
    Second = Service.submit(R);
  });
  Service.start();
  Submitter.join();
  ASSERT_EQ(Second.How, Admission::Enqueued);
  EXPECT_EQ(Second.Response.get()->St, OptimizeResponse::Status::Optimized);
  Service.drain();
  EXPECT_EQ(Service.stats().Completed, 2u);
}

TEST(ServeTest, ShutdownCancelsQueuedJobsAndStopsAdmission) {
  gpusim::Gpu Device;
  ServiceConfig SC = tinyService(/*Workers=*/2);
  SC.StartPaused = true; // Nothing runs: every job stays queued.
  OptimizationService Service(Device, SC);

  std::atomic<unsigned> CancelCallbacks{0};
  std::vector<Ticket> Tickets;
  for (unsigned Rows : {64u, 96u, 128u}) {
    OptimizeRequest R = request(WorkloadKind::Softmax);
    R.Shape.Rows = Rows;
    Tickets.push_back(Service.submit(R, [&](const OptimizeResponse &Resp) {
      if (Resp.St == OptimizeResponse::Status::Cancelled)
        ++CancelCallbacks;
    }));
  }
  Service.shutdown();
  for (Ticket &T : Tickets) {
    ASSERT_TRUE(T.valid());
    EXPECT_EQ(T.Response.get()->St, OptimizeResponse::Status::Cancelled);
  }
  EXPECT_EQ(CancelCallbacks.load(), 3u);

  ServiceStats S = Service.stats();
  EXPECT_EQ(S.Cancelled, 3u);
  EXPECT_EQ(S.QueuedNow, 0u);
  EXPECT_EQ(S.RunningNow, 0u);
  EXPECT_EQ(Service.submit(request(WorkloadKind::RmsNorm)).How,
            Admission::Rejected);
  EXPECT_GE(Service.stats().Rejected, 1u);
}

TEST(ServeTest, PersistFailuresAreCountedNotSwallowed) {
  gpusim::Gpu Device;
  // A regular file where the deploy directory should be: every
  // create_directories/store call must fail, even running as root.
  std::string Blocker = freshDir("cuasmrl_serve_blocker");
  {
    std::ofstream OS(Blocker);
    OS << "not a directory";
  }
  OptimizationService Service(Device,
                              tinyService(1, Blocker + "/deploy"));
  Ticket T = Service.submit(request(WorkloadKind::Softmax));
  ResponsePtr R = T.Response.get();
  ASSERT_EQ(R->St, OptimizeResponse::Status::Optimized);
  EXPECT_TRUE(R->Result.Verified);
  EXPECT_FALSE(R->Persisted);

  ServiceStats S = Service.stats();
  EXPECT_EQ(S.PersistFailures, 1u);
  EXPECT_EQ(S.PersistStores, 0u);
  EXPECT_EQ(S.DeployedKeys, 0u);
  std::filesystem::remove_all(Blocker);
}

TEST(ServeTest, RequestKeySeparatesConfigsAndGpuTypes) {
  core::OptimizeConfig Defaults = tinyConfig();
  OptimizeRequest A = request(WorkloadKind::Softmax);
  OptimizeRequest B = A;
  EXPECT_EQ(OptimizationService::requestKey(A, Defaults),
            OptimizationService::requestKey(B, Defaults));

  B.GpuType = "H100-SIM";
  EXPECT_NE(OptimizationService::requestKey(A, Defaults),
            OptimizationService::requestKey(B, Defaults));

  // A result-relevant config override must change the key (different
  // training seeds are different deployments)...
  OptimizeRequest C = A;
  C.Config = Defaults;
  C.Config->Ppo.Seed = Defaults.Ppo.Seed + 1;
  EXPECT_NE(OptimizationService::requestKey(A, Defaults),
            OptimizationService::requestKey(C, Defaults));

  // ...and so must a different stall table (it shapes the action mask,
  // hence the optimized schedule)...
  OptimizeRequest E = A;
  E.Config = Defaults;
  E.Config->Game.Table = analysis::StallTable::builtin();
  EXPECT_NE(OptimizationService::requestKey(A, Defaults),
            OptimizationService::requestKey(E, Defaults));

  // ...while wall-clock-only knobs must not (the determinism contract
  // makes worker counts irrelevant to the result).
  OptimizeRequest D = A;
  D.Config = Defaults;
  D.Config->RolloutWorkers = 8;
  D.Config->AutotuneWorkers = 8;
  EXPECT_EQ(OptimizationService::requestKey(A, Defaults),
            OptimizationService::requestKey(D, Defaults));
}

TEST(ServeTest, ThrowingCallbacksAreContainedOnBothPaths) {
  gpusim::Gpu Device;
  std::string Dir = freshDir("cuasmrl_serve_throw");
  OptimizationService Service(Device, tinyService(1, Dir));

  // Optimize-job path: the throw must neither kill the worker nor
  // wedge the service.
  Ticket A = Service.submit(request(WorkloadKind::Softmax),
                            [](const OptimizeResponse &) {
                              throw std::runtime_error("boom");
                            });
  EXPECT_EQ(A.Response.get()->St, OptimizeResponse::Status::Optimized);

  // Lookup-hit path: the throw must not leak the Outstanding count
  // (a leak would hang the drain below forever).
  Ticket B = Service.submit(request(WorkloadKind::Softmax),
                            [](const OptimizeResponse &) {
                              throw std::runtime_error("boom");
                            });
  EXPECT_EQ(B.How, Admission::LookupHit);

  Service.drain();
  ServiceStats S = Service.stats();
  EXPECT_EQ(S.Completed, 1u);
  EXPECT_EQ(S.LookupHits, 1u);
  // Still fully operational after both throws.
  Ticket C = Service.submit(request(WorkloadKind::RmsNorm));
  EXPECT_EQ(C.Response.get()->St, OptimizeResponse::Status::Optimized);
  std::filesystem::remove_all(Dir);
}

TEST(ServeTest, DrainQuiescesAndKeepsAccepting) {
  gpusim::Gpu Device;
  OptimizationService Service(Device, tinyService(/*Workers=*/2));
  Service.submit(request(WorkloadKind::Softmax));
  Service.submit(request(WorkloadKind::RmsNorm));
  Service.drain();
  ServiceStats S = Service.stats();
  EXPECT_EQ(S.QueuedNow, 0u);
  EXPECT_EQ(S.RunningNow, 0u);
  EXPECT_EQ(S.Completed, 2u);
  // Still accepting after a drain.
  Ticket T = Service.submit(request(WorkloadKind::Softmax));
  EXPECT_NE(T.How, Admission::Rejected);
  ASSERT_TRUE(T.valid());
  T.Response.wait();
}

TEST(ServeTest, AgingPromotesStarvedLowPriorityJobs) {
  // Starvation regression: an old low-priority job accrues effective
  // priority while queued (AgingInterval/AgingStep), so it eventually
  // outranks younger high-priority work instead of waiting forever.
  gpusim::Gpu Device;
  support::FakeClock Clock;
  ServiceConfig SC = tinyService(/*Workers=*/1);
  SC.StartPaused = true; // Admission fixed before the worker starts.
  SC.ClockSrc = &Clock;
  SC.AgingInterval = std::chrono::milliseconds(10);
  SC.AgingStep = 1;
  OptimizationService Service(Device, SC);

  std::mutex OrderMutex;
  std::vector<int> Completed;
  auto Submit = [&](unsigned Rows, int Priority) {
    OptimizeRequest R = request(WorkloadKind::Softmax, Priority);
    R.Shape.Rows = Rows;
    return Service.submit(R, [&, Priority](const OptimizeResponse &) {
      std::lock_guard<std::mutex> Lock(OrderMutex);
      Completed.push_back(Priority);
    });
  };
  // The low-priority job arrives first, then waits 100ms of fake time
  // (10 aging intervals -> effective priority 10) while two priority-5
  // jobs pile in behind it. Without aging it would run dead last.
  std::vector<Ticket> Tickets;
  Tickets.push_back(Submit(64, 0));
  Clock.advance(std::chrono::milliseconds(100));
  Tickets.push_back(Submit(96, 5));
  Tickets.push_back(Submit(128, 5));
  for (const Ticket &T : Tickets)
    ASSERT_EQ(T.How, Admission::Enqueued);

  Service.start();
  Service.drain();
  ASSERT_EQ(Completed.size(), 3u);
  EXPECT_EQ(Completed[0], 0); // Aged past both priority-5 jobs.
}

TEST(ServeTest, RejectedTicketsCarryReadyResponses) {
  // A rejected submission must resolve, not block: its future is
  // already ready with Status::Rejected and a reason, so generic
  // "submit then .get()" callers never hang on an unlucky admission.
  gpusim::Gpu Device;
  ServiceConfig SC = tinyService(/*Workers=*/1);
  SC.StartPaused = true;
  SC.MaxQueued = 1;
  OptimizationService Service(Device, SC);

  Ticket A = Service.trySubmit(request(WorkloadKind::Softmax));
  ASSERT_EQ(A.How, Admission::Enqueued);
  OptimizeRequest Other = request(WorkloadKind::RmsNorm);
  Ticket Full = Service.trySubmit(Other);
  EXPECT_EQ(Full.How, Admission::Rejected);
  EXPECT_FALSE(Full.valid()); // Still "not admitted"...
  ASSERT_TRUE(Full.Response.valid()); // ...but the future resolves.
  ASSERT_EQ(Full.Response.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  ResponsePtr R = Full.Response.get();
  EXPECT_EQ(R->St, OptimizeResponse::Status::Rejected);
  EXPECT_NE(R->Error.find("queue full"), std::string::npos);

  Service.shutdown();
  // Post-shutdown submissions reject with a clean drain status too.
  Ticket Late = Service.submit(request(WorkloadKind::Softmax));
  EXPECT_EQ(Late.How, Admission::Rejected);
  ASSERT_TRUE(Late.Response.valid());
  ASSERT_EQ(Late.Response.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  ResponsePtr L = Late.Response.get();
  EXPECT_EQ(L->St, OptimizeResponse::Status::Rejected);
  EXPECT_NE(L->Error.find("draining or shut down"), std::string::npos);
  EXPECT_FALSE(Service.accepting());
}

//===- rl/Ppo.cpp ----------------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "rl/Ppo.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

using namespace cuasmrl;
using namespace cuasmrl::rl;

Env::~Env() = default;
LockstepEnv::~LockstepEnv() = default;

namespace {

NetConfig netConfigFor(RolloutRunner &Runner, const PpoConfig &Config) {
  // Geometry over the WHOLE pool, not env 0: a mixed-kernel pool needs
  // the max row count and max action count (smaller envs pad their
  // masks; the forward pass derives rows per observation). The feature
  // width is the one dimension that must agree — it is baked into the
  // conv weights (conditioned embeddings share it via the operand-slot
  // padding target).
  NetConfig NC;
  NC.Features = Runner.env(0).obsFeatures();
  for (size_t I = 0; I < Runner.numEnvs(); ++I) {
    Env &E = Runner.env(I);
    assert(E.obsFeatures() == NC.Features &&
           "mixed-kernel pools must share one embedding feature width");
    NC.Length = std::max(NC.Length, E.obsRows());
    NC.Actions = std::max<size_t>(NC.Actions, E.actionCount());
  }
  NC.Channels = Config.Channels;
  NC.Hidden = Config.Hidden;
  return NC;
}

std::unique_ptr<RolloutRunner> makeRunner(std::vector<Env *> Envs,
                                          const PpoConfig &Config) {
  RolloutConfig RC;
  RC.Workers = Config.Workers;
  RC.Seed = Config.Seed;
  return std::make_unique<RolloutRunner>(std::move(Envs), RC);
}

} // namespace

PpoTrainer::PpoTrainer(std::vector<Env *> Envs, PpoConfig C)
    : OwnedRunner(makeRunner(std::move(Envs), C)), Runner(OwnedRunner.get()),
      Config(C), SampleRng(C.Seed), Net(netConfigFor(*Runner, C), SampleRng),
      Optimizer(Net.parameters(), C.Lr) {
  // RolloutLen == 0 would make train() spin forever on an empty batch.
  Config.RolloutLen = std::max(1u, Config.RolloutLen);
}

PpoTrainer::PpoTrainer(RolloutRunner &R, PpoConfig C)
    : Runner(&R), Config(C), SampleRng(C.Seed),
      Net(netConfigFor(*Runner, C), SampleRng),
      Optimizer(Net.parameters(), C.Lr) {
  Config.RolloutLen = std::max(1u, Config.RolloutLen);
}

UpdateStats PpoTrainer::update() {
  return updateFromBatch(Runner->collect(Net, Config.RolloutLen));
}

UpdateStats PpoTrainer::updateFromBatch(const TrajectoryBatch &Batch) {
  const std::vector<Trajectory> &Trajs = Batch.Trajectories;
  const size_t NumTrajs = Trajs.size();
  assert(NumTrajs > 0 && "empty trajectory batch");
  assert(Batch.totalSteps() > 0 && "zero-step trajectory batch");

  for (const Trajectory &Traj : Trajs)
    for (double Return : Traj.CompletedReturns)
      EpisodeReturns.push_back(Return);
  StepsDone += static_cast<unsigned>(Batch.totalSteps());

  // ---- GAE ------------------------------------------------------------------
  // Per-trajectory and order-free: each trajectory's advantages depend
  // only on its own transitions and bootstrap value (batching-invariant
  // reduction — slot membership in a larger batch changes nothing).
  std::vector<std::vector<float>> Adv(NumTrajs), Ret(NumTrajs);
  for (size_t J = 0; J < NumTrajs; ++J) {
    const Trajectory &Traj = Trajs[J];
    const size_t T = Traj.Steps.size();
    Adv[J].resize(T);
    Ret[J].resize(T);
    float NextValue =
        Net.forward(Traj.BootstrapObs, Traj.BootstrapMask).Value.item();
    float Gae = 0.0f;
    for (size_t Step = T; Step-- > 0;) {
      const Transition &S = Traj.Steps[Step];
      float VNext = Step + 1 < T ? Traj.Steps[Step + 1].Value : NextValue;
      float NonTerminal = S.Done ? 0.0f : 1.0f;
      float Delta = S.Reward +
                    static_cast<float>(Config.Gamma) * VNext * NonTerminal -
                    S.Value;
      Gae = Delta + static_cast<float>(Config.Gamma * Config.GaeLambda) *
                        NonTerminal * Gae;
      Adv[J][Step] = Gae;
      Ret[J][Step] = Gae + S.Value;
    }
  }

  // ---- optimization ----------------------------------------------------------
  std::vector<std::pair<size_t, size_t>> Index;
  Index.reserve(Batch.totalSteps());
  for (size_t J = 0; J < NumTrajs; ++J)
    for (size_t Step = 0; Step < Trajs[J].Steps.size(); ++Step)
      Index.push_back({J, Step});

  if (Config.AnnealLr) {
    double Frac = 1.0 - static_cast<double>(StepsDone) /
                            std::max(1u, Config.TotalSteps);
    Optimizer.setLr(Config.Lr * std::max(0.05, Frac));
  }

  double SumPolicyLoss = 0, SumValueLoss = 0, SumEntropy = 0, SumKl = 0,
         SumClip = 0;
  size_t BatchCount = 0;

  size_t BatchSize = Index.size();
  size_t MbSize = std::max<size_t>(1, BatchSize / Config.MiniBatches);
  for (unsigned Epoch = 0; Epoch < Config.Epochs; ++Epoch) {
    // Per-epoch cancellation checkpoint (the serving layer's deadline
    // granularity inside an optimization phase).
    if (Cancel)
      Cancel->checkpoint();
    SampleRng.shuffle(Index);
    for (size_t Start = 0; Start < BatchSize; Start += MbSize) {
      size_t End = std::min(BatchSize, Start + MbSize);
      size_t Count = End - Start;

      // Advantage normalization within the minibatch.
      double Mean = 0, Var = 0;
      for (size_t I = Start; I < End; ++I)
        Mean += Adv[Index[I].first][Index[I].second];
      Mean /= Count;
      for (size_t I = Start; I < End; ++I) {
        double D = Adv[Index[I].first][Index[I].second] - Mean;
        Var += D * D;
      }
      double Std = std::sqrt(Var / Count) + 1e-8;

      Tensor Loss = Tensor::scalar(0.0f);
      double KlAccum = 0, ClipAccum = 0, EntAccum = 0, PlAccum = 0,
             VlAccum = 0;
      for (size_t I = Start; I < End; ++I) {
        const Transition &S = Trajs[Index[I].first].Steps[Index[I].second];
        float A = static_cast<float>(
            Config.NormAdvantage
                ? (Adv[Index[I].first][Index[I].second] - Mean) / Std
                : Adv[Index[I].first][Index[I].second]);
        float R = Ret[Index[I].first][Index[I].second];

        ActorCritic::Output Out = Net.forward(S.Obs, S.Mask);
        Tensor LogP = logSoftmax(Out.MaskedLogits);
        Tensor NewLogProb = gather(LogP, S.Action);
        Tensor Ratio =
            expT(scalarAdd(NewLogProb, -S.LogProb)); // exp(new - old).

        // Clipped surrogate objective.
        Tensor Surr1 = scalarMul(Ratio, A);
        Tensor Surr2 = scalarMul(
            clampRange(Ratio, 1.0f - static_cast<float>(Config.ClipCoef),
                       1.0f + static_cast<float>(Config.ClipCoef)),
            A);
        Tensor PolicyLoss = neg(minElem(Surr1, Surr2));

        // Value loss, optionally clipped around the old value.
        Tensor VDiff = scalarAdd(Out.Value, -R);
        Tensor VLoss = mul(VDiff, VDiff);
        if (Config.ClipVLoss) {
          Tensor VClipped =
              scalarAdd(clampRange(scalarAdd(Out.Value, -S.Value),
                                   -static_cast<float>(Config.ClipCoef),
                                   static_cast<float>(Config.ClipCoef)),
                        S.Value - R);
          Tensor VLossClipped = mul(VClipped, VClipped);
          // max(a, b) = -min(-a, -b).
          VLoss = neg(minElem(neg(VLoss), neg(VLossClipped)));
        }

        // Entropy of the masked categorical.
        Tensor Probs = expT(LogP);
        Tensor Entropy = neg(sumT(mul(Probs, LogP)));

        Tensor SampleLoss =
            add(PolicyLoss,
                add(scalarMul(VLoss, static_cast<float>(Config.VfCoef) *
                                         0.5f),
                    scalarMul(Entropy,
                              -static_cast<float>(Config.EntCoef))));
        Loss = add(Loss, SampleLoss);

        // Diagnostics.
        double RatioVal = Ratio.item();
        double LogRatio = NewLogProb.item() - S.LogProb;
        KlAccum += (RatioVal - 1.0) - LogRatio;
        ClipAccum += std::fabs(RatioVal - 1.0) > Config.ClipCoef;
        EntAccum += Entropy.item();
        PlAccum += PolicyLoss.item();
        VlAccum += VLoss.item();
      }

      Loss = scalarMul(Loss, 1.0f / static_cast<float>(Count));
      Optimizer.zeroGrad();
      Loss.backward();
      clipGradNorm(Net.parameters(), Config.MaxGradNorm);
      Optimizer.step();

      SumPolicyLoss += PlAccum / Count;
      SumValueLoss += VlAccum / Count;
      SumEntropy += EntAccum / Count;
      SumKl += KlAccum / Count;
      SumClip += ClipAccum / Count;
      ++BatchCount;
    }
  }

  UpdateStats Stats;
  Stats.StepsDone = StepsDone;
  Stats.PolicyLoss = SumPolicyLoss / BatchCount;
  Stats.ValueLoss = SumValueLoss / BatchCount;
  Stats.Entropy = SumEntropy / BatchCount;
  Stats.ApproxKl = SumKl / BatchCount;
  Stats.ClipFraction = SumClip / BatchCount;
  if (!EpisodeReturns.empty()) {
    size_t Window = std::min<size_t>(EpisodeReturns.size(), 16);
    double Sum = 0;
    for (size_t I = EpisodeReturns.size() - Window;
         I < EpisodeReturns.size(); ++I)
      Sum += EpisodeReturns[I];
    Stats.MeanEpisodicReturn = Sum / Window;
  }
  return Stats;
}

std::vector<UpdateStats> PpoTrainer::train() {
  std::vector<UpdateStats> Series;
  while (StepsDone < Config.TotalSteps) {
    if (Cancel)
      Cancel->checkpoint();
    Series.push_back(update());
  }
  return Series;
}

std::vector<UpdateStats> PpoTrainer::trainOn(RolloutRunner &R,
                                             unsigned Steps) {
  std::vector<UpdateStats> Series;
  const unsigned Target = StepsDone + std::max(1u, Steps);
  while (StepsDone < Target) {
    if (Cancel)
      Cancel->checkpoint();
    Series.push_back(updateFromBatch(R.collect(Net, Config.RolloutLen)));
  }
  return Series;
}

size_t PpoTrainer::warmStartFrom(std::istream &IS) {
  return Net.loadCompatible(IS);
}

size_t PpoTrainer::warmStartFrom(const std::string &Blob) {
  std::istringstream IS(Blob);
  return Net.loadCompatible(IS);
}

std::vector<unsigned> PpoTrainer::playGreedy(Env &E, unsigned MaxSteps) {
  std::vector<unsigned> Actions;
  std::vector<float> Obs = E.reset();
  for (unsigned Step = 0; Step < MaxSteps; ++Step) {
    if (Cancel)
      Cancel->checkpoint();
    std::vector<uint8_t> Mask = E.actionMask();
    if (std::none_of(Mask.begin(), Mask.end(),
                     [](uint8_t M) { return M != 0; }))
      break;
    // Pad up to the net's action count (mixed-kernel nets): padded
    // logits sit at the mask fill value, below every legal action.
    RolloutRunner::padMaskToNet(Mask, Net.config().Actions);
    ActorCritic::Output Out = Net.forward(Obs, Mask);
    const std::vector<float> &Logits = Out.MaskedLogits.data();
    unsigned Action = static_cast<unsigned>(std::distance(
        Logits.begin(), std::max_element(Logits.begin(), Logits.end())));
    Actions.push_back(Action);
    EnvStep Res = E.step(Action);
    if (Res.Done)
      break;
    Obs = std::move(Res.Obs);
  }
  return Actions;
}

//===- rl/Ppo.cpp ----------------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "rl/Ppo.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace cuasmrl;
using namespace cuasmrl::rl;

Env::~Env() = default;

namespace {

NetConfig netConfigFor(const std::vector<Env *> &Envs,
                       const PpoConfig &Config) {
  assert(!Envs.empty() && "need at least one environment");
  NetConfig NC;
  NC.Features = Envs[0]->obsFeatures();
  NC.Length = Envs[0]->obsRows();
  NC.Actions = Envs[0]->actionCount();
  NC.Channels = Config.Channels;
  NC.Hidden = Config.Hidden;
  return NC;
}

} // namespace

PpoTrainer::PpoTrainer(std::vector<Env *> E, PpoConfig C)
    : Envs(std::move(E)), Config(C), SampleRng(C.Seed),
      Net(netConfigFor(Envs, C), SampleRng),
      Optimizer(Net.parameters(), C.Lr) {
  CurrentObs.resize(Envs.size());
  RunningReturn.assign(Envs.size(), 0.0);
  for (size_t I = 0; I < Envs.size(); ++I)
    CurrentObs[I] = Envs[I]->reset();
}

unsigned PpoTrainer::sampleAction(const Tensor &MaskedLogits) {
  // Categorical over the masked softmax.
  const std::vector<float> &Logits = MaskedLogits.data();
  float Max = *std::max_element(Logits.begin(), Logits.end());
  std::vector<double> Probs(Logits.size());
  double Z = 0.0;
  for (size_t I = 0; I < Logits.size(); ++I) {
    Probs[I] = std::exp(static_cast<double>(Logits[I]) - Max);
    Z += Probs[I];
  }
  for (double &P : Probs)
    P /= Z;
  return static_cast<unsigned>(SampleRng.categorical(Probs));
}

UpdateStats PpoTrainer::update() {
  const size_t NumEnvs = Envs.size();
  const size_t T = Config.RolloutLen;
  std::vector<std::vector<Sample>> Roll(NumEnvs,
                                        std::vector<Sample>(T));

  // ---- rollout ------------------------------------------------------------
  for (size_t Step = 0; Step < T; ++Step) {
    for (size_t E = 0; E < NumEnvs; ++E) {
      Sample &S = Roll[E][Step];
      S.Obs = CurrentObs[E];
      S.Mask = Envs[E]->actionMask();
      bool AnyLegal =
          std::any_of(S.Mask.begin(), S.Mask.end(),
                      [](uint8_t M) { return M != 0; });
      if (!AnyLegal)
        S.Mask.assign(S.Mask.size(), 1);

      ActorCritic::Output Out = Net.forward(S.Obs, S.Mask);
      S.Action = sampleAction(Out.MaskedLogits);
      // Log-prob of the chosen action under the masked softmax.
      const std::vector<float> &Logits = Out.MaskedLogits.data();
      float Max = *std::max_element(Logits.begin(), Logits.end());
      double Z = 0.0;
      for (float L : Logits)
        Z += std::exp(static_cast<double>(L) - Max);
      S.LogProb = static_cast<float>(Logits[S.Action] - Max - std::log(Z));
      S.Value = Out.Value.item();

      EnvStep Res = Envs[E]->step(S.Action);
      S.Reward = static_cast<float>(Res.Reward);
      S.Done = Res.Done;
      RunningReturn[E] += Res.Reward;
      if (Res.Done) {
        EpisodeReturns.push_back(RunningReturn[E]);
        RunningReturn[E] = 0.0;
        CurrentObs[E] = Envs[E]->reset();
      } else {
        CurrentObs[E] = std::move(Res.Obs);
      }
    }
  }
  StepsDone += static_cast<unsigned>(T * NumEnvs);

  // ---- GAE ------------------------------------------------------------------
  std::vector<std::vector<float>> Adv(NumEnvs, std::vector<float>(T));
  std::vector<std::vector<float>> Ret(NumEnvs, std::vector<float>(T));
  for (size_t E = 0; E < NumEnvs; ++E) {
    // Bootstrap with the value of the post-rollout observation.
    std::vector<uint8_t> Mask = Envs[E]->actionMask();
    if (std::none_of(Mask.begin(), Mask.end(),
                     [](uint8_t M) { return M != 0; }))
      Mask.assign(Mask.size(), 1);
    float NextValue = Net.forward(CurrentObs[E], Mask).Value.item();
    float Gae = 0.0f;
    for (size_t Step = T; Step-- > 0;) {
      const Sample &S = Roll[E][Step];
      float VNext = Step + 1 < T ? Roll[E][Step + 1].Value : NextValue;
      float NonTerminal = S.Done ? 0.0f : 1.0f;
      float Delta = S.Reward +
                    static_cast<float>(Config.Gamma) * VNext * NonTerminal -
                    S.Value;
      Gae = Delta + static_cast<float>(Config.Gamma * Config.GaeLambda) *
                        NonTerminal * Gae;
      Adv[E][Step] = Gae;
      Ret[E][Step] = Gae + S.Value;
    }
  }

  // ---- optimization ----------------------------------------------------------
  std::vector<std::pair<size_t, size_t>> Index;
  Index.reserve(NumEnvs * T);
  for (size_t E = 0; E < NumEnvs; ++E)
    for (size_t Step = 0; Step < T; ++Step)
      Index.push_back({E, Step});

  if (Config.AnnealLr) {
    double Frac = 1.0 - static_cast<double>(StepsDone) /
                            std::max(1u, Config.TotalSteps);
    Optimizer.setLr(Config.Lr * std::max(0.05, Frac));
  }

  double SumPolicyLoss = 0, SumValueLoss = 0, SumEntropy = 0, SumKl = 0,
         SumClip = 0;
  size_t BatchCount = 0;

  size_t Batch = Index.size();
  size_t MbSize = std::max<size_t>(1, Batch / Config.MiniBatches);
  for (unsigned Epoch = 0; Epoch < Config.Epochs; ++Epoch) {
    SampleRng.shuffle(Index);
    for (size_t Start = 0; Start < Batch; Start += MbSize) {
      size_t End = std::min(Batch, Start + MbSize);
      size_t Count = End - Start;

      // Advantage normalization within the minibatch.
      double Mean = 0, Var = 0;
      for (size_t I = Start; I < End; ++I)
        Mean += Adv[Index[I].first][Index[I].second];
      Mean /= Count;
      for (size_t I = Start; I < End; ++I) {
        double D = Adv[Index[I].first][Index[I].second] - Mean;
        Var += D * D;
      }
      double Std = std::sqrt(Var / Count) + 1e-8;

      Tensor Loss = Tensor::scalar(0.0f);
      double KlAccum = 0, ClipAccum = 0, EntAccum = 0, PlAccum = 0,
             VlAccum = 0;
      for (size_t I = Start; I < End; ++I) {
        const Sample &S = Roll[Index[I].first][Index[I].second];
        float A = static_cast<float>(
            Config.NormAdvantage
                ? (Adv[Index[I].first][Index[I].second] - Mean) / Std
                : Adv[Index[I].first][Index[I].second]);
        float R = Ret[Index[I].first][Index[I].second];

        ActorCritic::Output Out = Net.forward(S.Obs, S.Mask);
        Tensor LogP = logSoftmax(Out.MaskedLogits);
        Tensor NewLogProb = gather(LogP, S.Action);
        Tensor Ratio =
            expT(scalarAdd(NewLogProb, -S.LogProb)); // exp(new - old).

        // Clipped surrogate objective.
        Tensor Surr1 = scalarMul(Ratio, A);
        Tensor Surr2 = scalarMul(
            clampRange(Ratio, 1.0f - static_cast<float>(Config.ClipCoef),
                       1.0f + static_cast<float>(Config.ClipCoef)),
            A);
        Tensor PolicyLoss = neg(minElem(Surr1, Surr2));

        // Value loss, optionally clipped around the old value.
        Tensor VDiff = scalarAdd(Out.Value, -R);
        Tensor VLoss = mul(VDiff, VDiff);
        if (Config.ClipVLoss) {
          Tensor VClipped =
              scalarAdd(clampRange(scalarAdd(Out.Value, -S.Value),
                                   -static_cast<float>(Config.ClipCoef),
                                   static_cast<float>(Config.ClipCoef)),
                        S.Value - R);
          Tensor VLossClipped = mul(VClipped, VClipped);
          // max(a, b) = -min(-a, -b).
          VLoss = neg(minElem(neg(VLoss), neg(VLossClipped)));
        }

        // Entropy of the masked categorical.
        Tensor Probs = expT(LogP);
        Tensor Entropy = neg(sumT(mul(Probs, LogP)));

        Tensor SampleLoss =
            add(PolicyLoss,
                add(scalarMul(VLoss, static_cast<float>(Config.VfCoef) *
                                         0.5f),
                    scalarMul(Entropy,
                              -static_cast<float>(Config.EntCoef))));
        Loss = add(Loss, SampleLoss);

        // Diagnostics.
        double RatioVal = Ratio.item();
        double LogRatio = NewLogProb.item() - S.LogProb;
        KlAccum += (RatioVal - 1.0) - LogRatio;
        ClipAccum += std::fabs(RatioVal - 1.0) > Config.ClipCoef;
        EntAccum += Entropy.item();
        PlAccum += PolicyLoss.item();
        VlAccum += VLoss.item();
      }

      Loss = scalarMul(Loss, 1.0f / static_cast<float>(Count));
      Optimizer.zeroGrad();
      Loss.backward();
      clipGradNorm(Net.parameters(), Config.MaxGradNorm);
      Optimizer.step();

      SumPolicyLoss += PlAccum / Count;
      SumValueLoss += VlAccum / Count;
      SumEntropy += EntAccum / Count;
      SumKl += KlAccum / Count;
      SumClip += ClipAccum / Count;
      ++BatchCount;
    }
  }

  UpdateStats Stats;
  Stats.StepsDone = StepsDone;
  Stats.PolicyLoss = SumPolicyLoss / BatchCount;
  Stats.ValueLoss = SumValueLoss / BatchCount;
  Stats.Entropy = SumEntropy / BatchCount;
  Stats.ApproxKl = SumKl / BatchCount;
  Stats.ClipFraction = SumClip / BatchCount;
  if (!EpisodeReturns.empty()) {
    size_t Window = std::min<size_t>(EpisodeReturns.size(), 16);
    double Sum = 0;
    for (size_t I = EpisodeReturns.size() - Window;
         I < EpisodeReturns.size(); ++I)
      Sum += EpisodeReturns[I];
    Stats.MeanEpisodicReturn = Sum / Window;
  }
  return Stats;
}

std::vector<UpdateStats> PpoTrainer::train() {
  std::vector<UpdateStats> Series;
  while (StepsDone < Config.TotalSteps)
    Series.push_back(update());
  return Series;
}

std::vector<unsigned> PpoTrainer::playGreedy(Env &E, unsigned MaxSteps) {
  std::vector<unsigned> Actions;
  std::vector<float> Obs = E.reset();
  for (unsigned Step = 0; Step < MaxSteps; ++Step) {
    std::vector<uint8_t> Mask = E.actionMask();
    if (std::none_of(Mask.begin(), Mask.end(),
                     [](uint8_t M) { return M != 0; }))
      break;
    ActorCritic::Output Out = Net.forward(Obs, Mask);
    const std::vector<float> &Logits = Out.MaskedLogits.data();
    unsigned Action = static_cast<unsigned>(std::distance(
        Logits.begin(), std::max_element(Logits.begin(), Logits.end())));
    Actions.push_back(Action);
    EnvStep Res = E.step(Action);
    if (Res.Done)
      break;
    Obs = std::move(Res.Obs);
  }
  return Actions;
}

//===- rl/Env.h - Gym-like environment interface ------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The minimal environment surface PPO needs (the paper wraps its
/// reordering transition in "the standardized Gym interface", §3.7).
/// The assembly game adapts to this in core/; tests plug in toy
/// environments to validate the algorithm in isolation.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_RL_ENV_H
#define CUASMRL_RL_ENV_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cuasmrl {
namespace rl {

/// One environment transition.
struct EnvStep {
  std::vector<float> Obs;
  double Reward = 0.0;
  bool Done = false;
};

/// Optional split-step surface for lockstep batch collection (see
/// rl/RolloutRunner). An environment whose step() cost is dominated by
/// a simulation/measurement that sibling envs can advance together
/// exposes the step in three phases:
///
///   beginStep(A);                       // apply A up to the measurement
///   measureBatch({all pending envs});   // one cross-env lockstep round
///   finishStep();                       // complete the transition
///
/// Contract: for any action, that sequence (with this env as the sole
/// pending member) must be *bit-identical* to step(A) — same EnvStep,
/// same successor state. measureBatch() receives every pending sibling
/// in slot order and is called on the first of them; implementations
/// must tolerate (and serially advance) peers of a foreign concrete
/// type.
class LockstepEnv {
public:
  virtual ~LockstepEnv();
  /// Phase 1: applies \p Action up to (not including) the expensive
  /// measurement.
  virtual void beginStep(unsigned Action) = 0;
  /// Phase 2: runs the pending measurements of every env in
  /// \p Pending together (each exactly once per begin/finish pair).
  virtual void measureBatch(const std::vector<LockstepEnv *> &Pending) = 0;
  /// Phase 3: completes the transition begun by beginStep().
  virtual EnvStep finishStep() = 0;
};

/// Abstract episodic environment with invalid-action masking.
///
/// Thread-safety contract: an Env instance is single-threaded — the
/// rollout engine steps each env from exactly one worker at a time,
/// never two. Implementations may therefore keep mutable state without
/// locking, but must not share mutable state *between* instances
/// unless that state is itself thread-safe (the assembly game shares
/// only a MeasurementCache, which is). reset()/step()/actionMask() are
/// called from worker threads; the three shape accessors must be safe
/// to call at any time.
class Env {
public:
  virtual ~Env();

  virtual std::vector<float> reset() = 0;
  virtual EnvStep step(unsigned Action) = 0;
  /// Legality per action; all-zero masks are treated as uniform.
  virtual std::vector<uint8_t> actionMask() = 0;
  virtual unsigned actionCount() const = 0;
  /// Observation matrix shape (instructions x features).
  virtual size_t obsRows() const = 0;
  virtual size_t obsFeatures() const = 0;
  /// This env's split-step surface, or null when step() is indivisible.
  /// The rollout engine only collects in lockstep when every pool
  /// member returns non-null.
  virtual LockstepEnv *lockstep() { return nullptr; }
};

} // namespace rl
} // namespace cuasmrl

#endif // CUASMRL_RL_ENV_H

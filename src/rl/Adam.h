//===- rl/Adam.h - Adam optimizer + gradient clipping -------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adam with the PPO-conventional epsilon (1e-5) and global-norm
/// gradient clipping, per the implementation-details study [11].
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_RL_ADAM_H
#define CUASMRL_RL_ADAM_H

#include "rl/Tensor.h"

namespace cuasmrl {
namespace rl {

/// Adam over a fixed parameter list.
class Adam {
public:
  explicit Adam(std::vector<Tensor> Params, double Lr = 2.5e-4,
                double Beta1 = 0.9, double Beta2 = 0.999,
                double Eps = 1e-5);

  /// Applies one update from the accumulated gradients.
  void step();
  /// Clears gradients of every parameter.
  void zeroGrad();

  void setLr(double NewLr) { Lr = NewLr; }
  double lr() const { return Lr; }

private:
  std::vector<Tensor> Params;
  std::vector<std::vector<float>> M, V;
  double Lr, Beta1, Beta2, Eps;
  long T = 0;
};

/// Scales gradients so their global L2 norm is at most \p MaxNorm.
/// \returns the pre-clip norm.
double clipGradNorm(const std::vector<Tensor> &Params, double MaxNorm);

} // namespace rl
} // namespace cuasmrl

#endif // CUASMRL_RL_ADAM_H

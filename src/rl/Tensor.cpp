//===- rl/Tensor.cpp -----------------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "rl/Tensor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>

using namespace cuasmrl;
using namespace cuasmrl::rl;

Tensor Tensor::zeros(std::vector<size_t> Shape, bool RequiresGrad) {
  auto N = std::make_shared<TensorNode>();
  size_t Total = 1;
  for (size_t D : Shape)
    Total *= D;
  N->Data.assign(Total, 0.0f);
  N->Grad.assign(Total, 0.0f);
  N->Shape = std::move(Shape);
  N->RequiresGrad = RequiresGrad;
  return Tensor(N);
}

Tensor Tensor::fromVector(std::vector<float> Data, std::vector<size_t> Shape,
                          bool RequiresGrad) {
  auto N = std::make_shared<TensorNode>();
  size_t Total = 1;
  for (size_t D : Shape)
    Total *= D;
  assert(Total == Data.size() && "shape does not match data size");
  N->Grad.assign(Data.size(), 0.0f);
  N->Data = std::move(Data);
  N->Shape = std::move(Shape);
  N->RequiresGrad = RequiresGrad;
  return Tensor(N);
}

Tensor Tensor::scalar(float Value, bool RequiresGrad) {
  return fromVector({Value}, {1}, RequiresGrad);
}

void Tensor::zeroGrad() { std::fill(N->Grad.begin(), N->Grad.end(), 0.0f); }

void Tensor::backward() {
  assert(N->size() == 1 && "backward() expects a scalar loss");
  // Topological order by iterative DFS.
  std::vector<TensorNode *> Order;
  std::vector<TensorNode *> Stack = {N.get()};
  while (!Stack.empty()) {
    TensorNode *Cur = Stack.back();
    if (Cur->Visited == 2) {
      Stack.pop_back();
      continue;
    }
    if (Cur->Visited == 1) {
      Cur->Visited = 2;
      Order.push_back(Cur);
      Stack.pop_back();
      continue;
    }
    Cur->Visited = 1;
    for (const auto &P : Cur->Parents)
      if (P->Visited == 0)
        Stack.push_back(P.get());
  }
  N->Grad[0] = 1.0f;
  for (auto It = Order.rbegin(); It != Order.rend(); ++It) {
    if ((*It)->Backward)
      (*It)->Backward();
    (*It)->Visited = 0;
  }
}

namespace {

std::shared_ptr<TensorNode> makeNode(std::vector<size_t> Shape,
                                     std::vector<std::shared_ptr<TensorNode>>
                                         Parents) {
  auto N = std::make_shared<TensorNode>();
  size_t Total = 1;
  for (size_t D : Shape)
    Total *= D;
  N->Data.assign(Total, 0.0f);
  N->Grad.assign(Total, 0.0f);
  N->Shape = std::move(Shape);
  for (const auto &P : Parents)
    N->RequiresGrad = N->RequiresGrad || P->RequiresGrad;
  N->Parents = std::move(Parents);
  return N;
}

} // namespace

Tensor rl::add(const Tensor &A, const Tensor &B) {
  assert(A.size() == B.size());
  auto N = makeNode(A.shape(), {A.node(), B.node()});
  for (size_t I = 0; I < N->size(); ++I)
    N->Data[I] = A.data()[I] + B.data()[I];
  auto An = A.node(), Bn = B.node();
  std::weak_ptr<TensorNode> Self = N;
  N->Backward = [An, Bn, Self] {
    auto S = Self.lock();
    for (size_t I = 0; I < S->size(); ++I) {
      An->Grad[I] += S->Grad[I];
      Bn->Grad[I] += S->Grad[I];
    }
  };
  return Tensor(N);
}

Tensor rl::sub(const Tensor &A, const Tensor &B) {
  assert(A.size() == B.size());
  auto N = makeNode(A.shape(), {A.node(), B.node()});
  for (size_t I = 0; I < N->size(); ++I)
    N->Data[I] = A.data()[I] - B.data()[I];
  auto An = A.node(), Bn = B.node();
  std::weak_ptr<TensorNode> Self = N;
  N->Backward = [An, Bn, Self] {
    auto S = Self.lock();
    for (size_t I = 0; I < S->size(); ++I) {
      An->Grad[I] += S->Grad[I];
      Bn->Grad[I] -= S->Grad[I];
    }
  };
  return Tensor(N);
}

Tensor rl::mul(const Tensor &A, const Tensor &B) {
  assert(A.size() == B.size());
  auto N = makeNode(A.shape(), {A.node(), B.node()});
  for (size_t I = 0; I < N->size(); ++I)
    N->Data[I] = A.data()[I] * B.data()[I];
  auto An = A.node(), Bn = B.node();
  std::weak_ptr<TensorNode> Self = N;
  N->Backward = [An, Bn, Self] {
    auto S = Self.lock();
    for (size_t I = 0; I < S->size(); ++I) {
      An->Grad[I] += S->Grad[I] * Bn->Data[I];
      Bn->Grad[I] += S->Grad[I] * An->Data[I];
    }
  };
  return Tensor(N);
}

Tensor rl::minElem(const Tensor &A, const Tensor &B) {
  assert(A.size() == B.size());
  auto N = makeNode(A.shape(), {A.node(), B.node()});
  for (size_t I = 0; I < N->size(); ++I)
    N->Data[I] = std::min(A.data()[I], B.data()[I]);
  auto An = A.node(), Bn = B.node();
  std::weak_ptr<TensorNode> Self = N;
  N->Backward = [An, Bn, Self] {
    auto S = Self.lock();
    for (size_t I = 0; I < S->size(); ++I) {
      if (An->Data[I] <= Bn->Data[I])
        An->Grad[I] += S->Grad[I];
      else
        Bn->Grad[I] += S->Grad[I];
    }
  };
  return Tensor(N);
}

Tensor rl::neg(const Tensor &A) { return scalarMul(A, -1.0f); }

Tensor rl::expT(const Tensor &A) {
  auto N = makeNode(A.shape(), {A.node()});
  for (size_t I = 0; I < N->size(); ++I)
    N->Data[I] = std::exp(A.data()[I]);
  auto An = A.node();
  std::weak_ptr<TensorNode> Self = N;
  N->Backward = [An, Self] {
    auto S = Self.lock();
    for (size_t I = 0; I < S->size(); ++I)
      An->Grad[I] += S->Grad[I] * S->Data[I];
  };
  return Tensor(N);
}

Tensor rl::relu(const Tensor &A) {
  auto N = makeNode(A.shape(), {A.node()});
  for (size_t I = 0; I < N->size(); ++I)
    N->Data[I] = std::max(0.0f, A.data()[I]);
  auto An = A.node();
  std::weak_ptr<TensorNode> Self = N;
  N->Backward = [An, Self] {
    auto S = Self.lock();
    for (size_t I = 0; I < S->size(); ++I)
      if (An->Data[I] > 0.0f)
        An->Grad[I] += S->Grad[I];
  };
  return Tensor(N);
}

Tensor rl::tanhT(const Tensor &A) {
  auto N = makeNode(A.shape(), {A.node()});
  for (size_t I = 0; I < N->size(); ++I)
    N->Data[I] = std::tanh(A.data()[I]);
  auto An = A.node();
  std::weak_ptr<TensorNode> Self = N;
  N->Backward = [An, Self] {
    auto S = Self.lock();
    for (size_t I = 0; I < S->size(); ++I)
      An->Grad[I] += S->Grad[I] * (1.0f - S->Data[I] * S->Data[I]);
  };
  return Tensor(N);
}

Tensor rl::clampRange(const Tensor &A, float Lo, float Hi) {
  auto N = makeNode(A.shape(), {A.node()});
  for (size_t I = 0; I < N->size(); ++I)
    N->Data[I] = std::clamp(A.data()[I], Lo, Hi);
  auto An = A.node();
  std::weak_ptr<TensorNode> Self = N;
  N->Backward = [An, Self, Lo, Hi] {
    auto S = Self.lock();
    for (size_t I = 0; I < S->size(); ++I)
      if (An->Data[I] > Lo && An->Data[I] < Hi)
        An->Grad[I] += S->Grad[I];
  };
  return Tensor(N);
}

Tensor rl::scalarMul(const Tensor &A, float Sc) {
  auto N = makeNode(A.shape(), {A.node()});
  for (size_t I = 0; I < N->size(); ++I)
    N->Data[I] = A.data()[I] * Sc;
  auto An = A.node();
  std::weak_ptr<TensorNode> Self = N;
  N->Backward = [An, Self, Sc] {
    auto S = Self.lock();
    for (size_t I = 0; I < S->size(); ++I)
      An->Grad[I] += S->Grad[I] * Sc;
  };
  return Tensor(N);
}

Tensor rl::scalarAdd(const Tensor &A, float Sc) {
  auto N = makeNode(A.shape(), {A.node()});
  for (size_t I = 0; I < N->size(); ++I)
    N->Data[I] = A.data()[I] + Sc;
  auto An = A.node();
  std::weak_ptr<TensorNode> Self = N;
  N->Backward = [An, Self] {
    auto S = Self.lock();
    for (size_t I = 0; I < S->size(); ++I)
      An->Grad[I] += S->Grad[I];
  };
  return Tensor(N);
}

Tensor rl::sumT(const Tensor &A) {
  auto N = makeNode({1}, {A.node()});
  float Total = 0.0f;
  for (float V : A.data())
    Total += V;
  N->Data[0] = Total;
  auto An = A.node();
  std::weak_ptr<TensorNode> Self = N;
  N->Backward = [An, Self] {
    auto S = Self.lock();
    for (size_t I = 0; I < An->size(); ++I)
      An->Grad[I] += S->Grad[0];
  };
  return Tensor(N);
}

Tensor rl::meanT(const Tensor &A) {
  return scalarMul(sumT(A), 1.0f / static_cast<float>(A.size()));
}

Tensor rl::concat(const Tensor &A, const Tensor &B) {
  auto N = makeNode({A.size() + B.size()}, {A.node(), B.node()});
  std::copy(A.data().begin(), A.data().end(), N->Data.begin());
  std::copy(B.data().begin(), B.data().end(),
            N->Data.begin() + A.size());
  auto An = A.node(), Bn = B.node();
  std::weak_ptr<TensorNode> Self = N;
  N->Backward = [An, Bn, Self] {
    auto S = Self.lock();
    for (size_t I = 0; I < An->size(); ++I)
      An->Grad[I] += S->Grad[I];
    for (size_t I = 0; I < Bn->size(); ++I)
      Bn->Grad[I] += S->Grad[An->size() + I];
  };
  return Tensor(N);
}

Tensor rl::gather(const Tensor &A, size_t Index) {
  assert(Index < A.size());
  auto N = makeNode({1}, {A.node()});
  N->Data[0] = A.data()[Index];
  auto An = A.node();
  std::weak_ptr<TensorNode> Self = N;
  N->Backward = [An, Self, Index] {
    auto S = Self.lock();
    An->Grad[Index] += S->Grad[0];
  };
  return Tensor(N);
}

Tensor rl::linear(const Tensor &W, const Tensor &X, const Tensor &B) {
  assert(W.shape().size() == 2 && "weight must be [Out, In]");
  size_t Out = W.shape()[0], In = W.shape()[1];
  assert(X.size() == In && B.size() == Out);
  auto N = makeNode({Out}, {W.node(), X.node(), B.node()});
  for (size_t O = 0; O < Out; ++O) {
    float Acc = B.data()[O];
    const float *Row = W.data().data() + O * In;
    for (size_t I = 0; I < In; ++I)
      Acc += Row[I] * X.data()[I];
    N->Data[O] = Acc;
  }
  auto Wn = W.node(), Xn = X.node(), Bn = B.node();
  std::weak_ptr<TensorNode> Self = N;
  N->Backward = [Wn, Xn, Bn, Self, Out, In] {
    auto S = Self.lock();
    for (size_t O = 0; O < Out; ++O) {
      float G = S->Grad[O];
      if (G == 0.0f)
        continue;
      Bn->Grad[O] += G;
      float *WRow = Wn->Grad.data() + O * In;
      const float *WData = Wn->Data.data() + O * In;
      for (size_t I = 0; I < In; ++I) {
        WRow[I] += G * Xn->Data[I];
        Xn->Grad[I] += G * WData[I];
      }
    }
  };
  return Tensor(N);
}

Tensor rl::conv1d(const Tensor &X, const Tensor &W, const Tensor &B) {
  assert(X.shape().size() == 2 && W.shape().size() == 3);
  size_t Cin = X.shape()[0], L = X.shape()[1];
  size_t Cout = W.shape()[0], K = W.shape()[2];
  assert(W.shape()[1] == Cin && B.size() == Cout && K % 2 == 1);
  long Pad = static_cast<long>(K / 2);

  auto N = makeNode({Cout, L}, {X.node(), W.node(), B.node()});
  for (size_t O = 0; O < Cout; ++O) {
    for (size_t P = 0; P < L; ++P) {
      float Acc = B.data()[O];
      for (size_t C = 0; C < Cin; ++C) {
        const float *XRow = X.data().data() + C * L;
        const float *WRow = W.data().data() + (O * Cin + C) * K;
        for (size_t T = 0; T < K; ++T) {
          long Pos = static_cast<long>(P) + static_cast<long>(T) - Pad;
          if (Pos >= 0 && Pos < static_cast<long>(L))
            Acc += WRow[T] * XRow[Pos];
        }
      }
      N->Data[O * L + P] = Acc;
    }
  }
  auto Xn = X.node(), Wn = W.node(), Bn = B.node();
  std::weak_ptr<TensorNode> Self = N;
  N->Backward = [Xn, Wn, Bn, Self, Cin, Cout, L, K, Pad] {
    auto S = Self.lock();
    for (size_t O = 0; O < Cout; ++O) {
      for (size_t P = 0; P < L; ++P) {
        float G = S->Grad[O * L + P];
        if (G == 0.0f)
          continue;
        Bn->Grad[O] += G;
        for (size_t C = 0; C < Cin; ++C) {
          float *XGrad = Xn->Grad.data() + C * L;
          const float *XRow = Xn->Data.data() + C * L;
          float *WGrad = Wn->Grad.data() + (O * Cin + C) * K;
          const float *WRow = Wn->Data.data() + (O * Cin + C) * K;
          for (size_t T = 0; T < K; ++T) {
            long Pos = static_cast<long>(P) + static_cast<long>(T) - Pad;
            if (Pos >= 0 && Pos < static_cast<long>(L)) {
              WGrad[T] += G * XRow[Pos];
              XGrad[Pos] += G * WRow[T];
            }
          }
        }
      }
    }
  };
  return Tensor(N);
}

Tensor rl::meanPool(const Tensor &X) {
  assert(X.shape().size() == 2);
  size_t C = X.shape()[0], L = X.shape()[1];
  auto N = makeNode({C}, {X.node()});
  for (size_t Ch = 0; Ch < C; ++Ch) {
    float Acc = 0.0f;
    for (size_t P = 0; P < L; ++P)
      Acc += X.data()[Ch * L + P];
    N->Data[Ch] = Acc / static_cast<float>(L);
  }
  auto Xn = X.node();
  std::weak_ptr<TensorNode> Self = N;
  N->Backward = [Xn, Self, C, L] {
    auto S = Self.lock();
    for (size_t Ch = 0; Ch < C; ++Ch) {
      float G = S->Grad[Ch] / static_cast<float>(L);
      for (size_t P = 0; P < L; ++P)
        Xn->Grad[Ch * L + P] += G;
    }
  };
  return Tensor(N);
}

Tensor rl::maxPool(const Tensor &X) {
  assert(X.shape().size() == 2);
  size_t C = X.shape()[0], L = X.shape()[1];
  auto N = makeNode({C}, {X.node()});
  auto ArgMax = std::make_shared<std::vector<size_t>>(C, 0);
  for (size_t Ch = 0; Ch < C; ++Ch) {
    size_t Best = 0;
    for (size_t P = 1; P < L; ++P)
      if (X.data()[Ch * L + P] > X.data()[Ch * L + Best])
        Best = P;
    (*ArgMax)[Ch] = Best;
    N->Data[Ch] = X.data()[Ch * L + Best];
  }
  auto Xn = X.node();
  std::weak_ptr<TensorNode> Self = N;
  N->Backward = [Xn, Self, ArgMax, L] {
    auto S = Self.lock();
    for (size_t Ch = 0; Ch < S->size(); ++Ch)
      Xn->Grad[Ch * L + (*ArgMax)[Ch]] += S->Grad[Ch];
  };
  return Tensor(N);
}

Tensor rl::maskedFill(const Tensor &A, const std::vector<uint8_t> &Mask) {
  assert(A.size() == Mask.size());
  auto N = makeNode(A.shape(), {A.node()});
  auto MaskCopy = std::make_shared<std::vector<uint8_t>>(Mask);
  for (size_t I = 0; I < N->size(); ++I)
    N->Data[I] = Mask[I] ? A.data()[I] : -1e9f;
  auto An = A.node();
  std::weak_ptr<TensorNode> Self = N;
  N->Backward = [An, Self, MaskCopy] {
    auto S = Self.lock();
    for (size_t I = 0; I < S->size(); ++I)
      if ((*MaskCopy)[I])
        An->Grad[I] += S->Grad[I];
  };
  return Tensor(N);
}

Tensor rl::logSoftmax(const Tensor &A) {
  auto N = makeNode(A.shape(), {A.node()});
  float Max = -1e30f;
  for (float V : A.data())
    Max = std::max(Max, V);
  float Sum = 0.0f;
  for (float V : A.data())
    Sum += std::exp(V - Max);
  float LogZ = Max + std::log(Sum);
  for (size_t I = 0; I < N->size(); ++I)
    N->Data[I] = A.data()[I] - LogZ;
  auto An = A.node();
  std::weak_ptr<TensorNode> Self = N;
  N->Backward = [An, Self] {
    auto S = Self.lock();
    float GradSum = 0.0f;
    for (float G : S->Grad)
      GradSum += G;
    for (size_t I = 0; I < S->size(); ++I)
      An->Grad[I] += S->Grad[I] - std::exp(S->Data[I]) * GradSum;
  };
  return Tensor(N);
}

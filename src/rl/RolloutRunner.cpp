//===- rl/RolloutRunner.cpp --------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "rl/RolloutRunner.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace cuasmrl;
using namespace cuasmrl::rl;

namespace {

/// Samples from the masked softmax and records the sample's log-prob.
unsigned sampleCategorical(const std::vector<float> &Logits, Rng &R,
                           float &LogProbOut) {
  float Max = *std::max_element(Logits.begin(), Logits.end());
  std::vector<double> Probs(Logits.size());
  double Z = 0.0;
  for (size_t I = 0; I < Logits.size(); ++I) {
    Probs[I] = std::exp(static_cast<double>(Logits[I]) - Max);
    Z += Probs[I];
  }
  for (double &P : Probs)
    P /= Z;
  unsigned Action = static_cast<unsigned>(R.categorical(Probs));
  LogProbOut =
      static_cast<float>(Logits[Action] - Max - std::log(Z));
  return Action;
}

} // namespace

RolloutRunner::RolloutRunner(std::vector<Env *> E, RolloutConfig C)
    : Envs(std::move(E)), Config(C) {
  assert(!Envs.empty() && "need at least one environment");
  SlotRngs.reserve(Envs.size());
  CurrentObs.resize(Envs.size());
  RunningReturn.assign(Envs.size(), 0.0);
  for (size_t I = 0; I < Envs.size(); ++I) {
    // Slot streams must be well-separated functions of (Seed, I) alone.
    SlotRngs.emplace_back(mixSeed(Config.Seed, I));
    CurrentObs[I] = Envs[I]->reset();
  }
  if (Config.Workers > 1)
    Pool = std::make_unique<support::ThreadPool>(Config.Workers);
}

RolloutRunner::RolloutRunner(std::vector<std::unique_ptr<Env>> E,
                             RolloutConfig C)
    : RolloutRunner(
          [&E] {
            std::vector<Env *> Raw;
            Raw.reserve(E.size());
            for (const std::unique_ptr<Env> &P : E)
              Raw.push_back(P.get());
            return Raw;
          }(),
          C) {
  Owned = std::move(E);
}

void RolloutRunner::padMaskToNet(std::vector<uint8_t> &Mask,
                                 size_t NetActions) {
  assert(Mask.size() <= NetActions && "env action space exceeds the net");
  bool AnyLegal = std::any_of(Mask.begin(), Mask.end(),
                              [](uint8_t M) { return M != 0; });
  // All-masked fallback: uniform over the env's REAL actions only —
  // the padding below stays zero, so the sample can't leave the env's
  // action space even in the fallback.
  if (!AnyLegal)
    Mask.assign(Mask.size(), 1);
  Mask.resize(NetActions, 0);
}

void RolloutRunner::preStep(const ActorCritic &Net, size_t Slot,
                            Transition &T) {
  T.Obs = CurrentObs[Slot];
  T.Mask = Envs[Slot]->actionMask();
  padMaskToNet(T.Mask, Net.config().Actions);

  ActorCritic::Output Fwd = Net.forward(T.Obs, T.Mask);
  T.Action =
      sampleCategorical(Fwd.MaskedLogits.data(), SlotRngs[Slot], T.LogProb);
  T.Value = Fwd.Value.item();
}

void RolloutRunner::postStep(size_t Slot, EnvStep Res, Transition &T,
                             Trajectory &Out) {
  T.Reward = static_cast<float>(Res.Reward);
  T.Done = Res.Done;
  RunningReturn[Slot] += Res.Reward;
  if (Res.Done) {
    Out.CompletedReturns.push_back(RunningReturn[Slot]);
    RunningReturn[Slot] = 0.0;
    CurrentObs[Slot] = Envs[Slot]->reset();
  } else {
    CurrentObs[Slot] = std::move(Res.Obs);
  }
}

void RolloutRunner::collectSlot(const ActorCritic &Net, unsigned Steps,
                                size_t Slot, Trajectory &Out) {
  // Per-slot cancellation checkpoint (the serving layer's deadline
  // granularity inside a rollout).
  if (Config.Cancel)
    Config.Cancel->checkpoint();
  Env &E = *Envs[Slot];
  Out.Steps.resize(Steps);

  for (unsigned Step = 0; Step < Steps; ++Step) {
    Transition &T = Out.Steps[Step];
    preStep(Net, Slot, T);
    postStep(Slot, E.step(T.Action), T, Out);
  }

  Out.BootstrapObs = CurrentObs[Slot];
  Out.BootstrapMask = E.actionMask();
  padMaskToNet(Out.BootstrapMask, Net.config().Actions);
}

void RolloutRunner::collectLockstep(const ActorCritic &Net, unsigned Steps,
                                    TrajectoryBatch &Batch) {
  const size_t N = Envs.size();
  for (Trajectory &T : Batch.Trajectories)
    T.Steps.resize(Steps);

  std::vector<LockstepEnv *> Pending(N);
  for (size_t Slot = 0; Slot < N; ++Slot)
    Pending[Slot] = Envs[Slot]->lockstep();

  for (unsigned Step = 0; Step < Steps; ++Step) {
    // Per-round checkpoint: at least as fine as the slot-major path's
    // per-slot check.
    if (Config.Cancel)
      Config.Cancel->checkpoint();
    // Phase 1 (slot order): action selection + the cheap half of the
    // transition. Per-slot op order matches collectSlot exactly.
    for (size_t Slot = 0; Slot < N; ++Slot) {
      Transition &T = Batch.Trajectories[Slot].Steps[Step];
      preStep(Net, Slot, T);
      Pending[Slot]->beginStep(T.Action);
    }
    // Phase 2: one cross-env measurement round.
    Pending.front()->measureBatch(Pending);
    // Phase 3 (slot order): finish transitions and episode bookkeeping.
    for (size_t Slot = 0; Slot < N; ++Slot) {
      Trajectory &Out = Batch.Trajectories[Slot];
      postStep(Slot, Pending[Slot]->finishStep(), Out.Steps[Step], Out);
    }
  }

  for (size_t Slot = 0; Slot < N; ++Slot) {
    Trajectory &Out = Batch.Trajectories[Slot];
    Out.BootstrapObs = CurrentObs[Slot];
    Out.BootstrapMask = Envs[Slot]->actionMask();
    padMaskToNet(Out.BootstrapMask, Net.config().Actions);
  }
}

TrajectoryBatch RolloutRunner::collect(const ActorCritic &Net,
                                       unsigned Steps) {
  TrajectoryBatch Batch;
  Batch.Trajectories.resize(Envs.size());
  if (Pool) {
    Pool->parallelFor(Envs.size(), [&](size_t Slot) {
      collectSlot(Net, Steps, Slot, Batch.Trajectories[Slot]);
    });
    return Batch;
  }
  bool AllLockstep =
      Envs.size() > 1 &&
      std::all_of(Envs.begin(), Envs.end(),
                  [](Env *E) { return E->lockstep() != nullptr; });
  if (AllLockstep) {
    collectLockstep(Net, Steps, Batch);
    return Batch;
  }
  for (size_t Slot = 0; Slot < Envs.size(); ++Slot)
    collectSlot(Net, Steps, Slot, Batch.Trajectories[Slot]);
  return Batch;
}

//===- rl/RolloutRunner.cpp --------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "rl/RolloutRunner.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace cuasmrl;
using namespace cuasmrl::rl;

namespace {

/// Samples from the masked softmax and records the sample's log-prob.
unsigned sampleCategorical(const std::vector<float> &Logits, Rng &R,
                           float &LogProbOut) {
  float Max = *std::max_element(Logits.begin(), Logits.end());
  std::vector<double> Probs(Logits.size());
  double Z = 0.0;
  for (size_t I = 0; I < Logits.size(); ++I) {
    Probs[I] = std::exp(static_cast<double>(Logits[I]) - Max);
    Z += Probs[I];
  }
  for (double &P : Probs)
    P /= Z;
  unsigned Action = static_cast<unsigned>(R.categorical(Probs));
  LogProbOut =
      static_cast<float>(Logits[Action] - Max - std::log(Z));
  return Action;
}

} // namespace

RolloutRunner::RolloutRunner(std::vector<Env *> E, RolloutConfig C)
    : Envs(std::move(E)), Config(C) {
  assert(!Envs.empty() && "need at least one environment");
  SlotRngs.reserve(Envs.size());
  CurrentObs.resize(Envs.size());
  RunningReturn.assign(Envs.size(), 0.0);
  for (size_t I = 0; I < Envs.size(); ++I) {
    // Slot streams must be well-separated functions of (Seed, I) alone.
    SlotRngs.emplace_back(mixSeed(Config.Seed, I));
    CurrentObs[I] = Envs[I]->reset();
  }
  if (Config.Workers > 1)
    Pool = std::make_unique<support::ThreadPool>(Config.Workers);
}

RolloutRunner::RolloutRunner(std::vector<std::unique_ptr<Env>> E,
                             RolloutConfig C)
    : RolloutRunner(
          [&E] {
            std::vector<Env *> Raw;
            Raw.reserve(E.size());
            for (const std::unique_ptr<Env> &P : E)
              Raw.push_back(P.get());
            return Raw;
          }(),
          C) {
  Owned = std::move(E);
}

void RolloutRunner::collectSlot(const ActorCritic &Net, unsigned Steps,
                                size_t Slot, Trajectory &Out) {
  Env &E = *Envs[Slot];
  Rng &R = SlotRngs[Slot];
  Out.Steps.resize(Steps);

  for (unsigned Step = 0; Step < Steps; ++Step) {
    Transition &T = Out.Steps[Step];
    T.Obs = CurrentObs[Slot];
    T.Mask = E.actionMask();
    bool AnyLegal = std::any_of(T.Mask.begin(), T.Mask.end(),
                                [](uint8_t M) { return M != 0; });
    if (!AnyLegal)
      T.Mask.assign(T.Mask.size(), 1);

    ActorCritic::Output Fwd = Net.forward(T.Obs, T.Mask);
    T.Action = sampleCategorical(Fwd.MaskedLogits.data(), R, T.LogProb);
    T.Value = Fwd.Value.item();

    EnvStep Res = E.step(T.Action);
    T.Reward = static_cast<float>(Res.Reward);
    T.Done = Res.Done;
    RunningReturn[Slot] += Res.Reward;
    if (Res.Done) {
      Out.CompletedReturns.push_back(RunningReturn[Slot]);
      RunningReturn[Slot] = 0.0;
      CurrentObs[Slot] = E.reset();
    } else {
      CurrentObs[Slot] = std::move(Res.Obs);
    }
  }

  Out.BootstrapObs = CurrentObs[Slot];
  Out.BootstrapMask = E.actionMask();
  if (std::none_of(Out.BootstrapMask.begin(), Out.BootstrapMask.end(),
                   [](uint8_t M) { return M != 0; }))
    Out.BootstrapMask.assign(Out.BootstrapMask.size(), 1);
}

TrajectoryBatch RolloutRunner::collect(const ActorCritic &Net,
                                       unsigned Steps) {
  TrajectoryBatch Batch;
  Batch.Trajectories.resize(Envs.size());
  if (Pool) {
    Pool->parallelFor(Envs.size(), [&](size_t Slot) {
      collectSlot(Net, Steps, Slot, Batch.Trajectories[Slot]);
    });
  } else {
    for (size_t Slot = 0; Slot < Envs.size(); ++Slot)
      collectSlot(Net, Steps, Slot, Batch.Trajectories[Slot]);
  }
  return Batch;
}

//===- rl/RolloutRunner.h - Parallel trajectory collection -------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-environment rollout engine: owns a pool of environments
/// (for the assembly game, one AssemblyGame per slot via an owning
/// adapter) plus a worker thread pool, and collects one fixed-length
/// trajectory per environment per PPO iteration. Collection is
/// embarrassingly parallel across slots — the policy network is frozen
/// and only read during a collect() call, and each slot steps its own
/// environment with its own action-sampling Rng stream.
///
/// The pool may mix environments of different kernels and shapes
/// (the generalist policy): every env must share the net's feature
/// width, while row counts vary freely (the net derives them per
/// observation) and smaller action spaces are zero-padded up to the
/// net's action count (padMaskToNet), so padded actions are never
/// sampled.
///
/// Thread-safety / determinism contract:
///  - collect() must be called from one driver thread at a time.
///  - Environments are never shared between slots; each env must be
///    safe to step from whichever worker thread picks its slot up
///    (AssemblyGame needs GameConfig::PrivateDevice for this).
///  - ActorCritic::forward is const and touches only immutable weight
///    tensors, so concurrent forwards are safe as long as nobody
///    updates the weights mid-collect (PpoTrainer never does).
///  - Slot i's Rng stream is derived from (Seed, i) only, so the
///    trajectory a slot produces is identical whatever the worker
///    count and whatever other slots exist — this is what makes
///    1-worker and N-worker runs (and slot 0 of 1-env and N-env runs)
///    bit-identical.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_RL_ROLLOUTRUNNER_H
#define CUASMRL_RL_ROLLOUTRUNNER_H

#include "rl/ActorCritic.h"
#include "rl/Env.h"
#include "support/Cancellation.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"

#include <memory>

namespace cuasmrl {
namespace rl {

/// One environment transition as stored in a trajectory.
struct Transition {
  std::vector<float> Obs;
  std::vector<uint8_t> Mask;
  unsigned Action = 0;
  float LogProb = 0.0f;
  float Value = 0.0f;
  float Reward = 0.0f;
  bool Done = false;
};

/// One env slot's fixed-length rollout segment. Batches are
/// slot-ordered: TrajectoryBatch::Trajectories[i] is env slot i's.
struct Trajectory {
  std::vector<Transition> Steps;
  /// Post-rollout observation/mask for the GAE bootstrap value.
  std::vector<float> BootstrapObs;
  std::vector<uint8_t> BootstrapMask;
  /// Episodic returns completed during this segment, in completion
  /// order (episodes may span segment boundaries).
  std::vector<double> CompletedReturns;

  double rewardSum() const {
    double Sum = 0;
    for (const Transition &T : Steps)
      Sum += T.Reward;
    return Sum;
  }
};

/// One PPO iteration's worth of trajectories, slot-ordered.
struct TrajectoryBatch {
  std::vector<Trajectory> Trajectories;

  size_t totalSteps() const {
    size_t N = 0;
    for (const Trajectory &T : Trajectories)
      N += T.Steps.size();
    return N;
  }
};

/// Rollout engine configuration.
struct RolloutConfig {
  /// Worker threads stepping env slots; 1 = inline (no pool). Results
  /// are identical for any value — workers only change wall-clock.
  unsigned Workers = 1;
  /// Master seed; slot i samples actions from a stream derived from
  /// (Seed, i), independent of every other slot.
  uint64_t Seed = 1;
  /// Cooperative cancellation (not owned; may be null). Checked once
  /// per rollout slot (and per lockstep round); a tripped token
  /// unwinds collect() with CancelledError — parallelFor rethrows it
  /// on the driver thread, and sibling slots each trip their own
  /// checkpoint, so the pool drains promptly.
  const support::CancelToken *Cancel = nullptr;
};

/// Parallel trajectory collector over a fixed env pool.
class RolloutRunner {
public:
  /// Non-owning env pool (envs must outlive the runner).
  RolloutRunner(std::vector<Env *> Envs, RolloutConfig Config);
  /// Owning env pool (the runner keeps the envs alive).
  RolloutRunner(std::vector<std::unique_ptr<Env>> Envs,
                RolloutConfig Config);

  size_t numEnvs() const { return Envs.size(); }
  Env &env(size_t I) { return *Envs[I]; }
  const RolloutConfig &config() const { return Config; }

  /// Normalizes an env's action mask for a net with \p NetActions
  /// outputs (the mixed-kernel pool contract): an all-zero mask first
  /// becomes all-ones over the env's own actions (the uniform
  /// fallback), then the mask is zero-padded up to NetActions — padded
  /// entries stay masked in every case, so an action beyond the env's
  /// action space can never be sampled. A mask already NetActions wide
  /// passes through bit-identically to the historical behavior.
  static void padMaskToNet(std::vector<uint8_t> &Mask, size_t NetActions);

  /// Collects one \p Steps-long trajectory per env slot under the
  /// frozen policy \p Net. Slot state (current observation, running
  /// return) persists across calls so episodes span iterations.
  ///
  /// Collection order is an implementation detail: the pooled path
  /// works slot-major per worker, and the serial path advances all
  /// slots step-major in lockstep when every env exposes
  /// Env::lockstep() (batching the envs' measurements). Both produce
  /// trajectories bit-identical to the plain slot-major loop — each
  /// slot's op sequence is unchanged and cross-slot state is limited
  /// to order-invariant caches (the determinism contract above).
  TrajectoryBatch collect(const ActorCritic &Net, unsigned Steps);

private:
  void collectSlot(const ActorCritic &Net, unsigned Steps, size_t Slot,
                   Trajectory &Out);
  /// Step-major serial collection: per step, every slot picks its
  /// action (phase 1), all pending measurements advance through one
  /// LockstepEnv::measureBatch round (phase 2), then every slot
  /// completes its transition (phase 3).
  void collectLockstep(const ActorCritic &Net, unsigned Steps,
                       TrajectoryBatch &Batch);
  /// One slot's phase-1 (obs/mask/forward/sample) shared by the
  /// slot-major and lockstep paths; fills \p T up to the action.
  void preStep(const ActorCritic &Net, size_t Slot, Transition &T);
  /// One slot's phase-3 bookkeeping (reward, episode reset) shared by
  /// both paths.
  void postStep(size_t Slot, EnvStep Res, Transition &T, Trajectory &Out);

  std::vector<std::unique_ptr<Env>> Owned;
  std::vector<Env *> Envs;
  RolloutConfig Config;
  std::vector<Rng> SlotRngs;                  ///< Per-slot action sampling.
  std::vector<std::vector<float>> CurrentObs; ///< Per-slot episode state.
  std::vector<double> RunningReturn;
  std::unique_ptr<support::ThreadPool> Pool;  ///< Null when Workers <= 1.
};

} // namespace rl
} // namespace cuasmrl

#endif // CUASMRL_RL_ROLLOUTRUNNER_H

//===- rl/Adam.cpp ---------------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "rl/Adam.h"

#include <cmath>

using namespace cuasmrl;
using namespace cuasmrl::rl;

Adam::Adam(std::vector<Tensor> P, double Lr, double Beta1, double Beta2,
           double Eps)
    : Params(std::move(P)), Lr(Lr), Beta1(Beta1), Beta2(Beta2), Eps(Eps) {
  for (const Tensor &Param : Params) {
    M.emplace_back(Param.size(), 0.0f);
    V.emplace_back(Param.size(), 0.0f);
  }
}

void Adam::step() {
  ++T;
  double Bc1 = 1.0 - std::pow(Beta1, T);
  double Bc2 = 1.0 - std::pow(Beta2, T);
  for (size_t P = 0; P < Params.size(); ++P) {
    std::vector<float> &Data = Params[P].data();
    const std::vector<float> &Grad = Params[P].grad();
    for (size_t I = 0; I < Data.size(); ++I) {
      double G = Grad[I];
      M[P][I] = static_cast<float>(Beta1 * M[P][I] + (1 - Beta1) * G);
      V[P][I] = static_cast<float>(Beta2 * V[P][I] + (1 - Beta2) * G * G);
      double MHat = M[P][I] / Bc1;
      double VHat = V[P][I] / Bc2;
      Data[I] -= static_cast<float>(Lr * MHat / (std::sqrt(VHat) + Eps));
    }
  }
}

void Adam::zeroGrad() {
  for (Tensor &Param : Params)
    Param.zeroGrad();
}

double rl::clipGradNorm(const std::vector<Tensor> &Params, double MaxNorm) {
  double SumSq = 0.0;
  for (const Tensor &P : Params)
    for (float G : P.grad())
      SumSq += static_cast<double>(G) * G;
  double Norm = std::sqrt(SumSq);
  if (Norm > MaxNorm && Norm > 0.0) {
    double Scale = MaxNorm / Norm;
    for (const Tensor &P : Params)
      for (float &G : const_cast<std::vector<float> &>(P.grad()))
        G = static_cast<float>(G * Scale);
  }
  return Norm;
}

//===- rl/Ppo.h - Proximal Policy Optimization (paper §3.7) -------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reference PPO implementation CuAsmRL ships (§3.7): actor-critic
/// with GAE, clipped surrogate objective, entropy bonus, minibatched
/// multi-epoch updates, invalid-action masking, approximate-KL and
/// policy-entropy tracking (Figure 12) and periodic checkpointing. The
/// default hyperparameters are the empirically good set from the
/// large-scale study the paper cites [11] and are shared across every
/// kernel ("fine-tuning RL's hyperparameters towards a specific case is
/// very computationally expensive").
///
/// Rollout collection is delegated to a RolloutRunner: the train loop
/// consumes whole trajectory batches (one fixed-length trajectory per
/// env slot) instead of stepping a single env inline, so collection
/// parallelism is an engine property, not an algorithm property.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_RL_PPO_H
#define CUASMRL_RL_PPO_H

#include "rl/ActorCritic.h"
#include "rl/Adam.h"
#include "rl/Env.h"
#include "rl/RolloutRunner.h"
#include "support/Rng.h"

#include <memory>
#include <string>

namespace cuasmrl {
namespace rl {

/// Hyperparameters (defaults follow Huang et al. [11]).
struct PpoConfig {
  double Lr = 2.5e-4;
  double Gamma = 0.99;
  double GaeLambda = 0.95;
  double ClipCoef = 0.2;
  double EntCoef = 0.01;
  double VfCoef = 0.5;
  double MaxGradNorm = 0.5;
  unsigned RolloutLen = 64; ///< Steps per env per update.
  unsigned MiniBatches = 4;
  unsigned Epochs = 4;
  unsigned TotalSteps = 4096; ///< Env steps across the whole run.
  bool NormAdvantage = true;
  bool ClipVLoss = true;
  bool AnnealLr = true;
  uint64_t Seed = 1;
  size_t Channels = 16; ///< Network width knobs.
  size_t Hidden = 64;
  /// Rollout worker threads when the trainer builds its own
  /// RolloutRunner (the env-pointer constructor). Pure wall-clock knob:
  /// training statistics are bit-identical for every value.
  /// Precondition for > 1: the envs must be safe to step concurrently
  /// — for AssemblyGame-backed envs each game needs its own device
  /// (GameConfig::PrivateDevice); sharing one Gpu across threaded
  /// games is a data race. core::Optimizer sets this up; hand-built
  /// pools must too.
  unsigned Workers = 1;
};

/// Statistics from one update round (the Figure 8/12 series).
struct UpdateStats {
  unsigned StepsDone = 0;
  double MeanEpisodicReturn = 0.0; ///< Over episodes finished so far.
  double PolicyLoss = 0.0;
  double ValueLoss = 0.0;
  double Entropy = 0.0;
  double ApproxKl = 0.0;
  double ClipFraction = 0.0;
};

/// PPO driver over a rollout engine.
///
/// Thread-safety: a PpoTrainer is driven by one thread; internal
/// rollout parallelism (Config.Workers / the runner's worker pool)
/// never escapes a collect call. The network weights are only mutated
/// inside updateFromBatch(), between collect calls.
class PpoTrainer {
public:
  /// Convenience constructor: wraps \p Envs (non-owning, must outlive
  /// the trainer) in an internal RolloutRunner with Config.Workers
  /// workers and per-slot Rng streams seeded from Config.Seed.
  PpoTrainer(std::vector<Env *> Envs, PpoConfig Config);

  /// Trains over an external rollout engine (e.g. one owning
  /// AssemblyGame envs with a shared MeasurementCache). \p Runner must
  /// outlive the trainer.
  PpoTrainer(RolloutRunner &Runner, PpoConfig Config);

  /// One rollout + optimization phase.
  UpdateStats update();

  /// The optimization phase alone: GAE over \p Batch, then the
  /// clipped-surrogate minibatch epochs. GAE is per-trajectory (a
  /// trajectory's advantages are identical however many siblings and
  /// workers collected alongside it), and the whole update is
  /// worker-count invariant for a fixed env count. The minibatch
  /// shuffle and advantage normalization DO depend on the batch's
  /// total size, so different env counts legitimately train
  /// differently.
  UpdateStats updateFromBatch(const TrajectoryBatch &Batch);

  /// Runs update() until TotalSteps; returns the per-update series.
  std::vector<UpdateStats> train();

  /// Curriculum phase: collects and trains over \p R (instead of the
  /// trainer's own runner) for \p Steps env steps, continuing the
  /// trainer's global step count (so LR annealing spans phases). \p R
  /// must fit this net: same feature width, row and action counts no
  /// larger than the net's (core::Optimizer::optimizeMany constructs
  /// the net from the full workload pool before phasing).
  std::vector<UpdateStats> trainOn(RolloutRunner &R, unsigned Steps);

  /// Warm start: overwrite every geometry-compatible tensor from a
  /// serialized checkpoint (ActorCritic::loadCompatible) before
  /// training. \returns the number of tensors transferred (0 =
  /// malformed blob, net untouched). Call before the first update;
  /// the Adam state is unaffected (it references the live tensors).
  size_t warmStartFrom(std::istream &IS);
  size_t warmStartFrom(const std::string &Blob);

  /// Arms cooperative cancellation (not owned; null disarms): the
  /// trainer checkpoints before every update and once per optimization
  /// epoch, and playGreedy() checkpoints per step. A tripped token
  /// unwinds with support::CancelledError. Rollout-internal
  /// checkpoints come from RolloutConfig::Cancel — set it on the
  /// runner too (core::Optimizer does) for per-slot granularity
  /// inside a collect. Call before train() from the driving thread.
  void setCancel(const support::CancelToken *Token) { Cancel = Token; }

  ActorCritic &net() { return Net; }
  const ActorCritic &net() const { return Net; }
  RolloutRunner &runner() { return *Runner; }

  /// Episodic returns, slot-major per update (all of slot 0's
  /// completions, then slot 1's, ...; completion order within a slot).
  /// This is the deterministic ordering the worker-invariance contract
  /// requires — the Figure 8 series.
  const std::vector<double> &episodicReturns() const {
    return EpisodeReturns;
  }

  /// Deterministic greedy rollout ("inference mode", §5.7): plays one
  /// episode on \p E with argmax actions; returns the actions taken.
  std::vector<unsigned> playGreedy(Env &E, unsigned MaxSteps);

private:
  std::unique_ptr<RolloutRunner> OwnedRunner; ///< Env-pointer ctor only.
  RolloutRunner *Runner;
  PpoConfig Config;
  Rng SampleRng; ///< Net init + minibatch shuffling (not action sampling).
  ActorCritic Net;
  Adam Optimizer;

  std::vector<double> EpisodeReturns;
  unsigned StepsDone = 0;
  const support::CancelToken *Cancel = nullptr; ///< Not owned.
};

} // namespace rl
} // namespace cuasmrl

#endif // CUASMRL_RL_PPO_H

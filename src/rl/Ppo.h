//===- rl/Ppo.h - Proximal Policy Optimization (paper §3.7) -------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reference PPO implementation CuAsmRL ships (§3.7): actor-critic
/// with GAE, clipped surrogate objective, entropy bonus, minibatched
/// multi-epoch updates, invalid-action masking, approximate-KL and
/// policy-entropy tracking (Figure 12) and periodic checkpointing. The
/// default hyperparameters are the empirically good set from the
/// large-scale study the paper cites [11] and are shared across every
/// kernel ("fine-tuning RL's hyperparameters towards a specific case is
/// very computationally expensive").
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_RL_PPO_H
#define CUASMRL_RL_PPO_H

#include "rl/ActorCritic.h"
#include "rl/Adam.h"
#include "rl/Env.h"
#include "support/Rng.h"

#include <string>

namespace cuasmrl {
namespace rl {

/// Hyperparameters (defaults follow Huang et al. [11]).
struct PpoConfig {
  double Lr = 2.5e-4;
  double Gamma = 0.99;
  double GaeLambda = 0.95;
  double ClipCoef = 0.2;
  double EntCoef = 0.01;
  double VfCoef = 0.5;
  double MaxGradNorm = 0.5;
  unsigned RolloutLen = 64; ///< Steps per env per update.
  unsigned MiniBatches = 4;
  unsigned Epochs = 4;
  unsigned TotalSteps = 4096; ///< Env steps across the whole run.
  bool NormAdvantage = true;
  bool ClipVLoss = true;
  bool AnnealLr = true;
  uint64_t Seed = 1;
  size_t Channels = 16; ///< Network width knobs.
  size_t Hidden = 64;
};

/// Statistics from one update round (the Figure 8/12 series).
struct UpdateStats {
  unsigned StepsDone = 0;
  double MeanEpisodicReturn = 0.0; ///< Over episodes finished so far.
  double PolicyLoss = 0.0;
  double ValueLoss = 0.0;
  double Entropy = 0.0;
  double ApproxKl = 0.0;
  double ClipFraction = 0.0;
};

/// PPO driver over one or more (vectorized) environments.
class PpoTrainer {
public:
  PpoTrainer(std::vector<Env *> Envs, PpoConfig Config);

  /// One rollout + optimization phase.
  UpdateStats update();

  /// Runs update() until TotalSteps; returns the per-update series.
  std::vector<UpdateStats> train();

  ActorCritic &net() { return Net; }
  const ActorCritic &net() const { return Net; }

  /// Episodic returns in completion order (Figure 8 series).
  const std::vector<double> &episodicReturns() const {
    return EpisodeReturns;
  }

  /// Deterministic greedy rollout ("inference mode", §5.7): plays one
  /// episode on \p E with argmax actions; returns the actions taken.
  std::vector<unsigned> playGreedy(Env &E, unsigned MaxSteps);

private:
  struct Sample {
    std::vector<float> Obs;
    std::vector<uint8_t> Mask;
    unsigned Action = 0;
    float LogProb = 0.0f;
    float Value = 0.0f;
    float Reward = 0.0f;
    bool Done = false;
  };

  unsigned sampleAction(const Tensor &MaskedLogits);

  std::vector<Env *> Envs;
  PpoConfig Config;
  Rng SampleRng;
  ActorCritic Net;
  Adam Optimizer;

  std::vector<std::vector<float>> CurrentObs; ///< Per env.
  std::vector<double> RunningReturn;          ///< Per env.
  std::vector<double> EpisodeReturns;
  unsigned StepsDone = 0;
};

} // namespace rl
} // namespace cuasmrl

#endif // CUASMRL_RL_PPO_H

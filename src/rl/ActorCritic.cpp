//===- rl/ActorCritic.cpp -------------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "rl/ActorCritic.h"

#include <cassert>
#include <cmath>
#include <istream>
#include <ostream>

using namespace cuasmrl;
using namespace cuasmrl::rl;

namespace {

/// Orthogonal initialization (Gram-Schmidt over the smaller dimension)
/// scaled by \p Gain; the convention from the PPO-details study.
Tensor orthogonal(std::vector<size_t> Shape, double Gain, Rng &R) {
  size_t Rows = Shape[0];
  size_t Cols = 1;
  for (size_t D = 1; D < Shape.size(); ++D)
    Cols *= Shape[D];

  std::vector<std::vector<double>> Q(Rows, std::vector<double>(Cols));
  for (auto &Row : Q)
    for (double &V : Row)
      V = R.normal();

  // Gram-Schmidt over rows (transpose logic when Rows > Cols so the
  // orthogonalized dimension is the smaller one).
  bool Transpose = Rows > Cols;
  size_t N = Transpose ? Cols : Rows;
  size_t M = Transpose ? Rows : Cols;
  auto At = [&](size_t I, size_t J) -> double & {
    return Transpose ? Q[J][I] : Q[I][J];
  };
  for (size_t I = 0; I < N; ++I) {
    for (size_t P = 0; P < I; ++P) {
      double Dot = 0;
      for (size_t J = 0; J < M; ++J)
        Dot += At(I, J) * At(P, J);
      for (size_t J = 0; J < M; ++J)
        At(I, J) -= Dot * At(P, J);
    }
    double Norm = 0;
    for (size_t J = 0; J < M; ++J)
      Norm += At(I, J) * At(I, J);
    Norm = std::sqrt(std::max(Norm, 1e-12));
    for (size_t J = 0; J < M; ++J)
      At(I, J) /= Norm;
  }

  std::vector<float> Data(Rows * Cols);
  for (size_t I = 0; I < Rows; ++I)
    for (size_t J = 0; J < Cols; ++J)
      Data[I * Cols + J] = static_cast<float>(Q[I][J] * Gain);
  return Tensor::fromVector(std::move(Data), std::move(Shape),
                            /*RequiresGrad=*/true);
}

} // namespace

ActorCritic::ActorCritic(NetConfig C, Rng &R) : Config(C) {
  assert(C.Features && C.Length && C.Actions && "geometry must be set");
  double HiddenGain = std::sqrt(2.0);
  W1 = orthogonal({C.Channels, C.Features, C.Kernel}, HiddenGain, R);
  B1 = Tensor::zeros({C.Channels}, true);
  W2 = orthogonal({C.Channels, C.Channels, C.Kernel}, HiddenGain, R);
  B2 = Tensor::zeros({C.Channels}, true);
  Wh = orthogonal({C.Hidden, 2 * C.Channels}, HiddenGain, R);
  Bh = Tensor::zeros({C.Hidden}, true);
  Wp = orthogonal({C.Actions, C.Hidden}, 0.01, R);
  Bp = Tensor::zeros({C.Actions}, true);
  Wv = orthogonal({1, C.Hidden}, 1.0, R);
  Bv = Tensor::zeros({1}, true);
}

ActorCritic::Output
ActorCritic::forward(const std::vector<float> &Obs,
                     const std::vector<uint8_t> &Mask) const {
  size_t F = Config.Features, L = Config.Length;
  assert(Obs.size() == F * L && "observation shape mismatch");
  assert(Mask.size() == Config.Actions && "mask shape mismatch");

  // Transpose [L x F] row-major into channel-major [F x L].
  std::vector<float> ChanMajor(F * L);
  for (size_t Row = 0; Row < L; ++Row)
    for (size_t Feat = 0; Feat < F; ++Feat)
      ChanMajor[Feat * L + Row] = Obs[Row * F + Feat];

  Tensor X = Tensor::fromVector(std::move(ChanMajor), {F, L});
  X = relu(conv1d(X, W1, B1));
  X = relu(conv1d(X, W2, B2));
  Tensor Pooled = concat(meanPool(X), maxPool(X));
  Tensor H = relu(linear(Wh, Pooled, Bh));

  Output Out;
  Out.MaskedLogits = maskedFill(linear(Wp, H, Bp), Mask);
  Out.Value = linear(Wv, H, Bv);
  return Out;
}

std::vector<Tensor> ActorCritic::parameters() const {
  return {W1, B1, W2, B2, Wh, Bh, Wp, Bp, Wv, Bv};
}

void ActorCritic::save(std::ostream &OS) const {
  const char Magic[8] = {'C', 'U', 'A', 'S', 'M', 'R', 'L', '1'};
  OS.write(Magic, sizeof(Magic));
  std::vector<Tensor> Params = parameters();
  uint32_t Count = static_cast<uint32_t>(Params.size());
  OS.write(reinterpret_cast<const char *>(&Count), sizeof(Count));
  for (const Tensor &P : Params) {
    uint32_t Dims = static_cast<uint32_t>(P.shape().size());
    OS.write(reinterpret_cast<const char *>(&Dims), sizeof(Dims));
    for (size_t D : P.shape()) {
      uint64_t D64 = D;
      OS.write(reinterpret_cast<const char *>(&D64), sizeof(D64));
    }
    OS.write(reinterpret_cast<const char *>(P.data().data()),
             static_cast<std::streamsize>(P.size() * sizeof(float)));
  }
}

bool ActorCritic::load(std::istream &IS) {
  char Magic[8];
  IS.read(Magic, sizeof(Magic));
  if (!IS || std::string(Magic, 8) != "CUASMRL1")
    return false;
  uint32_t Count = 0;
  IS.read(reinterpret_cast<char *>(&Count), sizeof(Count));
  std::vector<Tensor> Params = parameters();
  if (!IS || Count != Params.size())
    return false;
  for (Tensor &P : Params) {
    uint32_t Dims = 0;
    IS.read(reinterpret_cast<char *>(&Dims), sizeof(Dims));
    if (!IS || Dims != P.shape().size())
      return false;
    for (size_t D : P.shape()) {
      uint64_t D64 = 0;
      IS.read(reinterpret_cast<char *>(&D64), sizeof(D64));
      if (!IS || D64 != D)
        return false;
    }
    IS.read(reinterpret_cast<char *>(P.data().data()),
            static_cast<std::streamsize>(P.size() * sizeof(float)));
    if (!IS)
      return false;
  }
  return true;
}

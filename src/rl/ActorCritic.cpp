//===- rl/ActorCritic.cpp -------------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "rl/ActorCritic.h"

#include <cassert>
#include <cmath>
#include <istream>
#include <optional>
#include <ostream>

using namespace cuasmrl;
using namespace cuasmrl::rl;

namespace {

/// Orthogonal initialization (Gram-Schmidt over the smaller dimension)
/// scaled by \p Gain; the convention from the PPO-details study.
Tensor orthogonal(std::vector<size_t> Shape, double Gain, Rng &R) {
  size_t Rows = Shape[0];
  size_t Cols = 1;
  for (size_t D = 1; D < Shape.size(); ++D)
    Cols *= Shape[D];

  std::vector<std::vector<double>> Q(Rows, std::vector<double>(Cols));
  for (auto &Row : Q)
    for (double &V : Row)
      V = R.normal();

  // Gram-Schmidt over rows (transpose logic when Rows > Cols so the
  // orthogonalized dimension is the smaller one).
  bool Transpose = Rows > Cols;
  size_t N = Transpose ? Cols : Rows;
  size_t M = Transpose ? Rows : Cols;
  auto At = [&](size_t I, size_t J) -> double & {
    return Transpose ? Q[J][I] : Q[I][J];
  };
  for (size_t I = 0; I < N; ++I) {
    for (size_t P = 0; P < I; ++P) {
      double Dot = 0;
      for (size_t J = 0; J < M; ++J)
        Dot += At(I, J) * At(P, J);
      for (size_t J = 0; J < M; ++J)
        At(I, J) -= Dot * At(P, J);
    }
    double Norm = 0;
    for (size_t J = 0; J < M; ++J)
      Norm += At(I, J) * At(I, J);
    Norm = std::sqrt(std::max(Norm, 1e-12));
    for (size_t J = 0; J < M; ++J)
      At(I, J) /= Norm;
  }

  std::vector<float> Data(Rows * Cols);
  for (size_t I = 0; I < Rows; ++I)
    for (size_t J = 0; J < Cols; ++J)
      Data[I * Cols + J] = static_cast<float>(Q[I][J] * Gain);
  return Tensor::fromVector(std::move(Data), std::move(Shape),
                            /*RequiresGrad=*/true);
}

} // namespace

ActorCritic::ActorCritic(NetConfig C, Rng &R) : Config(C) {
  assert(C.Features && C.Length && C.Actions && "geometry must be set");
  double HiddenGain = std::sqrt(2.0);
  W1 = orthogonal({C.Channels, C.Features, C.Kernel}, HiddenGain, R);
  B1 = Tensor::zeros({C.Channels}, true);
  W2 = orthogonal({C.Channels, C.Channels, C.Kernel}, HiddenGain, R);
  B2 = Tensor::zeros({C.Channels}, true);
  Wh = orthogonal({C.Hidden, 2 * C.Channels}, HiddenGain, R);
  Bh = Tensor::zeros({C.Hidden}, true);
  Wp = orthogonal({C.Actions, C.Hidden}, 0.01, R);
  Bp = Tensor::zeros({C.Actions}, true);
  Wv = orthogonal({1, C.Hidden}, 1.0, R);
  Bv = Tensor::zeros({1}, true);
}

ActorCritic::Output
ActorCritic::forward(const std::vector<float> &Obs,
                     const std::vector<uint8_t> &Mask) const {
  // The row count comes from the observation itself: the conv stack
  // and mean/max pooling are length-free, so one network consumes
  // observations from differently sized kernels (Config.Length is only
  // the pool maximum, for documentation and sizing).
  size_t F = Config.Features;
  assert(F > 0 && !Obs.empty() && Obs.size() % F == 0 &&
         "observation shape mismatch");
  size_t L = Obs.size() / F;
  assert(Mask.size() == Config.Actions && "mask shape mismatch");

  // Transpose [L x F] row-major into channel-major [F x L].
  std::vector<float> ChanMajor(F * L);
  for (size_t Row = 0; Row < L; ++Row)
    for (size_t Feat = 0; Feat < F; ++Feat)
      ChanMajor[Feat * L + Row] = Obs[Row * F + Feat];

  Tensor X = Tensor::fromVector(std::move(ChanMajor), {F, L});
  X = relu(conv1d(X, W1, B1));
  X = relu(conv1d(X, W2, B2));
  Tensor Pooled = concat(meanPool(X), maxPool(X));
  Tensor H = relu(linear(Wh, Pooled, Bh));

  Output Out;
  Out.MaskedLogits = maskedFill(linear(Wp, H, Bp), Mask);
  Out.Value = linear(Wv, H, Bv);
  return Out;
}

std::vector<Tensor> ActorCritic::parameters() const {
  return {W1, B1, W2, B2, Wh, Bh, Wp, Bp, Wv, Bv};
}

void ActorCritic::save(std::ostream &OS) const {
  const char Magic[8] = {'C', 'U', 'A', 'S', 'M', 'R', 'L', '1'};
  OS.write(Magic, sizeof(Magic));
  std::vector<Tensor> Params = parameters();
  uint32_t Count = static_cast<uint32_t>(Params.size());
  OS.write(reinterpret_cast<const char *>(&Count), sizeof(Count));
  for (const Tensor &P : Params) {
    uint32_t Dims = static_cast<uint32_t>(P.shape().size());
    OS.write(reinterpret_cast<const char *>(&Dims), sizeof(Dims));
    for (size_t D : P.shape()) {
      uint64_t D64 = D;
      OS.write(reinterpret_cast<const char *>(&D64), sizeof(D64));
    }
    OS.write(reinterpret_cast<const char *>(P.data().data()),
             static_cast<std::streamsize>(P.size() * sizeof(float)));
  }
}

namespace {

/// One checkpoint tensor parsed into temporary storage.
struct ParsedTensor {
  std::vector<size_t> Shape;
  std::vector<float> Data;
};

/// Parses a full checkpoint stream into temporaries — no live tensor
/// is touched, which is what makes load() transactional. nullopt on
/// any malformed input (bad magic, truncated stream, absurd sizes).
std::optional<std::vector<ParsedTensor>> parseCheckpoint(std::istream &IS) {
  // Sanity bounds: a real checkpoint holds 10 tensors of at most a few
  // million floats; anything beyond these limits is corruption, and
  // bounding here keeps a hostile stream from requesting huge buffers.
  constexpr uint32_t MaxTensors = 256;
  constexpr uint32_t MaxDims = 8;
  constexpr uint64_t MaxElems = uint64_t(1) << 28;

  char Magic[8];
  IS.read(Magic, sizeof(Magic));
  if (!IS || std::string(Magic, 8) != "CUASMRL1")
    return std::nullopt;
  uint32_t Count = 0;
  IS.read(reinterpret_cast<char *>(&Count), sizeof(Count));
  if (!IS || Count == 0 || Count > MaxTensors)
    return std::nullopt;

  std::vector<ParsedTensor> Tensors(Count);
  for (ParsedTensor &T : Tensors) {
    uint32_t Dims = 0;
    IS.read(reinterpret_cast<char *>(&Dims), sizeof(Dims));
    if (!IS || Dims == 0 || Dims > MaxDims)
      return std::nullopt;
    uint64_t Elems = 1;
    for (uint32_t D = 0; D < Dims; ++D) {
      uint64_t D64 = 0;
      IS.read(reinterpret_cast<char *>(&D64), sizeof(D64));
      if (!IS || D64 == 0 || D64 > MaxElems)
        return std::nullopt;
      Elems *= D64;
      if (Elems > MaxElems)
        return std::nullopt;
      T.Shape.push_back(static_cast<size_t>(D64));
    }
    T.Data.resize(static_cast<size_t>(Elems));
    IS.read(reinterpret_cast<char *>(T.Data.data()),
            static_cast<std::streamsize>(Elems * sizeof(float)));
    if (!IS)
      return std::nullopt;
  }
  return Tensors;
}

} // namespace

bool ActorCritic::load(std::istream &IS) {
  std::optional<std::vector<ParsedTensor>> Parsed = parseCheckpoint(IS);
  std::vector<Tensor> Params = parameters();
  if (!Parsed || Parsed->size() != Params.size())
    return false;
  // Validate every shape before touching any live tensor: the swap
  // below happens only when the whole checkpoint matches.
  for (size_t I = 0; I < Params.size(); ++I)
    if ((*Parsed)[I].Shape != Params[I].shape())
      return false;
  for (size_t I = 0; I < Params.size(); ++I)
    Params[I].data() = std::move((*Parsed)[I].Data);
  return true;
}

size_t ActorCritic::loadCompatible(std::istream &IS) {
  std::optional<std::vector<ParsedTensor>> Parsed = parseCheckpoint(IS);
  if (!Parsed)
    return 0;
  std::vector<Tensor> Params = parameters();
  size_t Matched = 0;
  // Position + shape matching: the parameter order is fixed (W1, B1,
  // W2, B2, Wh, Bh, Wp, Bp, Wv, Bv), so tensor I of the checkpoint
  // corresponds to tensor I of this net; a shape mismatch (e.g. the
  // policy head of a different action count, or conv1 at a different
  // feature width) skips that tensor and keeps its current init.
  const size_t N = std::min(Parsed->size(), Params.size());
  for (size_t I = 0; I < N; ++I) {
    if ((*Parsed)[I].Shape != Params[I].shape())
      continue;
    Params[I].data() = std::move((*Parsed)[I].Data);
    ++Matched;
  }
  return Matched;
}

//===- rl/ActorCritic.h - CNN encoder + MLP heads (paper §3.5/3.7) -----------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "The RL agent has a Convolutional Neural Network (CNN) for encoding
/// the state representation, followed by an MLP layer to output the
/// probability of each action" (§3.5), trained with an actor-critic
/// policy-gradient algorithm (§3.7). The embedding matrix enters with
/// instructions along the convolution length axis and features as
/// channels; two same-padded conv layers, mean+max pooling, a hidden MLP
/// and separate policy/value heads. Orthogonal initialization with the
/// standard gains (hidden sqrt(2), policy 0.01, value 1.0) follows the
/// PPO implementation-details study the paper takes its hyperparameters
/// from [11].
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_RL_ACTORCRITIC_H
#define CUASMRL_RL_ACTORCRITIC_H

#include "rl/Tensor.h"
#include "support/Rng.h"

#include <iosfwd>

namespace cuasmrl {
namespace rl {

/// Network geometry. Features is fixed per network; Length and Actions
/// are *maxima* over the envs the net trains on — the conv stack plus
/// mean/max pooling handles any row count, and shorter action spaces
/// are padded with always-masked entries (see RolloutRunner), so one
/// net serves a mixed-kernel pool.
struct NetConfig {
  size_t Features = 0; ///< Embedding features per instruction.
  size_t Length = 0;   ///< Max instructions (conv length axis).
  size_t Actions = 0;  ///< Max 2 x movable memory instructions.
  size_t Channels = 16;
  size_t Hidden = 64;
  size_t Kernel = 5;
};

/// Policy + value network.
class ActorCritic {
public:
  ActorCritic(NetConfig Config, Rng &InitRng);

  struct Output {
    Tensor MaskedLogits; ///< [Actions], invalid entries at -1e9.
    Tensor Value;        ///< [1].
  };

  /// Builds the forward graph for one observation (row-major
  /// [rows x Features] as produced by env::Embedding; the row count is
  /// derived from the observation, so observations from differently
  /// sized kernels flow through one network). \p Mask must span
  /// Config.Actions entries (shorter action spaces padded with zeros).
  Output forward(const std::vector<float> &Obs,
                 const std::vector<uint8_t> &Mask) const;

  /// All trainable parameters (stable order; used by Adam/checkpoints).
  std::vector<Tensor> parameters() const;

  const NetConfig &config() const { return Config; }

  /// \name Checkpointing (§3.7: "the agent's weight is checkpointed")
  /// @{
  void save(std::ostream &OS) const;
  /// Transactional: the stream is parsed and validated into temporary
  /// storage first and the live weights are only replaced when every
  /// tensor matched, so a malformed or geometry-mismatched stream can
  /// never leave the net partially mutated. \returns false on
  /// malformed input or geometry mismatch (net unchanged).
  bool load(std::istream &IS);
  /// Warm start from a possibly differently-shaped checkpoint: copies
  /// every tensor whose position and shape match this net (the conv
  /// and hidden layers transfer whenever Features/Channels/Hidden
  /// agree; the policy/value heads additionally need matching action
  /// counts) and leaves the rest at their current values. \returns the
  /// number of tensors copied — 0 for a malformed stream (net
  /// unchanged, like load()).
  size_t loadCompatible(std::istream &IS);
  /// @}

private:
  NetConfig Config;
  Tensor W1, B1; ///< conv1: [C, F, K], [C].
  Tensor W2, B2; ///< conv2: [C, C, K], [C].
  Tensor Wh, Bh; ///< hidden: [H, 2C], [H].
  Tensor Wp, Bp; ///< policy head: [A, H], [A].
  Tensor Wv, Bv; ///< value head: [1, H], [1].
};

} // namespace rl
} // namespace cuasmrl

#endif // CUASMRL_RL_ACTORCRITIC_H

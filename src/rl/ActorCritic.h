//===- rl/ActorCritic.h - CNN encoder + MLP heads (paper §3.5/3.7) -----------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "The RL agent has a Convolutional Neural Network (CNN) for encoding
/// the state representation, followed by an MLP layer to output the
/// probability of each action" (§3.5), trained with an actor-critic
/// policy-gradient algorithm (§3.7). The embedding matrix enters with
/// instructions along the convolution length axis and features as
/// channels; two same-padded conv layers, mean+max pooling, a hidden MLP
/// and separate policy/value heads. Orthogonal initialization with the
/// standard gains (hidden sqrt(2), policy 0.01, value 1.0) follows the
/// PPO implementation-details study the paper takes its hyperparameters
/// from [11].
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_RL_ACTORCRITIC_H
#define CUASMRL_RL_ACTORCRITIC_H

#include "rl/Tensor.h"
#include "support/Rng.h"

#include <iosfwd>

namespace cuasmrl {
namespace rl {

/// Network geometry.
struct NetConfig {
  size_t Features = 0; ///< Embedding features per instruction.
  size_t Length = 0;   ///< Instructions (conv length axis).
  size_t Actions = 0;  ///< 2 x movable memory instructions.
  size_t Channels = 16;
  size_t Hidden = 64;
  size_t Kernel = 5;
};

/// Policy + value network.
class ActorCritic {
public:
  ActorCritic(NetConfig Config, Rng &InitRng);

  struct Output {
    Tensor MaskedLogits; ///< [Actions], invalid entries at -1e9.
    Tensor Value;        ///< [1].
  };

  /// Builds the forward graph for one observation (row-major
  /// [Length x Features] as produced by env::Embedding).
  Output forward(const std::vector<float> &Obs,
                 const std::vector<uint8_t> &Mask) const;

  /// All trainable parameters (stable order; used by Adam/checkpoints).
  std::vector<Tensor> parameters() const;

  const NetConfig &config() const { return Config; }

  /// \name Checkpointing (§3.7: "the agent's weight is checkpointed")
  /// @{
  void save(std::ostream &OS) const;
  /// \returns false on malformed input or geometry mismatch.
  bool load(std::istream &IS);
  /// @}

private:
  NetConfig Config;
  Tensor W1, B1; ///< conv1: [C, F, K], [C].
  Tensor W2, B2; ///< conv2: [C, C, K], [C].
  Tensor Wh, Bh; ///< hidden: [H, 2C], [H].
  Tensor Wp, Bp; ///< policy head: [A, H], [A].
  Tensor Wv, Bv; ///< value head: [1, H], [1].
};

} // namespace rl
} // namespace cuasmrl

#endif // CUASMRL_RL_ACTORCRITIC_H

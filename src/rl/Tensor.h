//===- rl/Tensor.h - Minimal reverse-mode autograd tensors -------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact dynamic-graph autograd engine sized for the paper's agent:
/// 1-D/2-D/3-D float tensors, the op set PPO needs (conv1d, matvec,
/// activations, masked log-softmax, reductions, elementwise arithmetic)
/// and reverse-mode differentiation over the recorded tape. Single
/// sample forward passes; batching is a loop at the trainer level.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_RL_TENSOR_H
#define CUASMRL_RL_TENSOR_H

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace cuasmrl {
namespace rl {

/// Graph node: storage, gradient and the backward closure.
struct TensorNode {
  std::vector<float> Data;
  std::vector<float> Grad;
  std::vector<size_t> Shape;
  bool RequiresGrad = false;
  /// Propagates this->Grad into the parents' Grad buffers.
  std::function<void()> Backward;
  std::vector<std::shared_ptr<TensorNode>> Parents;
  /// Traversal bookkeeping for topological sort.
  int Visited = 0;

  size_t size() const { return Data.size(); }
};

/// Value-semantics handle over a graph node.
class Tensor {
public:
  Tensor() = default;
  explicit Tensor(std::shared_ptr<TensorNode> N) : N(std::move(N)) {}

  /// \name Construction
  /// @{
  static Tensor zeros(std::vector<size_t> Shape, bool RequiresGrad = false);
  static Tensor fromVector(std::vector<float> Data,
                           std::vector<size_t> Shape,
                           bool RequiresGrad = false);
  static Tensor scalar(float Value, bool RequiresGrad = false);
  /// @}

  bool valid() const { return N != nullptr; }
  const std::vector<size_t> &shape() const { return N->Shape; }
  size_t size() const { return N->size(); }
  std::vector<float> &data() { return N->Data; }
  const std::vector<float> &data() const { return N->Data; }
  std::vector<float> &grad() { return N->Grad; }
  const std::vector<float> &grad() const { return N->Grad; }
  bool requiresGrad() const { return N->RequiresGrad; }
  float item() const { return N->Data.at(0); }

  std::shared_ptr<TensorNode> node() const { return N; }

  /// Runs reverse-mode differentiation from this (scalar) tensor.
  void backward();

  /// Zeroes the gradient buffer.
  void zeroGrad();

private:
  std::shared_ptr<TensorNode> N;
};

/// \name Elementwise ops (same-shape operands)
/// @{
Tensor add(const Tensor &A, const Tensor &B);
Tensor sub(const Tensor &A, const Tensor &B);
Tensor mul(const Tensor &A, const Tensor &B);
Tensor minElem(const Tensor &A, const Tensor &B);
Tensor neg(const Tensor &A);
Tensor expT(const Tensor &A);
Tensor relu(const Tensor &A);
Tensor tanhT(const Tensor &A);
Tensor clampRange(const Tensor &A, float Lo, float Hi);
Tensor scalarMul(const Tensor &A, float S);
Tensor scalarAdd(const Tensor &A, float S);
/// @}

/// \name Reductions / shape ops
/// @{
Tensor sumT(const Tensor &A);                 ///< -> scalar
Tensor meanT(const Tensor &A);                ///< -> scalar
Tensor concat(const Tensor &A, const Tensor &B); ///< 1-D concat
Tensor gather(const Tensor &A, size_t Index); ///< 1-D pick -> scalar
/// @}

/// \name Neural-network ops
/// @{
/// y = W x + b with W [Out, In], x [In], b [Out].
Tensor linear(const Tensor &W, const Tensor &X, const Tensor &B);
/// Same-padded 1-D convolution: X [Cin, L], W [Cout, Cin, K], B [Cout]
/// -> [Cout, L]. K must be odd.
Tensor conv1d(const Tensor &X, const Tensor &W, const Tensor &B);
/// Mean over the length axis: [C, L] -> [C].
Tensor meanPool(const Tensor &X);
/// Max over the length axis: [C, L] -> [C].
Tensor maxPool(const Tensor &X);
/// Sets masked-out entries (Mask[i] == 0) to -1e9; gradient flows only
/// through kept entries. A [A]-shaped op for invalid-action masking.
Tensor maskedFill(const Tensor &A, const std::vector<uint8_t> &Mask);
/// Numerically stable log-softmax over a 1-D tensor.
Tensor logSoftmax(const Tensor &A);
/// @}

} // namespace rl
} // namespace cuasmrl

#endif // CUASMRL_RL_TENSOR_H

//===- net/Client.cpp -----------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "net/Client.h"

#include "support/StringUtils.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace cuasmrl;
using namespace cuasmrl::net;

namespace {

void setSocketTimeout(int Fd, std::chrono::milliseconds T) {
  timeval Tv;
  Tv.tv_sec = static_cast<time_t>(T.count() / 1000);
  Tv.tv_usec = static_cast<suseconds_t>((T.count() % 1000) * 1000);
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
  ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv));
}

} // namespace

Client::Client(ClientConfig C)
    : Config(std::move(C)),
      Clk(Config.ClockSrc ? Config.ClockSrc : &support::Clock::real()) {}

Client::~Client() { close(); }

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Stashed.clear();
}

Expected<bool> Client::connectOnce() {
  close();
  int NewFd;
  sockaddr_storage Addr;
  socklen_t AddrLen;
  std::memset(&Addr, 0, sizeof(Addr));
  if (!Config.UnixPath.empty()) {
    auto *Un = reinterpret_cast<sockaddr_un *>(&Addr);
    Un->sun_family = AF_UNIX;
    if (Config.UnixPath.size() >= sizeof(Un->sun_path))
      return Error("unix socket path too long");
    std::strncpy(Un->sun_path, Config.UnixPath.c_str(),
                 sizeof(Un->sun_path) - 1);
    AddrLen = sizeof(sockaddr_un);
    NewFd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  } else {
    auto *In = reinterpret_cast<sockaddr_in *>(&Addr);
    In->sin_family = AF_INET;
    In->sin_port = htons(Config.Port);
    if (::inet_pton(AF_INET, Config.Host.c_str(), &In->sin_addr) != 1)
      return Error("bad address '" + Config.Host + "'");
    AddrLen = sizeof(sockaddr_in);
    NewFd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  }
  if (NewFd < 0)
    return Error(std::string("socket: ") + std::strerror(errno));

  // Timed connect: non-blocking connect + poll(POLLOUT), then back to
  // blocking with per-operation socket timeouts.
  int Flags = ::fcntl(NewFd, F_GETFL, 0);
  ::fcntl(NewFd, F_SETFL, Flags | O_NONBLOCK);
  int Rc = ::connect(NewFd, reinterpret_cast<sockaddr *>(&Addr), AddrLen);
  if (Rc != 0 && errno != EINPROGRESS) {
    int E = errno;
    ::close(NewFd);
    return Error(std::string("connect: ") + std::strerror(E));
  }
  if (Rc != 0) {
    pollfd P{NewFd, POLLOUT, 0};
    int Ready = ::poll(&P, 1, static_cast<int>(Config.ConnectTimeout.count()));
    if (Ready <= 0) {
      ::close(NewFd);
      return Error(Ready == 0 ? "connect timed out"
                              : std::string("poll: ") + std::strerror(errno));
    }
    int SoErr = 0;
    socklen_t Len = sizeof(SoErr);
    ::getsockopt(NewFd, SOL_SOCKET, SO_ERROR, &SoErr, &Len);
    if (SoErr != 0) {
      ::close(NewFd);
      return Error(std::string("connect: ") + std::strerror(SoErr));
    }
  }
  ::fcntl(NewFd, F_SETFL, Flags);
  setSocketTimeout(NewFd, Config.IoTimeout);
  if (Config.UnixPath.empty()) {
    // Pipelined request frames are small; do not let Nagle batch them
    // behind the peer's delayed ACKs.
    int One = 1;
    ::setsockopt(NewFd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  }
  Fd = NewFd;
  return true;
}

Expected<bool> Client::connect() {
  for (unsigned Attempt = 1;; ++Attempt) {
    Expected<bool> Ok = connectOnce();
    if (Ok)
      return Ok;
    if (Attempt >= Config.Retry.MaxAttempts)
      return Error("connect failed after " + std::to_string(Attempt) +
                   " attempts: " + Ok.error().message());
    Clk->sleepFor(support::backoffDelay(Config.Retry, Attempt, Config.Seed,
                                        fnv1a64("net-client")));
  }
}

Expected<bool> Client::ensureConnected() {
  if (connected())
    return true;
  return connect();
}

bool Client::sendAll(const uint8_t *Data, size_t Size) {
  size_t Off = 0;
  while (Off < Size) {
    ssize_t N = ::send(Fd, Data + Off, Size - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false; // Timeout or hard error: caller reconnects.
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

bool Client::recvAll(uint8_t *Data, size_t Size, std::string &ErrWhy) {
  size_t Off = 0;
  while (Off < Size) {
    ssize_t N = ::recv(Fd, Data + Off, Size - Off, 0);
    if (N == 0) {
      ErrWhy = "connection closed by server";
      return false;
    }
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ErrWhy = (errno == EAGAIN || errno == EWOULDBLOCK)
                   ? "receive timed out"
                   : std::string("recv: ") + std::strerror(errno);
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

Expected<uint64_t> Client::send(const serve::OptimizeRequest &R) {
  if (Expected<bool> Ok = ensureConnected(); !Ok)
    return Ok.takeError();
  const uint64_t Id = NextId++;
  std::vector<uint8_t> Frame = encodeRequestFrame(R, Id);
  if (!sendAll(Frame.data(), Frame.size())) {
    close();
    return Error("send failed (connection lost)");
  }
  return Id;
}

Expected<std::pair<uint64_t, WireResponse>> Client::receive() {
  if (!connected())
    return Error("not connected");
  uint8_t Header[kHeaderSize];
  std::string Why;
  if (!recvAll(Header, sizeof(Header), Why)) {
    close();
    return Error(Why);
  }
  Expected<FrameHeader> H = decodeHeader(Header, sizeof(Header));
  if (!H) {
    close(); // Framing lost: the stream cannot be resynchronized.
    return H.takeError();
  }
  if (H->Type != FrameType::Response) {
    close();
    return Error("expected a response frame");
  }
  std::vector<uint8_t> Payload(H->PayloadLen);
  if (H->PayloadLen > 0 && !recvAll(Payload.data(), Payload.size(), Why)) {
    close();
    return Error(Why);
  }
  Expected<WireResponse> R =
      decodeResponsePayload(Payload.data(), Payload.size());
  if (!R)
    return R.takeError();
  return std::make_pair(H->RequestId, R.takeValue());
}

Expected<WireResponse> Client::call(const serve::OptimizeRequest &R) {
  // The send retries with reconnect: safe because the service is
  // idempotent per request key (a duplicate lands as a lookup hit or
  // single-flight attach). The receive does not retry — a response
  // may already be lost with the connection, and "wait again" could
  // double the caller's deadline.
  uint64_t Id = 0;
  for (unsigned Attempt = 1;; ++Attempt) {
    Expected<uint64_t> Sent = send(R);
    if (Sent) {
      Id = *Sent;
      break;
    }
    if (Attempt >= Config.Retry.MaxAttempts)
      return Error("request send failed after " + std::to_string(Attempt) +
                   " attempts: " + Sent.error().message());
    Clk->sleepFor(support::backoffDelay(Config.Retry, Attempt, Config.Seed,
                                        fnv1a64("net-client")));
  }
  while (true) {
    auto It = Stashed.find(Id);
    if (It != Stashed.end()) {
      WireResponse W = std::move(It->second);
      Stashed.erase(It);
      return W;
    }
    Expected<std::pair<uint64_t, WireResponse>> Next = receive();
    if (!Next)
      return Next.takeError();
    if (Next->first == Id)
      return std::move(Next->second);
    Stashed.emplace(Next->first, std::move(Next->second));
  }
}

//===- net/NetStats.h - Network front-door counters -----------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aggregate counters of one net::Server, split out of Server.h so the
/// stats subsystem (BenchReport, SnapshotLogger) can serialize them
/// without pulling socket headers into every consumer.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_NET_NETSTATS_H
#define CUASMRL_NET_NETSTATS_H

#include <cstdint>

namespace cuasmrl {
namespace net {

/// One consistent snapshot of a server's counters.
struct NetStats {
  uint64_t ConnectionsAccepted = 0;
  uint64_t ConnectionsClosed = 0;
  uint64_t ActiveConnections = 0; ///< Accepted minus closed (live gauge).
  uint64_t FramesReceived = 0;    ///< Complete frames decoded.
  uint64_t FramesSent = 0;
  uint64_t BytesReceived = 0;
  uint64_t BytesSent = 0;
  uint64_t DecodeErrors = 0;     ///< Corrupt headers (connection dropped)
                                 ///< plus undecodable request payloads
                                 ///< (answered InvalidRequest).
  uint64_t QuotaRejections = 0;  ///< Per-connection in-flight cap hits.
  uint64_t RateLimited = 0;      ///< Token-bucket rejections.
  uint64_t RequestsSubmitted = 0; ///< Frames admitted into the service.
  uint64_t ResponsesSent = 0;
};

/// Enumerates every NetStats field as (name, reference) — the same
/// visitor pattern as serve::visitServiceCounters, so the stats
/// serializer and parser round-trip new fields automatically.
template <typename S, typename Fn> void visitNetCounters(S &Stats, Fn &&F) {
  F("ConnectionsAccepted", Stats.ConnectionsAccepted);
  F("ConnectionsClosed", Stats.ConnectionsClosed);
  F("ActiveConnections", Stats.ActiveConnections);
  F("FramesReceived", Stats.FramesReceived);
  F("FramesSent", Stats.FramesSent);
  F("BytesReceived", Stats.BytesReceived);
  F("BytesSent", Stats.BytesSent);
  F("DecodeErrors", Stats.DecodeErrors);
  F("QuotaRejections", Stats.QuotaRejections);
  F("RateLimited", Stats.RateLimited);
  F("RequestsSubmitted", Stats.RequestsSubmitted);
  F("ResponsesSent", Stats.ResponsesSent);
}

} // namespace net
} // namespace cuasmrl

#endif // CUASMRL_NET_NETSTATS_H

//===- net/Server.h - RPC front door over OptimizationService -------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The network front door: accepts TCP and unix-domain connections on
/// a single poll() IO thread, decodes net/Wire request frames, admits
/// them into a serve::OptimizationService, and streams response frames
/// back as jobs resolve. Design rules:
///
///   - The IO thread never blocks on the service: admission uses
///     trySubmit(), so a full queue answers ResourceExhausted instead
///     of parking the event loop.
///   - Per-client admission control happens before the service sees a
///     frame: a max-in-flight-per-connection cap and a token-bucket
///     rate limit both answer WireStatus::ResourceExhausted.
///   - Request deadlines ride the wire (OptimizeRequest::Timeout) and
///     are enforced by the service's existing deadline machinery.
///   - Malformed traffic is never fatal: an undecodable payload gets
///     an InvalidRequest response on the same connection; a corrupt
///     frame header (bad magic/version/oversized length) makes the
///     byte stream unframeable, so that connection is dropped — the
///     server itself never crashes or leaks the slot.
///   - Completion callbacks run on service worker threads; they park
///     encoded frames in the connection's outbox and wake the IO
///     thread through a self-pipe. A callback outliving the connection
///     (or the server) drops its frame harmlessly via weak_ptr.
///
/// See docs/SERVING.md for the wire format and quota semantics.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_NET_SERVER_H
#define CUASMRL_NET_SERVER_H

#include "net/NetStats.h"
#include "net/Wire.h"
#include "serve/OptimizationService.h"
#include "support/Clock.h"
#include "support/Error.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace cuasmrl {
namespace net {

struct ServerConfig {
  /// TCP listener; Port 0 binds an ephemeral port (read it back from
  /// port() — the loopback-test idiom). EnableTcp false skips the TCP
  /// listener entirely (unix-domain only).
  bool EnableTcp = true;
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;
  /// Unix-domain listener path; empty = none. An existing socket file
  /// is replaced (the daemon-restart idiom).
  std::string UnixPath;
  /// Per-connection cap on requests admitted but not yet answered;
  /// the excess gets WireStatus::ResourceExhausted.
  unsigned MaxInFlightPerConn = 64;
  /// Token-bucket rate limit per connection; 0 disables. The bucket
  /// holds RateBurst tokens and refills at RatePerSec; each admitted
  /// frame spends one.
  double RatePerSec = 0.0;
  double RateBurst = 16.0;
  /// Frame payload cap handed to the header decoder.
  uint32_t MaxFrameBytes = kMaxPayload;
  /// Time source for the token bucket; null = Clock::real(). Tests
  /// inject a FakeClock to step bucket refills deterministically.
  support::Clock *ClockSrc = nullptr;
};

class Server {
public:
  /// \p Service must outlive the server.
  Server(serve::OptimizationService &Service, ServerConfig Config);
  ~Server(); ///< Equivalent to stop().

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the listeners and starts the IO thread. \returns the bound
  /// TCP port (0 when TCP is disabled), or why binding failed.
  Expected<uint16_t> start();

  /// Stops the IO thread and closes every connection. In-flight jobs
  /// keep running in the service; their completion callbacks drop
  /// their frames (the connections are gone). Idempotent.
  void stop();

  /// The bound TCP port (valid after a successful start()).
  uint16_t port() const;

  NetStats stats() const;

private:
  struct Connection;
  struct Shared;

  void ioLoop();
  void acceptPending(int ListenFd);
  /// Drains readable bytes and processes every complete frame;
  /// \returns false when the connection must close (EOF, error, or an
  /// unframeable byte stream).
  bool serviceReadable(const std::shared_ptr<Connection> &Conn);
  bool processFrame(const std::shared_ptr<Connection> &Conn,
                    const FrameHeader &H, const uint8_t *Payload);
  /// Encodes \p R and parks it in the connection's outbox.
  static void sendResponse(const std::shared_ptr<Shared> &Sh,
                           const std::shared_ptr<Connection> &Conn,
                           const WireResponse &R, uint64_t RequestId);
  /// Flushes the outbox as far as the socket accepts; \returns false
  /// on a fatal write error.
  bool flushWrites(const std::shared_ptr<Connection> &Conn);
  void closeConnection(const std::shared_ptr<Connection> &Conn);

  serve::OptimizationService &Service;
  ServerConfig Config;
  support::Clock *Clk;
  /// Counter block + wake pipe, shared with completion callbacks so a
  /// late callback after stop() writes into a still-live block instead
  /// of a dangling server.
  std::shared_ptr<Shared> Sh;
  std::vector<std::shared_ptr<Connection>> Connections; ///< IO thread only.
  int TcpFd = -1;
  int UnixFd = -1;
  uint16_t BoundPort = 0;
  std::thread IoThread;
  std::atomic<bool> Stopping{false};
  bool Started = false;
};

} // namespace net
} // namespace cuasmrl

#endif // CUASMRL_NET_SERVER_H

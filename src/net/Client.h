//===- net/Client.h - Blocking RPC client ---------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The blocking counterpart of net::Server: connects over TCP or a
/// unix-domain socket with a connect timeout, frames OptimizeRequests
/// onto the wire, and reads response frames back under an I/O timeout.
/// Two usage shapes:
///
///   - call(): one request, wait for its response — reconnecting
///     under the support::Retry policy when the send fails (the
///     server restarted, the connection dropped). Safe to retry
///     because the service is idempotent per request key
///     (single-flight + deploy-cache lookup).
///   - send() + receive(): pipelining — many requests in flight on
///     one connection, responses arriving in completion order and
///     matched back by the wire's request id.
///
/// Not thread-safe: one Client per thread (the server multiplexes).
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_NET_CLIENT_H
#define CUASMRL_NET_CLIENT_H

#include "net/Wire.h"
#include "support/Clock.h"
#include "support/Error.h"
#include "support/Retry.h"

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <utility>

namespace cuasmrl {
namespace net {

struct ClientConfig {
  /// TCP target (used when UnixPath is empty).
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;
  /// Unix-domain target; non-empty wins over TCP.
  std::string UnixPath;
  std::chrono::milliseconds ConnectTimeout{2000};
  /// Per-send/per-receive socket timeout. Generous by default: a cold
  /// request legitimately waits for a whole optimize job.
  std::chrono::milliseconds IoTimeout{120000};
  /// Reconnect policy for connect() and call()'s send path.
  support::RetryPolicy Retry;
  /// Jitter seed for the reconnect backoff.
  uint64_t Seed = 1;
  /// Time source for backoff sleeps; null = Clock::real().
  support::Clock *ClockSrc = nullptr;
};

class Client {
public:
  explicit Client(ClientConfig Config);
  ~Client(); ///< Closes the connection.

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects, retrying failed attempts under the Retry policy.
  Expected<bool> connect();
  void close();
  bool connected() const { return Fd >= 0; }

  /// One request, one response (reconnect-retries on send failure).
  Expected<WireResponse> call(const serve::OptimizeRequest &R);

  /// Pipelining: frames \p R and returns its request id immediately.
  /// Connects first when needed (with retries).
  Expected<uint64_t> send(const serve::OptimizeRequest &R);

  /// The next response frame off the wire as (request id, response) —
  /// completion order, not send order.
  Expected<std::pair<uint64_t, WireResponse>> receive();

private:
  Expected<bool> connectOnce();
  Expected<bool> ensureConnected();
  bool sendAll(const uint8_t *Data, size_t Size);
  /// False on EOF/error/timeout (ErrWhy explains).
  bool recvAll(uint8_t *Data, size_t Size, std::string &ErrWhy);

  ClientConfig Config;
  support::Clock *Clk;
  int Fd = -1;
  uint64_t NextId = 1;
  /// Responses read while waiting for a different id (call() after
  /// pipelined send()s).
  std::map<uint64_t, WireResponse> Stashed;
};

} // namespace net
} // namespace cuasmrl

#endif // CUASMRL_NET_CLIENT_H

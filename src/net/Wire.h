//===- net/Wire.h - Length-prefixed binary RPC framing --------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving stack's wire format: length-prefixed binary frames
/// carrying OptimizeRequests to a net::Server and response summaries
/// back (full spec in docs/SERVING.md). Every frame is
///
///   [ magic u32 | version u16 | type u16 | request-id u64 | len u32 ]
///   [ len payload bytes ]
///
/// little-endian throughout, with the payload capped (kMaxPayload by
/// default) so a hostile or corrupt length prefix can never drive an
/// allocation. Decoding is strict: unknown magic, unknown version,
/// unknown frame type, oversized length, truncated payload fields and
/// trailing garbage are all Expected errors — the server rejects the
/// frame (or the connection) instead of guessing.
///
/// Determinism contract: encoding is a pure function of the value —
/// field order is fixed, integers are fixed-width little-endian, and
/// doubles travel as their IEEE-754 bit pattern — so
/// decode(encode(x)) == x exactly (bit-identical doubles included),
/// and two processes encoding the same response produce the same
/// bytes. The request payload carries every result-relevant
/// OptimizeConfig field (the configDigest() list in
/// serve/OptimizationService.cpp); wall-clock-only knobs
/// (RolloutWorkers, AutotuneWorkers) deliberately stay server-side.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_NET_WIRE_H
#define CUASMRL_NET_WIRE_H

#include "serve/OptimizationService.h"
#include "support/Error.h"

#include <cstdint>
#include <vector>

namespace cuasmrl {
namespace net {

constexpr uint32_t kMagic = 0x43505243; // "CRPC" little-endian.
constexpr uint16_t kVersion = 1;
constexpr size_t kHeaderSize = 20;
/// Default payload cap; generous against real cubins (a few KiB), hard
/// against hostile length prefixes.
constexpr uint32_t kMaxPayload = 16u << 20;

enum class FrameType : uint16_t {
  Request = 1,
  Response = 2,
};

struct FrameHeader {
  uint16_t Version = kVersion;
  FrameType Type = FrameType::Request;
  /// Client-chosen correlation id, echoed verbatim on the response —
  /// the pipelining primitive (responses may complete out of order).
  uint64_t RequestId = 0;
  uint32_t PayloadLen = 0;
};

/// Appends the 20-byte header for \p H to \p Out.
void encodeHeader(std::vector<uint8_t> &Out, const FrameHeader &H);

/// Decodes a header from \p Data (which must hold >= kHeaderSize
/// bytes). Rejects bad magic, unknown version, unknown frame type, and
/// PayloadLen > \p MaxPayload.
Expected<FrameHeader> decodeHeader(const uint8_t *Data, size_t Size,
                                   uint32_t MaxPayload = kMaxPayload);

/// Response status on the wire: every serve-side outcome plus the
/// statuses only the network front door produces.
enum class WireStatus : uint32_t {
  Optimized = 0,
  LookupHit = 1,
  Degraded = 2,
  Cancelled = 3,
  DeadlineExceeded = 4,
  Failed = 5,
  Rejected = 6,          ///< Service draining or shut down.
  ResourceExhausted = 7, ///< Per-connection quota or rate limit hit.
  InvalidRequest = 8,    ///< Frame decoded, payload did not.
};

const char *statusName(WireStatus St);
WireStatus toWireStatus(serve::OptimizeResponse::Status St);

/// What a response frame carries: the full resolution surface of an
/// OptimizeResponse minus the server-side-only bulk (training series,
/// program listing, policy blob) — plus the result summary scalars a
/// client dashboards on. Binary is the exact serialized cubin.
struct WireResponse {
  WireStatus St = WireStatus::Failed;
  std::string Key;
  /// The winner binary (empty Data when the response carries none —
  /// rejections, deadline expiries, failures).
  bool HasBinary = false;
  cubin::CubinFile Binary;
  bool Persisted = false;
  std::string DegradedFrom;
  std::string WarmStartedFrom;
  std::string Error;
  double WallMs = 0.0;
  // Result summary (Optimized responses; defaults otherwise).
  bool AutotuneValid = false;
  bool Verified = false;
  double TritonUs = 0.0;
  double OptimizedUs = 0.0;
  uint64_t TrainingUpdates = 0;
  uint64_t WarmStartTensors = 0;
};

/// Flattens a service response into its wire summary.
WireResponse summarizeResponse(const serve::OptimizeResponse &R);

/// Encodes a complete frame (header + payload).
std::vector<uint8_t> encodeRequestFrame(const serve::OptimizeRequest &R,
                                        uint64_t RequestId);
std::vector<uint8_t> encodeResponseFrame(const WireResponse &R,
                                         uint64_t RequestId);

/// Decodes a payload previously framed by the encoder above. Strict:
/// any truncation, embedded-cubin decode failure, out-of-range enum
/// value or trailing byte is an error.
Expected<serve::OptimizeRequest> decodeRequestPayload(const uint8_t *Data,
                                                      size_t Size);
Expected<WireResponse> decodeResponsePayload(const uint8_t *Data,
                                             size_t Size);

} // namespace net
} // namespace cuasmrl

#endif // CUASMRL_NET_WIRE_H

//===- net/Server.cpp -----------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "net/Server.h"

#include "support/Logging.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <mutex>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace cuasmrl;
using namespace cuasmrl::net;

namespace {

bool setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

} // namespace

/// Counters + wake pipe. Completion callbacks capture this block by
/// shared_ptr: a job resolving after stop() (or after its connection
/// died) still has live counters and a live pipe to write into — the
/// pipe keeps its reader open here precisely so a late wake() can
/// never SIGPIPE.
struct Server::Shared {
  std::atomic<uint64_t> ConnectionsAccepted{0};
  std::atomic<uint64_t> ConnectionsClosed{0};
  std::atomic<uint64_t> FramesReceived{0};
  std::atomic<uint64_t> FramesSent{0};
  std::atomic<uint64_t> BytesReceived{0};
  std::atomic<uint64_t> BytesSent{0};
  std::atomic<uint64_t> DecodeErrors{0};
  std::atomic<uint64_t> QuotaRejections{0};
  std::atomic<uint64_t> RateLimited{0};
  std::atomic<uint64_t> RequestsSubmitted{0};
  std::atomic<uint64_t> ResponsesSent{0};

  int WakeRead = -1;
  int WakeWrite = -1;

  ~Shared() {
    if (WakeRead >= 0)
      ::close(WakeRead);
    if (WakeWrite >= 0)
      ::close(WakeWrite);
  }

  void wake() const {
    const uint8_t One = 1;
    // A full pipe already guarantees a pending wakeup; EAGAIN is fine.
    [[maybe_unused]] ssize_t N = ::write(WakeWrite, &One, 1);
  }
};

/// One client connection. ReadBuf and the token bucket are IO-thread-
/// only; Outbox/InFlight/Closed are shared with completion callbacks
/// under M.
struct Server::Connection {
  int Fd = -1;
  std::vector<uint8_t> ReadBuf;
  double Tokens = 0.0;
  support::Clock::TimePoint LastRefill;

  std::mutex M;
  std::deque<std::vector<uint8_t>> Outbox;
  size_t FrontOffset = 0; ///< Bytes of Outbox.front() already written.
  unsigned InFlight = 0;
  bool Closed = false;
};

Server::Server(serve::OptimizationService &Service, ServerConfig Config)
    : Service(Service), Config(std::move(Config)),
      Clk(this->Config.ClockSrc ? this->Config.ClockSrc
                                : &support::Clock::real()),
      Sh(std::make_shared<Shared>()) {}

Server::~Server() { stop(); }

Expected<uint16_t> Server::start() {
  if (Started)
    return BoundPort;
  int Pipe[2];
  if (::pipe2(Pipe, O_CLOEXEC | O_NONBLOCK) != 0)
    return Error(std::string("pipe2: ") + std::strerror(errno));
  Sh->WakeRead = Pipe[0];
  Sh->WakeWrite = Pipe[1];

  if (Config.EnableTcp) {
    TcpFd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (TcpFd < 0)
      return Error(std::string("socket: ") + std::strerror(errno));
    int One = 1;
    ::setsockopt(TcpFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(Config.Port);
    if (::inet_pton(AF_INET, Config.Host.c_str(), &Addr.sin_addr) != 1)
      return Error("bad listen address '" + Config.Host + "'");
    if (::bind(TcpFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
        0)
      return Error(std::string("bind: ") + std::strerror(errno));
    if (::listen(TcpFd, 128) != 0)
      return Error(std::string("listen: ") + std::strerror(errno));
    if (!setNonBlocking(TcpFd))
      return Error("cannot make the TCP listener non-blocking");
    sockaddr_in Bound;
    socklen_t Len = sizeof(Bound);
    if (::getsockname(TcpFd, reinterpret_cast<sockaddr *>(&Bound), &Len) !=
        0)
      return Error(std::string("getsockname: ") + std::strerror(errno));
    BoundPort = ntohs(Bound.sin_port);
  }

  if (!Config.UnixPath.empty()) {
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    if (Config.UnixPath.size() >= sizeof(Addr.sun_path))
      return Error("unix socket path too long");
    std::strncpy(Addr.sun_path, Config.UnixPath.c_str(),
                 sizeof(Addr.sun_path) - 1);
    ::unlink(Config.UnixPath.c_str()); // Daemon restart: replace it.
    UnixFd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (UnixFd < 0)
      return Error(std::string("socket(unix): ") + std::strerror(errno));
    if (::bind(UnixFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
        0)
      return Error(std::string("bind(unix): ") + std::strerror(errno));
    if (::listen(UnixFd, 128) != 0)
      return Error(std::string("listen(unix): ") + std::strerror(errno));
    if (!setNonBlocking(UnixFd))
      return Error("cannot make the unix listener non-blocking");
  }

  Started = true;
  IoThread = std::thread([this] { ioLoop(); });
  return BoundPort;
}

void Server::stop() {
  if (!Started)
    return;
  Stopping.store(true);
  Sh->wake();
  if (IoThread.joinable())
    IoThread.join();
  if (TcpFd >= 0) {
    ::close(TcpFd);
    TcpFd = -1;
  }
  if (UnixFd >= 0) {
    ::close(UnixFd);
    UnixFd = -1;
    ::unlink(Config.UnixPath.c_str());
  }
  Started = false;
}

uint16_t Server::port() const { return BoundPort; }

NetStats Server::stats() const {
  NetStats S;
  S.ConnectionsAccepted = Sh->ConnectionsAccepted.load();
  S.ConnectionsClosed = Sh->ConnectionsClosed.load();
  S.ActiveConnections = S.ConnectionsAccepted - S.ConnectionsClosed;
  S.FramesReceived = Sh->FramesReceived.load();
  S.FramesSent = Sh->FramesSent.load();
  S.BytesReceived = Sh->BytesReceived.load();
  S.BytesSent = Sh->BytesSent.load();
  S.DecodeErrors = Sh->DecodeErrors.load();
  S.QuotaRejections = Sh->QuotaRejections.load();
  S.RateLimited = Sh->RateLimited.load();
  S.RequestsSubmitted = Sh->RequestsSubmitted.load();
  S.ResponsesSent = Sh->ResponsesSent.load();
  return S;
}

void Server::acceptPending(int ListenFd) {
  while (true) {
    int Fd = ::accept4(ListenFd, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Fd < 0)
      return; // EAGAIN (or a racing error): nothing more to accept.
    if (ListenFd == TcpFd) {
      // Small response frames must not sit behind Nagle waiting for
      // the delayed ACK of the previous one (no-op on unix sockets).
      int One = 1;
      ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    }
    auto Conn = std::make_shared<Connection>();
    Conn->Fd = Fd;
    Conn->Tokens = Config.RateBurst;
    Conn->LastRefill = Clk->now();
    Connections.push_back(std::move(Conn));
    Sh->ConnectionsAccepted.fetch_add(1);
  }
}

void Server::sendResponse(const std::shared_ptr<Shared> &Sh,
                          const std::shared_ptr<Connection> &Conn,
                          const WireResponse &R, uint64_t RequestId) {
  std::vector<uint8_t> Frame = encodeResponseFrame(R, RequestId);
  {
    std::lock_guard<std::mutex> Lock(Conn->M);
    if (Conn->Closed)
      return; // The client is gone; drop the frame.
    Conn->Outbox.push_back(std::move(Frame));
  }
  Sh->ResponsesSent.fetch_add(1);
  Sh->wake();
}

bool Server::processFrame(const std::shared_ptr<Connection> &Conn,
                          const FrameHeader &H, const uint8_t *Payload) {
  if (H.Type != FrameType::Request) {
    // A well-framed but nonsensical frame (a client streaming
    // responses at a server): answer and stay open.
    Sh->DecodeErrors.fetch_add(1);
    WireResponse W;
    W.St = WireStatus::InvalidRequest;
    W.Error = "expected a request frame";
    sendResponse(Sh, Conn, W, H.RequestId);
    return true;
  }

  Expected<serve::OptimizeRequest> Req =
      decodeRequestPayload(Payload, H.PayloadLen);
  if (!Req) {
    Sh->DecodeErrors.fetch_add(1);
    WireResponse W;
    W.St = WireStatus::InvalidRequest;
    W.Error = Req.error().message();
    sendResponse(Sh, Conn, W, H.RequestId);
    return true;
  }

  // Admission control before the service sees the frame. Token bucket
  // first: it meters request *arrival*, in-flight cap meters
  // concurrency.
  if (Config.RatePerSec > 0.0) {
    const support::Clock::TimePoint Now = Clk->now();
    const double Elapsed =
        std::chrono::duration<double>(Now - Conn->LastRefill).count();
    Conn->LastRefill = Now;
    Conn->Tokens = std::min(Config.RateBurst,
                            Conn->Tokens + Elapsed * Config.RatePerSec);
    if (Conn->Tokens < 1.0) {
      Sh->RateLimited.fetch_add(1);
      WireResponse W;
      W.St = WireStatus::ResourceExhausted;
      W.Error = "rate limit exceeded";
      sendResponse(Sh, Conn, W, H.RequestId);
      return true;
    }
    Conn->Tokens -= 1.0;
  }
  bool OverQuota = false;
  {
    std::lock_guard<std::mutex> Lock(Conn->M);
    if (Conn->InFlight >= Config.MaxInFlightPerConn)
      OverQuota = true;
    else
      ++Conn->InFlight;
  }
  if (OverQuota) {
    Sh->QuotaRejections.fetch_add(1);
    WireResponse W;
    W.St = WireStatus::ResourceExhausted;
    W.Error = "too many in-flight requests on this connection";
    sendResponse(Sh, Conn, W, H.RequestId);
    return true;
  }

  // trySubmit keeps the IO thread non-blocking: a full service queue
  // surfaces as a Rejected ticket, mapped below. The callback may run
  // synchronously (lookup hits / degraded answers) on this thread or
  // later on a worker; either way it parks the frame and wakes us.
  std::weak_ptr<Connection> Weak = Conn;
  std::shared_ptr<Shared> ShLocal = Sh;
  const uint64_t Id = H.RequestId;
  serve::Ticket Tk = Service.trySubmit(
      *Req, [ShLocal, Weak, Id](const serve::OptimizeResponse &R) {
        std::shared_ptr<Connection> C = Weak.lock();
        if (!C)
          return; // Connection (or server) died while the job ran.
        {
          std::lock_guard<std::mutex> Lock(C->M);
          if (C->InFlight > 0)
            --C->InFlight;
        }
        sendResponse(ShLocal, C, summarizeResponse(R), Id);
      });

  if (Tk.How == serve::Admission::Rejected) {
    // The rejection is the outcome: no callback will fire, so give
    // the slot back and answer from the ticket's ready future —
    // ResourceExhausted for backpressure, Rejected for a draining or
    // shut-down service.
    {
      std::lock_guard<std::mutex> Lock(Conn->M);
      if (Conn->InFlight > 0)
        --Conn->InFlight;
    }
    serve::ResponsePtr Resp = Tk.Response.get();
    WireResponse W;
    W.St = Service.accepting() ? WireStatus::ResourceExhausted
                               : WireStatus::Rejected;
    W.Key = Tk.Key;
    W.Error = Resp ? Resp->Error : "request rejected";
    sendResponse(Sh, Conn, W, Id);
    return true;
  }
  Sh->RequestsSubmitted.fetch_add(1);
  return true;
}

bool Server::serviceReadable(const std::shared_ptr<Connection> &Conn) {
  uint8_t Buf[65536];
  while (true) {
    ssize_t N = ::recv(Conn->Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      Sh->BytesReceived.fetch_add(static_cast<uint64_t>(N));
      Conn->ReadBuf.insert(Conn->ReadBuf.end(), Buf, Buf + N);
      if (N < static_cast<ssize_t>(sizeof(Buf)))
        break; // Short read: the socket is drained.
      continue;
    }
    if (N == 0)
      return false; // Orderly EOF.
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    if (errno == EINTR)
      continue;
    return false; // Hard error.
  }

  // Extract every complete frame. A header that does not decode means
  // the byte stream lost framing — there is no way to resynchronize a
  // length-prefixed stream, so the connection must drop (the slot is
  // reclaimed; the server stays up).
  size_t Consumed = 0;
  while (Conn->ReadBuf.size() - Consumed >= kHeaderSize) {
    const uint8_t *Base = Conn->ReadBuf.data() + Consumed;
    Expected<FrameHeader> H = decodeHeader(
        Base, Conn->ReadBuf.size() - Consumed, Config.MaxFrameBytes);
    if (!H) {
      Sh->DecodeErrors.fetch_add(1);
      logWarn("net::Server: dropping connection: " + H.error().message());
      return false;
    }
    if (Conn->ReadBuf.size() - Consumed < kHeaderSize + H->PayloadLen)
      break; // Incomplete payload: wait for more bytes.
    Sh->FramesReceived.fetch_add(1);
    if (!processFrame(Conn, *H, Base + kHeaderSize))
      return false;
    Consumed += kHeaderSize + H->PayloadLen;
  }
  if (Consumed > 0)
    Conn->ReadBuf.erase(Conn->ReadBuf.begin(),
                        Conn->ReadBuf.begin() +
                            static_cast<ptrdiff_t>(Consumed));
  return true;
}

bool Server::flushWrites(const std::shared_ptr<Connection> &Conn) {
  std::lock_guard<std::mutex> Lock(Conn->M);
  while (!Conn->Outbox.empty()) {
    const std::vector<uint8_t> &Front = Conn->Outbox.front();
    ssize_t N = ::send(Conn->Fd, Front.data() + Conn->FrontOffset,
                       Front.size() - Conn->FrontOffset, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return true; // Socket full: POLLOUT will resume us.
      if (errno == EINTR)
        continue;
      return false;
    }
    Sh->BytesSent.fetch_add(static_cast<uint64_t>(N));
    Conn->FrontOffset += static_cast<size_t>(N);
    if (Conn->FrontOffset == Front.size()) {
      Conn->Outbox.pop_front();
      Conn->FrontOffset = 0;
      Sh->FramesSent.fetch_add(1);
    }
  }
  return true;
}

void Server::closeConnection(const std::shared_ptr<Connection> &Conn) {
  {
    std::lock_guard<std::mutex> Lock(Conn->M);
    if (Conn->Closed)
      return;
    Conn->Closed = true;
  }
  ::close(Conn->Fd);
  Sh->ConnectionsClosed.fetch_add(1);
}

void Server::ioLoop() {
  while (!Stopping.load()) {
    std::vector<pollfd> Fds;
    Fds.push_back({Sh->WakeRead, POLLIN, 0});
    if (TcpFd >= 0)
      Fds.push_back({TcpFd, POLLIN, 0});
    if (UnixFd >= 0)
      Fds.push_back({UnixFd, POLLIN, 0});
    const size_t FirstConn = Fds.size();
    for (const std::shared_ptr<Connection> &Conn : Connections) {
      short Events = POLLIN;
      {
        std::lock_guard<std::mutex> Lock(Conn->M);
        if (!Conn->Outbox.empty())
          Events |= POLLOUT;
      }
      Fds.push_back({Conn->Fd, Events, 0});
    }

    // The wake pipe covers every event the poll itself cannot see
    // (new outbox frames, stop()); the timeout is only a backstop.
    int Ready = ::poll(Fds.data(), Fds.size(), 500);
    if (Stopping.load())
      break;
    if (Ready < 0) {
      if (errno == EINTR)
        continue;
      logWarn(std::string("net::Server: poll: ") + std::strerror(errno));
      break;
    }

    if (Fds[0].revents & POLLIN) {
      uint8_t Drain[256];
      while (::read(Sh->WakeRead, Drain, sizeof(Drain)) > 0) {
      }
    }
    size_t Idx = 1;
    if (TcpFd >= 0) {
      if (Fds[Idx].revents & POLLIN)
        acceptPending(TcpFd);
      ++Idx;
    }
    if (UnixFd >= 0) {
      if (Fds[Idx].revents & POLLIN)
        acceptPending(UnixFd);
      ++Idx;
    }

    std::vector<std::shared_ptr<Connection>> Dead;
    for (size_t I = FirstConn; I < Fds.size(); ++I) {
      const std::shared_ptr<Connection> &Conn = Connections[I - FirstConn];
      bool Alive = true;
      if (Fds[I].revents & (POLLERR | POLLHUP | POLLNVAL))
        Alive = (Fds[I].revents & POLLIN) != 0; // Drain final bytes first.
      if (Alive && (Fds[I].revents & POLLIN))
        Alive = serviceReadable(Conn);
      if (Alive)
        Alive = flushWrites(Conn); // New replies may be ready right away.
      if (!Alive)
        Dead.push_back(Conn);
    }
    for (const std::shared_ptr<Connection> &Conn : Dead) {
      closeConnection(Conn);
      Connections.erase(
          std::remove(Connections.begin(), Connections.end(), Conn),
          Connections.end());
    }
  }
  for (const std::shared_ptr<Connection> &Conn : Connections)
    closeConnection(Conn);
  Connections.clear();
}

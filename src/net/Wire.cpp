//===- net/Wire.cpp -------------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "net/Wire.h"

#include "kernels/Workload.h"

#include <cstring>

using namespace cuasmrl;
using namespace cuasmrl::net;

namespace {

//===----------------------------------------------------------------------===//
// Little-endian primitives
//===----------------------------------------------------------------------===//

void putU8(std::vector<uint8_t> &Out, uint8_t V) { Out.push_back(V); }

void putU16(std::vector<uint8_t> &Out, uint16_t V) {
  Out.push_back(static_cast<uint8_t>(V));
  Out.push_back(static_cast<uint8_t>(V >> 8));
}

void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  for (int Shift = 0; Shift < 32; Shift += 8)
    Out.push_back(static_cast<uint8_t>(V >> Shift));
}

void putU64(std::vector<uint8_t> &Out, uint64_t V) {
  for (int Shift = 0; Shift < 64; Shift += 8)
    Out.push_back(static_cast<uint8_t>(V >> Shift));
}

/// Doubles travel as their IEEE-754 bit pattern: exact round-trip, no
/// decimal formatting anywhere near the determinism contract.
void putDouble(std::vector<uint8_t> &Out, double V) {
  uint64_t Bits = 0;
  static_assert(sizeof(Bits) == sizeof(V), "double is not 64-bit");
  std::memcpy(&Bits, &V, sizeof(Bits));
  putU64(Out, Bits);
}

void putBool(std::vector<uint8_t> &Out, bool V) {
  putU8(Out, V ? 1 : 0);
}

void putString(std::vector<uint8_t> &Out, const std::string &S) {
  putU32(Out, static_cast<uint32_t>(S.size()));
  Out.insert(Out.end(), S.begin(), S.end());
}

void putBytes(std::vector<uint8_t> &Out, const std::vector<uint8_t> &B) {
  putU32(Out, static_cast<uint32_t>(B.size()));
  Out.insert(Out.end(), B.begin(), B.end());
}

/// Strict sequential reader over one payload. The first failed read
/// latches an error; every later read returns a harmless default so
/// decoders can run straight-line and check once. atEnd() makes
/// trailing garbage an error too.
class Cursor {
public:
  Cursor(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}

  bool ok() const { return Err.empty(); }
  const std::string &error() const { return Err; }

  uint8_t u8() {
    uint8_t V = 0;
    take(&V, 1, "u8");
    return V;
  }
  uint16_t u16() {
    uint8_t B[2] = {0, 0};
    take(B, 2, "u16");
    return static_cast<uint16_t>(B[0] | (B[1] << 8));
  }
  uint32_t u32() {
    uint8_t B[4] = {0, 0, 0, 0};
    take(B, 4, "u32");
    uint32_t V = 0;
    for (int I = 3; I >= 0; --I)
      V = (V << 8) | B[I];
    return V;
  }
  uint64_t u64() {
    uint8_t B[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    take(B, 8, "u64");
    uint64_t V = 0;
    for (int I = 7; I >= 0; --I)
      V = (V << 8) | B[I];
    return V;
  }
  double f64() {
    uint64_t Bits = u64();
    double V = 0.0;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }
  bool boolean() {
    uint8_t V = u8();
    if (V > 1)
      fail("boolean byte out of range");
    return V == 1;
  }
  std::string str() {
    uint32_t Len = u32();
    if (!ok())
      return std::string();
    if (Len > Size - Pos) {
      fail("string length exceeds payload");
      return std::string();
    }
    std::string S(reinterpret_cast<const char *>(Data + Pos), Len);
    Pos += Len;
    return S;
  }
  std::vector<uint8_t> bytes() {
    uint32_t Len = u32();
    if (!ok())
      return {};
    if (Len > Size - Pos) {
      fail("byte-array length exceeds payload");
      return {};
    }
    std::vector<uint8_t> B(Data + Pos, Data + Pos + Len);
    Pos += Len;
    return B;
  }

  void fail(const std::string &Why) {
    if (Err.empty())
      Err = Why;
  }

  /// Every decoded payload must consume exactly its frame's bytes.
  void atEnd() {
    if (ok() && Pos != Size)
      fail("trailing bytes after payload");
  }

private:
  void take(uint8_t *Out, size_t N, const char *What) {
    if (!ok())
      return;
    if (N > Size - Pos) {
      fail(std::string("truncated ") + What);
      return;
    }
    std::memcpy(Out, Data + Pos, N);
    Pos += N;
  }

  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  std::string Err;
};

//===----------------------------------------------------------------------===//
// Config block: exactly the result-relevant field list of
// configDigest() (serve/OptimizationService.cpp) — the wire-carried
// config must decode to the same request key the client computed.
//===----------------------------------------------------------------------===//

void putMeasure(std::vector<uint8_t> &Out, const gpusim::MeasureConfig &M) {
  putU32(Out, M.WarmupIters);
  putU32(Out, M.RepeatIters);
  putBool(Out, M.ClearL2BetweenReps);
  putDouble(Out, M.NoiseStddev);
  putU32(Out, M.MaxBlocks);
  putU64(Out, M.Seed);
}

void takeMeasure(Cursor &C, gpusim::MeasureConfig &M) {
  M.WarmupIters = C.u32();
  M.RepeatIters = C.u32();
  M.ClearL2BetweenReps = C.boolean();
  M.NoiseStddev = C.f64();
  M.MaxBlocks = C.u32();
  M.Seed = C.u64();
}

void putConfig(std::vector<uint8_t> &Out, const core::OptimizeConfig &C) {
  const auto &Entries = C.Game.Table.entries();
  putU32(Out, static_cast<uint32_t>(Entries.size()));
  for (const auto &[Key, Cycles] : Entries) {
    putString(Out, Key);
    putU32(Out, Cycles);
  }
  putDouble(Out, C.Ppo.Lr);
  putDouble(Out, C.Ppo.Gamma);
  putDouble(Out, C.Ppo.GaeLambda);
  putDouble(Out, C.Ppo.ClipCoef);
  putDouble(Out, C.Ppo.EntCoef);
  putDouble(Out, C.Ppo.VfCoef);
  putDouble(Out, C.Ppo.MaxGradNorm);
  putU32(Out, C.Ppo.RolloutLen);
  putU32(Out, C.Ppo.MiniBatches);
  putU32(Out, C.Ppo.Epochs);
  putU32(Out, C.Ppo.TotalSteps);
  putBool(Out, C.Ppo.NormAdvantage);
  putBool(Out, C.Ppo.ClipVLoss);
  putBool(Out, C.Ppo.AnnealLr);
  putU64(Out, C.Ppo.Seed);
  putU64(Out, C.Ppo.Channels);
  putU64(Out, C.Ppo.Hidden);
  putU32(Out, C.Game.EpisodeLength);
  putMeasure(Out, C.Game.Measure);
  putBool(Out, C.Game.UseActionMasking);
  putDouble(Out, C.Game.InvalidPenalty);
  putBool(Out, C.Game.CacheMeasurements);
  putBool(Out, C.Game.RecordTrace);
  putU32(Out, C.NumEnvs);
  putU32(Out, C.ProbTestRounds);
  putMeasure(Out, C.AutotuneMeasure);
  putU64(Out, C.AutotuneSeed);
  putBool(Out, C.ConditionEmbedding);
}

core::OptimizeConfig takeConfig(Cursor &C) {
  // Wall-clock-only knobs (RolloutWorkers, AutotuneWorkers, Ppo.
  // Workers) and runtime wiring (SharedCache, PrivateDevice, Context)
  // keep their server-side defaults: the client has no say over how
  // the server spends its threads.
  core::OptimizeConfig Cfg;
  uint32_t TableCount = C.u32();
  Cfg.Game.Table = analysis::StallTable::empty();
  for (uint32_t I = 0; I < TableCount && C.ok(); ++I) {
    std::string Key = C.str();
    uint32_t Cycles = C.u32();
    Cfg.Game.Table.record(Key, Cycles);
  }
  Cfg.Ppo.Lr = C.f64();
  Cfg.Ppo.Gamma = C.f64();
  Cfg.Ppo.GaeLambda = C.f64();
  Cfg.Ppo.ClipCoef = C.f64();
  Cfg.Ppo.EntCoef = C.f64();
  Cfg.Ppo.VfCoef = C.f64();
  Cfg.Ppo.MaxGradNorm = C.f64();
  Cfg.Ppo.RolloutLen = C.u32();
  Cfg.Ppo.MiniBatches = C.u32();
  Cfg.Ppo.Epochs = C.u32();
  Cfg.Ppo.TotalSteps = C.u32();
  Cfg.Ppo.NormAdvantage = C.boolean();
  Cfg.Ppo.ClipVLoss = C.boolean();
  Cfg.Ppo.AnnealLr = C.boolean();
  Cfg.Ppo.Seed = C.u64();
  Cfg.Ppo.Channels = static_cast<size_t>(C.u64());
  Cfg.Ppo.Hidden = static_cast<size_t>(C.u64());
  Cfg.Game.EpisodeLength = C.u32();
  takeMeasure(C, Cfg.Game.Measure);
  Cfg.Game.UseActionMasking = C.boolean();
  Cfg.Game.InvalidPenalty = C.f64();
  Cfg.Game.CacheMeasurements = C.boolean();
  Cfg.Game.RecordTrace = C.boolean();
  Cfg.NumEnvs = C.u32();
  Cfg.ProbTestRounds = C.u32();
  takeMeasure(C, Cfg.AutotuneMeasure);
  Cfg.AutotuneSeed = C.u64();
  Cfg.ConditionEmbedding = C.boolean();
  return Cfg;
}

} // namespace

//===----------------------------------------------------------------------===//
// Frame header
//===----------------------------------------------------------------------===//

void net::encodeHeader(std::vector<uint8_t> &Out, const FrameHeader &H) {
  putU32(Out, kMagic);
  putU16(Out, H.Version);
  putU16(Out, static_cast<uint16_t>(H.Type));
  putU64(Out, H.RequestId);
  putU32(Out, H.PayloadLen);
}

Expected<FrameHeader> net::decodeHeader(const uint8_t *Data, size_t Size,
                                        uint32_t MaxPayload) {
  Cursor C(Data, Size);
  if (Size < kHeaderSize)
    return Error("short frame header");
  if (C.u32() != kMagic)
    return Error("bad frame magic");
  FrameHeader H;
  H.Version = C.u16();
  if (H.Version != kVersion)
    return Error("unsupported wire version " + std::to_string(H.Version));
  uint16_t Type = C.u16();
  if (Type != static_cast<uint16_t>(FrameType::Request) &&
      Type != static_cast<uint16_t>(FrameType::Response))
    return Error("unknown frame type " + std::to_string(Type));
  H.Type = static_cast<FrameType>(Type);
  H.RequestId = C.u64();
  H.PayloadLen = C.u32();
  if (H.PayloadLen > MaxPayload)
    return Error("frame payload of " + std::to_string(H.PayloadLen) +
                 " bytes exceeds the " + std::to_string(MaxPayload) +
                 "-byte cap");
  return H;
}

//===----------------------------------------------------------------------===//
// Request
//===----------------------------------------------------------------------===//

std::vector<uint8_t>
net::encodeRequestFrame(const serve::OptimizeRequest &R,
                        uint64_t RequestId) {
  std::vector<uint8_t> Payload;
  putU32(Payload, static_cast<uint32_t>(R.Kind));
  putU32(Payload, R.Shape.B);
  putU32(Payload, R.Shape.M);
  putU32(Payload, R.Shape.N);
  putU32(Payload, R.Shape.K);
  putU32(Payload, R.Shape.NHead);
  putU32(Payload, R.Shape.SeqLen);
  putU32(Payload, R.Shape.DHead);
  putU32(Payload, R.Shape.Rows);
  putU32(Payload, R.Shape.Cols);
  putString(Payload, R.GpuType);
  putU32(Payload, static_cast<uint32_t>(R.Priority));
  putU64(Payload, static_cast<uint64_t>(R.Timeout.count()));
  putBool(Payload, R.AllowDegraded);
  putBool(Payload, R.Config.has_value());
  if (R.Config)
    putConfig(Payload, *R.Config);

  std::vector<uint8_t> Frame;
  Frame.reserve(kHeaderSize + Payload.size());
  FrameHeader H;
  H.Type = FrameType::Request;
  H.RequestId = RequestId;
  H.PayloadLen = static_cast<uint32_t>(Payload.size());
  encodeHeader(Frame, H);
  Frame.insert(Frame.end(), Payload.begin(), Payload.end());
  return Frame;
}

Expected<serve::OptimizeRequest>
net::decodeRequestPayload(const uint8_t *Data, size_t Size) {
  Cursor C(Data, Size);
  serve::OptimizeRequest R;
  uint32_t Kind = C.u32();
  if (C.ok() && Kind >= kernels::allWorkloads().size())
    return Error("workload kind " + std::to_string(Kind) + " out of range");
  R.Kind = static_cast<kernels::WorkloadKind>(Kind);
  R.Shape.B = C.u32();
  R.Shape.M = C.u32();
  R.Shape.N = C.u32();
  R.Shape.K = C.u32();
  R.Shape.NHead = C.u32();
  R.Shape.SeqLen = C.u32();
  R.Shape.DHead = C.u32();
  R.Shape.Rows = C.u32();
  R.Shape.Cols = C.u32();
  R.GpuType = C.str();
  R.Priority = static_cast<int32_t>(C.u32());
  R.Timeout = std::chrono::milliseconds(static_cast<int64_t>(C.u64()));
  R.AllowDegraded = C.boolean();
  if (C.boolean())
    R.Config = takeConfig(C);
  C.atEnd();
  if (!C.ok())
    return Error("malformed request payload: " + C.error());
  return R;
}

//===----------------------------------------------------------------------===//
// Response
//===----------------------------------------------------------------------===//

const char *net::statusName(WireStatus St) {
  switch (St) {
  case WireStatus::Optimized:
    return "optimized";
  case WireStatus::LookupHit:
    return "lookup-hit";
  case WireStatus::Degraded:
    return "degraded";
  case WireStatus::Cancelled:
    return "cancelled";
  case WireStatus::DeadlineExceeded:
    return "deadline-exceeded";
  case WireStatus::Failed:
    return "failed";
  case WireStatus::Rejected:
    return "rejected";
  case WireStatus::ResourceExhausted:
    return "resource-exhausted";
  case WireStatus::InvalidRequest:
    return "invalid-request";
  }
  return "unknown";
}

WireStatus net::toWireStatus(serve::OptimizeResponse::Status St) {
  switch (St) {
  case serve::OptimizeResponse::Status::Optimized:
    return WireStatus::Optimized;
  case serve::OptimizeResponse::Status::LookupHit:
    return WireStatus::LookupHit;
  case serve::OptimizeResponse::Status::Degraded:
    return WireStatus::Degraded;
  case serve::OptimizeResponse::Status::Cancelled:
    return WireStatus::Cancelled;
  case serve::OptimizeResponse::Status::DeadlineExceeded:
    return WireStatus::DeadlineExceeded;
  case serve::OptimizeResponse::Status::Failed:
    return WireStatus::Failed;
  case serve::OptimizeResponse::Status::Rejected:
    return WireStatus::Rejected;
  }
  return WireStatus::Failed;
}

WireResponse net::summarizeResponse(const serve::OptimizeResponse &R) {
  WireResponse W;
  W.St = toWireStatus(R.St);
  W.Key = R.Key;
  W.HasBinary = W.St == WireStatus::Optimized ||
                W.St == WireStatus::LookupHit ||
                W.St == WireStatus::Degraded;
  if (W.HasBinary)
    W.Binary = R.Binary;
  W.Persisted = R.Persisted;
  W.DegradedFrom = R.DegradedFrom;
  W.WarmStartedFrom = R.WarmStartedFrom;
  W.Error = R.Error;
  W.WallMs = R.WallMs;
  if (R.St == serve::OptimizeResponse::Status::Optimized) {
    W.AutotuneValid = R.Result.AutotuneValid;
    W.Verified = R.Result.Verified;
    W.TritonUs = R.Result.TritonUs;
    W.OptimizedUs = R.Result.OptimizedUs;
    W.TrainingUpdates = R.Result.Training.size();
    W.WarmStartTensors = R.Result.WarmStartTensors;
  }
  return W;
}

std::vector<uint8_t> net::encodeResponseFrame(const WireResponse &R,
                                              uint64_t RequestId) {
  std::vector<uint8_t> Payload;
  putU32(Payload, static_cast<uint32_t>(R.St));
  putString(Payload, R.Key);
  putBool(Payload, R.HasBinary);
  if (R.HasBinary)
    putBytes(Payload, R.Binary.serialize());
  putBool(Payload, R.Persisted);
  putString(Payload, R.DegradedFrom);
  putString(Payload, R.WarmStartedFrom);
  putString(Payload, R.Error);
  putDouble(Payload, R.WallMs);
  putBool(Payload, R.AutotuneValid);
  putBool(Payload, R.Verified);
  putDouble(Payload, R.TritonUs);
  putDouble(Payload, R.OptimizedUs);
  putU64(Payload, R.TrainingUpdates);
  putU64(Payload, R.WarmStartTensors);

  std::vector<uint8_t> Frame;
  Frame.reserve(kHeaderSize + Payload.size());
  FrameHeader H;
  H.Type = FrameType::Response;
  H.RequestId = RequestId;
  H.PayloadLen = static_cast<uint32_t>(Payload.size());
  encodeHeader(Frame, H);
  Frame.insert(Frame.end(), Payload.begin(), Payload.end());
  return Frame;
}

Expected<WireResponse> net::decodeResponsePayload(const uint8_t *Data,
                                                  size_t Size) {
  Cursor C(Data, Size);
  WireResponse R;
  uint32_t St = C.u32();
  if (C.ok() && St > static_cast<uint32_t>(WireStatus::InvalidRequest))
    return Error("response status " + std::to_string(St) + " out of range");
  R.St = static_cast<WireStatus>(St);
  R.Key = C.str();
  R.HasBinary = C.boolean();
  if (R.HasBinary) {
    std::vector<uint8_t> Bytes = C.bytes();
    if (C.ok()) {
      Expected<cubin::CubinFile> File = cubin::CubinFile::deserialize(Bytes);
      if (!File)
        return Error("embedded cubin: " + File.error().message());
      R.Binary = File.takeValue();
    }
  }
  R.Persisted = C.boolean();
  R.DegradedFrom = C.str();
  R.WarmStartedFrom = C.str();
  R.Error = C.str();
  R.WallMs = C.f64();
  R.AutotuneValid = C.boolean();
  R.Verified = C.boolean();
  R.TritonUs = C.f64();
  R.OptimizedUs = C.f64();
  R.TrainingUpdates = C.u64();
  R.WarmStartTensors = C.u64();
  C.atEnd();
  if (!C.ok())
    return Error("malformed response payload: " + C.error());
  return R;
}

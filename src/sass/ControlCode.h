//===- sass/ControlCode.h - SASS control code (scoreboard) model ----------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-instruction control code that Kepler-and-later GPUs use for
/// static scheduling, in CuAssembler's textual form (paper §2.3):
///
///   [B------:R-:W2:Y:S02] LDG.E R0, [R2.64];
///
/// Five colon-separated fields inside the brackets:
///   1. wait barrier mask — six slots; the instruction stalls until every
///      named scoreboard slot is clear;
///   2. read barrier  — slot set when the instruction's *source* operands
///      have been consumed (protects operands of variable-latency ops);
///   3. write barrier — slot set until the instruction's *result* is
///      ready (protects consumers of variable-latency results);
///   4. yield flag — scheduler load-balancing hint;
///   5. stall count — cycles to stall before issuing the next
///      instruction from the same warp.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_SASS_CONTROLCODE_H
#define CUASMRL_SASS_CONTROLCODE_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace cuasmrl {
namespace sass {

/// Decoded control code attached to every SASS instruction.
class ControlCode {
public:
  /// Number of scoreboard (wait-barrier) slots on Ampere.
  static constexpr int NumBarrierSlots = 6;
  /// Maximum encodable stall count (4 bits).
  static constexpr unsigned MaxStall = 15;
  /// Sentinel for "no read/write barrier set".
  static constexpr int NoBarrier = -1;

  ControlCode() = default;

  /// \name Wait barrier mask
  /// @{
  bool waitsOn(int Slot) const { return (WaitMask >> Slot) & 1u; }
  void setWait(int Slot, bool Value = true) {
    if (Value)
      WaitMask |= (1u << Slot);
    else
      WaitMask &= ~(1u << Slot);
  }
  uint8_t waitMask() const { return WaitMask; }
  void setWaitMask(uint8_t Mask) { WaitMask = Mask & 0x3f; }
  /// @}

  /// \name Read / write barriers
  /// @{
  int readBarrier() const { return ReadBarrier; }
  void setReadBarrier(int Slot) { ReadBarrier = static_cast<int8_t>(Slot); }
  bool hasReadBarrier() const { return ReadBarrier != NoBarrier; }

  int writeBarrier() const { return WriteBarrier; }
  void setWriteBarrier(int Slot) { WriteBarrier = static_cast<int8_t>(Slot); }
  bool hasWriteBarrier() const { return WriteBarrier != NoBarrier; }
  /// @}

  bool yield() const { return Yield; }
  void setYield(bool Value) { Yield = Value; }

  unsigned stall() const { return Stall; }
  void setStall(unsigned Cycles) { Stall = static_cast<uint8_t>(Cycles); }

  /// True when this instruction sets scoreboard slot \p Slot (as either
  /// its read or its write barrier).
  bool setsBarrier(int Slot) const {
    return ReadBarrier == Slot || WriteBarrier == Slot;
  }

  /// Renders the bracketed textual form, e.g. "[B--2---:R-:W3:Y:S04]".
  std::string str() const;

  /// Parses the bracketed textual form.
  static Expected<ControlCode> parse(std::string_view Text);

  /// Packs into the low 23 bits used by the binary encoder:
  /// wait(6) | read(3) | write(3) | yield(1) | stall(4).
  uint32_t encode() const;
  static ControlCode decode(uint32_t Bits);

  bool operator==(const ControlCode &Other) const {
    return WaitMask == Other.WaitMask && ReadBarrier == Other.ReadBarrier &&
           WriteBarrier == Other.WriteBarrier && Yield == Other.Yield &&
           Stall == Other.Stall;
  }

private:
  uint8_t WaitMask = 0;
  int8_t ReadBarrier = NoBarrier;
  int8_t WriteBarrier = NoBarrier;
  bool Yield = false;
  uint8_t Stall = 0;
};

} // namespace sass
} // namespace cuasmrl

#endif // CUASMRL_SASS_CONTROLCODE_H

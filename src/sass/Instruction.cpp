//===- sass/Instruction.cpp ------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "sass/Instruction.h"

#include <cassert>

using namespace cuasmrl;
using namespace cuasmrl::sass;

bool Instruction::hasModifier(std::string_view Mod) const {
  for (const std::string &M : Modifiers)
    if (M == Mod)
      return true;
  return false;
}

unsigned Instruction::dataRegCount() const {
  if (hasModifier("128"))
    return 4;
  if (hasModifier("64"))
    return 2;
  return 1;
}

/// Appends \p R and, when \p Count > 1, its consecutive upper registers.
/// Vector loads/stores address aligned groups R, R+1, ... R+Count-1.
static void appendRegGroup(std::vector<Register> &Out, Register R,
                           unsigned Count) {
  if (R.isZero())
    return;
  for (unsigned I = 0; I < Count; ++I)
    Out.push_back(Register(R.regClass(), R.index() + I));
}

/// Appends all registers of a source operand with Eq. 2 expansion.
static void appendOperandUses(std::vector<Register> &Out, const Operand &Op) {
  for (Register R : Op.expandRegisters())
    Out.push_back(R);
}

std::vector<Register> Instruction::regDefs() const {
  std::vector<Register> Defs;
  const OpcodeInfo &Info = info();
  if (Operands.empty())
    return Defs;

  switch (this->Op) {
  case Opcode::ISETP:
  case Opcode::FSETP:
    // Two leading predicate destinations: ISETP.GE.AND P0, PT, ...
    for (unsigned I = 0; I < 2 && I < Operands.size(); ++I)
      if (Operands[I].isReg() && Operands[I].baseReg().isPredicate() &&
          !Operands[I].baseReg().isZero())
        Defs.push_back(Operands[I].baseReg());
    return Defs;
  case Opcode::PLOP3:
    // PLOP3.LUT P0, PT, Pa, Pb, Pc, imm, imm.
    for (unsigned I = 0; I < 2 && I < Operands.size(); ++I)
      if (Operands[I].isReg() && Operands[I].baseReg().isPredicate() &&
          !Operands[I].baseReg().isZero())
        Defs.push_back(Operands[I].baseReg());
    return Defs;
  case Opcode::VOTE:
    if (Operands[0].isReg() && !Operands[0].baseReg().isZero())
      Defs.push_back(Operands[0].baseReg());
    return Defs;
  default:
    break;
  }

  if (!Info.WritesRegister)
    return Defs;

  const Operand &Dest = Operands[0];
  if (!Dest.isReg())
    return Defs;

  // Register-pair results: IMAD.WIDE and explicit `.64` destinations.
  unsigned Count = 1;
  if (this->Op == Opcode::IMAD && hasModifier("WIDE"))
    Count = 2;
  else if (Dest.isWide())
    Count = 2;
  else if (Info.IsLoad && Info.Space != MemSpace::GlobalToShared)
    Count = dataRegCount();
  appendRegGroup(Defs, Dest.baseReg(), Count);

  // Carry-out predicates on integer adds: IADD3 R6, P0, ..., and the
  // IMAD.X carry chain. A predicate operand in slot 1 (or slot 2, when
  // slot 1 is also a predicate) is a definition, not a source.
  if (this->Op == Opcode::IADD3 || this->Op == Opcode::IMAD) {
    for (unsigned I = 1; I <= 2 && I < Operands.size(); ++I) {
      const Operand &MaybeCarry = Operands[I];
      if (!MaybeCarry.isReg() || !MaybeCarry.baseReg().isPredicate())
        break;
      if (!MaybeCarry.baseReg().isZero() && !MaybeCarry.isNot())
        Defs.push_back(MaybeCarry.baseReg());
    }
  }
  return Defs;
}

std::vector<Register> Instruction::regUses() const {
  std::vector<Register> Uses;
  const OpcodeInfo &Info = info();

  if (Guarded && !Guard.isZero())
    Uses.push_back(Guard);

  // Identify which leading operands are pure definitions (skipped here).
  unsigned FirstSource = 0;
  switch (this->Op) {
  case Opcode::ISETP:
  case Opcode::FSETP:
  case Opcode::PLOP3:
    FirstSource = 2;
    break;
  default:
    if (Info.WritesRegister && !Operands.empty() && Operands[0].isReg()) {
      FirstSource = 1;
      // Skip carry-out predicate defs (IADD3 R6, P0, ...).
      if (this->Op == Opcode::IADD3 || this->Op == Opcode::IMAD) {
        while (FirstSource <= 2 && FirstSource < Operands.size() &&
               Operands[FirstSource].isReg() &&
               Operands[FirstSource].baseReg().isPredicate() &&
               !Operands[FirstSource].isNot())
          ++FirstSource;
      }
    }
    break;
  }

  for (unsigned I = FirstSource; I < Operands.size(); ++I) {
    const Operand &Op = Operands[I];
    // Store-data operands move dataRegCount() registers.
    bool IsStoreData = Info.IsStore && Op.isReg() &&
                       Info.Space != MemSpace::GlobalToShared &&
                       I + 1 == Operands.size() && I > 0;
    if (IsStoreData) {
      appendRegGroup(Uses, Op.baseReg(), dataRegCount());
      if (Op.isWide())
        Uses.push_back(Op.baseReg().adjacent());
      continue;
    }
    appendOperandUses(Uses, Op);
  }

  // A load destination is also implicitly read when the instruction is
  // predicated: lanes where the guard fails keep the old value.
  return Uses;
}

const Operand *Instruction::memOperand() const {
  for (const Operand &Op : Operands)
    if (Op.isMem())
      return &Op;
  return nullptr;
}

std::string Instruction::str() const {
  std::string Out;
  if (Guarded) {
    Out += '@';
    if (GuardNeg)
      Out += '!';
    Out += Guard.str();
    Out += ' ';
  }
  Out += info().Name;
  for (const std::string &Mod : Modifiers) {
    Out += '.';
    Out += Mod;
  }
  for (unsigned I = 0; I < Operands.size(); ++I) {
    Out += I == 0 ? " " : ", ";
    Out += Operands[I].str();
  }
  Out += " ;";
  return Out;
}

//===- sass/Opcode.h - SASS opcode enumeration and properties -------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Opcode identities plus the static properties the analysis passes, the
/// environment and the simulator need: memory class, latency class,
/// barrier/synchronization role and control-flow role.
///
/// Latency note (paper §2.3.1): *fixed-latency* instructions complete a
/// known number of cycles after issue and are protected purely by the
/// control code's stall count; *variable-latency* instructions (memory,
/// transcendental, special-register reads) signal completion through a
/// scoreboard barrier. The authoritative fixed latencies — what the real
/// hardware "knows" and the paper recovers by microbenchmarking
/// (Table 1) — are exposed here via `groundTruthLatency()` and consumed
/// ONLY by the simulator; the toolchain side (analysis::StallTable) must
/// re-derive them with the paper's methodology.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_SASS_OPCODE_H
#define CUASMRL_SASS_OPCODE_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cuasmrl {
namespace sass {

/// All opcodes the toolchain understands (Ampere subset).
enum class Opcode : uint8_t {
  // Memory.
  LDG,     ///< Load from global memory.
  STG,     ///< Store to global memory.
  LDS,     ///< Load from shared memory.
  STS,     ///< Store to shared memory.
  LDSM,    ///< Load matrix fragment from shared memory.
  LDGSTS,  ///< Asynchronous global->shared copy (Ampere cp.async).
  LDC,     ///< Load from constant memory.
  ATOM,    ///< Global atomic.
  RED,     ///< Global reduction.
  // Integer ALU.
  IADD3,   ///< Three-input integer add.
  IMAD,    ///< Integer multiply-add (many modifier forms).
  LEA,     ///< Shift-and-add address calculation.
  LOP3,    ///< Three-input logic op.
  SHF,     ///< Funnel shift.
  IABS,    ///< Integer absolute value.
  IMNMX,   ///< Integer min/max.
  SEL,     ///< Select by predicate.
  ISETP,   ///< Integer compare, sets predicate.
  POPC,    ///< Population count.
  // Float ALU.
  FADD,    ///< FP32 add.
  FMUL,    ///< FP32 multiply.
  FFMA,    ///< FP32 fused multiply-add.
  FSETP,   ///< FP32 compare, sets predicate.
  FSEL,    ///< FP32 select by predicate.
  FMNMX,   ///< FP32 min/max.
  MUFU,    ///< Multi-function unit (rcp, ex2, lg2, ...). Variable latency.
  // Half / tensor.
  HADD2,   ///< Packed FP16 add.
  HMUL2,   ///< Packed FP16 multiply.
  HFMA2,   ///< Packed FP16 FMA.
  HMMA,    ///< Tensor-core matrix multiply-accumulate.
  IMMA,    ///< Tensor-core integer MMA.
  // Conversions (XU pipe — variable latency on Ampere).
  I2F,     ///< Int to float.
  F2I,     ///< Float to int.
  F2F,     ///< Float width conversion.
  // Data movement / misc.
  MOV,     ///< Register move.
  MOV32I,  ///< Move 32-bit immediate.
  PRMT,    ///< Byte permute.
  PLOP3,   ///< Predicate logic op.
  SHFL,    ///< Warp shuffle. Variable latency.
  CS2R,    ///< Copy special register to register (fixed latency).
  S2R,     ///< Read special register (variable latency).
  VOTE,    ///< Warp vote.
  NOP,     ///< No operation.
  // Control flow.
  BRA,     ///< Branch.
  EXIT,    ///< Thread exit.
  CALL,    ///< Call.
  RET,     ///< Return.
  // Barriers and synchronization.
  BAR,       ///< Block-wide barrier (BAR.SYNC).
  DEPBAR,    ///< Scoreboard partial-wait barrier.
  LDGDEPBAR, ///< LDGSTS group commit barrier.
  BSSY,      ///< Convergence barrier set.
  BSYNC,     ///< Convergence barrier sync.
  WARPSYNC,  ///< Warp-level sync.
  MEMBAR,    ///< Memory fence.
  ERRBAR,    ///< Error barrier.
  YIELD,     ///< Scheduler yield.
};

/// Memory space an opcode touches.
enum class MemSpace : uint8_t {
  None,
  Global,
  Shared,
  GlobalToShared, ///< LDGSTS: reads global, writes shared, bypasses regs.
  Constant,
};

/// Static properties of an opcode.
struct OpcodeInfo {
  Opcode Op;
  const char *Name;
  MemSpace Space;
  bool IsLoad;            ///< Reads memory.
  bool IsStore;           ///< Writes memory.
  bool IsVariableLatency; ///< Completion signalled via scoreboard barrier.
  bool IsControlFlow;     ///< Ends a basic block.
  bool IsBarrierOrSync;   ///< Synchronization; never reordered across.
  bool WritesRegister;    ///< First operand is a register destination.
  bool IsReorderable;     ///< Eligible for the RL action space (§3.5).
};

/// Property lookup; valid for every enumerator.
const OpcodeInfo &getOpcodeInfo(Opcode Op);

/// Parses a base opcode mnemonic ("LDG", not "LDG.E.128").
std::optional<Opcode> parseOpcode(std::string_view Mnemonic);

/// True when the opcode reads or writes any memory space.
inline bool isMemoryOpcode(Opcode Op) {
  return getOpcodeInfo(Op).Space != MemSpace::None;
}

/// The key used for fixed-latency lookup: the base mnemonic plus the
/// modifiers that change the latency class (e.g. "IMAD.WIDE" vs
/// "IMAD.IADD"). Returns std::nullopt for variable-latency opcodes.
std::optional<std::string>
fixedLatencyKey(Opcode Op, const std::vector<std::string> &Modifiers);

/// The hardware's actual fixed latency in cycles for a latency key.
/// This is the ground truth the simulator enforces and the paper's
/// Table 1 microbenchmarks recover. Returns std::nullopt for unknown
/// keys (treat as variable latency).
std::optional<unsigned> groundTruthLatency(std::string_view LatencyKey);

/// All latency keys with ground-truth values (for microbench sweeps).
std::vector<std::string> allLatencyKeys();

} // namespace sass
} // namespace cuasmrl

#endif // CUASMRL_SASS_OPCODE_H

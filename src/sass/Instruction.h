//===- sass/Instruction.h - SASS instruction model -------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A decoded SASS instruction: control code, optional guard predicate,
/// opcode with modifier list, and operands (paper §2.3). Register def/use
/// extraction lives here because the conventions (destination-first,
/// carry-out predicates, `.WIDE` pair results, `.64`/`.128` data widths)
/// are ISA facts shared by the analyzer, the environment and the
/// simulator.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_SASS_INSTRUCTION_H
#define CUASMRL_SASS_INSTRUCTION_H

#include "sass/ControlCode.h"
#include "sass/Opcode.h"
#include "sass/Operand.h"

#include <string>
#include <vector>

namespace cuasmrl {
namespace sass {

/// One SASS instruction.
class Instruction {
public:
  Instruction() = default;
  Instruction(Opcode Op, std::vector<std::string> Modifiers,
              std::vector<Operand> Operands)
      : Op(Op), Modifiers(std::move(Modifiers)),
        Operands(std::move(Operands)) {}

  /// \name Core fields
  /// @{
  Opcode opcode() const { return Op; }
  void setOpcode(Opcode NewOp) { Op = NewOp; }

  const std::vector<std::string> &modifiers() const { return Modifiers; }
  std::vector<std::string> &modifiers() { return Modifiers; }
  bool hasModifier(std::string_view Mod) const;

  const std::vector<Operand> &operands() const { return Operands; }
  std::vector<Operand> &operands() { return Operands; }

  const ControlCode &ctrl() const { return Ctrl; }
  ControlCode &ctrl() { return Ctrl; }
  /// @}

  /// \name Guard predicate (@P0 / @!P0 prefix)
  /// @{
  bool hasGuard() const { return Guarded; }
  Register guardReg() const { return Guard; }
  bool guardNegated() const { return GuardNeg; }
  void setGuard(Register Pred, bool Negated) {
    Guarded = true;
    Guard = Pred;
    GuardNeg = Negated;
  }
  void clearGuard() { Guarded = false; }
  /// True when the guard statically never passes (@!PT) — the
  /// instruction issues but has no architectural effect (§5.7.2).
  bool isAlwaysFalseGuard() const {
    return Guarded && GuardNeg && Guard.isZero();
  }
  /// @}

  /// \name Classification helpers (delegating to OpcodeInfo)
  /// @{
  const OpcodeInfo &info() const { return getOpcodeInfo(Op); }
  bool isMemory() const { return info().Space != MemSpace::None; }
  bool isLoad() const { return info().IsLoad; }
  bool isStore() const { return info().IsStore; }
  bool isControlFlow() const { return info().IsControlFlow; }
  bool isBarrierOrSync() const { return info().IsBarrierOrSync; }
  bool isVariableLatency() const { return info().IsVariableLatency; }
  bool isFixedLatency() const {
    return !info().IsVariableLatency && !info().IsControlFlow &&
           !info().IsBarrierOrSync;
  }
  /// Eligible for the RL action space (§3.5): memory load/store.
  bool isReorderableMemory() const { return info().IsReorderable; }
  /// @}

  /// Latency-class key ("IMAD.WIDE", "IADD3", ...) or nullopt when the
  /// instruction is not fixed-latency.
  std::optional<std::string> latencyKey() const {
    return fixedLatencyKey(Op, Modifiers);
  }

  /// Number of 32-bit registers moved per data operand, derived from the
  /// ".32/.64/.128" width modifiers (defaults to 1).
  unsigned dataRegCount() const;

  /// Registers written by this instruction, `.64`/`.WIDE` pairs expanded.
  /// Includes carry-out and compare-result predicates. Zero registers
  /// (RZ/PT) are omitted.
  std::vector<Register> regDefs() const;

  /// Registers read by this instruction: sources, address bases (with
  /// Eq. 2 expansion), memory descriptors, store data, carry-in and the
  /// guard predicate. Zero registers are omitted.
  std::vector<Register> regUses() const;

  /// The memory-address operand, if any (first Mem-kind operand).
  const Operand *memOperand() const;

  /// Renders "@!P0 LDG.E.128 R4, [R2.64] ;" (no control code; see
  /// Printer for full lines).
  std::string str() const;

private:
  ControlCode Ctrl;
  bool Guarded = false;
  bool GuardNeg = false;
  Register Guard = Register::pt();
  Opcode Op = Opcode::NOP;
  std::vector<std::string> Modifiers;
  std::vector<Operand> Operands;
};

} // namespace sass
} // namespace cuasmrl

#endif // CUASMRL_SASS_INSTRUCTION_H

//===- sass/Operand.h - SASS operand model ---------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operands as they appear in disassembled Ampere SASS:
///
///   R12  -R4  |R7|  R8.reuse  R2.64  UR4  P3  !P0  PT
///   0x1  12  1.5
///   c[0x0][0x160]
///   [R2.64]  [R219+0x4000]  desc[UR16][R10.64]  [R4.64+0x20]
///   SR_CLOCKLO  SR_CTAID.X  SR_TID.X
///   `(.L_12)   (label reference)
///
/// The `.64` suffix marks a 64-bit access through an aligned register
/// pair; `expandRegisters()` applies the paper's Eq. 2 to materialize the
/// adjacent register so dependence analysis sees both halves (§3.2).
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_SASS_OPERAND_H
#define CUASMRL_SASS_OPERAND_H

#include "sass/Register.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cuasmrl {
namespace sass {

/// One instruction operand.
class Operand {
public:
  enum class Kind : uint8_t {
    Reg,      ///< Register (any class), possibly modified.
    Imm,      ///< Integer immediate.
    FloatImm, ///< Floating-point immediate.
    ConstMem, ///< Constant-bank access c[bank][offset].
    Mem,      ///< Memory address [Rbase(.64)(+offset)] with optional desc.
    Special,  ///< Special register (SR_CLOCKLO, SR_CTAID.X, ...).
    Label,    ///< Branch target label.
  };

  Operand() = default;

  /// \name Factories
  /// @{
  static Operand reg(Register R) {
    Operand Op;
    Op.TheKind = Kind::Reg;
    Op.Base = R;
    return Op;
  }
  static Operand imm(int64_t Value) {
    Operand Op;
    Op.TheKind = Kind::Imm;
    Op.ImmValue = Value;
    return Op;
  }
  static Operand floatImm(double Value) {
    Operand Op;
    Op.TheKind = Kind::FloatImm;
    Op.FloatValue = Value;
    return Op;
  }
  static Operand constMem(unsigned Bank, int64_t Offset) {
    Operand Op;
    Op.TheKind = Kind::ConstMem;
    Op.Bank = Bank;
    Op.ImmValue = Offset;
    return Op;
  }
  static Operand mem(Register Base, int64_t Offset = 0, bool Wide64 = false) {
    Operand Op;
    Op.TheKind = Kind::Mem;
    Op.Base = Base;
    Op.ImmValue = Offset;
    Op.Wide = Wide64;
    return Op;
  }
  static Operand special(std::string Name) {
    Operand Op;
    Op.TheKind = Kind::Special;
    Op.Name = std::move(Name);
    return Op;
  }
  static Operand label(std::string Name) {
    Operand Op;
    Op.TheKind = Kind::Label;
    Op.Name = std::move(Name);
    return Op;
  }
  /// @}

  Kind kind() const { return TheKind; }
  bool isReg() const { return TheKind == Kind::Reg; }
  bool isImm() const { return TheKind == Kind::Imm; }
  bool isFloatImm() const { return TheKind == Kind::FloatImm; }
  bool isConstMem() const { return TheKind == Kind::ConstMem; }
  bool isMem() const { return TheKind == Kind::Mem; }
  bool isSpecial() const { return TheKind == Kind::Special; }
  bool isLabel() const { return TheKind == Kind::Label; }

  /// Register payload for Reg operands, base register for Mem operands.
  Register baseReg() const { return Base; }
  void setBaseReg(Register R) { Base = R; }

  int64_t immValue() const { return ImmValue; }
  double floatValue() const { return FloatValue; }
  unsigned constBank() const { return Bank; }
  int64_t constOffset() const { return ImmValue; }
  int64_t memOffset() const { return ImmValue; }
  const std::string &name() const { return Name; }

  /// \name Modifiers
  /// @{
  bool isWide() const { return Wide; }
  Operand &setWide(bool Value = true) {
    Wide = Value;
    return *this;
  }
  bool hasReuse() const { return Reuse; }
  Operand &setReuse(bool Value = true) {
    Reuse = Value;
    return *this;
  }
  bool isNegated() const { return Negated; }
  Operand &setNegated(bool Value = true) {
    Negated = Value;
    return *this;
  }
  bool isNot() const { return Not; }
  Operand &setNot(bool Value = true) {
    Not = Value;
    return *this;
  }
  bool isAbs() const { return Abs; }
  Operand &setAbs(bool Value = true) {
    Abs = Value;
    return *this;
  }
  /// @}

  /// \name Memory descriptor (desc[URx][Ry.64] form)
  /// @{
  bool hasDesc() const { return HasDesc; }
  Register descReg() const { return Desc; }
  Operand &setDesc(Register UR) {
    HasDesc = true;
    Desc = UR;
    return *this;
  }
  /// @}

  /// The registers this operand names, with `.64` pairs expanded through
  /// the paper's adjacent-register rule (Eq. 2). Includes the descriptor
  /// uniform register of Mem operands. Zero registers are omitted —
  /// they carry no dependencies.
  std::vector<Register> expandRegisters() const;

  /// Renders the SASS spelling.
  std::string str() const;

  bool operator==(const Operand &Other) const;

private:
  Kind TheKind = Kind::Imm;
  Register Base;
  Register Desc;
  bool HasDesc = false;
  bool Wide = false;
  bool Reuse = false;
  bool Negated = false;
  bool Not = false;
  bool Abs = false;
  unsigned Bank = 0;
  int64_t ImmValue = 0;
  double FloatValue = 0.0;
  std::string Name;
};

} // namespace sass
} // namespace cuasmrl

#endif // CUASMRL_SASS_OPERAND_H

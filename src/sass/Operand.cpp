//===- sass/Operand.cpp ----------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "sass/Operand.h"

#include "support/StringUtils.h"

#include <cstdio>

using namespace cuasmrl;
using namespace cuasmrl::sass;

std::vector<Register> Operand::expandRegisters() const {
  std::vector<Register> Regs;
  switch (TheKind) {
  case Kind::Reg:
  case Kind::Mem:
    if (!Base.isZero()) {
      Regs.push_back(Base);
      if (Wide)
        Regs.push_back(Base.adjacent());
    }
    if (TheKind == Kind::Mem && HasDesc && !Desc.isZero())
      Regs.push_back(Desc);
    break;
  case Kind::Imm:
  case Kind::FloatImm:
  case Kind::ConstMem:
  case Kind::Special:
  case Kind::Label:
    break;
  }
  return Regs;
}

static std::string hexString(int64_t Value) {
  char Buffer[32];
  if (Value < 0)
    std::snprintf(Buffer, sizeof(Buffer), "-0x%llx",
                  static_cast<unsigned long long>(-Value));
  else
    std::snprintf(Buffer, sizeof(Buffer), "0x%llx",
                  static_cast<unsigned long long>(Value));
  return Buffer;
}

std::string Operand::str() const {
  std::string Out;
  switch (TheKind) {
  case Kind::Reg:
    if (Not)
      Out += '!';
    if (Negated)
      Out += '-';
    if (Abs)
      Out += '|';
    Out += Base.str();
    if (Abs)
      Out += '|';
    if (Wide)
      Out += ".64";
    if (Reuse)
      Out += ".reuse";
    return Out;
  case Kind::Imm:
    return hexString(ImmValue);
  case Kind::FloatImm: {
    char Buffer[48];
    std::snprintf(Buffer, sizeof(Buffer), "%g", FloatValue);
    return Buffer;
  }
  case Kind::ConstMem:
    if (Negated)
      Out += '-';
    Out += "c[" + hexString(Bank) + "][" + hexString(ImmValue) + "]";
    return Out;
  case Kind::Mem:
    if (HasDesc)
      Out += "desc[" + Desc.str() + "]";
    Out += '[';
    Out += Base.str();
    if (Wide)
      Out += ".64";
    if (ImmValue != 0)
      Out += "+" + hexString(ImmValue);
    Out += ']';
    return Out;
  case Kind::Special:
    return Name;
  case Kind::Label:
    return "`(" + Name + ")";
  }
  return "<invalid-operand>";
}

bool Operand::operator==(const Operand &Other) const {
  if (TheKind != Other.TheKind)
    return false;
  switch (TheKind) {
  case Kind::Reg:
    return Base == Other.Base && Wide == Other.Wide &&
           Reuse == Other.Reuse && Negated == Other.Negated &&
           Not == Other.Not && Abs == Other.Abs;
  case Kind::Imm:
    return ImmValue == Other.ImmValue;
  case Kind::FloatImm:
    return FloatValue == Other.FloatValue;
  case Kind::ConstMem:
    return Bank == Other.Bank && ImmValue == Other.ImmValue &&
           Negated == Other.Negated;
  case Kind::Mem:
    return Base == Other.Base && Wide == Other.Wide &&
           ImmValue == Other.ImmValue && HasDesc == Other.HasDesc &&
           (!HasDesc || Desc == Other.Desc);
  case Kind::Special:
  case Kind::Label:
    return Name == Other.Name;
  }
  return false;
}

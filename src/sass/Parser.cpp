//===- sass/Parser.cpp -------------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "sass/Parser.h"

#include "support/StringUtils.h"

#include <cctype>

using namespace cuasmrl;
using namespace cuasmrl::sass;

Expected<Register> Parser::parseRegister(std::string_view Text) {
  Text = trim(Text);
  if (Text.empty())
    return Error("empty register token");

  auto ParseIndexed = [&](std::string_view Body, RegClass Class,
                          unsigned ZeroIndex,
                          char ZeroChar) -> Expected<Register> {
    if (Body.size() == 1 && Body[0] == ZeroChar)
      return Register(Class, ZeroIndex);
    std::optional<int64_t> Index = parseInt(Body);
    if (!Index || *Index < 0 || *Index >= static_cast<int64_t>(ZeroIndex))
      return Error("register index out of range in '" + std::string(Text) +
                   "'");
    return Register(Class, static_cast<unsigned>(*Index));
  };

  if (startsWith(Text, "UR"))
    return ParseIndexed(Text.substr(2), RegClass::Uniform, Register::URZIndex,
                        'Z');
  if (startsWith(Text, "UP"))
    return ParseIndexed(Text.substr(2), RegClass::UniformPredicate,
                        Register::PTIndex, 'T');
  if (Text[0] == 'R')
    return ParseIndexed(Text.substr(1), RegClass::General, Register::RZIndex,
                        'Z');
  if (Text[0] == 'P')
    return ParseIndexed(Text.substr(1), RegClass::Predicate,
                        Register::PTIndex, 'T');
  return Error("unrecognized register '" + std::string(Text) + "'");
}

/// Parses "Rxx[.64][.reuse]" with optional leading '!', '-', '|...|'.
static Expected<Operand> parseRegOperand(std::string_view Text) {
  Operand Op;
  bool Not = false, Neg = false, Abs = false;
  while (!Text.empty()) {
    if (Text[0] == '!') {
      Not = true;
      Text.remove_prefix(1);
    } else if (Text[0] == '-') {
      Neg = true;
      Text.remove_prefix(1);
    } else if (Text[0] == '|') {
      if (Text.back() != '|')
        return Error("unterminated '|' absolute-value modifier");
      Abs = true;
      Text = Text.substr(1, Text.size() - 2);
    } else {
      break;
    }
  }

  bool Wide = false, Reuse = false;
  std::vector<std::string> Parts = split(Text, '.');
  if (Parts.empty() || Parts[0].empty())
    return Error("empty register operand");
  for (size_t I = 1; I < Parts.size(); ++I) {
    if (Parts[I] == "64")
      Wide = true;
    else if (Parts[I] == "reuse")
      Reuse = true;
    else
      return Error("unknown register suffix '." + Parts[I] + "'");
  }

  Expected<Register> R = Parser::parseRegister(Parts[0]);
  if (!R)
    return R.takeError();
  Op = Operand::reg(*R);
  Op.setWide(Wide).setReuse(Reuse).setNegated(Neg).setNot(Not).setAbs(Abs);
  return Op;
}

/// Parses the "[Rbase(.64)(+0x...)]" body between brackets, plus an
/// optional descriptor already handled by the caller.
static Expected<Operand> parseMemBody(std::string_view Body,
                                      std::optional<Register> Desc) {
  Body = trim(Body);
  // Split on '+' (offset) — a leading '-offset' is also accepted.
  int64_t Offset = 0;
  size_t Plus = Body.find('+');
  if (Plus != std::string_view::npos) {
    std::optional<int64_t> Parsed = parseInt(Body.substr(Plus + 1));
    if (!Parsed)
      return Error("bad memory offset in '[" + std::string(Body) + "]'");
    Offset = *Parsed;
    Body = trim(Body.substr(0, Plus));
  }

  bool Wide = false;
  std::vector<std::string> Parts = split(Body, '.');
  for (size_t I = 1; I < Parts.size(); ++I) {
    if (Parts[I] == "64")
      Wide = true;
    else
      return Error("unknown address suffix '." + Parts[I] + "'");
  }

  Expected<Register> Base = Parser::parseRegister(Parts.empty() ? "" : Parts[0]);
  if (!Base)
    return Base.takeError();
  Operand Op = Operand::mem(*Base, Offset, Wide);
  if (Desc)
    Op.setDesc(*Desc);
  return Op;
}

Expected<Operand> Parser::parseOperand(std::string_view Text) {
  Text = trim(Text);
  if (Text.empty())
    return Error("empty operand");

  // Label reference: `(.L_x) or a bare .L_x token.
  if (Text[0] == '`') {
    if (Text.size() < 4 || Text[1] != '(' || Text.back() != ')')
      return Error("malformed label reference '" + std::string(Text) + "'");
    return Operand::label(std::string(Text.substr(2, Text.size() - 3)));
  }
  if (Text[0] == '.')
    return Operand::label(std::string(Text));

  // Special registers.
  if (startsWith(Text, "SR_"))
    return Operand::special(std::string(Text));

  // Descriptor-based global address: desc[URx][Ry.64+off].
  if (startsWith(Text, "desc[")) {
    size_t Close = Text.find(']');
    if (Close == std::string_view::npos)
      return Error("unterminated descriptor");
    Expected<Register> Desc = parseRegister(Text.substr(5, Close - 5));
    if (!Desc)
      return Desc.takeError();
    std::string_view Rest = trim(Text.substr(Close + 1));
    if (Rest.size() < 2 || Rest.front() != '[' || Rest.back() != ']')
      return Error("descriptor must be followed by a bracketed address");
    return parseMemBody(Rest.substr(1, Rest.size() - 2), *Desc);
  }

  // Constant memory: c[bank][offset], optionally negated.
  bool Neg = false;
  std::string_view CmText = Text;
  if (CmText[0] == '-' && CmText.size() > 1 && CmText[1] == 'c') {
    Neg = true;
    CmText.remove_prefix(1);
  }
  if (startsWith(CmText, "c[")) {
    size_t Close = CmText.find(']');
    if (Close == std::string_view::npos)
      return Error("unterminated constant bank");
    std::optional<int64_t> Bank = parseInt(CmText.substr(2, Close - 2));
    std::string_view Rest = trim(CmText.substr(Close + 1));
    if (!Bank || Rest.size() < 2 || Rest.front() != '[' ||
        Rest.back() != ']')
      return Error("malformed constant operand '" + std::string(Text) + "'");
    std::optional<int64_t> Offset =
        parseInt(Rest.substr(1, Rest.size() - 2));
    if (!Offset)
      return Error("bad constant offset in '" + std::string(Text) + "'");
    Operand Op = Operand::constMem(static_cast<unsigned>(*Bank), *Offset);
    Op.setNegated(Neg);
    return Op;
  }

  // Plain memory address.
  if (Text[0] == '[') {
    if (Text.back() != ']')
      return Error("unterminated memory operand");
    return parseMemBody(Text.substr(1, Text.size() - 2), std::nullopt);
  }

  // Register (with optional modifiers).
  std::string_view RegProbe = Text;
  while (!RegProbe.empty() &&
         (RegProbe[0] == '!' || RegProbe[0] == '-' || RegProbe[0] == '|'))
    RegProbe.remove_prefix(1);
  if (!RegProbe.empty() &&
      (RegProbe[0] == 'R' || RegProbe[0] == 'P' || startsWith(RegProbe, "UR") ||
       startsWith(RegProbe, "UP"))) {
    // Distinguish "R12" from symbols: next char must be digit, 'Z', 'T',
    // or the class prefix continues.
    return parseRegOperand(Text);
  }

  // Immediates: hex/decimal integers, else floats.
  if (std::optional<int64_t> IntVal = parseInt(Text))
    return Operand::imm(*IntVal);
  if (std::optional<double> FloatVal = parseDouble(Text))
    return Operand::floatImm(*FloatVal);

  return Error("unrecognized operand '" + std::string(Text) + "'");
}

Expected<Instruction> Parser::parseInstruction(std::string_view Line) {
  Line = trim(Line);

  Instruction Instr;

  // Optional control code.
  if (!Line.empty() && Line[0] == '[') {
    size_t Close = Line.find(']');
    if (Close == std::string_view::npos)
      return Error("unterminated control code");
    Expected<ControlCode> CC = ControlCode::parse(Line.substr(0, Close + 1));
    if (!CC)
      return CC.takeError();
    Instr.ctrl() = *CC;
    Line = trim(Line.substr(Close + 1));
  }

  // Optional guard predicate.
  if (!Line.empty() && Line[0] == '@') {
    size_t End = 1;
    while (End < Line.size() &&
           !std::isspace(static_cast<unsigned char>(Line[End])))
      ++End;
    std::string_view Guard = Line.substr(1, End - 1);
    bool Neg = false;
    if (!Guard.empty() && Guard[0] == '!') {
      Neg = true;
      Guard.remove_prefix(1);
    }
    Expected<Register> Pred = parseRegister(Guard);
    if (!Pred)
      return Pred.takeError();
    if (!Pred->isPredicate())
      return Error("guard must be a predicate register");
    Instr.setGuard(*Pred, Neg);
    Line = trim(Line.substr(End));
  }

  // Trailing ';'.
  if (!Line.empty() && Line.back() == ';')
    Line = trim(Line.substr(0, Line.size() - 1));
  if (Line.empty())
    return Error("missing opcode");

  // Mnemonic token.
  size_t End = 0;
  while (End < Line.size() &&
         !std::isspace(static_cast<unsigned char>(Line[End])))
    ++End;
  std::string_view Mnemonic = Line.substr(0, End);
  std::vector<std::string> Parts = split(Mnemonic, '.');
  std::optional<Opcode> Op = parseOpcode(Parts[0]);
  if (!Op)
    return Error("unknown opcode '" + Parts[0] + "'");
  Instr.setOpcode(*Op);
  for (size_t I = 1; I < Parts.size(); ++I)
    Instr.modifiers().push_back(Parts[I]);

  // Operand list.
  std::string_view Rest = trim(Line.substr(End));
  if (!Rest.empty()) {
    for (const std::string &Token : split(Rest, ',')) {
      Expected<Operand> Parsed = parseOperand(Token);
      if (!Parsed)
        return Parsed.takeError();
      Instr.operands().push_back(Parsed.takeValue());
    }
  }
  return Instr;
}

Expected<Program> Parser::parseProgram(std::string_view Text,
                                       std::string Name) {
  Program Prog(std::move(Name));
  unsigned LineNo = 0;
  for (const std::string &RawLine : split(Text, '\n')) {
    ++LineNo;
    std::string_view Line = RawLine;
    // Strip comments.
    size_t Comment = Line.find("//");
    if (Comment != std::string_view::npos)
      Line = Line.substr(0, Comment);
    Line = trim(Line);
    if (Line.empty())
      continue;

    // Label lines end with ':' and contain no spaces or brackets.
    if (Line.back() == ':' && Line.find(' ') == std::string_view::npos &&
        Line[0] != '[') {
      Prog.appendLabel(std::string(Line.substr(0, Line.size() - 1)));
      continue;
    }

    Expected<Instruction> Instr = parseInstruction(Line);
    if (!Instr)
      return Error(Instr.error().message() + " (while parsing line " +
                   std::to_string(LineNo) + ": '" + std::string(Line) + "')");
    Prog.appendInstr(Instr.takeValue());
  }
  return Prog;
}

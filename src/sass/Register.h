//===- sass/Register.h - SASS register model ------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registers as they appear in Ampere SASS text: 32-bit general purpose
/// registers (`R0`..`R254`, `RZ`), uniform registers (`UR0`..`UR62`,
/// `URZ`), predicates (`P0`..`P6`, `PT`) and uniform predicates. The
/// `.64` suffix handling (adjacent-register expansion, paper Eq. 2) lives
/// on `Operand`; this header only names architectural registers.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_SASS_REGISTER_H
#define CUASMRL_SASS_REGISTER_H

#include <cstdint>
#include <string>

namespace cuasmrl {
namespace sass {

/// Architectural register files visible in SASS text.
enum class RegClass : uint8_t {
  General,          ///< R0..R254, RZ (index 255).
  Uniform,          ///< UR0..UR62, URZ (index 63).
  Predicate,        ///< P0..P6, PT (index 7).
  UniformPredicate, ///< UP0..UP6, UPT (index 7).
};

/// A single architectural register reference.
class Register {
public:
  /// Index of the general-purpose zero register RZ.
  static constexpr unsigned RZIndex = 255;
  /// Index of the uniform zero register URZ.
  static constexpr unsigned URZIndex = 63;
  /// Index of the true predicate PT (and UPT).
  static constexpr unsigned PTIndex = 7;

  Register() = default;
  Register(RegClass Class, unsigned Index) : Class(Class), Index(Index) {}

  static Register general(unsigned Index) {
    return Register(RegClass::General, Index);
  }
  static Register uniform(unsigned Index) {
    return Register(RegClass::Uniform, Index);
  }
  static Register predicate(unsigned Index) {
    return Register(RegClass::Predicate, Index);
  }
  static Register rz() { return general(RZIndex); }
  static Register urz() { return uniform(URZIndex); }
  static Register pt() { return predicate(PTIndex); }

  RegClass regClass() const { return Class; }
  unsigned index() const { return Index; }

  /// True for RZ / URZ / PT / UPT — reads as zero (or true) and writes
  /// are discarded, so these never create data dependencies.
  bool isZero() const {
    switch (Class) {
    case RegClass::General:
      return Index == RZIndex;
    case RegClass::Uniform:
      return Index == URZIndex;
    case RegClass::Predicate:
    case RegClass::UniformPredicate:
      return Index == PTIndex;
    }
    return false;
  }

  bool isGeneral() const { return Class == RegClass::General; }
  bool isUniform() const { return Class == RegClass::Uniform; }
  bool isPredicate() const {
    return Class == RegClass::Predicate ||
           Class == RegClass::UniformPredicate;
  }

  /// The adjacent register participating in a `.64` access, computed with
  /// the arithmetic the paper gives in Eq. 2:
  ///   base = r / 2;  mod = r % 2;  flip = 1 - mod;  adj = base * 2 + flip
  /// (equivalently r xor 1, verified by a unit test).
  Register adjacent() const {
    unsigned Base = Index / 2;
    unsigned Mod = Index % 2;
    unsigned Flip = 1 - Mod;
    return Register(Class, Base * 2 + Flip);
  }

  /// Renders the SASS spelling, e.g. "R12", "RZ", "UR4", "PT", "!"-less.
  std::string str() const;

  bool operator==(const Register &Other) const {
    return Class == Other.Class && Index == Other.Index;
  }
  bool operator!=(const Register &Other) const { return !(*this == Other); }
  bool operator<(const Register &Other) const {
    if (Class != Other.Class)
      return Class < Other.Class;
    return Index < Other.Index;
  }

private:
  RegClass Class = RegClass::General;
  unsigned Index = 0;
};

} // namespace sass
} // namespace cuasmrl

#endif // CUASMRL_SASS_REGISTER_H

//===- sass/Program.h - SASS kernel text model ------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flat statement list of one kernel's SASS section: labels
/// interleaved with instructions, exactly the shape the assembly game
/// mutates. Positions are statement indices; `swap()` exchanges two
/// adjacent instruction statements (the only mutation the RL action
/// space performs, §3.5).
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_SASS_PROGRAM_H
#define CUASMRL_SASS_PROGRAM_H

#include "sass/Instruction.h"

#include <cassert>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace cuasmrl {
namespace sass {

/// One line of a kernel section: either a label or an instruction.
class Statement {
public:
  static Statement makeLabel(std::string Name) {
    Statement S;
    S.IsLabelStmt = true;
    S.LabelName = std::move(Name);
    return S;
  }
  static Statement makeInstr(Instruction I) {
    Statement S;
    S.Instr = std::move(I);
    return S;
  }

  bool isLabel() const { return IsLabelStmt; }
  bool isInstr() const { return !IsLabelStmt; }

  const std::string &label() const {
    assert(IsLabelStmt && "not a label");
    return LabelName;
  }

  /// Two independent 64-bit hashes of this statement's canonical line
  /// (control code + instruction text, or the label). A pure function
  /// of the statement's *content* — never of its position — which is
  /// what lets schedule hashing maintain a program-wide key in O(1)
  /// per swap: reordering statements only re-mixes the cached line
  /// hashes with new position terms.
  std::pair<uint64_t, uint64_t> contentHashes() const;
  const Instruction &instr() const {
    assert(!IsLabelStmt && "not an instruction");
    return Instr;
  }
  Instruction &instr() {
    assert(!IsLabelStmt && "not an instruction");
    return Instr;
  }

private:
  bool IsLabelStmt = false;
  std::string LabelName;
  Instruction Instr;
};

/// A kernel's SASS section.
class Program {
public:
  Program() = default;
  explicit Program(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  /// \name Statement access
  /// @{
  size_t size() const { return Statements.size(); }
  bool empty() const { return Statements.empty(); }
  const Statement &stmt(size_t Index) const { return Statements[Index]; }
  Statement &stmt(size_t Index) { return Statements[Index]; }
  const std::vector<Statement> &statements() const { return Statements; }

  void append(Statement S) { Statements.push_back(std::move(S)); }
  void appendInstr(Instruction I) {
    Statements.push_back(Statement::makeInstr(std::move(I)));
  }
  void appendLabel(std::string L) {
    Statements.push_back(Statement::makeLabel(std::move(L)));
  }
  /// @}

  /// Number of instruction statements.
  size_t instrCount() const;

  /// Statement indices of every instruction satisfying \p Pred.
  template <typename PredT>
  std::vector<size_t> findInstrs(PredT Pred) const {
    std::vector<size_t> Out;
    for (size_t I = 0; I < Statements.size(); ++I)
      if (Statements[I].isInstr() && Pred(Statements[I].instr()))
        Out.push_back(I);
    return Out;
  }

  /// Statement index of the label \p Name, or npos.
  static constexpr size_t npos = static_cast<size_t>(-1);
  size_t findLabel(std::string_view Name) const;

  /// Swaps two statements; both must be instructions (labels are fixed
  /// anchors the game never moves).
  void swap(size_t A, size_t B) {
    assert(A < Statements.size() && B < Statements.size());
    assert(Statements[A].isInstr() && Statements[B].isInstr() &&
           "only instructions may be reordered");
    std::swap(Statements[A], Statements[B]);
  }

  /// Renders the whole section in CuAssembler-like text.
  std::string str() const;
  void print(std::ostream &OS) const;

private:
  std::string Name;
  std::vector<Statement> Statements;
};

} // namespace sass
} // namespace cuasmrl

#endif // CUASMRL_SASS_PROGRAM_H

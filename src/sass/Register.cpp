//===- sass/Register.cpp ---------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "sass/Register.h"

using namespace cuasmrl;
using namespace cuasmrl::sass;

std::string Register::str() const {
  switch (Class) {
  case RegClass::General:
    if (Index == RZIndex)
      return "RZ";
    return "R" + std::to_string(Index);
  case RegClass::Uniform:
    if (Index == URZIndex)
      return "URZ";
    return "UR" + std::to_string(Index);
  case RegClass::Predicate:
    if (Index == PTIndex)
      return "PT";
    return "P" + std::to_string(Index);
  case RegClass::UniformPredicate:
    if (Index == PTIndex)
      return "UPT";
    return "UP" + std::to_string(Index);
  }
  return "<invalid-register>";
}

//===- sass/Opcode.cpp -----------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "sass/Opcode.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

using namespace cuasmrl;
using namespace cuasmrl::sass;

// Columns: Op, Name, Space, IsLoad, IsStore, VarLat, CtrlFlow, Sync,
//          WritesReg, Reorderable.
//
// Reorderability follows §3.5: the agent may pick memory load/store
// instructions (LDG, LDGSTS, STG and their shared-memory siblings);
// everything else is repositioned only implicitly, as the other half of a
// swap.
static const OpcodeInfo OpcodeTable[] = {
    {Opcode::LDG, "LDG", MemSpace::Global, true, false, true, false, false,
     true, true},
    {Opcode::STG, "STG", MemSpace::Global, false, true, true, false, false,
     false, true},
    {Opcode::LDS, "LDS", MemSpace::Shared, true, false, true, false, false,
     true, true},
    {Opcode::STS, "STS", MemSpace::Shared, false, true, true, false, false,
     false, true},
    {Opcode::LDSM, "LDSM", MemSpace::Shared, true, false, true, false, false,
     true, true},
    {Opcode::LDGSTS, "LDGSTS", MemSpace::GlobalToShared, true, true, true,
     false, false, false, true},
    {Opcode::LDC, "LDC", MemSpace::Constant, true, false, true, false, false,
     true, false},
    {Opcode::ATOM, "ATOM", MemSpace::Global, true, true, true, false, false,
     true, false},
    {Opcode::RED, "RED", MemSpace::Global, false, true, true, false, false,
     false, false},

    {Opcode::IADD3, "IADD3", MemSpace::None, false, false, false, false,
     false, true, false},
    {Opcode::IMAD, "IMAD", MemSpace::None, false, false, false, false, false,
     true, false},
    {Opcode::LEA, "LEA", MemSpace::None, false, false, false, false, false,
     true, false},
    {Opcode::LOP3, "LOP3", MemSpace::None, false, false, false, false, false,
     true, false},
    {Opcode::SHF, "SHF", MemSpace::None, false, false, false, false, false,
     true, false},
    {Opcode::IABS, "IABS", MemSpace::None, false, false, false, false, false,
     true, false},
    {Opcode::IMNMX, "IMNMX", MemSpace::None, false, false, false, false,
     false, true, false},
    {Opcode::SEL, "SEL", MemSpace::None, false, false, false, false, false,
     true, false},
    {Opcode::ISETP, "ISETP", MemSpace::None, false, false, false, false,
     false, true, false},
    {Opcode::POPC, "POPC", MemSpace::None, false, false, false, false, false,
     true, false},

    {Opcode::FADD, "FADD", MemSpace::None, false, false, false, false, false,
     true, false},
    {Opcode::FMUL, "FMUL", MemSpace::None, false, false, false, false, false,
     true, false},
    {Opcode::FFMA, "FFMA", MemSpace::None, false, false, false, false, false,
     true, false},
    {Opcode::FSETP, "FSETP", MemSpace::None, false, false, false, false,
     false, true, false},
    {Opcode::FSEL, "FSEL", MemSpace::None, false, false, false, false, false,
     true, false},
    {Opcode::FMNMX, "FMNMX", MemSpace::None, false, false, false, false,
     false, true, false},
    {Opcode::MUFU, "MUFU", MemSpace::None, false, false, true, false, false,
     true, false},

    {Opcode::HADD2, "HADD2", MemSpace::None, false, false, false, false,
     false, true, false},
    {Opcode::HMUL2, "HMUL2", MemSpace::None, false, false, false, false,
     false, true, false},
    {Opcode::HFMA2, "HFMA2", MemSpace::None, false, false, false, false,
     false, true, false},
    {Opcode::HMMA, "HMMA", MemSpace::None, false, false, false, false, false,
     true, false},
    {Opcode::IMMA, "IMMA", MemSpace::None, false, false, false, false, false,
     true, false},

    {Opcode::I2F, "I2F", MemSpace::None, false, false, true, false, false,
     true, false},
    {Opcode::F2I, "F2I", MemSpace::None, false, false, true, false, false,
     true, false},
    {Opcode::F2F, "F2F", MemSpace::None, false, false, true, false, false,
     true, false},

    {Opcode::MOV, "MOV", MemSpace::None, false, false, false, false, false,
     true, false},
    {Opcode::MOV32I, "MOV32I", MemSpace::None, false, false, false, false,
     false, true, false},
    {Opcode::PRMT, "PRMT", MemSpace::None, false, false, false, false, false,
     true, false},
    {Opcode::PLOP3, "PLOP3", MemSpace::None, false, false, false, false,
     false, true, false},
    {Opcode::SHFL, "SHFL", MemSpace::None, false, false, true, false, false,
     true, false},
    {Opcode::CS2R, "CS2R", MemSpace::None, false, false, false, false, false,
     true, false},
    {Opcode::S2R, "S2R", MemSpace::None, false, false, true, false, false,
     true, false},
    {Opcode::VOTE, "VOTE", MemSpace::None, false, false, false, false, false,
     true, false},
    {Opcode::NOP, "NOP", MemSpace::None, false, false, false, false, false,
     false, false},

    {Opcode::BRA, "BRA", MemSpace::None, false, false, false, true, false,
     false, false},
    {Opcode::EXIT, "EXIT", MemSpace::None, false, false, false, true, false,
     false, false},
    {Opcode::CALL, "CALL", MemSpace::None, false, false, false, true, false,
     false, false},
    {Opcode::RET, "RET", MemSpace::None, false, false, false, true, false,
     false, false},

    {Opcode::BAR, "BAR", MemSpace::None, false, false, true, false, true,
     false, false},
    {Opcode::DEPBAR, "DEPBAR", MemSpace::None, false, false, true, false,
     true, false, false},
    {Opcode::LDGDEPBAR, "LDGDEPBAR", MemSpace::None, false, false, false,
     false, true, false, false},
    {Opcode::BSSY, "BSSY", MemSpace::None, false, false, false, false, true,
     false, false},
    {Opcode::BSYNC, "BSYNC", MemSpace::None, false, false, true, false, true,
     false, false},
    {Opcode::WARPSYNC, "WARPSYNC", MemSpace::None, false, false, true, false,
     true, false, false},
    {Opcode::MEMBAR, "MEMBAR", MemSpace::None, false, false, true, false,
     true, false, false},
    {Opcode::ERRBAR, "ERRBAR", MemSpace::None, false, false, false, false,
     true, false, false},
    {Opcode::YIELD, "YIELD", MemSpace::None, false, false, false, false,
     true, false, false},
};

// The table must stay in enumerator order for the direct-index lookup
// below; verified once at startup so a divergence aborts loudly even in
// Release builds instead of silently mislabeling opcodes.
static const bool OpcodeTableOrdered = [] {
  for (size_t I = 0; I < std::size(OpcodeTable); ++I) {
    if (OpcodeTable[I].Op != static_cast<Opcode>(I)) {
      fprintf(stderr, "OpcodeTable out of enum order at index %zu (%s)\n", I,
              OpcodeTable[I].Name);
      abort();
    }
  }
  return true;
}();

const OpcodeInfo &sass::getOpcodeInfo(Opcode Op) {
  // Property lookup is a direct index — this sits on the simulator's
  // per-issue path.
  (void)OpcodeTableOrdered;
  size_t Index = static_cast<size_t>(Op);
  assert(Index < std::size(OpcodeTable) &&
         "opcode outside the property table");
  return OpcodeTable[Index];
}

std::optional<Opcode> sass::parseOpcode(std::string_view Mnemonic) {
  static const std::unordered_map<std::string_view, Opcode> ByName = [] {
    std::unordered_map<std::string_view, Opcode> Map;
    for (const OpcodeInfo &Info : OpcodeTable)
      Map.emplace(Info.Name, Info.Op);
    return Map;
  }();
  auto It = ByName.find(Mnemonic);
  if (It == ByName.end())
    return std::nullopt;
  return It->second;
}

std::optional<std::string>
sass::fixedLatencyKey(Opcode Op, const std::vector<std::string> &Modifiers) {
  const OpcodeInfo &Info = getOpcodeInfo(Op);
  if (Info.IsVariableLatency || Info.IsControlFlow || Info.IsBarrierOrSync ||
      Info.Space != MemSpace::None)
    return std::nullopt;

  auto HasMod = [&](std::string_view Mod) {
    for (const std::string &M : Modifiers)
      if (M == Mod)
        return true;
    return false;
  };

  std::string Key(Info.Name);
  switch (Op) {
  case Opcode::IMAD:
    // Latency-relevant IMAD forms the paper distinguishes (Table 1):
    // IMAD.IADD is a MOV-class add; IMAD.WIDE[.U32] produce 64-bit
    // results and take an extra cycle.
    if (HasMod("WIDE")) {
      Key += ".WIDE";
      if (HasMod("U32"))
        Key += ".U32";
    } else if (HasMod("IADD") || HasMod("MOV")) {
      Key += ".IADD";
    }
    break;
  case Opcode::IADD3:
    if (HasMod("X"))
      Key += ".X";
    break;
  default:
    break;
  }
  return Key;
}

namespace {
struct LatencyEntry {
  const char *Key;
  unsigned Cycles;
};
} // namespace

// Ground-truth fixed latencies. Rows marked (T1) are exactly the paper's
// Table 1 for the A100; the remainder are plausible Ampere values chosen
// so every fixed-latency opcode the kernel generators emit has a defined
// hazard distance.
static const LatencyEntry LatencyTable[] = {
    {"IADD3", 4},          // (T1)
    {"IADD3.X", 4},        // (T1)
    {"IMAD.IADD", 4},      // (T1)
    {"MOV", 4},            // (T1)
    {"IABS", 4},           // (T1)
    {"IMAD", 5},           // (T1)
    {"FADD", 5},           // (T1)
    {"HADD2", 5},          // (T1)
    {"IMNMX", 5},          // (T1)
    {"SEL", 5},            // (T1)
    {"LEA", 5},            // (T1)
    {"IMAD.WIDE", 5},      // (T1)
    {"IMAD.WIDE.U32", 5},  // (T1)
    {"LOP3", 4},
    {"SHF", 4},
    {"POPC", 4},
    {"ISETP", 5},
    {"FSETP", 5},
    {"FMUL", 5},
    {"FFMA", 5},
    {"FSEL", 5},
    {"FMNMX", 5},
    {"HMUL2", 5},
    {"HFMA2", 5},
    {"HMMA", 7},
    {"IMMA", 7},
    {"MOV32I", 4},
    {"PRMT", 4},
    {"PLOP3", 5},
    {"CS2R", 2},
    {"VOTE", 4},
    {"NOP", 1},
};

std::optional<unsigned> sass::groundTruthLatency(std::string_view Key) {
  for (const LatencyEntry &Entry : LatencyTable)
    if (Key == Entry.Key)
      return Entry.Cycles;
  return std::nullopt;
}

std::vector<std::string> sass::allLatencyKeys() {
  std::vector<std::string> Keys;
  Keys.reserve(std::size(LatencyTable));
  for (const LatencyEntry &Entry : LatencyTable)
    Keys.emplace_back(Entry.Key);
  return Keys;
}

//===- sass/ControlCode.cpp ------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "sass/ControlCode.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace cuasmrl;
using namespace cuasmrl::sass;

std::string ControlCode::str() const {
  std::string Out = "[B";
  for (int Slot = 0; Slot < NumBarrierSlots; ++Slot)
    Out += waitsOn(Slot) ? static_cast<char>('0' + Slot) : '-';
  Out += ":R";
  Out += hasReadBarrier() ? static_cast<char>('0' + ReadBarrier) : '-';
  Out += ":W";
  Out += hasWriteBarrier() ? static_cast<char>('0' + WriteBarrier) : '-';
  Out += ':';
  Out += Yield ? 'Y' : '-';
  Out += ":S";
  Out += static_cast<char>('0' + Stall / 10);
  Out += static_cast<char>('0' + Stall % 10);
  Out += ']';
  return Out;
}

Expected<ControlCode> ControlCode::parse(std::string_view Text) {
  Text = trim(Text);
  if (Text.size() < 2 || Text.front() != '[' || Text.back() != ']')
    return Error("control code must be enclosed in square brackets");
  Text = Text.substr(1, Text.size() - 2);

  std::vector<std::string> Fields = split(Text, ':');
  if (Fields.size() != 5)
    return Error("control code must have 5 colon-separated fields, got " +
                 std::to_string(Fields.size()));

  ControlCode CC;

  // Field 1: wait mask, "B" followed by one char per slot.
  std::string_view Wait = Fields[0];
  if (Wait.empty() || Wait[0] != 'B')
    return Error("wait-mask field must start with 'B'");
  Wait.remove_prefix(1);
  if (Wait.size() != NumBarrierSlots)
    return Error("wait-mask field must name " +
                 std::to_string(NumBarrierSlots) + " slots");
  for (int Slot = 0; Slot < NumBarrierSlots; ++Slot) {
    char C = Wait[Slot];
    if (C == '-')
      continue;
    if (C != '0' + Slot)
      return Error("wait-mask slot " + std::to_string(Slot) +
                   " must be '-' or its own digit");
    CC.setWait(Slot);
  }

  // Fields 2 and 3: read / write barrier.
  auto ParseBarrier = [](std::string_view Field, char Prefix,
                         int &Out) -> std::optional<Error> {
    if (Field.empty() || Field[0] != Prefix)
      return Error(std::string("barrier field must start with '") + Prefix +
                   "'");
    Field.remove_prefix(1);
    if (Field == "-") {
      Out = ControlCode::NoBarrier;
      return std::nullopt;
    }
    if (Field.size() != 1 || Field[0] < '0' ||
        Field[0] >= '0' + ControlCode::NumBarrierSlots)
      return Error("barrier slot out of range");
    Out = Field[0] - '0';
    return std::nullopt;
  };

  int Slot = NoBarrier;
  if (auto E = ParseBarrier(Fields[1], 'R', Slot))
    return *E;
  CC.ReadBarrier = static_cast<int8_t>(Slot);
  if (auto E = ParseBarrier(Fields[2], 'W', Slot))
    return *E;
  CC.WriteBarrier = static_cast<int8_t>(Slot);

  // Field 4: yield flag.
  if (Fields[3] == "Y")
    CC.Yield = true;
  else if (Fields[3] != "-")
    return Error("yield field must be 'Y' or '-'");

  // Field 5: stall count, "S" + two digits.
  std::string_view StallField = Fields[4];
  if (StallField.empty() || StallField[0] != 'S')
    return Error("stall field must start with 'S'");
  StallField.remove_prefix(1);
  std::optional<int64_t> Count = parseInt(StallField);
  if (!Count || *Count < 0 || *Count > MaxStall)
    return Error("stall count out of range [0, " + std::to_string(MaxStall) +
                 "]");
  CC.Stall = static_cast<uint8_t>(*Count);

  return CC;
}

uint32_t ControlCode::encode() const {
  uint32_t Bits = WaitMask;
  uint32_t Read = hasReadBarrier() ? static_cast<uint32_t>(ReadBarrier) : 7u;
  uint32_t Write =
      hasWriteBarrier() ? static_cast<uint32_t>(WriteBarrier) : 7u;
  Bits |= Read << 6;
  Bits |= Write << 9;
  Bits |= static_cast<uint32_t>(Yield) << 12;
  Bits |= static_cast<uint32_t>(Stall & 0xf) << 13;
  return Bits;
}

ControlCode ControlCode::decode(uint32_t Bits) {
  ControlCode CC;
  CC.setWaitMask(Bits & 0x3f);
  uint32_t Read = (Bits >> 6) & 0x7;
  uint32_t Write = (Bits >> 9) & 0x7;
  CC.ReadBarrier =
      Read == 7 ? NoBarrier : static_cast<int8_t>(Read);
  CC.WriteBarrier =
      Write == 7 ? NoBarrier : static_cast<int8_t>(Write);
  CC.Yield = (Bits >> 12) & 1;
  CC.Stall = static_cast<uint8_t>((Bits >> 13) & 0xf);
  return CC;
}

//===- sass/Program.cpp -----------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "sass/Program.h"

#include <ostream>
#include <sstream>

using namespace cuasmrl;
using namespace cuasmrl::sass;

std::pair<uint64_t, uint64_t> Statement::contentHashes() const {
  // FNV-1a plus an independent polynomial hash over the canonical line,
  // mirroring the two schemes the measurement cache's schedule key has
  // always combined (a shared-basis collision would defeat the check
  // hash's collision guard).
  uint64_t H1 = 0xcbf29ce484222325ull;
  uint64_t H2 = 0x2545f4914f6cdd1dull;
  auto Feed = [&H1, &H2](const std::string &Text) {
    for (unsigned char C : Text) {
      H1 = (H1 ^ C) * 0x100000001b3ull;
      H2 = H2 * 0x9e3779b97f4a7c15ull + C + 1;
    }
  };
  if (IsLabelStmt) {
    Feed(LabelName);
    Feed(":");
  } else {
    Feed(Instr.ctrl().str());
    Feed(Instr.str());
  }
  return {H1, H2};
}

size_t Program::instrCount() const {
  size_t Count = 0;
  for (const Statement &S : Statements)
    if (S.isInstr())
      ++Count;
  return Count;
}

size_t Program::findLabel(std::string_view LabelName) const {
  for (size_t I = 0; I < Statements.size(); ++I)
    if (Statements[I].isLabel() && Statements[I].label() == LabelName)
      return I;
  return npos;
}

std::string Program::str() const {
  std::ostringstream OS;
  print(OS);
  return OS.str();
}

void Program::print(std::ostream &OS) const {
  if (!Name.empty())
    OS << "// kernel: " << Name << '\n';
  for (const Statement &S : Statements) {
    if (S.isLabel()) {
      OS << S.label() << ":\n";
      continue;
    }
    const Instruction &I = S.instr();
    OS << "  " << I.ctrl().str() << ' ' << I.str() << '\n';
  }
}

//===- sass/Program.cpp -----------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "sass/Program.h"

#include <ostream>
#include <sstream>

using namespace cuasmrl;
using namespace cuasmrl::sass;

size_t Program::instrCount() const {
  size_t Count = 0;
  for (const Statement &S : Statements)
    if (S.isInstr())
      ++Count;
  return Count;
}

size_t Program::findLabel(std::string_view LabelName) const {
  for (size_t I = 0; I < Statements.size(); ++I)
    if (Statements[I].isLabel() && Statements[I].label() == LabelName)
      return I;
  return npos;
}

std::string Program::str() const {
  std::ostringstream OS;
  print(OS);
  return OS.str();
}

void Program::print(std::ostream &OS) const {
  if (!Name.empty())
    OS << "// kernel: " << Name << '\n';
  for (const Statement &S : Statements) {
    if (S.isLabel()) {
      OS << S.label() << ":\n";
      continue;
    }
    const Instruction &I = S.instr();
    OS << "  " << I.ctrl().str() << ' ' << I.str() << '\n';
  }
}

//===- sass/Parser.h - SASS text parser -------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses CuAssembler-style kernel sections back into `Program` form
/// (the disassembler's output format, paper §3.2). Grammar per line:
///
///   label:
///   [B--2---:R-:W3:-:S04] @!P0 LDG.E.128 R4, desc[UR16][R2.64+0x40] ;
///
/// Lines may carry `//` comments. The parser is strict: any token it
/// does not understand is a diagnosed error, because a silently dropped
/// operand would corrupt dependence analysis and let the game emit
/// invalid schedules.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_SASS_PARSER_H
#define CUASMRL_SASS_PARSER_H

#include "sass/Program.h"
#include "support/Error.h"

#include <string_view>

namespace cuasmrl {
namespace sass {

/// Stateless parsing entry points.
class Parser {
public:
  /// Parses a whole kernel section.
  static Expected<Program> parseProgram(std::string_view Text,
                                        std::string Name = "");

  /// Parses one instruction line (control code optional).
  static Expected<Instruction> parseInstruction(std::string_view Line);

  /// Parses a single operand token.
  static Expected<Operand> parseOperand(std::string_view Text);

  /// Parses a register spelling ("R12", "RZ", "UR4", "P0", "PT", ...)
  /// without modifiers.
  static Expected<Register> parseRegister(std::string_view Text);
};

} // namespace sass
} // namespace cuasmrl

#endif // CUASMRL_SASS_PARSER_H

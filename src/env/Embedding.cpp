//===- env/Embedding.cpp ---------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "env/Embedding.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace cuasmrl;
using namespace cuasmrl::env;

namespace {
/// Control-code scalar fields before the operand slots: 6 wait bits,
/// read barrier, write barrier, yield, stall, memory-opcode flag.
constexpr size_t FixedFeatures = 6 + 1 + 1 + 1 + 1 + 1;

/// Shape fields embedded into the context block, in the DeployIndex
/// sidecar order.
constexpr size_t NumShapeFields = 9;

/// Log-scale a shape dimension into roughly [0, 1): dimensions are
/// scale-relative (Rows 64 vs 96 matters as a ratio, not a difference),
/// and 2^32 caps every realistic extent.
float logScaled(unsigned V) {
  return static_cast<float>(std::log2(1.0 + static_cast<double>(V)) / 32.0);
}

std::vector<float> buildContextBlock(const WorkloadContext &Ctx) {
  const std::vector<kernels::WorkloadKind> Kinds = kernels::allWorkloads();
  std::vector<float> Block;
  Block.reserve(Kinds.size() + NumShapeFields + 1);
  // Kernel-kind one-hot (allWorkloads() order, which is fixed).
  for (kernels::WorkloadKind K : Kinds)
    Block.push_back(K == Ctx.Kind ? 1.0f : 0.0f);
  // Log-scaled shape dimensions (same field order as the deploy-meta
  // sidecars).
  const kernels::WorkloadShape &S = Ctx.Shape;
  for (unsigned V : {S.B, S.M, S.N, S.K, S.NHead, S.SeqLen, S.DHead,
                     S.Rows, S.Cols})
    Block.push_back(logScaled(V));
  // GpuType as one hashed scalar in [0, 1): distinct device types map
  // to distinct (with overwhelming probability) conditioning values.
  Block.push_back(static_cast<float>(
      static_cast<double>(fnv1a64(Ctx.GpuType) >> 40) /
      static_cast<double>(uint64_t(1) << 24)));
  return Block;
}

} // namespace

size_t Embedding::contextFeatures() {
  return kernels::allWorkloads().size() + NumShapeFields + 1;
}

Embedding::Embedding(const sass::Program &Initial)
    : Table(analysis::OperandTable::build(Initial)),
      Rows(Initial.instrCount()), OperandSlotCount(Table.maxOperands()),
      Features(FixedFeatures + OperandSlotCount) {}

Embedding::Embedding(const sass::Program &Initial,
                     const WorkloadContext &Ctx)
    : Table(analysis::OperandTable::build(Initial)),
      Rows(Initial.instrCount()),
      OperandSlotCount(std::max(Table.maxOperands(), Ctx.OperandSlots)),
      Features(FixedFeatures + OperandSlotCount + contextFeatures()),
      CtxBlock(buildContextBlock(Ctx)) {}

void Embedding::embedInstr(const sass::Instruction &I, float *Row) const {
  const sass::ControlCode &CC = I.ctrl();
  size_t F = 0;
  for (int Slot = 0; Slot < sass::ControlCode::NumBarrierSlots; ++Slot)
    Row[F++] = CC.waitsOn(Slot) ? 1.0f : 0.0f;
  // Read/write barriers take 0..5, or the dummy -1 when absent (§3.4).
  Row[F++] = CC.hasReadBarrier() ? static_cast<float>(CC.readBarrier())
                                 : -1.0f;
  Row[F++] = CC.hasWriteBarrier() ? static_cast<float>(CC.writeBarrier())
                                  : -1.0f;
  Row[F++] = CC.yield() ? 1.0f : 0.0f;
  Row[F++] = static_cast<float>(CC.stall()) /
             static_cast<float>(sass::ControlCode::MaxStall);
  // Opcode: memory vs non-memory (-1 for non-memory, §3.4).
  Row[F++] = I.isMemory() ? 1.0f : -1.0f;

  // Operands: memory locations become normalized memory-table indices,
  // registers normalized register-table indices; missing slots pad -1
  // (including any shared-width padding beyond this kernel's arity).
  const double NumMems = std::max<size_t>(1, Table.numMems());
  const double NumRegs = std::max<size_t>(1, Table.numRegs());
  for (size_t S = 0; S < OperandSlotCount; ++S) {
    float Value = -1.0f;
    if (S < I.operands().size()) {
      const sass::Operand &Op = I.operands()[S];
      switch (Op.kind()) {
      case sass::Operand::Kind::Mem:
      case sass::Operand::Kind::ConstMem: {
        int Idx = Table.memIndex(Op);
        if (Idx >= 0)
          Value = static_cast<float>(Idx / NumMems);
        break;
      }
      case sass::Operand::Kind::Reg: {
        int Idx = Table.regIndex(Op.baseReg());
        if (Idx >= 0)
          Value = static_cast<float>(Idx / NumRegs);
        break;
      }
      case sass::Operand::Kind::Imm:
        Value = std::clamp(
            static_cast<float>(Op.immValue()) / 1024.0f, -1.0f, 1.0f);
        break;
      case sass::Operand::Kind::FloatImm:
        Value = std::clamp(static_cast<float>(Op.floatValue()), -1.0f,
                           1.0f);
        break;
      case sass::Operand::Kind::Special:
      case sass::Operand::Kind::Label:
        break;
      }
    }
    Row[F++] = Value;
  }

  // Workload-conditioning suffix (constant across rows; empty for the
  // legacy unconditioned path).
  for (float C : CtxBlock)
    Row[F++] = C;
  assert(F == Features && "row width mismatch");
}

std::vector<float> Embedding::embed(const sass::Program &Prog) const {
  std::vector<float> Matrix;
  embedInto(Prog, Matrix);
  return Matrix;
}

void Embedding::embedInto(const sass::Program &Prog,
                          std::vector<float> &Out) const {
  Out.assign(Rows * Features, -1.0f);
  size_t Row = 0;
  for (size_t I = 0; I < Prog.size(); ++I) {
    if (!Prog.stmt(I).isInstr())
      continue;
    assert(Row < Rows && "instruction count changed mid-game");
    embedInstr(Prog.stmt(I).instr(), Out.data() + Row * Features);
    ++Row;
  }
}

void Embedding::swapAdjacentRows(std::vector<float> &Matrix,
                                 size_t Row) const {
  assert((Row + 2) * Features <= Matrix.size() && "row swap out of range");
  std::swap_ranges(Matrix.begin() + Row * Features,
                   Matrix.begin() + (Row + 1) * Features,
                   Matrix.begin() + (Row + 1) * Features);
}

//===- env/Embedding.h - SASS state embedding (paper Figure 4) --------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Embeds a SASS schedule as the matrix the RL agent consumes (§3.4):
/// each instruction becomes one row; control-code fields, an is-memory
/// opcode flag and operand table indices are embedded individually and
/// concatenated; absent fields and operand padding use dummy -1 values;
/// rows are concatenated to form the state matrix.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_ENV_EMBEDDING_H
#define CUASMRL_ENV_EMBEDDING_H

#include "analysis/OperandTable.h"
#include "sass/Program.h"

#include <vector>

namespace cuasmrl {
namespace env {

/// Fixed-shape embedder for one kernel's schedules.
class Embedding {
public:
  /// Builds the operand tables and fixes the matrix shape from the
  /// initial schedule (instruction count and operand arity never change
  /// during the game — swaps preserve the multiset).
  explicit Embedding(const sass::Program &Initial);

  /// Rows of the state matrix (= instruction count).
  size_t rows() const { return Rows; }
  /// Per-instruction feature count.
  size_t features() const { return Features; }

  /// Embeds the current schedule (row-major rows() x features()).
  std::vector<float> embed(const sass::Program &Prog) const;

  /// Embeds into an existing buffer (resized to rows() x features()),
  /// avoiding a fresh allocation per call.
  void embedInto(const sass::Program &Prog, std::vector<float> &Out) const;

  /// Exchanges rows \p Row and \p Row+1 of \p Matrix in place. A row is
  /// a pure function of its instruction, so swapping two adjacent
  /// instruction statements updates the observation exactly — the
  /// swap-aware O(features) alternative to re-embedding the program.
  void swapAdjacentRows(std::vector<float> &Matrix, size_t Row) const;

  const analysis::OperandTable &table() const { return Table; }

private:
  void embedInstr(const sass::Instruction &I, float *Row) const;

  analysis::OperandTable Table;
  size_t Rows = 0;
  size_t Features = 0;
};

} // namespace env
} // namespace cuasmrl

#endif // CUASMRL_ENV_EMBEDDING_H

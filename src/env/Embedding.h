//===- env/Embedding.h - SASS state embedding (paper Figure 4) --------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Embeds a SASS schedule as the matrix the RL agent consumes (§3.4):
/// each instruction becomes one row; control-code fields, an is-memory
/// opcode flag and operand table indices are embedded individually and
/// concatenated; absent fields and operand padding use dummy -1 values;
/// rows are concatenated to form the state matrix.
///
/// For the generalist (cross-kernel) policy the embedding can be
/// *conditioned* on the workload: a fixed-width context block — kernel
/// kind one-hot, log-scaled shape dimensions, a GpuType feature — is
/// appended to every row, and the operand-slot block can be padded to a
/// shared width so kernels with different operand arities produce the
/// same feature count. The per-row instruction features are unchanged:
/// a conditioned embedding's leading columns are bit-identical to the
/// legacy unconditioned path (pinned by differential tests).
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_ENV_EMBEDDING_H
#define CUASMRL_ENV_EMBEDDING_H

#include "analysis/OperandTable.h"
#include "kernels/Workload.h"
#include "sass/Program.h"

#include <vector>

namespace cuasmrl {
namespace env {

/// Workload conditioning for the generalist policy: identifies which
/// (kernel, shape, GPU) a schedule belongs to, so one shared network
/// can tell mixed-kernel observations apart.
struct WorkloadContext {
  kernels::WorkloadKind Kind = kernels::WorkloadKind::Softmax;
  kernels::WorkloadShape Shape;
  /// The paper keys deployments by GPU type first (§4.2); embedded as
  /// one hashed scalar so policies never alias across device types.
  std::string GpuType = "A100-SIM";
  /// Shared operand-slot width: the operand block is padded with dummy
  /// -1 columns up to this many slots, so every kernel in a mixed
  /// training pool shares one feature count. 0 (or fewer slots than
  /// the program's own max arity) keeps the natural width.
  size_t OperandSlots = 0;
};

/// Fixed-shape embedder for one kernel's schedules.
class Embedding {
public:
  /// Builds the operand tables and fixes the matrix shape from the
  /// initial schedule (instruction count and operand arity never change
  /// during the game — swaps preserve the multiset).
  explicit Embedding(const sass::Program &Initial);

  /// Conditioned embedder: like the legacy constructor, plus \p Ctx's
  /// context block appended to every row (and the operand slots padded
  /// to Ctx.OperandSlots). With OperandSlots at the natural width, the
  /// first features() - contextFeatures() columns of every row are
  /// bit-identical to the unconditioned embedding of the same program.
  Embedding(const sass::Program &Initial, const WorkloadContext &Ctx);

  /// Context-block width appended per row: one slot per workload kind
  /// (one-hot), one per shape field (log-scaled), one for the GpuType.
  static size_t contextFeatures();

  /// The context block a conditioned embedder appends to every row
  /// (exposed for differential tests); empty for the legacy path.
  const std::vector<float> &contextBlock() const { return CtxBlock; }

  /// Rows of the state matrix (= instruction count).
  size_t rows() const { return Rows; }
  /// Per-instruction feature count.
  size_t features() const { return Features; }

  /// Embeds the current schedule (row-major rows() x features()).
  std::vector<float> embed(const sass::Program &Prog) const;

  /// Embeds into an existing buffer (resized to rows() x features()),
  /// avoiding a fresh allocation per call.
  void embedInto(const sass::Program &Prog, std::vector<float> &Out) const;

  /// Exchanges rows \p Row and \p Row+1 of \p Matrix in place. A row is
  /// a pure function of its instruction (the context block is constant
  /// across rows), so swapping two adjacent instruction statements
  /// updates the observation exactly — the swap-aware O(features)
  /// alternative to re-embedding the program.
  void swapAdjacentRows(std::vector<float> &Matrix, size_t Row) const;

  const analysis::OperandTable &table() const { return Table; }

private:
  void embedInstr(const sass::Instruction &I, float *Row) const;

  analysis::OperandTable Table;
  size_t Rows = 0;
  size_t OperandSlotCount = 0; ///< Operand block width (>= natural).
  size_t Features = 0;
  /// Precomputed per-row conditioning suffix; empty when unconditioned.
  std::vector<float> CtxBlock;
};

} // namespace env
} // namespace cuasmrl

#endif // CUASMRL_ENV_EMBEDDING_H

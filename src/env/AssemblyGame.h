//===- env/AssemblyGame.h - The paper's assembly game (§3.3-3.6) ------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The iterative environment the RL agent plays: the state is the
/// embedded SASS schedule, an action picks one *memory* instruction and
/// swaps it with the statement above or below (§3.5), the mutated
/// schedule is assembled and executed on the (simulated) GPU, and the
/// relative runtime change is the reward (§3.6, Eq. 3):
///
///     R_i = (T_{i-1} - T_i) / T_0 * 100
///
/// Action masking guarantees mutated schedules stay semantically valid:
/// register dependencies, read/write-barrier dependencies, stall-count
/// dependencies (Algorithm 1, resolved through the stall table and the
/// inference pass), the LDGSTS ordering idiosyncrasy, label/sync
/// boundaries and the denylist. The interface follows the standardized
/// Gym shape (reset / step / action mask) so alternative search
/// algorithms plug in directly (§3.7).
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_ENV_ASSEMBLYGAME_H
#define CUASMRL_ENV_ASSEMBLYGAME_H

#include "analysis/StallAnalysis.h"
#include "env/Embedding.h"
#include "gpusim/Measurement.h"
#include "kernels/Builder.h"

#include <memory>
#include <optional>

namespace cuasmrl {
namespace env {

/// Environment configuration.
struct GameConfig {
  /// Episode length (paper §5.7.2: 32 by default).
  unsigned EpisodeLength = 32;
  /// Runtime measurement settings for the reward signal.
  gpusim::MeasureConfig Measure;
  /// Stall-count knowledge for Algorithm 1. Defaults to the
  /// microbench-extended table (§3.2's automatic look-up table); pass
  /// StallTable::builtin() to restrict to the paper's Table 1.
  analysis::StallTable Table = analysis::StallTable::extended();
  /// Ablation: disable masking (invalid schedules then surface as
  /// faults/corruption and terminate the episode with a penalty).
  bool UseActionMasking = true;
  /// Penalty reward for executing an invalid schedule (unmasked mode).
  double InvalidPenalty = -10.0;
  /// Memoize measurements by schedule identity (revisited states are
  /// frequent: the paper observes "lingering" agents, §5.7.2).
  bool CacheMeasurements = true;
  /// Record the §5.7 move-discovery trace (AppliedAction entries with
  /// rendered instruction text). Rendering costs two string
  /// constructions per accepted step; rollout loops that never read the
  /// trace should disable it (see also setTraceRecording()).
  bool RecordTrace = true;
  /// Schedule->latency cache shared with sibling games of the same
  /// kernel (parallel rollouts). Null + CacheMeasurements: the game
  /// creates a private cache. Cached values are interleaving-invariant
  /// (the noise seed derives from the schedule key), so sharing never
  /// perturbs determinism.
  std::shared_ptr<gpusim::MeasurementCache> SharedCache;
  /// Run on a private copy of the device taken at construction.
  /// Required whenever sibling games step concurrently: the simulator
  /// mutates global memory and cache state, so concurrent games must
  /// not share one Gpu.
  bool PrivateDevice = false;
  /// Workload conditioning for the generalist policy: when set, the
  /// observation rows carry the context block (and shared operand-slot
  /// padding) of a conditioned env::Embedding, so one network can be
  /// trained across kernels and shapes. Runtime wiring the optimizer
  /// controls per workload (like SharedCache/PrivateDevice): the
  /// conditioning values derive from the request itself, so this field
  /// does not participate in the serving layer's config digest.
  std::optional<WorkloadContext> Context;
};

/// One applied (accepted) action, for the §5.7 move-discovery traces.
struct AppliedAction {
  size_t StmtIndex;   ///< Statement index of the moved instruction.
  bool Up;            ///< Direction.
  double Reward;
  std::string MovedText; ///< The memory instruction that moved.
  std::string OtherText; ///< The instruction it swapped with.
};

/// The assembly game.
///
/// Thread-safety: one AssemblyGame may be driven by one thread at a
/// time. Sibling games can run concurrently when each has its own
/// device (GameConfig::PrivateDevice) — the only cross-game state is
/// the shared MeasurementCache, which is thread-safe.
class AssemblyGame {
public:
  /// \p Kernel supplies the -O3 schedule, launch geometry and buffers;
  /// the game owns a mutable copy of the schedule (and, when
  /// Config.PrivateDevice is set, a copy of \p Device).
  AssemblyGame(gpusim::Gpu &Device, const kernels::BuiltKernel &Kernel,
               GameConfig Config = GameConfig());

  /// \name Gym-style interface
  /// @{
  struct StepResult {
    std::vector<float> Observation;
    double Reward = 0.0;
    bool Done = false;
    bool Invalid = false; ///< Unmasked invalid schedule was executed.
  };

  std::vector<float> reset();
  StepResult step(unsigned Action);

  /// \name Split-step interface (lockstep batch measurement)
  /// step(A) is exactly `beginStep(A); measureLockstep({this});
  /// finishStep()` — the split exists so a rollout engine can advance
  /// the measurements of several sibling games through one
  /// measureLockstep() round (gpusim::measureKernelBatch lanes) instead
  /// of one game at a time. Bit-identity of the collected trajectories
  /// rests on the MeasurementCache determinism contract: a schedule's
  /// cached latency is a pure function of the schedule key, never of
  /// which sibling measured it first.
  /// @{
  /// Applies \p Action up to (not including) the reward measurement.
  /// Exactly one finishStep() must follow before the next beginStep().
  void beginStep(unsigned Action);
  /// Runs the pending measurements of \p Games in lockstep and
  /// publishes the values into their caches. Games that need no
  /// measurement (early-out step, already-cached schedule, duplicate
  /// key, no cache, a device shared with an earlier lane) are skipped —
  /// their finishStep() resolves through the ordinary measure() path.
  static void measureLockstep(const std::vector<AssemblyGame *> &Games);
  /// Completes the transition begun by beginStep().
  StepResult finishStep();
  /// @}

  /// 2 * movable-instruction count; action 2k moves instruction k up,
  /// 2k+1 moves it down.
  unsigned actionCount() const {
    return static_cast<unsigned>(2 * Movable.size());
  }
  /// Legality of every action under the current schedule (§3.5).
  ///
  /// Returns the *incrementally maintained* mask: after a swap at
  /// position U only the movable pairs whose region-bounded stall scans
  /// can overlap the swap window (= the pairs in U's reorder region)
  /// are re-evaluated, so a step costs O(affected region), not
  /// O(program), and repeated calls between steps are O(actions) reads.
  /// Callers must not assume a call recomputes legality from scratch;
  /// the cached mask is always bit-identical to actionMaskFresh()
  /// (pinned by differential tests).
  std::vector<uint8_t> actionMask() const;
  /// From-scratch O(program) legality sweep. Reference implementation
  /// for differential tests and benchmarks; the environment itself
  /// never calls it after construction.
  std::vector<uint8_t> actionMaskFresh() const;
  /// True when every action is masked (episode terminates immediately).
  bool allMasked() const;

  size_t obsRows() const { return Embed.rows(); }
  size_t obsFeatures() const { return Embed.features(); }
  /// @}

  /// \name Results
  /// @{
  const sass::Program &current() const { return Prog; }
  const sass::Program &best() const { return BestProg; }
  double initialTimeUs() const { return T0; }
  double bestTimeUs() const { return BestTime; }
  double currentTimeUs() const { return TPrev; }
  const std::vector<AppliedAction> &trace() const { return Trace; }
  const analysis::StallAnalysis &stallAnalysis() const { return Analysis; }
  unsigned measurementsTaken() const { return Measurements; }
  /// Simulator pipeline counters summed over every measurement this
  /// game ran itself (last-rep counters per measurement, cache hits
  /// excluded). Which sibling runs a shared-cache measurement is an
  /// implementation detail of the collection order, so per-game totals
  /// are not order-invariant — sum over all sibling games (as the
  /// optimizer's RolloutCounters does) for a stable aggregate.
  const gpusim::PerfCounters &simCounters() const { return SimCounters; }
  /// The schedule->latency cache in use (null when caching is off).
  const gpusim::MeasurementCache *measurementCache() const {
    return Cache.get();
  }
  /// @}

  /// \name Incremental-state inspection (tests, benchmarks)
  /// @{
  /// The O(1)-per-swap schedule key the reward loop uses; always equal
  /// to MeasurementCache::keyFor(current()).
  gpusim::MeasurementCache::ScheduleKey scheduleKey() const {
    return Hash.key();
  }
  /// The swap-maintained pre-decoded kernel image; always equal to a
  /// full redecode of current().
  const gpusim::DecodedProgram &decoded() const { return Decoded; }
  /// @}

  /// Toggles §5.7 trace recording at runtime (overrides
  /// GameConfig::RecordTrace); train with it off, replay with it on.
  void setTraceRecording(bool Enabled) { TraceEnabled = Enabled; }

  /// Checks whether swapping statements \p Upper and \p Upper+1 is legal
  /// under the §3.5 rules (exposed for tests and search baselines).
  bool swapLegal(size_t Upper) const;

private:
  /// In-flight split step (between beginStep and finishStep).
  struct PendingStep {
    bool Active = false;      ///< beginStep called, finishStep outstanding.
    bool NeedMeasure = false; ///< The swap was applied; latency pending.
    bool Measured = false;    ///< measureLockstep simulated this game.
    double T = 0.0;           ///< The measured latency when Measured.
    size_t Upper = 0;         ///< The applied swap (for revert / trace).
    bool Up = false;
    StepResult Early;         ///< Prebuilt result of non-measuring paths.
  };

  double measure();
  double simulateCurrent(uint64_t NoiseSeed);
  double acceptMeasurement(const gpusim::Measurement &M,
                           const gpusim::MeasureConfig &MC);
  void rebuildCaches();
  void rebuildMask();
  void computeMaskEntry(size_t MovableIdx, std::vector<uint8_t> &Out) const;
  void updateMaskAfterSwap(size_t Upper);
  /// Applies (or, called again, reverts) the swap at \p Upper across
  /// every incrementally-maintained structure.
  void applySwap(size_t Upper);
  bool stallCheckAfterSwap(size_t Upper) const;
  std::optional<unsigned> resolveStall(const sass::Instruction &I) const;

  std::unique_ptr<gpusim::Gpu> OwnedDevice; ///< Set with PrivateDevice.
  gpusim::Gpu &Device;
  kernels::BuiltKernel Kernel;
  GameConfig Config;

  sass::Program Original;
  sass::Program Prog;
  Embedding Embed;
  analysis::StallAnalysis Analysis;
  analysis::RegionInfo Regions;

  /// Statement indices of movable memory instructions (§3.2 pass),
  /// dynamically updated after every swap.
  std::vector<size_t> Movable;
  /// Per-statement def/use caches (sorted register lists, so pair
  /// interference checks merge in O(|A|+|B|)), swapped along.
  std::vector<std::vector<sass::Register>> Defs, Uses;

  /// \name Incrementally-maintained per-step state
  /// All four are updated in O(affected window) by applySwap() and are
  /// always bit-identical to their from-scratch recomputation.
  /// @{
  gpusim::DecodedProgram Decoded; ///< Execution-ready kernel image.
  gpusim::ScheduleHash Hash;      ///< Measurement-cache schedule key.
  std::vector<uint8_t> Mask;      ///< Cached action mask.
  std::vector<float> Obs;         ///< Cached observation matrix.
  std::vector<size_t> RowOf;      ///< Statement index -> observation row.
  /// @}

  double T0 = 0.0;
  double TPrev = 0.0;
  double BestTime = 0.0;
  sass::Program BestProg;
  unsigned StepsTaken = 0;
  unsigned Measurements = 0;
  gpusim::PerfCounters SimCounters;
  PendingStep Pend;
  bool TraceEnabled = true;
  std::vector<AppliedAction> Trace;
  std::shared_ptr<gpusim::MeasurementCache> Cache;
};

} // namespace env
} // namespace cuasmrl

#endif // CUASMRL_ENV_ASSEMBLYGAME_H

//===- env/AssemblyGame.cpp --------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "env/AssemblyGame.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace cuasmrl;
using namespace cuasmrl::env;

namespace {

/// Sorted-merge interference test: the def/use caches are kept sorted,
/// so the pair check is O(|A|+|B|) instead of the quadratic
/// all-pairs scan.
bool intersects(const std::vector<sass::Register> &A,
                const std::vector<sass::Register> &B) {
  if (A.empty() || B.empty())
    return false;
  auto IA = A.begin(), IB = B.begin();
  while (IA != A.end() && IB != B.end()) {
    if (*IA < *IB)
      ++IA;
    else if (*IB < *IA)
      ++IB;
    else
      return true;
  }
  return false;
}

bool contains(const std::vector<sass::Register> &Sorted,
              const sass::Register &R) {
  return std::binary_search(Sorted.begin(), Sorted.end(), R);
}

unsigned issueStall(const sass::Instruction &I) {
  return std::max<unsigned>(1, I.ctrl().stall());
}

} // namespace

AssemblyGame::AssemblyGame(gpusim::Gpu &Dev,
                           const kernels::BuiltKernel &K, GameConfig Cfg)
    : OwnedDevice(Cfg.PrivateDevice ? std::make_unique<gpusim::Gpu>(Dev)
                                    : nullptr),
      Device(OwnedDevice ? *OwnedDevice : Dev), Kernel(K),
      Config(std::move(Cfg)), Original(K.Prog), Prog(K.Prog),
      Embed(Config.Context ? Embedding(K.Prog, *Config.Context)
                           : Embedding(K.Prog)),
      Analysis(analysis::analyzeStallCounts(K.Prog, Config.Table)),
      Regions(analysis::computeRegions(K.Prog,
                                       analysis::BoundaryKind::LabelsAndSync)),
      BestProg(K.Prog), TraceEnabled(Config.RecordTrace) {
  if (Config.CacheMeasurements) {
    Cache = Config.SharedCache;
    if (!Cache)
      Cache = std::make_shared<gpusim::MeasurementCache>(Config.Measure.Seed);
  }
  if (Config.Measure.MaxBlocks == 0) {
    // Reward measurements only need *relative* timing: one small block
    // group keeps the inner loop fast even for kernels whose occupancy
    // admits many resident blocks.
    Config.Measure.MaxBlocks =
        std::min(Device.residentBlocks(Kernel.Launch), 2u);
  }
  rebuildCaches();
  T0 = measure();
  assert(!std::isnan(T0) && "initial -O3 schedule must be valid");
  TPrev = T0;
  BestTime = T0;
}

void AssemblyGame::rebuildCaches() {
  Movable.clear();
  Defs.assign(Prog.size(), {});
  Uses.assign(Prog.size(), {});
  RowOf.assign(Prog.size(), static_cast<size_t>(-1));
  size_t Row = 0;
  for (size_t I = 0; I < Prog.size(); ++I) {
    if (!Prog.stmt(I).isInstr())
      continue;
    const sass::Instruction &Instr = Prog.stmt(I).instr();
    Defs[I] = Instr.regDefs();
    Uses[I] = Instr.regUses();
    std::sort(Defs[I].begin(), Defs[I].end());
    std::sort(Uses[I].begin(), Uses[I].end());
    RowOf[I] = Row++;
    // The action space: reorderable memory instructions that survived
    // the denylist (§3.2/§3.5).
    if (Instr.isReorderableMemory() && !Analysis.Denylist.count(I) &&
        Regions.RegionOf[I] != analysis::RegionInfo::kBoundary)
      Movable.push_back(I);
  }
  Decoded = gpusim::DecodedProgram(Prog);
  Hash = gpusim::ScheduleHash(Prog);
  Embed.embedInto(Prog, Obs);
  rebuildMask();
}

std::optional<unsigned>
AssemblyGame::resolveStall(const sass::Instruction &I) const {
  std::optional<std::string> Key = I.latencyKey();
  if (!Key)
    return std::nullopt;
  return Analysis.resolve(Config.Table, *Key);
}

bool AssemblyGame::stallCheckAfterSwap(size_t Upper) const {
  const sass::Instruction &A = Prog.stmt(Upper).instr();

  // Check 1 — A moves *down* to Upper+1, so B's stall no longer sits
  // between A and its consumers (the pre-swap distance shrinks by
  // stall(B)). Rather than subtracting stall(B), the scan computes the
  // post-swap distance directly: it seeds with issueStall(A) and walks
  // from Upper+2, which is exactly the instruction stream below A after
  // the swap — B contributes nothing, by construction. B itself cannot
  // be a consumer of A here: swapLegal already rejected any RAW between
  // the pair. Only fixed-latency producers are protected by stall
  // counts (variable latency uses the scoreboard).
  std::optional<unsigned> NeedA = resolveStall(A);
  if (A.isFixedLatency() && !Defs[Upper].empty() && NeedA) {
    // Unresolvable producer latencies are left to the schedule's own
    // slack, matching the paper's Algorithm 1 (which only guards the
    // moved memory instruction's upward dependencies).
    unsigned Need = *NeedA;
    for (const sass::Register &D : Defs[Upper]) {
      unsigned Accum = issueStall(A);
      for (size_t Q = Upper + 2; Q < Prog.size(); ++Q) {
        if (!Regions.sameRegion(Upper, Q))
          break;
        if (contains(Uses[Q], D)) {
          if (Accum < Need)
            return false;
          break;
        }
        if (contains(Defs[Q], D))
          break; // Redefined before any use.
        Accum += issueStall(Prog.stmt(Q).instr());
      }
    }
  }

  // Check 2 — B moves *up* (Algorithm 1): the distance from each of B's
  // producers shrinks by stall(A).
  for (const sass::Register &U : Uses[Upper + 1]) {
    unsigned Accum = 0;
    for (size_t Q = Upper; Q-- > 0;) {
      if (!Regions.sameRegion(Upper, Q))
        break;
      // Note: A (at Upper) is excluded automatically — it sits below B
      // after the swap; the scan starts at Upper-1.
      Accum += issueStall(Prog.stmt(Q).instr());
      if (!contains(Defs[Q], U))
        continue;
      const sass::Instruction &P = Prog.stmt(Q).instr();
      if (P.isFixedLatency()) {
        std::optional<unsigned> Need = resolveStall(P);
        if (!Need || Accum < *Need)
          return false;
      }
      break; // Nearest definition decides.
    }
  }
  return true;
}

bool AssemblyGame::swapLegal(size_t Upper) const {
  if (Upper + 1 >= Prog.size())
    return false;
  const sass::Statement &SA = Prog.stmt(Upper);
  const sass::Statement &SB = Prog.stmt(Upper + 1);
  if (!SA.isInstr() || !SB.isInstr())
    return false;
  // Labels and barrier/synchronization instructions bound reordering.
  if (!Regions.sameRegion(Upper, Upper + 1))
    return false;

  const sass::Instruction &A = SA.instr();
  const sass::Instruction &B = SB.instr();

  // LDGSTS groups targeting the same shared base must stay in issue
  // order (hardware idiosyncrasy, §3.5).
  if (A.opcode() == sass::Opcode::LDGSTS &&
      B.opcode() == sass::Opcode::LDGSTS && !A.operands().empty() &&
      !B.operands().empty() && A.operands()[0].isMem() &&
      B.operands()[0].isMem() &&
      A.operands()[0].baseReg() == B.operands()[0].baseReg())
    return false;

  // Register dependencies: any RAW/WAR/WAW between the pair.
  if (intersects(Defs[Upper], Uses[Upper + 1]) ||
      intersects(Uses[Upper], Defs[Upper + 1]) ||
      intersects(Defs[Upper], Defs[Upper + 1]))
    return false;

  // Barrier dependencies: neither may wait on a slot the other sets,
  // and two setters of one slot must not reorder (§3.5).
  for (int Slot = 0; Slot < sass::ControlCode::NumBarrierSlots; ++Slot) {
    bool ASets = A.ctrl().setsBarrier(Slot);
    bool BSets = B.ctrl().setsBarrier(Slot);
    if ((ASets && B.ctrl().waitsOn(Slot)) ||
        (A.ctrl().waitsOn(Slot) && BSets) || (ASets && BSets))
      return false;
  }

  return stallCheckAfterSwap(Upper);
}

void AssemblyGame::computeMaskEntry(size_t MovableIdx,
                                    std::vector<uint8_t> &Out) const {
  size_t Stmt = Movable[MovableIdx];
  uint8_t UpLegal = 0, DownLegal = 0;
  if (Config.UseActionMasking) {
    UpLegal = Stmt > 0 && swapLegal(Stmt - 1);
    DownLegal = swapLegal(Stmt);
  } else {
    // Masking disabled (ablation): only structural feasibility — both
    // neighbors must be instructions. Semantic violations then surface
    // as corrupted outputs at measurement time.
    UpLegal = Stmt > 0 && Prog.stmt(Stmt - 1).isInstr();
    DownLegal = Stmt + 1 < Prog.size() && Prog.stmt(Stmt + 1).isInstr();
  }
  Out[2 * MovableIdx] = UpLegal;
  Out[2 * MovableIdx + 1] = DownLegal;
}

void AssemblyGame::rebuildMask() {
  Mask.assign(actionCount(), 0);
  for (size_t M = 0; M < Movable.size(); ++M)
    computeMaskEntry(M, Mask);
}

void AssemblyGame::updateMaskAfterSwap(size_t Upper) {
  if (!Config.UseActionMasking) {
    // The structural mask depends only on the label/instruction position
    // pattern (swap-invariant) and each movable's own position — only
    // the two statements that moved can change their entries.
    for (size_t M = 0; M < Movable.size(); ++M)
      if (Movable[M] == Upper || Movable[M] == Upper + 1)
        computeMaskEntry(M, Mask);
    return;
  }
  // Every quantity swapLegal() reads is either pair-local (registers,
  // control bits, LDGSTS bases of the two statements) or confined to
  // the pair's reorder region (the Algorithm 1 stall scans, which break
  // at region boundaries). A swap inside region R therefore cannot
  // change the legality of any pair outside R: re-evaluate exactly the
  // movable pairs living in R.
  int Region = Regions.RegionOf[Upper];
  for (size_t M = 0; M < Movable.size(); ++M)
    if (Regions.RegionOf[Movable[M]] == Region)
      computeMaskEntry(M, Mask);
}

void AssemblyGame::applySwap(size_t Upper) {
  Prog.swap(Upper, Upper + 1);
  std::swap(Defs[Upper], Defs[Upper + 1]);
  std::swap(Uses[Upper], Uses[Upper + 1]);
  for (size_t &M : Movable) {
    if (M == Upper)
      M = Upper + 1;
    else if (M == Upper + 1)
      M = Upper;
  }
  Decoded.swap(Upper);
  Hash.swap(Upper);
  // Adjacent instruction statements occupy adjacent observation rows
  // (no label can sit between them), and positions keep their row
  // numbers — only the contents trade places.
  Embed.swapAdjacentRows(Obs, RowOf[Upper]);
  updateMaskAfterSwap(Upper);
}

std::vector<uint8_t> AssemblyGame::actionMask() const { return Mask; }

std::vector<uint8_t> AssemblyGame::actionMaskFresh() const {
  std::vector<uint8_t> Fresh(actionCount(), 0);
  for (size_t M = 0; M < Movable.size(); ++M)
    computeMaskEntry(M, Fresh);
  return Fresh;
}

bool AssemblyGame::allMasked() const {
  return std::none_of(Mask.begin(), Mask.end(),
                      [](uint8_t M) { return M != 0; });
}

double AssemblyGame::simulateCurrent(uint64_t NoiseSeed) {
  gpusim::MeasureConfig MC = Config.Measure;
  MC.Seed = NoiseSeed;
  gpusim::Measurement M =
      measureKernel(Device, Prog, Decoded, Kernel.Launch, MC);
  return acceptMeasurement(M, MC);
}

double AssemblyGame::acceptMeasurement(const gpusim::Measurement &M,
                                       const gpusim::MeasureConfig &MC) {
  // Shared tail of the serial and lockstep measurement paths: protocol
  // accounting, validity, and (unmasked mode) the oracle comparison.
  Measurements += MC.WarmupIters + MC.RepeatIters;
  SimCounters += M.Counters;
  if (!M.Valid)
    return std::nan("");

  if (!Config.UseActionMasking) {
    // No masking: catch silent corruption by comparing the timed output
    // against the architectural oracle on the same block subset
    // (probabilistic testing in the reward loop).
    std::vector<uint32_t> Timed = Kernel.readOutput(Device);
    gpusim::RunResult Ref = Device.run(Prog, Decoded, Kernel.Launch,
                                       gpusim::RunMode::Oracle,
                                       MC.MaxBlocks);
    if (!Ref.Valid)
      return std::nan("");
    std::vector<uint32_t> Oracle = Kernel.readOutput(Device);
    if (Timed != Oracle)
      return std::nan("");
  }
  return M.MeanUs;
}

double AssemblyGame::measure() {
  // O(1): the key is maintained across swaps, never recomputed from the
  // program text.
  gpusim::MeasurementCache::ScheduleKey Key = Hash.key();
  if (Cache)
    return Cache->measureOrCompute(
        Key, [this](uint64_t NoiseSeed) { return simulateCurrent(NoiseSeed); });
  // Cacheless (ablation) path: same order-invariant noise seeding (the
  // Check hash, matching every cached path) so a schedule's measured
  // latency never depends on visit order or on caching being enabled.
  return simulateCurrent(
      gpusim::MeasurementCache::deriveSeed(Config.Measure.Seed, Key.Check));
}

std::vector<float> AssemblyGame::reset() {
  Prog = Original;
  rebuildCaches();
  TPrev = T0;
  StepsTaken = 0;
  Trace.clear();
  return Obs;
}

AssemblyGame::StepResult AssemblyGame::step(unsigned Action) {
  beginStep(Action);
  measureLockstep({this});
  return finishStep();
}

void AssemblyGame::beginStep(unsigned Action) {
  assert(Action < actionCount() && "action out of range");
  assert(!Pend.Active && "beginStep while a step is already in flight");
  Pend = PendingStep();
  Pend.Active = true;
  ++StepsTaken;

  size_t MovIdx = Action / 2;
  bool Up = Action % 2 == 0;
  size_t Stmt = Movable[MovIdx];
  size_t Upper = Up ? Stmt - 1 : Stmt;
  bool StructurallyPossible =
      (!Up || Stmt > 0) && Upper + 1 < Prog.size() &&
      Prog.stmt(Upper).isInstr() && Prog.stmt(Upper + 1).isInstr();

  if (Config.UseActionMasking && !Mask[Action]) {
    // Masked actions carry ~zero probability; a defensive no-op keeps
    // the environment consistent if one is forced through. (The cached
    // mask entry equals swapLegal() by the incremental-maintenance
    // invariant, so no legality sweep happens here.)
    Pend.Early.Observation = Obs;
    Pend.Early.Done = StepsTaken >= Config.EpisodeLength || allMasked();
    return;
  }
  if (!StructurallyPossible) {
    Pend.Early.Observation = Obs;
    Pend.Early.Reward = Config.InvalidPenalty;
    Pend.Early.Invalid = true;
    Pend.Early.Done = true;
    return;
  }

  // Apply the swap (the environment transition, Figure 3) — O(affected
  // window) across program, decoded image, hash, observation and mask.
  applySwap(Upper);
  Pend.NeedMeasure = true;
  Pend.Upper = Upper;
  Pend.Up = Up;
}

void AssemblyGame::measureLockstep(const std::vector<AssemblyGame *> &Games) {
  // Select the games that own a lane this round: a pending measurement
  // whose schedule key is not yet cached, claimed at most once per
  // (cache, key), with one lane per distinct device (runLanes requires
  // distinct device objects). Skipped games lose nothing — their
  // finishStep() measures through the ordinary cache path, and the
  // cache determinism contract keeps every value identical either way.
  struct ClaimId {
    const void *Cache;
    uint64_t Primary, Check;
    bool operator==(const ClaimId &O) const {
      return Cache == O.Cache && Primary == O.Primary && Check == O.Check;
    }
  };
  std::vector<ClaimId> Claimed;
  std::vector<const gpusim::Gpu *> UsedDevices;
  std::vector<AssemblyGame *> Owners;
  for (AssemblyGame *G : Games) {
    if (!G || !G->Pend.Active || !G->Pend.NeedMeasure || G->Pend.Measured ||
        !G->Cache)
      continue;
    gpusim::MeasurementCache::ScheduleKey Key = G->Hash.key();
    double CachedUs;
    if (G->Cache->lookup(Key, CachedUs))
      continue;
    ClaimId Id{G->Cache.get(), Key.Primary, Key.Check};
    if (std::find(Claimed.begin(), Claimed.end(), Id) != Claimed.end())
      continue;
    if (std::find(UsedDevices.begin(), UsedDevices.end(), &G->Device) !=
        UsedDevices.end())
      continue;
    Claimed.push_back(Id);
    UsedDevices.push_back(&G->Device);
    Owners.push_back(G);
  }
  if (Owners.empty())
    return;

  // One lane per owner, noise-seeded exactly as measureOrCompute would
  // seed its Simulate callback: deriveSeed(cache base seed, Check) — a
  // pure function of the schedule, so the lockstep value equals the
  // serial one bit for bit.
  std::vector<gpusim::BatchMeasureLane> Lanes(Owners.size());
  std::vector<gpusim::MeasureConfig> MCs(Owners.size());
  for (size_t I = 0; I < Owners.size(); ++I) {
    AssemblyGame *G = Owners[I];
    MCs[I] = G->Config.Measure;
    MCs[I].Seed = gpusim::MeasurementCache::deriveSeed(G->Cache->baseSeed(),
                                                       G->Hash.key().Check);
    Lanes[I] = {&G->Device, &G->Prog, &G->Decoded, &G->Kernel.Launch, MCs[I]};
  }
  std::vector<gpusim::Measurement> Ms = gpusim::measureKernelBatch(Lanes);

  for (size_t I = 0; I < Owners.size(); ++I) {
    AssemblyGame *G = Owners[I];
    double ValueUs = G->acceptMeasurement(Ms[I], MCs[I]);
    // Publish under the single-simulation protocol; if another thread
    // claimed the key meanwhile, the published value is identical by
    // the determinism contract and ours is discarded.
    G->Cache->measureOrCompute(G->Hash.key(),
                               [ValueUs](uint64_t) { return ValueUs; });
    G->Pend.Measured = true;
    G->Pend.T = ValueUs;
  }
}

AssemblyGame::StepResult AssemblyGame::finishStep() {
  assert(Pend.Active && "finishStep without beginStep");
  Pend.Active = false;
  if (!Pend.NeedMeasure)
    return std::move(Pend.Early);

  StepResult Res;
  size_t Upper = Pend.Upper;
  bool Up = Pend.Up;
  double T = Pend.Measured ? Pend.T : measure();
  if (std::isnan(T)) {
    // Invalid schedule executed (only reachable without masking):
    // penalize, revert, terminate. applySwap is an involution, so the
    // same call restores every incremental structure.
    applySwap(Upper);
    Res.Observation = Obs;
    Res.Reward = Config.InvalidPenalty;
    Res.Invalid = true;
    Res.Done = true;
    return Res;
  }

  // Eq. 3.
  Res.Reward = (TPrev - T) / T0 * 100.0;
  TPrev = T;
  if (T < BestTime) {
    BestTime = T;
    BestProg = Prog;
  }

  if (TraceEnabled) {
    AppliedAction AA;
    AA.StmtIndex = Up ? Upper : Upper + 1;
    AA.Up = Up;
    AA.Reward = Res.Reward;
    AA.MovedText = Prog.stmt(Up ? Upper : Upper + 1).instr().str();
    AA.OtherText = Prog.stmt(Up ? Upper + 1 : Upper).instr().str();
    Trace.push_back(std::move(AA));
  }

  Res.Observation = Obs;
  Res.Done = StepsTaken >= Config.EpisodeLength || allMasked();
  return Res;
}

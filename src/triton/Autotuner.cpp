//===- triton/Autotuner.cpp -----------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "triton/Autotuner.h"

#include "kernels/Generators.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <thread>

using namespace cuasmrl;
using namespace cuasmrl::triton;

namespace {

/// FNV-1a over the request key: folds the (kind, shape) identity into
/// the per-candidate seed derivation.
uint64_t hashKey(const std::string &Key) { return fnv1a64(Key); }

} // namespace

Autotuner::Autotuner(AutotuneOptions O) : Options(std::move(O)) {}

Autotuner::Autotuner(gpusim::MeasureConfig M) {
  Options.Measure = M;
}

std::string Autotuner::requestKey(kernels::WorkloadKind Kind,
                                  const kernels::WorkloadShape &S) {
  return kernels::workloadName(Kind) + "/" + std::to_string(S.B) + "x" +
         std::to_string(S.M) + "x" + std::to_string(S.N) + "x" +
         std::to_string(S.K) + "/" + std::to_string(S.NHead) + "x" +
         std::to_string(S.SeqLen) + "x" + std::to_string(S.DHead) + "/" +
         std::to_string(S.Rows) + "x" + std::to_string(S.Cols);
}

const AutotuneResult *
Autotuner::cached(kernels::WorkloadKind Kind,
                  const kernels::WorkloadShape &Shape) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Cache.find(requestKey(Kind, Shape));
  if (It == Cache.end() || !It->second.Ready)
    return nullptr;
  return &It->second.Result;
}

uint64_t Autotuner::sweepsPerformed() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Sweeps;
}

TunedConfig Autotuner::measureCandidate(const gpusim::Gpu &Device,
                                        kernels::WorkloadKind Kind,
                                        const kernels::WorkloadShape &Shape,
                                        const kernels::TileConfig &Config,
                                        uint64_t Seed) const {
  // Private device copy: the builder allocates buffers and the
  // simulator mutates memory/cache state, so concurrent candidates must
  // not share a Gpu — and a per-candidate copy also makes the
  // measurement independent of sweep order for Workers == 1.
  gpusim::Gpu Local(Device);
  Rng CandRng(Seed);
  kernels::BuiltKernel K =
      kernels::buildKernel(Local, Kind, Shape, Config,
                           kernels::ScheduleStyle::TritonO3, CandRng);
  gpusim::MeasureConfig MC = Options.Measure;
  if (MC.MaxBlocks == 0)
    MC.MaxBlocks = Local.residentBlocks(K.Launch);
  // Independent per-candidate noise stream, pure in (BaseSeed, request,
  // candidate index) like the data stream.
  MC.Seed = mixSeed(Seed, 0x6d656173756e6f69ull);
  gpusim::Measurement M = measureKernel(Local, K.Prog, K.Launch, MC);

  TunedConfig T;
  T.Config = Config;
  T.Valid = M.Valid;
  T.MeanUs = M.MeanUs;
  return T;
}

AutotuneResult Autotuner::tune(const gpusim::Gpu &Device,
                               kernels::WorkloadKind Kind,
                               const kernels::WorkloadShape &Shape) {
  return sweepAll(Device, {{Kind, Shape}}).front();
}

AutotuneResult Autotuner::tune(gpusim::Gpu &Device,
                               kernels::WorkloadKind Kind,
                               const kernels::WorkloadShape &Shape,
                               Rng &DataRng) {
  // Candidate streams derive from Options.BaseSeed, never from the
  // caller's Rng (see the header): the legacy parameter is accepted but
  // deliberately untouched so cached results are order-independent.
  (void)DataRng;
  return tune(static_cast<const gpusim::Gpu &>(Device), Kind, Shape);
}

std::vector<AutotuneResult>
Autotuner::sweepAll(const gpusim::Gpu &Device,
                    const std::vector<SweepRequest> &Requests) {
  const size_t N = Requests.size();
  std::vector<AutotuneResult> Out(N);
  std::vector<std::string> Keys(N);
  for (size_t I = 0; I < N; ++I)
    Keys[I] = requestKey(Requests[I].Kind, Requests[I].Shape);
  std::vector<char> Resolved(N, 0);

  // Each pass claims every unresolved key nobody owns, sweeps the
  // claimed ones in a single cross-request fan-out, then waits for the
  // keys other threads (or earlier duplicates in this batch) own.
  // Another pass runs only when a wait found its key reclaimed (the
  // sweeper threw) or a duplicate resolved, so the loop terminates.
  for (;;) {
    std::vector<size_t> Owned;   ///< Batch index that claimed each key.
    std::vector<size_t> Waiting; ///< Keys in flight on another thread.
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      std::map<std::string, size_t> ClaimedHere;
      for (size_t I = 0; I < N; ++I) {
        if (Resolved[I])
          continue;
        if (ClaimedHere.count(Keys[I]))
          continue; // Duplicate request: resolves from the cache next pass.
        auto It = Cache.find(Keys[I]);
        if (It != Cache.end()) {
          if (It->second.Ready) {
            Out[I] = It->second.Result;
            Resolved[I] = 1;
          } else {
            Waiting.push_back(I);
          }
          continue;
        }
        Cache.emplace(Keys[I], Slot());
        ClaimedHere.emplace(Keys[I], I);
        Owned.push_back(I);
      }
    }
    if (Owned.empty() && Waiting.empty())
      break;

    if (!Owned.empty()) {
      // Flatten every (request, fitting candidate) pair into one task
      // list: candidates of different workloads interleave freely
      // across the pool (no per-request barrier).
      struct Task {
        size_t Req;
        size_t Cand;
        kernels::TileConfig Config;
        uint64_t Seed;
      };
      std::vector<Task> Tasks;
      // Everything between claiming the keys and publishing runs under
      // the release-on-throw guard below — a throw anywhere here (task
      // construction included) must reclaim the keys, never poison
      // them.
      try {
        for (size_t I : Owned) {
          uint64_t ReqSeed = mixSeed(Options.BaseSeed, hashKey(Keys[I]));
          size_t Cand = 0;
          for (const kernels::TileConfig &C :
               kernels::candidateConfigs(Requests[I].Kind)) {
            if (!kernels::configFits(Requests[I].Kind, Requests[I].Shape, C))
              continue;
            Tasks.push_back({I, Cand, C, mixSeed(ReqSeed, Cand)});
            ++Cand;
          }
          Out[I] = AutotuneResult();
          Out[I].Sweep.resize(Cand);
        }

        auto RunTask = [&](size_t T) {
          const Task &K = Tasks[T];
          // Per-candidate cancellation checkpoint: a shed/timed-out
          // job abandons the sweep here (the catch below reclaims the
          // claimed keys; parallelFor rethrows on the caller thread).
          if (Options.Cancel)
            Options.Cancel->checkpoint();
          // Distinct slots per task: no synchronization needed, and
          // slot order (candidate enumeration order) fixes the result
          // layout independent of completion order.
          Out[K.Req].Sweep[K.Cand] = measureCandidate(
              Device, Requests[K.Req].Kind, Requests[K.Req].Shape,
              K.Config, K.Seed);
        };
        unsigned Workers = support::ThreadPool::resolveWorkerCount(
            Options.Workers, Tasks.size());
        if (Workers > 1 && Tasks.size() > 1) {
          support::ThreadPool Pool(Workers);
          Pool.parallelFor(Tasks.size(),
                           [&](size_t T) { RunTask(T); });
        } else if (Tasks.size() > 1) {
          // Single-threaded sweeps advance every candidate in lockstep
          // through the batch measurement path instead of measuring one
          // candidate to completion at a time. Build and protocol mirror
          // measureCandidate() exactly — a private device copy and Rng
          // per candidate, seeds pure in (BaseSeed, request, candidate) —
          // and builds touch only their own lane, so hoisting them ahead
          // of the measurements cannot change any lane's result (the
          // batch determinism contract, docs/SIMULATOR.md).
          struct CandidateLane {
            gpusim::Gpu Local;
            kernels::BuiltKernel K;
            gpusim::MeasureConfig MC;
            CandidateLane(const gpusim::Gpu &Device,
                          const gpusim::MeasureConfig &MC)
                : Local(Device), MC(MC) {}
          };
          std::vector<CandidateLane> Lanes;
          Lanes.reserve(Tasks.size());
          for (const Task &K : Tasks) {
            // Per-candidate checkpoint, mirroring RunTask.
            if (Options.Cancel)
              Options.Cancel->checkpoint();
            Lanes.emplace_back(Device, Options.Measure);
            CandidateLane &L = Lanes.back();
            Rng CandRng(K.Seed);
            L.K = kernels::buildKernel(L.Local, Requests[K.Req].Kind,
                                       Requests[K.Req].Shape, K.Config,
                                       kernels::ScheduleStyle::TritonO3,
                                       CandRng);
            if (L.MC.MaxBlocks == 0)
              L.MC.MaxBlocks = L.Local.residentBlocks(L.K.Launch);
            L.MC.Seed = mixSeed(K.Seed, 0x6d656173756e6f69ull);
          }
          std::vector<gpusim::BatchMeasureLane> MLanes(Lanes.size());
          for (size_t T = 0; T < Lanes.size(); ++T)
            MLanes[T] = {&Lanes[T].Local, &Lanes[T].K.Prog, nullptr,
                         &Lanes[T].K.Launch, Lanes[T].MC};
          std::vector<gpusim::Measurement> Ms =
              gpusim::measureKernelBatch(MLanes);
          for (size_t T = 0; T < Tasks.size(); ++T) {
            TunedConfig TC;
            TC.Config = Tasks[T].Config;
            TC.Valid = Ms[T].Valid;
            TC.MeanUs = Ms[T].MeanUs;
            Out[Tasks[T].Req].Sweep[Tasks[T].Cand] = TC;
          }
        } else {
          for (size_t T = 0; T < Tasks.size(); ++T)
            RunTask(T);
        }
      } catch (...) {
        // Release the claimed keys so waiters (and retries) can
        // re-sweep — a key is never poisoned, like MeasurementCache.
        {
          std::lock_guard<std::mutex> Lock(Mutex);
          for (size_t I : Owned)
            Cache.erase(Keys[I]);
        }
        Published.notify_all();
        throw;
      }

      // Reduce winners in candidate order (worker-count independent)
      // and publish.
      {
        std::lock_guard<std::mutex> Lock(Mutex);
        for (size_t I : Owned) {
          AutotuneResult &R = Out[I];
          R.BestUs = 1e30;
          for (const TunedConfig &T : R.Sweep) {
            if (T.Valid && T.MeanUs < R.BestUs) {
              R.BestUs = T.MeanUs;
              R.Best = T.Config;
              R.Valid = true;
            }
          }
          Slot &S = Cache[Keys[I]];
          S.Result = R;
          S.Ready = true;
          Resolved[I] = 1;
          ++Sweeps;
        }
      }
      Published.notify_all();
    }

    for (size_t I : Waiting) {
      std::unique_lock<std::mutex> Lock(Mutex);
      Published.wait(Lock, [&] {
        auto It = Cache.find(Keys[I]);
        return It == Cache.end() || It->second.Ready;
      });
      auto It = Cache.find(Keys[I]);
      if (It != Cache.end() && It->second.Ready) {
        Out[I] = It->second.Result;
        Resolved[I] = 1;
      }
      // Reclaimed (sweeper threw): the next pass claims it ourselves.
    }
  }
  return Out;
}

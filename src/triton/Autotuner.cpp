//===- triton/Autotuner.cpp -----------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "triton/Autotuner.h"

#include "kernels/Generators.h"

using namespace cuasmrl;
using namespace cuasmrl::triton;

Autotuner::Autotuner(gpusim::MeasureConfig M) : Measure(M) {}

std::string Autotuner::cacheKey(kernels::WorkloadKind Kind,
                                const kernels::WorkloadShape &S) {
  return kernels::workloadName(Kind) + "/" + std::to_string(S.B) + "x" +
         std::to_string(S.M) + "x" + std::to_string(S.N) + "x" +
         std::to_string(S.K) + "/" + std::to_string(S.NHead) + "x" +
         std::to_string(S.SeqLen) + "x" + std::to_string(S.DHead) + "/" +
         std::to_string(S.Rows) + "x" + std::to_string(S.Cols);
}

const AutotuneResult *
Autotuner::cached(kernels::WorkloadKind Kind,
                  const kernels::WorkloadShape &Shape) const {
  auto It = Cache.find(cacheKey(Kind, Shape));
  return It == Cache.end() ? nullptr : &It->second;
}

AutotuneResult Autotuner::tune(gpusim::Gpu &Device,
                               kernels::WorkloadKind Kind,
                               const kernels::WorkloadShape &Shape,
                               Rng &DataRng) {
  std::string Key = cacheKey(Kind, Shape);
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;

  AutotuneResult Result;
  Result.BestUs = 1e30;
  for (const kernels::TileConfig &Config :
       kernels::candidateConfigs(Kind)) {
    if (!kernels::configFits(Kind, Shape, Config))
      continue;
    kernels::BuiltKernel K = kernels::buildKernel(
        Device, Kind, Shape, Config, kernels::ScheduleStyle::TritonO3,
        DataRng);
    gpusim::MeasureConfig MC = Measure;
    if (MC.MaxBlocks == 0)
      MC.MaxBlocks = Device.residentBlocks(K.Launch);
    gpusim::Measurement M = measureKernel(Device, K.Prog, K.Launch, MC);

    TunedConfig T;
    T.Config = Config;
    T.Valid = M.Valid;
    T.MeanUs = M.MeanUs;
    Result.Sweep.push_back(T);
    if (M.Valid && M.MeanUs < Result.BestUs) {
      Result.BestUs = M.MeanUs;
      Result.Best = Config;
    }
  }
  Cache.emplace(Key, Result);
  return Result;
}

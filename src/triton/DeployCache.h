//===- triton/DeployCache.h - Offline search / deploy lookup (§4.2) ----------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's deployment workflow: "the best optimized cubin found
/// throughout the assembly game is written to the file system, prefixed
/// by GPU type, workload type etc., as the key to lookup. At deployment,
/// the key should be passed in, and it invokes a lookup process instead
/// of training" (§4.2). There is no runtime overhead — only offline
/// search time.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_TRITON_DEPLOYCACHE_H
#define CUASMRL_TRITON_DEPLOYCACHE_H

#include "cubin/Cubin.h"

#include <optional>
#include <string>
#include <vector>

namespace cuasmrl {
namespace support {
class FaultInjector;
} // namespace support
namespace triton {

/// Filesystem cache of optimized cubins.
///
/// Thread-safety: store()/load()/contains() may be called concurrently
/// from any number of threads (and processes sharing the directory).
/// store() is atomic — it writes a uniquely-named `.tmp` sibling and
/// renames it into place, so a reader can never observe a truncated
/// cubin and concurrent stores of one key resolve to one complete
/// winner (last rename wins).
class DeployCache {
public:
  /// \p Directory is created on first store. Construction sweeps
  /// orphaned `*.tmp.*` siblings a crashed store() may have left
  /// behind (crash between write and rename) — the atomic-rename
  /// protocol guarantees they are never a reader's source of truth,
  /// so deleting them is always safe.
  explicit DeployCache(std::string Directory);

  /// Wires deterministic fault injection behind store()/load(); null
  /// disables. Sites: "cache-store-fail:<key>" makes store() return
  /// false before touching the filesystem; "cache-load-corrupt:<key>"
  /// makes load() return nullopt as if the stored bytes failed to
  /// deserialize. Not thread-safe against concurrent store/load —
  /// wire it up before sharing the cache (the service does so at
  /// construction).
  void setFaultInjector(support::FaultInjector *Injector) {
    Faults = Injector;
  }

  /// Key convention: "<gpu>-<workload>-<config>" flattened to one file
  /// name (the paper prefixes GPU and workload type). Each component
  /// is sanitized to the filesystem-safe alphabet [A-Za-z0-9._-]
  /// independently, and a digest of the raw, length-delimited
  /// components is appended — so components containing the separator
  /// ("a-b","c" vs "a","b-c"), path characters ('/', '\\', ".."), or
  /// any other hostile bytes can neither collide with a different
  /// triple nor escape the cache directory.
  static std::string makeKey(const std::string &GpuType,
                             const std::string &Workload,
                             const std::string &Config);

  /// Writes the optimized cubin under \p Key. \returns false on I/O
  /// failure.
  bool store(const std::string &Key, const cubin::CubinFile &File);

  /// Deploy-time lookup: loads and decodes the cached cubin.
  std::optional<cubin::CubinFile> load(const std::string &Key) const;

  bool contains(const std::string &Key) const;

  /// Every key currently stored, sorted — stats/observability for the
  /// serving layer (a missing or empty directory yields an empty
  /// vector). Keys stored concurrently may or may not appear.
  std::vector<std::string> keys() const;

  /// Atomic (write-then-rename) sidecar of free-form metadata text
  /// next to \p Key's cubin — the serving layer records the request
  /// shape here so a later service instance can rebuild its near-miss
  /// index from the directory alone. \returns false on I/O failure.
  bool storeMeta(const std::string &Key, const std::string &Text);

  /// The sidecar text, or nullopt when absent/unreadable.
  std::optional<std::string> loadMeta(const std::string &Key) const;

  /// Deletes leftover `*.tmp.*` siblings (see the constructor) and
  /// returns how many were removed. Idempotent; also called from the
  /// constructor.
  unsigned sweepOrphanTmps();

private:
  std::string pathFor(const std::string &Key) const;
  std::string metaPathFor(const std::string &Key) const;
  std::string Directory;
  support::FaultInjector *Faults = nullptr; ///< Not owned; may be null.
};

} // namespace triton
} // namespace cuasmrl

#endif // CUASMRL_TRITON_DEPLOYCACHE_H

//===- triton/DeployCache.h - Offline search / deploy lookup (§4.2) ----------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's deployment workflow: "the best optimized cubin found
/// throughout the assembly game is written to the file system, prefixed
/// by GPU type, workload type etc., as the key to lookup. At deployment,
/// the key should be passed in, and it invokes a lookup process instead
/// of training" (§4.2). There is no runtime overhead — only offline
/// search time.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_TRITON_DEPLOYCACHE_H
#define CUASMRL_TRITON_DEPLOYCACHE_H

#include "cubin/Cubin.h"

#include <optional>
#include <string>
#include <vector>

namespace cuasmrl {
namespace triton {

/// Filesystem cache of optimized cubins.
///
/// Thread-safety: store()/load()/contains() may be called concurrently
/// from any number of threads (and processes sharing the directory).
/// store() is atomic — it writes a uniquely-named `.tmp` sibling and
/// renames it into place, so a reader can never observe a truncated
/// cubin and concurrent stores of one key resolve to one complete
/// winner (last rename wins).
class DeployCache {
public:
  /// \p Directory is created on first store.
  explicit DeployCache(std::string Directory);

  /// Key convention: "<gpu>-<workload>-<config>" flattened to one file
  /// name (the paper prefixes GPU and workload type). Each component
  /// is sanitized to the filesystem-safe alphabet [A-Za-z0-9._-]
  /// independently, and a digest of the raw, length-delimited
  /// components is appended — so components containing the separator
  /// ("a-b","c" vs "a","b-c"), path characters ('/', '\\', ".."), or
  /// any other hostile bytes can neither collide with a different
  /// triple nor escape the cache directory.
  static std::string makeKey(const std::string &GpuType,
                             const std::string &Workload,
                             const std::string &Config);

  /// Writes the optimized cubin under \p Key. \returns false on I/O
  /// failure.
  bool store(const std::string &Key, const cubin::CubinFile &File);

  /// Deploy-time lookup: loads and decodes the cached cubin.
  std::optional<cubin::CubinFile> load(const std::string &Key) const;

  bool contains(const std::string &Key) const;

  /// Every key currently stored, sorted — stats/observability for the
  /// serving layer (a missing or empty directory yields an empty
  /// vector). Keys stored concurrently may or may not appear.
  std::vector<std::string> keys() const;

private:
  std::string pathFor(const std::string &Key) const;
  std::string Directory;
};

} // namespace triton
} // namespace cuasmrl

#endif // CUASMRL_TRITON_DEPLOYCACHE_H

//===- triton/Autotuner.h - Kernel-configuration grid search (§3.1) ----------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The first level of the hierarchical search: "the autotuner employs a
/// grid search-like strategy, which enumerates user-provided kernel
/// configurations, compiles with the kernel configurations, measures the
/// execution throughput on the target GPU, and greedily selects as well
/// as caches the optimal set of kernel configurations" (§3.1).
///
/// The sweep engine is parallel *and* deterministic: every fitting
/// candidate is built and measured on a private copy of the device with
/// an Rng stream derived purely from (BaseSeed, request key, candidate
/// index), so the sweep result — winner, per-candidate timings, cached
/// AutotuneResult — is bit-identical for any worker count, including 1.
///
/// Thread-safety contract: every public member may be called
/// concurrently from any number of threads. tune()/sweepAll() give a
/// single-sweep-per-key guarantee mirroring gpusim::MeasurementCache:
/// when several threads miss on the same (kind, shape) simultaneously,
/// exactly one runs the sweep while the others block until its result
/// is published. The sweep itself runs outside the cache lock, so
/// distinct keys sweep in parallel. Pointers returned by cached() stay
/// valid for the Autotuner's lifetime and the pointed-to result is
/// immutable once published.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_TRITON_AUTOTUNER_H
#define CUASMRL_TRITON_AUTOTUNER_H

#include "gpusim/Measurement.h"
#include "kernels/Builder.h"
#include "support/Cancellation.h"

#include <condition_variable>
#include <map>
#include <mutex>

namespace cuasmrl {
namespace triton {

/// One measured configuration.
struct TunedConfig {
  kernels::TileConfig Config;
  double MeanUs = 0.0;
  bool Valid = false;
};

/// Result of one autotuning sweep.
struct AutotuneResult {
  kernels::TileConfig Best;
  double BestUs = 0.0;
  /// True when at least one candidate fit the shape and measured Valid.
  /// When false, Best/BestUs are meaningless (default config and the
  /// 1e30 sentinel) and callers must not deploy the winner.
  bool Valid = false;
  std::vector<TunedConfig> Sweep; ///< Every fitting configuration measured.
};

/// One workload to tune in a batch sweep.
struct SweepRequest {
  kernels::WorkloadKind Kind;
  kernels::WorkloadShape Shape;
};

/// Sweep-engine knobs.
struct AutotuneOptions {
  /// Measurement protocol per candidate.
  gpusim::MeasureConfig Measure;
  /// Worker threads building/measuring candidates; 1 = serial in the
  /// calling thread, 0 = hardware concurrency. Results are bit-identical
  /// for every value — this is a wall-clock knob only.
  unsigned Workers = 1;
  /// Root of every per-candidate data/noise stream. Two sweeps with the
  /// same BaseSeed produce bit-identical results.
  uint64_t BaseSeed = 7;
  /// Cooperative cancellation (not owned; may be null). Checked once
  /// per candidate — a tripped token unwinds the sweep with
  /// CancelledError, and the single-flight cache reclaims the claimed
  /// keys (never poisons them) exactly as for any other sweep failure.
  const support::CancelToken *Cancel = nullptr;
};

/// Grid-search autotuner with a per-(workload, shape) result cache.
class Autotuner {
public:
  explicit Autotuner(AutotuneOptions Options);
  explicit Autotuner(gpusim::MeasureConfig Measure = defaultMeasure());

  /// Enumerates candidateConfigs(Kind), measures each fitting one on a
  /// private copy of \p Device and returns (and caches) the fastest.
  /// Deterministic for any Options.Workers; blocks if another thread is
  /// already sweeping the same key, then returns its published result.
  AutotuneResult tune(const gpusim::Gpu &Device, kernels::WorkloadKind Kind,
                      const kernels::WorkloadShape &Shape);

  /// Source-compatibility overload for the pre-sweep-engine interface.
  /// \p DataRng is no longer consumed: candidate input streams derive
  /// from AutotuneOptions::BaseSeed so the cached result cannot depend
  /// on the caller's Rng state or call order.
  AutotuneResult tune(gpusim::Gpu &Device, kernels::WorkloadKind Kind,
                      const kernels::WorkloadShape &Shape, Rng &DataRng);

  /// Tunes a batch of workloads in one fan-out: every (request,
  /// candidate) pair its caller owns is measured concurrently across
  /// the worker pool (no per-request barrier). Results are returned in
  /// request order; duplicate (kind, shape) requests are swept once.
  std::vector<AutotuneResult>
  sweepAll(const gpusim::Gpu &Device,
           const std::vector<SweepRequest> &Requests);

  /// Cached result, if this (kind, shape) was tuned before. Returns
  /// null for in-flight sweeps; the pointer stays valid (and its target
  /// immutable) for the Autotuner's lifetime.
  const AutotuneResult *cached(kernels::WorkloadKind Kind,
                               const kernels::WorkloadShape &Shape) const;

  /// Number of grid sweeps actually executed (cache hits and duplicate
  /// requests excluded) — observability for the single-sweep guarantee.
  uint64_t sweepsPerformed() const;

  /// Canonical cache key for one (kind, shape) request; also the
  /// per-request component of the candidate seed derivation.
  static std::string requestKey(kernels::WorkloadKind Kind,
                                const kernels::WorkloadShape &Shape);

  /// The paper's measurement protocol scaled to the simulator: the real
  /// system averages 100 repetitions after 100 warm-ups.
  static gpusim::MeasureConfig defaultMeasure() {
    gpusim::MeasureConfig M;
    M.WarmupIters = 2;
    M.RepeatIters = 3;
    return M;
  }

private:
  struct Slot {
    AutotuneResult Result;
    bool Ready = false;
  };

  /// Measures one candidate on a private device copy. Pure function of
  /// (Device, Kind, Shape, Config, Seed) — safe to run concurrently.
  TunedConfig measureCandidate(const gpusim::Gpu &Device,
                               kernels::WorkloadKind Kind,
                               const kernels::WorkloadShape &Shape,
                               const kernels::TileConfig &Config,
                               uint64_t Seed) const;

  AutotuneOptions Options;
  mutable std::mutex Mutex;
  std::condition_variable Published;
  /// Claimed (in-flight) and published sweeps. Entries are only erased
  /// when a sweep fails with an exception (the key becomes reclaimable,
  /// mirroring MeasurementCache), so published results never move.
  std::map<std::string, Slot> Cache;
  uint64_t Sweeps = 0;
};

} // namespace triton
} // namespace cuasmrl

#endif // CUASMRL_TRITON_AUTOTUNER_H

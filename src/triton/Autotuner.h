//===- triton/Autotuner.h - Kernel-configuration grid search (§3.1) ----------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The first level of the hierarchical search: "the autotuner employs a
/// grid search-like strategy, which enumerates user-provided kernel
/// configurations, compiles with the kernel configurations, measures the
/// execution throughput on the target GPU, and greedily selects as well
/// as caches the optimal set of kernel configurations" (§3.1).
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_TRITON_AUTOTUNER_H
#define CUASMRL_TRITON_AUTOTUNER_H

#include "gpusim/Measurement.h"
#include "kernels/Builder.h"

#include <map>

namespace cuasmrl {
namespace triton {

/// One measured configuration.
struct TunedConfig {
  kernels::TileConfig Config;
  double MeanUs = 0.0;
  bool Valid = false;
};

/// Result of one autotuning sweep.
struct AutotuneResult {
  kernels::TileConfig Best;
  double BestUs = 0.0;
  std::vector<TunedConfig> Sweep; ///< Every configuration measured.
};

/// Grid-search autotuner with a per-(workload, shape) cache.
class Autotuner {
public:
  explicit Autotuner(gpusim::MeasureConfig Measure = defaultMeasure());

  /// Enumerates candidateConfigs(Kind), measures each fitting one on
  /// \p Device and returns (and caches) the fastest.
  AutotuneResult tune(gpusim::Gpu &Device, kernels::WorkloadKind Kind,
                      const kernels::WorkloadShape &Shape, Rng &DataRng);

  /// Cached result, if this (kind, shape) was tuned before.
  const AutotuneResult *cached(kernels::WorkloadKind Kind,
                               const kernels::WorkloadShape &Shape) const;

  /// The paper's measurement protocol scaled to the simulator: the real
  /// system averages 100 repetitions after 100 warm-ups.
  static gpusim::MeasureConfig defaultMeasure() {
    gpusim::MeasureConfig M;
    M.WarmupIters = 2;
    M.RepeatIters = 3;
    return M;
  }

private:
  static std::string cacheKey(kernels::WorkloadKind Kind,
                              const kernels::WorkloadShape &Shape);

  gpusim::MeasureConfig Measure;
  std::map<std::string, AutotuneResult> Cache;
};

} // namespace triton
} // namespace cuasmrl

#endif // CUASMRL_TRITON_AUTOTUNER_H

//===- triton/Pipeline.h - Compile / intercept / verify pipeline -------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §4.1 integration: the pipeline "reuses Triton's compilation
/// pipeline but extends the autotuner and intercepts the compiled
/// cubin. It then disassembles the cubin into SASS and extracts the
/// kernel section ... and substitutes the kernel section with the
/// optimized cubin". Probabilistic testing (randomized inputs compared
/// against reference outputs) is the sanity check on optimized kernels.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_TRITON_PIPELINE_H
#define CUASMRL_TRITON_PIPELINE_H

#include "cubin/Cubin.h"
#include "kernels/Builder.h"

namespace cuasmrl {
namespace triton {

/// A compiled kernel: the container plus the device-side buffers.
struct CompiledKernel {
  cubin::CubinFile Binary;
  kernels::BuiltKernel Runtime; ///< Buffers + launch (device state).
};

/// "Compiles" the workload for one configuration through the Triton
/// stand-in backend and packages the result as a cubin.
///
/// Thread-safety: like buildKernel (which this wraps), the only state
/// touched is \p Device and \p DataRng — concurrent compiles are safe
/// iff each caller owns both (the sweep engine hands every worker a
/// private Gpu copy).
CompiledKernel compileKernel(gpusim::Gpu &Device,
                             kernels::WorkloadKind Kind,
                             const kernels::WorkloadShape &Shape,
                             const kernels::TileConfig &Config,
                             Rng &DataRng);

/// Intercepts the binary: disassembles the kernel section back to SASS
/// (the schedule the RL agent mutates).
Expected<sass::Program> interceptCubin(const CompiledKernel &Kernel);

/// Substitutes the optimized schedule into the binary, preserving the
/// other sections, and points the runtime at it.
void substituteSchedule(CompiledKernel &Kernel,
                        const sass::Program &Optimized);

/// Probabilistic testing (§4.1): \p Rounds times, randomize the inputs,
/// run \p Candidate on the timed machine and the *original* schedule on
/// the architectural oracle, and compare output buffers bit-for-bit.
/// \returns true when every round matches.
bool probabilisticTest(gpusim::Gpu &Device,
                       const kernels::BuiltKernel &Runtime,
                       const sass::Program &Original,
                       const sass::Program &Candidate, unsigned Rounds,
                       Rng &DataRng);

} // namespace triton
} // namespace cuasmrl

#endif // CUASMRL_TRITON_PIPELINE_H

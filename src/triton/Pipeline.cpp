//===- triton/Pipeline.cpp ---------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "triton/Pipeline.h"

using namespace cuasmrl;
using namespace cuasmrl::triton;

CompiledKernel triton::compileKernel(gpusim::Gpu &Device,
                                     kernels::WorkloadKind Kind,
                                     const kernels::WorkloadShape &Shape,
                                     const kernels::TileConfig &Config,
                                     Rng &DataRng) {
  CompiledKernel Out;
  Out.Runtime = kernels::buildKernel(Device, Kind, Shape, Config,
                                     kernels::ScheduleStyle::TritonO3,
                                     DataRng);
  cubin::KernelInfo Info;
  Info.Name = Out.Runtime.Name;
  Info.GridX = Out.Runtime.Launch.GridX;
  Info.GridY = Out.Runtime.Launch.GridY;
  Info.GridZ = Out.Runtime.Launch.GridZ;
  Info.WarpsPerBlock = Out.Runtime.Launch.WarpsPerBlock;
  Info.SharedBytes = Out.Runtime.Launch.SharedBytes;
  Out.Binary = cubin::assemble(Out.Runtime.Prog, Info);
  return Out;
}

Expected<sass::Program> triton::interceptCubin(const CompiledKernel &K) {
  return cubin::disassemble(K.Binary);
}

void triton::substituteSchedule(CompiledKernel &K,
                                const sass::Program &Optimized) {
  cubin::replaceKernelSection(K.Binary, Optimized);
  K.Runtime.Prog = Optimized;
}

bool triton::probabilisticTest(gpusim::Gpu &Device,
                               const kernels::BuiltKernel &Runtime,
                               const sass::Program &Original,
                               const sass::Program &Candidate,
                               unsigned Rounds, Rng &DataRng) {
  for (unsigned Round = 0; Round < Rounds; ++Round) {
    // One seed per round drives two identical input streams so the
    // reference and the candidate see the same randomized data.
    uint64_t RoundSeed = DataRng.next();

    // Reference output: the unmodified -O3 schedule on the oracle.
    Rng RefStream(RoundSeed);
    Runtime.randomizeInputs(Device, RefStream);
    gpusim::RunResult Ref =
        Device.run(Original, Runtime.Launch, gpusim::RunMode::Oracle);
    if (!Ref.Valid)
      return false;
    std::vector<uint32_t> Expected = Runtime.readOutput(Device);

    // Candidate output: the optimized schedule on the timed
    // (hazard-faithful) machine, same inputs.
    Rng CandStream(RoundSeed);
    Runtime.randomizeInputs(Device, CandStream);
    gpusim::RunResult Got =
        Device.run(Candidate, Runtime.Launch, gpusim::RunMode::Timed);
    if (!Got.Valid)
      return false;
    if (Runtime.readOutput(Device) != Expected)
      return false;
  }
  return true;
}

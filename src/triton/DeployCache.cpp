//===- triton/DeployCache.cpp -----------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "triton/DeployCache.h"

#include "support/AtomicFile.h"
#include "support/FaultInjector.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace cuasmrl;
using namespace cuasmrl::triton;

DeployCache::DeployCache(std::string Dir) : Directory(std::move(Dir)) {
  // A crash between a store()'s write and its rename leaves a
  // `.tmp.<pid>.<n>` sibling behind; nothing ever reads one, so clear
  // them out before this instance starts producing its own.
  sweepOrphanTmps();
}

namespace {

/// Maps one key component onto the filesystem-safe alphabet. Lossy on
/// purpose (readability); injectivity comes from the digest suffix.
std::string sanitizeComponent(const std::string &Component) {
  std::string Out = Component;
  for (char &C : Out) {
    bool Safe = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                (C >= '0' && C <= '9') || C == '.' || C == '_' || C == '-';
    if (!Safe)
      C = '_';
  }
  return Out;
}

} // namespace

std::string DeployCache::makeKey(const std::string &GpuType,
                                 const std::string &Workload,
                                 const std::string &Config) {
  // The sanitized components keep the file name human-readable; the
  // digest over the raw components — each prefixed by its length so
  // ("a-b","c") and ("a","b-c") hash differently — makes the mapping
  // collision-free even where sanitization or the '-' separator is
  // ambiguous.
  std::string Raw;
  for (const std::string *Part : {&GpuType, &Workload, &Config}) {
    Raw += std::to_string(Part->size());
    Raw += ':';
    Raw += *Part;
  }
  char Digest[32];
  std::snprintf(Digest, sizeof(Digest), "%016llx",
                static_cast<unsigned long long>(fnv1a64(Raw)));
  return sanitizeComponent(GpuType) + "-" + sanitizeComponent(Workload) +
         "-" + sanitizeComponent(Config) + "-" + Digest;
}

std::string DeployCache::pathFor(const std::string &Key) const {
  return Directory + "/" + Key + ".cubin";
}

std::string DeployCache::metaPathFor(const std::string &Key) const {
  return Directory + "/" + Key + ".meta";
}

bool DeployCache::store(const std::string &Key,
                        const cubin::CubinFile &File) {
  // Injected failures fire before any filesystem effect: a "transient
  // I/O error" leaves no partial state behind, exactly like a real
  // failed open.
  if (Faults && Faults->shouldFail("cache-store-fail:" + Key))
    return false;
  std::error_code Ec;
  std::filesystem::create_directories(Directory, Ec);
  if (Ec)
    return false;
  std::vector<uint8_t> Bytes = File.serialize();
  return support::atomicWriteFile(pathFor(Key), Bytes.data(), Bytes.size());
}

std::optional<cubin::CubinFile>
DeployCache::load(const std::string &Key) const {
  std::ifstream IS(pathFor(Key), std::ios::binary);
  if (!IS)
    return std::nullopt;
  // An injected corruption behaves like a deserialize failure: the
  // file exists (contains() is true) but decodes to nothing — the
  // distinction the service's load-retry path keys on.
  if (Faults && Faults->shouldFail("cache-load-corrupt:" + Key))
    return std::nullopt;
  std::vector<uint8_t> Bytes(
      (std::istreambuf_iterator<char>(IS)),
      std::istreambuf_iterator<char>());
  Expected<cubin::CubinFile> File = cubin::CubinFile::deserialize(Bytes);
  if (!File)
    return std::nullopt;
  return File.takeValue();
}

bool DeployCache::storeMeta(const std::string &Key,
                            const std::string &Text) {
  std::error_code Ec;
  std::filesystem::create_directories(Directory, Ec);
  if (Ec)
    return false;
  return support::atomicWriteFile(metaPathFor(Key), Text);
}

std::optional<std::string>
DeployCache::loadMeta(const std::string &Key) const {
  std::ifstream IS(metaPathFor(Key), std::ios::binary);
  if (!IS)
    return std::nullopt;
  return std::string((std::istreambuf_iterator<char>(IS)),
                     std::istreambuf_iterator<char>());
}

unsigned DeployCache::sweepOrphanTmps() {
  return support::sweepOrphanTmpFiles(Directory);
}

bool DeployCache::contains(const std::string &Key) const {
  return std::filesystem::exists(pathFor(Key));
}

std::vector<std::string> DeployCache::keys() const {
  std::vector<std::string> Keys;
  std::error_code Ec;
  std::filesystem::directory_iterator It(Directory, Ec);
  if (Ec)
    return Keys;
  for (const std::filesystem::directory_entry &Entry : It) {
    std::string Name = Entry.path().filename().string();
    const std::string Ext = ".cubin";
    if (Name.size() > Ext.size() &&
        Name.compare(Name.size() - Ext.size(), Ext.size(), Ext) == 0)
      Keys.push_back(Name.substr(0, Name.size() - Ext.size()));
  }
  std::sort(Keys.begin(), Keys.end());
  return Keys;
}

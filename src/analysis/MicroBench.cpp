//===- analysis/MicroBench.cpp -------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "analysis/MicroBench.h"

#include "gpusim/Gpu.h"
#include "sass/Parser.h"
#include "sass/Program.h"

using namespace cuasmrl;
using namespace cuasmrl::analysis;

namespace {

/// A probe: one instruction line computing into a destination register
/// from the prepared inputs R4 (0x40000000 = 2.0f) and R5
/// (0x3f800000 = 1.0f).
struct Probe {
  const char *Key;
  const char *Line; ///< The producer, without control code.
  const char *DestReg;
  /// Optional consumer materializing a predicate result into DestReg
  /// (emitted directly after the producer; the hazard under test is the
  /// producer's stall count).
  const char *Consumer = nullptr;
};

// Probes follow the paper's recipe: start from a simple CUDA kernel's
// SASS and program the use-definition pair directly (§4.3).
const Probe Probes[] = {
    {"MOV", "MOV R15, 0x2a ;", "R15"},
    {"IADD3", "IADD3 R15, R4, R5, RZ ;", "R15"},
    {"IADD3.X", "IADD3.X R15, R4, R5, RZ, !PT ;", "R15"},
    {"IMAD.IADD", "IMAD.IADD R15, R4, 0x1, R5 ;", "R15"},
    {"IABS", "IABS R15, R4 ;", "R15"},
    {"IMAD", "IMAD R15, R4, R5, RZ ;", "R15"},
    {"FADD", "FADD R15, R4, R5 ;", "R15"},
    {"HADD2", "HADD2 R15, R4, R5 ;", "R15"},
    {"IMNMX", "IMNMX R15, R4, R5, PT ;", "R15"},
    {"SEL", "SEL R15, R4, R5, PT ;", "R15"},
    {"LEA", "LEA R15, R4, R5, 0x2 ;", "R15"},
    {"IMAD.WIDE", "IMAD.WIDE R14, R4, R5, RZ ;", "R14"},
    {"IMAD.WIDE.U32", "IMAD.WIDE.U32 R14, R4, R5, RZ ;", "R14"},
    {"LOP3", "LOP3.LUT R15, R4, R5, RZ, 0xc0, !PT ;", "R15"},
    {"SHF", "SHF.R.U32 R15, R4, 0x2, RZ ;", "R15"},
    {"POPC", "POPC R15, R4 ;", "R15"},
    {"FMUL", "FMUL R15, R4, R5 ;", "R15"},
    {"FFMA", "FFMA R15, R4, R5, RZ ;", "R15"},
    {"FSEL", "FSEL R15, R4, R5, PT ;", "R15"},
    {"FMNMX", "FMNMX R15, R4, R5, PT ;", "R15"},
    {"HMUL2", "HMUL2 R15, R4, R5 ;", "R15"},
    {"HFMA2", "HFMA2 R15, R4, R5, RZ ;", "R15"},
    {"HMMA", "HMMA.16816.F32 R15, R4, R5, RZ ;", "R15"},
    {"PRMT", "PRMT R15, R4, 0x5410, R5 ;", "R15"},
    {"MOV32I", "MOV32I R15, 0x2a ;", "R15"},
    // Predicate producers: consumed through SEL so the result is
    // observable in a general register.
    {"ISETP", "ISETP.GE.AND P0, PT, R4, R5, PT ;", "R15",
     "SEL R15, R4, R5, P0 ;"},
    {"FSETP", "FSETP.GT.AND P0, PT, R4, R5, PT ;", "R15",
     "SEL R15, R4, R5, P0 ;"},
};

const Probe *findProbe(const std::string &Key) {
  for (const Probe &P : Probes)
    if (Key == P.Key)
      return &P;
  return nullptr;
}

/// Builds the microbenchmark kernel: prologue loads the output pointer
/// and input values with conservative stalls, then the probe with the
/// candidate stall count, then a store of the probe's result.
std::string buildProbeKernel(const Probe &P, unsigned Stall) {
  char StallField[8];
  std::snprintf(StallField, sizeof(StallField), "S%02u", Stall);
  std::string Text;
  Text += "  [B------:R-:W-:-:S04] MOV R2, c[0x0][0x160] ;\n";
  Text += "  [B------:R-:W-:-:S04] MOV R3, c[0x0][0x164] ;\n";
  // Sentinel-poison the destinations: a too-small stall must store a
  // value observably different from the probe's result. Inputs are small
  // odd integers so that integer, logic, shift *and* float probes all
  // produce results distinct from both 0 and the sentinel.
  Text += "  [B------:R-:W-:-:S06] MOV R14, 0xbadc0de ;\n";
  Text += "  [B------:R-:W-:-:S06] MOV R15, 0xbadc0de ;\n";
  Text += "  [B------:R-:W-:-:S06] MOV R4, 0x9 ;\n";
  Text += "  [B------:R-:W-:-:S06] MOV R5, 0x7 ;\n";
  Text += std::string("  [B------:R-:W-:-:") + StallField + "] " + P.Line +
          "\n";
  if (P.Consumer)
    Text += std::string("  [B------:R-:W-:-:S05] ") + P.Consumer + "\n";
  Text += std::string("  [B------:R-:W-:-:S01] STG.E [R2.64], ") +
          P.DestReg + " ;\n";
  Text += "  [B------:R-:W-:-:S01] EXIT ;\n";
  return Text;
}

/// Runs one probe kernel; returns the stored word.
std::optional<uint32_t> runProbe(const std::string &Text,
                                 gpusim::RunMode Mode) {
  Expected<sass::Program> Prog = sass::Parser::parseProgram(Text, "probe");
  if (!Prog)
    return std::nullopt;
  gpusim::Gpu Device;
  uint64_t Out = Device.globalMemory().allocate(4);
  gpusim::KernelLaunch Launch;
  Launch.WarpsPerBlock = 1;
  Launch.addParam64(Out);
  gpusim::RunResult R = Device.run(*Prog, Launch, Mode);
  if (!R.Valid)
    return std::nullopt;
  return Device.globalMemory().readValue<uint32_t>(Out);
}

} // namespace

std::vector<std::string> analysis::microbenchableKeys() {
  std::vector<std::string> Keys;
  Keys.reserve(std::size(Probes));
  for (const Probe &P : Probes)
    Keys.emplace_back(P.Key);
  return Keys;
}

std::optional<unsigned>
analysis::dependencyStallCount(const std::string &Key) {
  const Probe *P = findProbe(Key);
  if (!P)
    return std::nullopt;

  // Architectural expectation from the oracle (stall value irrelevant).
  std::optional<uint32_t> Expected =
      runProbe(buildProbeKernel(*P, 15), gpusim::RunMode::Oracle);
  if (!Expected)
    return std::nullopt;

  // "Gradually lower the stall count until the output does not match."
  unsigned MinCorrect = 0;
  for (unsigned Stall = 15; Stall >= 1; --Stall) {
    std::optional<uint32_t> Got =
        runProbe(buildProbeKernel(*P, Stall), gpusim::RunMode::Timed);
    if (!Got || *Got != *Expected)
      break;
    MinCorrect = Stall;
  }
  if (MinCorrect == 0)
    return std::nullopt;
  return MinCorrect;
}

StallTable
analysis::microbenchmarkTable(const std::vector<std::string> &Keys) {
  StallTable Table;
  for (const std::string &Key : Keys)
    if (std::optional<unsigned> Cycles = dependencyStallCount(Key))
      Table.record(Key, *Cycles);
  return Table;
}

std::optional<double> analysis::clockBasedStall(const std::string &Key,
                                                unsigned SeqLen) {
  const Probe *P = findProbe(Key);
  if (!P || SeqLen == 0)
    return std::nullopt;

  // Clock-based recipe (paper Listing 7): CS2R; independent op sequence
  // (compiler-style short stalls); CS2R; subtract. There is no guarantee
  // the sequence *completed* when the second clock read issues.
  std::string Text;
  Text += "  [B------:R-:W-:-:S04] MOV R2, c[0x0][0x160] ;\n";
  Text += "  [B------:R-:W-:-:S04] MOV R3, c[0x0][0x164] ;\n";
  Text += "  [B------:R-:W-:-:S06] MOV R4, 0x40000000 ;\n";
  Text += "  [B------:R-:W-:-:S06] MOV R5, 0x3f800000 ;\n";
  Text += "  [B------:R-:W-:-:S02] CS2R R6, SR_CLOCKLO ;\n";
  for (unsigned I = 0; I < SeqLen; ++I)
    Text += std::string("  [B------:R-:W-:-:S02] ") + P->Line + "\n";
  Text += "  [B------:R-:W-:-:S02] CS2R R7, SR_CLOCKLO ;\n";
  Text += "  [B------:R-:W-:-:S04] IADD3 R7, R7, -R6, RZ ;\n";
  Text += "  [B------:R-:W-:-:S01] STG.E [R2.64], R7 ;\n";
  Text += "  [B------:R-:W-:-:S01] EXIT ;\n";

  std::optional<uint32_t> Delta = runProbe(Text, gpusim::RunMode::Timed);
  if (!Delta)
    return std::nullopt;
  return static_cast<double>(*Delta) / SeqLen;
}

//===- analysis/StallTable.h - Fixed-latency stall count knowledge -----------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The toolchain's knowledge of fixed-latency instruction stall counts
/// (paper §4.3, Table 1). The *built-in* table ships the values CuAsmRL
/// hard-codes after microbenchmarking common integer operations; the
/// microbench driver (MicroBench.h) re-derives them against the
/// simulated device, validating the methodology end-to-end.
///
/// This is deliberately separate from `sass::groundTruthLatency()` (what
/// the hardware actually does): the action masker must work from
/// *measured/inferred* knowledge exactly as the paper's system does.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_ANALYSIS_STALLTABLE_H
#define CUASMRL_ANALYSIS_STALLTABLE_H

#include <map>
#include <optional>
#include <string>

namespace cuasmrl {
namespace analysis {

/// Latency-key -> minimum stall count (cycles).
class StallTable {
public:
  StallTable() = default;

  /// The table the paper presents as Table 1: microbenchmarked stall
  /// counts for the common integer (and a few float) operations that
  /// dominate address calculation.
  static StallTable builtin();

  /// An empty table (for ablations: everything must be inferred).
  static StallTable empty() { return StallTable(); }

  /// Table 1 extended with every latency key the dependency-based
  /// microbench can measure (HMMA, FFMA, ISETP, ...). This is the
  /// §3.2 proposal — "build a stall count look-up table automatically" —
  /// realized against the simulated device; the result is cached
  /// process-wide (the measurements are deterministic).
  static const StallTable &extended();

  std::optional<unsigned> lookup(const std::string &Key) const {
    auto It = Entries.find(Key);
    if (It == Entries.end())
      return std::nullopt;
    return It->second;
  }

  /// Records \p Cycles for \p Key, keeping the minimum of repeated
  /// insertions (§3.2: "we take the minimum one").
  void record(const std::string &Key, unsigned Cycles) {
    auto [It, New] = Entries.emplace(Key, Cycles);
    if (!New && Cycles < It->second)
      It->second = Cycles;
  }

  size_t size() const { return Entries.size(); }
  const std::map<std::string, unsigned> &entries() const { return Entries; }

private:
  std::map<std::string, unsigned> Entries;
};

} // namespace analysis
} // namespace cuasmrl

#endif // CUASMRL_ANALYSIS_STALLTABLE_H

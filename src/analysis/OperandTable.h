//===- analysis/OperandTable.h - Embedding preparation tables ----------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pre-game pass that "prepares for embedding" (§3.2): a table
/// mapping operand registers to integers, a table mapping memory
/// locations to indices, and the maximum operand count in the file
/// (instructions with fewer operands are padded with dummy values during
/// embedding, §3.4).
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_ANALYSIS_OPERANDTABLE_H
#define CUASMRL_ANALYSIS_OPERANDTABLE_H

#include "sass/Program.h"

#include <map>
#include <string>

namespace cuasmrl {
namespace analysis {

/// Operand index tables for state embedding.
class OperandTable {
public:
  /// Builds tables from every operand in \p Prog.
  static OperandTable build(const sass::Program &Prog);

  /// Index of a register (by spelling), or -1 if unseen.
  int regIndex(const sass::Register &R) const;

  /// Index of a memory location (by full operand spelling, so distinct
  /// base+offset pairs are distinct locations), or -1 if unseen.
  int memIndex(const sass::Operand &Op) const;

  size_t numRegs() const { return RegToIndex.size(); }
  size_t numMems() const { return MemToIndex.size(); }
  size_t maxOperands() const { return MaxOperands; }

private:
  std::map<std::string, int> RegToIndex;
  std::map<std::string, int> MemToIndex;
  size_t MaxOperands = 0;
};

} // namespace analysis
} // namespace cuasmrl

#endif // CUASMRL_ANALYSIS_OPERANDTABLE_H

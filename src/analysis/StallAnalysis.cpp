//===- analysis/StallAnalysis.cpp ----------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "analysis/StallAnalysis.h"

#include <algorithm>

using namespace cuasmrl;
using namespace cuasmrl::analysis;

StallAnalysis analysis::analyzeStallCounts(const sass::Program &Prog,
                                           const StallTable &Table) {
  StallAnalysis Out;
  // Stall inference scans basic blocks: labels and control flow bound the
  // scan, but BAR.SYNC does not end a block (§3.2).
  RegionInfo Regions = computeRegions(Prog, BoundaryKind::Labels);

  for (size_t MemIdx = 0; MemIdx < Prog.size(); ++MemIdx) {
    const sass::Statement &S = Prog.stmt(MemIdx);
    if (!S.isInstr() || !S.instr().isMemory())
      continue;
    const sass::Instruction &Mem = S.instr();

    // Every source register of the memory instruction is one potential
    // stall-count dependency on a fixed-latency producer.
    for (sass::Register Use : Mem.regUses()) {
      if (Use.isUniform())
        continue; // The uniform datapath has no per-warp stall hazards.

      bool FoundDef = false;
      unsigned Accum = 0;
      for (size_t Prev = MemIdx; Prev-- > 0;) {
        if (!Regions.sameRegion(Prev, MemIdx))
          break; // Label or sync boundary: definition not visible.
        const sass::Instruction &Cand = Prog.stmt(Prev).instr();
        Accum += std::max<unsigned>(1, Cand.ctrl().stall());

        std::vector<sass::Register> Defs = Cand.regDefs();
        if (std::find(Defs.begin(), Defs.end(), Use) == Defs.end())
          continue;

        FoundDef = true;
        if (!Cand.isFixedLatency())
          break; // Variable latency: protected by scoreboard, not stalls.
        std::optional<std::string> Key = Cand.latencyKey();
        if (!Key)
          break;
        if (Table.lookup(*Key)) {
          ++Out.ResolvedByTable;
        } else {
          // Valid -O3 schedule: the observed distance bounds the true
          // latency from above; keep the minimum observation.
          Out.Inferred.record(*Key, Accum);
          ++Out.ResolvedByInference;
        }
        break;
      }

      if (!FoundDef && !Use.isPredicate()) {
        // Definition crosses a region boundary: unresolvable without
        // control-flow analysis -> denylist this memory instruction.
        ++Out.DenylistedDeps;
        Out.Denylist.insert(MemIdx);
      }
    }
  }
  return Out;
}

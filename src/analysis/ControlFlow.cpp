//===- analysis/ControlFlow.cpp ------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "analysis/ControlFlow.h"

using namespace cuasmrl;
using namespace cuasmrl::analysis;

bool analysis::isBoundary(const sass::Statement &S, BoundaryKind Kind) {
  if (S.isLabel())
    return true;
  const sass::Instruction &I = S.instr();
  if (I.isControlFlow())
    return true;
  return Kind == BoundaryKind::LabelsAndSync && I.isBarrierOrSync();
}

RegionInfo analysis::computeRegions(const sass::Program &Prog,
                                    BoundaryKind Kind) {
  RegionInfo Info;
  Info.RegionOf.assign(Prog.size(), RegionInfo::kBoundary);
  int Region = -1;
  bool Open = false;
  for (size_t I = 0; I < Prog.size(); ++I) {
    if (isBoundary(Prog.stmt(I), Kind)) {
      Open = false;
      continue;
    }
    if (!Open) {
      ++Region;
      Open = true;
    }
    Info.RegionOf[I] = Region;
  }
  Info.NumRegions = Region + 1;
  return Info;
}

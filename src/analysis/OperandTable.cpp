//===- analysis/OperandTable.cpp -----------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "analysis/OperandTable.h"

using namespace cuasmrl;
using namespace cuasmrl::analysis;

OperandTable OperandTable::build(const sass::Program &Prog) {
  OperandTable T;
  for (size_t I = 0; I < Prog.size(); ++I) {
    if (!Prog.stmt(I).isInstr())
      continue;
    const sass::Instruction &Instr = Prog.stmt(I).instr();
    T.MaxOperands = std::max(T.MaxOperands, Instr.operands().size());
    for (const sass::Operand &Op : Instr.operands()) {
      switch (Op.kind()) {
      case sass::Operand::Kind::Reg:
        T.RegToIndex.emplace(Op.baseReg().str(),
                             static_cast<int>(T.RegToIndex.size()));
        break;
      case sass::Operand::Kind::Mem:
      case sass::Operand::Kind::ConstMem:
        T.MemToIndex.emplace(Op.str(),
                             static_cast<int>(T.MemToIndex.size()));
        break;
      default:
        break;
      }
    }
  }
  return T;
}

int OperandTable::regIndex(const sass::Register &R) const {
  auto It = RegToIndex.find(R.str());
  return It == RegToIndex.end() ? -1 : It->second;
}

int OperandTable::memIndex(const sass::Operand &Op) const {
  auto It = MemToIndex.find(Op.str());
  return It == MemToIndex.end() ? -1 : It->second;
}

//===- analysis/MicroBench.h - Stall-count microbenchmarking -----------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §4.3 methodology, run against the simulated device:
///
///  - *Dependency-based*: program a use-definition pair in SASS, then
///    "gradually lower the stall count of the [producer] until the
///    output does not match the expected value" — the minimum correct
///    stall is the instruction's latency. Exact by construction.
///  - *Clock-based* (the prior-work approach the paper critiques):
///    bracket a sequence of independent instructions with CS2R clock
///    reads. Because nothing guarantees the sequence has *completed* at
///    the second read, this underestimates (paper: 2.6 cycles for IADD3
///    vs the true 4).
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_ANALYSIS_MICROBENCH_H
#define CUASMRL_ANALYSIS_MICROBENCH_H

#include "analysis/StallTable.h"

#include <optional>
#include <string>
#include <vector>

namespace cuasmrl {
namespace analysis {

/// Latency keys the probe generator can microbenchmark (a superset of
/// the paper's Table 1).
std::vector<std::string> microbenchableKeys();

/// Dependency-based measurement of one latency key. Returns the minimum
/// stall count that still produces the architecturally correct value, or
/// std::nullopt if the key has no probe template.
std::optional<unsigned> dependencyStallCount(const std::string &Key);

/// Runs dependencyStallCount over \p Keys and assembles a StallTable.
StallTable microbenchmarkTable(const std::vector<std::string> &Keys);

/// Clock-based average issue distance for \p Key over a sequence of
/// \p SeqLen independent instructions (returns cycles per instruction).
/// Underestimates the true hazard latency.
std::optional<double> clockBasedStall(const std::string &Key,
                                      unsigned SeqLen = 64);

} // namespace analysis
} // namespace cuasmrl

#endif // CUASMRL_ANALYSIS_MICROBENCH_H

//===- analysis/StallAnalysis.h - Pre-game stall-count inference -------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's pre-game static analysis pass (§3.2): for every memory
/// instruction, walk backwards through its reorder region looking for
/// the defining instruction of each source register.
///
///  - Definition found and its latency key is in the stall table:
///    dependency resolved by the table ("db" in Figure 7).
///  - Definition found, key unknown: the accumulated stall count between
///    the def-use pair is recorded as an *inferred* (over)estimate of
///    the instruction's latency — the original -O3 schedule is valid, so
///    the observed distance is >= the true latency ("infer-only").
///  - A label (region boundary) is reached before the definition: the
///    memory instruction joins the denylist and is permanently masked
///    out of the action space ("not resolved").
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_ANALYSIS_STALLANALYSIS_H
#define CUASMRL_ANALYSIS_STALLANALYSIS_H

#include "analysis/ControlFlow.h"
#include "analysis/StallTable.h"
#include "sass/Program.h"

#include <set>
#include <vector>

namespace cuasmrl {
namespace analysis {

/// Outcome of the pre-game pass.
struct StallAnalysis {
  /// Latency keys inferred from def-use distances (overestimates).
  StallTable Inferred;
  /// Statement indices of denylisted memory instructions.
  std::set<size_t> Denylist;

  /// \name Figure 7 statistics (counted per dependency pair)
  /// @{
  unsigned ResolvedByTable = 0;
  unsigned ResolvedByInference = 0;
  unsigned DenylistedDeps = 0;

  double totalDeps() const {
    return static_cast<double>(ResolvedByTable + ResolvedByInference +
                               DenylistedDeps);
  }
  double pctTable() const {
    return totalDeps() ? 100.0 * ResolvedByTable / totalDeps() : 0.0;
  }
  double pctInferred() const {
    return totalDeps() ? 100.0 * ResolvedByInference / totalDeps() : 0.0;
  }
  double pctDenylisted() const {
    return totalDeps() ? 100.0 * DenylistedDeps / totalDeps() : 0.0;
  }
  /// @}

  /// Best known minimum stall for a latency key: the table first, then
  /// the inferred estimate.
  std::optional<unsigned> resolve(const StallTable &Table,
                                  const std::string &Key) const {
    if (std::optional<unsigned> T = Table.lookup(Key))
      return T;
    return Inferred.lookup(Key);
  }
};

/// Runs the pass over \p Prog with knowledge \p Table.
StallAnalysis analyzeStallCounts(const sass::Program &Prog,
                                 const StallTable &Table);

} // namespace analysis
} // namespace cuasmrl

#endif // CUASMRL_ANALYSIS_STALLANALYSIS_H

//===- analysis/ControlFlow.h - Reordering regions / basic blocks -----------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Splits a kernel section into contiguous statement regions. Two region
/// notions are needed:
///
///  - *Basic blocks* (`BoundaryKind::Labels`): bounded by labels and
///    control-flow instructions. The stall-count inference pass scans
///    def-use pairs within these (§3.2: "the analysis takes place within
///    the same basic block").
///  - *Reorder regions* (`BoundaryKind::LabelsAndSync`): additionally
///    bounded by barrier/synchronization instructions. The action masker
///    only permits swaps inside these (§3.5: "we also prevent
///    instructions from moving across labels or any barrier/
///    synchronization instructions").
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_ANALYSIS_CONTROLFLOW_H
#define CUASMRL_ANALYSIS_CONTROLFLOW_H

#include "sass/Program.h"

#include <vector>

namespace cuasmrl {
namespace analysis {

/// Which statements terminate a region.
enum class BoundaryKind {
  Labels,        ///< Labels + control flow (basic blocks).
  LabelsAndSync, ///< Labels + control flow + barrier/sync (reordering).
};

/// Per-statement region assignment.
struct RegionInfo {
  /// Region id per statement; boundary statements carry kBoundary.
  std::vector<int> RegionOf;
  /// Number of regions.
  int NumRegions = 0;

  static constexpr int kBoundary = -1;

  /// True when statements \p A and \p B live in the same region (and
  /// neither is a boundary).
  bool sameRegion(size_t A, size_t B) const {
    return RegionOf[A] != kBoundary && RegionOf[A] == RegionOf[B];
  }
};

/// Computes regions of \p Prog under the given boundary rule.
RegionInfo computeRegions(const sass::Program &Prog,
                          BoundaryKind Kind = BoundaryKind::LabelsAndSync);

/// True when the statement terminates a region under \p Kind.
bool isBoundary(const sass::Statement &S, BoundaryKind Kind);

} // namespace analysis
} // namespace cuasmrl

#endif // CUASMRL_ANALYSIS_CONTROLFLOW_H

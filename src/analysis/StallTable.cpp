//===- analysis/StallTable.cpp --------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "analysis/StallTable.h"

#include "analysis/MicroBench.h"

using namespace cuasmrl;
using namespace cuasmrl::analysis;

StallTable StallTable::builtin() {
  // Paper Table 1 (A100). Common integer operations at 4 cycles,
  // multiply/wide and FP adds at 5.
  StallTable T;
  T.record("IADD3", 4);
  T.record("IMAD.IADD", 4);
  T.record("IADD3.X", 4);
  T.record("MOV", 4);
  T.record("IABS", 4);
  T.record("IMAD", 5);
  T.record("FADD", 5);
  T.record("HADD2", 5);
  T.record("IMNMX", 5);
  T.record("SEL", 5);
  T.record("LEA", 5);
  T.record("IMAD.WIDE", 5);
  T.record("IMAD.WIDE.U32", 5);
  return T;
}

const StallTable &StallTable::extended() {
  static const StallTable Table = [] {
    StallTable T = StallTable::builtin();
    // Keep the measured table alive through the loop (its entries() is a
    // reference into the object).
    StallTable Measured = microbenchmarkTable(microbenchableKeys());
    for (const auto &[Key, Cycles] : Measured.entries())
      if (!T.lookup(Key))
        T.record(Key, Cycles);
    return T;
  }();
  return Table;
}

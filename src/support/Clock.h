//===- support/Clock.h - Virtualized monotonic time -----------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The time source the serving layer reads: a tiny virtual clock over
/// std::chrono::steady_clock so deadlines, priority aging, backoff
/// sleeps, and injected slowness are all testable without wall-clock
/// waits. Production code uses Clock::real(); tests inject a FakeClock
/// whose time only moves when the test (or a sleeping worker) advances
/// it — which makes every deadline and backoff sequence deterministic
/// and instant.
///
/// Thread-safety: all members of both implementations may be called
/// concurrently from any number of threads.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_SUPPORT_CLOCK_H
#define CUASMRL_SUPPORT_CLOCK_H

#include <atomic>
#include <chrono>
#include <cstdint>

namespace cuasmrl {
namespace support {

/// Abstract monotonic time source.
class Clock {
public:
  using Duration = std::chrono::milliseconds;
  using TimePoint = std::chrono::steady_clock::time_point;

  virtual ~Clock() = default;

  /// Current monotonic time.
  virtual TimePoint now() const = 0;

  /// Blocks (or pretends to) for \p D. A fake clock advances its own
  /// time instead of sleeping, so code paths that "wait" — backoff,
  /// injected job slowness — run instantly under test.
  virtual void sleepFor(Duration D) = 0;

  /// The process-wide real clock (steady_clock + this_thread::sleep_for).
  static Clock &real();
};

/// Deterministic test clock: starts at an arbitrary fixed epoch and
/// moves only via advance() or sleepFor().
class FakeClock : public Clock {
public:
  FakeClock() = default;

  TimePoint now() const override {
    return Epoch + std::chrono::nanoseconds(OffsetNs.load());
  }

  /// sleepFor() advances the shared fake time and returns immediately.
  /// Every reader — other workers included — observes the jump, which
  /// is exactly what lets one "slow" job push a sibling past its
  /// deadline in a test without any real waiting.
  void sleepFor(Duration D) override { advance(D); }

  void advance(Duration D) {
    OffsetNs.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(D).count());
  }

private:
  static constexpr TimePoint Epoch{std::chrono::seconds(1'000'000)};
  std::atomic<int64_t> OffsetNs{0};
};

} // namespace support
} // namespace cuasmrl

#endif // CUASMRL_SUPPORT_CLOCK_H

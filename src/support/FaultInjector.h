//===- support/FaultInjector.h - Deterministic site-keyed fault plans -----===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for the serving stack. Production
/// code asks shouldFail(site) / delayMs(site) at named sites — the
/// convention is "<kind>:<qualifier>", e.g. "cache-store-fail:<key>",
/// "cache-load-corrupt:<key>", "job-throw:<key>", "job-slow:<key>",
/// "job-transient:<key>" — and tests (or the faulty bench scenario)
/// drive exact failure sequences against those sites:
///
///  - plan(site, {1,1,0})   : the site's first two checks fail, the
///                            third succeeds, later checks succeed;
///  - setRate(prefix, p)    : every site matching the prefix fails
///                            pseudo-randomly at rate p, pure in
///                            (Seed, site, per-site check index);
///  - planDelay(site, {ms}) : successive delayMs() calls pop the list.
///
/// Keying sites by request key makes a schedule worker-count
/// invariant: however many workers race, the job for key K performs
/// the same checks against "job-throw:K" in the same per-key order, so
/// the observed fault sequence — and every counter derived from it —
/// is identical for 1, 2, or 4 workers.
///
/// Thread-safety: every member may be called concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_SUPPORT_FAULTINJECTOR_H
#define CUASMRL_SUPPORT_FAULTINJECTOR_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace cuasmrl {
namespace support {

/// Seeded, site-keyed fault plan store.
class FaultInjector {
public:
  explicit FaultInjector(uint64_t Seed = 0) : Seed(Seed) {}

  /// Exact per-check outcomes for one site; checks beyond the schedule
  /// succeed. Replaces any previous plan for the site.
  void plan(const std::string &Site, std::vector<uint8_t> Schedule);

  /// Probabilistic failure for every site whose name starts with
  /// \p SitePrefix (exact plans win over rates). Deterministic: the
  /// outcome of a site's Nth check is pure in (Seed, site, N).
  void setRate(const std::string &SitePrefix, double Probability);

  /// Successive delayMs(Site) calls pop this list; 0 once exhausted.
  void planDelay(const std::string &Site, std::vector<uint64_t> DelaysMs);

  /// One fault decision at \p Site (counts the check; counts the
  /// firing when it returns true).
  bool shouldFail(const std::string &Site);

  /// Next planned delay for \p Site in milliseconds (0 = none).
  uint64_t delayMs(const std::string &Site);

  /// Per-site observability.
  uint64_t checks(const std::string &Site) const;
  uint64_t fired(const std::string &Site) const;

  /// Faults fired across all sites (delays excluded) — the service
  /// snapshots this into ServiceStats::FaultsInjected.
  uint64_t totalFired() const;
  uint64_t totalChecks() const;

private:
  struct SiteState {
    std::vector<uint8_t> Schedule; ///< Exact plan; empty = none.
    std::vector<uint64_t> Delays;  ///< Pending delays, pop-front order.
    uint64_t Checks = 0;
    uint64_t Fired = 0;
    size_t NextDelay = 0;
  };

  uint64_t Seed;
  mutable std::mutex Mutex;
  std::map<std::string, SiteState> Sites;
  std::vector<std::pair<std::string, double>> Rates;
};

} // namespace support
} // namespace cuasmrl

#endif // CUASMRL_SUPPORT_FAULTINJECTOR_H

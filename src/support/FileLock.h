//===- support/FileLock.h - Cross-process claim files ---------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Advisory cross-process claims over a shared directory, built from
/// the one primitive POSIX makes atomic on every filesystem:
/// open(O_CREAT | O_EXCL). A claim is a small file whose content is
/// the owner's token and whose mtime is the owner's heartbeat:
///
///   - tryClaim() atomically creates the file; exactly one process
///     wins per path.
///   - refresh() bumps the mtime — the owner's "still alive" beacon,
///     driven by a periodic heartbeat while the claimed work runs.
///   - A waiter polls age(): once the heartbeat is older than its
///     staleness budget the owner is presumed dead and breakStale()
///     removes the claim so the work can be retried.
///   - release() removes the file, but only when the stored token
///     matches — a waiter that just broke a stale claim and re-claimed
///     the path cannot be un-claimed by the late original owner.
///
/// This is the serving layer's cross-process single-flight: two
/// serve_daemon processes sharing one DeployCache directory claim
/// `<dir>/.claims/<key>.lock` before optimizing a key, so concurrent
/// identical requests across processes run exactly one job (see
/// docs/SERVING.md, "Claim protocol").
///
/// Heartbeats are wall-clock file mtimes — deliberately NOT routed
/// through support::Clock: the whole point is coordinating processes
/// that do not share an address space, let alone a FakeClock.
///
/// Thread-safety: all members are stateless statics over the
/// filesystem; safe from any number of threads and processes.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_SUPPORT_FILELOCK_H
#define CUASMRL_SUPPORT_FILELOCK_H

#include <chrono>
#include <optional>
#include <string>

namespace cuasmrl {
namespace support {

class FileLock {
public:
  /// A process-unique owner token: "<pid>-<counter>". Two claimants in
  /// one process (two services over one directory) get distinct
  /// tokens, so release() and refresh() stay ownership-checked even
  /// intra-process.
  static std::string makeToken();

  /// Atomically creates the claim file at \p Path (parent directories
  /// included) holding \p Token. \returns true when this call created
  /// it — the caller now owns the claim; false when it already exists
  /// (someone else owns it) or on I/O error.
  static bool tryClaim(const std::string &Path, const std::string &Token);

  /// Heartbeat: bumps the claim's mtime to now. \returns false when
  /// the file is gone or owned by a different token (the claim was
  /// broken as stale and possibly re-claimed) — the caller must treat
  /// its claimed work as no longer exclusive.
  static bool refresh(const std::string &Path, const std::string &Token);

  /// Removes the claim iff \p Token owns it. \returns true when this
  /// call unlinked the file.
  static bool release(const std::string &Path, const std::string &Token);

  /// The token stored in the claim file, or nullopt when absent.
  static std::optional<std::string> owner(const std::string &Path);

  /// Time since the last heartbeat (file mtime), or nullopt when the
  /// claim does not exist. Clamped at zero against mtime-vs-now clock
  /// skew.
  static std::optional<std::chrono::milliseconds>
  age(const std::string &Path);

  /// Removes the claim when its heartbeat is older than \p StaleAfter
  /// (a crashed owner never refreshes). \returns true when this call
  /// unlinked a stale claim.
  static bool breakStale(const std::string &Path,
                         std::chrono::milliseconds StaleAfter);
};

} // namespace support
} // namespace cuasmrl

#endif // CUASMRL_SUPPORT_FILELOCK_H

//===- support/ThreadPool.h - Fixed-size worker thread pool ------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool for the parallel rollout engine and the
/// autotune sweep engine. Deliberately minimal: FIFO task queue,
/// blocking wait-for-drain, and a parallelFor convenience that is the
/// only surface most callers need.
///
/// Thread-safety contract: submit(), wait() and parallelFor() may be
/// called from any single driver thread (they are mutually
/// thread-safe, but the pool is designed for one producer). Tasks run
/// concurrently on the worker threads and must synchronize any shared
/// state themselves. The destructor drains the queue, then joins every
/// worker; it must not be invoked from inside a task.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_SUPPORT_THREADPOOL_H
#define CUASMRL_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cuasmrl {
namespace support {

/// Fixed-size FIFO thread pool.
class ThreadPool {
public:
  /// Spawns \p Threads workers (clamped to >= 1).
  explicit ThreadPool(unsigned Threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned threadCount() const { return static_cast<unsigned>(Workers.size()); }

  /// Resolves a user-facing worker-count knob: 0 means hardware
  /// concurrency (at least 1); a nonzero \p TaskBound caps the result
  /// so callers never spawn more workers than they have tasks. Shared
  /// by every engine exposing a Workers knob (rollouts, autotune
  /// sweeps, the optimization service) so "0 = auto" means one thing.
  static unsigned resolveWorkerCount(unsigned Requested,
                                     size_t TaskBound = 0);

  /// Enqueues \p Task for asynchronous execution. \p Task must not
  /// throw: an exception escaping a directly submitted task leaves the
  /// worker's thread function and terminates the process. Use
  /// parallelFor for exception-safe batches — it catches per-index
  /// failures and rethrows the first one on the caller's thread.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished executing.
  void wait();

  /// Runs Fn(0) .. Fn(N-1) across the pool and blocks until all are
  /// done. If any invocation throws, the first exception (in completion
  /// order) is rethrown here after every index has been attempted.
  void parallelFor(size_t N, const std::function<void(size_t)> &Fn);

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::queue<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable HasWork;  ///< Signals workers.
  std::condition_variable AllIdle;  ///< Signals wait().
  size_t InFlight = 0;              ///< Queued + currently running.
  bool ShuttingDown = false;
};

} // namespace support
} // namespace cuasmrl

#endif // CUASMRL_SUPPORT_THREADPOOL_H

//===- support/Clock.cpp --------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/Clock.h"

#include <thread>

using namespace cuasmrl;
using namespace cuasmrl::support;

namespace {

class RealClock : public Clock {
public:
  TimePoint now() const override {
    return std::chrono::steady_clock::now();
  }
  void sleepFor(Duration D) override { std::this_thread::sleep_for(D); }
};

} // namespace

Clock &Clock::real() {
  static RealClock Instance;
  return Instance;
}

//===- support/FileLock.cpp ----------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/FileLock.h"

#include <atomic>
#include <cerrno>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <unistd.h>

using namespace cuasmrl;
using namespace cuasmrl::support;

std::string FileLock::makeToken() {
  static std::atomic<uint64_t> Counter{0};
  return std::to_string(static_cast<long long>(::getpid())) + "-" +
         std::to_string(Counter.fetch_add(1));
}

bool FileLock::tryClaim(const std::string &Path, const std::string &Token) {
  std::error_code Ec;
  std::filesystem::path Parent = std::filesystem::path(Path).parent_path();
  if (!Parent.empty())
    std::filesystem::create_directories(Parent, Ec);
  // O_EXCL is the atomicity primitive: of N concurrent claimants,
  // exactly one open() creates the file; everyone else sees EEXIST.
  int Fd = ::open(Path.c_str(), O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC,
                  0644);
  if (Fd < 0)
    return false;
  // A short or failed write leaves a claim that owner() cannot match;
  // it ages out via breakStale() like a crashed owner's would.
  ssize_t Written = ::write(Fd, Token.data(), Token.size());
  ::close(Fd);
  return Written == static_cast<ssize_t>(Token.size());
}

std::optional<std::string> FileLock::owner(const std::string &Path) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS)
    return std::nullopt;
  return std::string((std::istreambuf_iterator<char>(IS)),
                     std::istreambuf_iterator<char>());
}

bool FileLock::refresh(const std::string &Path, const std::string &Token) {
  std::optional<std::string> Owner = owner(Path);
  if (!Owner || *Owner != Token)
    return false;
  std::error_code Ec;
  std::filesystem::last_write_time(
      Path, std::filesystem::file_time_type::clock::now(), Ec);
  return !Ec;
}

bool FileLock::release(const std::string &Path, const std::string &Token) {
  // Ownership check first: a late original owner must not unlink a
  // claim a waiter broke as stale and re-created under its own token.
  // (The check-then-unlink window is benign for this advisory use: a
  // token matches at most one live claimant, who is the only caller
  // that would release it.)
  std::optional<std::string> Owner = owner(Path);
  if (!Owner || *Owner != Token)
    return false;
  std::error_code Ec;
  return std::filesystem::remove(Path, Ec) && !Ec;
}

std::optional<std::chrono::milliseconds>
FileLock::age(const std::string &Path) {
  std::error_code Ec;
  std::filesystem::file_time_type Mtime =
      std::filesystem::last_write_time(Path, Ec);
  if (Ec)
    return std::nullopt;
  auto Delta = std::filesystem::file_time_type::clock::now() - Mtime;
  auto Ms = std::chrono::duration_cast<std::chrono::milliseconds>(Delta);
  if (Ms.count() < 0)
    Ms = std::chrono::milliseconds(0);
  return Ms;
}

bool FileLock::breakStale(const std::string &Path,
                          std::chrono::milliseconds StaleAfter) {
  std::optional<std::chrono::milliseconds> Age = age(Path);
  if (!Age || *Age <= StaleAfter)
    return false;
  std::error_code Ec;
  return std::filesystem::remove(Path, Ec) && !Ec;
}

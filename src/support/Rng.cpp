//===- support/Rng.cpp ----------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

#include <cassert>
#include <cmath>

using namespace cuasmrl;

static uint64_t splitmix64Finalize(uint64_t Z) {
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

static uint64_t splitmix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ull;
  return splitmix64Finalize(X);
}

uint64_t cuasmrl::mixSeed(uint64_t Seed, uint64_t Key) {
  return splitmix64Finalize(Seed ^ (Key + 0x9e3779b97f4a7c15ull));
}

Rng::Rng(uint64_t Seed) {
  uint64_t S = Seed;
  for (uint64_t &Word : State)
    Word = splitmix64(S);
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::uniformInt(uint64_t Bound) {
  assert(Bound != 0 && "uniformInt bound must be nonzero");
  // Rejection sampling to avoid modulo bias.
  uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t R = next();
    if (R >= Threshold)
      return R % Bound;
  }
}

int64_t Rng::uniformRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  return Lo + static_cast<int64_t>(uniformInt(Span));
}

double Rng::uniformReal() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniformReal(double Lo, double Hi) {
  return Lo + (Hi - Lo) * uniformReal();
}

double Rng::normal() {
  if (HasSpareNormal) {
    HasSpareNormal = false;
    return SpareNormal;
  }
  double U1 = 0.0;
  do {
    U1 = uniformReal();
  } while (U1 <= 1e-300);
  double U2 = uniformReal();
  double R = std::sqrt(-2.0 * std::log(U1));
  double Theta = 2.0 * M_PI * U2;
  SpareNormal = R * std::sin(Theta);
  HasSpareNormal = true;
  return R * std::cos(Theta);
}

double Rng::normal(double Mean, double Stddev) {
  return Mean + Stddev * normal();
}

bool Rng::bernoulli(double P) { return uniformReal() < P; }

size_t Rng::categorical(const std::vector<double> &Weights) {
  assert(!Weights.empty() && "categorical over empty support");
  double Total = 0.0;
  for (double W : Weights) {
    assert(W >= 0.0 && "negative categorical weight");
    Total += W;
  }
  if (Total <= 0.0)
    return Weights.size() - 1;
  double Draw = uniformReal() * Total;
  double Accum = 0.0;
  for (size_t I = 0; I < Weights.size(); ++I) {
    Accum += Weights[I];
    if (Draw < Accum)
      return I;
  }
  return Weights.size() - 1;
}

Rng Rng::fork() { return Rng(next()); }

//===- support/Error.h - Lightweight recoverable-error types -------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal `Expected<T>`-style error handling. The library avoids
/// exceptions; fallible operations return `Expected<T>` carrying either a
/// value or a human-readable diagnostic string.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_SUPPORT_ERROR_H
#define CUASMRL_SUPPORT_ERROR_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace cuasmrl {

/// A diagnostic message describing why an operation failed.
///
/// Errors are plain value types; they carry a message and optionally the
/// (line, column) source location for parser diagnostics. Messages follow
/// the LLVM convention: lowercase first word, no trailing period.
class Error {
public:
  Error() = default;
  explicit Error(std::string Message) : Message(std::move(Message)) {}
  Error(std::string Message, unsigned Line, unsigned Column)
      : Message(std::move(Message)), Line(Line), Column(Column) {}

  const std::string &message() const { return Message; }
  unsigned line() const { return Line; }
  unsigned column() const { return Column; }

  /// Renders "line L, column C: message" when a location is attached.
  std::string str() const {
    if (Line == 0)
      return Message;
    return "line " + std::to_string(Line) + ", column " +
           std::to_string(Column) + ": " + Message;
  }

private:
  std::string Message;
  unsigned Line = 0;
  unsigned Column = 0;
};

/// Tagged union of a value and an Error.
///
/// Callers must check `operator bool` (or `hasValue`) before dereferencing.
/// Typical usage:
/// \code
///   Expected<Program> P = parseProgram(Text);
///   if (!P)
///     return P.takeError();
///   use(*P);
/// \endcode
template <typename T> class Expected {
public:
  Expected(T Value) : Value(std::move(Value)) {}
  Expected(Error E) : Err(std::move(E)) {}

  explicit operator bool() const { return Value.has_value(); }
  bool hasValue() const { return Value.has_value(); }

  T &operator*() {
    assert(Value && "dereferencing an errored Expected");
    return *Value;
  }
  const T &operator*() const {
    assert(Value && "dereferencing an errored Expected");
    return *Value;
  }
  T *operator->() {
    assert(Value && "dereferencing an errored Expected");
    return &*Value;
  }
  const T *operator->() const {
    assert(Value && "dereferencing an errored Expected");
    return &*Value;
  }

  /// Moves the contained value out; only valid when hasValue().
  T takeValue() {
    assert(Value && "taking value of an errored Expected");
    return std::move(*Value);
  }

  const Error &error() const {
    assert(!Value && "taking error of a valued Expected");
    return Err;
  }
  Error takeError() {
    assert(!Value && "taking error of a valued Expected");
    return std::move(Err);
  }

private:
  std::optional<T> Value;
  Error Err;
};

} // namespace cuasmrl

#endif // CUASMRL_SUPPORT_ERROR_H

//===- support/Cancellation.h - Cooperative cancellation ------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooperative cancellation for long-running optimize jobs. A
/// CancelToken carries an explicit cancel flag plus an optional
/// deadline against a support::Clock; workers poll it at cheap,
/// well-defined checkpoints — per PPO epoch, per autotune candidate,
/// per rollout slot — and a tripped checkpoint() unwinds with
/// CancelledError. The throw travels intact through
/// ThreadPool::parallelFor (which rethrows the first task exception on
/// the caller thread), so a deadline set at the service layer frees
/// its worker at the next checkpoint wherever the job happens to be.
///
/// The library otherwise avoids exceptions for recoverable errors
/// (support/Error.h); cancellation is the deliberate exception to the
/// rule because it must unwind through deep, layered call stacks that
/// have no error channel of their own — and the service already wraps
/// every job body in a catch.
///
/// Thread-safety: cancel()/cancelled()/checkpoint() may race freely.
/// setDeadline() must happen-before any concurrent reader (the service
/// sets it during admission, before the job is published to a worker).
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_SUPPORT_CANCELLATION_H
#define CUASMRL_SUPPORT_CANCELLATION_H

#include "support/Clock.h"

#include <atomic>
#include <stdexcept>

namespace cuasmrl {
namespace support {

/// Thrown by CancelToken::checkpoint() when the token tripped. The
/// serving layer maps it to Status::DeadlineExceeded.
class CancelledError : public std::runtime_error {
public:
  explicit CancelledError(const std::string &What = "operation cancelled")
      : std::runtime_error(What) {}
};

/// A retryable failure: callers that throw this signal "try again with
/// backoff" rather than "permanently failed". The service's job-retry
/// loop (and the fault injector's job-transient site) speak it.
class TransientError : public std::runtime_error {
public:
  explicit TransientError(const std::string &What)
      : std::runtime_error(What) {}
};

/// Manual-cancel flag + optional clock deadline.
class CancelToken {
public:
  CancelToken() = default;

  /// Arms the deadline. Not thread-safe against concurrent readers —
  /// call before sharing the token (see the file comment).
  void setDeadline(const Clock &C, Clock::TimePoint At) {
    ClockSrc = &C;
    Deadline = At;
    HasDeadline = true;
  }

  void cancel() { Flag.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    if (Flag.load(std::memory_order_relaxed))
      return true;
    return HasDeadline && ClockSrc->now() >= Deadline;
  }

  /// A cooperative checkpoint: counts the poll, throws CancelledError
  /// once the token tripped. The count is observability — tests bound
  /// cancellation latency in checkpoints, not wall time.
  void checkpoint() const {
    Checks.fetch_add(1, std::memory_order_relaxed);
    if (cancelled())
      throw CancelledError();
  }

  /// checkpoint() calls so far (including the one that threw).
  uint64_t checkpointsPassed() const {
    return Checks.load(std::memory_order_relaxed);
  }

private:
  std::atomic<bool> Flag{false};
  const Clock *ClockSrc = nullptr;
  Clock::TimePoint Deadline{};
  bool HasDeadline = false;
  mutable std::atomic<uint64_t> Checks{0};
};

} // namespace support
} // namespace cuasmrl

#endif // CUASMRL_SUPPORT_CANCELLATION_H

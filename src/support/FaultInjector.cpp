//===- support/FaultInjector.cpp ------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"

#include "support/Rng.h"
#include "support/StringUtils.h"

using namespace cuasmrl;
using namespace cuasmrl::support;

void FaultInjector::plan(const std::string &Site,
                         std::vector<uint8_t> Schedule) {
  std::lock_guard<std::mutex> Lock(Mutex);
  SiteState &S = Sites[Site];
  S.Schedule = std::move(Schedule);
}

void FaultInjector::setRate(const std::string &SitePrefix,
                            double Probability) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &[Prefix, Rate] : Rates) {
    if (Prefix == SitePrefix) {
      Rate = Probability;
      return;
    }
  }
  Rates.emplace_back(SitePrefix, Probability);
}

void FaultInjector::planDelay(const std::string &Site,
                              std::vector<uint64_t> DelaysMs) {
  std::lock_guard<std::mutex> Lock(Mutex);
  SiteState &S = Sites[Site];
  S.Delays = std::move(DelaysMs);
  S.NextDelay = 0;
}

bool FaultInjector::shouldFail(const std::string &Site) {
  std::lock_guard<std::mutex> Lock(Mutex);
  SiteState &S = Sites[Site];
  uint64_t Check = S.Checks++;
  bool Fail = false;
  if (Check < S.Schedule.size()) {
    Fail = S.Schedule[Check] != 0;
  } else {
    for (const auto &[Prefix, Rate] : Rates) {
      if (Site.compare(0, Prefix.size(), Prefix) != 0)
        continue;
      // One fresh stream per (seed, site, check): the outcome never
      // depends on which other sites were checked in between.
      Rng Draw(mixSeed(mixSeed(Seed, fnv1a64(Site)), Check));
      Fail = Draw.uniformReal() < Rate;
      break;
    }
  }
  if (Fail)
    ++S.Fired;
  return Fail;
}

uint64_t FaultInjector::delayMs(const std::string &Site) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Sites.find(Site);
  if (It == Sites.end() || It->second.NextDelay >= It->second.Delays.size())
    return 0;
  return It->second.Delays[It->second.NextDelay++];
}

uint64_t FaultInjector::checks(const std::string &Site) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Sites.find(Site);
  return It == Sites.end() ? 0 : It->second.Checks;
}

uint64_t FaultInjector::fired(const std::string &Site) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Sites.find(Site);
  return It == Sites.end() ? 0 : It->second.Fired;
}

uint64_t FaultInjector::totalFired() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  uint64_t Total = 0;
  for (const auto &[Site, S] : Sites)
    Total += S.Fired;
  return Total;
}

uint64_t FaultInjector::totalChecks() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  uint64_t Total = 0;
  for (const auto &[Site, S] : Sites)
    Total += S.Checks;
  return Total;
}

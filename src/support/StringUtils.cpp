//===- support/StringUtils.cpp --------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

using namespace cuasmrl;

std::vector<std::string> cuasmrl::split(std::string_view Text, char Sep) {
  std::vector<std::string> Out;
  size_t Start = 0;
  for (size_t I = 0; I <= Text.size(); ++I) {
    if (I == Text.size() || Text[I] == Sep) {
      Out.emplace_back(Text.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Out;
}

std::vector<std::string> cuasmrl::splitWhitespace(std::string_view Text) {
  std::vector<std::string> Out;
  size_t I = 0;
  while (I < Text.size()) {
    while (I < Text.size() && std::isspace(static_cast<unsigned char>(Text[I])))
      ++I;
    size_t Start = I;
    while (I < Text.size() &&
           !std::isspace(static_cast<unsigned char>(Text[I])))
      ++I;
    if (I > Start)
      Out.emplace_back(Text.substr(Start, I - Start));
  }
  return Out;
}

std::string_view cuasmrl::trim(std::string_view Text) {
  size_t Begin = 0;
  while (Begin < Text.size() &&
         std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  size_t End = Text.size();
  while (End > Begin &&
         std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

std::optional<int64_t> cuasmrl::parseInt(std::string_view Text) {
  Text = trim(Text);
  if (Text.empty())
    return std::nullopt;
  bool Negative = false;
  if (Text[0] == '-' || Text[0] == '+') {
    Negative = Text[0] == '-';
    Text.remove_prefix(1);
  }
  int Base = 10;
  if (startsWith(Text, "0x") || startsWith(Text, "0X")) {
    Base = 16;
    Text.remove_prefix(2);
  }
  if (Text.empty())
    return std::nullopt;
  int64_t Value = 0;
  auto [Ptr, Ec] =
      std::from_chars(Text.data(), Text.data() + Text.size(), Value, Base);
  if (Ec != std::errc() || Ptr != Text.data() + Text.size())
    return std::nullopt;
  return Negative ? -Value : Value;
}

std::optional<double> cuasmrl::parseDouble(std::string_view Text) {
  Text = trim(Text);
  if (Text.empty())
    return std::nullopt;
  std::string Buffer(Text);
  char *End = nullptr;
  double Value = std::strtod(Buffer.c_str(), &End);
  if (End != Buffer.c_str() + Buffer.size())
    return std::nullopt;
  return Value;
}

std::string cuasmrl::toUpper(std::string_view Text) {
  std::string Out(Text);
  for (char &C : Out)
    C = static_cast<char>(std::toupper(static_cast<unsigned char>(C)));
  return Out;
}

std::string cuasmrl::join(const std::vector<std::string> &Parts,
                          std::string_view Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string cuasmrl::formatDouble(double Value, int Precision) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Precision, Value);
  return Buffer;
}

uint64_t cuasmrl::fnv1a64(std::string_view Text) {
  uint64_t Hash = 0xcbf29ce484222325ull;
  for (char C : Text) {
    Hash ^= static_cast<unsigned char>(C);
    Hash *= 0x100000001b3ull;
  }
  return Hash;
}

//===- support/Logging.h - Leveled logging to a stream -------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny leveled logger. The RL trainer logs "training statistics such
/// as episodic rewards and the loss" (§3.7); the rest of the library logs
/// at Debug level only. Output is a caller-provided std::ostream so tests
/// can capture it.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_SUPPORT_LOGGING_H
#define CUASMRL_SUPPORT_LOGGING_H

#include <iosfwd>
#include <string>

namespace cuasmrl {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Err = 3, Off = 4 };

/// Process-wide logger with a pluggable sink.
class Logger {
public:
  /// Returns the singleton logger (defaults: Info level, stderr sink).
  static Logger &instance();

  void setLevel(LogLevel Level) { MinLevel = Level; }
  LogLevel level() const { return MinLevel; }

  /// Redirects output; pass nullptr to restore stderr.
  void setSink(std::ostream *Sink);

  void log(LogLevel Level, const std::string &Message);

private:
  Logger() = default;
  LogLevel MinLevel = LogLevel::Info;
  std::ostream *SinkStream = nullptr;
};

/// Convenience wrappers.
void logDebug(const std::string &Message);
void logInfo(const std::string &Message);
void logWarn(const std::string &Message);
void logError(const std::string &Message);

} // namespace cuasmrl

#endif // CUASMRL_SUPPORT_LOGGING_H

//===- support/ThreadPool.cpp ------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

using namespace cuasmrl;
using namespace cuasmrl::support;

unsigned ThreadPool::resolveWorkerCount(unsigned Requested,
                                        size_t TaskBound) {
  unsigned Count =
      Requested ? Requested
                : std::max(1u, std::thread::hardware_concurrency());
  if (TaskBound != 0)
    Count = static_cast<unsigned>(
        std::min<size_t>(Count, TaskBound));
  return std::max(1u, Count);
}

ThreadPool::ThreadPool(unsigned Threads) {
  unsigned Count = Threads ? Threads : 1;
  Workers.reserve(Count);
  for (unsigned I = 0; I < Count; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    AllIdle.wait(Lock, [this] { return InFlight == 0; });
    ShuttingDown = true;
  }
  HasWork.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push(std::move(Task));
    ++InFlight;
  }
  HasWork.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllIdle.wait(Lock, [this] { return InFlight == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      HasWork.wait(Lock,
                   [this] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty())
        return; // ShuttingDown and drained.
      Task = std::move(Queue.front());
      Queue.pop();
    }
    Task();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --InFlight;
    }
    AllIdle.notify_all();
  }
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  // One shared error slot: the first failure wins, later ones are
  // dropped (every index still runs so partial results stay coherent).
  struct ErrorSlot {
    std::mutex M;
    std::exception_ptr First;
  };
  auto Error = std::make_shared<ErrorSlot>();
  for (size_t I = 0; I < N; ++I) {
    submit([&Fn, I, Error] {
      try {
        Fn(I);
      } catch (...) {
        std::lock_guard<std::mutex> Lock(Error->M);
        if (!Error->First)
          Error->First = std::current_exception();
      }
    });
  }
  wait();
  if (Error->First)
    std::rethrow_exception(Error->First);
}

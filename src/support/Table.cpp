//===- support/Table.cpp --------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include "support/StringUtils.h"

#include <cassert>
#include <ostream>

using namespace cuasmrl;

Table::Table(std::vector<std::string> Header) : Header(std::move(Header)) {
  assert(!this->Header.empty() && "table needs at least one column");
}

void Table::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Header.size() && "row width mismatch");
  Rows.push_back(std::move(Row));
}

void Table::addRow(const std::string &Label,
                   const std::vector<double> &Values, int Precision) {
  std::vector<std::string> Row;
  Row.reserve(Values.size() + 1);
  Row.push_back(Label);
  for (double V : Values)
    Row.push_back(formatDouble(V, Precision));
  addRow(std::move(Row));
}

void Table::print(std::ostream &OS) const {
  std::vector<size_t> Widths(Header.size());
  for (size_t C = 0; C < Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C < Row.size(); ++C) {
      OS << Row[C];
      if (C + 1 != Row.size())
        OS << std::string(Widths[C] - Row[C].size() + 2, ' ');
    }
    OS << '\n';
  };

  PrintRow(Header);
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;
  OS << std::string(Total > 2 ? Total - 2 : Total, '-') << '\n';
  for (const auto &Row : Rows)
    PrintRow(Row);
}

void Table::printCsv(std::ostream &OS) const {
  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C < Row.size(); ++C) {
      if (C != 0)
        OS << ',';
      OS << Row[C];
    }
    OS << '\n';
  };
  PrintRow(Header);
  for (const auto &Row : Rows)
    PrintRow(Row);
}

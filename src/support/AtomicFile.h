//===- support/AtomicFile.h - Atomic write-then-rename files ----------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The atomic-persistence idiom shared by every on-disk store
/// (triton::DeployCache cubins and sidecars, serve::PolicyStore
/// checkpoints): write a uniquely-named `.tmp` sibling and rename it
/// into place, so the destination path only ever holds complete
/// contents — a reader can never observe a truncated file, and
/// concurrent writers of one path each produce a complete candidate
/// with last-rename-wins resolution. A crash between write and rename
/// leaves a `.tmp.<pid>.<n>` orphan that no protocol ever reads;
/// sweepOrphanTmpFiles() reclaims them.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_SUPPORT_ATOMICFILE_H
#define CUASMRL_SUPPORT_ATOMICFILE_H

#include <cstddef>
#include <string>

namespace cuasmrl {
namespace support {

/// Atomically replaces \p Path with \p Size bytes from \p Data: the
/// bytes land in a `.tmp.<pid>.<counter>` sibling first (the counter
/// is process-wide, so concurrent writers — in this process or another
/// one sharing the directory — never interleave into one temporary),
/// then a filesystem rename publishes them. \returns false on any I/O
/// failure; the temporary is removed and \p Path is untouched.
bool atomicWriteFile(const std::string &Path, const void *Data,
                     size_t Size);

/// Text/blob convenience overload.
bool atomicWriteFile(const std::string &Path, const std::string &Bytes);

/// Deletes leftover `*.tmp.*` siblings in \p Dir (see the file
/// comment) and returns how many were removed. A missing directory is
/// not an error — there is nothing to sweep. Idempotent.
unsigned sweepOrphanTmpFiles(const std::string &Dir);

} // namespace support
} // namespace cuasmrl

#endif // CUASMRL_SUPPORT_ATOMICFILE_H

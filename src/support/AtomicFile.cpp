//===- support/AtomicFile.cpp ------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/AtomicFile.h"

#include <atomic>
#include <filesystem>
#include <fstream>

#include <unistd.h>

using namespace cuasmrl;

bool support::atomicWriteFile(const std::string &Path, const void *Data,
                              size_t Size) {
  static std::atomic<uint64_t> TmpCounter{0};
  std::error_code Ec;
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid()) + "." +
                    std::to_string(TmpCounter.fetch_add(1));
  {
    std::ofstream OS(Tmp, std::ios::binary | std::ios::trunc);
    if (!OS)
      return false;
    OS.write(static_cast<const char *>(Data),
             static_cast<std::streamsize>(Size));
    if (!OS) {
      OS.close();
      std::filesystem::remove(Tmp, Ec);
      return false;
    }
  }
  std::filesystem::rename(Tmp, Path, Ec);
  if (Ec) {
    std::filesystem::remove(Tmp, Ec);
    return false;
  }
  return true;
}

bool support::atomicWriteFile(const std::string &Path,
                              const std::string &Bytes) {
  return atomicWriteFile(Path, Bytes.data(), Bytes.size());
}

unsigned support::sweepOrphanTmpFiles(const std::string &Dir) {
  unsigned Removed = 0;
  std::error_code Ec;
  std::filesystem::directory_iterator It(Dir, Ec);
  if (Ec)
    return 0; // Directory does not exist yet: nothing to sweep.
  for (const std::filesystem::directory_entry &Entry : It) {
    if (!Entry.is_regular_file(Ec))
      continue;
    std::string Name = Entry.path().filename().string();
    // Only files the write protocol names: "<final>.tmp.<pid>.<n>".
    if (Name.find(".tmp.") == std::string::npos)
      continue;
    std::filesystem::remove(Entry.path(), Ec);
    if (!Ec)
      ++Removed;
  }
  return Removed;
}

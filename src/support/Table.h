//===- support/Table.h - Aligned table / CSV emission --------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bench harnesses print the same rows the paper's tables and figures
/// report. `Table` collects rows of strings and renders them either as an
/// aligned monospace table (for terminals) or CSV (for plotting).
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_SUPPORT_TABLE_H
#define CUASMRL_SUPPORT_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace cuasmrl {

/// A rectangular table of strings with a header row.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Appends a row; must match the header width.
  void addRow(std::vector<std::string> Row);

  /// Convenience: formats doubles with the given precision.
  void addRow(const std::string &Label, const std::vector<double> &Values,
              int Precision = 3);

  size_t numRows() const { return Rows.size(); }
  size_t numColumns() const { return Header.size(); }

  /// Renders with space-aligned columns.
  void print(std::ostream &OS) const;

  /// Renders as CSV.
  void printCsv(std::ostream &OS) const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace cuasmrl

#endif // CUASMRL_SUPPORT_TABLE_H

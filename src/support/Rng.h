//===- support/Rng.h - Deterministic random number generation ------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded xoshiro256** generator with the sampling helpers the RL stack
/// and the workload generators need. Every stochastic component in the
/// library draws from an explicitly threaded Rng so runs are reproducible,
/// matching the paper's requirement that inference "can be seeded, so it
/// is deterministic and can be reproduced" (§5.7).
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_SUPPORT_RNG_H
#define CUASMRL_SUPPORT_RNG_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cuasmrl {

/// splitmix64-finalizer mix of two words: derives a well-separated
/// child seed as a pure function of (Seed, Key) — the primitive behind
/// every order-invariant seed derivation (per-env sampling streams,
/// per-schedule measurement noise).
uint64_t mixSeed(uint64_t Seed, uint64_t Key);

/// xoshiro256** 1.0 pseudo-random generator (public-domain algorithm by
/// Blackman & Vigna) seeded via splitmix64.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit draw.
  uint64_t next();

  /// Uniform integer in [0, Bound); Bound must be nonzero.
  uint64_t uniformInt(uint64_t Bound);

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t uniformRange(int64_t Lo, int64_t Hi);

  /// Uniform real in [0, 1).
  double uniformReal();

  /// Uniform real in [Lo, Hi).
  double uniformReal(double Lo, double Hi);

  /// Standard normal via Box-Muller.
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double Mean, double Stddev);

  /// Bernoulli draw with probability P of returning true.
  bool bernoulli(double P);

  /// Samples an index from an (unnormalized, nonnegative) weight vector.
  /// Returns the last index if weights sum to zero.
  size_t categorical(const std::vector<double> &Weights);

  /// Fisher-Yates shuffle.
  template <typename T> void shuffle(std::vector<T> &V) {
    if (V.empty())
      return;
    for (size_t I = V.size() - 1; I > 0; --I) {
      size_t J = uniformInt(I + 1);
      std::swap(V[I], V[J]);
    }
  }

  /// Derives an independent child generator (for per-episode streams).
  Rng fork();

private:
  uint64_t State[4];
  bool HasSpareNormal = false;
  double SpareNormal = 0.0;
};

} // namespace cuasmrl

#endif // CUASMRL_SUPPORT_RNG_H

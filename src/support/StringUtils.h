//===- support/StringUtils.h - Small string helpers ----------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String splitting/trimming/parsing helpers shared by the SASS lexer,
/// the bench harnesses and the deploy cache. Nothing here allocates more
/// than the obvious return values.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_SUPPORT_STRINGUTILS_H
#define CUASMRL_SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cuasmrl {

/// Splits \p Text on \p Sep, keeping empty fields.
std::vector<std::string> split(std::string_view Text, char Sep);

/// Splits on any whitespace run, dropping empty fields.
std::vector<std::string> splitWhitespace(std::string_view Text);

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view Text);

/// Parses a decimal or (0x-prefixed) hexadecimal integer.
std::optional<int64_t> parseInt(std::string_view Text);

/// Parses a floating point literal.
std::optional<double> parseDouble(std::string_view Text);

/// Uppercases ASCII.
std::string toUpper(std::string_view Text);

/// Joins \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts,
                 std::string_view Sep);

/// Formats a double with \p Precision digits after the point.
std::string formatDouble(double Value, int Precision);

/// FNV-1a 64-bit hash of \p Text. The shared primitive behind content
/// digests (deploy-cache keys, per-request seed derivations): stable
/// across platforms and runs, unlike std::hash.
uint64_t fnv1a64(std::string_view Text);

/// True if \p Text starts with \p Prefix (std helper for pre-C++20 call
/// sites kept for readability at call sites handling string_views).
inline bool startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.substr(0, Prefix.size()) == Prefix;
}

/// True if \p Text ends with \p Suffix.
inline bool endsWith(std::string_view Text, std::string_view Suffix) {
  return Text.size() >= Suffix.size() &&
         Text.substr(Text.size() - Suffix.size()) == Suffix;
}

} // namespace cuasmrl

#endif // CUASMRL_SUPPORT_STRINGUTILS_H

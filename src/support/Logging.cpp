//===- support/Logging.cpp ------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/Logging.h"

#include <iostream>

using namespace cuasmrl;

Logger &Logger::instance() {
  static Logger TheLogger;
  return TheLogger;
}

void Logger::setSink(std::ostream *Sink) { SinkStream = Sink; }

void Logger::log(LogLevel Level, const std::string &Message) {
  if (Level < MinLevel)
    return;
  static const char *Names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::ostream &OS = SinkStream ? *SinkStream : std::cerr;
  OS << "[" << Names[static_cast<int>(Level)] << "] " << Message << '\n';
}

void cuasmrl::logDebug(const std::string &Message) {
  Logger::instance().log(LogLevel::Debug, Message);
}
void cuasmrl::logInfo(const std::string &Message) {
  Logger::instance().log(LogLevel::Info, Message);
}
void cuasmrl::logWarn(const std::string &Message) {
  Logger::instance().log(LogLevel::Warn, Message);
}
void cuasmrl::logError(const std::string &Message) {
  Logger::instance().log(LogLevel::Err, Message);
}

//===- support/Retry.h - Seeded-jittered exponential backoff --------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The retry policy the serving layer applies to transient failures:
/// capped exponential backoff with deterministic jitter. The jitter
/// factor is a pure function of (Seed, key hash, attempt) via the same
/// mixSeed derivation every other seeded subsystem uses, so a retry
/// schedule is bit-reproducible — two runs of the same fault schedule
/// sleep the same milliseconds — while distinct keys still de-correlate
/// (no thundering herd on a shared deploy directory).
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_SUPPORT_RETRY_H
#define CUASMRL_SUPPORT_RETRY_H

#include "support/Rng.h"

#include <algorithm>
#include <chrono>
#include <cstdint>

namespace cuasmrl {
namespace support {

/// Attempt cap + backoff shape. MaxAttempts counts total tries, so
/// MaxAttempts = 3 means one initial try and up to two retries.
struct RetryPolicy {
  unsigned MaxAttempts = 3;
  std::chrono::milliseconds BaseDelay{10};
  double Multiplier = 2.0;
  /// Jitter half-width as a fraction of the exponential delay: the
  /// sleep is delay * [1 - Jitter, 1 + Jitter]. 0 disables jitter.
  double Jitter = 0.5;
  std::chrono::milliseconds MaxDelay{2000};
};

/// Backoff before retry number \p Attempt (1 = first retry).
/// Deterministic in (Policy, Attempt, Seed, KeyHash); clamped to
/// [0, Policy.MaxDelay].
inline std::chrono::milliseconds backoffDelay(const RetryPolicy &Policy,
                                              unsigned Attempt,
                                              uint64_t Seed,
                                              uint64_t KeyHash) {
  double Delay = static_cast<double>(Policy.BaseDelay.count());
  for (unsigned I = 1; I < Attempt; ++I)
    Delay *= Policy.Multiplier;
  if (Policy.Jitter > 0.0) {
    Rng JitterRng(mixSeed(mixSeed(Seed, KeyHash), Attempt));
    Delay *= 1.0 + Policy.Jitter * (2.0 * JitterRng.uniformReal() - 1.0);
  }
  double Cap = static_cast<double>(Policy.MaxDelay.count());
  Delay = std::clamp(Delay, 0.0, Cap);
  return std::chrono::milliseconds(static_cast<int64_t>(Delay));
}

} // namespace support
} // namespace cuasmrl

#endif // CUASMRL_SUPPORT_RETRY_H

//===- cubin/Cubin.cpp ----------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// Container layout (all little-endian):
///   header: magic u32, version u32, section count u32
///   info:   name (u16 len + bytes), grid x/y/z u32, warps u32, shared u32
///   per section: name (u16 len + bytes), data size u32, data bytes
///
/// Text-section statement encoding:
///   tag u8 (0 = label, 1 = instruction)
///   label:        strtab index u32
///   instruction:  opcode u8, control u32 (ControlCode::encode),
///                 guard u8 (bit0 present, bit1 negated, bits 4..6 index),
///                 modifier count u8 + strtab indices u32[],
///                 operand count u8 + operands
///   operand:      kind u8, flags u8 (wide|reuse|neg|not|abs|desc),
///                 then kind-specific payload (see encode/decodeOperand).
///
//===----------------------------------------------------------------------===//

#include "cubin/Cubin.h"

#include <cassert>
#include <cstring>
#include <map>

using namespace cuasmrl;
using namespace cuasmrl::cubin;

namespace {

//===----------------------------------------------------------------------===//
// Byte stream helpers
//===----------------------------------------------------------------------===//

class Writer {
public:
  explicit Writer(std::vector<uint8_t> &Out) : Out(Out) {}
  void u8(uint8_t V) { Out.push_back(V); }
  void u16(uint16_t V) { raw(&V, 2); }
  void u32(uint32_t V) { raw(&V, 4); }
  void u64(uint64_t V) { raw(&V, 8); }
  void f64(double V) { raw(&V, 8); }
  void str(const std::string &S) {
    u16(static_cast<uint16_t>(S.size()));
    raw(S.data(), S.size());
  }

private:
  void raw(const void *P, size_t N) {
    const uint8_t *B = static_cast<const uint8_t *>(P);
    Out.insert(Out.end(), B, B + N);
  }
  std::vector<uint8_t> &Out;
};

class Reader {
public:
  Reader(const std::vector<uint8_t> &In) : In(In) {}
  bool ok() const { return !Failed; }
  uint8_t u8() { return take<uint8_t>(); }
  uint16_t u16() { return take<uint16_t>(); }
  uint32_t u32() { return take<uint32_t>(); }
  uint64_t u64() { return take<uint64_t>(); }
  double f64() { return take<double>(); }
  std::string str() {
    uint16_t Len = u16();
    if (Pos + Len > In.size()) {
      Failed = true;
      return {};
    }
    std::string S(reinterpret_cast<const char *>(In.data() + Pos), Len);
    Pos += Len;
    return S;
  }
  std::vector<uint8_t> bytes(size_t N) {
    if (Pos + N > In.size()) {
      Failed = true;
      return {};
    }
    std::vector<uint8_t> B(In.begin() + Pos, In.begin() + Pos + N);
    Pos += N;
    return B;
  }
  bool atEnd() const { return Pos >= In.size(); }

private:
  template <typename T> T take() {
    T V{};
    if (Pos + sizeof(T) > In.size()) {
      Failed = true;
      return V;
    }
    std::memcpy(&V, In.data() + Pos, sizeof(T));
    Pos += sizeof(T);
    return V;
  }
  const std::vector<uint8_t> &In;
  size_t Pos = 0;
  bool Failed = false;
};

//===----------------------------------------------------------------------===//
// String table
//===----------------------------------------------------------------------===//

class StringTable {
public:
  uint32_t intern(const std::string &S) {
    auto [It, New] = Index.emplace(S, static_cast<uint32_t>(Strings.size()));
    if (New)
      Strings.push_back(S);
    return It->second;
  }
  const std::vector<std::string> &strings() const { return Strings; }

private:
  std::map<std::string, uint32_t> Index;
  std::vector<std::string> Strings;
};

//===----------------------------------------------------------------------===//
// Operand codec
//===----------------------------------------------------------------------===//

uint8_t operandFlags(const sass::Operand &Op) {
  uint8_t F = 0;
  F |= Op.isWide() ? 0x01 : 0;
  F |= Op.hasReuse() ? 0x02 : 0;
  F |= Op.isNegated() ? 0x04 : 0;
  F |= Op.isNot() ? 0x08 : 0;
  F |= Op.isAbs() ? 0x10 : 0;
  F |= Op.hasDesc() ? 0x20 : 0;
  return F;
}

void encodeReg(Writer &W, const sass::Register &R) {
  W.u8(static_cast<uint8_t>(R.regClass()));
  W.u16(static_cast<uint16_t>(R.index()));
}

sass::Register decodeReg(Reader &R) {
  uint8_t Class = R.u8();
  uint16_t Index = R.u16();
  return sass::Register(static_cast<sass::RegClass>(Class), Index);
}

void encodeOperand(Writer &W, StringTable &Strs, const sass::Operand &Op) {
  W.u8(static_cast<uint8_t>(Op.kind()));
  W.u8(operandFlags(Op));
  switch (Op.kind()) {
  case sass::Operand::Kind::Reg:
    encodeReg(W, Op.baseReg());
    break;
  case sass::Operand::Kind::Imm:
    W.u64(static_cast<uint64_t>(Op.immValue()));
    break;
  case sass::Operand::Kind::FloatImm:
    W.f64(Op.floatValue());
    break;
  case sass::Operand::Kind::ConstMem:
    W.u32(Op.constBank());
    W.u64(static_cast<uint64_t>(Op.constOffset()));
    break;
  case sass::Operand::Kind::Mem:
    encodeReg(W, Op.baseReg());
    if (Op.hasDesc())
      encodeReg(W, Op.descReg());
    W.u64(static_cast<uint64_t>(Op.memOffset()));
    break;
  case sass::Operand::Kind::Special:
  case sass::Operand::Kind::Label:
    W.u32(Strs.intern(Op.name()));
    break;
  }
}

sass::Operand decodeOperand(Reader &R,
                            const std::vector<std::string> &Strs) {
  auto Kind = static_cast<sass::Operand::Kind>(R.u8());
  uint8_t Flags = R.u8();
  sass::Operand Op;
  switch (Kind) {
  case sass::Operand::Kind::Reg:
    Op = sass::Operand::reg(decodeReg(R));
    break;
  case sass::Operand::Kind::Imm:
    Op = sass::Operand::imm(static_cast<int64_t>(R.u64()));
    break;
  case sass::Operand::Kind::FloatImm:
    Op = sass::Operand::floatImm(R.f64());
    break;
  case sass::Operand::Kind::ConstMem: {
    uint32_t Bank = R.u32();
    Op = sass::Operand::constMem(Bank, static_cast<int64_t>(R.u64()));
    break;
  }
  case sass::Operand::Kind::Mem: {
    sass::Register Base = decodeReg(R);
    sass::Register Desc;
    if (Flags & 0x20)
      Desc = decodeReg(R);
    Op = sass::Operand::mem(Base, static_cast<int64_t>(R.u64()));
    if (Flags & 0x20)
      Op.setDesc(Desc);
    break;
  }
  case sass::Operand::Kind::Special:
  case sass::Operand::Kind::Label: {
    uint32_t Idx = R.u32();
    std::string Name = Idx < Strs.size() ? Strs[Idx] : "";
    Op = Kind == sass::Operand::Kind::Special
             ? sass::Operand::special(std::move(Name))
             : sass::Operand::label(std::move(Name));
    break;
  }
  }
  Op.setWide(Flags & 0x01);
  Op.setReuse(Flags & 0x02);
  Op.setNegated(Flags & 0x04);
  Op.setNot(Flags & 0x08);
  Op.setAbs(Flags & 0x10);
  return Op;
}

} // namespace

//===----------------------------------------------------------------------===//
// CubinFile
//===----------------------------------------------------------------------===//

Section *CubinFile::findSection(const std::string &Name) {
  for (Section &S : Sections)
    if (S.Name == Name)
      return &S;
  return nullptr;
}

const Section *CubinFile::findSection(const std::string &Name) const {
  for (const Section &S : Sections)
    if (S.Name == Name)
      return &S;
  return nullptr;
}

Section &CubinFile::addSection(std::string Name) {
  if (Section *Existing = findSection(Name))
    return *Existing;
  Sections.push_back({std::move(Name), {}});
  return Sections.back();
}

std::vector<uint8_t> CubinFile::serialize() const {
  std::vector<uint8_t> Out;
  Writer W(Out);
  W.u32(Magic);
  W.u32(Version);
  W.str(Info.Name);
  W.u32(Info.GridX);
  W.u32(Info.GridY);
  W.u32(Info.GridZ);
  W.u32(Info.WarpsPerBlock);
  W.u32(Info.SharedBytes);
  W.u32(static_cast<uint32_t>(Sections.size()));
  for (const Section &S : Sections) {
    W.str(S.Name);
    W.u32(static_cast<uint32_t>(S.Data.size()));
    Out.insert(Out.end(), S.Data.begin(), S.Data.end());
  }
  return Out;
}

Expected<CubinFile>
CubinFile::deserialize(const std::vector<uint8_t> &Bytes) {
  Reader R(Bytes);
  if (R.u32() != Magic)
    return Error("bad cubin magic");
  if (R.u32() != Version)
    return Error("unsupported cubin version");
  CubinFile File;
  File.Info.Name = R.str();
  File.Info.GridX = R.u32();
  File.Info.GridY = R.u32();
  File.Info.GridZ = R.u32();
  File.Info.WarpsPerBlock = R.u32();
  File.Info.SharedBytes = R.u32();
  uint32_t Count = R.u32();
  for (uint32_t I = 0; I < Count && R.ok(); ++I) {
    Section S;
    S.Name = R.str();
    uint32_t Size = R.u32();
    S.Data = R.bytes(Size);
    File.Sections.push_back(std::move(S));
  }
  if (!R.ok())
    return Error("truncated cubin");
  return File;
}

//===----------------------------------------------------------------------===//
// Assemble / disassemble
//===----------------------------------------------------------------------===//

CubinFile cubin::assemble(const sass::Program &Prog,
                          const KernelInfo &Info) {
  CubinFile File;
  File.info() = Info;
  if (File.info().Name.empty())
    File.info().Name = Prog.name();

  StringTable Strs;
  std::vector<uint8_t> Text;
  Writer W(Text);
  W.u32(static_cast<uint32_t>(Prog.size()));
  for (size_t I = 0; I < Prog.size(); ++I) {
    const sass::Statement &S = Prog.stmt(I);
    if (S.isLabel()) {
      W.u8(0);
      W.u32(Strs.intern(S.label()));
      continue;
    }
    const sass::Instruction &Instr = S.instr();
    W.u8(1);
    W.u8(static_cast<uint8_t>(Instr.opcode()));
    W.u32(Instr.ctrl().encode());
    uint8_t Guard = 0;
    if (Instr.hasGuard()) {
      Guard = 0x01 | (Instr.guardNegated() ? 0x02 : 0) |
              (static_cast<uint8_t>(Instr.guardReg().index()) << 4);
    }
    W.u8(Guard);
    W.u8(static_cast<uint8_t>(Instr.modifiers().size()));
    for (const std::string &Mod : Instr.modifiers())
      W.u32(Strs.intern(Mod));
    W.u8(static_cast<uint8_t>(Instr.operands().size()));
    for (const sass::Operand &Op : Instr.operands())
      encodeOperand(W, Strs, Op);
  }

  // String table after the text so interning is complete.
  std::vector<uint8_t> StrTab;
  Writer SW(StrTab);
  SW.u32(static_cast<uint32_t>(Strs.strings().size()));
  for (const std::string &S : Strs.strings())
    SW.str(S);

  File.addSection(".text").Data = std::move(Text);
  File.addSection(".strtab").Data = std::move(StrTab);
  return File;
}

Expected<sass::Program> cubin::disassemble(const CubinFile &File) {
  const Section *Text = File.findSection(".text");
  const Section *StrTab = File.findSection(".strtab");
  if (!Text || !StrTab)
    return Error("cubin missing .text or .strtab section");

  std::vector<std::string> Strs;
  {
    Reader R(StrTab->Data);
    uint32_t Count = R.u32();
    for (uint32_t I = 0; I < Count && R.ok(); ++I)
      Strs.push_back(R.str());
    if (!R.ok())
      return Error("corrupt string table");
  }

  sass::Program Prog(File.info().Name);
  Reader R(Text->Data);
  uint32_t Count = R.u32();
  for (uint32_t I = 0; I < Count && R.ok(); ++I) {
    uint8_t Tag = R.u8();
    if (Tag == 0) {
      uint32_t Idx = R.u32();
      if (Idx >= Strs.size())
        return Error("label string index out of range");
      Prog.appendLabel(Strs[Idx]);
      continue;
    }
    if (Tag != 1)
      return Error("unknown statement tag in text section");
    sass::Instruction Instr;
    Instr.setOpcode(static_cast<sass::Opcode>(R.u8()));
    Instr.ctrl() = sass::ControlCode::decode(R.u32());
    uint8_t Guard = R.u8();
    if (Guard & 0x01)
      Instr.setGuard(sass::Register::predicate(Guard >> 4), Guard & 0x02);
    uint8_t NumMods = R.u8();
    for (uint8_t M = 0; M < NumMods; ++M) {
      uint32_t Idx = R.u32();
      if (Idx >= Strs.size())
        return Error("modifier string index out of range");
      Instr.modifiers().push_back(Strs[Idx]);
    }
    uint8_t NumOps = R.u8();
    for (uint8_t Op = 0; Op < NumOps; ++Op)
      Instr.operands().push_back(decodeOperand(R, Strs));
    Prog.appendInstr(std::move(Instr));
  }
  if (!R.ok())
    return Error("truncated text section");
  return Prog;
}

void cubin::replaceKernelSection(CubinFile &File,
                                 const sass::Program &NewProg) {
  CubinFile Fresh = assemble(NewProg, File.info());
  // Swap in the new text/strtab; every other section is preserved
  // verbatim (§4.1: symbol tables and ELF structure must survive).
  File.addSection(".text").Data =
      std::move(Fresh.findSection(".text")->Data);
  File.addSection(".strtab").Data =
      std::move(Fresh.findSection(".strtab")->Data);
}

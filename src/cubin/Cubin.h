//===- cubin/Cubin.h - Binary kernel container (cubin stand-in) --------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The binary artifact the pipeline intercepts, patches and reloads
/// (paper §4.1): an ELF-like container with a text section holding the
/// encoded kernel, a string table, and a metadata section carrying the
/// launch geometry ("the meta-information such as the symbol tables and
/// the ELF format must be preserved").
///
/// NVIDIA's real instruction encoding is undocumented; this container
/// defines its own deterministic encoding (see Encoding.h) and is
/// byte-exact round-trippable: assemble(disassemble(x)) == x.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_CUBIN_CUBIN_H
#define CUASMRL_CUBIN_CUBIN_H

#include "sass/Program.h"
#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cuasmrl {
namespace cubin {

/// Launch metadata carried beside the text section.
struct KernelInfo {
  std::string Name;
  uint32_t GridX = 1, GridY = 1, GridZ = 1;
  uint32_t WarpsPerBlock = 4;
  uint32_t SharedBytes = 0;
};

/// One section of the container.
struct Section {
  std::string Name; ///< ".text", ".strtab", ".info", ...
  std::vector<uint8_t> Data;
};

/// The container.
class CubinFile {
public:
  static constexpr uint32_t Magic = 0x4e425543; // "CUBN".
  static constexpr uint32_t Version = 1;

  CubinFile() = default;

  /// \name Sections
  /// @{
  Section *findSection(const std::string &Name);
  const Section *findSection(const std::string &Name) const;
  Section &addSection(std::string Name);
  const std::vector<Section> &sections() const { return Sections; }
  /// @}

  KernelInfo &info() { return Info; }
  const KernelInfo &info() const { return Info; }

  /// \name Byte-level serialization
  /// @{
  std::vector<uint8_t> serialize() const;
  static Expected<CubinFile> deserialize(const std::vector<uint8_t> &Bytes);
  /// @}

private:
  KernelInfo Info;
  std::vector<Section> Sections;
};

/// Encodes \p Prog (plus \p Info) into a container — the "assembler".
CubinFile assemble(const sass::Program &Prog, const KernelInfo &Info);

/// Decodes the container's text section back into SASS — the
/// "disassembler" the pipeline runs on intercepted cubins (§3.1).
Expected<sass::Program> disassemble(const CubinFile &File);

/// Replaces the kernel (text) section while preserving every other
/// section — the §4.1 substitution step.
void replaceKernelSection(CubinFile &File, const sass::Program &NewProg);

} // namespace cubin
} // namespace cuasmrl

#endif // CUASMRL_CUBIN_CUBIN_H

//===- search/Search.h - Non-RL schedule search baselines --------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The alternative search algorithms the paper discusses (§7): "it is
/// also possible to apply other search algorithms, such as evolutionary
/// search, to reschedule instructions. Evolutionary search does not need
/// training, however it may converge to local minima." All baselines
/// drive the same AssemblyGame environment the RL agent plays, so the
/// comparison isolates the search strategy.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_SEARCH_SEARCH_H
#define CUASMRL_SEARCH_SEARCH_H

#include "env/AssemblyGame.h"
#include "support/Rng.h"

namespace cuasmrl {
namespace search {

/// Outcome of one search run.
struct SearchResult {
  double InitialTimeUs = 0.0;
  double BestTimeUs = 0.0;
  unsigned StepsUsed = 0;
  /// Best-so-far time after every environment step (convergence curve).
  std::vector<double> BestCurve;

  double speedup() const {
    return BestTimeUs > 0 ? InitialTimeUs / BestTimeUs : 1.0;
  }
};

/// Uniform random legal actions, restarting each episode.
SearchResult randomSearch(env::AssemblyGame &Game, unsigned TotalSteps,
                          Rng &R);

/// Stochastic hill climbing: random legal action, revert unless it
/// improved the runtime. Converges to the nearest local minimum.
SearchResult greedySearch(env::AssemblyGame &Game, unsigned TotalSteps,
                          Rng &R);

/// (mu + lambda) evolutionary search over action sequences: individuals
/// are legal action strings replayed from the initial schedule; mutation
/// appends/perturbs actions. No training, but prone to local minima
/// (paper §7).
SearchResult evolutionarySearch(env::AssemblyGame &Game,
                                unsigned TotalSteps, Rng &R,
                                unsigned Population = 8,
                                unsigned EliteCount = 2);

} // namespace search
} // namespace cuasmrl

#endif // CUASMRL_SEARCH_SEARCH_H

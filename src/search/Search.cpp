//===- search/Search.cpp -----------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "search/Search.h"

#include <algorithm>

using namespace cuasmrl;
using namespace cuasmrl::search;
using env::AssemblyGame;

namespace {

/// Picks a uniformly random legal action, or nullopt when all masked.
std::optional<unsigned> randomLegal(const AssemblyGame &Game, Rng &R) {
  std::vector<uint8_t> Mask = Game.actionMask();
  std::vector<unsigned> Legal;
  for (unsigned A = 0; A < Mask.size(); ++A)
    if (Mask[A])
      Legal.push_back(A);
  if (Legal.empty())
    return std::nullopt;
  return Legal[R.uniformInt(Legal.size())];
}

/// The reverse of an action: flip the up/down bit. After `step(A)` the
/// moved instruction keeps its movable index, so A^1 undoes A.
unsigned reverseAction(unsigned Action) { return Action ^ 1u; }

} // namespace

SearchResult search::randomSearch(AssemblyGame &Game, unsigned TotalSteps,
                                  Rng &R) {
  SearchResult Res;
  Res.InitialTimeUs = Game.initialTimeUs();
  Game.reset();
  for (unsigned Step = 0; Step < TotalSteps; ++Step) {
    std::optional<unsigned> Action = randomLegal(Game, R);
    if (!Action) {
      Game.reset();
      continue;
    }
    AssemblyGame::StepResult S = Game.step(*Action);
    ++Res.StepsUsed;
    Res.BestCurve.push_back(Game.bestTimeUs());
    if (S.Done)
      Game.reset();
  }
  Res.BestTimeUs = Game.bestTimeUs();
  return Res;
}

SearchResult search::greedySearch(AssemblyGame &Game, unsigned TotalSteps,
                                  Rng &R) {
  SearchResult Res;
  Res.InitialTimeUs = Game.initialTimeUs();
  Game.reset();
  unsigned Stuck = 0;
  for (unsigned Step = 0; Step < TotalSteps; ++Step) {
    std::optional<unsigned> Action = randomLegal(Game, R);
    if (!Action)
      break;
    double Before = Game.currentTimeUs();
    AssemblyGame::StepResult S = Game.step(*Action);
    ++Res.StepsUsed;
    if (S.Invalid) {
      // The environment already rejected (reverted) the move; it is the
      // opposite of progress, so it must count toward the stuck
      // counter. Resetting here let a schedule at a local minimum that
      // keeps sampling invalid actions spin for the whole step budget.
      ++Stuck;
    } else if (Game.currentTimeUs() > Before) {
      // Revert a worsening move (hill climbing).
      Game.step(reverseAction(*Action));
      ++Res.StepsUsed;
      ++Stuck;
    } else {
      Stuck = 0;
    }
    Res.BestCurve.push_back(Game.bestTimeUs());
    if (Stuck > 64)
      break; // Local minimum: no single swap improves.
  }
  Res.BestTimeUs = Game.bestTimeUs();
  return Res;
}

SearchResult search::evolutionarySearch(AssemblyGame &Game,
                                        unsigned TotalSteps, Rng &R,
                                        unsigned Population,
                                        unsigned EliteCount) {
  SearchResult Res;
  Res.InitialTimeUs = Game.initialTimeUs();

  using Genome = std::vector<unsigned>;
  struct Individual {
    Genome Actions;
    double TimeUs;
  };

  // Replays a genome from the initial schedule; returns the resulting
  // runtime and truncates the genome at the first illegal action.
  auto Evaluate = [&](Genome &G) -> double {
    Game.reset();
    size_t Applied = 0;
    for (unsigned Action : G) {
      std::vector<uint8_t> Mask = Game.actionMask();
      if (Action >= Mask.size() || !Mask[Action])
        break;
      AssemblyGame::StepResult S = Game.step(Action);
      ++Res.StepsUsed;
      Res.BestCurve.push_back(Game.bestTimeUs());
      ++Applied;
      if (S.Done)
        break;
    }
    G.resize(Applied);
    return Game.currentTimeUs();
  };

  std::vector<Individual> Pop;
  for (unsigned I = 0; I < Population; ++I) {
    Genome G;
    for (int Len = R.uniformRange(1, 6); Len > 0; --Len)
      G.push_back(static_cast<unsigned>(
          R.uniformInt(std::max(1u, Game.actionCount()))));
    double T = Evaluate(G);
    Pop.push_back({std::move(G), T});
  }

  // Generations that apply zero environment steps (every offspring
  // truncates immediately, e.g. all actions masked at reset) leave
  // StepsUsed frozen — without a bail-out the while loop below spins
  // forever. One dry generation can also be bad luck with a
  // restrictive mask, so only a run of them terminates the search.
  constexpr unsigned MaxDryGenerations = 8;
  unsigned DryGenerations = 0;
  while (Res.StepsUsed < TotalSteps) {
    const unsigned StepsBefore = Res.StepsUsed;
    std::sort(Pop.begin(), Pop.end(),
              [](const Individual &A, const Individual &B) {
                return A.TimeUs < B.TimeUs;
              });
    // Offspring: mutate elites by appending / perturbing actions.
    for (unsigned I = EliteCount; I < Population; ++I) {
      Genome Child = Pop[R.uniformInt(EliteCount)].Actions;
      unsigned Mutations = 1 + static_cast<unsigned>(R.uniformInt(3));
      for (unsigned M = 0; M < Mutations; ++M) {
        unsigned A = static_cast<unsigned>(
            R.uniformInt(std::max(1u, Game.actionCount())));
        if (!Child.empty() && R.bernoulli(0.3))
          Child[R.uniformInt(Child.size())] = A;
        else
          Child.push_back(A);
      }
      double T = Evaluate(Child);
      Pop[I] = {std::move(Child), T};
      if (Res.StepsUsed >= TotalSteps)
        break;
    }
    if (Res.StepsUsed == StepsBefore) {
      if (++DryGenerations >= MaxDryGenerations)
        break; // No offspring applied a single action for a whole
               // run of generations: the game is effectively stuck.
    } else {
      DryGenerations = 0;
    }
  }

  Res.BestTimeUs = Game.bestTimeUs();
  return Res;
}

//===- stats/BenchReport.cpp - Versioned per-run benchmark record ---------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "stats/BenchReport.h"

#include <cstdio>
#include <ctime>

namespace cuasmrl {
namespace stats {

std::string isoTimestampUtcNow() {
  std::time_t Now = std::time(nullptr);
  std::tm Utc;
  gmtime_r(&Now, &Utc);
  char Buf[80];
  std::snprintf(Buf, sizeof(Buf), "%04d-%02d-%02dT%02d:%02d:%02dZ",
                Utc.tm_year + 1900, Utc.tm_mon + 1, Utc.tm_mday, Utc.tm_hour,
                Utc.tm_min, Utc.tm_sec);
  return Buf;
}

JsonValue countersToJson(const gpusim::PerfCounters &Counters) {
  JsonValue Obj = JsonValue::object();
  gpusim::visitCounters(Counters,
                        [&](const char *Name, const uint64_t &Value) {
                          Obj.set(Name, JsonValue(Value));
                        });
  return Obj;
}

gpusim::PerfCounters countersFromJson(const JsonValue &Obj) {
  gpusim::PerfCounters Counters;
  if (!Obj.isObject())
    return Counters;
  gpusim::visitCounters(Counters, [&](const char *Name, uint64_t &Value) {
    if (const JsonValue *V = Obj.find(Name); V && V->isNumber())
      Value = static_cast<uint64_t>(V->number());
  });
  return Counters;
}

JsonValue serviceStatsToJson(const serve::ServiceStats &Stats) {
  JsonValue Obj = JsonValue::object();
  serve::visitServiceCounters(Stats,
                              [&](const char *Name, const auto &Value) {
                                Obj.set(Name, JsonValue(Value));
                              });
  Obj.set("Counters", countersToJson(Stats.Counters));
  return Obj;
}

serve::ServiceStats serviceStatsFromJson(const JsonValue &Obj) {
  serve::ServiceStats Stats;
  if (!Obj.isObject())
    return Stats;
  serve::visitServiceCounters(Stats, [&](const char *Name, auto &Value) {
    if (const JsonValue *V = Obj.find(Name); V && V->isNumber())
      Value = static_cast<std::decay_t<decltype(Value)>>(V->number());
  });
  if (const JsonValue *C = Obj.find("Counters"))
    Stats.Counters = countersFromJson(*C);
  return Stats;
}

JsonValue netStatsToJson(const net::NetStats &Stats) {
  JsonValue Obj = JsonValue::object();
  net::visitNetCounters(Stats, [&](const char *Name, const auto &Value) {
    Obj.set(Name, JsonValue(Value));
  });
  return Obj;
}

net::NetStats netStatsFromJson(const JsonValue &Obj) {
  net::NetStats Stats;
  if (!Obj.isObject())
    return Stats;
  net::visitNetCounters(Stats, [&](const char *Name, auto &Value) {
    if (const JsonValue *V = Obj.find(Name); V && V->isNumber())
      Value = static_cast<std::decay_t<decltype(Value)>>(V->number());
  });
  return Stats;
}

void BenchReport::addMetric(std::string Name, double Value, std::string Unit,
                            bool HigherIsBetter) {
  for (Metric &M : Metrics)
    if (M.Name == Name) {
      M = {std::move(Name), Value, std::move(Unit), HigherIsBetter};
      return;
    }
  Metrics.push_back({std::move(Name), Value, std::move(Unit),
                     HigherIsBetter});
}

const Metric *BenchReport::findMetric(std::string_view Name) const {
  for (const Metric &M : Metrics)
    if (M.Name == Name)
      return &M;
  return nullptr;
}

JsonValue BenchReport::toJson() const {
  JsonValue Doc = JsonValue::object();
  Doc.set("schema_version", JsonValue(kSchemaVersion));
  Doc.set("bench", JsonValue(Bench));

  JsonValue MetaObj = JsonValue::object();
  MetaObj.set("git_sha", JsonValue(Meta.GitSha));
  MetaObj.set("build", JsonValue(Meta.Build));
  MetaObj.set("timestamp", JsonValue(Meta.Timestamp));
  MetaObj.set("hardware_threads", JsonValue(Meta.HardwareThreads));
  MetaObj.set("fast_mode", JsonValue(Meta.FastMode));
  Doc.set("meta", std::move(MetaObj));

  JsonValue MetricsObj = JsonValue::object();
  for (const Metric &M : Metrics) {
    JsonValue Entry = JsonValue::object();
    Entry.set("value", JsonValue(M.Value));
    Entry.set("unit", JsonValue(M.Unit));
    Entry.set("higher_is_better", JsonValue(M.HigherIsBetter));
    MetricsObj.set(M.Name, std::move(Entry));
  }
  Doc.set("metrics", std::move(MetricsObj));

  if (SimCounters)
    Doc.set("sim_counters", countersToJson(*SimCounters));
  if (Service)
    Doc.set("service_stats", serviceStatsToJson(*Service));
  if (Net)
    Doc.set("net_stats", netStatsToJson(*Net));
  if (Extra)
    Doc.set("extra", *Extra);
  return Doc;
}

std::string BenchReport::serialize() const { return toJson().dump(2) + "\n"; }

Expected<BenchReport> BenchReport::fromJson(const JsonValue &Doc) {
  if (!Doc.isObject())
    return Expected<BenchReport>(Error("report is not a JSON object"));

  const JsonValue *Version = Doc.find("schema_version");
  if (!Version || !Version->isNumber())
    return Expected<BenchReport>(
        Error("report has no numeric schema_version"));
  if (static_cast<int64_t>(Version->number()) != kSchemaVersion)
    return Expected<BenchReport>(Error(
        "unsupported schema_version " +
        std::to_string(static_cast<int64_t>(Version->number())) +
        " (this build reads version " + std::to_string(kSchemaVersion) +
        ")"));

  BenchReport Rep;
  if (const JsonValue *B = Doc.find("bench"); B && B->isString())
    Rep.Bench = B->str();

  if (const JsonValue *M = Doc.find("meta"); M && M->isObject()) {
    if (const JsonValue *V = M->find("git_sha"); V && V->isString())
      Rep.Meta.GitSha = V->str();
    if (const JsonValue *V = M->find("build"); V && V->isString())
      Rep.Meta.Build = V->str();
    if (const JsonValue *V = M->find("timestamp"); V && V->isString())
      Rep.Meta.Timestamp = V->str();
    if (const JsonValue *V = M->find("hardware_threads"); V && V->isNumber())
      Rep.Meta.HardwareThreads = static_cast<unsigned>(V->number());
    if (const JsonValue *V = M->find("fast_mode"); V && V->isBool())
      Rep.Meta.FastMode = V->boolean();
  }

  const JsonValue *MetricsObj = Doc.find("metrics");
  if (!MetricsObj || !MetricsObj->isObject())
    return Expected<BenchReport>(Error("report has no metrics object"));
  for (const JsonValue::Member &M : MetricsObj->members()) {
    if (!M.second.isObject())
      return Expected<BenchReport>(
          Error("metric '" + M.first + "' is not an object"));
    const JsonValue *Value = M.second.find("value");
    if (!Value || !Value->isNumber())
      return Expected<BenchReport>(
          Error("metric '" + M.first + "' has no numeric value"));
    Metric Out;
    Out.Name = M.first;
    Out.Value = Value->number();
    if (const JsonValue *U = M.second.find("unit"); U && U->isString())
      Out.Unit = U->str();
    if (const JsonValue *H = M.second.find("higher_is_better");
        H && H->isBool())
      Out.HigherIsBetter = H->boolean();
    Rep.Metrics.push_back(std::move(Out));
  }

  if (const JsonValue *C = Doc.find("sim_counters"); C && C->isObject())
    Rep.SimCounters = countersFromJson(*C);
  if (const JsonValue *S = Doc.find("service_stats"); S && S->isObject())
    Rep.Service = serviceStatsFromJson(*S);
  if (const JsonValue *N = Doc.find("net_stats"); N && N->isObject())
    Rep.Net = netStatsFromJson(*N);
  if (const JsonValue *E = Doc.find("extra"); E && E->isObject())
    Rep.Extra = *E;
  return Expected<BenchReport>(std::move(Rep));
}

Expected<BenchReport> BenchReport::parse(std::string_view Text) {
  Expected<JsonValue> Doc = JsonValue::parse(Text);
  if (!Doc)
    return Expected<BenchReport>(Doc.takeError());
  return fromJson(*Doc);
}

} // namespace stats
} // namespace cuasmrl

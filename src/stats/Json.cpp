//===- stats/Json.cpp - Minimal JSON value model --------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "stats/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cuasmrl {
namespace stats {

const JsonValue *JsonValue::find(std::string_view Key) const {
  for (const Member &M : Obj)
    if (M.first == Key)
      return &M.second;
  return nullptr;
}

JsonValue &JsonValue::set(std::string Key, JsonValue Value) {
  for (Member &M : Obj)
    if (M.first == Key) {
      M.second = std::move(Value);
      return M.second;
    }
  Obj.emplace_back(std::move(Key), std::move(Value));
  return Obj.back().second;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {

void escapeString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void printNumber(std::string &Out, double V, bool IntLike) {
  if (!std::isfinite(V)) {
    Out += "null"; // JSON has no NaN/Infinity.
    return;
  }
  char Buf[40];
  if (IntLike && V == std::floor(V) && std::fabs(V) < 9.007199254740992e15) {
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
    Out += Buf;
    return;
  }
  // Shortest representation that parses back exactly: try 15
  // significant digits, fall back to 17 (always lossless for double).
  std::snprintf(Buf, sizeof(Buf), "%.15g", V);
  if (std::strtod(Buf, nullptr) != V)
    std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  Out += Buf;
}

} // namespace

void JsonValue::dumpTo(std::string &Out, unsigned Indent,
                       unsigned Depth) const {
  auto Newline = [&](unsigned Levels) {
    if (Indent == 0)
      return;
    Out += '\n';
    Out.append(static_cast<size_t>(Indent) * Levels, ' ');
  };

  switch (K) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += Flag ? "true" : "false";
    break;
  case Kind::Number:
    printNumber(Out, Num, IntLike);
    break;
  case Kind::String:
    escapeString(Out, Str);
    break;
  case Kind::Array:
    if (Arr.empty()) {
      Out += "[]";
      break;
    }
    Out += '[';
    for (size_t I = 0; I < Arr.size(); ++I) {
      if (I)
        Out += Indent ? "," : ", ";
      Newline(Depth + 1);
      Arr[I].dumpTo(Out, Indent, Depth + 1);
    }
    Newline(Depth);
    Out += ']';
    break;
  case Kind::Object:
    if (Obj.empty()) {
      Out += "{}";
      break;
    }
    Out += '{';
    for (size_t I = 0; I < Obj.size(); ++I) {
      if (I)
        Out += Indent ? "," : ", ";
      Newline(Depth + 1);
      escapeString(Out, Obj[I].first);
      Out += ": ";
      Obj[I].second.dumpTo(Out, Indent, Depth + 1);
    }
    Newline(Depth);
    Out += '}';
    break;
  }
}

std::string JsonValue::dump(unsigned Indent) const {
  std::string Out;
  dumpTo(Out, Indent, 0);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace {

/// Recursive-descent parser over a string_view. Errors carry the byte
/// offset (the documents here are machine-written single reports, so
/// offset beats maintaining line/column state).
class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  Expected<JsonValue> run() {
    Expected<JsonValue> V = parseValue();
    if (!V)
      return V;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing content after JSON document");
    return V;
  }

private:
  Error makeError(const std::string &Message) const {
    return Error(Message + " at offset " + std::to_string(Pos));
  }
  Expected<JsonValue> fail(const std::string &Message) const {
    return Expected<JsonValue>(makeError(Message));
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool consumeWord(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) == Word) {
      Pos += Word.size();
      return true;
    }
    return false;
  }

  Expected<JsonValue> parseValue() {
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return parseObject();
    if (C == '[')
      return parseArray();
    if (C == '"') {
      Expected<std::string> S = parseString();
      if (!S)
        return Expected<JsonValue>(S.takeError());
      return Expected<JsonValue>(JsonValue(S.takeValue()));
    }
    if (consumeWord("true"))
      return Expected<JsonValue>(JsonValue(true));
    if (consumeWord("false"))
      return Expected<JsonValue>(JsonValue(false));
    if (consumeWord("null"))
      return Expected<JsonValue>(JsonValue());
    if (C == '-' || (C >= '0' && C <= '9'))
      return parseNumber();
    return fail(std::string("unexpected character '") + C + "'");
  }

  Expected<JsonValue> parseNumber() {
    size_t Start = Pos;
    bool IntLike = true;
    if (consume('-')) {
    }
    while (Pos < Text.size() && std::isdigit(static_cast<unsigned char>(
                                    Text[Pos])))
      ++Pos;
    if (consume('.')) {
      IntLike = false;
      while (Pos < Text.size() && std::isdigit(static_cast<unsigned char>(
                                      Text[Pos])))
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      IntLike = false;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      while (Pos < Text.size() && std::isdigit(static_cast<unsigned char>(
                                      Text[Pos])))
        ++Pos;
    }
    std::string Token(Text.substr(Start, Pos - Start));
    char *End = nullptr;
    double V = std::strtod(Token.c_str(), &End);
    if (End != Token.c_str() + Token.size() || Token.empty() ||
        Token == "-")
      return fail("malformed number '" + Token + "'");
    JsonValue Out(V);
    if (IntLike)
      Out = JsonValue(static_cast<int64_t>(V));
    // Integer literals beyond int64 precision still parse; keep the
    // exact double in that case.
    if (IntLike && static_cast<double>(static_cast<int64_t>(V)) != V)
      Out = JsonValue(V);
    return Expected<JsonValue>(std::move(Out));
  }

  Expected<std::string> parseString() {
    if (!consume('"'))
      return Expected<std::string>(makeError("expected '\"'"));
    std::string Out;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return Expected<std::string>(std::move(Out));
      if (static_cast<unsigned char>(C) < 0x20)
        return Expected<std::string>(
            makeError("unescaped control character in string"));
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return Expected<std::string>(makeError("truncated \\u escape"));
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return Expected<std::string>(
                makeError("bad hex digit in \\u escape"));
        }
        // UTF-8 encode the BMP code point (surrogate pairs are not
        // produced by this repo's writers; a lone surrogate encodes
        // as-is).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return Expected<std::string>(
            makeError(std::string("bad escape '\\") + E + "'"));
      }
    }
    return Expected<std::string>(makeError("unterminated string"));
  }

  Expected<JsonValue> parseArray() {
    consume('[');
    JsonValue Out = JsonValue::array();
    skipWs();
    if (consume(']'))
      return Expected<JsonValue>(std::move(Out));
    while (true) {
      Expected<JsonValue> V = parseValue();
      if (!V)
        return V;
      Out.push(V.takeValue());
      skipWs();
      if (consume(']'))
        return Expected<JsonValue>(std::move(Out));
      if (!consume(','))
        return fail("expected ',' or ']' in array");
    }
  }

  Expected<JsonValue> parseObject() {
    consume('{');
    JsonValue Out = JsonValue::object();
    skipWs();
    if (consume('}'))
      return Expected<JsonValue>(std::move(Out));
    while (true) {
      skipWs();
      Expected<std::string> Key = parseString();
      if (!Key)
        return Expected<JsonValue>(Key.takeError());
      skipWs();
      if (!consume(':'))
        return fail("expected ':' after object key");
      Expected<JsonValue> V = parseValue();
      if (!V)
        return V;
      Out.set(Key.takeValue(), V.takeValue());
      skipWs();
      if (consume('}'))
        return Expected<JsonValue>(std::move(Out));
      if (!consume(','))
        return fail("expected ',' or '}' in object");
    }
  }

  std::string_view Text;
  size_t Pos = 0;
};

} // namespace

Expected<JsonValue> JsonValue::parse(std::string_view Text) {
  return Parser(Text).run();
}

} // namespace stats
} // namespace cuasmrl

//===- stats/Json.h - Minimal JSON value model ----------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free JSON document model: a tagged value type
/// with insertion-ordered objects, a recursive-descent parser and a
/// deterministic serializer. This is the wire format of the stats
/// subsystem — BenchReport files, snapshot-log lines — so the design
/// goals are stability (identical input produces byte-identical
/// output; key order is insertion order, never hash order) and
/// fidelity (integer-valued numbers round-trip without a decimal
/// point, so counter values compare exactly across a
/// serialize/parse cycle).
///
/// Not a general-purpose JSON library: no comments, no NaN/Infinity
/// extensions (non-finite doubles serialize as null), and numbers are
/// stored as double (64-bit counters above 2^53 would lose precision —
/// far beyond any simulated-cycle count this repo produces).
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_STATS_JSON_H
#define CUASMRL_STATS_JSON_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cuasmrl {
namespace stats {

/// One JSON value (null / bool / number / string / array / object).
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;
  JsonValue(bool Value) : K(Kind::Bool), Flag(Value) {}
  JsonValue(double Value) : K(Kind::Number), Num(Value) {}
  JsonValue(int Value)
      : K(Kind::Number), Num(static_cast<double>(Value)), IntLike(true) {}
  JsonValue(unsigned Value)
      : K(Kind::Number), Num(static_cast<double>(Value)), IntLike(true) {}
  JsonValue(int64_t Value)
      : K(Kind::Number), Num(static_cast<double>(Value)), IntLike(true) {}
  JsonValue(uint64_t Value)
      : K(Kind::Number), Num(static_cast<double>(Value)), IntLike(true) {}
  JsonValue(std::string Value) : K(Kind::String), Str(std::move(Value)) {}
  JsonValue(const char *Value) : K(Kind::String), Str(Value) {}

  static JsonValue array() {
    JsonValue V;
    V.K = Kind::Array;
    return V;
  }
  static JsonValue object() {
    JsonValue V;
    V.K = Kind::Object;
    return V;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool boolean() const { return Flag; }
  double number() const { return Num; }
  /// True when the number was written/parsed as an integer literal
  /// (drives decimal-point-free serialization of counters).
  bool intLike() const { return IntLike; }
  const std::string &str() const { return Str; }

  /// \name Array access
  /// @{
  size_t size() const {
    return K == Kind::Array ? Arr.size() : Obj.size();
  }
  const JsonValue &at(size_t I) const { return Arr[I]; }
  void push(JsonValue Value) { Arr.push_back(std::move(Value)); }
  const std::vector<JsonValue> &items() const { return Arr; }
  /// @}

  /// \name Object access (insertion-ordered)
  /// @{
  const JsonValue *find(std::string_view Key) const;
  /// Appends, or replaces an existing member of the same key in place.
  JsonValue &set(std::string Key, JsonValue Value);
  const std::vector<Member> &members() const { return Obj; }
  /// @}

  /// Serializes deterministically. \p Indent 0 emits one compact line
  /// (snapshot-log lines); a positive indent pretty-prints with that
  /// many spaces per level (report files). A trailing newline is never
  /// emitted — callers append one per document/line.
  std::string dump(unsigned Indent = 0) const;

  /// Parses one JSON document; trailing non-whitespace is an error.
  static Expected<JsonValue> parse(std::string_view Text);

private:
  void dumpTo(std::string &Out, unsigned Indent, unsigned Depth) const;

  Kind K = Kind::Null;
  bool Flag = false;
  double Num = 0.0;
  bool IntLike = false;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::vector<Member> Obj;
};

} // namespace stats
} // namespace cuasmrl

#endif // CUASMRL_STATS_JSON_H

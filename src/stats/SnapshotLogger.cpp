//===- stats/SnapshotLogger.cpp - Periodic live-stats JSONL logger --------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "stats/SnapshotLogger.h"

#include <utility>

namespace cuasmrl {
namespace stats {

StatsSnapshotLogger::StatsSnapshotLogger(Provider Provider, Config Config)
    : Sample(std::move(Provider)), Cfg(std::move(Config)),
      StartTime(std::chrono::steady_clock::now()) {}

StatsSnapshotLogger::~StatsSnapshotLogger() { stop(); }

void StatsSnapshotLogger::setSink(std::ostream *NewSink) {
  std::lock_guard<std::mutex> IoLock(IoMu);
  Sink = NewSink;
}

bool StatsSnapshotLogger::start() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Running)
    return false;
  {
    std::lock_guard<std::mutex> IoLock(IoMu);
    if (!Sink && !File.is_open()) {
      File.open(Cfg.Path, std::ios::app);
      if (!File.is_open())
        return false;
    }
  }
  StartTime = std::chrono::steady_clock::now();
  ShouldStop = false;
  Running = true;
  ++Gen;
  // A racing stop() may still be joining the previous worker; its
  // thread object was moved out, so this assignment is safe, and the
  // generation bump above guarantees the old loop exits.
  Worker = std::thread([this, MyGen = Gen] { threadMain(MyGen); });
  return true;
}

void StatsSnapshotLogger::stop() {
  std::thread ToJoin;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (!Running)
      return;
    Running = false;
    ShouldStop = true;
    ToJoin = std::move(Worker);
  }
  Cv.notify_all();
  if (ToJoin.joinable())
    ToJoin.join();
  std::lock_guard<std::mutex> IoLock(IoMu);
  if (File.is_open()) {
    File.flush();
    File.close();
  } else if (Sink) {
    Sink->flush();
  }
}

bool StatsSnapshotLogger::running() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Running;
}

void StatsSnapshotLogger::logNow() { writeSnapshot(); }

uint64_t StatsSnapshotLogger::snapshotsWritten() const {
  std::lock_guard<std::mutex> IoLock(IoMu);
  return Written;
}

void StatsSnapshotLogger::threadMain(uint64_t MyGen) {
  std::unique_lock<std::mutex> Lock(Mu);
  auto Expired = [&] { return ShouldStop || Gen != MyGen; };
  while (!Expired()) {
    if (Cv.wait_for(Lock, Cfg.Interval, Expired))
      break;
    Lock.unlock();
    writeSnapshot();
    Lock.lock();
  }
  Lock.unlock();
  // Terminal snapshot: the log always ends with the final state even
  // when stop() arrives mid-interval.
  writeSnapshot();
}

void StatsSnapshotLogger::writeSnapshot() {
  // Sample outside the writer lock; the provider may itself take locks
  // (e.g. the service stats mutex).
  JsonValue Stats = Sample ? Sample() : JsonValue::object();
  std::chrono::steady_clock::time_point T0;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    T0 = StartTime;
  }
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - T0)
                       .count();

  std::lock_guard<std::mutex> IoLock(IoMu);
  std::ostream *Out = Sink ? Sink : static_cast<std::ostream *>(&File);
  if (Out == &File && !File.is_open())
    return;
  JsonValue Line = JsonValue::object();
  Line.set("seq", JsonValue(Seq++));
  Line.set("elapsed_ms", JsonValue(static_cast<int64_t>(ElapsedMs)));
  Line.set("stats", std::move(Stats));
  (*Out) << Line.dump(0) << '\n';
  Out->flush();
  ++Written;
}

} // namespace stats
} // namespace cuasmrl

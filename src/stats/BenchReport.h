//===- stats/BenchReport.h - Versioned per-run benchmark record -----------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured record every tracked benchmark emits (the
/// BENCH_*.json artifacts CI uploads), and the only format
/// tools/bench_compare.py consumes. One report carries:
///
///  - run metadata (git sha, build type, UTC timestamp, hardware
///    threads, smoke-mode flag) so a number is never separated from
///    the revision and build that produced it;
///  - named metric series — (name, value, unit, direction) — the
///    surface the perf-trajectory regression gate diffs across runs;
///  - optional simulator phase breakdowns (a gpusim::PerfCounters
///    capture) and optional serve::ServiceStats counters;
///  - a free-form "extra" object for bench-specific detail, which
///    consumers must tolerate and may ignore.
///
/// The format is versioned: serialize() stamps kSchemaVersion and
/// parse() rejects any other version outright, while *unknown fields
/// are tolerated everywhere* — version bumps are for incompatible
/// re-interpretations, not for additions (see docs/OBSERVABILITY.md).
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_STATS_BENCHREPORT_H
#define CUASMRL_STATS_BENCHREPORT_H

#include "gpusim/PerfCounters.h"
#include "net/NetStats.h"
#include "serve/OptimizationService.h"
#include "stats/Json.h"
#include "support/Error.h"

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cuasmrl {
namespace stats {

/// One tracked number with its comparison semantics. Direction travels
/// with the metric so the compare tool never guesses whether a drop in
/// "serial_ms" is a regression (it is not).
struct Metric {
  std::string Name;
  double Value = 0.0;
  std::string Unit;
  bool HigherIsBetter = true;
};

/// Provenance of one benchmark run.
struct RunMeta {
  std::string GitSha = "unknown";
  std::string Build = "unknown"; ///< CMake build type.
  std::string Timestamp;         ///< ISO-8601 UTC; empty = not stamped.
  unsigned HardwareThreads = 0;
  bool FastMode = false; ///< CUASMRL_FAST smoke run.
};

/// Current UTC wall time as "YYYY-MM-DDTHH:MM:SSZ".
std::string isoTimestampUtcNow();

/// PerfCounters <-> JSON object, field set defined by
/// gpusim::visitCounterFields. Parsing tolerates unknown members and
/// defaults missing ones to zero.
JsonValue countersToJson(const gpusim::PerfCounters &Counters);
gpusim::PerfCounters countersFromJson(const JsonValue &Obj);

/// ServiceStats <-> JSON object (scalar fields via
/// serve::visitServiceCounters plus the nested "Counters" aggregate).
JsonValue serviceStatsToJson(const serve::ServiceStats &Stats);
serve::ServiceStats serviceStatsFromJson(const JsonValue &Obj);

/// NetStats <-> JSON object (fields via net::visitNetCounters).
JsonValue netStatsToJson(const net::NetStats &Stats);
net::NetStats netStatsFromJson(const JsonValue &Obj);

/// The versioned benchmark record.
class BenchReport {
public:
  static constexpr int64_t kSchemaVersion = 1;

  BenchReport() = default;
  BenchReport(std::string BenchName, RunMeta Meta)
      : Bench(std::move(BenchName)), Meta(std::move(Meta)) {}

  const std::string &bench() const { return Bench; }
  const RunMeta &meta() const { return Meta; }

  /// Appends (or overwrites, by name) one tracked metric.
  void addMetric(std::string Name, double Value, std::string Unit,
                 bool HigherIsBetter = true);
  const std::vector<Metric> &metrics() const { return Metrics; }
  const Metric *findMetric(std::string_view Name) const;

  void setSimCounters(const gpusim::PerfCounters &Counters) {
    SimCounters = Counters;
  }
  const std::optional<gpusim::PerfCounters> &simCounters() const {
    return SimCounters;
  }

  void setServiceStats(const serve::ServiceStats &Stats) {
    Service = Stats;
  }
  const std::optional<serve::ServiceStats> &serviceStats() const {
    return Service;
  }

  void setNetStats(const net::NetStats &Stats) { Net = Stats; }
  const std::optional<net::NetStats> &netStats() const { return Net; }

  /// Bench-specific detail (must be an object); consumers tolerate
  /// and may ignore it.
  void setExtra(JsonValue ExtraObject) { Extra = std::move(ExtraObject); }
  const std::optional<JsonValue> &extra() const { return Extra; }

  JsonValue toJson() const;
  /// Pretty-printed document plus trailing newline (the on-disk form).
  std::string serialize() const;

  /// Rejects a schema_version other than kSchemaVersion (or a missing
  /// one); tolerates unknown fields at every level.
  static Expected<BenchReport> fromJson(const JsonValue &Doc);
  static Expected<BenchReport> parse(std::string_view Text);

private:
  std::string Bench;
  RunMeta Meta;
  std::vector<Metric> Metrics;
  std::optional<gpusim::PerfCounters> SimCounters;
  std::optional<serve::ServiceStats> Service;
  std::optional<net::NetStats> Net;
  std::optional<JsonValue> Extra;
};

} // namespace stats
} // namespace cuasmrl

#endif // CUASMRL_STATS_BENCHREPORT_H

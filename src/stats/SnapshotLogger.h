//===- stats/SnapshotLogger.h - Periodic live-stats JSONL logger ----------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Background logger that samples a stats provider on a fixed interval
/// and appends one compact JSON line per sample to a file (or an
/// injected stream). The intended provider snapshots a running
/// serve::OptimizationService — ServiceStats counters plus the
/// aggregated gpusim::PerfCounters — so a long optimization run leaves
/// a live trajectory behind, not just a final total.
///
/// Line format (one JSON document per line, no pretty-printing):
///
///   {"seq": 0, "elapsed_ms": 12, "stats": { ...provider object... }}
///
/// "seq" is strictly increasing in file order; "elapsed_ms" is wall
/// time since start(). The provider runs outside the writer lock, so a
/// slow provider (e.g. one taking the service's stats mutex) never
/// blocks an explicit logNow() for longer than one file append.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_STATS_SNAPSHOTLOGGER_H
#define CUASMRL_STATS_SNAPSHOTLOGGER_H

#include "stats/Json.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>

namespace cuasmrl {
namespace stats {

/// Periodically samples a JsonValue provider onto a JSONL sink from a
/// background thread. start()/stop() are idempotent and the object is
/// safe to destroy while running (the destructor stops the thread).
class StatsSnapshotLogger {
public:
  /// Produces one snapshot object. Called concurrently with the rest
  /// of the program but never concurrently with itself.
  using Provider = std::function<JsonValue()>;

  struct Config {
    /// Sampling period. The first periodic sample lands one interval
    /// after start(); call logNow() for an immediate one.
    std::chrono::milliseconds Interval{1000};
    /// Destination file, opened for append on start(). Ignored when a
    /// sink stream was injected via setSink().
    std::string Path;
  };

  StatsSnapshotLogger(Provider Provider, Config Config);
  ~StatsSnapshotLogger();

  StatsSnapshotLogger(const StatsSnapshotLogger &) = delete;
  StatsSnapshotLogger &operator=(const StatsSnapshotLogger &) = delete;

  /// Redirects output to \p Sink instead of Config::Path (test hook;
  /// pass nullptr to restore file output). Only valid while stopped.
  void setSink(std::ostream *Sink);

  /// Starts the sampling thread. Returns false (and does nothing) if
  /// already running or if the output file cannot be opened.
  bool start();

  /// Stops the sampling thread and flushes the sink. Writes one final
  /// snapshot before shutting down so the log always ends with the
  /// terminal state. No-op if not running.
  void stop();

  bool running() const;

  /// Samples and appends one snapshot immediately, independent of the
  /// periodic schedule. Safe from any thread while running.
  void logNow();

  /// Number of snapshot lines written since construction.
  uint64_t snapshotsWritten() const;

private:
  void threadMain(uint64_t MyGen);
  void writeSnapshot();

  Provider Sample;
  Config Cfg;

  mutable std::mutex Mu; ///< Guards thread/running state + Cv.
  std::condition_variable Cv;
  bool ShouldStop = false;
  bool Running = false;
  /// Bumped by every start(); a worker exits when the generation moves
  /// past its own, so a start() racing a not-yet-joined stop() cannot
  /// resurrect the old worker's loop.
  uint64_t Gen = 0;
  std::thread Worker;

  mutable std::mutex IoMu; ///< Guards the sink, Seq and Written.
  std::ofstream File;
  std::ostream *Sink = nullptr; ///< Injected stream; null = use File.
  uint64_t Seq = 0;
  uint64_t Written = 0;
  std::chrono::steady_clock::time_point StartTime;
};

} // namespace stats
} // namespace cuasmrl

#endif // CUASMRL_STATS_SNAPSHOTLOGGER_H

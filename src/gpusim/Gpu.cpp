//===- gpusim/Gpu.cpp - Timed and oracle execution machines ------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "gpusim/Gpu.h"

#include "gpusim/DecodedProgram.h"
#include "gpusim/Executor.h"
#include "sass/Program.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

using namespace cuasmrl;
using namespace cuasmrl::gpusim;

Gpu::Gpu(GpuSpec S)
    : Spec(S), L1(S.L1Bytes, S.CacheLineBytes, S.L1Ways),
      L2(S.L2Bytes, S.CacheLineBytes, S.L2Ways) {}

void Gpu::clearCaches() {
  L1.clear();
  L2.clear();
}

unsigned Gpu::residentBlocks(const KernelLaunch &Launch) const {
  unsigned ByShared =
      Launch.SharedBytes
          ? std::max(1u, Spec.SharedBytesPerSM / Launch.SharedBytes)
          : Spec.MaxBlocksPerSM;
  unsigned ByWarps =
      std::max(1u, Spec.MaxWarpsPerSM / std::max(1u, Launch.WarpsPerBlock));
  unsigned Limit = std::min({ByShared, ByWarps, Spec.MaxBlocksPerSM});
  // No point keeping more blocks resident than the grid supplies per SM.
  unsigned PerSm =
      (Launch.numBlocks() + Spec.NumSMs - 1) / Spec.NumSMs;
  return std::max(1u, std::min(Limit, std::max(1u, PerSm)));
}

//===----------------------------------------------------------------------===//
// Shared machine scaffolding
//===----------------------------------------------------------------------===//

namespace {

/// A register write deferred until an instruction completes.
struct DeferredWrite {
  enum class File : uint8_t { R, UR, P, UP };
  File Where;
  uint16_t Index;
  uint32_t Value;
};

/// One pending fixed-latency result (write-back time semantics).
struct PendingWrite {
  uint32_t Value = 0;
  uint64_t Ready = 0;
  bool Active = false;
};

/// Read once at startup — the per-call static-guard check was visible
/// in the register-read hot path.
const bool TraceStaleReads = getenv("CUASMRL_TRACE_STALE") != nullptr;

} // namespace

namespace cuasmrl {
namespace gpusim {

/// Per-warp architectural + microarchitectural state.
struct WarpSimState {
  // Architectural registers (committed view).
  std::array<uint32_t, 256> R{};
  std::array<uint32_t, 64> UR{};
  std::array<uint8_t, 8> P{};
  std::array<uint8_t, 8> UP{};

  // In-flight fixed-latency results.
  std::array<PendingWrite, 256> RPend{};
  std::array<PendingWrite, 8> PPend{};

  size_t Pc = 0;
  uint64_t NextIssue = 0;
  std::array<int, sass::ControlCode::NumBarrierSlots> Scoreboard{};
  bool Done = false;
  bool AtBarrier = false;
  unsigned Block = 0;        ///< Simulated-block index.
  unsigned WarpInBlock = 0;
  unsigned CtaLinear = 0;    ///< Global linear block id (for CTAID).

  // LDGSTS in-order group tracking (§3.5 "additional dependencies").
  int LdgstsBase = -1;
  int64_t LdgstsOffset = 0;

  // Diagnostic: event-commit time per register (deferred writes).
  std::array<uint64_t, 256> InFlightUntil{};
};

} // namespace gpusim
} // namespace cuasmrl

//===----------------------------------------------------------------------===//
// Timed machine
//===----------------------------------------------------------------------===//

namespace cuasmrl {
namespace gpusim {

/// The cycle-approximate SM model. One instance simulates one SM running
/// a group of resident blocks to completion.
class TimedMachine {
public:
  TimedMachine(Gpu &Device, const sass::Program &Prog,
               const DecodedProgram &Decoded, const KernelLaunch &Launch)
      : Device(Device), Spec(Device.Spec), Prog(Prog), Decoded(Decoded),
        Launch(Launch) {
    assert(Decoded.size() == Prog.size() &&
           "decoded image out of sync with program");
    Consts.setParams(Launch.Params);
  }

  /// Runs blocks [FirstCta, FirstCta + NumBlocks) concurrently; returns
  /// false on fault.
  bool runGroup(unsigned FirstCta, unsigned NumBlocks);

  uint64_t elapsed() const { return Elapsed; }
  const PerfCounters &counters() const { return Counters; }
  const std::string &faultReason() const { return FaultReason; }

private:
  friend struct TimedCtx;

  struct Scheduler {
    int StickyWarp = -1;
    int ReuseWarp = -1;
    std::array<int, 8> ReuseRegs{}; ///< Reg per operand slot, -1 empty.
    bool ReuseValid = false;
  };

  struct Event {
    uint64_t Cycle;
    int Warp;           ///< Warp whose state changes (-1: none).
    int ReleaseSlot;    ///< Scoreboard slot to decrement (-1: none).
    int ReleaseBlock;   ///< Block barrier to release (-1: none).
    std::vector<DeferredWrite> Writes;
    bool operator>(const Event &O) const { return Cycle > O.Cycle; }
  };

  // --- event min-heap with write-buffer recycling ------------------------
  // Events fire for every variable-latency instruction; a
  // std::priority_queue would copy each popped event (and heap-allocate
  // its Writes vector anew each push). The manual heap moves events in
  // and out, and drained Writes buffers return to a pool for reuse.
  static bool eventAfter(const Event &A, const Event &B) {
    return A.Cycle > B.Cycle;
  }
  void pushEvent(Event &&E) {
    Events.push_back(std::move(E));
    std::push_heap(Events.begin(), Events.end(), eventAfter);
  }
  Event popEvent() {
    std::pop_heap(Events.begin(), Events.end(), eventAfter);
    Event E = std::move(Events.back());
    Events.pop_back();
    return E;
  }
  std::vector<DeferredWrite> takeWriteBuf() {
    if (WriteBufPool.empty())
      return {};
    std::vector<DeferredWrite> Buf = std::move(WriteBufPool.back());
    WriteBufPool.pop_back();
    return Buf;
  }
  void recycleWriteBuf(std::vector<DeferredWrite> &&Buf) {
    if (Buf.capacity() == 0)
      return;
    Buf.clear();
    WriteBufPool.push_back(std::move(Buf));
  }

  // --- register access with write-back-time semantics -------------------
  uint32_t readR(WarpSimState &W, unsigned I) {
    PendingWrite &P = W.RPend[I];
    if (P.Active && P.Ready <= Now) {
      W.R[I] = P.Value;
      P.Active = false;
    }
    if (TraceStaleReads && W.InFlightUntil[I] > Now)
      fprintf(stderr, "STALE R%u read at cycle %llu (in flight until %llu) pc=%zu\n",
              I, (unsigned long long)Now,
              (unsigned long long)W.InFlightUntil[I], W.Pc);
    return W.R[I];
  }
  void writeR(WarpSimState &W, unsigned I, uint32_t V, uint64_t Ready) {
    PendingWrite &P = W.RPend[I];
    if (P.Active) {
      W.R[I] = P.Value; // Commit the older in-flight result first.
      P.Active = false;
    }
    P.Value = V;
    P.Ready = Ready;
    P.Active = true;
  }
  bool readP(WarpSimState &W, unsigned I) {
    PendingWrite &P = W.PPend[I];
    if (P.Active && P.Ready <= Now) {
      W.P[I] = P.Value != 0;
      P.Active = false;
    }
    return W.P[I] != 0;
  }
  void writeP(WarpSimState &W, unsigned I, bool V, uint64_t Ready) {
    PendingWrite &P = W.PPend[I];
    if (P.Active) {
      W.P[I] = P.Value != 0;
      P.Active = false;
    }
    P.Value = V;
    P.Ready = Ready;
    P.Active = true;
  }

  // --- helpers -----------------------------------------------------------
  const sass::Instruction *peekInstr(WarpSimState &W);
  bool waitSatisfied(const WarpSimState &W, const sass::Instruction &I) const;
  int pickWarp(Scheduler &S, unsigned SchedIdx);
  void issue(Scheduler &S, unsigned WarpIdx);
  unsigned bankPenalty(Scheduler &S, unsigned WarpIdx,
                       const DecodedInstr &D);
  void updateReuse(Scheduler &S, unsigned WarpIdx, const DecodedInstr &D);
  uint64_t memCompletion(const sass::Instruction &I, const DecodedInstr &D,
                         uint64_t GlobalWords, uint64_t GlobalMinAddr,
                         uint64_t SharedWords, uint64_t ConstWords);
  void processEvents();
  void maybeReleaseBarrier(unsigned Block);
  void fault(std::string Reason) {
    if (FaultReason.empty())
      FaultReason = std::move(Reason);
  }

  Gpu &Device;
  const GpuSpec &Spec;
  const sass::Program &Prog;
  const DecodedProgram &Decoded;
  const KernelLaunch &Launch;
  ConstantBank Consts;

  std::vector<WarpSimState> Warps;
  std::vector<SharedMemory> SharedPerBlock;
  std::vector<Scheduler> Schedulers;
  std::vector<Event> Events; ///< Min-heap ordered by eventAfter().
  std::vector<std::vector<DeferredWrite>> WriteBufPool;

  uint64_t Now = 0;
  uint64_t Elapsed = 0;
  uint64_t LsuFree = 0;
  double DramFree = 0.0;
  double MemBusyAccum = 0.0;
  unsigned LiveWarps = 0;
  PerfCounters Counters;
  std::string FaultReason;
};

/// Execution context bridging executeInstr() to the timed machine.
struct TimedCtx {
  TimedMachine &M;
  WarpSimState &W;
  uint64_t CommitCycle;  ///< Write-back time for fixed-latency results.
  bool Defer;            ///< Variable latency: collect writes for an event.
  bool CorruptShared = false; ///< LDGSTS order violation poisons data.
  std::vector<DeferredWrite> Deferred;

  // Memory-footprint accounting (filled during functional execution).
  uint64_t GlobalWords = 0;
  uint64_t GlobalMinAddr = ~0ull;
  uint64_t SharedWords = 0;
  uint64_t ConstWords = 0;

  uint32_t readR(unsigned I) { return M.readR(W, I); }
  void writeR(unsigned I, uint32_t V) {
    if (Defer)
      Deferred.push_back({DeferredWrite::File::R,
                          static_cast<uint16_t>(I), V});
    else
      M.writeR(W, I, V, CommitCycle);
  }
  uint32_t readUR(unsigned I) { return W.UR[I]; }
  void writeUR(unsigned I, uint32_t V) {
    if (Defer)
      Deferred.push_back({DeferredWrite::File::UR,
                          static_cast<uint16_t>(I), V});
    else
      W.UR[I] = V; // Uniform datapath: treated as immediately visible.
  }
  bool readP(unsigned I) { return M.readP(W, I); }
  void writeP(unsigned I, bool V) {
    if (Defer)
      Deferred.push_back({DeferredWrite::File::P,
                          static_cast<uint16_t>(I), V});
    else
      M.writeP(W, I, V, CommitCycle);
  }
  bool readUP(unsigned I) { return W.UP[I] != 0; }
  void writeUP(unsigned I, bool V) { W.UP[I] = V; }

  uint32_t loadShared(uint32_t Addr) {
    ++SharedWords;
    return M.SharedPerBlock[W.Block].loadWord(Addr);
  }
  void storeShared(uint32_t Addr, uint32_t V) {
    ++SharedWords;
    M.SharedPerBlock[W.Block].storeWord(Addr,
                                        CorruptShared ? V ^ PoisonWord : V);
  }
  uint32_t loadGlobal(uint64_t Addr) {
    ++GlobalWords;
    GlobalMinAddr = std::min(GlobalMinAddr, Addr);
    return M.Device.globalMemory().loadWord(Addr);
  }
  void storeGlobal(uint64_t Addr, uint32_t V) {
    ++GlobalWords;
    GlobalMinAddr = std::min(GlobalMinAddr, Addr);
    M.Device.globalMemory().storeWord(Addr, V);
  }
  uint32_t loadConst(uint32_t Offset) {
    ++ConstWords;
    return M.Consts.loadWord(Offset);
  }
  uint32_t specialReg(std::string_view Name) {
    if (Name == "SR_CLOCKLO")
      return static_cast<uint32_t>(M.Now);
    if (Name == "SR_CLOCKHI")
      return static_cast<uint32_t>(M.Now >> 32);
    if (Name == "SR_TID.X")
      return W.WarpInBlock * M.Spec.LanesPerWarp;
    if (Name == "SR_TID.Y" || Name == "SR_TID.Z" || Name == "SR_LANEID")
      return 0;
    if (Name == "SR_CTAID.X")
      return W.CtaLinear % M.Launch.GridX;
    if (Name == "SR_CTAID.Y")
      return (W.CtaLinear / M.Launch.GridX) % M.Launch.GridY;
    if (Name == "SR_CTAID.Z")
      return W.CtaLinear / (M.Launch.GridX * M.Launch.GridY);
    return 0;
  }
};

} // namespace gpusim
} // namespace cuasmrl

const sass::Instruction *TimedMachine::peekInstr(WarpSimState &W) {
  while (W.Pc < Prog.size() && Decoded[W.Pc].IsLabel) {
    // Crossing a label ends any LDGSTS group (§3.5).
    W.LdgstsBase = -1;
    ++W.Pc;
  }
  if (W.Pc >= Prog.size())
    return nullptr;
  return &Prog.stmt(W.Pc).instr();
}

bool TimedMachine::waitSatisfied(const WarpSimState &W,
                                 const sass::Instruction &I) const {
  uint8_t Mask = I.ctrl().waitMask();
  if (!Mask)
    return true;
  for (int Slot = 0; Slot < sass::ControlCode::NumBarrierSlots; ++Slot)
    if ((Mask >> Slot) & 1)
      if (W.Scoreboard[Slot] > 0)
        return false;
  return true;
}

int TimedMachine::pickWarp(Scheduler &S, unsigned SchedIdx) {
  auto Eligible = [&](int WIdx) -> bool {
    WarpSimState &W = Warps[WIdx];
    if (W.Done || W.AtBarrier || W.NextIssue > Now)
      return false;
    const sass::Instruction *I = peekInstr(W);
    if (!I) {
      return false;
    }
    if (!waitSatisfied(W, *I)) {
      ++Counters.StallWaitCycles;
      return false;
    }
    return true;
  };

  // Greedy-then-oldest: stick with the last warp while it can issue.
  if (S.StickyWarp >= 0 && Eligible(S.StickyWarp))
    return S.StickyWarp;
  for (unsigned WIdx = SchedIdx; WIdx < Warps.size();
       WIdx += Spec.SchedulersPerSM)
    if (Eligible(static_cast<int>(WIdx)))
      return static_cast<int>(WIdx);
  return -1;
}

unsigned TimedMachine::bankPenalty(Scheduler &S, unsigned WarpIdx,
                                   const DecodedInstr &D) {
  if (!D.HasSlotRegs)
    return 0;
  std::array<unsigned, 8> BankCount{};
  bool ReuseUsable = S.ReuseValid && S.ReuseWarp == static_cast<int>(WarpIdx);
  for (size_t Slot = 1; Slot < D.SlotReg.size(); ++Slot) {
    int Reg = D.SlotReg[Slot];
    if (Reg < 0)
      continue;
    if (ReuseUsable && S.ReuseRegs[Slot] == Reg) {
      ++Counters.ReuseHits;
      continue; // Served from the operand reuse cache: no bank access.
    }
    ++BankCount[static_cast<unsigned>(Reg) % Spec.RegisterBanks];
  }
  unsigned Penalty = 0;
  for (unsigned Bank = 0; Bank < Spec.RegisterBanks; ++Bank)
    if (BankCount[Bank] > 1)
      Penalty += (BankCount[Bank] - 1) * Spec.BankConflictPenalty;
  Counters.BankConflictCycles += Penalty;
  return Penalty;
}

void TimedMachine::updateReuse(Scheduler &S, unsigned WarpIdx,
                               const DecodedInstr &D) {
  S.ReuseValid = D.ReuseMask != 0;
  if (!S.ReuseValid) {
    // Stale ReuseRegs entries are unreachable while ReuseValid is off.
    S.ReuseWarp = -1;
    return;
  }
  S.ReuseRegs.fill(-1);
  for (size_t Slot = 1; Slot < D.SlotReg.size(); ++Slot)
    if (D.ReuseMask & (1u << Slot))
      S.ReuseRegs[Slot] = D.SlotReg[Slot];
  S.ReuseWarp = static_cast<int>(WarpIdx);
}

uint64_t TimedMachine::memCompletion(const sass::Instruction &I,
                                     const DecodedInstr &D,
                                     uint64_t GlobalWords,
                                     uint64_t GlobalMinAddr,
                                     uint64_t SharedWords,
                                     uint64_t ConstWords) {
  if (GlobalWords) {
    // Coalesced warp footprint: lane-0 words times the warp width.
    uint64_t Bytes = GlobalWords * 4ull * Spec.LanesPerWarp;
    uint64_t Lines = std::max<uint64_t>(1, Bytes / Spec.CacheLineBytes);
    uint64_t LineBase = GlobalMinAddr & ~static_cast<uint64_t>(
                                            Spec.CacheLineBytes - 1);
    bool Bypass = D.has(DecodedInstr::ModBypass);
    uint64_t Worst = 0;
    for (uint64_t L = 0; L < Lines; ++L) {
      uint64_t Addr = LineBase + L * Spec.CacheLineBytes;
      uint64_t Lat;
      if (!Bypass && Device.L1.access(Addr)) {
        ++Counters.L1Hits;
        Lat = Spec.L1Latency;
      } else {
        if (!Bypass)
          ++Counters.L1Misses;
        if (Device.L2.access(Addr)) {
          ++Counters.L2Hits;
          Lat = Spec.L2Latency;
        } else {
          ++Counters.L2Misses;
          // Only the launch's unique share of the traffic occupies DRAM
          // bandwidth: the remainder is served by co-resident blocks'
          // fetches hitting the chip-wide L2 (see KernelLaunch).
          double UniqueBytes =
              Spec.CacheLineBytes * Launch.UniqueDramFraction;
          double Start = std::max<double>(static_cast<double>(Now), DramFree);
          DramFree = Start + UniqueBytes / Spec.DramBytesPerCycle;
          Counters.DramBytes += static_cast<uint64_t>(UniqueBytes);
          MemBusyAccum += UniqueBytes / Spec.DramBytesPerCycle;
          Lat = Spec.DramLatency +
                static_cast<uint64_t>(Start - static_cast<double>(Now));
        }
      }
      Worst = std::max(Worst, Lat);
    }
    uint64_t LsuStart = std::max(Now, LsuFree);
    LsuFree = LsuStart + std::max<uint64_t>(1, Lines / 2);
    MemBusyAccum += static_cast<double>(std::max<uint64_t>(1, Lines / 2));
    ++Counters.LsuIssues;
    uint64_t Extra =
        I.opcode() == sass::Opcode::LDGSTS ? 10 : 0; // Shared-write leg.
    return LsuStart + Worst + Extra;
  }
  if (SharedWords) {
    ++Counters.SharedAccesses;
    ++Counters.LsuIssues;
    uint64_t LsuStart = std::max(Now, LsuFree);
    LsuFree = LsuStart + 1;
    MemBusyAccum += 1.0;
    return LsuStart + Spec.SharedLatency;
  }
  if (ConstWords)
    return Now + Spec.ConstLatency;
  // Non-memory variable latency (MUFU, S2R, SHFL, conversions).
  return Now + 20;
}

void TimedMachine::maybeReleaseBarrier(unsigned Block) {
  unsigned Waiting = 0, Live = 0;
  for (WarpSimState &W : Warps) {
    if (W.Block != Block)
      continue;
    if (W.Done)
      continue;
    ++Live;
    if (W.AtBarrier)
      ++Waiting;
  }
  if (Live == 0 || Waiting < Live)
    return;
  Event E;
  E.Cycle = Now + Spec.BarrierLatency;
  E.Warp = -1;
  E.ReleaseSlot = -1;
  E.ReleaseBlock = static_cast<int>(Block);
  pushEvent(std::move(E));
}

void TimedMachine::processEvents() {
  while (!Events.empty() && Events.front().Cycle <= Now) {
    Event E = popEvent();
    if (E.ReleaseBlock >= 0) {
      for (WarpSimState &W : Warps)
        if (W.Block == static_cast<unsigned>(E.ReleaseBlock))
          W.AtBarrier = false;
      continue;
    }
    WarpSimState &W = Warps[E.Warp];
    if (E.ReleaseSlot >= 0) {
      assert(W.Scoreboard[E.ReleaseSlot] > 0 && "scoreboard underflow");
      --W.Scoreboard[E.ReleaseSlot];
    }
    for (const DeferredWrite &DW : E.Writes) {
      switch (DW.Where) {
      case DeferredWrite::File::R:
        writeR(W, DW.Index, DW.Value, E.Cycle);
        break;
      case DeferredWrite::File::UR:
        W.UR[DW.Index] = DW.Value;
        break;
      case DeferredWrite::File::P:
        writeP(W, DW.Index, DW.Value != 0, E.Cycle);
        break;
      case DeferredWrite::File::UP:
        W.UP[DW.Index] = DW.Value != 0;
        break;
      }
    }
    recycleWriteBuf(std::move(E.Writes));
  }
}

void TimedMachine::issue(Scheduler &S, unsigned WarpIdx) {
  WarpSimState &W = Warps[WarpIdx];
  const sass::Instruction *IPtr = peekInstr(W);
  assert(IPtr && "issue on drained warp");
  const sass::Instruction &I = *IPtr;

  if (S.ReuseValid && S.ReuseWarp != static_cast<int>(WarpIdx))
    ++Counters.ReuseMisses; // Warp switch invalidated the reuse cache.

  const DecodedInstr &D = Decoded[W.Pc];
  unsigned Penalty = bankPenalty(S, WarpIdx, D);

  bool VarLat = D.VarLat;
  uint64_t FixedLat = D.FixedLat;

  TimedCtx Ctx{*this,  W, Now + FixedLat, VarLat, false,
               VarLat ? takeWriteBuf() : std::vector<DeferredWrite>{},
               0,      ~0ull,           0,      0};

  // LDGSTS groups must issue in ascending-offset order (hardware
  // idiosyncrasy the paper identifies in §3.5); a violation corrupts the
  // transferred data.
  if (I.opcode() == sass::Opcode::LDGSTS && !I.operands().empty() &&
      I.operands()[0].isMem()) {
    const sass::Operand &SharedOp = I.operands()[0];
    int Base = SharedOp.baseReg().isZero()
                   ? -2
                   : static_cast<int>(SharedOp.baseReg().index());
    if (W.LdgstsBase == Base && SharedOp.memOffset() < W.LdgstsOffset) {
      Ctx.CorruptShared = true;
      fault("LDGSTS group issued out of order");
    }
    W.LdgstsBase = Base;
    W.LdgstsOffset = SharedOp.memOffset();
  } else if (D.IsBarrierOrSync || D.IsCtrlFlow) {
    W.LdgstsBase = -1;
  }

  ExecResult R = executeInstr(I, D, Ctx);
  ++Counters.IssuedInstrs;

  // Completion & scoreboard plumbing for variable-latency instructions.
  if (VarLat && R.Predicated) {
    uint64_t Completion = memCompletion(I, D, Ctx.GlobalWords,
                                        Ctx.GlobalMinAddr, Ctx.SharedWords,
                                        Ctx.ConstWords);
    bool NeedEvent = !Ctx.Deferred.empty() || I.ctrl().hasWriteBarrier();
    if (NeedEvent) {
      for (const DeferredWrite &DW : Ctx.Deferred)
        if (DW.Where == DeferredWrite::File::R)
          W.InFlightUntil[DW.Index] = Completion;
      Event E;
      E.Cycle = Completion;
      E.Warp = static_cast<int>(WarpIdx);
      E.ReleaseSlot = I.ctrl().hasWriteBarrier() ? I.ctrl().writeBarrier()
                                                 : -1;
      if (E.ReleaseSlot >= 0)
        ++W.Scoreboard[E.ReleaseSlot];
      E.ReleaseBlock = -1;
      E.Writes = std::move(Ctx.Deferred);
      pushEvent(std::move(E));
    } else {
      recycleWriteBuf(std::move(Ctx.Deferred));
    }
    if (I.ctrl().hasReadBarrier()) {
      // Sources are consumed once the request leaves the LSU.
      Event E;
      E.Cycle = Now + std::min<uint64_t>(Completion - Now, 15);
      E.Warp = static_cast<int>(WarpIdx);
      E.ReleaseSlot = I.ctrl().readBarrier();
      ++W.Scoreboard[E.ReleaseSlot];
      E.ReleaseBlock = -1;
      pushEvent(std::move(E));
    }
  } else if (VarLat && !R.Predicated) {
    recycleWriteBuf(std::move(Ctx.Deferred));
    // Predicated-off memory op: consumes the issue slot only, but its
    // barriers must still fire or waiters would deadlock.
    for (int Slot : {I.ctrl().writeBarrier(), I.ctrl().readBarrier()}) {
      if (Slot < 0)
        continue;
      Event E;
      E.Cycle = Now + 2;
      E.Warp = static_cast<int>(WarpIdx);
      E.ReleaseSlot = Slot;
      ++W.Scoreboard[Slot];
      E.ReleaseBlock = -1;
      pushEvent(std::move(E));
    }
  }

  // Control flow.
  uint64_t ExtraIssueDelay = 0;
  switch (R.K) {
  case ExecResult::Kind::Normal:
    ++W.Pc;
    break;
  case ExecResult::Kind::Branch: {
    if (R.TargetIdx < 0) {
      fault("branch to unknown label '" + std::string(R.Target) + "'");
      W.Done = true;
      --LiveWarps;
      return;
    }
    W.Pc = static_cast<size_t>(R.TargetIdx);
    W.LdgstsBase = -1;
    ExtraIssueDelay = Spec.BranchPenalty;
    break;
  }
  case ExecResult::Kind::Exit:
    W.Done = true;
    --LiveWarps;
    break;
  case ExecResult::Kind::BlockBarrier:
    ++W.Pc;
    W.AtBarrier = true;
    W.LdgstsBase = -1;
    break;
  }

  unsigned Stall = std::max<unsigned>(1, I.ctrl().stall());
  Counters.StallFixedCycles += Stall - 1;
  W.NextIssue = Now + Stall + Penalty + ExtraIssueDelay;

  // Scheduler stickiness & the yield hint (§2.3: load balancing).
  S.StickyWarp = I.ctrl().yield() ? -1 : static_cast<int>(WarpIdx);

  updateReuse(S, WarpIdx, D);

  if (R.K == ExecResult::Kind::BlockBarrier)
    maybeReleaseBarrier(W.Block);
}

bool TimedMachine::runGroup(unsigned FirstCta, unsigned NumBlocks) {
  // Reset per-group machine state (caches and DRAM persist on the Gpu).
  Warps.clear();
  SharedPerBlock.clear();
  Schedulers.assign(Spec.SchedulersPerSM, Scheduler());
  Now = 0;
  LsuFree = 0;
  DramFree = 0.0;
  LiveWarps = NumBlocks * Launch.WarpsPerBlock;

  for (unsigned B = 0; B < NumBlocks; ++B) {
    SharedPerBlock.emplace_back(Launch.SharedBytes);
    for (unsigned WI = 0; WI < Launch.WarpsPerBlock; ++WI) {
      WarpSimState W;
      W.Block = B;
      W.WarpInBlock = WI;
      W.CtaLinear = FirstCta + B;
      Warps.push_back(std::move(W));
    }
  }

  const uint64_t CycleLimit = 200'000'000;
  uint64_t IssueCycles = 0;

  while (LiveWarps > 0) {
    processEvents();

    bool AnyIssue = false;
    for (unsigned SI = 0; SI < Schedulers.size(); ++SI) {
      int WIdx = pickWarp(Schedulers[SI], SI);
      if (WIdx < 0)
        continue;
      issue(Schedulers[SI], static_cast<unsigned>(WIdx));
      AnyIssue = true;
    }
    if (AnyIssue)
      ++IssueCycles;

    if (!FaultReason.empty() &&
        FaultReason.find("deadlock") != std::string::npos)
      break;

    // Advance time: step by one on activity; otherwise skip to the next
    // event or warp-ready time.
    uint64_t Next = Now + 1;
    if (!AnyIssue) {
      uint64_t Candidate = ~0ull;
      if (!Events.empty())
        Candidate = Events.front().Cycle;
      for (const WarpSimState &W : Warps)
        if (!W.Done && !W.AtBarrier && W.NextIssue > Now)
          Candidate = std::min(Candidate, W.NextIssue);
      if (Candidate == ~0ull) {
        if (LiveWarps > 0)
          fault("deadlock: live warps with no pending events");
        break;
      }
      Next = std::max(Next, Candidate);
    }
    Now = Next;
    if (Now > CycleLimit) {
      fault("cycle limit exceeded (runaway or livelocked schedule)");
      break;
    }
  }

  Elapsed = Now;
  Counters.ElapsedCycles += Now;
  Counters.ActiveCycles += IssueCycles;
  Counters.IssueSlotCycles += Now * Spec.SchedulersPerSM;
  Counters.MemBusyCycles +=
      std::min<uint64_t>(Now, static_cast<uint64_t>(MemBusyAccum));
  MemBusyAccum = 0.0;

  for (SharedMemory &S : SharedPerBlock)
    if (S.faulted())
      fault("shared-memory access out of bounds");
  if (Device.globalMemory().faulted()) {
    fault("global-memory access outside any allocation");
    Device.globalMemory().clearFault();
  }
  return FaultReason.empty();
}

//===----------------------------------------------------------------------===//
// Oracle machine
//===----------------------------------------------------------------------===//

namespace {

/// Immediate-commit context for the architectural reference execution.
struct OracleCtx {
  WarpSimState &W;
  SharedMemory &Shared;
  GlobalMemory &Global;
  const ConstantBank &Consts;
  const KernelLaunch &Launch;
  unsigned Lanes;
  uint64_t InstrCount = 0;

  uint32_t readR(unsigned I) { return W.R[I]; }
  void writeR(unsigned I, uint32_t V) { W.R[I] = V; }
  uint32_t readUR(unsigned I) { return W.UR[I]; }
  void writeUR(unsigned I, uint32_t V) { W.UR[I] = V; }
  bool readP(unsigned I) { return W.P[I] != 0; }
  void writeP(unsigned I, bool V) { W.P[I] = V; }
  bool readUP(unsigned I) { return W.UP[I] != 0; }
  void writeUP(unsigned I, bool V) { W.UP[I] = V; }

  uint32_t loadShared(uint32_t Addr) { return Shared.loadWord(Addr); }
  void storeShared(uint32_t Addr, uint32_t V) { Shared.storeWord(Addr, V); }
  uint32_t loadGlobal(uint64_t Addr) { return Global.loadWord(Addr); }
  void storeGlobal(uint64_t Addr, uint32_t V) { Global.storeWord(Addr, V); }
  uint32_t loadConst(uint32_t Offset) { return Consts.loadWord(Offset); }
  uint32_t specialReg(std::string_view Name) {
    if (Name == "SR_CLOCKLO")
      return static_cast<uint32_t>(InstrCount);
    if (Name == "SR_TID.X")
      return W.WarpInBlock * Lanes;
    if (Name == "SR_CTAID.X")
      return W.CtaLinear % Launch.GridX;
    if (Name == "SR_CTAID.Y")
      return (W.CtaLinear / Launch.GridX) % Launch.GridY;
    if (Name == "SR_CTAID.Z")
      return W.CtaLinear / (Launch.GridX * Launch.GridY);
    return 0;
  }
};

} // namespace

/// Runs one block in program order (round-robin across warps, barriers
/// respected). Returns false on fault/runaway.
static bool runBlockOracle(Gpu &Device, const sass::Program &Prog,
                           const DecodedProgram &Decoded,
                           const KernelLaunch &Launch,
                           const ConstantBank &Consts, unsigned CtaLinear,
                           std::string &FaultReason) {
  SharedMemory Shared(Launch.SharedBytes);
  std::vector<WarpSimState> Warps(Launch.WarpsPerBlock);
  for (unsigned WI = 0; WI < Launch.WarpsPerBlock; ++WI) {
    Warps[WI].WarpInBlock = WI;
    Warps[WI].CtaLinear = CtaLinear;
  }

  unsigned Live = Launch.WarpsPerBlock;
  uint64_t Budget = 100'000'000;
  uint64_t Executed = 0;

  while (Live > 0) {
    bool Progress = false;
    unsigned AtBarrier = 0;
    for (WarpSimState &W : Warps) {
      if (W.Done)
        continue;
      if (W.AtBarrier) {
        ++AtBarrier;
        continue;
      }
      // Step one instruction.
      while (W.Pc < Prog.size() && Decoded[W.Pc].IsLabel)
        ++W.Pc;
      if (W.Pc >= Prog.size()) {
        W.Done = true;
        --Live;
        continue;
      }
      const sass::Instruction &I = Prog.stmt(W.Pc).instr();
      OracleCtx Ctx{W,      Shared, Device.globalMemory(), Consts,
                    Launch, 32,     Executed};
      ExecResult R = executeInstr(I, Decoded[W.Pc], Ctx);
      ++Executed;
      Progress = true;
      switch (R.K) {
      case ExecResult::Kind::Normal:
        ++W.Pc;
        break;
      case ExecResult::Kind::Branch: {
        if (R.TargetIdx < 0) {
          FaultReason = "branch to unknown label '" +
                        std::string(R.Target) + "'";
          return false;
        }
        W.Pc = static_cast<size_t>(R.TargetIdx);
        break;
      }
      case ExecResult::Kind::Exit:
        W.Done = true;
        --Live;
        break;
      case ExecResult::Kind::BlockBarrier:
        ++W.Pc;
        W.AtBarrier = true;
        ++AtBarrier;
        break;
      }
      if (Executed > Budget) {
        FaultReason = "oracle instruction budget exceeded";
        return false;
      }
    }
    if (Live > 0 && AtBarrier == Live) {
      for (WarpSimState &W : Warps)
        W.AtBarrier = false;
      Progress = true;
    }
    if (!Progress && Live > 0) {
      FaultReason = "oracle made no progress (barrier mismatch?)";
      return false;
    }
  }

  if (Shared.faulted()) {
    FaultReason = "shared-memory access out of bounds";
    return false;
  }
  if (Device.globalMemory().faulted()) {
    FaultReason = "global-memory access outside any allocation";
    Device.globalMemory().clearFault();
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Gpu::run
//===----------------------------------------------------------------------===//

RunResult Gpu::run(const sass::Program &Prog, const KernelLaunch &Launch,
                   RunMode Mode, unsigned MaxBlocks) {
  DecodedProgram Decoded(Prog);
  return run(Prog, Decoded, Launch, Mode, MaxBlocks);
}

RunResult Gpu::run(const sass::Program &Prog, const DecodedProgram &Decoded,
                   const KernelLaunch &Launch, RunMode Mode,
                   unsigned MaxBlocks) {
  assert(Decoded.size() == Prog.size() &&
         "decoded image out of sync with program");
  RunResult Result;
  unsigned NumBlocks = Launch.numBlocks();
  unsigned ToRun = MaxBlocks ? std::min(MaxBlocks, NumBlocks) : NumBlocks;

  if (Mode == RunMode::Oracle) {
    ConstantBank Consts;
    Consts.setParams(Launch.Params);
    for (unsigned Cta = 0; Cta < ToRun; ++Cta) {
      if (!runBlockOracle(*this, Prog, Decoded, Launch, Consts, Cta,
                          Result.FaultReason)) {
        Result.Valid = false;
        return Result;
      }
    }
    return Result;
  }

  unsigned Resident = residentBlocks(Launch);
  TimedMachine Machine(*this, Prog, Decoded, Launch);
  unsigned Groups = 0;
  uint64_t TotalCycles = 0;
  for (unsigned First = 0; First < ToRun; First += Resident) {
    unsigned Count = std::min(Resident, ToRun - First);
    bool Ok = Machine.runGroup(First, Count);
    TotalCycles += Machine.elapsed();
    ++Groups;
    if (!Ok) {
      Result.Valid = false;
      Result.FaultReason = Machine.faultReason();
      break;
    }
  }
  Result.Counters = Machine.counters();

  // Extrapolate one SM's group timing over the full grid.
  double WavesReal =
      static_cast<double>(NumBlocks) /
      (static_cast<double>(Resident) * static_cast<double>(Spec.NumSMs));
  if (WavesReal < 1.0)
    WavesReal = 1.0;
  double MeanGroup =
      Groups ? static_cast<double>(TotalCycles) / Groups : 0.0;
  Result.Cycles = static_cast<uint64_t>(MeanGroup * WavesReal);
  Result.TimeUs = static_cast<double>(Result.Cycles) /
                  (Spec.ClockGHz * 1000.0);
  return Result;
}

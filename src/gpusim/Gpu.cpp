//===- gpusim/Gpu.cpp - Simulated GPU facade ---------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The machines themselves live in gpusim/pipeline/: TimedCore drives
// the staged timed pipeline, OracleCore the program-order reference.
// This file is only the device facade: state ownership, occupancy
// rules, the run()/runBatch() entry points, and the scratch-machine
// cache.
//
//===----------------------------------------------------------------------===//

#include "gpusim/Gpu.h"

#include "gpusim/DecodedProgram.h"
#include "gpusim/pipeline/BatchSim.h"
#include "gpusim/pipeline/OracleCore.h"
#include "gpusim/pipeline/TimedCore.h"
#include "sass/Program.h"

#include <algorithm>
#include <cassert>

using namespace cuasmrl;
using namespace cuasmrl::gpusim;

Gpu::Gpu(GpuSpec S)
    : Spec(S), L1(S.L1Bytes, S.CacheLineBytes, S.L1Ways),
      L2(S.L2Bytes, S.CacheLineBytes, S.L2Ways) {}

Gpu::~Gpu() = default;

Gpu::Gpu(const Gpu &O) : Spec(O.Spec), Global(O.Global), L1(O.L1), L2(O.L2) {}

Gpu &Gpu::operator=(const Gpu &O) {
  if (this != &O) {
    Spec = O.Spec;
    Global = O.Global;
    L1 = O.L1;
    L2 = O.L2;
    Scratch.reset(); // The machine was built against the old state.
  }
  return *this;
}

Gpu::Gpu(Gpu &&O) noexcept
    : Spec(std::move(O.Spec)), Global(std::move(O.Global)),
      L1(std::move(O.L1)), L2(std::move(O.L2)) {
  O.Scratch.reset(); // Machines reference their owning device; don't rebind.
}

Gpu &Gpu::operator=(Gpu &&O) noexcept {
  if (this != &O) {
    Spec = std::move(O.Spec);
    Global = std::move(O.Global);
    L1 = std::move(O.L1);
    L2 = std::move(O.L2);
    Scratch.reset();
    O.Scratch.reset();
  }
  return *this;
}

void Gpu::clearCaches() {
  L1.clear();
  L2.clear();
}

unsigned Gpu::residentBlocks(const KernelLaunch &Launch) const {
  unsigned ByShared =
      Launch.SharedBytes
          ? std::max(1u, Spec.SharedBytesPerSM / Launch.SharedBytes)
          : Spec.MaxBlocksPerSM;
  unsigned ByWarps =
      std::max(1u, Spec.MaxWarpsPerSM / std::max(1u, Launch.WarpsPerBlock));
  unsigned Limit = std::min({ByShared, ByWarps, Spec.MaxBlocksPerSM});
  // No point keeping more blocks resident than the grid supplies per SM.
  unsigned PerSm =
      (Launch.numBlocks() + Spec.NumSMs - 1) / Spec.NumSMs;
  return std::max(1u, std::min(Limit, std::max(1u, PerSm)));
}

TimedMachine &Gpu::scratchMachine() {
  if (!Scratch)
    Scratch = std::make_unique<TimedMachine>(*this);
  return *Scratch;
}

RunResult Gpu::run(const sass::Program &Prog, const KernelLaunch &Launch,
                   RunMode Mode, unsigned MaxBlocks) {
  DecodedProgram Decoded(Prog);
  return run(Prog, Decoded, Launch, Mode, MaxBlocks);
}

RunResult Gpu::run(const sass::Program &Prog, const DecodedProgram &Decoded,
                   const KernelLaunch &Launch, RunMode Mode,
                   unsigned MaxBlocks) {
  assert(Decoded.size() == Prog.size() &&
         "decoded image out of sync with program");
  unsigned NumBlocks = Launch.numBlocks();
  unsigned ToRun = MaxBlocks ? std::min(MaxBlocks, NumBlocks) : NumBlocks;

  if (Mode == RunMode::Oracle) {
    RunResult Result;
    ConstantBank Consts;
    Consts.setParams(Launch.Params);
    for (unsigned Cta = 0; Cta < ToRun; ++Cta) {
      if (!runBlockOracle(*this, Prog, Decoded, Launch, Consts, Cta,
                          Result.FaultReason)) {
        Result.Valid = false;
        return Result;
      }
    }
    return Result;
  }

  TimedMachine &Machine = scratchMachine();
  Machine.beginRun(Prog, Decoded, Launch);
  TimedRunPlan Plan(*this, Launch, MaxBlocks);
  while (!Plan.done())
    Plan.stepGroup(Machine);
  return Plan.finish(Spec, Machine);
}

std::vector<RunResult> Gpu::runBatch(const std::vector<BatchCandidate> &Cands,
                                     const KernelLaunch &Launch, RunMode Mode,
                                     unsigned MaxBlocks) {
  // Lane devices are private snapshots of this device; *this stays
  // untouched, mirroring the measureCandidate copy-then-run protocol.
  std::vector<Gpu> LaneDevs;
  LaneDevs.reserve(Cands.size());
  for (size_t I = 0; I < Cands.size(); ++I)
    LaneDevs.emplace_back(*this);

  std::vector<BatchLane> Lanes(Cands.size());
  for (size_t I = 0; I < Cands.size(); ++I)
    Lanes[I] = BatchLane{&LaneDevs[I], Cands[I].Prog, Cands[I].Decoded,
                         &Launch, MaxBlocks};
  return runLanes(Lanes, Mode);
}

std::vector<RunResult> Gpu::runLanes(const std::vector<BatchLane> &Lanes,
                                     RunMode Mode) {
  std::vector<RunResult> Results(Lanes.size());

  // Decode lanes that came without an image (mirrors the program-only
  // run() overload).
  std::vector<DecodedProgram> OwnedImages;
  OwnedImages.reserve(Lanes.size()); // Pointer stability for Images.
  std::vector<const DecodedProgram *> Images(Lanes.size());
  for (size_t I = 0; I < Lanes.size(); ++I) {
    assert(Lanes[I].Device && Lanes[I].Prog && Lanes[I].Launch &&
           "incomplete batch lane");
    Images[I] = Lanes[I].Decoded ? Lanes[I].Decoded
                                 : &OwnedImages.emplace_back(*Lanes[I].Prog);
    assert(Images[I]->size() == Lanes[I].Prog->size() &&
           "decoded image out of sync with program");
  }

  if (Mode == RunMode::Oracle) {
    // No timing state to interleave: each lane is the oracle loop of
    // run(), verbatim.
    for (size_t I = 0; I < Lanes.size(); ++I) {
      const BatchLane &L = Lanes[I];
      unsigned NumBlocks = L.Launch->numBlocks();
      unsigned ToRun =
          L.MaxBlocks ? std::min(L.MaxBlocks, NumBlocks) : NumBlocks;
      ConstantBank Consts;
      Consts.setParams(L.Launch->Params);
      for (unsigned Cta = 0; Cta < ToRun; ++Cta) {
        if (!runBlockOracle(*L.Device, *L.Prog, *Images[I], *L.Launch,
                            Consts, Cta, Results[I].FaultReason)) {
          Results[I].Valid = false;
          break;
        }
      }
    }
    return Results;
  }

  // Timed lanes advance in lockstep: one resident-block group per lane
  // per turn. Each lane runs on its own device and scratch machine, so
  // the interleaving cannot affect any lane's result (see BatchSim.h).
  std::vector<TimedRunPlan> Plans;
  Plans.reserve(Lanes.size());
  for (size_t I = 0; I < Lanes.size(); ++I) {
    const BatchLane &L = Lanes[I];
    L.Device->scratchMachine().beginRun(*L.Prog, *Images[I], *L.Launch);
    Plans.emplace_back(*L.Device, *L.Launch, L.MaxBlocks);
  }

  // One write-buffer pool rotates through the lanes so allocations made
  // by any lane's events serve the others too (capacity only — never
  // values — hence behaviorally neutral).
  std::vector<std::vector<DeferredWrite>> Pool;
  bool AnyActive = true;
  while (AnyActive) {
    AnyActive = false;
    for (size_t I = 0; I < Lanes.size(); ++I) {
      if (Plans[I].done())
        continue;
      TimedMachine &M = Lanes[I].Device->scratchMachine();
      M.adoptWriteBufPool(std::move(Pool));
      Plans[I].stepGroup(M);
      Pool = M.releaseWriteBufPool();
      AnyActive = true;
    }
  }

  // Park the rotated pool on the first lane's machine instead of
  // dropping it: repeated batch calls (measurement reps) then reuse the
  // buffers the way repeated run() calls always have. Capacity only —
  // behaviorally neutral.
  if (!Lanes.empty())
    Lanes.front().Device->scratchMachine().adoptWriteBufPool(std::move(Pool));

  for (size_t I = 0; I < Lanes.size(); ++I)
    Results[I] = Plans[I].finish(Lanes[I].Device->spec(),
                                 Lanes[I].Device->scratchMachine());
  return Results;
}

//===- gpusim/Fp16.h - IEEE binary16 conversion helpers -------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Software half-precision conversion used by the functional semantics of
/// HADD2/HMUL2/HFMA2/HMMA. Round-to-nearest-even on the way down; exact
/// on the way up.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_GPUSIM_FP16_H
#define CUASMRL_GPUSIM_FP16_H

#include <cstdint>
#include <cstring>

namespace cuasmrl {
namespace gpusim {

/// Converts an IEEE binary16 bit pattern to float.
inline float fp16ToFloat(uint16_t H) {
  uint32_t Sign = (H >> 15) & 1;
  uint32_t Exp = (H >> 10) & 0x1f;
  uint32_t Mant = H & 0x3ff;
  uint32_t Bits;
  if (Exp == 0) {
    if (Mant == 0) {
      Bits = Sign << 31;
    } else {
      // Subnormal: normalize.
      int Shift = 0;
      while (!(Mant & 0x400)) {
        Mant <<= 1;
        ++Shift;
      }
      Mant &= 0x3ff;
      // Subnormal value = M * 2^-24; after Shift normalizing shifts the
      // binary exponent is -14 - Shift (fp32 bias 127).
      Bits = (Sign << 31) | ((127 - 14 - Shift) << 23) | (Mant << 13);
    }
  } else if (Exp == 0x1f) {
    Bits = (Sign << 31) | 0x7f800000u | (Mant << 13);
  } else {
    Bits = (Sign << 31) | ((Exp - 15 + 127) << 23) | (Mant << 13);
  }
  float F;
  std::memcpy(&F, &Bits, sizeof(F));
  return F;
}

/// Converts a float to the nearest IEEE binary16 bit pattern (RNE).
inline uint16_t floatToFp16(float F) {
  uint32_t Bits;
  std::memcpy(&Bits, &F, sizeof(Bits));
  uint32_t Sign = (Bits >> 16) & 0x8000;
  int32_t Exp = static_cast<int32_t>((Bits >> 23) & 0xff) - 127 + 15;
  uint32_t Mant = Bits & 0x7fffff;

  if (((Bits >> 23) & 0xff) == 0xff)
    return static_cast<uint16_t>(Sign | 0x7c00 | (Mant ? 0x200 : 0));
  if (Exp >= 0x1f)
    return static_cast<uint16_t>(Sign | 0x7c00); // Overflow -> inf.
  if (Exp <= 0) {
    if (Exp < -10)
      return static_cast<uint16_t>(Sign); // Underflow -> zero.
    // Subnormal result.
    Mant |= 0x800000;
    uint32_t Shift = static_cast<uint32_t>(14 - Exp);
    uint32_t Half = Mant >> Shift;
    uint32_t Rem = Mant & ((1u << Shift) - 1);
    uint32_t Mid = 1u << (Shift - 1);
    if (Rem > Mid || (Rem == Mid && (Half & 1)))
      ++Half;
    return static_cast<uint16_t>(Sign | Half);
  }
  uint32_t Half = (static_cast<uint32_t>(Exp) << 10) | (Mant >> 13);
  uint32_t Rem = Mant & 0x1fff;
  if (Rem > 0x1000 || (Rem == 0x1000 && (Half & 1)))
    ++Half;
  return static_cast<uint16_t>(Sign | Half);
}

/// Unpacks the low half of a packed fp16x2 register.
inline float unpackLo(uint32_t Packed) {
  return fp16ToFloat(static_cast<uint16_t>(Packed & 0xffff));
}
/// Unpacks the high half of a packed fp16x2 register.
inline float unpackHi(uint32_t Packed) {
  return fp16ToFloat(static_cast<uint16_t>(Packed >> 16));
}
/// Packs two floats into an fp16x2 register.
inline uint32_t packHalf2(float Lo, float Hi) {
  return static_cast<uint32_t>(floatToFp16(Lo)) |
         (static_cast<uint32_t>(floatToFp16(Hi)) << 16);
}

} // namespace gpusim
} // namespace cuasmrl

#endif // CUASMRL_GPUSIM_FP16_H

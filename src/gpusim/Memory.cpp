//===- gpusim/Memory.cpp ----------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "gpusim/Memory.h"

#include <cassert>

using namespace cuasmrl;
using namespace cuasmrl::gpusim;

uint64_t GlobalMemory::allocate(uint64_t Bytes) {
  Segment Seg;
  Seg.Base = NextBase;
  Seg.Data.assign(Bytes, 0);
  Segments.push_back(std::move(Seg));
  // 256-byte align the next base so distinct buffers never share a line.
  NextBase += (Bytes + 255) & ~255ull;
  return Segments.back().Base;
}

void GlobalMemory::reset() {
  Segments.clear();
  NextBase = 0x10000000ull;
  Fault = false;
}

GlobalMemory::Segment *GlobalMemory::find(uint64_t Addr, uint64_t Bytes) {
  return const_cast<Segment *>(
      static_cast<const GlobalMemory *>(this)->find(Addr, Bytes));
}

const GlobalMemory::Segment *GlobalMemory::find(uint64_t Addr,
                                                uint64_t Bytes) const {
  auto Holds = [&](const Segment &Seg) {
    return Addr >= Seg.Base && Addr + Bytes <= Seg.Base + Seg.Data.size();
  };
  if (LastSeg < Segments.size() && Holds(Segments[LastSeg]))
    return &Segments[LastSeg];
  for (size_t I = 0; I < Segments.size(); ++I) {
    if (Holds(Segments[I])) {
      LastSeg = I;
      return &Segments[I];
    }
  }
  return nullptr;
}

void GlobalMemory::write(uint64_t Addr, const void *Data, uint64_t Bytes) {
  Segment *Seg = find(Addr, Bytes);
  assert(Seg && "host write outside any allocation");
  std::memcpy(Seg->Data.data() + (Addr - Seg->Base), Data, Bytes);
}

void GlobalMemory::read(uint64_t Addr, void *Data, uint64_t Bytes) const {
  const Segment *Seg = find(Addr, Bytes);
  assert(Seg && "host read outside any allocation");
  std::memcpy(Data, Seg->Data.data() + (Addr - Seg->Base), Bytes);
}

uint32_t GlobalMemory::loadWord(uint64_t Addr) {
  const Segment *Seg = find(Addr, 4);
  if (!Seg) {
    Fault = true;
    return PoisonWord;
  }
  uint32_t Value;
  std::memcpy(&Value, Seg->Data.data() + (Addr - Seg->Base), sizeof(Value));
  return Value;
}

void GlobalMemory::storeWord(uint64_t Addr, uint32_t Value) {
  Segment *Seg = find(Addr, 4);
  if (!Seg) {
    Fault = true;
    return;
  }
  std::memcpy(Seg->Data.data() + (Addr - Seg->Base), &Value, sizeof(Value));
}

uint64_t GlobalMemory::bytesAllocated() const {
  uint64_t Total = 0;
  for (const Segment &Seg : Segments)
    Total += Seg.Data.size();
  return Total;
}

uint32_t SharedMemory::loadWord(uint32_t Addr) {
  if (Addr + 4 > Data.size()) {
    Fault = true;
    return PoisonWord;
  }
  uint32_t Value;
  std::memcpy(&Value, Data.data() + Addr, sizeof(Value));
  return Value;
}

void SharedMemory::storeWord(uint32_t Addr, uint32_t Value) {
  if (Addr + 4 > Data.size()) {
    Fault = true;
    return;
  }
  std::memcpy(Data.data() + Addr, &Value, sizeof(Value));
}

//===- gpusim/DecodedProgram.cpp ---------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "gpusim/DecodedProgram.h"

#include "sass/Program.h"

#include <string_view>
#include <unordered_map>

using namespace cuasmrl;
using namespace cuasmrl::gpusim;

static CmpKind parseCmp(std::string_view Mod) {
  if (Mod == "LT")
    return CmpKind::LT;
  if (Mod == "LE")
    return CmpKind::LE;
  if (Mod == "GT")
    return CmpKind::GT;
  if (Mod == "GE")
    return CmpKind::GE;
  if (Mod == "EQ")
    return CmpKind::EQ;
  if (Mod == "NE")
    return CmpKind::NE;
  return CmpKind::None;
}

DecodedInstr DecodedInstr::decode(const sass::Instruction &I) {
  DecodedInstr D;
  const sass::OpcodeInfo &Info = I.info();
  D.VarLat = Info.IsVariableLatency;
  D.IsCtrlFlow = Info.IsControlFlow;
  D.IsBarrierOrSync = Info.IsBarrierOrSync;
  D.DataRegs = static_cast<uint8_t>(I.dataRegCount());

  if (std::optional<std::string> Key = I.latencyKey())
    if (std::optional<unsigned> Lat = sass::groundTruthLatency(*Key))
      D.FixedLat = static_cast<uint16_t>(*Lat);

  const std::vector<std::string> &Mods = I.modifiers();
  for (const std::string &M : Mods) {
    if (M == "WIDE")
      D.Mods |= ModWide;
    else if (M == "U32")
      D.Mods |= ModU32;
    else if (M == "HI")
      D.Mods |= ModHi;
    else if (M == "X")
      D.Mods |= ModX;
    else if (M == "OR")
      D.Mods |= ModOr;
    else if (M == "BYPASS")
      D.Mods |= ModBypass;
    else if (M == "L")
      D.Mods |= ModL;
    else if (M == "F32")
      D.Mods |= ModF32;
    else if (M == "F16")
      D.Mods |= ModF16;
  }
  if (!Mods.empty()) {
    if (Mods[0] == "F32")
      D.Mods |= ModFirstF32;
    D.Cmp = parseCmp(Mods[0]);
  }

  const std::vector<sass::Operand> &Ops = I.operands();
  for (size_t Slot = 1; Slot < Ops.size() && Slot < D.SlotReg.size();
       ++Slot) {
    const sass::Operand &Op = Ops[Slot];
    if (!(Op.isReg() || Op.isMem()))
      continue;
    sass::Register R = Op.baseReg();
    if (!R.isGeneral() || R.isZero())
      continue;
    D.SlotReg[Slot] = static_cast<int16_t>(R.index());
    D.HasSlotRegs = true;
    if (Op.isReg() && Op.hasReuse())
      D.ReuseMask |= static_cast<uint8_t>(1u << Slot);
  }

  if (I.opcode() == sass::Opcode::MUFU) {
    // Same priority order as the original hasModifier() chain.
    static constexpr struct {
      std::string_view Name;
      MufuKind Kind;
    } MufuTable[] = {
        {"RCP", MufuKind::Rcp},   {"RSQ", MufuKind::Rsq},
        {"SQRT", MufuKind::Sqrt}, {"EX2", MufuKind::Ex2},
        {"LG2", MufuKind::Lg2},   {"SIN", MufuKind::Sin},
        {"COS", MufuKind::Cos},
    };
    for (const auto &Entry : MufuTable) {
      if (I.hasModifier(Entry.Name)) {
        D.Mufu = Entry.Kind;
        break;
      }
    }
  }
  return D;
}

DecodedProgram::DecodedProgram(const sass::Program &Prog) {
  std::unordered_map<std::string_view, size_t> LabelMap;
  for (size_t I = 0; I < Prog.size(); ++I)
    if (Prog.stmt(I).isLabel())
      LabelMap.emplace(Prog.stmt(I).label(), I);

  Records.reserve(Prog.size());
  for (size_t I = 0; I < Prog.size(); ++I) {
    const sass::Statement &S = Prog.stmt(I);
    if (S.isLabel()) {
      DecodedInstr D;
      D.IsLabel = true;
      Records.push_back(D);
      continue;
    }
    DecodedInstr D = DecodedInstr::decode(S.instr());
    if (S.instr().opcode() == sass::Opcode::BRA) {
      for (const sass::Operand &Op : S.instr().operands()) {
        if (!Op.isLabel())
          continue;
        auto It = LabelMap.find(Op.name());
        if (It != LabelMap.end())
          D.BranchTarget = static_cast<int32_t>(It->second);
        break;
      }
    }
    Records.push_back(D);
  }
}

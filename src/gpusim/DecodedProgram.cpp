//===- gpusim/DecodedProgram.cpp ---------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "gpusim/DecodedProgram.h"

#include "sass/Program.h"

#include <atomic>
#include <string_view>
#include <unordered_map>

using namespace cuasmrl;
using namespace cuasmrl::gpusim;

static CmpKind parseCmp(std::string_view Mod) {
  if (Mod == "LT")
    return CmpKind::LT;
  if (Mod == "LE")
    return CmpKind::LE;
  if (Mod == "GT")
    return CmpKind::GT;
  if (Mod == "GE")
    return CmpKind::GE;
  if (Mod == "EQ")
    return CmpKind::EQ;
  if (Mod == "NE")
    return CmpKind::NE;
  return CmpKind::None;
}

DecodedInstr DecodedInstr::decode(const sass::Instruction &I) {
  DecodedInstr D;
  const sass::OpcodeInfo &Info = I.info();
  D.VarLat = Info.IsVariableLatency;
  D.IsCtrlFlow = Info.IsControlFlow;
  D.IsBarrierOrSync = Info.IsBarrierOrSync;
  D.DataRegs = static_cast<uint8_t>(I.dataRegCount());

  if (std::optional<std::string> Key = I.latencyKey())
    if (std::optional<unsigned> Lat = sass::groundTruthLatency(*Key))
      D.FixedLat = static_cast<uint16_t>(*Lat);

  const std::vector<std::string> &Mods = I.modifiers();
  for (const std::string &M : Mods) {
    if (M == "WIDE")
      D.Mods |= ModWide;
    else if (M == "U32")
      D.Mods |= ModU32;
    else if (M == "HI")
      D.Mods |= ModHi;
    else if (M == "X")
      D.Mods |= ModX;
    else if (M == "OR")
      D.Mods |= ModOr;
    else if (M == "BYPASS")
      D.Mods |= ModBypass;
    else if (M == "L")
      D.Mods |= ModL;
    else if (M == "F32")
      D.Mods |= ModF32;
    else if (M == "F16")
      D.Mods |= ModF16;
  }
  if (!Mods.empty()) {
    if (Mods[0] == "F32")
      D.Mods |= ModFirstF32;
    D.Cmp = parseCmp(Mods[0]);
  }

  const std::vector<sass::Operand> &Ops = I.operands();
  for (size_t Slot = 1; Slot < Ops.size() && Slot < D.SlotReg.size();
       ++Slot) {
    const sass::Operand &Op = Ops[Slot];
    if (!(Op.isReg() || Op.isMem()))
      continue;
    sass::Register R = Op.baseReg();
    if (!R.isGeneral() || R.isZero())
      continue;
    D.SlotReg[Slot] = static_cast<int16_t>(R.index());
    D.HasSlotRegs = true;
    if (Op.isReg() && Op.hasReuse())
      D.ReuseMask |= static_cast<uint8_t>(1u << Slot);
  }

  if (I.opcode() == sass::Opcode::MUFU) {
    // Same priority order as the original hasModifier() chain.
    static constexpr struct {
      std::string_view Name;
      MufuKind Kind;
    } MufuTable[] = {
        {"RCP", MufuKind::Rcp},   {"RSQ", MufuKind::Rsq},
        {"SQRT", MufuKind::Sqrt}, {"EX2", MufuKind::Ex2},
        {"LG2", MufuKind::Lg2},   {"SIN", MufuKind::Sin},
        {"COS", MufuKind::Cos},
    };
    for (const auto &Entry : MufuTable) {
      if (I.hasModifier(Entry.Name)) {
        D.Mufu = Entry.Kind;
        break;
      }
    }
  }
  return D;
}

DecodedProgram::DecodedProgram(const sass::Program &Prog) {
  std::unordered_map<std::string_view, size_t> LabelMap;
  for (size_t I = 0; I < Prog.size(); ++I)
    if (Prog.stmt(I).isLabel())
      LabelMap.emplace(Prog.stmt(I).label(), I);

  size_t N = Prog.size();
  Records.reserve(N);
  Flags.reserve(N);
  Wait.reserve(N);
  StallCount.reserve(N);
  Bars.reserve(N);
  FixedLat.reserve(N);
  Op.reserve(N);
  Target.reserve(N);
  LdgBase.reserve(N);
  LdgOff.reserve(N);

  for (size_t I = 0; I < N; ++I) {
    const sass::Statement &S = Prog.stmt(I);
    if (S.isLabel()) {
      DecodedInstr D;
      D.IsLabel = true;
      Records.push_back(D);
      Flags.push_back(FlagLabel);
      Wait.push_back(0);
      StallCount.push_back(0);
      Bars.push_back(0);
      FixedLat.push_back(1);
      Op.push_back(sass::Opcode::NOP);
      Target.push_back(-1);
      LdgBase.push_back(-1);
      LdgOff.push_back(0);
      continue;
    }
    const sass::Instruction &Instr = S.instr();
    DecodedInstr D = DecodedInstr::decode(Instr);
    if (Instr.opcode() == sass::Opcode::BRA) {
      for (const sass::Operand &Opnd : Instr.operands()) {
        if (!Opnd.isLabel())
          continue;
        auto It = LabelMap.find(Opnd.name());
        if (It != LabelMap.end())
          D.BranchTarget = static_cast<int32_t>(It->second);
        break;
      }
    }

    uint8_t F = 0;
    if (D.VarLat)
      F |= FlagVarLat;
    if (D.IsCtrlFlow)
      F |= FlagCtrlFlow;
    if (D.IsBarrierOrSync)
      F |= FlagBarrierOrSync;
    if (D.HasSlotRegs)
      F |= FlagHasSlotRegs;
    const sass::ControlCode &Ctrl = Instr.ctrl();
    if (Ctrl.yield())
      F |= FlagYield;

    int16_t LBase = -1;
    int64_t LOff = 0;
    if (Instr.opcode() == sass::Opcode::LDGSTS &&
        !Instr.operands().empty() && Instr.operands()[0].isMem()) {
      const sass::Operand &SharedOp = Instr.operands()[0];
      F |= FlagLdgsts;
      LBase = SharedOp.baseReg().isZero()
                  ? static_cast<int16_t>(-2)
                  : static_cast<int16_t>(SharedOp.baseReg().index());
      LOff = SharedOp.memOffset();
    }

    Records.push_back(D);
    Flags.push_back(F);
    Wait.push_back(Ctrl.waitMask());
    StallCount.push_back(static_cast<uint8_t>(Ctrl.stall()));
    Bars.push_back(static_cast<uint8_t>(
        ((Ctrl.readBarrier() + 1) << 4) | (Ctrl.writeBarrier() + 1)));
    FixedLat.push_back(D.FixedLat);
    Op.push_back(Instr.opcode());
    Target.push_back(D.BranchTarget);
    LdgBase.push_back(LBase);
    LdgOff.push_back(LOff);
  }
}

uint64_t DecodedProgram::nextVersion() {
  static std::atomic<uint64_t> Counter{0};
  return Counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void DecodedProgram::swap(size_t Upper) {
  Version = nextVersion();
  size_t A = Upper, B = Upper + 1;
  std::swap(Records[A], Records[B]);
  std::swap(Flags[A], Flags[B]);
  std::swap(Wait[A], Wait[B]);
  std::swap(StallCount[A], StallCount[B]);
  std::swap(Bars[A], Bars[B]);
  std::swap(FixedLat[A], FixedLat[B]);
  std::swap(Op[A], Op[B]);
  std::swap(Target[A], Target[B]);
  std::swap(LdgBase[A], LdgBase[B]);
  std::swap(LdgOff[A], LdgOff[B]);
}

//===- gpusim/Measurement.cpp --------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "gpusim/Measurement.h"

#include "sass/Program.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace cuasmrl;
using namespace cuasmrl::gpusim;

Measurement gpusim::measureKernel(Gpu &Device, const sass::Program &Prog,
                                  const KernelLaunch &Launch,
                                  const MeasureConfig &Config) {
  DecodedProgram Decoded(Prog);
  return measureKernel(Device, Prog, Decoded, Launch, Config);
}

Measurement gpusim::measureKernel(Gpu &Device, const sass::Program &Prog,
                                  const DecodedProgram &Decoded,
                                  const KernelLaunch &Launch,
                                  const MeasureConfig &Config) {
  Measurement Out;
  Rng Noise(Config.Seed);

  // Warmup: primes the caches exactly like the paper's 100 warmup
  // iterations prime the real GPU's clocks and TLBs.
  for (unsigned I = 0; I < Config.WarmupIters; ++I) {
    RunResult R =
        Device.run(Prog, Decoded, Launch, RunMode::Timed, Config.MaxBlocks);
    if (!R.Valid) {
      Out.Valid = false;
      Out.FaultReason = R.FaultReason;
      return Out;
    }
  }

  double Sum = 0.0, SumSq = 0.0;
  uint64_t CycleSum = 0;
  for (unsigned I = 0; I < Config.RepeatIters; ++I) {
    if (Config.ClearL2BetweenReps)
      Device.clearCaches();
    RunResult R =
        Device.run(Prog, Decoded, Launch, RunMode::Timed, Config.MaxBlocks);
    if (!R.Valid) {
      Out.Valid = false;
      Out.FaultReason = R.FaultReason;
      return Out;
    }
    double Jitter = 1.0 + Noise.normal(0.0, Config.NoiseStddev);
    double TimeUs = R.TimeUs * Jitter;
    Sum += TimeUs;
    SumSq += TimeUs * TimeUs;
    CycleSum += R.Cycles;
    Out.Counters = R.Counters;
  }

  unsigned N = Config.RepeatIters;
  Out.MeanUs = Sum / N;
  double Var = SumSq / N - Out.MeanUs * Out.MeanUs;
  Out.StddevUs = Var > 0 ? std::sqrt(Var) : 0.0;
  Out.Cycles = CycleSum / N;
  return Out;
}

std::vector<Measurement>
gpusim::measureKernelBatch(const std::vector<BatchMeasureLane> &Lanes) {
  const size_t N = Lanes.size();
  std::vector<Measurement> Out(N);
  if (N == 0)
    return Out;

  // Decode null images once up front (the program-only measureKernel
  // overload does the same); reserve keeps the addresses stable for
  // the whole protocol.
  std::vector<DecodedProgram> Owned;
  Owned.reserve(N);
  std::vector<const DecodedProgram *> Images(N);
  for (size_t I = 0; I < N; ++I)
    Images[I] = Lanes[I].Decoded ? Lanes[I].Decoded
                                 : &Owned.emplace_back(*Lanes[I].Prog);

  // Per-lane protocol state. Each lane owns its noise stream, drawn in
  // the same order as measureKernel draws it (one normal() per rep, none
  // during warmup, none after a fault), so lockstepping cannot perturb
  // the jitter any lane sees.
  struct LaneState {
    Rng Noise;
    double Sum = 0.0, SumSq = 0.0;
    uint64_t CycleSum = 0;
    bool Dead = false;
    explicit LaneState(uint64_t Seed) : Noise(Seed) {}
  };
  std::vector<LaneState> St;
  St.reserve(N);
  unsigned MaxWarm = 0, MaxRep = 0;
  for (const BatchMeasureLane &L : Lanes) {
    St.emplace_back(L.Config.Seed);
    MaxWarm = std::max(MaxWarm, L.Config.WarmupIters);
    MaxRep = std::max(MaxRep, L.Config.RepeatIters);
  }

  // One protocol turn: every lane still inside this phase runs one
  // iteration, together through runLanes. A faulted lane goes dead and
  // sits out the rest — the same early exit measureKernel takes.
  std::vector<Gpu::BatchLane> Turn;
  std::vector<size_t> TurnIdx;
  auto runTurn = [&](unsigned Iter, bool Rep) {
    Turn.clear();
    TurnIdx.clear();
    for (size_t I = 0; I < N; ++I) {
      const BatchMeasureLane &L = Lanes[I];
      if (St[I].Dead ||
          Iter >= (Rep ? L.Config.RepeatIters : L.Config.WarmupIters))
        continue;
      if (Rep && L.Config.ClearL2BetweenReps)
        L.Device->clearCaches();
      Turn.push_back(
          {L.Device, L.Prog, Images[I], L.Launch, L.Config.MaxBlocks});
      TurnIdx.push_back(I);
    }
    if (Turn.empty())
      return;
    std::vector<RunResult> R = Gpu::runLanes(Turn, RunMode::Timed);
    for (size_t T = 0; T < R.size(); ++T) {
      size_t I = TurnIdx[T];
      if (!R[T].Valid) {
        St[I].Dead = true;
        Out[I].Valid = false;
        Out[I].FaultReason = R[T].FaultReason;
        continue;
      }
      if (!Rep)
        continue;
      double Jitter =
          1.0 + St[I].Noise.normal(0.0, Lanes[I].Config.NoiseStddev);
      double TimeUs = R[T].TimeUs * Jitter;
      St[I].Sum += TimeUs;
      St[I].SumSq += TimeUs * TimeUs;
      St[I].CycleSum += R[T].Cycles;
      Out[I].Counters = R[T].Counters;
    }
  };

  for (unsigned I = 0; I < MaxWarm; ++I)
    runTurn(I, /*Rep=*/false);
  for (unsigned I = 0; I < MaxRep; ++I)
    runTurn(I, /*Rep=*/true);

  for (size_t I = 0; I < N; ++I) {
    if (St[I].Dead)
      continue;
    unsigned Reps = Lanes[I].Config.RepeatIters;
    Out[I].MeanUs = St[I].Sum / Reps;
    double Var = St[I].SumSq / Reps - Out[I].MeanUs * Out[I].MeanUs;
    Out[I].StddevUs = Var > 0 ? std::sqrt(Var) : 0.0;
    Out[I].Cycles = St[I].CycleSum / Reps;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// MeasurementCache
//===----------------------------------------------------------------------===//

double MeasurementCache::measureOrCompute(
    ScheduleKey Key, const std::function<double(uint64_t)> &Simulate) {
  // Every simulation path seeds from the Check hash: a pure function
  // of the schedule alone, identical whether this schedule won the
  // cache slot, lost it to a primary collision, or bypassed the cache
  // entirely — so cached values can never depend on arrival order.
  std::unique_lock<std::mutex> Lock(Mutex);
  auto Emplaced = Map.try_emplace(Key.Primary);
  Entry &E = Emplaced.first->second;
  if (!Emplaced.second) {
    // Someone got here first. If their simulation is still in flight,
    // wait for the published value rather than duplicating the work.
    Published.wait(Lock, [&E] { return E.Ready; });
    if (!E.Failed) {
      if (E.Check == Key.Check) {
        ++Hits;
        return E.ValueUs;
      }
      // Primary-hash collision: a different schedule owns this slot.
      // Fall back to an uncached simulation.
      ++Collisions;
      Lock.unlock();
      return Simulate(deriveSeed(BaseSeed, Key.Check));
    }
    // The previous computer threw: the key is not poisoned — reclaim
    // the slot and recompute. (Other waiters see Ready drop back to
    // false and resume waiting.)
    E.Ready = false;
    E.Failed = false;
  }
  E.Check = Key.Check;
  ++Misses;
  Lock.unlock();
  double ValueUs = std::nan("");
  try {
    ValueUs = Simulate(deriveSeed(BaseSeed, Key.Check));
  } catch (...) {
    // Mark the failure so waiters unblock and retry, then propagate.
    Lock.lock();
    E.Failed = true;
    E.Ready = true;
    Lock.unlock();
    Published.notify_all();
    throw;
  }
  Lock.lock();
  E.ValueUs = ValueUs;
  E.Ready = true;
  Lock.unlock();
  Published.notify_all();
  return ValueUs;
}

bool MeasurementCache::lookup(ScheduleKey Key, double &OutUs) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Map.find(Key.Primary);
  if (It == Map.end() || !It->second.Ready || It->second.Failed ||
      It->second.Check != Key.Check)
    return false;
  OutUs = It->second.ValueUs;
  return true;
}

uint64_t MeasurementCache::hits() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Hits;
}

uint64_t MeasurementCache::misses() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Misses;
}

uint64_t MeasurementCache::collisions() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Collisions;
}

size_t MeasurementCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  size_t Count = 0;
  for (const auto &KV : Map)
    Count += KV.second.Ready && !KV.second.Failed;
  return Count;
}

double MeasurementCache::hitRate() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  uint64_t Total = Hits + Misses;
  return Total ? static_cast<double>(Hits) / Total : 0.0;
}

void MeasurementCache::accumulate(PerfCounters &PC) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  PC.MeasureCacheHits += Hits;
  PC.MeasureCacheMisses += Misses;
}

MeasurementCache::ScheduleKey
MeasurementCache::keyFor(const sass::Program &Prog) {
  return ScheduleHash(Prog).key();
}

uint64_t MeasurementCache::hashSchedule(const sass::Program &Prog) {
  return keyFor(Prog).Primary;
}

uint64_t MeasurementCache::deriveSeed(uint64_t BaseSeed, uint64_t Key) {
  // Pure function of (BaseSeed, Key), never of measurement order.
  return mixSeed(BaseSeed, Key);
}

//===----------------------------------------------------------------------===//
// ScheduleHash
//===----------------------------------------------------------------------===//

namespace {

/// splitmix64 finalizer: full-avalanche 64-bit mixer.
uint64_t avalanche(uint64_t X) {
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ull;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebull;
  X ^= X >> 31;
  return X;
}

} // namespace

uint64_t ScheduleHash::mixPrimary(uint64_t LineHash, uint64_t Pos) {
  return avalanche(LineHash ^ (0x9e3779b97f4a7c15ull * (Pos + 1)));
}

uint64_t ScheduleHash::mixCheck(uint64_t LineHash, uint64_t Pos) {
  // Independent of mixPrimary: different position injection and a
  // pre-whitened line hash, so a Primary collision does not imply a
  // Check collision.
  return avalanche(~LineHash + 0xc2b2ae3d27d4eb4full * (Pos + 1));
}

ScheduleHash::ScheduleHash(const sass::Program &Prog) {
  // The kernel name seeds both components (the printed header line of
  // the old full-text hash), keeping distinct kernels' schedules
  // distinct even when their bodies coincide.
  uint64_t N1 = 0xcbf29ce484222325ull;
  uint64_t N2 = 0x2545f4914f6cdd1dull;
  for (unsigned char C : Prog.name()) {
    N1 = (N1 ^ C) * 0x100000001b3ull;
    N2 = N2 * 0x9e3779b97f4a7c15ull + C + 1;
  }
  Primary = avalanche(N1);
  Check = avalanche(~N2);

  Lines1.reserve(Prog.size());
  Lines2.reserve(Prog.size());
  for (size_t I = 0; I < Prog.size(); ++I) {
    std::pair<uint64_t, uint64_t> H = Prog.stmt(I).contentHashes();
    Lines1.push_back(H.first);
    Lines2.push_back(H.second);
    Primary += mixPrimary(H.first, I);
    Check += mixCheck(H.second, I);
  }
}

void ScheduleHash::swap(size_t Upper) {
  assert(Upper + 1 < Lines1.size() && "swap out of range");
  size_t Lower = Upper + 1;
  Primary -= mixPrimary(Lines1[Upper], Upper) + mixPrimary(Lines1[Lower], Lower);
  Check -= mixCheck(Lines2[Upper], Upper) + mixCheck(Lines2[Lower], Lower);
  std::swap(Lines1[Upper], Lines1[Lower]);
  std::swap(Lines2[Upper], Lines2[Lower]);
  Primary += mixPrimary(Lines1[Upper], Upper) + mixPrimary(Lines1[Lower], Lower);
  Check += mixCheck(Lines2[Upper], Upper) + mixCheck(Lines2[Lower], Lower);
}

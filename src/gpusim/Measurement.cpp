//===- gpusim/Measurement.cpp --------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "gpusim/Measurement.h"

#include "sass/Program.h"

#include <cmath>

using namespace cuasmrl;
using namespace cuasmrl::gpusim;

Measurement gpusim::measureKernel(Gpu &Device, const sass::Program &Prog,
                                  const KernelLaunch &Launch,
                                  const MeasureConfig &Config) {
  Measurement Out;
  Rng Noise(Config.Seed);

  // Warmup: primes the caches exactly like the paper's 100 warmup
  // iterations prime the real GPU's clocks and TLBs.
  for (unsigned I = 0; I < Config.WarmupIters; ++I) {
    RunResult R = Device.run(Prog, Launch, RunMode::Timed, Config.MaxBlocks);
    if (!R.Valid) {
      Out.Valid = false;
      Out.FaultReason = R.FaultReason;
      return Out;
    }
  }

  double Sum = 0.0, SumSq = 0.0;
  uint64_t CycleSum = 0;
  for (unsigned I = 0; I < Config.RepeatIters; ++I) {
    if (Config.ClearL2BetweenReps)
      Device.clearCaches();
    RunResult R = Device.run(Prog, Launch, RunMode::Timed, Config.MaxBlocks);
    if (!R.Valid) {
      Out.Valid = false;
      Out.FaultReason = R.FaultReason;
      return Out;
    }
    double Jitter = 1.0 + Noise.normal(0.0, Config.NoiseStddev);
    double TimeUs = R.TimeUs * Jitter;
    Sum += TimeUs;
    SumSq += TimeUs * TimeUs;
    CycleSum += R.Cycles;
    Out.Counters = R.Counters;
  }

  unsigned N = Config.RepeatIters;
  Out.MeanUs = Sum / N;
  double Var = SumSq / N - Out.MeanUs * Out.MeanUs;
  Out.StddevUs = Var > 0 ? std::sqrt(Var) : 0.0;
  Out.Cycles = CycleSum / N;
  return Out;
}

//===----------------------------------------------------------------------===//
// MeasurementCache
//===----------------------------------------------------------------------===//

double MeasurementCache::measureOrCompute(
    ScheduleKey Key, const std::function<double(uint64_t)> &Simulate) {
  // Every simulation path seeds from the Check hash: a pure function
  // of the schedule alone, identical whether this schedule won the
  // cache slot, lost it to a primary collision, or bypassed the cache
  // entirely — so cached values can never depend on arrival order.
  std::unique_lock<std::mutex> Lock(Mutex);
  auto Emplaced = Map.try_emplace(Key.Primary);
  Entry &E = Emplaced.first->second;
  if (!Emplaced.second) {
    // Someone got here first. If their simulation is still in flight,
    // wait for the published value rather than duplicating the work.
    Published.wait(Lock, [&E] { return E.Ready; });
    if (!E.Failed) {
      if (E.Check == Key.Check) {
        ++Hits;
        return E.ValueUs;
      }
      // Primary-hash collision: a different schedule owns this slot.
      // Fall back to an uncached simulation.
      ++Collisions;
      Lock.unlock();
      return Simulate(deriveSeed(BaseSeed, Key.Check));
    }
    // The previous computer threw: the key is not poisoned — reclaim
    // the slot and recompute. (Other waiters see Ready drop back to
    // false and resume waiting.)
    E.Ready = false;
    E.Failed = false;
  }
  E.Check = Key.Check;
  ++Misses;
  Lock.unlock();
  double ValueUs = std::nan("");
  try {
    ValueUs = Simulate(deriveSeed(BaseSeed, Key.Check));
  } catch (...) {
    // Mark the failure so waiters unblock and retry, then propagate.
    Lock.lock();
    E.Failed = true;
    E.Ready = true;
    Lock.unlock();
    Published.notify_all();
    throw;
  }
  Lock.lock();
  E.ValueUs = ValueUs;
  E.Ready = true;
  Lock.unlock();
  Published.notify_all();
  return ValueUs;
}

bool MeasurementCache::lookup(ScheduleKey Key, double &OutUs) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Map.find(Key.Primary);
  if (It == Map.end() || !It->second.Ready || It->second.Failed ||
      It->second.Check != Key.Check)
    return false;
  OutUs = It->second.ValueUs;
  return true;
}

uint64_t MeasurementCache::hits() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Hits;
}

uint64_t MeasurementCache::misses() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Misses;
}

uint64_t MeasurementCache::collisions() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Collisions;
}

size_t MeasurementCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  size_t Count = 0;
  for (const auto &KV : Map)
    Count += KV.second.Ready && !KV.second.Failed;
  return Count;
}

double MeasurementCache::hitRate() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  uint64_t Total = Hits + Misses;
  return Total ? static_cast<double>(Hits) / Total : 0.0;
}

void MeasurementCache::accumulate(PerfCounters &PC) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  PC.MeasureCacheHits += Hits;
  PC.MeasureCacheMisses += Misses;
}

MeasurementCache::ScheduleKey
MeasurementCache::keyFor(const sass::Program &Prog) {
  // Primary: FNV-1a 64-bit over the canonical printed form (the same
  // identity the per-game memoization used as a string key). Check: an
  // independent polynomial hash — FNV collisions in same-length texts
  // are basis-independent, so the guard must use a different scheme.
  std::string Text = Prog.str();
  ScheduleKey Key;
  Key.Primary = 0xcbf29ce484222325ull;
  Key.Check = 0x2545f4914f6cdd1dull;
  for (unsigned char C : Text) {
    Key.Primary = (Key.Primary ^ C) * 0x100000001b3ull;
    Key.Check = Key.Check * 0x9e3779b97f4a7c15ull + C + 1;
  }
  return Key;
}

uint64_t MeasurementCache::hashSchedule(const sass::Program &Prog) {
  return keyFor(Prog).Primary;
}

uint64_t MeasurementCache::deriveSeed(uint64_t BaseSeed, uint64_t Key) {
  // Pure function of (BaseSeed, Key), never of measurement order.
  return mixSeed(BaseSeed, Key);
}

//===- gpusim/Measurement.cpp --------------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "gpusim/Measurement.h"

#include "sass/Program.h"

#include <cmath>

using namespace cuasmrl;
using namespace cuasmrl::gpusim;

Measurement gpusim::measureKernel(Gpu &Device, const sass::Program &Prog,
                                  const KernelLaunch &Launch,
                                  const MeasureConfig &Config) {
  Measurement Out;
  Rng Noise(Config.Seed);

  // Warmup: primes the caches exactly like the paper's 100 warmup
  // iterations prime the real GPU's clocks and TLBs.
  for (unsigned I = 0; I < Config.WarmupIters; ++I) {
    RunResult R = Device.run(Prog, Launch, RunMode::Timed, Config.MaxBlocks);
    if (!R.Valid) {
      Out.Valid = false;
      Out.FaultReason = R.FaultReason;
      return Out;
    }
  }

  double Sum = 0.0, SumSq = 0.0;
  uint64_t CycleSum = 0;
  for (unsigned I = 0; I < Config.RepeatIters; ++I) {
    if (Config.ClearL2BetweenReps)
      Device.clearCaches();
    RunResult R = Device.run(Prog, Launch, RunMode::Timed, Config.MaxBlocks);
    if (!R.Valid) {
      Out.Valid = false;
      Out.FaultReason = R.FaultReason;
      return Out;
    }
    double Jitter = 1.0 + Noise.normal(0.0, Config.NoiseStddev);
    double TimeUs = R.TimeUs * Jitter;
    Sum += TimeUs;
    SumSq += TimeUs * TimeUs;
    CycleSum += R.Cycles;
    Out.Counters = R.Counters;
  }

  unsigned N = Config.RepeatIters;
  Out.MeanUs = Sum / N;
  double Var = SumSq / N - Out.MeanUs * Out.MeanUs;
  Out.StddevUs = Var > 0 ? std::sqrt(Var) : 0.0;
  Out.Cycles = CycleSum / N;
  return Out;
}

//===- gpusim/Memory.h - Functional memory spaces --------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The functional (value-carrying) memory spaces of the simulated GPU:
/// a segmented 64-bit global address space, per-block shared memory and
/// the kernel-parameter constant bank. Out-of-segment accesses set a
/// fault flag and return a poison pattern instead of aborting — invalid
/// schedules must *measurably corrupt* results (that is what the paper's
/// probabilistic testing detects), not crash the host.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_GPUSIM_MEMORY_H
#define CUASMRL_GPUSIM_MEMORY_H

#include <cstdint>
#include <cstring>
#include <vector>

namespace cuasmrl {
namespace gpusim {

/// Poison value returned by faulting reads.
constexpr uint32_t PoisonWord = 0xdeadbeefu;

/// Segmented global memory. Buffers are allocated at 256-byte aligned
/// addresses in a flat 64-bit space starting at 0x1000'0000.
class GlobalMemory {
public:
  /// Allocates \p Bytes and returns the device address.
  uint64_t allocate(uint64_t Bytes);

  /// Releases every allocation (used between measurement reps only to
  /// reset fault state; contents persist across kernel launches).
  void reset();

  /// \name Typed host access
  /// @{
  void write(uint64_t Addr, const void *Data, uint64_t Bytes);
  void read(uint64_t Addr, void *Data, uint64_t Bytes) const;

  template <typename T> void writeValue(uint64_t Addr, T Value) {
    write(Addr, &Value, sizeof(T));
  }
  template <typename T> T readValue(uint64_t Addr) const {
    T Value{};
    read(Addr, &Value, sizeof(T));
    return Value;
  }
  /// @}

  /// Device-side 32-bit word access with fault tracking.
  uint32_t loadWord(uint64_t Addr);
  void storeWord(uint64_t Addr, uint32_t Value);

  bool faulted() const { return Fault; }
  void clearFault() { Fault = false; }

  /// Total bytes allocated.
  uint64_t bytesAllocated() const;

private:
  struct Segment {
    uint64_t Base;
    std::vector<uint8_t> Data;
  };
  Segment *find(uint64_t Addr, uint64_t Bytes);
  const Segment *find(uint64_t Addr, uint64_t Bytes) const;

  std::vector<Segment> Segments;
  /// Most-recently-hit segment: device word accesses stream through one
  /// buffer at a time, so checking it first makes find() O(1) on the
  /// simulator's load/store path.
  mutable size_t LastSeg = 0;
  uint64_t NextBase = 0x10000000ull;
  bool Fault = false;
};

/// Per-block shared memory (byte-addressable scratchpad).
class SharedMemory {
public:
  explicit SharedMemory(uint32_t Bytes = 0) : Data(Bytes, 0) {}

  void resize(uint32_t Bytes) { Data.assign(Bytes, 0); }
  uint32_t size() const { return static_cast<uint32_t>(Data.size()); }

  uint32_t loadWord(uint32_t Addr);
  void storeWord(uint32_t Addr, uint32_t Value);

  bool faulted() const { return Fault; }
  void clearFault() { Fault = false; }

private:
  std::vector<uint8_t> Data;
  bool Fault = false;
};

/// The kernel-parameter constant bank (bank 0). Parameters live at the
/// conventional 0x160 offset, matching the `c[0x0][0x160]` spellings in
/// real Ampere SASS.
class ConstantBank {
public:
  static constexpr uint32_t ParamBase = 0x160;

  void setParams(const std::vector<uint8_t> &Params) { Data = Params; }

  /// Reads a 32-bit word at bank offset \p Offset (absolute, i.e.
  /// already including ParamBase).
  uint32_t loadWord(uint32_t Offset) const {
    if (Offset < ParamBase)
      return 0;
    uint32_t Rel = Offset - ParamBase;
    if (Rel + 4 > Data.size())
      return 0;
    uint32_t Value;
    std::memcpy(&Value, Data.data() + Rel, sizeof(Value));
    return Value;
  }

private:
  std::vector<uint8_t> Data;
};

} // namespace gpusim
} // namespace cuasmrl

#endif // CUASMRL_GPUSIM_MEMORY_H

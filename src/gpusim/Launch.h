//===- gpusim/Launch.h - Kernel launch descriptor and run result ------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Launch parameters (grid, warps per block, dynamic shared memory and
/// the kernel-parameter blob mapped at `c[0x0][0x160]`) and the result
/// of one simulated launch.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_GPUSIM_LAUNCH_H
#define CUASMRL_GPUSIM_LAUNCH_H

#include "gpusim/PerfCounters.h"

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace cuasmrl {
namespace gpusim {

/// How to launch a kernel.
struct KernelLaunch {
  unsigned GridX = 1;
  unsigned GridY = 1;
  unsigned GridZ = 1;
  unsigned WarpsPerBlock = 4;
  uint32_t SharedBytes = 0;
  /// Raw parameter bytes; parameter i's words appear at
  /// c[0x0][0x160 + 4*i].
  std::vector<uint8_t> Params;

  /// Fraction of this launch's global traffic that is *unique* chip-wide.
  /// Co-scheduled blocks on other SMs share tiles through the chip-wide
  /// L2 (e.g. an 8x8 GEMM grid re-reads each A-row 8 times); a single-SM
  /// simulation cannot observe that reuse, so the launch declares it and
  /// the DRAM bandwidth model charges only the unique share. 1.0 =
  /// fully streaming (rowwise kernels).
  double UniqueDramFraction = 1.0;

  unsigned numBlocks() const { return GridX * GridY * GridZ; }

  /// Appends one 32-bit parameter word.
  void addParam32(uint32_t Value) { appendBytes(&Value, sizeof(Value)); }
  /// Appends a 64-bit parameter (e.g. a buffer address).
  void addParam64(uint64_t Value) { appendBytes(&Value, sizeof(Value)); }
  void addParamF32(float Value) {
    uint32_t Bits;
    std::memcpy(&Bits, &Value, sizeof(Bits));
    addParam32(Bits);
  }

private:
  /// resize+memcpy rather than vector::insert of a raw byte range: the
  /// insert form trips a GCC 12 -O3 -Wstringop-overflow false positive.
  void appendBytes(const void *Src, size_t N) {
    size_t At = Params.size();
    Params.resize(At + N);
    std::memcpy(Params.data() + At, Src, N);
  }
};

/// Outcome of one simulated launch.
struct RunResult {
  bool Valid = true;         ///< False on fault/deadlock/poison.
  std::string FaultReason;   ///< Human-readable cause when !Valid.
  uint64_t Cycles = 0;       ///< Kernel duration in SM cycles (extrapolated
                             ///< over waves).
  double TimeUs = 0.0;       ///< Cycles / clock.
  PerfCounters Counters;     ///< Aggregated hardware counters.
};

} // namespace gpusim
} // namespace cuasmrl

#endif // CUASMRL_GPUSIM_LAUNCH_H

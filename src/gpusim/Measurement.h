//===- gpusim/Measurement.h - Kernel timing harness --------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's measurement methodology (§3.6): warm the GPU up, repeat
/// the kernel, clear L2 between iterations, and average CUDA-event
/// elapsed times; "the standard deviation of two individual measurements
/// is typically within 1%". The simulator is deterministic, so the
/// warmup/repeat structure is preserved at reduced counts and the ~1%
/// run-to-run variation is reintroduced as seeded multiplicative noise —
/// the RL reward sees the same noisy-oracle statistics the paper's agent
/// saw.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_GPUSIM_MEASUREMENT_H
#define CUASMRL_GPUSIM_MEASUREMENT_H

#include "gpusim/DecodedProgram.h"
#include "gpusim/Gpu.h"
#include "support/Rng.h"

#include <condition_variable>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace cuasmrl {
namespace sass {
class Program;
}
namespace gpusim {

/// Measurement configuration.
struct MeasureConfig {
  unsigned WarmupIters = 2;   ///< Paper: 100 (simulator is deterministic).
  unsigned RepeatIters = 3;   ///< Paper: 100.
  bool ClearL2BetweenReps = true;
  double NoiseStddev = 0.003; ///< ~0.3% multiplicative timing noise.
  unsigned MaxBlocks = 0;     ///< 0 = all blocks; reward loops restrict.
  uint64_t Seed = 1;
};

/// One measurement outcome.
struct Measurement {
  bool Valid = true;
  std::string FaultReason;
  double MeanUs = 0.0;
  double StddevUs = 0.0;
  uint64_t Cycles = 0;        ///< Mean cycles (noise-free).
  PerfCounters Counters;      ///< From the last repetition.
};

/// Times \p Prog on \p Device with the paper's warmup/repeat protocol.
/// Decodes the program into a kernel image once, then reuses it across
/// every warmup/repeat run.
///
/// Thread-safety: mutates \p Device (memory, cache state) — callers
/// running concurrently must each own their device; concurrent calls
/// on one Gpu are a data race.
Measurement measureKernel(Gpu &Device, const sass::Program &Prog,
                          const KernelLaunch &Launch,
                          const MeasureConfig &Config = MeasureConfig());

/// As above with a caller-maintained pre-decoded image (the assembly
/// game updates its image in O(1) per swap instead of redecoding).
Measurement measureKernel(Gpu &Device, const sass::Program &Prog,
                          const DecodedProgram &Decoded,
                          const KernelLaunch &Launch,
                          const MeasureConfig &Config = MeasureConfig());

/// One lane of measureKernelBatch(): a caller-owned device plus the
/// kernel and protocol to measure on it. The decoded image is optional
/// (a null \c Decoded is decoded once up front, like measureKernel's
/// program-only overload).
struct BatchMeasureLane {
  Gpu *Device = nullptr;
  const sass::Program *Prog = nullptr;
  const DecodedProgram *Decoded = nullptr;
  const KernelLaunch *Launch = nullptr;
  MeasureConfig Config;
};

/// Measures every lane with the warmup/repeat protocol advanced in
/// lockstep across lanes (iteration \c i of every lane, then iteration
/// \c i+1), with each lane's runs advancing group-by-group through
/// `Gpu::runLanes`. Lane \c i's Measurement is bit-identical to
/// `measureKernel(*L.Device, *L.Prog, [*L.Decoded,] *L.Launch,
/// L.Config)`: same run sequence on the same device, same per-lane
/// noise stream, same early exit on fault — lanes share nothing but
/// recycled event-buffer capacity (see docs/SIMULATOR.md, batch
/// determinism). Lane devices must be distinct objects.
std::vector<Measurement>
measureKernelBatch(const std::vector<BatchMeasureLane> &Lanes);

/// Shared schedule -> latency memoization for the reward loop.
///
/// Keyed by a canonical 64-bit hash of the schedule text
/// (hashSchedule()); one cache is shared by every AssemblyGame playing
/// the same kernel so concurrent episodes never re-simulate an
/// already-measured schedule. Invalid schedules are cached as NaN.
///
/// Thread-safety contract: every member is safe to call concurrently
/// from any number of threads. measureOrCompute() additionally gives a
/// single-simulation guarantee per key — when several threads miss on
/// the same key simultaneously, exactly one runs \p Simulate while the
/// others block until its value is published (the waiters count as
/// hits: they did not simulate). The simulation callback itself runs
/// *outside* the cache lock, so distinct keys simulate in parallel.
///
/// Determinism contract: the noise seed handed to \p Simulate is
/// derived from (BaseSeed, Key) only — never from arrival order — so a
/// schedule's cached latency is identical no matter which env measures
/// it first or how many workers race. This is what makes N-worker
/// training runs bit-reproducible.
class MeasurementCache {
public:
  /// Canonical schedule identity: \c Primary indexes the cache and
  /// seeds the noise; \c Check is an independent hash verified on
  /// every hit, so a 64-bit collision degrades to an uncached
  /// simulation instead of silently returning another schedule's
  /// latency.
  struct ScheduleKey {
    uint64_t Primary = 0;
    uint64_t Check = 0;
  };

  /// \p BaseSeed folds into every per-key noise seed (use the master
  /// training seed so different runs see different noise).
  explicit MeasurementCache(uint64_t BaseSeed = 1) : BaseSeed(BaseSeed) {}

  /// The seed every per-key noise stream derives from. Lets external
  /// lockstep measurement paths reproduce deriveSeed(baseSeed(), Check)
  /// — the exact seed measureOrCompute would hand their Simulate.
  uint64_t baseSeed() const { return BaseSeed; }

  /// Returns the cached latency for \p Key, or runs
  /// \p Simulate(noiseSeed) to produce, publish and return it. The
  /// noise seed always derives from (BaseSeed, Key.Check) — a pure
  /// function of the schedule on every path (slot winner, primary-
  /// collision fallback, cacheless), so values are order-invariant.
  /// If \p Simulate throws, the exception propagates and the key is
  /// left reclaimable (waiters retry; the key is never poisoned).
  double measureOrCompute(ScheduleKey Key,
                          const std::function<double(uint64_t)> &Simulate);

  /// Cached value lookup without computing (NaN-valued entries count).
  /// \returns true and fills \p OutUs when \p Key is published and the
  /// check hash matches (collisions report not-found, never another
  /// schedule's value).
  bool lookup(ScheduleKey Key, double &OutUs) const;

  /// \name Hit/miss accounting
  /// @{
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t collisions() const; ///< Primary-hash collisions observed.
  size_t size() const; ///< Published entries.
  double hitRate() const;
  /// Folds the hit/miss counters into \p PC (host-side counters).
  void accumulate(PerfCounters &PC) const;
  /// @}

  /// Canonical schedule key: per-statement content hashes (FNV-1a
  /// primary, independent polynomial check — see
  /// sass::Statement::contentHashes) combined with position mixes.
  /// Identical to ScheduleHash(Prog).key(), which maintains the same
  /// key in O(1) per swap.
  static ScheduleKey keyFor(const sass::Program &Prog);

  /// Primary hash alone (the cache index / noise-seed component).
  static uint64_t hashSchedule(const sass::Program &Prog);

  /// The order-invariant noise seed for \p Key under \p BaseSeed.
  static uint64_t deriveSeed(uint64_t BaseSeed, uint64_t Key);

private:
  struct Entry {
    double ValueUs = 0.0;
    uint64_t Check = 0;
    bool Ready = false;
    bool Failed = false; ///< Simulation threw; slot is reclaimable.
  };

  uint64_t BaseSeed;
  mutable std::mutex Mutex;
  std::condition_variable Published;
  std::unordered_map<uint64_t, Entry> Map;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Collisions = 0;
};

/// Incrementally-maintained schedule identity.
///
/// Caches each statement's content hashes once, and combines them with
/// per-position mixes into the MeasurementCache key:
///
///   Primary = seed(name) + Σ_i mixP(line1_i, i)
///   Check   = seed(name) + Σ_i mixC(line2_i, i)
///
/// Because the per-line hashes are position-independent and the
/// combination is a sum of independent position-mixed terms, swapping
/// adjacent statements updates the key in O(1): subtract the two old
/// terms, exchange the cached line hashes, add the two new terms. The
/// invariant `ScheduleHash(P).key() == incrementally-maintained key`
/// after any legal swap sequence is pinned by differential tests.
///
/// The Check component stays an independent hash (different per-line
/// scheme, different mixer), preserving the cache's collision guard and
/// the order-invariant noise-seed derivation (deriveSeed(Base, Check)
/// remains a pure function of the schedule).
class ScheduleHash {
public:
  ScheduleHash() = default;
  /// Full O(program) construction from scratch.
  explicit ScheduleHash(const sass::Program &Prog);

  /// Statements covered (== program size at construction).
  size_t size() const { return Lines1.size(); }

  /// Mirrors Program::swap(Upper, Upper+1) in O(1).
  void swap(size_t Upper);

  /// The current schedule key.
  MeasurementCache::ScheduleKey key() const { return {Primary, Check}; }

private:
  static uint64_t mixPrimary(uint64_t LineHash, uint64_t Pos);
  static uint64_t mixCheck(uint64_t LineHash, uint64_t Pos);

  std::vector<uint64_t> Lines1; ///< Per-statement FNV-1a content hash.
  std::vector<uint64_t> Lines2; ///< Per-statement polynomial hash.
  uint64_t Primary = 0;
  uint64_t Check = 0;
};

} // namespace gpusim
} // namespace cuasmrl

#endif // CUASMRL_GPUSIM_MEASUREMENT_H

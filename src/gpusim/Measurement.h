//===- gpusim/Measurement.h - Kernel timing harness --------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's measurement methodology (§3.6): warm the GPU up, repeat
/// the kernel, clear L2 between iterations, and average CUDA-event
/// elapsed times; "the standard deviation of two individual measurements
/// is typically within 1%". The simulator is deterministic, so the
/// warmup/repeat structure is preserved at reduced counts and the ~1%
/// run-to-run variation is reintroduced as seeded multiplicative noise —
/// the RL reward sees the same noisy-oracle statistics the paper's agent
/// saw.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_GPUSIM_MEASUREMENT_H
#define CUASMRL_GPUSIM_MEASUREMENT_H

#include "gpusim/Gpu.h"
#include "support/Rng.h"

namespace cuasmrl {
namespace sass {
class Program;
}
namespace gpusim {

/// Measurement configuration.
struct MeasureConfig {
  unsigned WarmupIters = 2;   ///< Paper: 100 (simulator is deterministic).
  unsigned RepeatIters = 3;   ///< Paper: 100.
  bool ClearL2BetweenReps = true;
  double NoiseStddev = 0.003; ///< ~0.3% multiplicative timing noise.
  unsigned MaxBlocks = 0;     ///< 0 = all blocks; reward loops restrict.
  uint64_t Seed = 1;
};

/// One measurement outcome.
struct Measurement {
  bool Valid = true;
  std::string FaultReason;
  double MeanUs = 0.0;
  double StddevUs = 0.0;
  uint64_t Cycles = 0;        ///< Mean cycles (noise-free).
  PerfCounters Counters;      ///< From the last repetition.
};

/// Times \p Prog on \p Device with the paper's warmup/repeat protocol.
Measurement measureKernel(Gpu &Device, const sass::Program &Prog,
                          const KernelLaunch &Launch,
                          const MeasureConfig &Config = MeasureConfig());

} // namespace gpusim
} // namespace cuasmrl

#endif // CUASMRL_GPUSIM_MEASUREMENT_H

//===- gpusim/DecodedProgram.h - Pre-decoded kernel image (SoA) --------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense, execution-ready image of one kernel's statement list. The
/// simulator's inner loops issue tens of thousands of instructions per
/// measurement; resolving latency keys (string construction + table
/// lookup), scanning modifier strings, reading control codes through
/// the heavyweight `sass::Statement` objects and chasing branch labels
/// through a hash map on *every* issue dominated the timed machine's
/// profile.
///
/// The image is stored as a structure-of-arrays: one parallel plane per
/// hot field (flags, wait mask, stall/yield, barrier slots, fixed
/// latency, opcode, branch target, bank slots, LDGSTS predecode), each
/// indexed by statement. The pipeline's warp-select / operand-fetch /
/// writeback stages touch *only* these planes — a warp eligibility
/// probe is two byte loads — while the execute stage reads the
/// assembled per-statement `DecodedInstr` record (also kept, positioned
/// identically) for modifier-derived semantics.
///
/// Swap-update invariants (what makes the image maintainable in O(1)
/// between the assembly game's measurements):
///  - every plane entry (and every record field) is a pure function of
///    its statement's *content* — control code included, which moves
///    with the instruction on `Program::swap` — never of its position,
///    except `BranchTarget`;
///  - the game only exchanges adjacent instruction statements, so labels
///    never move and every `BranchTarget` index stays valid across any
///    number of `swap()` calls;
///  - therefore `swap(Upper)` == exchanging the two entries of every
///    plane, and equals a full redecode of the swapped program
///    (asserted by differential tests).
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_GPUSIM_DECODEDPROGRAM_H
#define CUASMRL_GPUSIM_DECODEDPROGRAM_H

#include "sass/Instruction.h"

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

namespace cuasmrl {
namespace sass {
class Program;
}
namespace gpusim {

/// Pre-parsed comparison selector (ISETP/FSETP first modifier).
enum class CmpKind : uint8_t { None, LT, LE, GT, GE, EQ, NE };

/// Pre-parsed MUFU operation selector.
enum class MufuKind : uint8_t { None, Rcp, Rsq, Sqrt, Ex2, Lg2, Sin, Cos };

/// One statement's execution-ready record.
struct DecodedInstr {
  /// Modifier-derived semantic flags. Set for any opcode carrying the
  /// modifier; consumers test them only where the opcode gives them
  /// meaning (mirroring hasModifier() in the original switch).
  enum : uint16_t {
    ModWide = 1u << 0,     ///< .WIDE (IMAD 64-bit result).
    ModU32 = 1u << 1,      ///< .U32 (unsigned compare/convert).
    ModHi = 1u << 2,       ///< .HI (IMAD high word).
    ModX = 1u << 3,        ///< .X (carry chain).
    ModOr = 1u << 4,       ///< .OR (SETP combine function).
    ModBypass = 1u << 5,   ///< .BYPASS (L1-bypassing load).
    ModL = 1u << 6,        ///< .L (SHF left funnel shift).
    ModF32 = 1u << 7,      ///< .F32 (float atomics).
    ModF16 = 1u << 8,      ///< .F16 (F2F half involvement).
    ModFirstF32 = 1u << 9, ///< First modifier is "F32" (F2F direction).
  };

  uint16_t Mods = 0;
  CmpKind Cmp = CmpKind::None;
  MufuKind Mufu = MufuKind::None;
  uint8_t DataRegs = 1;     ///< dataRegCount(): regs per data operand.
  bool IsLabel = false;
  bool VarLat = false;      ///< Completion via scoreboard barrier.
  bool IsCtrlFlow = false;
  bool IsBarrierOrSync = false;
  uint16_t FixedLat = 1;    ///< groundTruthLatency(latencyKey()), else 1.
  /// Statement index of the BRA target label; -1 when the label is not
  /// in the program (or the record was decoded without one).
  int32_t BranchTarget = -1;

  /// Register-bank/operand-reuse model inputs: for source operand slots
  /// 1..7, the general-register index named by a Reg or Mem operand (RZ
  /// and non-general classes excluded), else -1.
  std::array<int16_t, 8> SlotReg{-1, -1, -1, -1, -1, -1, -1, -1};
  /// Bit s set when slot s carries a `.reuse`-flagged general register.
  uint8_t ReuseMask = 0;
  /// Any SlotReg entry >= 0 (lets the bank model skip empty scans).
  bool HasSlotRegs = false;

  bool has(uint16_t Mask) const { return (Mods & Mask) != 0; }

  /// Decodes one instruction's content (everything but BranchTarget,
  /// which needs the surrounding program).
  static DecodedInstr decode(const sass::Instruction &I);

  bool operator==(const DecodedInstr &O) const {
    return Mods == O.Mods && Cmp == O.Cmp && Mufu == O.Mufu &&
           DataRegs == O.DataRegs && IsLabel == O.IsLabel &&
           VarLat == O.VarLat && IsCtrlFlow == O.IsCtrlFlow &&
           IsBarrierOrSync == O.IsBarrierOrSync && FixedLat == O.FixedLat &&
           BranchTarget == O.BranchTarget && SlotReg == O.SlotReg &&
           ReuseMask == O.ReuseMask && HasSlotRegs == O.HasSlotRegs;
  }
  bool operator!=(const DecodedInstr &O) const { return !(*this == O); }
};

/// The per-statement image for one program, positionally aligned with
/// the program's statement list (labels included, flagged). Hot fields
/// live in parallel SoA planes; the assembled records remain available
/// through operator[] for the execute stage and differential tests.
class DecodedProgram {
public:
  /// Per-statement classification bits (the `flags()` plane).
  enum : uint8_t {
    FlagLabel = 1u << 0,         ///< Statement is a label.
    FlagVarLat = 1u << 1,        ///< Variable-latency instruction.
    FlagCtrlFlow = 1u << 2,      ///< Control-flow instruction.
    FlagBarrierOrSync = 1u << 3, ///< Barrier / sync opcode.
    FlagHasSlotRegs = 1u << 4,   ///< Any bank-slot register present.
    FlagLdgsts = 1u << 5,        ///< LDGSTS with a shared-memory operand.
    FlagYield = 1u << 6,         ///< Control-code yield hint.
  };

  DecodedProgram() = default;
  /// Full decode: O(program), including branch-target resolution and
  /// the control-code planes.
  explicit DecodedProgram(const sass::Program &Prog);

  size_t size() const { return Records.size(); }
  bool empty() const { return Records.empty(); }
  const DecodedInstr &operator[](size_t Index) const {
    return Records[Index];
  }

  /// \name Hot-plane accessors (pipeline stages)
  /// @{
  uint8_t flags(size_t I) const { return Flags[I]; }
  bool isLabel(size_t I) const { return (Flags[I] & FlagLabel) != 0; }
  bool varLat(size_t I) const { return (Flags[I] & FlagVarLat) != 0; }
  bool isCtrlFlow(size_t I) const { return (Flags[I] & FlagCtrlFlow) != 0; }
  bool isBarrierOrSync(size_t I) const {
    return (Flags[I] & FlagBarrierOrSync) != 0;
  }
  bool yield(size_t I) const { return (Flags[I] & FlagYield) != 0; }
  uint8_t waitMask(size_t I) const { return Wait[I]; }
  unsigned stall(size_t I) const { return StallCount[I]; }
  /// Scoreboard slot indices; -1 = none.
  int readBarrier(size_t I) const { return (Bars[I] >> 4) - 1; }
  int writeBarrier(size_t I) const { return (Bars[I] & 0xf) - 1; }
  uint16_t fixedLat(size_t I) const { return FixedLat[I]; }
  sass::Opcode opcode(size_t I) const { return Op[I]; }
  int32_t branchTarget(size_t I) const { return Target[I]; }
  /// LDGSTS shared-operand base register (-2 for RZ base, meaningful
  /// only when FlagLdgsts is set) and byte offset.
  int ldgstsBase(size_t I) const { return LdgBase[I]; }
  int64_t ldgstsOffset(size_t I) const { return LdgOff[I]; }
  /// Bank-model planes (slot 0 is the destination and never scanned).
  const std::array<int16_t, 8> &slotRegs(size_t I) const {
    return Records[I].SlotReg;
  }
  uint8_t reuseMask(size_t I) const { return Records[I].ReuseMask; }
  /// @}

  /// Mirrors Program::swap(Upper, Upper+1): exchanges the two entries
  /// of every plane. O(1); see the header comment for why this equals
  /// a full redecode.
  void swap(size_t Upper);

  /// Content-version stamp: every construction and mutation draws a
  /// fresh value from a process-global counter, while copies share
  /// their source's stamp — so two images with equal version() are
  /// guaranteed to hold identical planes. Lets per-run caches derived
  /// from the image (e.g. the timed machine's operand-penalty table)
  /// skip rebuilding between runs of an unchanged schedule.
  uint64_t version() const { return Version; }

  bool operator==(const DecodedProgram &O) const {
    return Records == O.Records && Flags == O.Flags && Wait == O.Wait &&
           StallCount == O.StallCount && Bars == O.Bars &&
           FixedLat == O.FixedLat && Op == O.Op && Target == O.Target &&
           LdgBase == O.LdgBase && LdgOff == O.LdgOff;
  }
  bool operator!=(const DecodedProgram &O) const { return !(*this == O); }

private:
  static uint64_t nextVersion();

  uint64_t Version = nextVersion();
  /// Assembled per-statement records (execute stage, tests, equality).
  std::vector<DecodedInstr> Records;
  /// SoA planes, positionally aligned with Records.
  std::vector<uint8_t> Flags;
  std::vector<uint8_t> Wait;
  std::vector<uint8_t> StallCount;
  std::vector<uint8_t> Bars; ///< (read+1)<<4 | (write+1).
  std::vector<uint16_t> FixedLat;
  std::vector<sass::Opcode> Op;
  std::vector<int32_t> Target;
  std::vector<int16_t> LdgBase;
  std::vector<int64_t> LdgOff;
};

} // namespace gpusim
} // namespace cuasmrl

#endif // CUASMRL_GPUSIM_DECODEDPROGRAM_H

//===- gpusim/DecodedProgram.h - Pre-decoded kernel image --------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense, execution-ready image of one kernel's statement list. The
/// simulator's inner loops issue tens of thousands of instructions per
/// measurement; resolving latency keys (string construction + table
/// lookup), scanning modifier strings and chasing branch labels through
/// a hash map on *every* issue dominated the timed machine's profile.
/// `DecodedProgram` hoists all of that to decode time: one record per
/// statement carrying the latency class, modifier-derived semantic
/// flags, pre-parsed comparison/MUFU selectors and the branch target as
/// a statement index — so `executeInstr` and the machines in Gpu.cpp
/// index plain arrays in the hot loop.
///
/// Swap-update invariants (what makes the image maintainable in O(1)
/// between the assembly game's measurements):
///  - a record is a pure function of its statement's *content*, never of
///    its position, except `BranchTarget`;
///  - the game only exchanges adjacent instruction statements, so labels
///    never move and every `BranchTarget` index stays valid across any
///    number of `swap()` calls;
///  - therefore `swap(Upper)` == exchanging the two records, and equals
///    a full redecode of the swapped program (asserted by differential
///    tests).
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_GPUSIM_DECODEDPROGRAM_H
#define CUASMRL_GPUSIM_DECODEDPROGRAM_H

#include "sass/Instruction.h"

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

namespace cuasmrl {
namespace sass {
class Program;
}
namespace gpusim {

/// Pre-parsed comparison selector (ISETP/FSETP first modifier).
enum class CmpKind : uint8_t { None, LT, LE, GT, GE, EQ, NE };

/// Pre-parsed MUFU operation selector.
enum class MufuKind : uint8_t { None, Rcp, Rsq, Sqrt, Ex2, Lg2, Sin, Cos };

/// One statement's execution-ready record.
struct DecodedInstr {
  /// Modifier-derived semantic flags. Set for any opcode carrying the
  /// modifier; consumers test them only where the opcode gives them
  /// meaning (mirroring hasModifier() in the original switch).
  enum : uint16_t {
    ModWide = 1u << 0,     ///< .WIDE (IMAD 64-bit result).
    ModU32 = 1u << 1,      ///< .U32 (unsigned compare/convert).
    ModHi = 1u << 2,       ///< .HI (IMAD high word).
    ModX = 1u << 3,        ///< .X (carry chain).
    ModOr = 1u << 4,       ///< .OR (SETP combine function).
    ModBypass = 1u << 5,   ///< .BYPASS (L1-bypassing load).
    ModL = 1u << 6,        ///< .L (SHF left funnel shift).
    ModF32 = 1u << 7,      ///< .F32 (float atomics).
    ModF16 = 1u << 8,      ///< .F16 (F2F half involvement).
    ModFirstF32 = 1u << 9, ///< First modifier is "F32" (F2F direction).
  };

  uint16_t Mods = 0;
  CmpKind Cmp = CmpKind::None;
  MufuKind Mufu = MufuKind::None;
  uint8_t DataRegs = 1;     ///< dataRegCount(): regs per data operand.
  bool IsLabel = false;
  bool VarLat = false;      ///< Completion via scoreboard barrier.
  bool IsCtrlFlow = false;
  bool IsBarrierOrSync = false;
  uint16_t FixedLat = 1;    ///< groundTruthLatency(latencyKey()), else 1.
  /// Statement index of the BRA target label; -1 when the label is not
  /// in the program (or the record was decoded without one).
  int32_t BranchTarget = -1;

  /// Register-bank/operand-reuse model inputs: for source operand slots
  /// 1..7, the general-register index named by a Reg or Mem operand (RZ
  /// and non-general classes excluded), else -1.
  std::array<int16_t, 8> SlotReg{-1, -1, -1, -1, -1, -1, -1, -1};
  /// Bit s set when slot s carries a `.reuse`-flagged general register.
  uint8_t ReuseMask = 0;
  /// Any SlotReg entry >= 0 (lets the bank model skip empty scans).
  bool HasSlotRegs = false;

  bool has(uint16_t Mask) const { return (Mods & Mask) != 0; }

  /// Decodes one instruction's content (everything but BranchTarget,
  /// which needs the surrounding program).
  static DecodedInstr decode(const sass::Instruction &I);

  bool operator==(const DecodedInstr &O) const {
    return Mods == O.Mods && Cmp == O.Cmp && Mufu == O.Mufu &&
           DataRegs == O.DataRegs && IsLabel == O.IsLabel &&
           VarLat == O.VarLat && IsCtrlFlow == O.IsCtrlFlow &&
           IsBarrierOrSync == O.IsBarrierOrSync && FixedLat == O.FixedLat &&
           BranchTarget == O.BranchTarget && SlotReg == O.SlotReg &&
           ReuseMask == O.ReuseMask && HasSlotRegs == O.HasSlotRegs;
  }
  bool operator!=(const DecodedInstr &O) const { return !(*this == O); }
};

/// The per-statement record array for one program, positionally aligned
/// with the program's statement list (labels included, flagged).
class DecodedProgram {
public:
  DecodedProgram() = default;
  /// Full decode: O(program), including branch-target resolution.
  explicit DecodedProgram(const sass::Program &Prog);

  size_t size() const { return Records.size(); }
  bool empty() const { return Records.empty(); }
  const DecodedInstr &operator[](size_t Index) const {
    return Records[Index];
  }

  /// Mirrors Program::swap(Upper, Upper+1): exchanges the two records.
  /// O(1); see the header comment for why this equals a full redecode.
  void swap(size_t Upper) {
    std::swap(Records[Upper], Records[Upper + 1]);
  }

  bool operator==(const DecodedProgram &O) const {
    return Records == O.Records;
  }
  bool operator!=(const DecodedProgram &O) const { return !(*this == O); }

private:
  std::vector<DecodedInstr> Records;
};

} // namespace gpusim
} // namespace cuasmrl

#endif // CUASMRL_GPUSIM_DECODEDPROGRAM_H

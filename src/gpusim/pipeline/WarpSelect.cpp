//===- gpusim/pipeline/WarpSelect.cpp ----------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The warp-select stage is header-inline (see WarpSelect.h): probes run
// for every resident warp on every scheduler-cycle, so the definitions
// live in the header where the issue loop's TU can inline them. This TU
// only anchors the stage for the build graph.
//
//===----------------------------------------------------------------------===//

#include "gpusim/pipeline/WarpSelect.h"

//===- gpusim/pipeline/OracleCore.cpp ----------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "gpusim/pipeline/OracleCore.h"

#include "gpusim/DecodedProgram.h"
#include "gpusim/Gpu.h"
#include "gpusim/pipeline/ExecContext.h"
#include "gpusim/pipeline/ExecuteStage.h"
#include "gpusim/pipeline/SimState.h"
#include "sass/Program.h"

#include <vector>

using namespace cuasmrl;
using namespace cuasmrl::gpusim;

bool gpusim::runBlockOracle(Gpu &Device, const sass::Program &Prog,
                            const DecodedProgram &Decoded,
                            const KernelLaunch &Launch,
                            const ConstantBank &Consts, unsigned CtaLinear,
                            std::string &FaultReason) {
  SharedMemory Shared(Launch.SharedBytes);
  std::vector<WarpSimState> Warps(Launch.WarpsPerBlock);
  for (unsigned WI = 0; WI < Launch.WarpsPerBlock; ++WI) {
    Warps[WI].WarpInBlock = WI;
    Warps[WI].CtaLinear = CtaLinear;
  }

  unsigned Live = Launch.WarpsPerBlock;
  uint64_t Budget = 100'000'000;
  uint64_t Executed = 0;

  while (Live > 0) {
    bool Progress = false;
    unsigned AtBarrier = 0;
    for (WarpSimState &W : Warps) {
      if (W.Done)
        continue;
      if (W.AtBarrier) {
        ++AtBarrier;
        continue;
      }
      // Step one instruction.
      while (W.Pc < Prog.size() && Decoded.isLabel(W.Pc))
        ++W.Pc;
      if (W.Pc >= Prog.size()) {
        W.Done = true;
        --Live;
        continue;
      }
      const sass::Instruction &I = Prog.stmt(W.Pc).instr();
      OracleExecCtx Ctx{W,      Shared, Device.globalMemory(), Consts,
                        Launch, 32,     Executed};
      ExecResult R = executeOracle(I, Decoded[W.Pc], Ctx);
      ++Executed;
      Progress = true;
      switch (R.K) {
      case ExecResult::Kind::Normal:
        ++W.Pc;
        break;
      case ExecResult::Kind::Branch: {
        if (R.TargetIdx < 0) {
          FaultReason = "branch to unknown label '" +
                        std::string(R.Target) + "'";
          return false;
        }
        W.Pc = static_cast<size_t>(R.TargetIdx);
        break;
      }
      case ExecResult::Kind::Exit:
        W.Done = true;
        --Live;
        break;
      case ExecResult::Kind::BlockBarrier:
        ++W.Pc;
        W.AtBarrier = true;
        ++AtBarrier;
        break;
      }
      if (Executed > Budget) {
        FaultReason = "oracle instruction budget exceeded";
        return false;
      }
    }
    if (Live > 0 && AtBarrier == Live) {
      for (WarpSimState &W : Warps)
        W.AtBarrier = false;
      Progress = true;
    }
    if (!Progress && Live > 0) {
      FaultReason = "oracle made no progress (barrier mismatch?)";
      return false;
    }
  }

  if (Shared.faulted()) {
    FaultReason = "shared-memory access out of bounds";
    return false;
  }
  if (Device.globalMemory().faulted()) {
    FaultReason = "global-memory access outside any allocation";
    Device.globalMemory().clearFault();
    return false;
  }
  return true;
}

//===- gpusim/pipeline/OracleCore.h - Architectural reference machine --------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The program-order reference execution (§4.1): round-robin across a
/// block's warps with immediate register commits and barriers released
/// when every live warp waits. Defines "the right answer" for
/// probabilistic testing; produces no timing. Shares the execute stage
/// (`executeOracle`) with the timed machine — the only per-machine code
/// is this driver loop.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_GPUSIM_PIPELINE_ORACLECORE_H
#define CUASMRL_GPUSIM_PIPELINE_ORACLECORE_H

#include <string>

namespace cuasmrl {
namespace sass {
class Program;
}
namespace gpusim {

class Gpu;
class DecodedProgram;
class ConstantBank;
struct KernelLaunch;

/// Runs one block in program order (round-robin across warps, barriers
/// respected). Returns false on fault/runaway, with the reason in
/// \p FaultReason.
bool runBlockOracle(Gpu &Device, const sass::Program &Prog,
                    const DecodedProgram &Decoded,
                    const KernelLaunch &Launch, const ConstantBank &Consts,
                    unsigned CtaLinear, std::string &FaultReason);

} // namespace gpusim
} // namespace cuasmrl

#endif // CUASMRL_GPUSIM_PIPELINE_ORACLECORE_H

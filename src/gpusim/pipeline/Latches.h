//===- gpusim/pipeline/Latches.h - Per-cycle stage latches -------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The latch structs handed between the timed machine's pipeline
/// stages each scheduler-cycle:
///
///   warp select ──SelectLatch──▶ fetch ──FetchLatch──▶ operand fetch
///     ──OperandLatch──▶ execute dispatch ──ExecLatch──▶ writeback
///
/// A latch is the *complete* contract between adjacent stages: a stage
/// reads only its input latch (plus the shared warp/decode state) and
/// writes only its output latch, which is what makes each stage
/// testable in isolation. The latches are plain values recreated every
/// cycle — "per-cycle" in the hardware sense, not persistent state.
///
/// `Scheduler` is the only cross-cycle scheduler-private state: the
/// greedy-then-oldest sticky warp (select stage) and the operand reuse
/// cache (operand-fetch stage) both belong to one scheduler and persist
/// between its issue slots.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_GPUSIM_PIPELINE_LATCHES_H
#define CUASMRL_GPUSIM_PIPELINE_LATCHES_H

#include "gpusim/Executor.h"

#include <array>
#include <cstddef>
#include <cstdint>

namespace cuasmrl {
namespace sass {
class Instruction;
}
namespace gpusim {

/// Cross-cycle per-scheduler state: sticky-warp selection and the
/// operand reuse cache (§2.3 load balancing, §3.4 reuse flags).
struct Scheduler {
  int StickyWarp = -1;
  int ReuseWarp = -1;
  std::array<int, 8> ReuseRegs{}; ///< Reg per operand slot, -1 empty.
  bool ReuseValid = false;
};

/// Select → fetch: which warp won this scheduler's issue slot.
struct SelectLatch {
  int Warp = -1; ///< Warp index; -1 when no warp was eligible.
};

/// Fetch → operand fetch / execute: the instruction behind the warp's
/// (label-skipped) Pc, materialized from the program statement list.
struct FetchLatch {
  size_t Pc = 0;
  const sass::Instruction *Instr = nullptr;
};

/// Operand fetch → execute: bank-conflict issue penalty in cycles
/// (reuse-cache hits excluded from bank accounting).
struct OperandLatch {
  unsigned BankPenalty = 0;
};

/// Execute → writeback: control-flow guidance plus the latency class
/// the writeback stage turns into events.
struct ExecLatch {
  ExecResult R;
  bool VarLat = false;
  uint64_t FixedLat = 1;
};

} // namespace gpusim
} // namespace cuasmrl

#endif // CUASMRL_GPUSIM_PIPELINE_LATCHES_H

//===- gpusim/pipeline/Writeback.cpp -----------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "gpusim/pipeline/Writeback.h"

#include <cassert>

using namespace cuasmrl;
using namespace cuasmrl::gpusim;

void gpusim::commitReadyEventsSlow(EventQueue &Q,
                                   std::vector<WarpSimState> &Warps,
                                   uint64_t Now, PerfCounters &C) {
  while (!Q.empty() && Q.front().Cycle <= Now) {
    Event E = Q.pop();
    ++C.WbEventsFired;
    if (E.ReleaseBlock >= 0) {
      ++C.WbBarrierReleases;
      for (WarpSimState &W : Warps)
        if (W.Block == static_cast<unsigned>(E.ReleaseBlock))
          W.AtBarrier = false;
      continue;
    }
    WarpSimState &W = Warps[E.Warp];
    if (E.ReleaseSlot >= 0) {
      assert(W.Scoreboard[E.ReleaseSlot] > 0 && "scoreboard underflow");
      scoreboardRelease(W, E.ReleaseSlot);
    }
    C.WbWritesCommitted += E.Writes.size();
    for (const DeferredWrite &DW : E.Writes) {
      switch (DW.Where) {
      case DeferredWrite::File::R:
        writeRegR(W, DW.Index, DW.Value, E.Cycle);
        break;
      case DeferredWrite::File::UR:
        W.UR[DW.Index] = DW.Value;
        break;
      case DeferredWrite::File::P:
        writePredP(W, DW.Index, DW.Value != 0, E.Cycle);
        break;
      case DeferredWrite::File::UP:
        W.UP[DW.Index] = DW.Value != 0;
        break;
      }
    }
    Q.recycleWriteBuf(std::move(E.Writes));
  }
}

void gpusim::scheduleBarrierRelease(EventQueue &Q,
                                    const std::vector<WarpSimState> &Warps,
                                    unsigned Block, uint64_t Now,
                                    uint64_t BarrierLatency) {
  unsigned Waiting = 0, Live = 0;
  for (const WarpSimState &W : Warps) {
    if (W.Block != Block)
      continue;
    if (W.Done)
      continue;
    ++Live;
    if (W.AtBarrier)
      ++Waiting;
  }
  if (Live == 0 || Waiting < Live)
    return;
  Event E;
  E.Cycle = Now + BarrierLatency;
  E.Warp = -1;
  E.ReleaseSlot = -1;
  E.ReleaseBlock = static_cast<int>(Block);
  Q.push(std::move(E));
}

uint64_t MemPipe::completion(sass::Opcode Op, bool BypassL1, uint64_t Now,
                             double UniqueDramFraction, uint64_t GlobalWords,
                             uint64_t GlobalMinAddr, uint64_t SharedWords,
                             uint64_t ConstWords, PerfCounters &C) {
  if (GlobalWords) {
    // Coalesced warp footprint: lane-0 words times the warp width.
    uint64_t Bytes = GlobalWords * 4ull * Spec.LanesPerWarp;
    uint64_t Lines = std::max<uint64_t>(1, Bytes / Spec.CacheLineBytes);
    uint64_t LineBase = GlobalMinAddr & ~static_cast<uint64_t>(
                                            Spec.CacheLineBytes - 1);
    uint64_t Worst = 0;
    for (uint64_t L = 0; L < Lines; ++L) {
      uint64_t Addr = LineBase + L * Spec.CacheLineBytes;
      uint64_t Lat;
      if (!BypassL1 && L1.access(Addr)) {
        ++C.L1Hits;
        Lat = Spec.L1Latency;
      } else {
        if (!BypassL1)
          ++C.L1Misses;
        if (L2.access(Addr)) {
          ++C.L2Hits;
          Lat = Spec.L2Latency;
        } else {
          ++C.L2Misses;
          // Only the launch's unique share of the traffic occupies DRAM
          // bandwidth: the remainder is served by co-resident blocks'
          // fetches hitting the chip-wide L2 (see KernelLaunch).
          double UniqueBytes = Spec.CacheLineBytes * UniqueDramFraction;
          double Start = std::max<double>(static_cast<double>(Now), DramFree);
          DramFree = Start + UniqueBytes / Spec.DramBytesPerCycle;
          C.DramBytes += static_cast<uint64_t>(UniqueBytes);
          MemBusyAccum += UniqueBytes / Spec.DramBytesPerCycle;
          Lat = Spec.DramLatency +
                static_cast<uint64_t>(Start - static_cast<double>(Now));
        }
      }
      Worst = std::max(Worst, Lat);
    }
    uint64_t LsuStart = std::max(Now, LsuFree);
    LsuFree = LsuStart + std::max<uint64_t>(1, Lines / 2);
    MemBusyAccum += static_cast<double>(std::max<uint64_t>(1, Lines / 2));
    ++C.LsuIssues;
    uint64_t Extra =
        Op == sass::Opcode::LDGSTS ? 10 : 0; // Shared-write leg.
    return LsuStart + Worst + Extra;
  }
  if (SharedWords) {
    ++C.SharedAccesses;
    ++C.LsuIssues;
    uint64_t LsuStart = std::max(Now, LsuFree);
    LsuFree = LsuStart + 1;
    MemBusyAccum += 1.0;
    return LsuStart + Spec.SharedLatency;
  }
  if (ConstWords)
    return Now + Spec.ConstLatency;
  // Non-memory variable latency (MUFU, S2R, SHFL, conversions).
  return Now + 20;
}

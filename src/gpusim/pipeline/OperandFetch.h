//===- gpusim/pipeline/OperandFetch.h - Operand-fetch stage ------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stage 3 of the timed pipeline: the register-bank / operand-reuse
/// model (§3.4). Source operands read from the same bank in the same
/// cycle serialize; operands flagged `.reuse` are served from the
/// operand collector's reuse cache and skip the bank entirely — but the
/// cache belongs to one scheduler and survives only while that
/// scheduler keeps issuing the same warp.
///
/// The stage is a pure function of the scheduler's reuse state and the
/// instruction's pre-decoded bank slots (`DecodedInstr::SlotReg`), so
/// it is testable on hand-built records without a machine.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_GPUSIM_PIPELINE_OPERANDFETCH_H
#define CUASMRL_GPUSIM_PIPELINE_OPERANDFETCH_H

#include "gpusim/DecodedProgram.h"
#include "gpusim/PerfCounters.h"
#include "gpusim/pipeline/Latches.h"

namespace cuasmrl {
namespace gpusim {

/// The operand-fetch stage.
struct OperandFetch {
  /// Computes the operand latch for issuing \p D on \p WarpIdx: the
  /// extra issue-slot cycles lost to register-bank conflicts, with
  /// reuse-cache hits (counted into \p C) excluded from bank
  /// accounting. Also counts the reuse-cache invalidation when the
  /// scheduler switched warps under live reuse flags.
  static OperandLatch run(Scheduler &S, unsigned WarpIdx,
                          const DecodedInstr &D, unsigned RegisterBanks,
                          unsigned BankConflictPenalty, PerfCounters &C);

  /// The penalty of \p D with the reuse cache out of play — a pure
  /// function of the instruction's bank slots, so it can be tabulated
  /// once per run. Equals what run() computes when `ReuseUsable` is
  /// false.
  static unsigned noReusePenalty(const DecodedInstr &D,
                                 unsigned RegisterBanks,
                                 unsigned BankConflictPenalty);

  /// Tabulates noReusePenalty() for every statement of \p D into
  /// \p Table (indexed by statement; 0 for labels). O(program) — run
  /// once per beginRun, it turns the per-issue bank scan into a table
  /// load whenever the scheduler's reuse cache is cold or aimed at
  /// another warp.
  static void buildPenaltyTable(const DecodedProgram &D,
                                unsigned RegisterBanks,
                                unsigned BankConflictPenalty,
                                std::vector<uint16_t> &Table);

  /// As run(), but served from \p NoReusePenalty (the table entry for
  /// this statement) on the no-reuse fast path. Bit-identical counter
  /// effects to run().
  static OperandLatch runTabulated(Scheduler &S, unsigned WarpIdx,
                                   const DecodedInstr &D,
                                   uint16_t NoReusePenalty,
                                   unsigned RegisterBanks,
                                   unsigned BankConflictPenalty,
                                   PerfCounters &C) {
    if (S.ReuseValid && S.ReuseWarp != static_cast<int>(WarpIdx))
      ++C.ReuseMisses; // Warp switch invalidated the reuse cache.
    if (!D.HasSlotRegs)
      return OperandLatch{0};
    if (!S.ReuseValid || S.ReuseWarp != static_cast<int>(WarpIdx)) {
      C.BankConflictCycles += NoReusePenalty;
      return OperandLatch{NoReusePenalty};
    }
    return runSlow(S, WarpIdx, D, RegisterBanks, BankConflictPenalty, C);
  }

  /// Latches \p D's `.reuse`-flagged source registers into the
  /// scheduler's reuse cache for the next issue (or invalidates it when
  /// the instruction carries no reuse flags).
  static void updateReuse(Scheduler &S, unsigned WarpIdx,
                          const DecodedInstr &D);

private:
  /// The bank scan with a live reuse cache (reuse-hit exclusion).
  static OperandLatch runSlow(Scheduler &S, unsigned WarpIdx,
                              const DecodedInstr &D, unsigned RegisterBanks,
                              unsigned BankConflictPenalty, PerfCounters &C);
};

} // namespace gpusim
} // namespace cuasmrl

#endif // CUASMRL_GPUSIM_PIPELINE_OPERANDFETCH_H

//===- gpusim/pipeline/TimedCore.h - The staged timed machine ----------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cycle-approximate SM model, assembled from the pipeline stages:
///
///   WarpSelect::pick ─▶ fetchStage ─▶ OperandFetch::run
///     ─▶ executeTimed ─▶ event plumbing (EventQueue / MemPipe)
///
/// One instance simulates one SM running groups of resident blocks to
/// completion. The machine is *rebindable*: `beginRun()` points it at a
/// program/image/launch and clears per-run results, while allocation
/// capacity (warp vector, shared memories, event heap, write-buffer
/// pool) carries over — so a `Gpu` can keep one machine as scratch
/// across the thousands of runs a measurement or RL episode performs.
/// Rebinding is behaviorally invisible: every run starts from the same
/// cleared state a freshly constructed machine would have.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_GPUSIM_PIPELINE_TIMEDCORE_H
#define CUASMRL_GPUSIM_PIPELINE_TIMEDCORE_H

#include "gpusim/DecodedProgram.h"
#include "gpusim/Gpu.h"
#include "gpusim/PerfCounters.h"
#include "gpusim/pipeline/Latches.h"
#include "gpusim/pipeline/SimState.h"
#include "gpusim/pipeline/Writeback.h"

#include <string>
#include <vector>

namespace cuasmrl {
namespace sass {
class Program;
}
namespace gpusim {

/// The staged timed machine. One instance per SM-sized simulation;
/// reusable across runs via beginRun().
class TimedMachine {
public:
  explicit TimedMachine(Gpu &Device);

  /// Binds the machine to a kernel for one run (one `Gpu::run` call or
  /// one batch lane). \p Decoded must be positionally aligned with
  /// \p Prog. Clears per-run state (events, counters, fault, elapsed);
  /// keeps allocations.
  void beginRun(const sass::Program &Prog, const DecodedProgram &Decoded,
                const KernelLaunch &Launch);

  /// Runs blocks [FirstCta, FirstCta + NumBlocks) concurrently; returns
  /// false on fault. Leftover completion events carry into the next
  /// group of the same run (matching the pre-staged machine).
  bool runGroup(unsigned FirstCta, unsigned NumBlocks);

  uint64_t elapsed() const { return Elapsed; }
  const PerfCounters &counters() const { return Counters; }
  const std::string &faultReason() const { return FaultReason; }

  /// \name Write-buffer pool donation (batch lanes)
  /// @{
  std::vector<std::vector<DeferredWrite>> releaseWriteBufPool() {
    return Events.releaseWriteBufPool();
  }
  void adoptWriteBufPool(std::vector<std::vector<DeferredWrite>> &&Pool) {
    Events.adoptWriteBufPool(std::move(Pool));
  }
  /// @}

private:
  /// Drives one issue slot for \p WarpIdx through the fetch / operand /
  /// execute / writeback stages.
  void issue(Scheduler &S, unsigned WarpIdx);
  void fault(std::string Reason) {
    if (FaultReason.empty())
      FaultReason = std::move(Reason);
  }

  Gpu &Device;
  const GpuSpec &Spec;
  const sass::Program *Prog = nullptr;
  const DecodedProgram *Decoded = nullptr;
  const KernelLaunch *Launch = nullptr;
  ConstantBank Consts;

  std::vector<WarpSimState> Warps;
  std::vector<SharedMemory> SharedPerBlock;
  std::vector<Scheduler> Schedulers;
  EventQueue Events;
  MemPipe Mem;
  /// Per-statement bank penalty with the reuse cache out of play,
  /// tabulated by beginRun (see OperandFetch::buildPenaltyTable) and
  /// cached across runs keyed on the image's content version.
  std::vector<uint16_t> OperandPenalty;
  uint64_t OperandPenaltyVersion = 0;

  uint64_t Now = 0;
  uint64_t Elapsed = 0;
  unsigned LiveWarps = 0;
  PerfCounters Counters;
  std::string FaultReason;
};

} // namespace gpusim
} // namespace cuasmrl

#endif // CUASMRL_GPUSIM_PIPELINE_TIMEDCORE_H

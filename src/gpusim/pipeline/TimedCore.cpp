//===- gpusim/pipeline/TimedCore.cpp -----------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "gpusim/pipeline/TimedCore.h"

#include "gpusim/pipeline/ExecContext.h"
#include "gpusim/pipeline/ExecuteStage.h"
#include "gpusim/pipeline/Fetch.h"
#include "gpusim/pipeline/OperandFetch.h"
#include "gpusim/pipeline/WarpSelect.h"
#include "sass/Program.h"

#include <algorithm>
#include <cassert>

using namespace cuasmrl;
using namespace cuasmrl::gpusim;

TimedMachine::TimedMachine(Gpu &Device)
    : Device(Device), Spec(Device.Spec), Mem{Device.L1, Device.L2,
                                             Device.Spec} {}

void TimedMachine::beginRun(const sass::Program &P, const DecodedProgram &D,
                            const KernelLaunch &L) {
  assert(D.size() == P.size() && "decoded image out of sync with program");
  Prog = &P;
  Decoded = &D;
  Launch = &L;
  Consts.setParams(L.Params);
  // Per-run results start from scratch; allocations (warp vector, event
  // heap, write-buffer pool) carry over — behaviorally invisible, see
  // the header comment.
  Events.reset();
  Counters = PerfCounters();
  FaultReason.clear();
  Elapsed = 0;
  Mem.MemBusyAccum = 0.0;
  // The penalty table is a pure function of the image content (and the
  // machine's fixed spec), so an unchanged version() skips the rebuild —
  // measurement reps and batch turns rebind the same image repeatedly.
  if (OperandPenaltyVersion != D.version() ||
      OperandPenalty.size() != D.size()) {
    OperandFetch::buildPenaltyTable(D, Spec.RegisterBanks,
                                    Spec.BankConflictPenalty, OperandPenalty);
    OperandPenaltyVersion = D.version();
  }
}

void TimedMachine::issue(Scheduler &S, unsigned WarpIdx) {
  WarpSimState &W = Warps[WarpIdx];
  const DecodedProgram &D = *Decoded;

  // Fetch: the select stage already advanced W.Pc past labels.
  FetchLatch F = fetchStage(*Prog, W);
  const sass::Instruction &I = *F.Instr;
  const DecodedInstr &DI = D[F.Pc];

  // Operand fetch: reuse-cache accounting + bank-conflict penalty.
  OperandLatch Operands = OperandFetch::runTabulated(
      S, WarpIdx, DI, OperandPenalty[F.Pc], Spec.RegisterBanks,
      Spec.BankConflictPenalty, Counters);

  bool VarLat = DI.VarLat;
  uint64_t FixedLat = DI.FixedLat;

  TimedExecCtx Ctx{W,
                   SharedPerBlock[W.Block],
                   Device.globalMemory(),
                   Consts,
                   *Launch,
                   Spec.LanesPerWarp,
                   Now,
                   Now + FixedLat,
                   VarLat,
                   false,
                   VarLat ? Events.takeWriteBuf()
                          : std::vector<DeferredWrite>{},
                   0,
                   ~0ull,
                   0,
                   0};

  // LDGSTS groups must issue in ascending-offset order (hardware
  // idiosyncrasy the paper identifies in §3.5); a violation corrupts the
  // transferred data.
  uint8_t Flags = D.flags(F.Pc);
  if (Flags & DecodedProgram::FlagLdgsts) {
    int Base = D.ldgstsBase(F.Pc);
    int64_t Offset = D.ldgstsOffset(F.Pc);
    if (W.LdgstsBase == Base && Offset < W.LdgstsOffset) {
      Ctx.CorruptShared = true;
      fault("LDGSTS group issued out of order");
    }
    W.LdgstsBase = Base;
    W.LdgstsOffset = Offset;
  } else if (Flags & (DecodedProgram::FlagBarrierOrSync |
                      DecodedProgram::FlagCtrlFlow)) {
    W.LdgstsBase = -1;
  }

  // Execute dispatch.
  ExecResult R = executeTimed(I, DI, Ctx);
  ++Counters.IssuedInstrs;
  if (VarLat)
    ++Counters.ExecVarLatOps;
  else
    ++Counters.ExecFixedLatOps;

  // Writeback: completion & scoreboard plumbing for variable-latency
  // instructions.
  if (VarLat && R.Predicated) {
    uint64_t Completion = Mem.completion(
        D.opcode(F.Pc), DI.has(DecodedInstr::ModBypass), Now,
        Launch->UniqueDramFraction, Ctx.GlobalWords, Ctx.GlobalMinAddr,
        Ctx.SharedWords, Ctx.ConstWords, Counters);
    int WriteBar = D.writeBarrier(F.Pc);
    bool NeedEvent = !Ctx.Deferred.empty() || WriteBar >= 0;
    if (NeedEvent) {
      for (const DeferredWrite &DW : Ctx.Deferred)
        if (DW.Where == DeferredWrite::File::R)
          W.InFlightUntil[DW.Index] = Completion;
      Event E;
      E.Cycle = Completion;
      E.Warp = static_cast<int>(WarpIdx);
      E.ReleaseSlot = WriteBar;
      if (E.ReleaseSlot >= 0)
        scoreboardAcquire(W, E.ReleaseSlot);
      E.ReleaseBlock = -1;
      E.Writes = std::move(Ctx.Deferred);
      Events.push(std::move(E));
    } else {
      Events.recycleWriteBuf(std::move(Ctx.Deferred));
    }
    int ReadBar = D.readBarrier(F.Pc);
    if (ReadBar >= 0) {
      // Sources are consumed once the request leaves the LSU.
      Event E;
      E.Cycle = Now + std::min<uint64_t>(Completion - Now, 15);
      E.Warp = static_cast<int>(WarpIdx);
      E.ReleaseSlot = ReadBar;
      scoreboardAcquire(W, ReadBar);
      E.ReleaseBlock = -1;
      Events.push(std::move(E));
    }
  } else if (VarLat && !R.Predicated) {
    Events.recycleWriteBuf(std::move(Ctx.Deferred));
    // Predicated-off memory op: consumes the issue slot only, but its
    // barriers must still fire or waiters would deadlock.
    for (int Slot : {D.writeBarrier(F.Pc), D.readBarrier(F.Pc)}) {
      if (Slot < 0)
        continue;
      Event E;
      E.Cycle = Now + 2;
      E.Warp = static_cast<int>(WarpIdx);
      E.ReleaseSlot = Slot;
      scoreboardAcquire(W, Slot);
      E.ReleaseBlock = -1;
      Events.push(std::move(E));
    }
  }

  // Control flow.
  uint64_t ExtraIssueDelay = 0;
  switch (R.K) {
  case ExecResult::Kind::Normal:
    ++W.Pc;
    break;
  case ExecResult::Kind::Branch: {
    if (R.TargetIdx < 0) {
      fault("branch to unknown label '" + std::string(R.Target) + "'");
      W.Done = true;
      --LiveWarps;
      return;
    }
    W.Pc = static_cast<size_t>(R.TargetIdx);
    W.LdgstsBase = -1;
    ExtraIssueDelay = Spec.BranchPenalty;
    break;
  }
  case ExecResult::Kind::Exit:
    W.Done = true;
    --LiveWarps;
    break;
  case ExecResult::Kind::BlockBarrier:
    ++W.Pc;
    W.AtBarrier = true;
    W.LdgstsBase = -1;
    break;
  }

  unsigned Stall = std::max<unsigned>(1, D.stall(F.Pc));
  Counters.StallFixedCycles += Stall - 1;
  W.NextIssue = Now + Stall + Operands.BankPenalty + ExtraIssueDelay;

  // Scheduler stickiness & the yield hint (§2.3: load balancing).
  S.StickyWarp = D.yield(F.Pc) ? -1 : static_cast<int>(WarpIdx);

  OperandFetch::updateReuse(S, WarpIdx, DI);

  if (R.K == ExecResult::Kind::BlockBarrier)
    scheduleBarrierRelease(Events, Warps, W.Block, Now, Spec.BarrierLatency);
}

bool TimedMachine::runGroup(unsigned FirstCta, unsigned NumBlocks) {
  assert(Prog && "runGroup before beginRun");
  // Reset per-group machine state (caches and DRAM persist on the Gpu;
  // leftover completion events persist across groups of one run).
  Warps.clear();
  SharedPerBlock.clear();
  Schedulers.assign(Spec.SchedulersPerSM, Scheduler());
  Now = 0;
  Mem.resetGroup();
  LiveWarps = NumBlocks * Launch->WarpsPerBlock;

  for (unsigned B = 0; B < NumBlocks; ++B) {
    SharedPerBlock.emplace_back(Launch->SharedBytes);
    for (unsigned WI = 0; WI < Launch->WarpsPerBlock; ++WI) {
      WarpSimState W;
      W.Block = B;
      W.WarpInBlock = WI;
      W.CtaLinear = FirstCta + B;
      Warps.push_back(std::move(W));
    }
  }

  const uint64_t CycleLimit = 200'000'000;
  uint64_t IssueCycles = 0;

  while (LiveWarps > 0) {
    commitReadyEvents(Events, Warps, Now, Counters);

    // On a fully idle cycle every scheduler probes every live warp, so
    // the picks themselves accumulate the earliest warp-ready time —
    // the time-skip below uses it instead of rescanning the warps.
    uint64_t MinReady = ~0ull;
    bool AnyIssue = false;
    for (unsigned SI = 0; SI < Schedulers.size(); ++SI) {
      SelectLatch Sel = WarpSelect::pick(Schedulers[SI], Warps, SI,
                                         Spec.SchedulersPerSM, *Decoded, Now,
                                         Counters, MinReady);
      if (Sel.Warp < 0)
        continue;
      issue(Schedulers[SI], static_cast<unsigned>(Sel.Warp));
      AnyIssue = true;
    }
    if (AnyIssue)
      ++IssueCycles;

    if (!FaultReason.empty() &&
        FaultReason.find("deadlock") != std::string::npos)
      break;

    // Advance time: step by one on activity; otherwise skip to the next
    // event or warp-ready time.
    uint64_t Next = Now + 1;
    if (!AnyIssue) {
      uint64_t Candidate = MinReady;
      if (!Events.empty())
        Candidate = std::min(Candidate, Events.front().Cycle);
      if (Candidate == ~0ull) {
        if (LiveWarps > 0)
          fault("deadlock: live warps with no pending events");
        break;
      }
      Next = std::max(Next, Candidate);
    }
    Now = Next;
    if (Now > CycleLimit) {
      fault("cycle limit exceeded (runaway or livelocked schedule)");
      break;
    }
  }

  Elapsed = Now;
  Counters.ElapsedCycles += Now;
  Counters.ActiveCycles += IssueCycles;
  Counters.IssueSlotCycles += Now * Spec.SchedulersPerSM;
  Counters.MemBusyCycles +=
      std::min<uint64_t>(Now, static_cast<uint64_t>(Mem.MemBusyAccum));
  Mem.MemBusyAccum = 0.0;

  for (SharedMemory &S : SharedPerBlock)
    if (S.faulted())
      fault("shared-memory access out of bounds");
  if (Device.globalMemory().faulted()) {
    fault("global-memory access outside any allocation");
    Device.globalMemory().clearFault();
  }
  return FaultReason.empty();
}

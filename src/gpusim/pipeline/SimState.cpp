//===- gpusim/pipeline/SimState.cpp ------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "gpusim/pipeline/SimState.h"

#include <cstdlib>

namespace cuasmrl {
namespace gpusim {

const bool TraceStaleReads = getenv("CUASMRL_TRACE_STALE") != nullptr;

} // namespace gpusim
} // namespace cuasmrl

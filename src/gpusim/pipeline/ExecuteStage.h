//===- gpusim/pipeline/ExecuteStage.h - Execute dispatch ---------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stage 4 of the timed pipeline (and the whole of the oracle's data
/// path): dispatch one fetched instruction into the opcode semantics.
///
/// These are the only entry points into the `executeInstr` template —
/// the per-opcode switch in `pipeline/ExecutorImpl.h` is parsed and
/// instantiated exactly once, in `ExecuteStage.cpp`, for the two
/// contexts below. Adding a third machine model means adding a third
/// wrapper here, not re-instantiating the template elsewhere.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_GPUSIM_PIPELINE_EXECUTESTAGE_H
#define CUASMRL_GPUSIM_PIPELINE_EXECUTESTAGE_H

#include "gpusim/Executor.h"

namespace cuasmrl {
namespace sass {
class Instruction;
}
namespace gpusim {

struct DecodedInstr;
struct TimedExecCtx;
struct OracleExecCtx;

/// Executes \p I under timed (write-back-time, deferrable) register
/// semantics. Memory side effects happen immediately; register writes
/// commit at the context's CommitCycle or are deferred into
/// Ctx.Deferred for the writeback stage. Returns control-flow guidance.
ExecResult executeTimed(const sass::Instruction &I, const DecodedInstr &D,
                        TimedExecCtx &Ctx);

/// Executes \p I under immediate-commit oracle semantics.
ExecResult executeOracle(const sass::Instruction &I, const DecodedInstr &D,
                         OracleExecCtx &Ctx);

} // namespace gpusim
} // namespace cuasmrl

#endif // CUASMRL_GPUSIM_PIPELINE_EXECUTESTAGE_H

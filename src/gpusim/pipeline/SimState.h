//===- gpusim/pipeline/SimState.h - Per-warp simulator state -----------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The state the pipeline stages operate on: one `WarpSimState` per
/// resident warp, holding the committed register files, the in-flight
/// fixed-latency results (write-back-time semantics), and the
/// scheduling fields the warp-select stage probes every cycle.
///
/// Layout note: the scheduling fields live at the head of the struct.
/// Warp select probes every resident warp every scheduler-cycle, and
/// the register files push the struct past 3KB — with the hot fields
/// first, a probe touches one cache line per warp instead of striding
/// through the register arrays.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_GPUSIM_PIPELINE_SIMSTATE_H
#define CUASMRL_GPUSIM_PIPELINE_SIMSTATE_H

#include "sass/ControlCode.h"

#include <array>
#include <cstdint>
#include <cstdio>
#include <vector>

namespace cuasmrl {
namespace gpusim {

/// A register write deferred until an instruction completes.
struct DeferredWrite {
  enum class File : uint8_t { R, UR, P, UP };
  File Where;
  uint16_t Index;
  uint32_t Value;
};

/// One pending fixed-latency result (write-back time semantics).
struct PendingWrite {
  uint32_t Value = 0;
  uint64_t Ready = 0;
  bool Active = false;
};

/// Read once at startup — the per-call static-guard check was visible
/// in the register-read hot path.
extern const bool TraceStaleReads;

/// Per-warp architectural + microarchitectural state.
struct WarpSimState {
  // --- hot scheduling fields (read by every warp-select probe) ----------
  size_t Pc = 0;
  uint64_t NextIssue = 0;
  std::array<int, sass::ControlCode::NumBarrierSlots> Scoreboard{};
  /// Bit per scoreboard slot, set iff Scoreboard[slot] > 0. Mirrors the
  /// counters so the per-probe wait check is one AND against the
  /// instruction's wait mask instead of a loop over the slots. Update
  /// through scoreboardAcquire()/scoreboardRelease() only.
  uint8_t ScoreboardBusy = 0;
  bool Done = false;
  bool AtBarrier = false;
  unsigned Block = 0;        ///< Simulated-block index.
  unsigned WarpInBlock = 0;
  unsigned CtaLinear = 0;    ///< Global linear block id (for CTAID).

  // LDGSTS in-order group tracking (§3.5 "additional dependencies").
  int LdgstsBase = -1;
  int64_t LdgstsOffset = 0;

  // --- architectural registers (committed view) --------------------------
  std::array<uint32_t, 256> R{};
  std::array<uint32_t, 64> UR{};
  std::array<uint8_t, 8> P{};
  std::array<uint8_t, 8> UP{};

  // In-flight fixed-latency results.
  std::array<PendingWrite, 256> RPend{};
  std::array<PendingWrite, 8> PPend{};

  // Diagnostic: event-commit time per register (deferred writes).
  std::array<uint64_t, 256> InFlightUntil{};
};

/// Increments a scoreboard slot, keeping the busy bitmask in sync.
inline void scoreboardAcquire(WarpSimState &W, int Slot) {
  ++W.Scoreboard[Slot];
  W.ScoreboardBusy |= static_cast<uint8_t>(1u << Slot);
}

/// Decrements a scoreboard slot, keeping the busy bitmask in sync.
inline void scoreboardRelease(WarpSimState &W, int Slot) {
  if (--W.Scoreboard[Slot] == 0)
    W.ScoreboardBusy &= static_cast<uint8_t>(~(1u << Slot));
}

/// \name Register access with write-back-time semantics
/// A result becomes architecturally visible only once its Ready cycle
/// has passed; a consumer issued too early reads the *stale* committed
/// value. This is what makes schedules that violate stall counts or
/// scoreboard waits observably wrong rather than merely slow.
/// @{

inline uint32_t readRegR(WarpSimState &W, unsigned I, uint64_t Now) {
  PendingWrite &P = W.RPend[I];
  if (P.Active && P.Ready <= Now) {
    W.R[I] = P.Value;
    P.Active = false;
  }
  if (TraceStaleReads && W.InFlightUntil[I] > Now)
    fprintf(stderr, "STALE R%u read at cycle %llu (in flight until %llu) pc=%zu\n",
            I, (unsigned long long)Now,
            (unsigned long long)W.InFlightUntil[I], W.Pc);
  return W.R[I];
}

inline void writeRegR(WarpSimState &W, unsigned I, uint32_t V,
                      uint64_t Ready) {
  PendingWrite &P = W.RPend[I];
  if (P.Active) {
    W.R[I] = P.Value; // Commit the older in-flight result first.
    P.Active = false;
  }
  P.Value = V;
  P.Ready = Ready;
  P.Active = true;
}

inline bool readPredP(WarpSimState &W, unsigned I, uint64_t Now) {
  PendingWrite &P = W.PPend[I];
  if (P.Active && P.Ready <= Now) {
    W.P[I] = P.Value != 0;
    P.Active = false;
  }
  return W.P[I] != 0;
}

inline void writePredP(WarpSimState &W, unsigned I, bool V, uint64_t Ready) {
  PendingWrite &P = W.PPend[I];
  if (P.Active) {
    W.P[I] = P.Value != 0;
    P.Active = false;
  }
  P.Value = V;
  P.Ready = Ready;
  P.Active = true;
}

/// @}

} // namespace gpusim
} // namespace cuasmrl

#endif // CUASMRL_GPUSIM_PIPELINE_SIMSTATE_H

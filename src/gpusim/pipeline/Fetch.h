//===- gpusim/pipeline/Fetch.h - Fetch / decode-lookup stage -----------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stage 2 of the timed pipeline: turn the select latch's warp into the
/// instruction it will issue. The *scheduling* view of that instruction
/// (flags, latency, control planes) is already resolved — it lives in
/// the decoded image's SoA planes, indexed by the warp's Pc — so this
/// stage's job is only to materialize the *operand* view: the
/// `sass::Instruction` behind the statement, which the execute stage
/// needs for register numbers and immediates.
///
/// The label skip that advances Pc to an instruction happens during the
/// warp-select probe (it is part of eligibility); by the time a warp
/// reaches fetch its Pc is guaranteed to sit on an instruction
/// statement.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_GPUSIM_PIPELINE_FETCH_H
#define CUASMRL_GPUSIM_PIPELINE_FETCH_H

#include "gpusim/pipeline/Latches.h"
#include "gpusim/pipeline/SimState.h"

namespace cuasmrl {
namespace sass {
class Program;
}
namespace gpusim {

/// Materializes the fetch latch for \p W (whose Pc the select stage
/// already advanced to an instruction statement).
FetchLatch fetchStage(const sass::Program &Prog, const WarpSimState &W);

} // namespace gpusim
} // namespace cuasmrl

#endif // CUASMRL_GPUSIM_PIPELINE_FETCH_H

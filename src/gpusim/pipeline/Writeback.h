//===- gpusim/pipeline/Writeback.h - Writeback / event-commit stage ----------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stage 5 of the timed pipeline: everything that completes *later*
/// than the issue cycle.
///
///  - `EventQueue`: the completion-event min-heap. Events fire for
///    every variable-latency instruction; a std::priority_queue would
///    copy each popped event (and heap-allocate its Writes vector anew
///    each push), so the queue moves events in and out manually and
///    recycles drained write buffers through a pool. Heap order
///    compares Cycle only — *same-cycle events fire in push order*,
///    which is part of the machine's bit-identity surface.
///  - `commitReadyEvents`: drains due events into warp state (deferred
///    register writes at their write-back time, scoreboard decrements,
///    block-barrier releases).
///  - `MemPipe`: the LSU / cache / DRAM latency model that assigns each
///    memory instruction its completion cycle, including LSU occupancy
///    and DRAM bandwidth backpressure.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_GPUSIM_PIPELINE_WRITEBACK_H
#define CUASMRL_GPUSIM_PIPELINE_WRITEBACK_H

#include "gpusim/Cache.h"
#include "gpusim/GpuSpec.h"
#include "gpusim/PerfCounters.h"
#include "gpusim/pipeline/SimState.h"
#include "sass/Opcode.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace cuasmrl {
namespace gpusim {

/// One deferred completion: scoreboard release, block-barrier release
/// and/or a batch of register writes, at a future cycle.
struct Event {
  uint64_t Cycle;
  int Warp;           ///< Warp whose state changes (-1: none).
  int ReleaseSlot;    ///< Scoreboard slot to decrement (-1: none).
  int ReleaseBlock;   ///< Block barrier to release (-1: none).
  std::vector<DeferredWrite> Writes;
};

/// Completion-event min-heap with write-buffer recycling.
class EventQueue {
public:
  static bool eventAfter(const Event &A, const Event &B) {
    return A.Cycle > B.Cycle;
  }

  bool empty() const { return Events.empty(); }
  const Event &front() const { return Events.front(); }

  void push(Event &&E) {
    Events.push_back(std::move(E));
    std::push_heap(Events.begin(), Events.end(), eventAfter);
  }
  Event pop() {
    std::pop_heap(Events.begin(), Events.end(), eventAfter);
    Event E = std::move(Events.back());
    Events.pop_back();
    return E;
  }

  std::vector<DeferredWrite> takeWriteBuf() {
    if (WriteBufPool.empty())
      return {};
    std::vector<DeferredWrite> Buf = std::move(WriteBufPool.back());
    WriteBufPool.pop_back();
    return Buf;
  }
  void recycleWriteBuf(std::vector<DeferredWrite> &&Buf) {
    if (Buf.capacity() == 0)
      return;
    Buf.clear();
    WriteBufPool.push_back(std::move(Buf));
  }

  /// Drops pending events (capacity retained). The write-buffer pool
  /// survives — pooled buffers only carry capacity, never values, so
  /// keeping them across runs is behaviorally invisible.
  void reset() { Events.clear(); }

  /// \name Write-buffer pool donation (batch lanes)
  /// Lockstep batch simulation rotates one pool through every lane's
  /// queue so allocations made warming lane 0 serve lanes 1..N-1 too.
  /// Behaviorally neutral for the same reason reset() keeps the pool.
  /// @{
  std::vector<std::vector<DeferredWrite>> releaseWriteBufPool() {
    return std::exchange(WriteBufPool, {});
  }
  void adoptWriteBufPool(std::vector<std::vector<DeferredWrite>> &&Pool) {
    for (std::vector<DeferredWrite> &Buf : Pool)
      recycleWriteBuf(std::move(Buf));
  }
  /// @}

private:
  std::vector<Event> Events; ///< Min-heap ordered by eventAfter().
  std::vector<std::vector<DeferredWrite>> WriteBufPool;
};

/// Out-of-line drain loop behind commitReadyEvents() — call that
/// instead.
void commitReadyEventsSlow(EventQueue &Q, std::vector<WarpSimState> &Warps,
                           uint64_t Now, PerfCounters &C);

/// Commits every event due at or before \p Now: block-barrier
/// releases, scoreboard decrements, and deferred register writes (which
/// land with write-back-time semantics at the event's cycle). Inline
/// no-op check: the main loop calls this every cycle and most cycles
/// have nothing due.
inline void commitReadyEvents(EventQueue &Q, std::vector<WarpSimState> &Warps,
                              uint64_t Now, PerfCounters &C) {
  if (Q.empty() || Q.front().Cycle > Now)
    return;
  commitReadyEventsSlow(Q, Warps, Now, C);
}

/// If every live warp of \p Block is waiting at the barrier, enqueues
/// the release event \p BarrierLatency cycles out. Called by the issue
/// path whenever a warp arrives at a block barrier.
void scheduleBarrierRelease(EventQueue &Q,
                            const std::vector<WarpSimState> &Warps,
                            unsigned Block, uint64_t Now,
                            uint64_t BarrierLatency);

/// The LSU / cache / DRAM latency model. Owns the bandwidth-occupancy
/// state (LSU free time, DRAM free time, busy accumulation) for one
/// machine; cache state lives on the device and is only *referenced*
/// here, so lanes of a batch keep their own hit/miss streams.
struct MemPipe {
  Cache &L1;
  Cache &L2;
  const GpuSpec &Spec;

  uint64_t LsuFree = 0;
  double DramFree = 0.0;
  double MemBusyAccum = 0.0;

  /// Resets the per-group occupancy state (cache contents persist on
  /// the device across groups, like the hardware).
  void resetGroup() {
    LsuFree = 0;
    DramFree = 0.0;
  }

  /// Completion cycle for a variable-latency instruction with the given
  /// memory footprint: coalesced global traffic through L1/L2/DRAM with
  /// bandwidth backpressure, shared-memory accesses through the LSU,
  /// constant loads, or the generic 20-cycle pipe for non-memory
  /// variable latency (MUFU, S2R, SHFL, conversions).
  uint64_t completion(sass::Opcode Op, bool BypassL1, uint64_t Now,
                      double UniqueDramFraction, uint64_t GlobalWords,
                      uint64_t GlobalMinAddr, uint64_t SharedWords,
                      uint64_t ConstWords, PerfCounters &C);
};

} // namespace gpusim
} // namespace cuasmrl

#endif // CUASMRL_GPUSIM_PIPELINE_WRITEBACK_H

//===- gpusim/pipeline/OperandFetch.cpp --------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "gpusim/pipeline/OperandFetch.h"

#include <array>

using namespace cuasmrl;
using namespace cuasmrl::gpusim;

OperandLatch OperandFetch::run(Scheduler &S, unsigned WarpIdx,
                               const DecodedInstr &D, unsigned RegisterBanks,
                               unsigned BankConflictPenalty,
                               PerfCounters &C) {
  if (S.ReuseValid && S.ReuseWarp != static_cast<int>(WarpIdx))
    ++C.ReuseMisses; // Warp switch invalidated the reuse cache.

  if (!D.HasSlotRegs)
    return OperandLatch{0};
  if (!S.ReuseValid || S.ReuseWarp != static_cast<int>(WarpIdx)) {
    unsigned Penalty = noReusePenalty(D, RegisterBanks, BankConflictPenalty);
    C.BankConflictCycles += Penalty;
    return OperandLatch{Penalty};
  }
  return runSlow(S, WarpIdx, D, RegisterBanks, BankConflictPenalty, C);
}

OperandLatch OperandFetch::runSlow(Scheduler &S, unsigned WarpIdx,
                                   const DecodedInstr &D,
                                   unsigned RegisterBanks,
                                   unsigned BankConflictPenalty,
                                   PerfCounters &C) {
  std::array<unsigned, 8> BankCount{};
  bool ReuseUsable = S.ReuseValid && S.ReuseWarp == static_cast<int>(WarpIdx);
  for (size_t Slot = 1; Slot < D.SlotReg.size(); ++Slot) {
    int Reg = D.SlotReg[Slot];
    if (Reg < 0)
      continue;
    if (ReuseUsable && S.ReuseRegs[Slot] == Reg) {
      ++C.ReuseHits;
      continue; // Served from the operand reuse cache: no bank access.
    }
    ++BankCount[static_cast<unsigned>(Reg) % RegisterBanks];
  }
  unsigned Penalty = 0;
  for (unsigned Bank = 0; Bank < RegisterBanks; ++Bank)
    if (BankCount[Bank] > 1)
      Penalty += (BankCount[Bank] - 1) * BankConflictPenalty;
  C.BankConflictCycles += Penalty;
  return OperandLatch{Penalty};
}

unsigned OperandFetch::noReusePenalty(const DecodedInstr &D,
                                      unsigned RegisterBanks,
                                      unsigned BankConflictPenalty) {
  std::array<unsigned, 8> BankCount{};
  for (size_t Slot = 1; Slot < D.SlotReg.size(); ++Slot) {
    int Reg = D.SlotReg[Slot];
    if (Reg < 0)
      continue;
    ++BankCount[static_cast<unsigned>(Reg) % RegisterBanks];
  }
  unsigned Penalty = 0;
  for (unsigned Bank = 0; Bank < RegisterBanks; ++Bank)
    if (BankCount[Bank] > 1)
      Penalty += (BankCount[Bank] - 1) * BankConflictPenalty;
  return Penalty;
}

void OperandFetch::buildPenaltyTable(const DecodedProgram &D,
                                     unsigned RegisterBanks,
                                     unsigned BankConflictPenalty,
                                     std::vector<uint16_t> &Table) {
  Table.assign(D.size(), 0);
  for (size_t I = 0; I < D.size(); ++I)
    if (D[I].HasSlotRegs)
      Table[I] = static_cast<uint16_t>(
          noReusePenalty(D[I], RegisterBanks, BankConflictPenalty));
}

void OperandFetch::updateReuse(Scheduler &S, unsigned WarpIdx,
                               const DecodedInstr &D) {
  S.ReuseValid = D.ReuseMask != 0;
  if (!S.ReuseValid) {
    // Stale ReuseRegs entries are unreachable while ReuseValid is off.
    S.ReuseWarp = -1;
    return;
  }
  S.ReuseRegs.fill(-1);
  for (size_t Slot = 1; Slot < D.SlotReg.size(); ++Slot)
    if (D.ReuseMask & (1u << Slot))
      S.ReuseRegs[Slot] = D.SlotReg[Slot];
  S.ReuseWarp = static_cast<int>(WarpIdx);
}

//===- gpusim/pipeline/ExecContext.h - Execution contexts --------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two execution contexts `executeInstr` runs against — the bridge
/// between the opcode semantics (pipeline/ExecutorImpl.h) and a
/// machine's state:
///
///  - `TimedExecCtx`: write-back-time register semantics. Fixed-latency
///    results commit at `CommitCycle`; variable-latency results are
///    collected into `Deferred` for the writeback stage to attach to a
///    completion event. Also accumulates the instruction's memory
///    footprint, which the writeback stage's memory pipe turns into a
///    completion time.
///  - `OracleExecCtx`: immediate commits, program-order reference
///    execution (the architectural oracle of §4.1).
///
/// Both are plain aggregates over references into machine state: the
/// execute stage owns no state of its own, which is what lets the
/// opcode switch compile once and serve every machine (timed, oracle,
/// batch lanes).
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_GPUSIM_PIPELINE_EXECCONTEXT_H
#define CUASMRL_GPUSIM_PIPELINE_EXECCONTEXT_H

#include "gpusim/Launch.h"
#include "gpusim/Memory.h"
#include "gpusim/pipeline/SimState.h"

#include <algorithm>
#include <string_view>
#include <vector>

namespace cuasmrl {
namespace gpusim {

/// Execution context with timed (write-back-time, deferrable) register
/// semantics.
struct TimedExecCtx {
  WarpSimState &W;
  SharedMemory &Shared;   ///< The warp's block's shared memory.
  GlobalMemory &Global;
  const ConstantBank &Consts;
  const KernelLaunch &Launch;
  unsigned Lanes;         ///< Spec.LanesPerWarp (for SR_TID).
  uint64_t Now;
  uint64_t CommitCycle;   ///< Write-back time for fixed-latency results.
  bool Defer;             ///< Variable latency: collect writes for an event.
  bool CorruptShared = false; ///< LDGSTS order violation poisons data.
  std::vector<DeferredWrite> Deferred;

  // Memory-footprint accounting (filled during functional execution).
  uint64_t GlobalWords = 0;
  uint64_t GlobalMinAddr = ~0ull;
  uint64_t SharedWords = 0;
  uint64_t ConstWords = 0;

  uint32_t readR(unsigned I) { return readRegR(W, I, Now); }
  void writeR(unsigned I, uint32_t V) {
    if (Defer)
      Deferred.push_back({DeferredWrite::File::R,
                          static_cast<uint16_t>(I), V});
    else
      writeRegR(W, I, V, CommitCycle);
  }
  uint32_t readUR(unsigned I) { return W.UR[I]; }
  void writeUR(unsigned I, uint32_t V) {
    if (Defer)
      Deferred.push_back({DeferredWrite::File::UR,
                          static_cast<uint16_t>(I), V});
    else
      W.UR[I] = V; // Uniform datapath: treated as immediately visible.
  }
  bool readP(unsigned I) { return readPredP(W, I, Now); }
  void writeP(unsigned I, bool V) {
    if (Defer)
      Deferred.push_back({DeferredWrite::File::P,
                          static_cast<uint16_t>(I), V});
    else
      writePredP(W, I, V, CommitCycle);
  }
  bool readUP(unsigned I) { return W.UP[I] != 0; }
  void writeUP(unsigned I, bool V) { W.UP[I] = V; }

  uint32_t loadShared(uint32_t Addr) {
    ++SharedWords;
    return Shared.loadWord(Addr);
  }
  void storeShared(uint32_t Addr, uint32_t V) {
    ++SharedWords;
    Shared.storeWord(Addr, CorruptShared ? V ^ PoisonWord : V);
  }
  uint32_t loadGlobal(uint64_t Addr) {
    ++GlobalWords;
    GlobalMinAddr = std::min(GlobalMinAddr, Addr);
    return Global.loadWord(Addr);
  }
  void storeGlobal(uint64_t Addr, uint32_t V) {
    ++GlobalWords;
    GlobalMinAddr = std::min(GlobalMinAddr, Addr);
    Global.storeWord(Addr, V);
  }
  uint32_t loadConst(uint32_t Offset) {
    ++ConstWords;
    return Consts.loadWord(Offset);
  }
  uint32_t specialReg(std::string_view Name) {
    if (Name == "SR_CLOCKLO")
      return static_cast<uint32_t>(Now);
    if (Name == "SR_CLOCKHI")
      return static_cast<uint32_t>(Now >> 32);
    if (Name == "SR_TID.X")
      return W.WarpInBlock * Lanes;
    if (Name == "SR_TID.Y" || Name == "SR_TID.Z" || Name == "SR_LANEID")
      return 0;
    if (Name == "SR_CTAID.X")
      return W.CtaLinear % Launch.GridX;
    if (Name == "SR_CTAID.Y")
      return (W.CtaLinear / Launch.GridX) % Launch.GridY;
    if (Name == "SR_CTAID.Z")
      return W.CtaLinear / (Launch.GridX * Launch.GridY);
    return 0;
  }
};

/// Immediate-commit context for the architectural reference execution.
struct OracleExecCtx {
  WarpSimState &W;
  SharedMemory &Shared;
  GlobalMemory &Global;
  const ConstantBank &Consts;
  const KernelLaunch &Launch;
  unsigned Lanes;
  uint64_t InstrCount = 0;

  uint32_t readR(unsigned I) { return W.R[I]; }
  void writeR(unsigned I, uint32_t V) { W.R[I] = V; }
  uint32_t readUR(unsigned I) { return W.UR[I]; }
  void writeUR(unsigned I, uint32_t V) { W.UR[I] = V; }
  bool readP(unsigned I) { return W.P[I] != 0; }
  void writeP(unsigned I, bool V) { W.P[I] = V; }
  bool readUP(unsigned I) { return W.UP[I] != 0; }
  void writeUP(unsigned I, bool V) { W.UP[I] = V; }

  uint32_t loadShared(uint32_t Addr) { return Shared.loadWord(Addr); }
  void storeShared(uint32_t Addr, uint32_t V) { Shared.storeWord(Addr, V); }
  uint32_t loadGlobal(uint64_t Addr) { return Global.loadWord(Addr); }
  void storeGlobal(uint64_t Addr, uint32_t V) { Global.storeWord(Addr, V); }
  uint32_t loadConst(uint32_t Offset) { return Consts.loadWord(Offset); }
  uint32_t specialReg(std::string_view Name) {
    if (Name == "SR_CLOCKLO")
      return static_cast<uint32_t>(InstrCount);
    if (Name == "SR_TID.X")
      return W.WarpInBlock * Lanes;
    if (Name == "SR_CTAID.X")
      return W.CtaLinear % Launch.GridX;
    if (Name == "SR_CTAID.Y")
      return (W.CtaLinear / Launch.GridX) % Launch.GridY;
    if (Name == "SR_CTAID.Z")
      return W.CtaLinear / (Launch.GridX * Launch.GridY);
    return 0;
  }
};

} // namespace gpusim
} // namespace cuasmrl

#endif // CUASMRL_GPUSIM_PIPELINE_EXECCONTEXT_H

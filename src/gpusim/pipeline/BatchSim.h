//===- gpusim/pipeline/BatchSim.h - Lockstep batch simulation ----------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The group/wave schedule of a timed run, factored into an
/// incrementally-steppable plan so N lanes can interleave.
///
/// `Gpu::run` drives a plan to completion in one loop; `Gpu::runLanes`
/// round-robins one group per lane per turn ("lockstep"). Because a
/// lane's groups run on its own device and machine, and a plan's
/// arithmetic depends only on its own lane, interleaving order cannot
/// change any lane's result — this single shared implementation is what
/// *guarantees* the batch determinism contract (lane `i` bit-identical
/// to a solo run) instead of merely testing for it.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_GPUSIM_PIPELINE_BATCHSIM_H
#define CUASMRL_GPUSIM_PIPELINE_BATCHSIM_H

#include "gpusim/Gpu.h"
#include "gpusim/pipeline/TimedCore.h"

#include <algorithm>

namespace cuasmrl {
namespace gpusim {

/// The resident-group schedule of one timed run, advanced one group at
/// a time. Owns the wave arithmetic of Gpu::run: groups of
/// residentBlocks() blocks, mean group time extrapolated over the full
/// grid.
class TimedRunPlan {
public:
  TimedRunPlan(const Gpu &Device, const KernelLaunch &Launch,
               unsigned MaxBlocks) {
    NumBlocks = Launch.numBlocks();
    ToRun = MaxBlocks ? std::min(MaxBlocks, NumBlocks) : NumBlocks;
    Resident = Device.residentBlocks(Launch);
  }

  bool done() const { return Failed || First >= ToRun; }

  /// Runs the next resident-block group on \p M (which must be bound to
  /// this plan's kernel via beginRun).
  void stepGroup(TimedMachine &M) {
    unsigned Count = std::min(Resident, ToRun - First);
    bool Ok = M.runGroup(First, Count);
    TotalCycles += M.elapsed();
    ++Groups;
    First += Resident;
    if (!Ok)
      Failed = true;
  }

  /// Extrapolates one SM's group timing over the full grid.
  RunResult finish(const GpuSpec &Spec, const TimedMachine &M) const {
    RunResult Result;
    if (Failed) {
      Result.Valid = false;
      Result.FaultReason = M.faultReason();
    }
    Result.Counters = M.counters();
    double WavesReal =
        static_cast<double>(NumBlocks) /
        (static_cast<double>(Resident) * static_cast<double>(Spec.NumSMs));
    if (WavesReal < 1.0)
      WavesReal = 1.0;
    double MeanGroup =
        Groups ? static_cast<double>(TotalCycles) / Groups : 0.0;
    Result.Cycles = static_cast<uint64_t>(MeanGroup * WavesReal);
    Result.TimeUs = static_cast<double>(Result.Cycles) /
                    (Spec.ClockGHz * 1000.0);
    return Result;
  }

private:
  unsigned NumBlocks = 0;
  unsigned ToRun = 0;
  unsigned Resident = 1;
  unsigned First = 0;
  unsigned Groups = 0;
  uint64_t TotalCycles = 0;
  bool Failed = false;
};

} // namespace gpusim
} // namespace cuasmrl

#endif // CUASMRL_GPUSIM_PIPELINE_BATCHSIM_H

//===- gpusim/pipeline/ExecuteStage.cpp --------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The one TU that parses and instantiates the opcode-semantics
// template. Keep it that way: the ~750-line switch in ExecutorImpl.h
// used to be header-only and was re-compiled by every simulator TU.
//
//===----------------------------------------------------------------------===//

#include "gpusim/pipeline/ExecuteStage.h"

#include "gpusim/pipeline/ExecContext.h"
#include "gpusim/pipeline/ExecutorImpl.h"

using namespace cuasmrl;
using namespace cuasmrl::gpusim;

ExecResult gpusim::executeTimed(const sass::Instruction &I,
                                const DecodedInstr &D, TimedExecCtx &Ctx) {
  return executeInstr(I, D, Ctx);
}

ExecResult gpusim::executeOracle(const sass::Instruction &I,
                                 const DecodedInstr &D, OracleExecCtx &Ctx) {
  return executeInstr(I, D, Ctx);
}

//===- gpusim/pipeline/ExecutorImpl.h - Functional SASS semantics ------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Warp-scalar functional semantics for the SASS subset the toolchain
/// emits. `executeInstr` is a template over an execution context so the
/// same semantics drive both execution models:
///
///  - the *oracle* (program order, immediate commits) — the architectural
///    reference the paper's probabilistic testing compares against, and
///  - the *timed machine* — whose context defers register commits by the
///    hardware latency, so schedules that violate stall counts or
///    scoreboard waits observably read stale values (§2.3.1). That
///    hazard fidelity is what makes dependency-based microbenchmarking
///    (§4.3) and invalid-schedule detection work.
///
/// The context must provide:
/// \code
///   uint32_t readR(unsigned);    void writeR(unsigned, uint32_t);
///   uint32_t readUR(unsigned);   void writeUR(unsigned, uint32_t);
///   bool     readP(unsigned);    void writeP(unsigned, bool);
///   bool     readUP(unsigned);   void writeUP(unsigned, bool);
///   uint32_t loadShared(uint32_t);   void storeShared(uint32_t, uint32_t);
///   uint32_t loadGlobal(uint64_t);   void storeGlobal(uint64_t, uint32_t);
///   uint32_t loadConst(uint32_t offset);
///   uint32_t specialReg(std::string_view name);
/// \endcode
///
/// This header is the *implementation* of the execute stage: the ~750
/// lines of opcode semantics below are parsed and instantiated exactly
/// once, by `pipeline/ExecuteStage.cpp`. Every other TU sees only the
/// `executeTimed` / `executeOracle` declarations in `ExecuteStage.h`
/// (and the `ExecResult` contract in `gpusim/Executor.h`). Include it
/// anywhere else and you are re-growing the build-time cost the split
/// removed — don't.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_GPUSIM_PIPELINE_EXECUTORIMPL_H
#define CUASMRL_GPUSIM_PIPELINE_EXECUTORIMPL_H

#include "gpusim/DecodedProgram.h"
#include "gpusim/Executor.h"
#include "gpusim/Fp16.h"
#include "sass/Instruction.h"

#include <cmath>
#include <cstring>
#include <string_view>

namespace cuasmrl {
namespace gpusim {

namespace detail {

inline float asFloat(uint32_t Bits) {
  float F;
  std::memcpy(&F, &Bits, sizeof(F));
  return F;
}
inline uint32_t asBits(float F) {
  uint32_t B;
  std::memcpy(&B, &F, sizeof(B));
  return B;
}

template <typename Ctx>
uint32_t readReg(Ctx &C, const sass::Register &R) {
  using sass::RegClass;
  if (R.isZero())
    return R.isPredicate() ? 1u : 0u;
  switch (R.regClass()) {
  case RegClass::General:
    return C.readR(R.index());
  case RegClass::Uniform:
    return C.readUR(R.index());
  case RegClass::Predicate:
    return C.readP(R.index()) ? 1u : 0u;
  case RegClass::UniformPredicate:
    return C.readUP(R.index()) ? 1u : 0u;
  }
  return 0;
}

template <typename Ctx>
void writeReg(Ctx &C, const sass::Register &R, uint32_t Value) {
  using sass::RegClass;
  if (R.isZero())
    return; // RZ/PT writes are discarded.
  switch (R.regClass()) {
  case RegClass::General:
    C.writeR(R.index(), Value);
    break;
  case RegClass::Uniform:
    C.writeUR(R.index(), Value);
    break;
  case RegClass::Predicate:
    C.writeP(R.index(), Value != 0);
    break;
  case RegClass::UniformPredicate:
    C.writeUP(R.index(), Value != 0);
    break;
  }
}

/// Reads an operand as a 32-bit integer value (applying integer
/// negation / absolute modifiers).
template <typename Ctx>
uint32_t readInt(Ctx &C, const sass::Operand &Op) {
  using sass::Operand;
  uint32_t V = 0;
  switch (Op.kind()) {
  case Operand::Kind::Reg:
    V = readReg(C, Op.baseReg());
    if (Op.isNot())
      V = Op.baseReg().isPredicate() ? !V : ~V;
    break;
  case Operand::Kind::Imm:
    V = static_cast<uint32_t>(Op.immValue());
    break;
  case Operand::Kind::FloatImm:
    V = asBits(static_cast<float>(Op.floatValue()));
    break;
  case Operand::Kind::ConstMem:
    V = C.loadConst(static_cast<uint32_t>(Op.constOffset()));
    break;
  case Operand::Kind::Special:
    V = C.specialReg(Op.name());
    break;
  case Operand::Kind::Mem:
  case Operand::Kind::Label:
    break;
  }
  if (Op.isAbs()) {
    int32_t S = static_cast<int32_t>(V);
    V = static_cast<uint32_t>(S < 0 ? -S : S);
  }
  if (Op.isNegated())
    V = static_cast<uint32_t>(-static_cast<int32_t>(V));
  return V;
}

/// Reads an operand as a float (applying float negation / |abs|).
template <typename Ctx>
float readFloat(Ctx &C, const sass::Operand &Op) {
  using sass::Operand;
  float V = 0.0f;
  switch (Op.kind()) {
  case Operand::Kind::Reg:
    V = asFloat(readReg(C, Op.baseReg()));
    break;
  case Operand::Kind::Imm:
    V = asFloat(static_cast<uint32_t>(Op.immValue()));
    break;
  case Operand::Kind::FloatImm:
    V = static_cast<float>(Op.floatValue());
    break;
  case Operand::Kind::ConstMem:
    V = asFloat(C.loadConst(static_cast<uint32_t>(Op.constOffset())));
    break;
  case Operand::Kind::Special:
    V = asFloat(C.specialReg(Op.name()));
    break;
  case Operand::Kind::Mem:
  case Operand::Kind::Label:
    break;
  }
  if (Op.isAbs())
    V = std::fabs(V);
  if (Op.isNegated())
    V = -V;
  return V;
}

/// Reads a predicate-valued operand (handles '!').
template <typename Ctx>
bool readPred(Ctx &C, const sass::Operand &Op) {
  bool V = readReg(C, Op.baseReg()) != 0;
  return Op.isNot() ? !V : V;
}

/// Computes a 64-bit global address from a `.64` memory operand.
/// Register pairs follow the paper's Eq. 2 convention: the even index
/// holds the low word.
template <typename Ctx>
uint64_t readAddr64(Ctx &C, const sass::Operand &Op) {
  unsigned Base = Op.baseReg().index();
  if (!Op.isWide())
    return static_cast<uint64_t>(readReg(C, Op.baseReg())) +
           static_cast<uint64_t>(Op.memOffset());
  unsigned Lo = Base & ~1u;
  unsigned Hi = Base | 1u;
  uint64_t Addr =
      static_cast<uint64_t>(C.readR(Lo)) |
      (static_cast<uint64_t>(C.readR(Hi)) << 32);
  return Addr + static_cast<uint64_t>(Op.memOffset());
}

/// Computes a 32-bit shared-memory address.
template <typename Ctx>
uint32_t readAddr32(Ctx &C, const sass::Operand &Op) {
  uint32_t Base = Op.baseReg().isZero() ? 0 : readReg(C, Op.baseReg());
  return Base + static_cast<uint32_t>(Op.memOffset());
}

/// Standard LOP3 lookup-table semantics.
inline uint32_t lop3(uint32_t A, uint32_t B, uint32_t CV, uint32_t Lut) {
  uint32_t R = 0;
  if (Lut & 0x01)
    R |= ~A & ~B & ~CV;
  if (Lut & 0x02)
    R |= ~A & ~B & CV;
  if (Lut & 0x04)
    R |= ~A & B & ~CV;
  if (Lut & 0x08)
    R |= ~A & B & CV;
  if (Lut & 0x10)
    R |= A & ~B & ~CV;
  if (Lut & 0x20)
    R |= A & ~B & CV;
  if (Lut & 0x40)
    R |= A & B & ~CV;
  if (Lut & 0x80)
    R |= A & B & CV;
  return R;
}

/// Comparison dispatch shared by ISETP/FSETP, on the pre-decoded
/// selector (CmpKind::None compares false, like an unknown modifier).
template <typename T> bool compare(CmpKind Cmp, T A, T B) {
  switch (Cmp) {
  case CmpKind::LT:
    return A < B;
  case CmpKind::LE:
    return A <= B;
  case CmpKind::GT:
    return A > B;
  case CmpKind::GE:
    return A >= B;
  case CmpKind::EQ:
    return A == B;
  case CmpKind::NE:
    return A != B;
  case CmpKind::None:
    break;
  }
  return false;
}

} // namespace detail

/// Executes one instruction against the context, using the instruction's
/// pre-decoded record \p D for every modifier-derived decision (latency
/// class, semantic flags, comparison/MUFU selectors, branch target).
/// Memory side effects happen immediately; register writes go through
/// the context (which may defer their visibility). Returns control-flow
/// guidance.
template <typename Ctx>
ExecResult executeInstr(const sass::Instruction &I, const DecodedInstr &D,
                        Ctx &C) {
  using namespace detail;
  using sass::Opcode;
  using sass::Operand;

  ExecResult Res;

  // Guard predicate: a false guard suppresses all architectural effects
  // (the instruction still consumes its issue slot — the machine models
  // that; @!PT instructions are the paper's §5.7.2 dead loads).
  if (I.hasGuard()) {
    bool G = readReg(C, I.guardReg()) != 0;
    if (I.guardNegated())
      G = !G;
    if (!G) {
      if (I.opcode() == Opcode::EXIT || I.opcode() == Opcode::BRA)
        return Res; // Fall through.
      Res.Predicated = false;
      return Res;
    }
  }

  const std::vector<Operand> &Ops = I.operands();
  auto Dest = [&]() -> sass::Register { return Ops[0].baseReg(); };

  switch (I.opcode()) {
  // ----- Integer ALU ----------------------------------------------------
  case Opcode::IADD3: {
    // IADD3 Rd[, Pcarry], Ra, Rb, Rc  (+ .X carry-in as trailing preds).
    unsigned Src = 1;
    sass::Register CarryOut = sass::Register::pt();
    if (Src < Ops.size() && Ops[Src].isReg() &&
        Ops[Src].baseReg().isPredicate() && !Ops[Src].isNot()) {
      CarryOut = Ops[Src].baseReg();
      ++Src;
    }
    uint64_t Sum = 0;
    unsigned Count = 0;
    bool CarryIn = false;
    for (unsigned J = Src; J < Ops.size(); ++J) {
      if (Ops[J].isReg() && Ops[J].baseReg().isPredicate()) {
        // Trailing carry-in predicate of the .X form.
        if (D.has(DecodedInstr::ModX))
          CarryIn = CarryIn || readPred(C, Ops[J]);
        continue;
      }
      if (Count++ < 3)
        Sum += readInt(C, Ops[J]);
    }
    if (D.has(DecodedInstr::ModX) && CarryIn)
      Sum += 1;
    writeReg(C, Dest(), static_cast<uint32_t>(Sum));
    if (!CarryOut.isZero())
      writeReg(C, CarryOut, (Sum >> 32) ? 1u : 0u);
    break;
  }
  case Opcode::IMAD: {
    bool Wide = D.has(DecodedInstr::ModWide);
    bool Unsigned = D.has(DecodedInstr::ModU32);
    unsigned Src = 1;
    // Skip carry-out predicate slot if present.
    if (Src < Ops.size() && Ops[Src].isReg() &&
        Ops[Src].baseReg().isPredicate() && !Ops[Src].isNot())
      ++Src;
    if (Ops.size() < Src + 3)
      break;
    uint32_t A = readInt(C, Ops[Src]);
    uint32_t B = readInt(C, Ops[Src + 1]);
    if (Wide) {
      // 64-bit addend: register pair or sign-extended immediate/const.
      const Operand &COp = Ops[Src + 2];
      uint64_t C64;
      if (COp.isReg() && !COp.baseReg().isZero()) {
        unsigned Lo = COp.baseReg().index() & ~1u;
        C64 = static_cast<uint64_t>(C.readR(Lo)) |
              (static_cast<uint64_t>(C.readR(Lo | 1)) << 32);
      } else {
        C64 = static_cast<uint64_t>(
            static_cast<int64_t>(static_cast<int32_t>(readInt(C, COp))));
      }
      uint64_t Prod =
          Unsigned
              ? static_cast<uint64_t>(A) * static_cast<uint64_t>(B)
              : static_cast<uint64_t>(
                    static_cast<int64_t>(static_cast<int32_t>(A)) *
                    static_cast<int64_t>(static_cast<int32_t>(B)));
      uint64_t R = Prod + C64;
      unsigned D = Dest().index() & ~1u;
      C.writeR(D, static_cast<uint32_t>(R));
      C.writeR(D | 1, static_cast<uint32_t>(R >> 32));
      break;
    }
    uint32_t CV = readInt(C, Ops[Src + 2]);
    if (D.has(DecodedInstr::ModHi)) {
      uint64_t Prod = static_cast<uint64_t>(A) * B;
      writeReg(C, Dest(), static_cast<uint32_t>(Prod >> 32) + CV);
    } else {
      writeReg(C, Dest(), A * B + CV);
    }
    break;
  }
  case Opcode::LEA: {
    // LEA Rd, Ra, Rb, shift.
    if (Ops.size() < 3)
      break;
    uint32_t A = readInt(C, Ops[1]);
    uint32_t B = readInt(C, Ops[2]);
    uint32_t Shift =
        Ops.size() > 3 ? (readInt(C, Ops[3]) & 31u) : 0u;
    writeReg(C, Dest(), (A << Shift) + B);
    break;
  }
  case Opcode::LOP3: {
    // LOP3.LUT Rd, Ra, Rb, Rc, lut[, !PT].
    if (Ops.size() < 5)
      break;
    uint32_t R = lop3(readInt(C, Ops[1]), readInt(C, Ops[2]),
                      readInt(C, Ops[3]), readInt(C, Ops[4]) & 0xff);
    writeReg(C, Dest(), R);
    break;
  }
  case Opcode::SHF: {
    // SHF.L/.R[.U32] Rd, Ra, shift, Rc (funnel shift of Rc:Ra).
    if (Ops.size() < 4)
      break;
    uint32_t A = readInt(C, Ops[1]);
    uint32_t S = readInt(C, Ops[2]) & 63u;
    uint32_t Hi = readInt(C, Ops[3]);
    uint64_t Pair = (static_cast<uint64_t>(Hi) << 32) | A;
    uint32_t R;
    if (D.has(DecodedInstr::ModL))
      R = static_cast<uint32_t>((Pair << (S & 31)) >> 32);
    else
      R = static_cast<uint32_t>(Pair >> (S & 31));
    writeReg(C, Dest(), R);
    break;
  }
  case Opcode::IABS: {
    int32_t A = static_cast<int32_t>(readInt(C, Ops[1]));
    writeReg(C, Dest(), static_cast<uint32_t>(A < 0 ? -A : A));
    break;
  }
  case Opcode::IMNMX: {
    // IMNMX[.U32] Rd, Ra, Rb, Pc (Pc true -> min, false -> max).
    if (Ops.size() < 4)
      break;
    bool Min = readPred(C, Ops[3]);
    if (D.has(DecodedInstr::ModU32)) {
      uint32_t A = readInt(C, Ops[1]), B = readInt(C, Ops[2]);
      writeReg(C, Dest(), Min ? std::min(A, B) : std::max(A, B));
    } else {
      int32_t A = static_cast<int32_t>(readInt(C, Ops[1]));
      int32_t B = static_cast<int32_t>(readInt(C, Ops[2]));
      writeReg(C, Dest(),
               static_cast<uint32_t>(Min ? std::min(A, B) : std::max(A, B)));
    }
    break;
  }
  case Opcode::SEL: {
    if (Ops.size() < 4)
      break;
    bool P = readPred(C, Ops[3]);
    writeReg(C, Dest(), P ? readInt(C, Ops[1]) : readInt(C, Ops[2]));
    break;
  }
  case Opcode::ISETP: {
    // ISETP.<cmp>[.U32].AND Pd, Pq, Ra, Rb, Pc.
    if (Ops.size() < 5)
      break;
    bool R;
    if (D.has(DecodedInstr::ModU32))
      R = compare<uint32_t>(D.Cmp, readInt(C, Ops[2]), readInt(C, Ops[3]));
    else
      R = compare<int32_t>(D.Cmp, static_cast<int32_t>(readInt(C, Ops[2])),
                           static_cast<int32_t>(readInt(C, Ops[3])));
    bool Combine = readPred(C, Ops[4]);
    bool Result =
        D.has(DecodedInstr::ModOr) ? (R || Combine) : (R && Combine);
    writeReg(C, Ops[0].baseReg(), Result);
    if (!Ops[1].baseReg().isZero())
      writeReg(C, Ops[1].baseReg(), (!R) && Combine);
    break;
  }
  case Opcode::POPC: {
    writeReg(C, Dest(), __builtin_popcount(readInt(C, Ops[1])));
    break;
  }

  // ----- FP32 ALU ---------------------------------------------------------
  case Opcode::FADD: {
    writeReg(C, Dest(),
             asBits(readFloat(C, Ops[1]) + readFloat(C, Ops[2])));
    break;
  }
  case Opcode::FMUL: {
    writeReg(C, Dest(),
             asBits(readFloat(C, Ops[1]) * readFloat(C, Ops[2])));
    break;
  }
  case Opcode::FFMA: {
    writeReg(C, Dest(),
             asBits(std::fma(readFloat(C, Ops[1]), readFloat(C, Ops[2]),
                             readFloat(C, Ops[3]))));
    break;
  }
  case Opcode::FMNMX: {
    if (Ops.size() < 4)
      break;
    bool Min = readPred(C, Ops[3]);
    float A = readFloat(C, Ops[1]), B = readFloat(C, Ops[2]);
    writeReg(C, Dest(), asBits(Min ? std::fmin(A, B) : std::fmax(A, B)));
    break;
  }
  case Opcode::FSEL: {
    if (Ops.size() < 4)
      break;
    bool P = readPred(C, Ops[3]);
    writeReg(C, Dest(),
             asBits(P ? readFloat(C, Ops[1]) : readFloat(C, Ops[2])));
    break;
  }
  case Opcode::FSETP: {
    if (Ops.size() < 5)
      break;
    bool R =
        compare<float>(D.Cmp, readFloat(C, Ops[2]), readFloat(C, Ops[3]));
    bool Combine = readPred(C, Ops[4]);
    bool Result =
        D.has(DecodedInstr::ModOr) ? (R || Combine) : (R && Combine);
    writeReg(C, Ops[0].baseReg(), Result);
    if (!Ops[1].baseReg().isZero())
      writeReg(C, Ops[1].baseReg(), (!R) && Combine);
    break;
  }
  case Opcode::MUFU: {
    float A = readFloat(C, Ops[1]);
    float R = 0.0f;
    switch (D.Mufu) {
    case MufuKind::Rcp:
      R = 1.0f / A;
      break;
    case MufuKind::Rsq:
      R = 1.0f / std::sqrt(A);
      break;
    case MufuKind::Sqrt:
      R = std::sqrt(A);
      break;
    case MufuKind::Ex2:
      R = std::exp2(A);
      break;
    case MufuKind::Lg2:
      R = std::log2(A);
      break;
    case MufuKind::Sin:
      R = std::sin(A);
      break;
    case MufuKind::Cos:
      R = std::cos(A);
      break;
    case MufuKind::None:
      break;
    }
    writeReg(C, Dest(), asBits(R));
    break;
  }

  // ----- Packed FP16 / tensor core ---------------------------------------
  case Opcode::HADD2: {
    uint32_t A = readInt(C, Ops[1]), B = readInt(C, Ops[2]);
    writeReg(C, Dest(),
             packHalf2(unpackLo(A) + unpackLo(B), unpackHi(A) + unpackHi(B)));
    break;
  }
  case Opcode::HMUL2: {
    uint32_t A = readInt(C, Ops[1]), B = readInt(C, Ops[2]);
    writeReg(C, Dest(),
             packHalf2(unpackLo(A) * unpackLo(B), unpackHi(A) * unpackHi(B)));
    break;
  }
  case Opcode::HFMA2: {
    uint32_t A = readInt(C, Ops[1]), B = readInt(C, Ops[2]),
             CV = readInt(C, Ops[3]);
    writeReg(C, Dest(),
             packHalf2(unpackLo(A) * unpackLo(B) + unpackLo(CV),
                       unpackHi(A) * unpackHi(B) + unpackHi(CV)));
    break;
  }
  case Opcode::HMMA: {
    // Warp-scalar HMMA: a dot-2 accumulate over packed fp16 sources into
    // an FP32 accumulator — the per-register slice of the tensor-core
    // fragment computation.
    uint32_t A = readInt(C, Ops[1]), B = readInt(C, Ops[2]);
    float Acc = asFloat(readInt(C, Ops[3]));
    Acc += unpackLo(A) * unpackLo(B) + unpackHi(A) * unpackHi(B);
    writeReg(C, Dest(), asBits(Acc));
    break;
  }
  case Opcode::IMMA: {
    uint32_t A = readInt(C, Ops[1]), B = readInt(C, Ops[2]);
    int32_t Acc = static_cast<int32_t>(readInt(C, Ops[3]));
    for (int Byte = 0; Byte < 4; ++Byte) {
      int8_t Ab = static_cast<int8_t>(A >> (8 * Byte));
      int8_t Bb = static_cast<int8_t>(B >> (8 * Byte));
      Acc += static_cast<int32_t>(Ab) * Bb;
    }
    writeReg(C, Dest(), static_cast<uint32_t>(Acc));
    break;
  }

  // ----- Conversions -------------------------------------------------------
  case Opcode::I2F: {
    uint32_t A = readInt(C, Ops[1]);
    float R = D.has(DecodedInstr::ModU32)
                  ? static_cast<float>(A)
                  : static_cast<float>(static_cast<int32_t>(A));
    writeReg(C, Dest(), asBits(R));
    break;
  }
  case Opcode::F2I: {
    float A = readFloat(C, Ops[1]);
    if (D.has(DecodedInstr::ModU32))
      writeReg(C, Dest(), static_cast<uint32_t>(A < 0 ? 0.0f : A));
    else
      writeReg(C, Dest(),
               static_cast<uint32_t>(static_cast<int32_t>(A)));
    break;
  }
  case Opcode::F2F: {
    // F2F.F32.F16 Rd, Ra: widen low half; F2F.F16.F32: narrow.
    uint32_t A = readInt(C, Ops[1]);
    if (D.has(DecodedInstr::ModF16) && D.has(DecodedInstr::ModFirstF32))
      writeReg(C, Dest(), packHalf2(asFloat(A), 0.0f));
    else
      writeReg(C, Dest(), asBits(unpackLo(A)));
    break;
  }

  // ----- Moves / misc -------------------------------------------------------
  case Opcode::MOV:
  case Opcode::MOV32I: {
    writeReg(C, Dest(), readInt(C, Ops[1]));
    break;
  }
  case Opcode::PRMT: {
    if (Ops.size() < 4)
      break;
    uint32_t A = readInt(C, Ops[1]);
    uint32_t Sel = readInt(C, Ops[2]);
    uint32_t B = readInt(C, Ops[3]);
    uint64_t Bytes = (static_cast<uint64_t>(B) << 32) | A;
    uint32_t R = 0;
    for (int Nib = 0; Nib < 4; ++Nib) {
      uint32_t S = (Sel >> (4 * Nib)) & 0x7;
      uint8_t Byte = static_cast<uint8_t>(Bytes >> (8 * S));
      if ((Sel >> (4 * Nib)) & 0x8) // MSB replicate.
        Byte = (Byte & 0x80) ? 0xff : 0x00;
      R |= static_cast<uint32_t>(Byte) << (8 * Nib);
    }
    writeReg(C, Dest(), R);
    break;
  }
  case Opcode::PLOP3: {
    // PLOP3.LUT Pd, Pq, Pa, Pb, Pc, lut, imm.
    if (Ops.size() < 6)
      break;
    bool A = readPred(C, Ops[2]), B = readPred(C, Ops[3]),
         CP = readPred(C, Ops[4]);
    uint32_t Lut = readInt(C, Ops[5]) & 0xff;
    unsigned Idx = (A ? 4u : 0u) | (B ? 2u : 0u) | (CP ? 1u : 0u);
    bool R = (Lut >> Idx) & 1;
    writeReg(C, Ops[0].baseReg(), R);
    if (!Ops[1].baseReg().isZero())
      writeReg(C, Ops[1].baseReg(), !R);
    break;
  }
  case Opcode::SHFL: {
    // Warp-scalar: identity shuffle; the in-bounds predicate is true.
    if (Ops.size() >= 3 && Ops[1].isReg() &&
        Ops[1].baseReg().isPredicate()) {
      writeReg(C, Ops[1].baseReg(), 1);
      writeReg(C, Dest(), readInt(C, Ops[2]));
    } else if (Ops.size() >= 2) {
      writeReg(C, Dest(), readInt(C, Ops[1]));
    }
    break;
  }
  case Opcode::CS2R:
  case Opcode::S2R: {
    writeReg(C, Dest(), C.specialReg(Ops[1].name()));
    break;
  }
  case Opcode::VOTE: {
    // VOTE.ALL Rd, Pd, Pa — warp-scalar: unanimous iff Pa.
    if (Ops.size() >= 3) {
      bool A = readPred(C, Ops[2]);
      writeReg(C, Dest(), A ? 0xffffffffu : 0u);
      if (Ops[1].isReg() && Ops[1].baseReg().isPredicate())
        writeReg(C, Ops[1].baseReg(), A);
    }
    break;
  }
  case Opcode::NOP:
    break;

  // ----- Memory --------------------------------------------------------------
  case Opcode::LDG: {
    const Operand *Mem = I.memOperand();
    if (!Mem)
      break;
    uint64_t Addr = readAddr64(C, *Mem);
    unsigned N = D.DataRegs;
    unsigned D = Dest().index();
    for (unsigned W = 0; W < N; ++W)
      C.writeR(D + W, C.loadGlobal(Addr + 4ull * W));
    break;
  }
  case Opcode::STG: {
    const Operand *Mem = I.memOperand();
    if (!Mem || Ops.size() < 2)
      break;
    uint64_t Addr = readAddr64(C, *Mem);
    unsigned N = D.DataRegs;
    unsigned S = Ops.back().baseReg().index();
    for (unsigned W = 0; W < N; ++W)
      C.storeGlobal(Addr + 4ull * W, C.readR(S + W));
    break;
  }
  case Opcode::LDS:
  case Opcode::LDSM: {
    const Operand *Mem = I.memOperand();
    if (!Mem)
      break;
    uint32_t Addr = readAddr32(C, *Mem);
    unsigned N = D.DataRegs;
    unsigned D = Dest().index();
    for (unsigned W = 0; W < N; ++W)
      C.writeR(D + W, C.loadShared(Addr + 4 * W));
    break;
  }
  case Opcode::STS: {
    const Operand *Mem = I.memOperand();
    if (!Mem || Ops.size() < 2)
      break;
    uint32_t Addr = readAddr32(C, *Mem);
    unsigned N = D.DataRegs;
    unsigned S = Ops.back().baseReg().index();
    for (unsigned W = 0; W < N; ++W)
      C.storeShared(Addr + 4 * W, C.readR(S + W));
    break;
  }
  case Opcode::LDGSTS: {
    // LDGSTS.E[.BYPASS][.128] [Rs+soff], desc[UR][Rg.64+goff][, P].
    if (Ops.size() < 2 || !Ops[0].isMem() || !Ops[1].isMem())
      break;
    uint32_t SAddr = readAddr32(C, Ops[0]);
    uint64_t GAddr = readAddr64(C, Ops[1]);
    bool DoCopy = true;
    if (Ops.size() >= 3 && Ops[2].isReg() &&
        Ops[2].baseReg().isPredicate())
      DoCopy = readPred(C, Ops[2]);
    unsigned N = D.DataRegs;
    for (unsigned W = 0; W < N; ++W)
      C.storeShared(SAddr + 4 * W,
                    DoCopy ? C.loadGlobal(GAddr + 4ull * W) : 0u);
    break;
  }
  case Opcode::LDC: {
    const Operand &Src = Ops[1];
    writeReg(C, Dest(),
             C.loadConst(static_cast<uint32_t>(Src.constOffset())));
    break;
  }
  case Opcode::ATOM:
  case Opcode::RED: {
    const Operand *Mem = I.memOperand();
    if (!Mem)
      break;
    uint64_t Addr = readAddr64(C, *Mem);
    bool Returns = I.opcode() == Opcode::ATOM;
    const Operand &Val = Ops.back();
    uint32_t Old = C.loadGlobal(Addr);
    uint32_t New;
    if (D.has(DecodedInstr::ModF32))
      New = asBits(asFloat(Old) + readFloat(C, Val));
    else
      New = Old + readInt(C, Val);
    C.storeGlobal(Addr, New);
    if (Returns && Ops[0].isReg())
      writeReg(C, Dest(), Old);
    break;
  }

  // ----- Control flow -----------------------------------------------------
  case Opcode::BRA: {
    for (const Operand &Op : Ops)
      if (Op.isLabel()) {
        Res.K = ExecResult::Kind::Branch;
        Res.Target = Op.name();
        Res.TargetIdx = D.BranchTarget;
        break;
      }
    break;
  }
  case Opcode::EXIT:
    Res.K = ExecResult::Kind::Exit;
    break;
  case Opcode::BAR:
    Res.K = ExecResult::Kind::BlockBarrier;
    break;
  case Opcode::CALL:
  case Opcode::RET:
  case Opcode::DEPBAR:
  case Opcode::LDGDEPBAR:
  case Opcode::BSSY:
  case Opcode::BSYNC:
  case Opcode::WARPSYNC:
  case Opcode::MEMBAR:
  case Opcode::ERRBAR:
  case Opcode::YIELD:
    // Synchronization placement effects are modeled by the machine (they
    // bound reordering and consume issue slots); no functional effect.
    break;
  }
  return Res;
}

} // namespace gpusim
} // namespace cuasmrl

#endif // CUASMRL_GPUSIM_PIPELINE_EXECUTORIMPL_H

//===- gpusim/pipeline/WarpSelect.h - Warp-select stage ----------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stage 1 of the timed pipeline: pick the warp that wins a
/// scheduler's issue slot this cycle (greedy-then-oldest with a sticky
/// warp, §2.3). A probe consults only the decoded image's SoA planes —
/// two byte loads for the common case — never the heavyweight
/// `sass::Statement` objects.
///
/// Probe side effects (bit-identity contract with the pre-staged
/// machine — keep them):
///  - the fetch-group advance happens during the probe: labels under
///    the warp's Pc are skipped *persistently*, and each label crossed
///    ends any LDGSTS group (§3.5), even for warps probed but not
///    picked this cycle;
///  - `PerfCounters::StallWaitCycles` counts once per *probe* of a
///    scoreboard-stalled warp, so a warp probed by its scheduler on N
///    idle cycles contributes N — probe order and count are part of
///    the counter surface.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_GPUSIM_PIPELINE_WARPSELECT_H
#define CUASMRL_GPUSIM_PIPELINE_WARPSELECT_H

#include "gpusim/DecodedProgram.h"
#include "gpusim/PerfCounters.h"
#include "gpusim/pipeline/Latches.h"
#include "gpusim/pipeline/SimState.h"

#include <algorithm>
#include <vector>

namespace cuasmrl {
namespace gpusim {

/// The warp-select stage. Stateless — cross-cycle scheduler state
/// (sticky warp) lives in `Scheduler`, per-warp state in
/// `WarpSimState` — so it is directly testable on hand-built state.
///
/// The stage is header-inline: the probe runs for every resident warp
/// on every scheduler-cycle, and keeping it visible to the issue
/// loop's TU (cross-stage inlining) is worth more than a separate
/// object file.
struct WarpSelect {
  /// Probes one warp's eligibility at cycle \p Now: not done, not at a
  /// barrier, past its stall countdown, an instruction left to run,
  /// and every scoreboard slot in its wait mask drained. Mutates \p W
  /// (label skip, LDGSTS group reset) exactly as fetch would — see the
  /// file comment.
  ///
  /// \p MinReady accumulates `min(W.NextIssue)` over live, unbarriered
  /// warps rejected for `NextIssue > Now` — on a fully idle cycle
  /// (every scheduler probed every warp and none issued) this equals
  /// the warp-ready candidate the time-skip used to rescan for, so the
  /// main loop gets it for free.
  static bool probe(WarpSimState &W, const DecodedProgram &D, uint64_t Now,
                    PerfCounters &C, uint64_t &MinReady) {
    ++C.SelectProbes;
    if (W.Done || W.AtBarrier || W.NextIssue > Now) {
      if (!W.Done && !W.AtBarrier)
        MinReady = std::min(MinReady, W.NextIssue);
      ++C.SelectIneligible;
      return false;
    }
    // Fetch-group advance: skip labels persistently; crossing a label
    // ends any LDGSTS group (§3.5).
    size_t Pc = W.Pc;
    const size_t N = D.size();
    while (Pc < N && D.isLabel(Pc)) {
      W.LdgstsBase = -1;
      ++Pc;
      ++C.FetchLabelSkips;
    }
    W.Pc = Pc;
    if (Pc >= N) {
      ++C.SelectIneligible;
      return false;
    }
    // One AND against the busy bitmask replaces the per-slot scan; the
    // StallWaitCycles surface (once per probe of a wait-stalled warp)
    // is unchanged.
    if (D.waitMask(Pc) & W.ScoreboardBusy) {
      ++C.StallWaitCycles;
      ++C.SelectIneligible;
      return false;
    }
    return true;
  }

  /// Greedy-then-oldest selection for the scheduler owning warps
  /// {SchedIdx, SchedIdx + Stride, ...}: stick with the last issued
  /// warp while it can issue, else scan ownership order. Returns the
  /// select latch (-1 when no warp is eligible).
  static SelectLatch pick(Scheduler &S, std::vector<WarpSimState> &Warps,
                          unsigned SchedIdx, unsigned Stride,
                          const DecodedProgram &D, uint64_t Now,
                          PerfCounters &C, uint64_t &MinReady) {
    // Greedy-then-oldest: stick with the last warp while it can issue.
    if (S.StickyWarp >= 0 &&
        probe(Warps[S.StickyWarp], D, Now, C, MinReady))
      return SelectLatch{S.StickyWarp};
    for (unsigned WIdx = SchedIdx; WIdx < Warps.size(); WIdx += Stride)
      if (probe(Warps[WIdx], D, Now, C, MinReady))
        return SelectLatch{static_cast<int>(WIdx)};
    ++C.SelectIdleCycles;
    return SelectLatch{-1};
  }
};

} // namespace gpusim
} // namespace cuasmrl

#endif // CUASMRL_GPUSIM_PIPELINE_WARPSELECT_H

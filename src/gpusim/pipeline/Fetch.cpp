//===- gpusim/pipeline/Fetch.cpp ---------------------------------------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "gpusim/pipeline/Fetch.h"

#include "sass/Program.h"

#include <cassert>

using namespace cuasmrl;
using namespace cuasmrl::gpusim;

FetchLatch gpusim::fetchStage(const sass::Program &Prog,
                              const WarpSimState &W) {
  assert(W.Pc < Prog.size() && Prog.stmt(W.Pc).isInstr() &&
         "fetch on a warp the select stage did not qualify");
  return FetchLatch{W.Pc, &Prog.stmt(W.Pc).instr()};
}

//===- gpusim/PerfCounters.h - Nsight-Compute-like counters ----------------===//
//
// Part of the CuAsmRL reproduction. Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hardware counters maintained by the timed simulator, mirroring the
/// Nsight Compute metrics the paper's Table 3 reports: executed IPC
/// (active and elapsed), SM busy %, DRAM throughput, memory busy % and
/// % of peak bandwidth.
///
//===----------------------------------------------------------------------===//

#ifndef CUASMRL_GPUSIM_PERFCOUNTERS_H
#define CUASMRL_GPUSIM_PERFCOUNTERS_H

#include <cstdint>

namespace cuasmrl {
namespace gpusim {

/// Raw event counts from one simulated launch (one SM's perspective,
/// scaled over waves).
struct PerfCounters {
  uint64_t ElapsedCycles = 0;   ///< Total cycles from launch to drain.
  uint64_t ActiveCycles = 0;    ///< Cycles with >= 1 resident live warp.
  uint64_t IssuedInstrs = 0;    ///< Instructions issued (all schedulers).
  uint64_t IssueSlotCycles = 0; ///< Cycles x schedulers (issue capacity).
  uint64_t StallWaitCycles = 0; ///< Warp-cycles lost to scoreboard waits.
  uint64_t StallFixedCycles = 0;///< Warp-cycles lost to stall counts.
  uint64_t BankConflictCycles = 0; ///< Extra cycles from register banks.
  uint64_t ReuseHits = 0;       ///< Operand-collector reuse-cache hits.
  uint64_t ReuseMisses = 0;     ///< Reuse flags invalidated by switches.

  uint64_t L1Hits = 0;
  uint64_t L1Misses = 0;
  uint64_t L2Hits = 0;
  uint64_t L2Misses = 0;
  uint64_t SharedAccesses = 0;
  uint64_t DramBytes = 0;       ///< Bytes transferred to/from DRAM.
  uint64_t MemBusyCycles = 0;   ///< Cycles the LSU/DRAM path was busy.
  uint64_t LsuIssues = 0;       ///< Memory instructions entering the LSU.

  /// Host-side measurement-cache accounting (filled by
  /// MeasurementCache::accumulate, not by the simulator): lookups
  /// served from the shared cache vs. primary-slot simulations. Rare
  /// extra simulations (primary-hash collision fallbacks, retries
  /// after a throwing simulation) are outside these two counters —
  /// see MeasurementCache::collisions().
  uint64_t MeasureCacheHits = 0;
  uint64_t MeasureCacheMisses = 0;

  /// \name Derived metrics (Table 3 rows)
  /// @{
  double ipcActive() const {
    return ActiveCycles ? static_cast<double>(IssuedInstrs) / ActiveCycles
                        : 0.0;
  }
  double ipcElapsed() const {
    return ElapsedCycles ? static_cast<double>(IssuedInstrs) / ElapsedCycles
                         : 0.0;
  }
  double smBusyPct() const {
    return IssueSlotCycles
               ? 100.0 * static_cast<double>(IssuedInstrs) / IssueSlotCycles
               : 0.0;
  }
  double memBusyPct() const {
    return ElapsedCycles
               ? 100.0 * static_cast<double>(MemBusyCycles) / ElapsedCycles
               : 0.0;
  }
  /// @}

  PerfCounters &operator+=(const PerfCounters &Other) {
    ElapsedCycles += Other.ElapsedCycles;
    ActiveCycles += Other.ActiveCycles;
    IssuedInstrs += Other.IssuedInstrs;
    IssueSlotCycles += Other.IssueSlotCycles;
    StallWaitCycles += Other.StallWaitCycles;
    StallFixedCycles += Other.StallFixedCycles;
    BankConflictCycles += Other.BankConflictCycles;
    ReuseHits += Other.ReuseHits;
    ReuseMisses += Other.ReuseMisses;
    L1Hits += Other.L1Hits;
    L1Misses += Other.L1Misses;
    L2Hits += Other.L2Hits;
    L2Misses += Other.L2Misses;
    SharedAccesses += Other.SharedAccesses;
    DramBytes += Other.DramBytes;
    MemBusyCycles += Other.MemBusyCycles;
    LsuIssues += Other.LsuIssues;
    MeasureCacheHits += Other.MeasureCacheHits;
    MeasureCacheMisses += Other.MeasureCacheMisses;
    return *this;
  }
};

} // namespace gpusim
} // namespace cuasmrl

#endif // CUASMRL_GPUSIM_PERFCOUNTERS_H
